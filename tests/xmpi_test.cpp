// Point-to-point semantics, phantom payloads, sub-communicators, and
// simulator determinism at the xmpi level.
#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "machine/registry.hpp"
#include "test_util.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/sub_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx {
namespace {

using test::Backend;
using test::run_world;
using xmpi::cbuf;
using xmpi::Comm;
using xmpi::mbuf;

class P2PTest : public ::testing::TestWithParam<Backend> {};

TEST_P(P2PTest, SendRecvMovesData) {
  run_world(GetParam(), 2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data{1.5, 2.5, 3.5};
      c.send(1, 7, cbuf(std::span<const double>(data)));
    } else {
      std::vector<double> data(3, 0.0);
      c.recv(0, 7, mbuf(std::span<double>(data)));
      EXPECT_EQ((std::vector<double>{1.5, 2.5, 3.5}), data);
    }
  });
}

TEST_P(P2PTest, FifoOrderPerSourceAndTag) {
  run_world(GetParam(), 2, [](Comm& c) {
    constexpr int kN = 20;
    if (c.rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i)
        c.send(1, 3, cbuf(std::span<const std::int32_t>(&i, 1)));
    } else {
      for (std::int32_t i = 0; i < kN; ++i) {
        std::int32_t got = -1;
        c.recv(0, 3, mbuf(std::span<std::int32_t>(&got, 1)));
        EXPECT_EQ(i, got);
      }
    }
  });
}

TEST_P(P2PTest, TagsSelectMessagesOutOfOrder) {
  run_world(GetParam(), 2, [](Comm& c) {
    if (c.rank() == 0) {
      std::int32_t a = 10, b = 20;
      c.send(1, 1, cbuf(std::span<const std::int32_t>(&a, 1)));
      c.send(1, 2, cbuf(std::span<const std::int32_t>(&b, 1)));
    } else {
      std::int32_t x = 0, y = 0;
      c.recv(0, 2, mbuf(std::span<std::int32_t>(&y, 1)));  // tag 2 first
      c.recv(0, 1, mbuf(std::span<std::int32_t>(&x, 1)));
      EXPECT_EQ(10, x);
      EXPECT_EQ(20, y);
    }
  });
}

TEST_P(P2PTest, SendrecvRingDoesNotDeadlock) {
  run_world(GetParam(), 5, [](Comm& c) {
    const int n = c.size();
    const std::int32_t mine = c.rank();
    std::int32_t got = -1;
    c.sendrecv((c.rank() + 1) % n, 9, cbuf(std::span<const std::int32_t>(&mine, 1)),
               (c.rank() + n - 1) % n, 9, mbuf(std::span<std::int32_t>(&got, 1)));
    EXPECT_EQ((c.rank() + n - 1) % n, got);
  });
}

TEST_P(P2PTest, SizeMismatchThrows) {
  EXPECT_THROW(
      run_world(GetParam(), 2,
                [](Comm& c) {
                  if (c.rank() == 0) {
                    std::vector<double> d(4, 1.0);
                    c.send(1, 0, cbuf(std::span<const double>(d)));
                  } else {
                    std::vector<double> d(3, 0.0);
                    c.recv(0, 0, mbuf(std::span<double>(d)));
                  }
                }),
      CommError);
}

TEST_P(P2PTest, PhantomRealMixThrows) {
  EXPECT_THROW(
      run_world(GetParam(), 2,
                [](Comm& c) {
                  if (c.rank() == 0) {
                    c.send(1, 0, xmpi::phantom_cbuf(64));
                  } else {
                    std::vector<unsigned char> d(64);
                    c.recv(0, 0, xmpi::mbuf_bytes(d.data(), d.size()));
                  }
                }),
      CommError);
}

TEST_P(P2PTest, InvalidPeerThrows) {
  EXPECT_THROW(run_world(GetParam(), 2,
                         [](Comm& c) {
                           if (c.rank() == 0)
                             c.send(5, 0, xmpi::phantom_cbuf(1));
                         }),
               CommError);
}

TEST_P(P2PTest, PhantomTrafficFlows) {
  run_world(GetParam(), 2, [](Comm& c) {
    if (c.rank() == 0)
      c.send(1, 0, xmpi::phantom_cbuf(1 << 20));
    else
      c.recv(0, 0, xmpi::phantom_mbuf(1 << 20));
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, P2PTest,
                         ::testing::Values(Backend::kThreads, Backend::kSim),
                         [](const auto& info) {
                           return std::string(test::to_string(info.param));
                         });

TEST(SubComm, RowColumnGridCollectives) {
  // 2x3 grid: rows {0,1,2},{3,4,5}; columns {0,3},{1,4},{2,5}.
  run_world(Backend::kThreads, 6, [](Comm& c) {
    const int row = c.rank() / 3;
    const int col = c.rank() % 3;
    std::vector<int> row_members, col_members;
    for (int j = 0; j < 3; ++j) row_members.push_back(row * 3 + j);
    for (int i = 0; i < 2; ++i) col_members.push_back(i * 3 + col);
    xmpi::SubComm row_comm(c, row_members, 1 + row);
    xmpi::SubComm col_comm(c, col_members, 3 + col);
    EXPECT_EQ(col, row_comm.rank());
    EXPECT_EQ(row, col_comm.rank());

    double v = static_cast<double>(c.rank());
    double row_sum = 0, col_sum = 0;
    row_comm.allreduce(cbuf(std::span<const double>(&v, 1)),
                       mbuf(std::span<double>(&row_sum, 1)), xmpi::ROp::kSum);
    col_comm.allreduce(cbuf(std::span<const double>(&v, 1)),
                       mbuf(std::span<double>(&col_sum, 1)), xmpi::ROp::kSum);
    EXPECT_DOUBLE_EQ(row == 0 ? 3.0 : 12.0, row_sum);
    EXPECT_DOUBLE_EQ(static_cast<double>(col + col + 3), col_sum);
  });
}

TEST(SubComm, NonMemberConstructionThrows) {
  run_world(Backend::kThreads, 2, [](Comm& c) {
    if (c.rank() == 1) {
      EXPECT_THROW(xmpi::SubComm(c, {0}, 1), ConfigError);
    } else {
      xmpi::SubComm self(c, {0}, 1);
      EXPECT_EQ(1, self.size());
    }
  });
}

TEST(SimBackend, DeterministicMakespan) {
  auto once = [] {
    return xmpi::run_on_machine(mach::nec_sx8(), 32, [](Comm& c) {
      std::vector<double> s(1000, static_cast<double>(c.rank()));
      std::vector<double> r(1000);
      for (int i = 0; i < 3; ++i)
        c.allreduce(cbuf(std::span<const double>(s)),
                    mbuf(std::span<double>(r)), xmpi::ROp::kSum);
    });
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-identical
  EXPECT_EQ(a.internode_messages, b.internode_messages);
  EXPECT_GT(a.makespan_s, 0.0);
  EXPECT_GT(a.internode_messages, 0u);
}

TEST(SimBackend, ComputeAdvancesVirtualTime) {
  const auto r = xmpi::run_on_machine(mach::dell_xeon(), 1, [](Comm& c) {
    const double t0 = c.now();
    c.compute(1.25);
    EXPECT_DOUBLE_EQ(t0 + 1.25, c.now());
  });
  EXPECT_DOUBLE_EQ(1.25, r.makespan_s);
}

TEST(SimBackend, IntraNodeCheaperThanInterNode) {
  // Ranks 0,1 share a Dell Xeon node; ranks 0,2 do not.
  auto ping = [](int peer) {
    return xmpi::run_on_machine(mach::dell_xeon(), 4, [peer](Comm& c) {
      std::vector<unsigned char> buf(1 << 20);
      if (c.rank() == 0) {
        c.send(peer, 0, xmpi::cbuf_bytes(buf.data(), buf.size()));
        c.recv(peer, 1, xmpi::mbuf_bytes(buf.data(), buf.size()));
      } else if (c.rank() == peer) {
        c.recv(0, 0, xmpi::mbuf_bytes(buf.data(), buf.size()));
        c.send(0, 1, xmpi::cbuf_bytes(buf.data(), buf.size()));
      }
    });
  };
  EXPECT_LT(ping(1).makespan_s, ping(2).makespan_s);
}

TEST(SimBackend, MoreRanksMoreBarrierTime) {
  auto barrier_time = [](int n) {
    const auto r = xmpi::run_on_machine(mach::dell_xeon(), n,
                                        [](Comm& c) { c.barrier(); });
    return r.makespan_s;
  };
  EXPECT_LT(barrier_time(2), barrier_time(8));
  EXPECT_LT(barrier_time(8), barrier_time(64));
}

}  // namespace
}  // namespace hpcx
