// Core utilities: RNG (including the official HPCC sequence), stats,
// units, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "core/error.hpp"
#include "core/parse_num.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

namespace hpcx {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  r.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(100u, seen.size());
}

TEST(HpccRandom, StartsMatchesIteration) {
  // starts(n) must equal n steps of the recurrence from starts(0) == 1.
  HpccRandom seq(0);
  EXPECT_EQ(1ull, seq.value());
  for (int n = 1; n <= 200; ++n) {
    seq.next();
    EXPECT_EQ(seq.value(), HpccRandom::starts(n)) << "n=" << n;
  }
}

TEST(HpccRandom, JumpAheadFarPosition) {
  // Jumping to position 10000 equals iterating 10000 times.
  HpccRandom it(0);
  for (int i = 0; i < 10000; ++i) it.next();
  EXPECT_EQ(it.value(), HpccRandom::starts(10000));
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(8u, s.count());
  EXPECT_DOUBLE_EQ(2.0, s.min());
  EXPECT_DOUBLE_EQ(9.0, s.max());
  EXPECT_DOUBLE_EQ(5.0, s.mean());
  EXPECT_NEAR(2.138, s.stddev(), 1e-3);
  EXPECT_DOUBLE_EQ(40.0, s.sum());
}

TEST(Stats, PercentileNearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(1.0, percentile(v, 0));
  EXPECT_DOUBLE_EQ(5.0, percentile(v, 50));
  EXPECT_DOUBLE_EQ(10.0, percentile(v, 100));
  EXPECT_DOUBLE_EQ(9.0, percentile(v, 90));
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(4.0, geomean({2.0, 8.0}));
  EXPECT_NEAR(3.0, geomean({3.0, 3.0, 3.0}), 1e-12);
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ("1.500 us", format_time(1.5e-6));
  EXPECT_EQ("2.000 ms", format_time(2e-3));
  EXPECT_EQ("3.000 s", format_time(3.0));
}

TEST(Units, BandwidthFormatting) {
  EXPECT_EQ("841.00 MB/s", format_bandwidth(841e6));
  EXPECT_EQ("16.00 GB/s", format_bandwidth(16e9));
}

TEST(ParseNum, AcceptsWholeStringDecimal) {
  EXPECT_EQ(0, parse_ll("0", -10, 10));
  EXPECT_EQ(42, parse_ll("42", 0, 100));
  EXPECT_EQ(-7, parse_ll("-7", -10, 10));
  EXPECT_EQ(9223372036854775807ll,
            parse_ll("9223372036854775807",
                     std::numeric_limits<long long>::min(),
                     std::numeric_limits<long long>::max()));
}

TEST(ParseNum, RejectsNonNumeric) {
  const long long lo = std::numeric_limits<long long>::min();
  const long long hi = std::numeric_limits<long long>::max();
  EXPECT_FALSE(parse_ll("banana", lo, hi).has_value());
  EXPECT_FALSE(parse_ll("", lo, hi).has_value());
  EXPECT_FALSE(parse_ll("12x", lo, hi).has_value());    // trailing junk
  EXPECT_FALSE(parse_ll("x12", lo, hi).has_value());
  EXPECT_FALSE(parse_ll(" 12", lo, hi).has_value());    // whitespace
  EXPECT_FALSE(parse_ll("12 ", lo, hi).has_value());
  EXPECT_FALSE(parse_ll("+12", lo, hi).has_value());    // explicit plus
  EXPECT_FALSE(parse_ll("0x10", lo, hi).has_value());   // hex
  EXPECT_FALSE(parse_ll("1.5", lo, hi).has_value());    // float
  EXPECT_FALSE(parse_ll("-", lo, hi).has_value());
}

TEST(ParseNum, RejectsOverflowAndOutOfRange) {
  const long long lo = std::numeric_limits<long long>::min();
  const long long hi = std::numeric_limits<long long>::max();
  EXPECT_FALSE(parse_ll("9223372036854775808", lo, hi).has_value());
  EXPECT_FALSE(parse_ll("99999999999999999999999", lo, hi).has_value());
  EXPECT_FALSE(parse_ll("11", 0, 10).has_value());
  EXPECT_FALSE(parse_ll("-1", 0, 10).has_value());
  EXPECT_EQ(10, parse_ll("10", 0, 10));  // bounds are inclusive
}

TEST(Units, ByteLabels) {
  EXPECT_EQ("1 MB", format_bytes(1 << 20));
  EXPECT_EQ("4 KB", format_bytes(4096));
  EXPECT_EQ("17 B", format_bytes(17));
}

TEST(Table, AlignedPrinting) {
  Table t("demo");
  t.set_header({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_note("n1");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("demo"));
  EXPECT_NE(std::string::npos, s.find("long_header"));
  EXPECT_NE(std::string::npos, s.find("note: n1"));
}

TEST(Table, CsvQuoting) {
  Table t("demo");
  t.set_header({"x"});
  t.add_row({"a,b\"c"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ("x\n\"a,b\"\"c\"\n", os.str());
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

}  // namespace
}  // namespace hpcx
