// Report/harness layer: sweep definitions, figure table structure, and
// the per-process report cache.
#include <gtest/gtest.h>

#include <sstream>

#include "machine/registry.hpp"
#include "report/figures.hpp"
#include "report/hpcc_figures.hpp"
#include "report/series.hpp"

namespace hpcx::report {
namespace {

TEST(Series, ImbCpuCountsFollowPaperAxes) {
  const auto sx8 = imb_cpu_counts(mach::nec_sx8());
  ASSERT_FALSE(sx8.empty());
  EXPECT_EQ(2, sx8.front());
  EXPECT_EQ(576, sx8.back());  // the paper's 568/576-CPU full runs
  const auto x1 = imb_cpu_counts(mach::cray_x1_msp());
  EXPECT_EQ((std::vector<int>{2, 4, 8, 16}), x1);
  const auto xeon = imb_cpu_counts(mach::dell_xeon());
  EXPECT_EQ(512, xeon.back());
  const auto opteron = imb_cpu_counts(mach::cray_opteron());
  EXPECT_EQ(64, opteron.back());
}

TEST(Series, HpccCpuCountsReachMachineMax) {
  const auto altix = hpcc_cpu_counts(mach::altix_bx2());
  EXPECT_EQ(2024, altix.back());
  EXPECT_GE(altix.size(), 4u);
  const auto x1 = hpcc_cpu_counts(mach::cray_x1_msp());
  EXPECT_EQ(16, x1.back());
}

TEST(Series, SixMachineSeriesInPaperOrder) {
  const auto machines = imb_figure_machines();
  ASSERT_EQ(6u, machines.size());
  EXPECT_EQ("altix_bx2", machines[0].short_name);
  EXPECT_EQ("sx8", machines[5].short_name);
}

TEST(Series, MeasureImbReturnsConsistentRecord) {
  const auto r = measure_imb(mach::dell_xeon(), 8,
                             imb::BenchmarkId::kAllreduce, 1 << 16);
  EXPECT_GT(r.t_max_s, 0.0);
  EXPECT_LE(r.t_min_s, r.t_max_s);
}

TEST(Series, ReportCacheReturnsSameObject) {
  hpcc::HpccParts parts;
  parts.hpl = false;
  parts.ptrans = false;
  parts.random_access = false;
  parts.fft = false;
  const auto& a = hpcc_report_cached(mach::cray_opteron(), 8, parts);
  const auto& b = hpcc_report_cached(mach::cray_opteron(), 8, parts);
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.ring_bw_Bps, 0.0);
}

TEST(Figures, ImbFigureTableShape) {
  const Table t = imb_figure("test", imb::BenchmarkId::kBarrier, 0, false);
  EXPECT_EQ(7u, t.cols());  // CPUs + six machines
  EXPECT_GE(t.rows(), 9u);  // 2..512 plus 48/576 odd sizes
  // Row "2" must have a value for every machine; row "576" only for SX-8.
  const auto& first = t.row(0);
  EXPECT_EQ("2", first[0]);
  for (std::size_t c = 1; c < first.size(); ++c) EXPECT_NE("-", first[c]);
  const auto& last = t.row(t.rows() - 1);
  EXPECT_EQ("576", last[0]);
  EXPECT_NE("-", last[6]);
  EXPECT_EQ("-", last[1]);
}

TEST(Figures, StaticTablesPrint) {
  std::ostringstream os;
  print_table1_altix(os);
  print_table2_systems(os);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("NUMALINK4"));
  EXPECT_NE(std::string::npos, s.find("IXS"));
  EXPECT_NE(std::string::npos, s.find("Myrinet"));
  EXPECT_NE(std::string::npos, s.find("InfiniBand"));
  EXPECT_NE(std::string::npos, s.find("hypercube"));
}

}  // namespace
}  // namespace hpcx::report
