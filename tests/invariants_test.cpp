// Cross-cutting property tests: traffic conservation, algorithm-
// independent volume invariants, link accounting, and timing sanity
// bounds that must hold for any machine and any collective.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"
#include "machine/registry.hpp"
#include "netsim/network.hpp"
#include "topology/crossbar.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx {
namespace {

using xmpi::Comm;

xmpi::SimRunResult run(const mach::MachineConfig& m, int cpus,
                       const xmpi::RankFn& fn) {
  return xmpi::run_on_machine(m, cpus, fn);
}

TEST(Invariants, AlltoallWireVolumeMatchesFormula) {
  // Pairwise alltoall: every rank sends one block to every other rank;
  // blocks between co-located ranks stay off the wire. With 2 ranks per
  // node, each rank has exactly one node-local peer.
  const auto m = mach::cray_opteron();  // 2 CPUs/node
  const int cpus = 16;
  const std::size_t block = 1 << 12;
  const auto r = run(m, cpus, [&](Comm& c) {
    const std::size_t total = block * static_cast<std::size_t>(c.size());
    c.alltoall(xmpi::phantom_cbuf(total), xmpi::phantom_mbuf(total));
  });
  const std::uint64_t expected =
      static_cast<std::uint64_t>(cpus) * (cpus - 2) * block;
  EXPECT_EQ(expected, r.internode_bytes);
}

TEST(Invariants, RingAllgatherVolumeIndependentOfStartRank) {
  // Ring allgather moves (P-1) blocks through every rank regardless of
  // where blocks originate: total wire volume is P*(P-1)*block minus the
  // hops that stay on-node.
  const auto m = mach::dell_xeon();
  const std::size_t block = 4096;
  const auto r = run(m, 8, [&](Comm& c) {
    c.tuning().allgather_alg = xmpi::AllgatherAlg::kRing;
    c.allgather(xmpi::phantom_cbuf(block),
                xmpi::phantom_mbuf(block * static_cast<std::size_t>(8)));
  });
  // 8 ranks in a ring, 2 per node: half of the 8 ring edges are
  // node-internal, so 4 wire crossings x 7 rounds x block bytes.
  EXPECT_EQ(4u * 7u * block, r.internode_bytes);
}

TEST(Invariants, MakespanNeverBelowBandwidthBound) {
  // No schedule can beat volume / bisection. Check alltoall against the
  // per-node injection limit.
  const auto m = mach::dell_xeon();
  const int cpus = 16;
  const std::size_t block = 1 << 16;
  const auto r = run(m, cpus, [&](Comm& c) {
    const std::size_t total = block * static_cast<std::size_t>(c.size());
    c.barrier();
    c.alltoall(xmpi::phantom_cbuf(total), xmpi::phantom_mbuf(total));
  });
  // Each 2-CPU node must inject 2*(cpus-2)*block bytes at 0.841 GB/s.
  const double min_time =
      2.0 * (cpus - 2) * static_cast<double>(block) / 0.841e9;
  EXPECT_GE(r.makespan_s, min_time * 0.999);
}

TEST(Invariants, HottestLinksAccountingConsistent) {
  const auto m = mach::cray_opteron();
  const auto r = run(m, 16, [&](Comm& c) {
    const std::size_t total = (1u << 14) * static_cast<std::size_t>(c.size());
    c.alltoall(xmpi::phantom_cbuf(total), xmpi::phantom_mbuf(total));
  });
  ASSERT_FALSE(r.hottest_links.empty());
  // Sorted hottest-first by busy time; all entries carry traffic.
  for (std::size_t i = 0; i + 1 < r.hottest_links.size(); ++i)
    EXPECT_GE(r.hottest_links[i].busy_s, r.hottest_links[i + 1].busy_s);
  for (const auto& l : r.hottest_links) {
    EXPECT_GT(l.messages, 0u);
    EXPECT_GT(l.bytes, 0u);
    EXPECT_FALSE(l.from.empty());
    EXPECT_FALSE(l.to.empty());
  }
}

TEST(Invariants, EdgeStatsMatchSingleTransfer) {
  des::Simulator sim;
  topo::CrossbarConfig cfg;
  cfg.num_hosts = 2;
  cfg.host_link = topo::LinkParams{1e9, 1e-6};
  net::Network net(sim, topo::build_crossbar(cfg), net::NicParams{},
                   net::NodeParams{});
  sim.spawn([&] { net.send(0, 1, 1 << 20, [] {}); });
  sim.run();
  const auto hottest = net.hottest_edges(4);
  ASSERT_GE(hottest.size(), 2u);
  EXPECT_EQ(1u, hottest[0].second.messages);
  EXPECT_EQ(1u << 20, hottest[0].second.bytes);
  EXPECT_NEAR(static_cast<double>(1 << 20) / 1e9, hottest[0].second.busy_s,
              1e-9);
  EXPECT_DOUBLE_EQ(0.0, hottest[0].second.queued_s);  // empty network
}

TEST(Invariants, CollectiveTimeMonotoneInMessageSize) {
  const auto m = mach::altix_bx2();
  double prev = 0;
  for (const std::size_t bytes : {1u << 10, 1u << 14, 1u << 18, 1u << 22}) {
    const auto r = run(m, 16, [&](Comm& c) {
      c.allreduce(xmpi::phantom_cbuf(bytes / 8, xmpi::DType::kF64),
                  xmpi::phantom_mbuf(bytes / 8, xmpi::DType::kF64),
                  xmpi::ROp::kSum);
    });
    EXPECT_GT(r.makespan_s, prev) << bytes;
    prev = r.makespan_s;
  }
}

TEST(Invariants, PhantomRunsMoveNoHostPayload) {
  // Phantom traffic must carry its nominal size on the wire while
  // allocating nothing: 1 GB of phantom alltoall completes instantly in
  // host terms and reports the full simulated volume.
  const auto m = mach::nec_sx8();
  const std::size_t giant = 1u << 30;
  const auto r = run(m, 16, [&](Comm& c) {
    if (c.rank() == 0)
      c.send(8, 1, xmpi::phantom_cbuf(giant));  // cross-node
    else if (c.rank() == 8)
      c.recv(0, 1, xmpi::phantom_mbuf(giant));
  });
  EXPECT_EQ(giant, r.internode_bytes);
  EXPECT_GT(r.makespan_s, static_cast<double>(giant) / 16e9 * 0.99);
}

TEST(Invariants, BarrierIsGloballySynchronising) {
  // After a barrier, no rank's pre-barrier timestamp may exceed any
  // rank's post-barrier timestamp.
  const auto m = mach::dell_xeon();
  std::vector<double> before(16), after(16);
  run(m, 16, [&](Comm& c) {
    // Stagger arrival times.
    c.compute(1e-6 * static_cast<double>(c.rank() + 1));
    before[static_cast<std::size_t>(c.rank())] = c.now();
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  const double max_before = *std::max_element(before.begin(), before.end());
  const double min_after = *std::min_element(after.begin(), after.end());
  EXPECT_GE(min_after, max_before);
}

TEST(Invariants, HwBarrierAlsoGloballySynchronising) {
  const auto m = mach::nec_sx8();  // hardware barrier path
  std::vector<double> before(16), after(16);
  run(m, 16, [&](Comm& c) {
    c.compute(1e-6 * static_cast<double>(16 - c.rank()));
    before[static_cast<std::size_t>(c.rank())] = c.now();
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  const double max_before = *std::max_element(before.begin(), before.end());
  const double min_after = *std::min_element(after.begin(), after.end());
  EXPECT_GE(min_after, max_before);
  // All ranks release at the same instant.
  for (double a : after) EXPECT_DOUBLE_EQ(after[0], a);
}

}  // namespace
}  // namespace hpcx
