// Failure injection: the library must fail loudly and precisely —
// deadlocks detected, misuse rejected, exceptions propagated across
// fibers and threads without corrupting the runtime.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/error.hpp"
#include "hpcc/fft_dist.hpp"
#include "hpcc/hpl_dist.hpp"
#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/sub_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx {
namespace {

using xmpi::Comm;

TEST(Failure, SimDetectsReceiveWithNoSender) {
  // A rank waiting for a message nobody sends must surface as a
  // simulation deadlock, not a hang.
  EXPECT_THROW(xmpi::run_on_machine(mach::dell_xeon(), 2,
                                    [](Comm& c) {
                                      if (c.rank() == 0)
                                        c.recv(1, 9,
                                               xmpi::phantom_mbuf(16));
                                    }),
               Error);
}

TEST(Failure, SimDetectsMismatchedBarrier) {
  EXPECT_THROW(xmpi::run_on_machine(mach::dell_xeon(), 4,
                                    [](Comm& c) {
                                      if (c.rank() != 2) c.barrier();
                                    }),
               Error);
}

TEST(Failure, UserExceptionPropagatesFromFiber) {
  EXPECT_THROW(xmpi::run_on_machine(mach::nec_sx8(), 4,
                                    [](Comm& c) {
                                      if (c.rank() == 3)
                                        throw std::runtime_error("rank 3");
                                    }),
               std::runtime_error);
}

TEST(Failure, UserExceptionPropagatesFromThread) {
  EXPECT_THROW(xmpi::run_on_threads(3,
                                    [](Comm& c) {
                                      if (c.rank() == 1)
                                        throw std::runtime_error("rank 1");
                                    }),
               std::runtime_error);
}

TEST(Failure, RunnerRejectsBadRankCounts) {
  EXPECT_THROW(xmpi::run_on_threads(0, [](Comm&) {}), ConfigError);
  EXPECT_THROW(xmpi::run_on_machine(mach::nec_sx8(), -1, [](Comm&) {}),
               ConfigError);
}

TEST(Failure, HplRejectsBadConfig) {
  xmpi::run_on_threads(2, [](Comm& c) {
    hpcc::HplDistConfig cfg;
    cfg.n = 0;
    EXPECT_THROW(hpcc::run_hpl_dist(c, cfg), ConfigError);
    cfg.n = 16;
    cfg.nb = 0;
    EXPECT_THROW(hpcc::run_hpl_dist(c, cfg), ConfigError);
  });
}

TEST(Failure, FftRejectsIndivisibleDims) {
  xmpi::run_on_threads(3, [](Comm& c) {
    EXPECT_THROW(hpcc::run_fft_dist(c, 8, 8), ConfigError);   // 3 !| 8
    EXPECT_THROW(hpcc::run_fft_dist(c, 7, 21), ConfigError);  // 7-smooth
  });
}

TEST(Failure, SubCommRejectsBadContextAndMembers) {
  xmpi::run_on_threads(2, [](Comm& c) {
    EXPECT_THROW(xmpi::SubComm(c, {0, 1}, 0), ConfigError);   // context 0
    EXPECT_THROW(xmpi::SubComm(c, {}, 1), ConfigError);       // empty
    EXPECT_THROW(xmpi::SubComm(c, {0, 5}, 1), ConfigError);   // out of range
  });
}

TEST(Failure, SimWorldSurvivesAfterFailedRun) {
  // A failed simulation must not poison subsequent runs (fiber-local
  // state fully cleaned up).
  try {
    xmpi::run_on_machine(mach::altix_bx2(), 2, [](Comm& c) {
      if (c.rank() == 0) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  const auto r = xmpi::run_on_machine(mach::altix_bx2(), 2,
                                      [](Comm& c) { c.barrier(); });
  EXPECT_GT(r.makespan_s, 0.0);
}

}  // namespace
}  // namespace hpcx
