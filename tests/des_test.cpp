// Discrete-event engine: event ordering, fibers, processes, sync.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "des/callback.hpp"
#include "des/event_queue.hpp"
#include "des/fiber.hpp"
#include "des/simulator.hpp"
#include "des/sync.hpp"

namespace hpcx::des {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(3.0, [&] { fired.push_back(3); });
  while (!q.empty()) {
    SimTime t;
    q.pop(&t)();
  }
  EXPECT_EQ((std::vector<int>{1, 2, 3}), fired);
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i)
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop(nullptr)();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(i, fired[static_cast<size_t>(i)]);
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  q.push(7.5, [] {});
  EXPECT_DOUBLE_EQ(7.5, q.next_time());
  EXPECT_EQ(1u, q.size());
}

TEST(Fiber, RunsToCompletion) {
  int state = 0;
  Fiber f([&] { state = 1; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(1, state);
}

TEST(Fiber, YieldAndResume) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
    Fiber::yield();
    order.push_back(5);
  });
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ((std::vector<int>{1, 2, 3, 4, 5}), order);
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(nullptr, Fiber::current());
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(&f, seen);
  EXPECT_EQ(nullptr, Fiber::current());
}

TEST(Fiber, DeepStackUsageWithinLimit) {
  // Touch ~64 KiB of a 128 KiB stack; the guard page protects overflow.
  bool done = false;
  Fiber f([&] {
    volatile char buf[64 * 1024];
    buf[0] = 1;
    buf[sizeof(buf) - 1] = 2;
    done = buf[0] + buf[sizeof(buf) - 1] == 3;
  });
  f.resume();
  EXPECT_TRUE(done);
}

TEST(EventQueue, SameTimePushesDuringPopRunFifo) {
  // Handlers frequently schedule zero-delay follow-ups (notify_one,
  // message hand-offs). Events pushed *while draining* a timestamp must
  // run after everything already queued at that timestamp, in push
  // order — that is the (time, seq) total order determinism rests on.
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] {
    fired.push_back(0);
    q.push(1.0, [&] { fired.push_back(2); });
    q.push(1.0, [&] { fired.push_back(3); });
  });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(4); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ((std::vector<int>{0, 1, 2, 3, 4}), fired);
}

TEST(Callback, OverflowCallableRunsAndDestroys) {
  // A capture too large (and non-trivially-copyable) for the inline
  // buffer takes the pooled overflow path; it must still run correctly
  // after moves and release its captured state exactly once.
  auto counter = std::make_shared<int>(0);
  std::array<double, 8> weights{};
  weights[7] = 35.0;
  Callback cb([counter, weights, v = std::vector<int>{1, 2, 4}]() mutable {
    *counter += static_cast<int>(weights[7]);
    for (int x : v) *counter += x;
  });
  EXPECT_EQ(2, counter.use_count());  // captured copy alive inside cb
  Callback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(42, *counter);
  { Callback discarded(std::move(moved)); }  // destroyed without invoking
  EXPECT_EQ(1, counter.use_count());         // capture released exactly once
}

TEST(Fiber, DestructorUnwindsSuspendedStack) {
  // Destroying a suspended fiber must run the destructors of objects
  // living on its stack (forced unwind), not leak them.
  auto tracker = std::make_shared<int>(7);
  bool resumed_after_yield = false;
  {
    Fiber f([tracker, &resumed_after_yield] {
      auto on_stack = tracker;  // RAII state on the fiber stack
      Fiber::yield();
      resumed_after_yield = true;  // must NOT run during unwind
    });
    f.resume();
    EXPECT_EQ(Fiber::State::kSuspended, f.state());
    EXPECT_EQ(3, tracker.use_count());  // body copy + on_stack copy
  }  // ~Fiber unwinds: on_stack and the body's capture are released
  EXPECT_FALSE(resumed_after_yield);
  EXPECT_EQ(1, tracker.use_count());
}

TEST(Fiber, StackPoolRecyclesStacks) {
  Fiber::trim_stack_pool();
  const std::size_t reuses0 = Fiber::stack_pool_reuses();
  {
    Fiber f([] {});
    f.resume();
  }  // stack parked in the thread-local pool
  EXPECT_EQ(1u, Fiber::pooled_stacks());
  {
    Fiber f([] {});
    f.resume();
  }
  EXPECT_EQ(reuses0 + 1, Fiber::stack_pool_reuses());
  EXPECT_EQ(1u, Fiber::pooled_stacks());
  Fiber::trim_stack_pool();
  EXPECT_EQ(0u, Fiber::pooled_stacks());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.5, [&] { times.push_back(sim.now()); });
  sim.schedule(0.5, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ((std::vector<double>{0.5, 1.5}), times);
  EXPECT_DOUBLE_EQ(1.5, sim.now());
}

TEST(Simulator, ProcessSleepAdvancesVirtualTime) {
  Simulator sim;
  double woke_at = -1;
  sim.spawn([&] {
    sim.sleep(2.0);
    sim.sleep(3.0);
    woke_at = sim.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(5.0, woke_at);
  EXPECT_EQ(0u, sim.live_processes());
}

TEST(Simulator, BlockAndWakeHandshake) {
  Simulator sim;
  std::vector<int> order;
  ProcessId waiter = sim.spawn([&] {
    order.push_back(1);
    sim.block();
    order.push_back(3);
  });
  sim.spawn([&] {
    sim.sleep(1.0);
    order.push_back(2);
    sim.wake(waiter);
  });
  sim.run();
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
}

TEST(Simulator, DeadlockIsDetected) {
  Simulator sim;
  sim.spawn([&] { sim.block(); });  // nobody will wake it
  EXPECT_THROW(sim.run(), Error);
}

TEST(Simulator, ManyProcessesDeterministicOrder) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i)
      sim.spawn([&sim, &order, i] {
        sim.sleep(static_cast<double>((i * 7) % 13));
        order.push_back(i);
      });
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WaitQueue, FifoNotify) {
  Simulator sim;
  WaitQueue wq(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    sim.spawn([&, i] {
      sim.sleep(static_cast<double>(i));  // enqueue in order 0,1,2
      wq.wait();
      order.push_back(i);
    });
  sim.spawn([&] {
    sim.sleep(10.0);
    wq.notify_one();
    wq.notify_all();
  });
  sim.run();
  EXPECT_EQ((std::vector<int>{0, 1, 2}), order);
}

TEST(SimResource, SerialisesOverlappingAcquires) {
  Simulator sim;
  SimResource res(sim);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i)
    sim.spawn([&] {
      res.acquire(2.0);
      done.push_back(sim.now());
    });
  sim.run();
  EXPECT_EQ((std::vector<double>{2.0, 4.0, 6.0}), done);
}

TEST(SimResource, ReserveHonoursEarliest) {
  Simulator sim;
  SimResource res(sim);
  EXPECT_DOUBLE_EQ(7.0, res.reserve(5.0, 2.0));
  // Second reservation queues behind the first even if requested earlier.
  EXPECT_DOUBLE_EQ(8.0, res.reserve(1.0, 1.0));
}

}  // namespace
}  // namespace hpcx::des
