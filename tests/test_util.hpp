// Shared helpers for tests that run the same rank function on both
// backends (real threads and the simulated machine).
#pragma once

#include <string>

#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::test {

enum class Backend { kThreads, kSim };

inline const char* to_string(Backend b) {
  return b == Backend::kThreads ? "threads" : "sim";
}

/// Run `fn` on `nranks` ranks of the chosen backend. The sim backend uses
/// the Dell Xeon model (2 CPUs/node: exercises both intra- and inter-node
/// paths from 3 ranks up).
inline void run_world(Backend backend, int nranks, const xmpi::RankFn& fn) {
  if (backend == Backend::kThreads) {
    xmpi::run_on_threads(nranks, fn);
  } else {
    xmpi::run_on_machine(mach::dell_xeon(), nranks, fn);
  }
}

/// Deterministic per-(rank, index) test payload.
inline double test_value(int rank, std::size_t i) {
  return static_cast<double>(rank + 1) * 1000.0 + static_cast<double>(i % 997);
}

}  // namespace hpcx::test
