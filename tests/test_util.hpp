// Shared helpers for tests that run the same rank function on every
// backend (real threads, the simulated machine, and forked processes).
#pragma once

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/proc_comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::test {

enum class Backend { kThreads, kSim, kProcs };

inline const char* to_string(Backend b) {
  switch (b) {
    case Backend::kThreads:
      return "threads";
    case Backend::kSim:
      return "sim";
    case Backend::kProcs:
      return "procs";
  }
  return "?";
}

/// Run `fn` on `nranks` ranks of the chosen backend. The sim backend uses
/// the Dell Xeon model (2 CPUs/node: exercises both intra- and inter-node
/// paths from 3 ranks up).
inline void run_world(Backend backend, int nranks, const xmpi::RankFn& fn) {
  switch (backend) {
    case Backend::kThreads:
      xmpi::run_on_threads(nranks, fn);
      return;
    case Backend::kSim:
      xmpi::run_on_machine(mach::dell_xeon(), nranks, fn);
      return;
    case Backend::kProcs:
      xmpi::run_on_procs(nranks, fn);
      return;
  }
}

/// Run `fn` with a per-rank failure string and collect the non-empty
/// ones. A by-reference capture would be invisible across the kProcs
/// fork boundary, so there the strings travel through fixed-size slots
/// in the world's shared user area; in-process backends use plain
/// strings. EXPECT/ASSERT inside a child process would be equally lost,
/// which is why conformance checks report through this channel.
using FailRankFn = std::function<void(xmpi::Comm&, std::string&)>;

inline std::vector<std::string> run_world_collect(Backend backend, int nranks,
                                                  const FailRankFn& fn) {
  if (backend == Backend::kProcs) {
    constexpr std::size_t kSlot = 1024;
    xmpi::ProcRunOptions options;
    options.user_bytes = kSlot * static_cast<std::size_t>(nranks);
    const xmpi::ProcRunResult res = xmpi::run_on_procs(
        nranks,
        [&fn](xmpi::Comm& c, std::span<unsigned char> user) {
          std::string fail;
          fn(c, fail);
          if (fail.empty()) return;
          char* slot = reinterpret_cast<char*>(user.data()) +
                       kSlot * static_cast<std::size_t>(c.rank());
          std::snprintf(slot, kSlot, "%s", fail.c_str());
        },
        options);
    std::vector<std::string> fails(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const char* slot = reinterpret_cast<const char*>(res.user.data()) +
                         kSlot * static_cast<std::size_t>(r);
      fails[static_cast<std::size_t>(r)] = slot;  // user area is zeroed
    }
    return fails;
  }
  std::vector<std::string> fails(static_cast<std::size_t>(nranks));
  run_world(backend, nranks, [&fn, &fails](xmpi::Comm& c) {
    fn(c, fails[static_cast<std::size_t>(c.rank())]);
  });
  return fails;
}

/// Deterministic per-(rank, index) test payload.
inline double test_value(int rank, std::size_t i) {
  return static_cast<double>(rank + 1) * 1000.0 + static_cast<double>(i % 997);
}

}  // namespace hpcx::test
