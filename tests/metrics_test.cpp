// Metrics layer: the JSON DOM parser, run-record serialisation
// round-trip, table-cell harvesting, wait-state bucket attribution on
// both backends, kernel phase spans, timer calibration, and the
// regression comparator behind tools/hpcx_compare.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/json.hpp"
#include "core/jsonlint.hpp"
#include "core/table.hpp"
#include "hpcc/driver.hpp"
#include "machine/registry.hpp"
#include "metrics/compare.hpp"
#include "metrics/run_record.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using namespace hpcx;

// ---------------------------------------------------------------- JSON DOM

TEST(Json, ParsesScalarsAndContainers) {
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"a\": [1, 2.5, -3e2], \"b\": \"x\\ny\", "
                         "\"c\": true, \"d\": null}",
                         v));
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -300.0);
  EXPECT_EQ(v.find("b")->as_string(), "x\ny");
  EXPECT_TRUE(v.find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesObjectInsertionOrder) {
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"z\": 1, \"a\": 2, \"m\": 3}", v));
  const JsonObject& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj.begin()->first, "z");
  EXPECT_EQ((obj.begin() + 2)->first, "m");
}

TEST(Json, DecodesUnicodeEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse("\"caf\\u00e9\"", v));
  EXPECT_EQ(v.as_string(), "caf\xc3\xa9");
}

TEST(Json, RejectsMalformedInputWithOffset) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "nulll", "01",
                          "[1] x", "\"\\q\""}) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(json_parse(bad, v, &error)) << bad;
    EXPECT_NE(error.find("byte"), std::string::npos) << error;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue v;
  EXPECT_FALSE(json_parse(deep, v));
}

// ----------------------------------------------------------- cell parsing

TEST(ParseCell, NormalisesUnitsToSi) {
  auto cell = metrics::parse_cell("12.34 us");
  ASSERT_TRUE(cell);
  EXPECT_NEAR(cell->value, 12.34e-6, 1e-12);
  EXPECT_EQ(cell->unit, "s");
  EXPECT_EQ(cell->better, metrics::Better::kLower);

  cell = metrics::parse_cell("1.50 GB/s");
  ASSERT_TRUE(cell);
  EXPECT_DOUBLE_EQ(cell->value, 1.5e9);
  EXPECT_EQ(cell->unit, "B/s");
  EXPECT_EQ(cell->better, metrics::Better::kHigher);

  cell = metrics::parse_cell("2.5 Tflop/s");
  ASSERT_TRUE(cell);
  EXPECT_DOUBLE_EQ(cell->value, 2.5e12);
  EXPECT_EQ(cell->unit, "flop/s");

  cell = metrics::parse_cell("0.0040 GUP/s");
  ASSERT_TRUE(cell);
  EXPECT_NEAR(cell->value, 4e6, 1e-6);
  EXPECT_EQ(cell->unit, "up/s");

  cell = metrics::parse_cell("2 KB");
  ASSERT_TRUE(cell);
  EXPECT_DOUBLE_EQ(cell->value, 2048.0);  // binary, like format_bytes
  EXPECT_EQ(cell->unit, "B");
  EXPECT_EQ(cell->better, metrics::Better::kLower);
}

TEST(ParseCell, DimensionlessAndUnparseable) {
  auto cell = metrics::parse_cell("0.873");
  ASSERT_TRUE(cell);
  EXPECT_DOUBLE_EQ(cell->value, 0.873);
  EXPECT_EQ(cell->unit, "");
  EXPECT_EQ(cell->better, metrics::Better::kHigher);

  EXPECT_FALSE(metrics::parse_cell("-"));
  EXPECT_FALSE(metrics::parse_cell("NEC SX-8"));
  EXPECT_FALSE(metrics::parse_cell("2.05x"));  // unknown suffix
  EXPECT_FALSE(metrics::parse_cell(""));
}

TEST(RunRecord, HarvestsTableCellsWithQualifiedNames) {
  Table t("Fig X: test");
  t.set_header({"CPUs", "Machine A", "Machine B"});
  t.add_row({"16", "10.00 us", "-"});
  t.add_row({"32", "20.00 us", "1.50 GB/s"});
  metrics::RunRecord rec;
  rec.add_table_metrics(t);
  ASSERT_EQ(rec.metrics.size(), 3u);
  const metrics::Metric* m = rec.find("Fig X: test/16/Machine A");
  ASSERT_NE(m, nullptr);
  EXPECT_NEAR(m->value, 10e-6, 1e-12);
  EXPECT_EQ(m->better, metrics::Better::kLower);
  EXPECT_NE(rec.find("Fig X: test/32/Machine B"), nullptr);
  // Column 0 is the row key, never a metric.
  EXPECT_EQ(rec.find("Fig X: test/16/CPUs"), nullptr);
}

// ------------------------------------------------------- JSON round-trip

metrics::RunRecord sample_record() {
  metrics::RunRecord rec;
  rec.tool = "metrics_test";
  rec.machine = "sx8";
  rec.cpus = 16;
  rec.env = metrics::capture_environment();
  rec.env.clock = "virtual";
  rec.env.eager_max_bytes = 32768;
  rec.env.alg_overrides = "bcast=binomial";
  rec.env.repeats = 3;
  rec.timer = metrics::calibrate_timer();
  metrics::Metric& m =
      rec.add_metric("imb/Allreduce/t_avg", 1.25e-3, "s",
                     metrics::Better::kLower);
  m.repeats = 3;
  m.min = 1.2e-3;
  m.max = 1.3e-3;
  m.cov = 0.04;
  rec.add_metric("imb/Sendrecv/bandwidth", 8.5e8, "B/s",
                 metrics::Better::kHigher);
  rec.ranks.push_back(metrics::RankBuckets{0, 0.5, 0.25, 0.1, 1.0});
  rec.ranks.push_back(metrics::RankBuckets{1, 0.4, 0.35, 0.1, 1.0});
  rec.phase_s[static_cast<std::size_t>(trace::PhaseId::kHplFactor)] = 0.125;
  return rec;
}

TEST(RunRecord, JsonRoundTripPreservesEverything) {
  const metrics::RunRecord rec = sample_record();
  const std::string json = rec.to_json();
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;

  metrics::RunRecord back;
  ASSERT_TRUE(metrics::RunRecord::from_json(json, back, &error)) << error;
  EXPECT_EQ(back.tool, "metrics_test");
  EXPECT_EQ(back.machine, "sx8");
  EXPECT_EQ(back.cpus, 16);
  EXPECT_EQ(back.env.clock, "virtual");
  EXPECT_EQ(back.env.eager_max_bytes, 32768u);
  EXPECT_EQ(back.env.alg_overrides, "bcast=binomial");
  EXPECT_EQ(back.env.repeats, 3);
  EXPECT_EQ(back.env.host, rec.env.host);
  ASSERT_EQ(back.metrics.size(), 2u);
  const metrics::Metric* m = back.find("imb/Allreduce/t_avg");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 1.25e-3);
  EXPECT_EQ(m->unit, "s");
  EXPECT_EQ(m->better, metrics::Better::kLower);
  EXPECT_EQ(m->repeats, 3u);
  EXPECT_DOUBLE_EQ(m->min, 1.2e-3);
  EXPECT_DOUBLE_EQ(m->max, 1.3e-3);
  EXPECT_DOUBLE_EQ(m->cov, 0.04);
  ASSERT_EQ(back.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(back.ranks[1].wait_s, 0.35);
  EXPECT_DOUBLE_EQ(back.ranks[1].elapsed_s, 1.0);
  EXPECT_DOUBLE_EQ(
      back.phase_s[static_cast<std::size_t>(trace::PhaseId::kHplFactor)],
      0.125);
}

TEST(RunRecord, FromJsonRejectsWrongSchema) {
  metrics::RunRecord out;
  std::string error;
  EXPECT_FALSE(metrics::RunRecord::from_json("{\"schema\": \"nope/9\"}", out,
                                             &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(metrics::RunRecord::from_json("[1,2]", out, &error));
}

TEST(RunRecord, EnvironmentCaptureIsPlausible) {
  const metrics::Environment env = metrics::capture_environment();
  EXPECT_FALSE(env.host.empty());
  EXPECT_GT(env.hardware_concurrency, 0);
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_NE(env.timestamp.find('T'), std::string::npos);
}

TEST(RunRecord, TimerCalibrationIsSane) {
  const metrics::TimerCalibration cal = metrics::calibrate_timer();
  EXPECT_GE(cal.overhead_s, 0.0);
  EXPECT_LT(cal.overhead_s, 1e-4);  // a clock read is well under 100 us
  EXPECT_GT(cal.resolution_s, 0.0);
  EXPECT_LT(cal.resolution_s, 1e-3);
}

// --------------------------------------------------- bucket attribution

TEST(Buckets, SimBucketsSumExactlyToElapsed) {
  trace::Recorder recorder(8);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(
      mach::dell_xeon(), 8,
      [](xmpi::Comm& c) {
        c.compute(1e-4);
        std::vector<double> send(4096, 1.0);
        std::vector<double> recv(send.size() * 8);
        c.allgather(xmpi::cbuf(std::span<const double>(send)),
                    xmpi::mbuf(std::span<double>(recv)));
        c.barrier();
      },
      options);
  metrics::RunRecord rec;
  rec.set_rank_buckets(recorder);
  ASSERT_EQ(rec.ranks.size(), 8u);
  for (const metrics::RankBuckets& b : rec.ranks) {
    EXPECT_GT(b.elapsed_s, 0.0) << "rank " << b.rank;
    EXPECT_GE(b.compute_s, 1e-4) << "rank " << b.rank;
    // Virtual time only advances through attributed operations, so the
    // decomposition is exact up to floating-point accumulation.
    const double sum = b.compute_s + b.wait_s + b.copy_s;
    EXPECT_NEAR(sum, b.elapsed_s, 1e-9 + 1e-6 * b.elapsed_s)
        << "rank " << b.rank;
    EXPECT_LT(b.other_s(), 1e-6);
  }
}

TEST(Buckets, ThreadBucketsStayWithinElapsed) {
  trace::Recorder recorder(4);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(
      4,
      [](xmpi::Comm& c) {
        std::vector<double> buf(1 << 14, 1.0);
        std::vector<double> out(buf.size());
        c.allreduce(xmpi::cbuf(std::span<const double>(buf)),
                    xmpi::mbuf(std::span<double>(out)), xmpi::ROp::kSum);
        c.barrier();
      },
      options);
  metrics::RunRecord rec;
  rec.set_rank_buckets(recorder);
  for (const metrics::RankBuckets& b : rec.ranks) {
    EXPECT_GT(b.elapsed_s, 0.0);
    EXPECT_GE(b.wait_s, 0.0);
    EXPECT_GE(b.copy_s, 0.0);
    // Wall-clock buckets are measured inside the elapsed window; allow
    // timer-overhead slack on very short runs.
    EXPECT_LE(b.compute_s + b.wait_s + b.copy_s, b.elapsed_s * 1.5 + 1e-3)
        << "rank " << b.rank;
    EXPECT_GE(b.other_s(), 0.0);
  }
}

TEST(Buckets, HpccSuitePopulatesKernelPhases) {
  trace::Recorder recorder(4);
  hpcc::HpccConfig config;
  config.hpl_n = 64;
  config.hpl_nb = 16;
  config.ptrans_n = 32;
  config.ra_log2 = 10;
  config.fft_n1 = 16;
  config.fft_n2 = 16;
  config.ring_bytes = 4096;
  config.ring_iterations = 1;
  config.ring_patterns = 1;
  hpcc::run_hpcc_sim(mach::dell_xeon(), 4, config, {}, &recorder);
  metrics::RunRecord rec;
  rec.set_rank_buckets(recorder);
  for (const auto phase :
       {trace::PhaseId::kHplFactor, trace::PhaseId::kHplBcast,
        trace::PhaseId::kHplUpdate, trace::PhaseId::kFftCompute,
        trace::PhaseId::kFftTranspose, trace::PhaseId::kPtransTranspose}) {
    EXPECT_GT(rec.phase_s[static_cast<std::size_t>(phase)], 0.0)
        << to_string(phase);
  }
}

// ------------------------------------------------------------ comparison

TEST(Compare, IdenticalRecordsPass) {
  const metrics::RunRecord rec = sample_record();
  const metrics::CompareResult result = metrics::compare(rec, rec);
  EXPECT_TRUE(result.pass());
  EXPECT_EQ(result.compared, 2u);
  EXPECT_TRUE(result.regressions.empty());
  EXPECT_TRUE(result.improvements.empty());
}

TEST(Compare, PerturbedRecordFailsInBothDirections) {
  const metrics::RunRecord base = sample_record();
  metrics::RunRecord worse = sample_record();
  // The t_avg metric reports cov 0.04, so its noise floor is 3 x 4% =
  // 12%; a 10% perturbation only trips the deterministic bandwidth
  // metric, a 20% one trips both directions.
  metrics::perturb(worse, 1.10);
  const metrics::CompareResult mild = metrics::compare(base, worse);
  EXPECT_FALSE(mild.pass());
  EXPECT_EQ(mild.regressions.size(), 1u);
  EXPECT_EQ(mild.regressions[0].name, "imb/Sendrecv/bandwidth");

  worse = sample_record();
  metrics::perturb(worse, 1.20);
  const metrics::CompareResult result = metrics::compare(base, worse);
  EXPECT_FALSE(result.pass());
  EXPECT_EQ(result.regressions.size(), 2u);
  // And the reverse comparison reports improvements, not regressions.
  const metrics::CompareResult reverse = metrics::compare(worse, base);
  EXPECT_TRUE(reverse.pass());
  EXPECT_EQ(reverse.improvements.size(), 2u);
}

TEST(Compare, CovNoiseFloorSuppressesNoisyMetric) {
  metrics::RunRecord base;
  metrics::Metric& m =
      base.add_metric("noisy/t", 1.0, "s", metrics::Better::kLower);
  m.cov = 0.05;  // 5% run-to-run noise
  metrics::RunRecord cand = base;
  cand.metrics[0].value = 1.10;  // +10% — inside 3 x 5% noise floor
  EXPECT_TRUE(metrics::compare(base, cand).pass());
  cand.metrics[0].value = 1.20;  // +20% — beyond the floor
  EXPECT_FALSE(metrics::compare(base, cand).pass());
}

TEST(Compare, ThresholdOptionWidensTolerance) {
  metrics::RunRecord base;
  base.add_metric("t", 1.0, "s", metrics::Better::kLower);
  metrics::RunRecord cand = base;
  cand.metrics[0].value = 1.08;
  EXPECT_FALSE(metrics::compare(base, cand).pass());
  metrics::CompareOptions options;
  options.rel_threshold = 0.10;
  EXPECT_TRUE(metrics::compare(base, cand, options).pass());
}

TEST(Compare, CountsDisjointMetrics) {
  metrics::RunRecord base;
  base.add_metric("shared", 1.0, "s", metrics::Better::kLower);
  base.add_metric("only-base", 1.0, "s", metrics::Better::kLower);
  metrics::RunRecord cand;
  cand.add_metric("shared", 1.0, "s", metrics::Better::kLower);
  cand.add_metric("only-cand", 1.0, "s", metrics::Better::kLower);
  const metrics::CompareResult result = metrics::compare(base, cand);
  EXPECT_EQ(result.compared, 1u);
  EXPECT_EQ(result.baseline_only, 1u);
  EXPECT_EQ(result.candidate_only, 1u);
}

TEST(Compare, TableRendersVerdict) {
  const metrics::RunRecord base = sample_record();
  metrics::RunRecord worse = sample_record();
  metrics::perturb(worse, 1.25);
  std::ostringstream pass_os, fail_os;
  metrics::compare_table(metrics::compare(base, base)).print(pass_os);
  metrics::compare_table(metrics::compare(base, worse)).print(fail_os);
  EXPECT_NE(pass_os.str().find("PASS"), std::string::npos);
  EXPECT_NE(fail_os.str().find("REGRESSED"), std::string::npos);
  EXPECT_NE(fail_os.str().find("imb/Allreduce/t_avg"), std::string::npos);
}

}  // namespace
