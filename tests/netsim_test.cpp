// Network simulator timing properties: latency, serialisation,
// contention, intra-node vs inter-node paths.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"
#include "netsim/network.hpp"
#include "topology/crossbar.hpp"

namespace hpcx::net {
namespace {

// Two hosts on a crossbar with 1 GB/s links and 1 us per-hop latency.
topo::Graph two_hosts() {
  topo::CrossbarConfig cfg;
  cfg.num_hosts = 2;
  cfg.host_link = topo::LinkParams{1e9, 1e-6};
  return topo::build_crossbar(cfg);
}

NicParams fast_nic() {
  NicParams nic;
  nic.send_overhead_s = 1e-6;
  nic.recv_overhead_s = 1e-6;
  nic.injection_Bps = 1e9;
  nic.per_message_gap_s = 0.0;
  return nic;
}

NodeParams plain_node() {
  NodeParams node;
  node.intranode_Bps = 2e9;
  node.intranode_latency_s = 0.5e-6;
  node.node_mem_Bps = 4e9;
  return node;
}

struct Delivery {
  double time = -1.0;
};

TEST(Network, ZeroByteMessageCostsLatencyOnly) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  Delivery d;
  sim.spawn([&] { net.send(0, 1, 0, [&] { d.time = sim.now(); }); });
  sim.run();
  // o_send (1 us) + 2 hops x 1 us = 3 us; no serialisation.
  EXPECT_NEAR(3e-6, d.time, 1e-12);
}

TEST(Network, LargeMessageIsBandwidthBound) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  Delivery d;
  const std::size_t mb = 1 << 20;
  sim.spawn([&] { net.send(0, 1, mb, [&] { d.time = sim.now(); }); });
  sim.run();
  // Dominated by ~1 MiB / 1 GB/s ~= 1.05 ms; latency terms are noise.
  EXPECT_NEAR(static_cast<double>(mb) / 1e9, d.time, 20e-6);
}

TEST(Network, SenderBlockedForInjection) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  double sender_done = -1;
  const std::size_t mb = 1 << 20;
  sim.spawn([&] {
    net.send(0, 1, mb, [] {});
    sender_done = sim.now();
  });
  sim.run();
  // o_send + bytes/injection_Bps.
  EXPECT_NEAR(1e-6 + static_cast<double>(mb) / 1e9, sender_done, 1e-9);
}

TEST(Network, BackToBackMessagesSerialiseOnLink) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  std::vector<double> deliveries;
  const std::size_t mb = 1 << 20;
  sim.spawn([&] {
    net.send(0, 1, mb, [&] { deliveries.push_back(sim.now()); });
    net.send(0, 1, mb, [&] { deliveries.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(2u, deliveries.size());
  const double gap = deliveries[1] - deliveries[0];
  // Second message cannot beat the first's serialisation time.
  EXPECT_GE(gap, static_cast<double>(mb) / 1e9 * 0.99);
}

TEST(Network, CrossTrafficContendsOnSharedLink) {
  // Hosts 0 and 1 both send to host 2: host 2's downlink serialises.
  topo::CrossbarConfig cfg;
  cfg.num_hosts = 3;
  cfg.host_link = topo::LinkParams{1e9, 1e-6};
  des::Simulator sim;
  Network net(sim, topo::build_crossbar(cfg), fast_nic(), plain_node());
  std::vector<double> deliveries;
  const std::size_t mb = 1 << 20;
  for (int src : {0, 1})
    sim.spawn([&, src] {
      net.send(src, 2, mb, [&] { deliveries.push_back(sim.now()); });
    });
  sim.run();
  ASSERT_EQ(2u, deliveries.size());
  const double later = std::max(deliveries[0], deliveries[1]);
  // Two megabytes through one 1 GB/s downlink: >= 2 ms.
  EXPECT_GE(later, 2.0 * static_cast<double>(mb) / 1e9 * 0.99);
}

TEST(Network, IntranodeBypassesNetwork) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  Delivery d;
  const std::size_t mb = 1 << 20;
  sim.spawn([&] { net.send(1, 1, mb, [&] { d.time = sim.now(); }); });
  sim.run();
  // intranode latency + bytes / intranode 2 GB/s — faster than the wire.
  EXPECT_NEAR(0.5e-6 + static_cast<double>(mb) / 2e9, d.time, 1e-9);
  EXPECT_EQ(1u, net.intranode_messages());
  EXPECT_EQ(0u, net.internode_messages());
}

TEST(Network, NodeMemoryContentionStretchesConcurrentCopies) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  std::vector<double> deliveries;
  const std::size_t big = 8 << 20;
  for (int i = 0; i < 4; ++i)
    sim.spawn([&] {
      net.send(0, 0, big, [&] { deliveries.push_back(sim.now()); });
    });
  sim.run();
  ASSERT_EQ(4u, deliveries.size());
  // 4 copies x 8 MiB through a 4 GB/s aggregate: >= 8 MiB / 1 GB/s each
  // on average; the last one finishes no earlier than 32 MiB / 4 GB/s.
  const double last = *std::max_element(deliveries.begin(), deliveries.end());
  EXPECT_GE(last, 4.0 * static_cast<double>(big) / 4e9 * 0.99);
}

TEST(Network, MessageCountersAccumulate) {
  des::Simulator sim;
  Network net(sim, two_hosts(), fast_nic(), plain_node());
  sim.spawn([&] {
    net.send(0, 1, 100, [] {});
    net.send(0, 1, 200, [] {});
    net.send(0, 0, 300, [] {});
  });
  sim.run();
  EXPECT_EQ(2u, net.internode_messages());
  EXPECT_EQ(1u, net.intranode_messages());
  EXPECT_EQ(300u, net.internode_bytes());
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    des::Simulator sim;
    topo::CrossbarConfig cfg;
    cfg.num_hosts = 8;
    cfg.host_link = topo::LinkParams{1e9, 1e-6};
    Network net(sim, topo::build_crossbar(cfg), fast_nic(), plain_node());
    std::vector<double> deliveries;
    for (int s = 0; s < 8; ++s)
      sim.spawn([&, s] {
        for (int k = 1; k < 8; ++k)
          net.send(s, (s + k) % 8, 4096u * static_cast<unsigned>(k),
                   [&] { deliveries.push_back(sim.now()); });
      });
    sim.run();
    return deliveries;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hpcx::net
