// Paper-shape acceptance tests: the qualitative claims of Saini et al.
// (orderings, factors, crossovers) encoded as assertions against the
// simulated machines. These are the "does the reproduction reproduce"
// tests; EXPERIMENTS.md records the corresponding quantitative tables.
#include <gtest/gtest.h>

#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx {
namespace {

double imb_us(const mach::MachineConfig& m, int cpus, imb::BenchmarkId id,
              std::size_t msg = 1 << 20) {
  double us = 0;
  xmpi::run_on_machine(m, cpus, [&](xmpi::Comm& c) {
    imb::ImbParams p;
    p.msg_bytes = msg;
    p.phantom = true;
    p.repetitions = 2;
    const auto r = imb::run_benchmark(id, c, p);
    if (c.rank() == 0) us = r.t_avg_s * 1e6;
  });
  return us;
}

double imb_bw(const mach::MachineConfig& m, int cpus, imb::BenchmarkId id) {
  double bw = 0;
  xmpi::run_on_machine(m, cpus, [&](xmpi::Comm& c) {
    imb::ImbParams p;
    p.msg_bytes = 1 << 20;
    p.phantom = true;
    p.repetitions = 2;
    const auto r = imb::run_benchmark(id, c, p);
    if (c.rank() == 0) bw = r.bandwidth_Bps;
  });
  return bw;
}

// --- Section 5.2: "performance of NEC SX-8 > Cray X1 > SGI Altix BX2 >
// Dell Xeon Cluster > Cray Opteron Cluster" on the IMB collectives. ---

TEST(PaperShapes, CollectiveOrderingAt16Cpus) {
  // Reductions: the strict NEC > X1 > Altix > Opteron ordering of the
  // conclusions holds wherever the memory-bound combine matters.
  for (const auto id :
       {imb::BenchmarkId::kAllreduce, imb::BenchmarkId::kReduce}) {
    const double nec = imb_us(mach::nec_sx8(), 16, id);
    const double x1 = imb_us(mach::cray_x1_msp(), 16, id);
    const double altix = imb_us(mach::altix_bx2(), 16, id);
    const double opteron = imb_us(mach::cray_opteron(), 16, id);
    EXPECT_LT(nec, x1) << to_string(id);
    EXPECT_LT(x1, altix) << to_string(id);
    EXPECT_LT(altix, opteron) << to_string(id);
  }
}

TEST(PaperShapes, Fig7AllreduceScalarOrderingAt64) {
  // "Performance of Altix BX2 is better than Dell Xeon Cluster"; "worst
  // performance is that of Cray Opteron Cluster".
  const double altix = imb_us(mach::altix_bx2(), 64,
                              imb::BenchmarkId::kAllreduce);
  const double xeon = imb_us(mach::dell_xeon(), 64,
                             imb::BenchmarkId::kAllreduce);
  const double opteron = imb_us(mach::cray_opteron(), 64,
                                imb::BenchmarkId::kAllreduce);
  const double nec = imb_us(mach::nec_sx8(), 64,
                            imb::BenchmarkId::kAllreduce);
  EXPECT_LT(altix, xeon);
  EXPECT_LT(xeon, opteron);
  EXPECT_LT(nec, altix);
}

TEST(PaperShapes, Fig8ReduceVectorScalarGap) {
  // "Performance of vector systems is an order of magnitude better than
  // scalar systems" (Reduce, 1 MB).
  const double nec = imb_us(mach::nec_sx8(), 16, imb::BenchmarkId::kReduce);
  const double x1 = imb_us(mach::cray_x1_msp(), 16,
                           imb::BenchmarkId::kReduce);
  for (const auto& scalar :
       {mach::altix_bx2(), mach::dell_xeon(), mach::cray_opteron()}) {
    const double t = imb_us(scalar, 16, imb::BenchmarkId::kReduce);
    EXPECT_GT(t, 4.0 * nec) << scalar.name;
    EXPECT_GT(t, 2.0 * x1) << scalar.name;
  }
}

TEST(PaperShapes, Fig6BarrierAltixBestSmallNecBestLarge) {
  // "For less than 16 processors, SGI Altix BX2 is the fastest"; "for
  // large CPU counts, NEC SX-8 has the best barrier time".
  for (const auto& other : {mach::cray_x1_msp(), mach::cray_opteron(),
                            mach::dell_xeon(), mach::nec_sx8()}) {
    EXPECT_LT(imb_us(mach::altix_bx2(), 8, imb::BenchmarkId::kBarrier, 0),
              imb_us(other, 8, imb::BenchmarkId::kBarrier, 0))
        << other.name;
  }
  EXPECT_LT(imb_us(mach::nec_sx8(), 512, imb::BenchmarkId::kBarrier, 0),
            imb_us(mach::altix_bx2(), 512, imb::BenchmarkId::kBarrier, 0));
  EXPECT_LT(imb_us(mach::nec_sx8(), 512, imb::BenchmarkId::kBarrier, 0),
            imb_us(mach::dell_xeon(), 512, imb::BenchmarkId::kBarrier, 0));
}

TEST(PaperShapes, Fig13SendrecvIntraNodeAnchors) {
  // "On the NEC SX-8 ... the IMB Sendreceive bandwidth for 2 processors
  // is 47.4 GB/s. Whereas for the Cray X1 (SSP) ... only 7.6 GB/s."
  const double nec = imb_bw(mach::nec_sx8(), 2, imb::BenchmarkId::kSendrecv);
  EXPECT_NEAR(47.4e9, nec, 0.2 * 47.4e9);
  const double ssp = imb_bw(mach::cray_x1_ssp(), 2,
                            imb::BenchmarkId::kSendrecv);
  EXPECT_NEAR(7.6e9, ssp, 0.2 * 7.6e9);
  // "systems perform the best when running 2 processors"
  EXPECT_GT(nec, imb_bw(mach::nec_sx8(), 32, imb::BenchmarkId::kSendrecv));
}

TEST(PaperShapes, Fig14ExchangeNecWinsXeonSecondAtScale) {
  const double nec = imb_bw(mach::nec_sx8(), 128,
                            imb::BenchmarkId::kExchange);
  const double xeon = imb_bw(mach::dell_xeon(), 128,
                             imb::BenchmarkId::kExchange);
  const double opteron = imb_bw(mach::cray_opteron(), 64,
                                imb::BenchmarkId::kExchange);
  EXPECT_GT(nec, xeon);
  // "the performance of Cray Opteron Cluster is the lowest"
  EXPECT_GT(imb_bw(mach::dell_xeon(), 64, imb::BenchmarkId::kExchange),
            opteron);
}

TEST(PaperShapes, Fig12AlltoallFullOrdering) {
  // "NEC SX-8 (IXS) > Cray X1 > SGI Altix BX2 (NUMALINK4) > Dell Xeon
  // Cluster (InfiniBand) > Cray Opteron Cluster (Myrinet)"; the paper
  // also notes X1 and Altix are "very close", with Altix ahead only up
  // to eight processors.
  const double nec = imb_us(mach::nec_sx8(), 32, imb::BenchmarkId::kAlltoall);
  const double x1 = imb_us(mach::cray_x1_ssp(), 32,
                           imb::BenchmarkId::kAlltoall);
  const double altix = imb_us(mach::altix_bx2(), 32,
                              imb::BenchmarkId::kAlltoall);
  const double xeon = imb_us(mach::dell_xeon(), 32,
                             imb::BenchmarkId::kAlltoall);
  const double opteron = imb_us(mach::cray_opteron(), 32,
                                imb::BenchmarkId::kAlltoall);
  EXPECT_LT(nec, x1);
  EXPECT_LT(nec, altix);
  EXPECT_LT(x1, 2.0 * altix);   // "very close"
  EXPECT_LT(altix, 2.0 * x1);
  EXPECT_LT(altix, xeon);
  EXPECT_LT(xeon, opteron);
  // Known divergence (see EXPERIMENTS.md): the paper has Altix ahead of
  // the X1 below 8 processors; in our model the X1's single fat-memory
  // node wins that regime, so only the "very close" relation is checked.
}

// --- Figs 1-4 balance analysis ---

TEST(PaperShapes, Fig2AltixMultiBoxDeclineAndCrossover) {
  hpcc::HpccParts parts;
  parts.ptrans = parts.random_access = parts.fft = false;
  auto ratio = [&](const mach::MachineConfig& m, int cpus) {
    const auto r = hpcc::run_hpcc_sim(m, cpus, {}, parts);
    return r.ring_bw_Bps * cpus / r.g_hpl_flops * 1000.0;  // B/kFlop
  };
  const double altix_box = ratio(mach::altix_bx2(), 256);
  const double altix_multi = ratio(mach::altix_bx2(), 1024);
  // "A steep decrease in the B/KFlop value ... above 512 CPUs runs
  // (203.12 ... to 23.18)": roughly an order of magnitude.
  EXPECT_GT(altix_box, 4.0 * altix_multi);
  // "This can also be noticed from the cross over of the ratio curves
  // between Altix and the NEC SX-8."
  const double nec = ratio(mach::nec_sx8(), 256);
  EXPECT_GT(altix_box, nec);
  EXPECT_LT(altix_multi, nec);
}

TEST(PaperShapes, Fig2Numalink4BeatsNumalink3) {
  hpcc::HpccParts parts;
  parts.ptrans = parts.random_access = parts.fft = false;
  const auto nl4 = hpcc::run_hpcc_sim(mach::altix_bx2(), 128, {}, parts);
  const auto nl3 = hpcc::run_hpcc_sim(mach::altix_numalink3(), 128, {},
                                      parts);
  EXPECT_GT(nl4.ring_bw_Bps, 1.5 * nl3.ring_bw_Bps);
}

TEST(PaperShapes, Fig4ByteFlopAnchors) {
  hpcc::HpccParts parts;
  parts.ptrans = parts.random_access = parts.fft = parts.ring = false;
  auto byte_per_flop = [&](const mach::MachineConfig& m, int cpus) {
    const auto r = hpcc::run_hpcc_sim(m, cpus, {}, parts);
    return r.ep_stream_copy_Bps * cpus / r.g_hpl_flops;
  };
  // "The Byte/Flop for NEC SX-8 is consistently above 2.67."
  EXPECT_GT(byte_per_flop(mach::nec_sx8(), 64), 2.67);
  // "for SGI Altix ... above 0.36"
  EXPECT_GT(byte_per_flop(mach::altix_bx2(), 64), 0.36);
  // "Cray Opteron is between 0.84 and 1.07" — allow a generous band.
  const double opteron = byte_per_flop(mach::cray_opteron(), 64);
  EXPECT_GT(opteron, 0.5);
  EXPECT_LT(opteron, 1.4);
}

TEST(PaperShapes, Fig5OpteronWinsDgemmToHplRatio) {
  // "the Cray Opteron performs best in EP DGEMM because of its lower HPL
  // efficiency when compared to the other systems".
  hpcc::HpccParts parts;
  parts.ptrans = parts.random_access = parts.fft = parts.ring = false;
  auto dgemm_ratio = [&](const mach::MachineConfig& m, int cpus) {
    const auto r = hpcc::run_hpcc_sim(m, cpus, {}, parts);
    return r.ep_dgemm_flops * cpus / r.g_hpl_flops;
  };
  const double opteron = dgemm_ratio(mach::cray_opteron(), 64);
  EXPECT_GT(opteron, dgemm_ratio(mach::altix_bx2(), 128));
  EXPECT_GT(opteron, dgemm_ratio(mach::nec_sx8(), 128));
  EXPECT_GT(opteron, dgemm_ratio(mach::dell_xeon(), 128));
}

TEST(PaperShapes, VectorMachinesLeadStreamPerCpu) {
  // Fig 3 and the conclusions: "the high memory bandwidth available on
  // the NEC SX-8 can clearly be seen with the stream benchmark".
  const double nec = mach::nec_sx8().stream_per_cpu_all_active();
  for (const auto& m : {mach::altix_bx2(), mach::dell_xeon(),
                        mach::cray_opteron()})
    EXPECT_GT(nec, 10.0 * m.stream_per_cpu_all_active()) << m.name;
}

}  // namespace
}  // namespace hpcx
