// Parallel-DES determinism: the conservative multi-LP engine must
// reproduce the serial engine's schedule exactly.
//
// The contract (see DESIGN.md, "LP partitioning") is stronger than
// statistical equivalence: at any worker count and any LP count the
// parallel engine replays the serial (time, seq) event order through
// cross-window order reconstruction, so every simulated makespan is
// *bit-identical* to the serial engine's. These tests pin that contract
// on the five paper machines (which between them cover fat-tree, Clos,
// crossbar and hardware-barrier paths), on non-power-of-two LP counts
// that force uneven leaf-group unions, and under repeated multi-worker
// runs (the tsan preset turns the last one into a race hunt).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "machine/registry.hpp"
#include "topology/partition.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx {
namespace {

// Same golden workload as engine_determinism_test: allreduce(16 KiB
// doubles) -> barrier -> alltoall(256 B per peer) over 32 ranks. Broad
// engine coverage (tree + ring schedules, hardware barrier, per-message
// serialisation) in a sub-second run.
constexpr int kRanks = 32;

void golden_workload(xmpi::Comm& c) {
  c.allreduce(xmpi::phantom_cbuf(16384, xmpi::DType::kF64),
              xmpi::phantom_mbuf(16384, xmpi::DType::kF64), xmpi::ROp::kSum);
  c.barrier();
  c.alltoall(xmpi::phantom_cbuf(kRanks * 256, xmpi::DType::kByte),
             xmpi::phantom_mbuf(kRanks * 256, xmpi::DType::kByte));
}

xmpi::SimRunResult run(const mach::MachineConfig& machine, int workers,
                       int lps = 0) {
  xmpi::SimRunOptions options;
  options.sim_workers = workers;
  options.sim_lps = lps;
  return xmpi::run_on_machine(machine, kRanks, golden_workload, options);
}

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Full-result equality: makespan compared bitwise, traffic counters
// exactly. Link hotspot lists are derived from the same counters and
// checked by size only (ordering among equal-busy links is stable too,
// but the counters are the primary contract).
void expect_same_result(const xmpi::SimRunResult& serial,
                        const xmpi::SimRunResult& parallel,
                        const char* label) {
  EXPECT_EQ(bits_of(serial.makespan_s), bits_of(parallel.makespan_s))
      << label << ": serial " << serial.makespan_s << " vs parallel "
      << parallel.makespan_s;
  EXPECT_EQ(serial.internode_messages, parallel.internode_messages) << label;
  EXPECT_EQ(serial.intranode_messages, parallel.intranode_messages) << label;
  EXPECT_EQ(serial.internode_bytes, parallel.internode_bytes) << label;
  EXPECT_EQ(serial.hottest_links.size(), parallel.hottest_links.size())
      << label;
}

struct PaperMachine {
  const char* name;
  mach::MachineConfig (*machine)();
};

constexpr PaperMachine kPaperMachines[] = {
    {"altix_bx2", mach::altix_bx2},   {"cray_x1_msp", mach::cray_x1_msp},
    {"cray_opteron", mach::cray_opteron}, {"dell_xeon", mach::dell_xeon},
    {"nec_sx8", mach::nec_sx8},
};

class PdesDeterminism : public ::testing::TestWithParam<PaperMachine> {};

// Worker-count invariance: the serial engine's makespan must be
// reproduced bit-exactly at 2, 4 and 8 host workers.
TEST_P(PdesDeterminism, MakespanMatchesSerialAtAnyWorkerCount) {
  const PaperMachine& pm = GetParam();
  const xmpi::SimRunResult serial = run(pm.machine(), 1);
  for (int workers : {2, 4, 8}) {
    const xmpi::SimRunResult parallel = run(pm.machine(), workers);
    expect_same_result(serial, parallel,
                       (std::string(pm.name) + " workers=" +
                        std::to_string(workers))
                           .c_str());
  }
}

// LP-count invariance: the schedule depends only on event times, never
// on where the partition boundaries fall. Odd LP counts force uneven
// unions of topology leaf groups.
TEST_P(PdesDeterminism, MakespanInvariantAcrossLpCounts) {
  const PaperMachine& pm = GetParam();
  const xmpi::SimRunResult serial = run(pm.machine(), 1);
  for (int lps : {2, 3, 5, 7}) {
    const xmpi::SimRunResult parallel = run(pm.machine(), 2, lps);
    expect_same_result(
        serial, parallel,
        (std::string(pm.name) + " lps=" + std::to_string(lps)).c_str());
  }
}

// Single worker through the parallel engine (sim_lps > 1 forces the
// multi-LP path even with one host thread): windowing alone must not
// perturb the schedule.
TEST_P(PdesDeterminism, SingleWorkerMultiLpMatchesSerial)
{
  const PaperMachine& pm = GetParam();
  const xmpi::SimRunResult serial = run(pm.machine(), 1);
  const xmpi::SimRunResult windowed = run(pm.machine(), 1, 4);
  expect_same_result(serial, windowed, pm.name);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, PdesDeterminism,
                         ::testing::ValuesIn(kPaperMachines),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// Forced single-timestamp pile-ups at segment-forcing scale. Every
// rank enters each round at the same instant (a barrier release), then
// a tiny uniform alltoall pushes hundreds of equal-latency messages —
// thousands of order-log entries share each timestamp across all LPs,
// so the segmented merge's boundary search keeps rejecting candidate
// splits (a split inside a pile-up would separate pushers from their
// pushees) and must still reproduce the serial order bit-exactly.
// sim_merge_min_events drops the segment-size floor so these small
// windows segment like 64Ki-rank production windows do (the floor only
// re-buckets identical merge output); dell_xeon covers the software
// tree barrier, nec_sx8 the hardware-barrier rendezvous whose flush
// tail stays serial. 16 LPs exceeds the 8 host workers, so worker
// striding over LPs and merge segments is exercised too.
TEST(PdesStress, SingleTimestampPileUpsAcrossLpCounts) {
  constexpr int kPileRanks = 256;
  const auto pileup_workload = [](xmpi::Comm& c) {
    for (int round = 0; round < 2; ++round) {
      c.barrier();
      c.alltoall(xmpi::phantom_cbuf(kPileRanks * 8, xmpi::DType::kByte),
                 xmpi::phantom_mbuf(kPileRanks * 8, xmpi::DType::kByte));
    }
    c.barrier();
  };
  for (auto machine : {mach::dell_xeon, mach::nec_sx8}) {
    const mach::MachineConfig m = machine();
    const xmpi::SimRunResult serial =
        xmpi::run_on_machine(m, kPileRanks, pileup_workload);
    for (int lps : {2, 3, 5, 7, 16}) {
      xmpi::SimRunOptions options;
      options.sim_workers = 8;
      options.sim_lps = lps;
      options.sim_merge_min_events = 16;
      const xmpi::SimRunResult parallel =
          xmpi::run_on_machine(m, kPileRanks, pileup_workload, options);
      expect_same_result(
          serial, parallel,
          (m.short_name + " pile-up lps=" + std::to_string(lps)).c_str());
    }
  }
}

// Repeated multi-worker runs are bit-identical to each other — under
// the tsan preset this doubles as the race hunt over the worker pool,
// cross-LP inboxes and the order-reconstruction merge.
TEST(PdesStress, RepeatedEightWorkerRunsAreBitIdentical) {
  const xmpi::SimRunResult first = run(mach::cray_opteron(), 8);
  for (int i = 0; i < 4; ++i) {
    const xmpi::SimRunResult again = run(mach::cray_opteron(), 8);
    EXPECT_EQ(bits_of(first.makespan_s), bits_of(again.makespan_s))
        << "iteration " << i;
  }
}

// A blocked workload must die with the serial engine's deadlock
// vocabulary (harness error handling keys on it), not hang a window
// loop or report a different message.
TEST(PdesFailure, DeadlockReportsBlockedProcesses) {
  xmpi::SimRunOptions options;
  options.sim_workers = 2;
  try {
    xmpi::run_on_machine(
        mach::dell_xeon(), 4,
        [](xmpi::Comm& c) {
          if (c.rank() == 0) {
            // Nobody ever sends tag 99: rank 0 blocks forever.
            c.recv(1, 99, xmpi::phantom_mbuf(1, xmpi::DType::kByte));
          }
        },
        options);
    FAIL() << "expected a deadlock error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("simulation deadlock"),
              std::string::npos)
        << e.what();
  }
}

// Partition unit coverage: every host in exactly one LP, LP host lists
// ascending and contiguous with the lp_of_host map, the target count
// respected when feasible, and the whole thing a pure function of the
// graph.
TEST(Partition, CoversEveryHostExactlyOnce) {
  const mach::MachineConfig m = mach::altix_bx2();
  const topo::Graph g = m.build_topology(m.nodes_for(kRanks));
  const topo::Partition p = topo::partition_hosts(g, 4);
  ASSERT_GE(p.num_lps(), 1);
  EXPECT_EQ(p.lp_of_host.size(), g.num_hosts());
  std::set<int> seen;
  for (int lp = 0; lp < p.num_lps(); ++lp) {
    int prev = -1;
    for (int h : p.hosts_of_lp[static_cast<std::size_t>(lp)]) {
      EXPECT_GT(h, prev) << "hosts of an LP must ascend";
      prev = h;
      EXPECT_EQ(p.lp_of_host[static_cast<std::size_t>(h)], lp);
      EXPECT_TRUE(seen.insert(h).second) << "host " << h << " owned twice";
    }
  }
  EXPECT_EQ(seen.size(), g.num_hosts());
}

TEST(Partition, RespectsTargetAndIsDeterministic) {
  const mach::MachineConfig m = mach::cray_opteron();
  const topo::Graph g = m.build_topology(m.nodes_for(kRanks));
  for (int target : {1, 2, 3, 5, 7}) {
    const topo::Partition a = topo::partition_hosts(g, target);
    const topo::Partition b = topo::partition_hosts(g, target);
    EXPECT_LE(a.num_lps(), std::max(target, 1));
    EXPECT_EQ(a.lp_of_host, b.lp_of_host) << "target " << target;
  }
}

}  // namespace
}  // namespace hpcx
