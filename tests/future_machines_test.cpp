// The five projected future systems (paper's conclusion): models build,
// run the suites, and behave according to their architecture class.
#include <gtest/gtest.h>

#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/future.hpp"
#include "machine/registry.hpp"
#include "topology/metrics.hpp"
#include "topology/routing.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx::mach {
namespace {

TEST(FutureMachines, AllFiveBuildAndRoute) {
  const auto machines = future_machines();
  ASSERT_EQ(5u, machines.size());
  for (const auto& m : machines) {
    const int nodes = m.nodes_for(std::min(m.max_cpus, 64));
    const topo::Graph g = m.build_topology(nodes);
    EXPECT_EQ(static_cast<std::size_t>(nodes), g.num_hosts()) << m.name;
    const topo::Routing routing(g);
    if (nodes >= 2) {
      EXPECT_GT(routing.distance(0, nodes - 1), 0) << m.name;
    }
  }
}

TEST(FutureMachines, TorusMachinesUseTorusTopology) {
  EXPECT_EQ(TopologyKind::kTorus, bluegene_p().topology);
  EXPECT_EQ(TopologyKind::kTorus, cray_xt4().topology);
  // A 64-node 3-D torus slice: bisection is 2 * 4 * 4 ring cuts.
  const topo::Graph g = cray_xt4().build_topology(64);
  EXPECT_GT(topo::bisection_bandwidth(g), 0.0);
}

TEST(FutureMachines, SuitesRunOnEveryFutureSystem) {
  for (const auto& m : future_machines()) {
    const int cpus = std::min(m.max_cpus, 32);
    double us = 0;
    xmpi::run_on_machine(m, cpus, [&](xmpi::Comm& c) {
      imb::ImbParams p;
      p.msg_bytes = 1 << 16;
      p.phantom = true;
      p.repetitions = 2;
      const auto r = imb::run_benchmark(imb::BenchmarkId::kAllreduce, c, p);
      if (c.rank() == 0) us = r.t_avg_s * 1e6;
    });
    EXPECT_GT(us, 0.0) << m.name;
  }
}

TEST(FutureMachines, GigEIsTheSlowFloorAndXt4BeatsOldOpteron) {
  auto allreduce_us = [](const MachineConfig& m) {
    double us = 0;
    xmpi::run_on_machine(m, 64, [&](xmpi::Comm& c) {
      imb::ImbParams p;
      p.msg_bytes = 1 << 20;
      p.phantom = true;
      p.repetitions = 2;
      const auto r = imb::run_benchmark(imb::BenchmarkId::kAllreduce, c, p);
      if (c.rank() == 0) us = r.t_avg_s * 1e6;
    });
    return us;
  };
  const double gige = allreduce_us(gige_cluster());
  const double xt4 = allreduce_us(cray_xt4());
  const double old_opteron = allreduce_us(cray_opteron());
  EXPECT_GT(gige, old_opteron);  // GigE is worse than even Myrinet
  EXPECT_LT(xt4, old_opteron);   // SeaStar2 beats the 2004 Myrinet cluster
}

TEST(FutureMachines, X1eOutrunsX1) {
  // Same family, higher clock and density: X1E must beat the X1 on HPL.
  hpcc::HpccParts parts;
  parts.ptrans = parts.random_access = parts.fft = parts.ring = false;
  const auto x1 = hpcc::run_hpcc_sim(cray_x1_msp(), 16, {}, parts);
  const auto x1e = hpcc::run_hpcc_sim(cray_x1e(), 16, {}, parts);
  EXPECT_GT(x1e.g_hpl_flops, x1.g_hpl_flops);
}

}  // namespace
}  // namespace hpcx::mach
