// Topology builders, routing, and exact bisection bandwidth.
#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "topology/clos.hpp"
#include "topology/crossbar.hpp"
#include "topology/fat_tree.hpp"
#include "topology/graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/metrics.hpp"
#include "topology/routing.hpp"

namespace hpcx::topo {
namespace {

constexpr double kGB = 1e9;

LinkParams link(double gbps) { return LinkParams{gbps * kGB, 1e-7}; }

TEST(Graph, HostAndSwitchBookkeeping) {
  Graph g;
  const VertexId h0 = g.add_host("h0");
  const VertexId s = g.add_switch("s");
  const VertexId h1 = g.add_host("h1");
  g.add_duplex_link(h0, s, link(1));
  g.add_duplex_link(h1, s, link(1));
  EXPECT_EQ(3u, g.num_vertices());
  EXPECT_EQ(2u, g.num_hosts());
  EXPECT_EQ(4u, g.num_edges());  // two duplex cables = four directed edges
  EXPECT_EQ(0, g.host_index(h0));
  EXPECT_EQ(1, g.host_index(h1));
  EXPECT_EQ(VertexKind::kSwitch, g.kind(s));
}

TEST(Graph, RejectsNonPositiveBandwidth) {
  Graph g;
  const VertexId a = g.add_host();
  const VertexId b = g.add_host();
  EXPECT_THROW(g.add_duplex_link(a, b, LinkParams{0.0, 1e-7}), ConfigError);
}

TEST(FatTree, RadixSelection) {
  EXPECT_EQ(2, fat_tree_radix_for(1));
  EXPECT_EQ(2, fat_tree_radix_for(2));
  EXPECT_EQ(4, fat_tree_radix_for(3));
  EXPECT_EQ(4, fat_tree_radix_for(16));
  EXPECT_EQ(8, fat_tree_radix_for(128));
  EXPECT_EQ(12, fat_tree_radix_for(256));
  EXPECT_EQ(16, fat_tree_radix_for(1024));
}

TEST(FatTree, FullBisectionWhenUntapered) {
  FatTreeConfig cfg;
  cfg.num_hosts = 16;
  cfg.host_link = link(1);
  cfg.fabric_link = link(1);
  const Graph g = build_fat_tree(cfg);
  EXPECT_EQ(16u, g.num_hosts());
  // Non-blocking fat tree: bisection limited only by the 8 host links of
  // one side.
  EXPECT_NEAR(8.0 * kGB, bisection_bandwidth(g), 1e-3);
}

TEST(FatTree, TaperReducesBisection) {
  FatTreeConfig cfg;
  cfg.num_hosts = 16;
  cfg.host_link = link(1);
  cfg.fabric_link = link(1);
  cfg.core_taper = 0.5;
  const Graph untapered = [&] {
    FatTreeConfig c2 = cfg;
    c2.core_taper = 1.0;
    return build_fat_tree(c2);
  }();
  const Graph tapered = build_fat_tree(cfg);
  EXPECT_LT(bisection_bandwidth(tapered), bisection_bandwidth(untapered));
}

TEST(FatTree, AllPairsReachableWithBoundedHops) {
  FatTreeConfig cfg;
  cfg.num_hosts = 20;  // partially filled pods
  cfg.host_link = link(1);
  cfg.fabric_link = link(1);
  const Graph g = build_fat_tree(cfg);
  const Routing routing(g);
  // 3-level fat tree: host-edge-agg-core-agg-edge-host = 6 hops max.
  EXPECT_LE(routing.diameter_hosts(), 6);
  for (int a = 0; a < 20; ++a)
    for (int b = 0; b < 20; ++b) {
      if (a == b) continue;
      const auto path = routing.path(a, b);
      ASSERT_FALSE(path.empty());
      // Path must start at a's host vertex and end at b's.
      EXPECT_EQ(g.hosts()[static_cast<size_t>(a)], g.edge(path.front()).from);
      EXPECT_EQ(g.hosts()[static_cast<size_t>(b)], g.edge(path.back()).to);
    }
}

TEST(Hypercube, DimensionCount) {
  EXPECT_EQ(0, hypercube_dimensions_for(1));
  EXPECT_EQ(1, hypercube_dimensions_for(2));
  EXPECT_EQ(2, hypercube_dimensions_for(4));
  EXPECT_EQ(4, hypercube_dimensions_for(16));
  EXPECT_EQ(5, hypercube_dimensions_for(17));
}

TEST(Hypercube, BisectionIsHalfTheLinks) {
  HypercubeConfig cfg;
  cfg.num_hosts = 16;
  cfg.host_link = link(10);  // ample host links; cube is the bottleneck
  cfg.cube_link = link(1);
  const Graph g = build_hypercube(cfg);
  // A d-cube with N=2^d routers has N/2 links across any dimension cut.
  // Host indices 0..7 vs 8..15 split exactly along the top dimension.
  EXPECT_NEAR(8.0 * kGB, bisection_bandwidth(g), 1e-3);
}

TEST(Hypercube, RoutingDistanceIsHammingPlusHostHops) {
  HypercubeConfig cfg;
  cfg.num_hosts = 8;
  cfg.host_link = link(1);
  cfg.cube_link = link(1);
  const Graph g = build_hypercube(cfg);
  const Routing routing(g);
  EXPECT_EQ(2 + 1, routing.distance(0, 1));  // 1 cube hop + 2 host hops
  EXPECT_EQ(2 + 3, routing.distance(0, 7));  // 0b000 -> 0b111
}

TEST(Crossbar, FullBisectionAndTwoHops) {
  CrossbarConfig cfg;
  cfg.num_hosts = 8;
  cfg.host_link = link(16);
  const Graph g = build_crossbar(cfg);
  const Routing routing(g);
  EXPECT_EQ(2, routing.diameter_hosts());
  EXPECT_NEAR(4 * 16.0 * kGB, bisection_bandwidth(g), 1e-3);
}

TEST(Clos, OversubscriptionShowsInBisection) {
  ClosConfig cfg;
  cfg.num_hosts = 32;
  cfg.hosts_per_leaf = 8;
  cfg.host_link = link(1);
  cfg.up_link = link(1);
  cfg.spines = 8;  // 1:1
  const double full = bisection_bandwidth(build_clos(cfg));
  cfg.spines = 2;  // 4:1
  const double blocked = bisection_bandwidth(build_clos(cfg));
  EXPECT_NEAR(16.0 * kGB, full, 1e-3);
  EXPECT_NEAR(4.0 * kGB, blocked, 1e-3);
}

TEST(Clos, SingleLeafNeedsNoSpine) {
  ClosConfig cfg;
  cfg.num_hosts = 6;
  cfg.hosts_per_leaf = 8;
  cfg.host_link = link(1);
  cfg.up_link = link(1);
  const Graph g = build_clos(cfg);
  const Routing routing(g);
  EXPECT_EQ(2, routing.diameter_hosts());
}

TEST(Routing, EcmpSpreadsFlows) {
  // 4-host fat tree with 2 cores: different host pairs should not all
  // share one core switch.
  FatTreeConfig cfg;
  cfg.num_hosts = 16;
  cfg.host_link = link(1);
  cfg.fabric_link = link(1);
  const Graph g = build_fat_tree(cfg);
  const Routing routing(g);
  // Collect the set of second-hop edges used by flows from different
  // sources in pod 0 to hosts in other pods; ECMP hashing should use
  // more than one distinct uplink overall.
  std::set<EdgeId> uplinks;
  for (int src = 0; src < 4; ++src)
    for (int dst = 8; dst < 16; ++dst) {
      const auto path = routing.path(src, dst);
      ASSERT_GE(path.size(), 3u);
      uplinks.insert(path[1]);
    }
  EXPECT_GT(uplinks.size(), 1u);
}

TEST(Routing, DeterministicPaths) {
  FatTreeConfig cfg;
  cfg.num_hosts = 16;
  cfg.host_link = link(1);
  cfg.fabric_link = link(1);
  const Graph g = build_fat_tree(cfg);
  const Routing r1(g);
  const Routing r2(g);
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      if (a != b) {
        EXPECT_EQ(r1.path(a, b), r2.path(a, b));
      }
}

TEST(Metrics, TotalCapacityCountsDirectedEdges) {
  Graph g;
  const VertexId a = g.add_host();
  const VertexId b = g.add_host();
  g.add_duplex_link(a, b, link(2));
  EXPECT_NEAR(4.0 * kGB, total_capacity(g), 1e-3);
}

}  // namespace
}  // namespace hpcx::topo
