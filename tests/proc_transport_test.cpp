// Regression tests for the ProcComm multi-process transport, mirroring
// transport_test.cpp across the fork boundary: eager/rendezvous
// selection at the --eager-max threshold, per-(src,tag) FIFO under
// flooding, mismatch diagnostics that keep the message queued, and the
// world-abort poisoning — including the fault-injection case where one
// rank is SIGKILLed mid-collective and every survivor must get
// CommError within the watchdog budget instead of deadlocking.
//
// Every assertion runs in the parent: EXPECT/ASSERT inside a forked
// child is invisible to gtest, so child-side checks report through the
// shared user area (run_world_collect) or through ProcRunResult's
// rank_stats / outcomes.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <functional>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "test_util.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/proc_comm.hpp"

namespace hpcx {
namespace {

using test::Backend;
using xmpi::CBuf;
using xmpi::Comm;
using xmpi::MBuf;
using xmpi::ProcRunOptions;
using xmpi::ProcRunResult;

/// Parent-side guard: the supervisor's own timeout already SIGKILLs a
/// wedged world, so this second net only fires if run_on_procs itself
/// regresses into a hang — in which case fail loudly and leave.
void with_watchdog(const std::function<void()>& fn, int timeout_s = 60) {
  auto fut = std::async(std::launch::async, fn);
  if (fut.wait_for(std::chrono::seconds(timeout_s)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "watchdog: proc world did not terminate within "
                  << timeout_s << "s";
    std::fflush(nullptr);
    std::_Exit(3);
  }
  fut.get();
}

void expect_no_failures(const std::vector<std::string>& fails) {
  for (std::size_t r = 0; r < fails.size(); ++r)
    EXPECT_TRUE(fails[r].empty()) << "rank " << r << ": " << fails[r];
}

TEST(ProcAbort, ThrowingRankPoisonsBlockedReceivers) {
  // Ranks 0 and 2 block in recv on rank 1, which throws: the supervisor
  // must poison the world so the survivors throw CommError naming the
  // dead peer instead of hanging.
  with_watchdog([] {
    ProcRunOptions options;
    options.collect_outcomes = true;
    const ProcRunResult res = xmpi::run_on_procs(
        3,
        [](Comm& c) {
          if (c.rank() == 1) throw Error("boom");
          double x = 0;
          c.recv(1, 5, MBuf{&x, 1, xmpi::DType::kF64});
        },
        options);
    ASSERT_TRUE(res.failed());
    EXPECT_NE(res.outcomes[1].error.find("boom"), std::string::npos)
        << res.outcomes[1].error;
    for (const int survivor : {0, 2}) {
      EXPECT_EQ(res.outcomes[survivor].exit_code, 1);
      EXPECT_NE(res.outcomes[survivor].error.find("peer rank 1 failed"),
                std::string::npos)
          << res.outcomes[survivor].error;
    }
  });
}

TEST(ProcAbort, ThrowingRankUnparksRendezvousSender) {
  // Rank 0's 256 KiB send is rendezvous and the 64 KiB ring fills with
  // no receiver draining it: the poisoned world must unpark the blocked
  // sender with CommError.
  with_watchdog([] {
    ProcRunOptions options;
    options.collect_outcomes = true;
    const ProcRunResult res = xmpi::run_on_procs(
        2,
        [](Comm& c) {
          if (c.rank() == 1) throw Error("boom");
          std::vector<unsigned char> buf(256 * 1024);
          c.send(1, 5, xmpi::cbuf_bytes(buf.data(), buf.size()));
        },
        options);
    ASSERT_TRUE(res.failed());
    EXPECT_NE(res.outcomes[0].error.find("peer rank 1 failed"),
              std::string::npos)
        << res.outcomes[0].error;
  });
}

TEST(ProcAbort, SigkillMidCollectiveSurfacesCommError) {
  // Fault injection: rank 1 is destroyed by SIGKILL in the middle of an
  // allreduce loop — it can never report or poison anything itself, so
  // the supervisor must do it, and every surviving rank must come back
  // with CommError("peer rank 1 failed") within the watchdog budget.
  with_watchdog([] {
    constexpr int kRanks = 4;
    ProcRunOptions options;
    options.collect_outcomes = true;
    options.timeout_s = 45;  // the budget the abort must beat
    const auto start = std::chrono::steady_clock::now();
    const ProcRunResult res = xmpi::run_on_procs(
        kRanks,
        [](Comm& c) {
          std::vector<double> in(4096, 1.0), out(4096);
          for (int iter = 0;; ++iter) {
            if (c.rank() == 1 && iter == 3) raise(SIGKILL);
            c.allreduce(xmpi::cbuf(std::span<const double>(in)),
                        xmpi::mbuf(std::span<double>(out)),
                        xmpi::ROp::kSum);
          }
        },
        options);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ASSERT_TRUE(res.failed());
    EXPECT_EQ(res.outcomes[1].term_signal, SIGKILL);
    for (const int survivor : {0, 2, 3}) {
      EXPECT_EQ(res.outcomes[survivor].term_signal, 0);
      EXPECT_EQ(res.outcomes[survivor].exit_code, 1);
      EXPECT_NE(res.outcomes[survivor].error.find("peer rank 1 failed"),
                std::string::npos)
          << "rank " << survivor << ": " << res.outcomes[survivor].error;
    }
    // Poisoning, not the timeout, must be what ended the world.
    EXPECT_LT(elapsed, options.timeout_s / 2.0);
  });
}

TEST(ProcAbort, WatchdogTimeoutKillsWedgedWorld) {
  // A receive that can never match (nothing is ever sent) must not hang
  // run_on_procs: the supervisor's deadline SIGKILLs the world.
  with_watchdog([] {
    ProcRunOptions options;
    options.collect_outcomes = true;
    options.timeout_s = 2.0;
    const ProcRunResult res = xmpi::run_on_procs(
        2,
        [](Comm& c) {
          if (c.rank() == 0) {
            double x = 0;
            c.recv(1, 99, MBuf{&x, 1, xmpi::DType::kF64});
          }
        },
        options);
    ASSERT_TRUE(res.failed());
    // Rank 1 exits cleanly; rank 0 is either SIGKILLed by the deadline
    // or, if it lost the race with the poisoning, throws CommError.
    EXPECT_TRUE(res.outcomes[0].term_signal == SIGKILL ||
                res.outcomes[0].exit_code == 1)
        << "signal " << res.outcomes[0].term_signal << " exit "
        << res.outcomes[0].exit_code;
  });
}

TEST(ProcTransport, EagerRendezvousBoundary) {
  // Sizes threshold-1 / threshold / threshold+1 around a 4 KiB eager
  // threshold: exactly the first two take the staged-copy path, the
  // third streams as rendezvous, and every payload arrives intact.
  constexpr std::size_t kThreshold = 4096;
  const std::size_t sizes[3] = {kThreshold - 1, kThreshold, kThreshold + 1};
  ProcRunOptions options;
  options.transport.eager_max_bytes = kThreshold;
  options.user_bytes = 1;
  with_watchdog([&] {
    const ProcRunResult res = xmpi::run_on_procs(
        2,
        [&sizes](Comm& c, std::span<unsigned char> user) {
          bool ok = true;
          for (int k = 0; k < 3; ++k) {
            std::vector<unsigned char> buf(sizes[k]);
            if (c.rank() == 0) {
              for (std::size_t i = 0; i < buf.size(); ++i)
                buf[i] = static_cast<unsigned char>((i + k) & 0xff);
              c.send(1, 40 + k, xmpi::cbuf_bytes(buf.data(), buf.size()));
            } else {
              c.recv(0, 40 + k, xmpi::mbuf_bytes(buf.data(), buf.size()));
              for (std::size_t i = 0; i < buf.size(); i += 97)
                ok = ok && buf[i] == static_cast<unsigned char>((i + k) & 0xff);
            }
          }
          if (c.rank() == 1) user[0] = ok ? 1 : 2;
        },
        options);
    EXPECT_EQ(res.user[0], 1) << "payload corruption on the receiver";
    EXPECT_EQ(res.rank_stats[0].sends, 3u);
    EXPECT_EQ(res.rank_stats[0].eager_sends, 2u);
    EXPECT_EQ(res.rank_stats[0].rendezvous_sends, 1u);
    EXPECT_EQ(res.rank_stats[0].bytes_sent, sizes[0] + sizes[1] + sizes[2]);
    EXPECT_EQ(res.rank_stats[1].sends, 0u);
  });
}

TEST(ProcTransport, SelfSendStaysEagerAtAnySize) {
  // A rank sending to itself above the rendezvous threshold must buffer
  // eagerly — one process cannot both park in send and run the
  // matching receive.
  with_watchdog([] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, 1, [](Comm& c, std::string& fail) {
          std::vector<std::uint64_t> src(1 << 17), dst(1 << 17);
          std::iota(src.begin(), src.end(), 0);
          c.send(0, 3, xmpi::cbuf(std::span<const std::uint64_t>(src)));
          c.recv(0, 3, xmpi::mbuf(std::span<std::uint64_t>(dst)));
          if (dst.back() != src.back()) fail = "self-send payload lost";
        });
    expect_no_failures(fails);
  });
  // The eager classification itself is visible in the stats.
  const ProcRunResult res = xmpi::run_on_procs(1, [](Comm& c) {
    std::vector<std::uint64_t> src(1 << 17), dst(1 << 17);
    c.send(0, 3, xmpi::cbuf(std::span<const std::uint64_t>(src)));
    c.recv(0, 3, xmpi::mbuf(std::span<std::uint64_t>(dst)));
  });
  EXPECT_EQ(res.rank_stats[0].eager_sends, 1u);
  EXPECT_EQ(res.rank_stats[0].rendezvous_sends, 0u);
}

TEST(ProcTransport, MismatchNamesSourceAndTagAndKeepsMessage) {
  with_watchdog([] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, 2, [](Comm& c, std::string& fail) {
          const int kTag = 7;
          if (c.rank() == 0) {
            double vals[4] = {1, 2, 3, 4};
            c.send(1, kTag, CBuf{vals, 4, xmpi::DType::kF64});
          } else {
            double out[4] = {0, 0, 0, 0};
            try {
              c.recv(0, kTag, MBuf{out, 2, xmpi::DType::kF64});  // wrong count
              fail = "mismatched recv did not throw";
              return;
            } catch (const CommError& e) {
              const std::string what = e.what();
              if (what.find("rank 0") == std::string::npos ||
                  what.find("tag 7") == std::string::npos ||
                  what.find("message left queued") == std::string::npos) {
                fail = "bad mismatch diagnostic: " + what;
                return;
              }
            }
            // The message must still be matchable by a corrected receive.
            c.recv(0, kTag, MBuf{out, 4, xmpi::DType::kF64});
            if (out[0] != 1 || out[3] != 4)
              fail = "message not kept after mismatch";
          }
        });
    expect_no_failures(fails);
  });
}

TEST(ProcTransport, ManyTagsFifoStress) {
  // Every rank floods every other rank on several tags, then drains the
  // tags in reverse order: per-(src, tag) FIFO must survive the
  // deferred-list machinery across process boundaries, including
  // streaming frames through rings much smaller than the backlog.
  constexpr int kRanks = 4;
  constexpr int kTags = 6;
  constexpr int kMsgs = 25;
  auto value = [](int src, int tag, int i) {
    return static_cast<std::int32_t>(src * 100000 + tag * 1000 + i);
  };
  with_watchdog([&] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, kRanks, [&](Comm& c, std::string& fail) {
          for (int i = 0; i < kMsgs; ++i)
            for (int tag = 0; tag < kTags; ++tag)
              for (int dst = 0; dst < kRanks; ++dst) {
                if (dst == c.rank()) continue;
                const std::int32_t v = value(c.rank(), tag, i);
                c.send(dst, tag, CBuf{&v, 1, xmpi::DType::kI32});
              }
          for (int src = 0; src < kRanks; ++src) {
            if (src == c.rank()) continue;
            for (int tag = kTags - 1; tag >= 0; --tag)
              for (int i = 0; i < kMsgs; ++i) {
                std::int32_t v = -1;
                c.recv(src, tag, MBuf{&v, 1, xmpi::DType::kI32});
                if (v != value(src, tag, i) && fail.empty())
                  fail = "FIFO broken at src " + std::to_string(src) +
                         " tag " + std::to_string(tag) + " msg " +
                         std::to_string(i) + ": got " + std::to_string(v);
              }
          }
        });
    expect_no_failures(fails);
  });
}

TEST(ProcTransport, LargeSendrecvRingAboveThreshold) {
  // Fully cyclic exchange at 4x the ring capacity: sendrecv must stream
  // deadlock-free (isend under the hood) and deliver correct data.
  constexpr std::size_t kBytes = 256 * 1024;
  with_watchdog([] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, 3, [](Comm& c, std::string& fail) {
          const int right = (c.rank() + 1) % c.size();
          const int left = (c.rank() + c.size() - 1) % c.size();
          std::vector<unsigned char> snd(kBytes,
                                         static_cast<unsigned char>(c.rank()));
          std::vector<unsigned char> rcv(kBytes, 0xFF);
          c.sendrecv(right, 11, xmpi::cbuf_bytes(snd.data(), snd.size()),
                     left, 11, xmpi::mbuf_bytes(rcv.data(), rcv.size()));
          for (std::size_t i = 0; i < rcv.size(); i += 4097)
            if (rcv[i] != static_cast<unsigned char>(left)) {
              fail = "corrupt byte at " + std::to_string(i);
              return;
            }
        });
    expect_no_failures(fails);
  });
}

TEST(ProcTransport, ZeroCountAndPhantomTraffic) {
  // Zero-element messages and phantom (metadata-only) payloads both
  // cross the ring as header-only frames.
  with_watchdog([] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, 2, [](Comm& c, std::string& fail) {
          if (c.rank() == 0) {
            c.send(1, 1, CBuf{nullptr, 0, xmpi::DType::kF64});
            c.send(1, 2, xmpi::phantom_cbuf(1 << 20, xmpi::DType::kByte));
            double v = 42.0;
            c.send(1, 3, CBuf{&v, 1, xmpi::DType::kF64});
          } else {
            c.recv(0, 1, MBuf{nullptr, 0, xmpi::DType::kF64});
            c.recv(0, 2, xmpi::phantom_mbuf(1 << 20, xmpi::DType::kByte));
            double v = 0;
            c.recv(0, 3, MBuf{&v, 1, xmpi::DType::kF64});
            if (v != 42.0) fail = "real payload after phantoms corrupted";
          }
        });
    expect_no_failures(fails);
  });
}

TEST(ProcTransport, IsendWaitIsIdempotentAndOrdered) {
  // Multiple outstanding isends to the same destination complete in
  // order; waiting twice on the same request is harmless.
  with_watchdog([] {
    const std::vector<std::string> fails = test::run_world_collect(
        Backend::kProcs, 2, [](Comm& c, std::string& fail) {
          constexpr int kN = 8;
          if (c.rank() == 0) {
            std::vector<std::vector<double>> bufs(kN);
            std::vector<xmpi::SendRequest> reqs;
            for (int i = 0; i < kN; ++i) {
              bufs[i].assign(9000, static_cast<double>(i));  // rendezvous
              reqs.push_back(c.isend(
                  1, 21, xmpi::cbuf(std::span<const double>(bufs[i]))));
            }
            for (auto& r : reqs) {
              c.wait(r);
              c.wait(r);  // second wait must be a no-op
            }
          } else {
            for (int i = 0; i < kN; ++i) {
              std::vector<double> buf(9000, -1.0);
              c.recv(0, 21, xmpi::mbuf(std::span<double>(buf)));
              if (buf[17] != static_cast<double>(i) && fail.empty())
                fail = "out-of-order isend: got " + std::to_string(buf[17]) +
                       " want " + std::to_string(i);
            }
          }
        });
    expect_no_failures(fails);
  });
}

}  // namespace
}  // namespace hpcx
