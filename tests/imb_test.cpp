// IMB benchmark framework: every benchmark runs on both backends, the
// timing conventions hold, and the simulated timings behave physically
// (more ranks / bigger messages => more time).
#include <gtest/gtest.h>

#include <tuple>

#include "imb/imb.hpp"
#include "machine/registry.hpp"
#include "test_util.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::imb {
namespace {

using test::Backend;
using test::run_world;

TEST(ImbMeta, NamesAndSets) {
  EXPECT_EQ(12u, all_benchmarks().size());
  EXPECT_EQ(10u, paper_benchmarks().size());
  EXPECT_STREQ("Reduce_scatter", to_string(BenchmarkId::kReduceScatter));
  EXPECT_STREQ("PingPong", to_string(BenchmarkId::kPingPong));
}

class ImbAll
    : public ::testing::TestWithParam<std::tuple<Backend, BenchmarkId>> {};

TEST_P(ImbAll, RunsAndReportsSaneTimings) {
  const auto [backend, id] = GetParam();
  run_world(backend, 4, [id](xmpi::Comm& c) {
    ImbParams params;
    params.msg_bytes = 4096;
    params.repetitions = 3;
    const ImbResult r = run_benchmark(id, c, params);
    EXPECT_GT(r.t_max_s, 0.0);
    EXPECT_LE(r.t_min_s, r.t_avg_s + 1e-15);
    EXPECT_LE(r.t_avg_s, r.t_max_s + 1e-15);
    EXPECT_EQ(3, r.repetitions);
  });
}

std::string imb_param_name(
    const ::testing::TestParamInfo<std::tuple<Backend, BenchmarkId>>& info) {
  return std::string(test::to_string(std::get<0>(info.param))) + "_" +
         to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImbAll,
    ::testing::Combine(::testing::Values(Backend::kThreads, Backend::kSim),
                       ::testing::ValuesIn(all_benchmarks())),
    imb_param_name);

TEST(Imb, TransferBenchmarksReportBandwidth) {
  run_world(Backend::kSim, 4, [](xmpi::Comm& c) {
    ImbParams params;
    params.msg_bytes = 1 << 20;
    params.phantom = true;
    for (const auto id : {BenchmarkId::kPingPong, BenchmarkId::kPingPing,
                          BenchmarkId::kSendrecv, BenchmarkId::kExchange}) {
      const ImbResult r = run_benchmark(id, c, params);
      EXPECT_GT(r.bandwidth_Bps, 0.0) << to_string(id);
    }
    const ImbResult b =
        run_benchmark(BenchmarkId::kBarrier, c, params);
    EXPECT_DOUBLE_EQ(0.0, b.bandwidth_Bps);
  });
}

TEST(Imb, AutoRepetitionsShrinkWithMessageSize) {
  run_world(Backend::kThreads, 2, [](xmpi::Comm& c) {
    ImbParams small;
    small.msg_bytes = 1024;
    ImbParams big;
    big.msg_bytes = 4 << 20;
    const ImbResult rs = run_benchmark(BenchmarkId::kSendrecv, c, small);
    const ImbResult rb = run_benchmark(BenchmarkId::kSendrecv, c, big);
    EXPECT_GT(rs.repetitions, rb.repetitions);
  });
}

double sim_time_us(const mach::MachineConfig& m, int cpus, BenchmarkId id,
                   std::size_t msg) {
  double us = 0;
  xmpi::run_on_machine(m, cpus, [&](xmpi::Comm& c) {
    ImbParams params;
    params.msg_bytes = msg;
    params.phantom = true;
    const ImbResult r = run_benchmark(id, c, params);
    if (c.rank() == 0) us = r.t_avg_s * 1e6;
  });
  return us;
}

TEST(ImbSim, CollectiveTimeGrowsWithRanks) {
  const auto m = mach::dell_xeon();
  for (const auto id : {BenchmarkId::kAllreduce, BenchmarkId::kAlltoall,
                        BenchmarkId::kBcast, BenchmarkId::kBarrier}) {
    const double t8 = sim_time_us(m, 8, id, 1 << 20);
    const double t64 = sim_time_us(m, 64, id, 1 << 20);
    EXPECT_LT(t8, t64) << to_string(id);
  }
}

TEST(ImbSim, TimeGrowsWithMessageSize) {
  const auto m = mach::nec_sx8();
  for (const auto id :
       {BenchmarkId::kAllreduce, BenchmarkId::kAllgather}) {
    EXPECT_LT(sim_time_us(m, 16, id, 1 << 14),
              sim_time_us(m, 16, id, 1 << 20))
        << to_string(id);
  }
}

TEST(ImbSim, DeterministicTimings) {
  const auto m = mach::cray_opteron();
  const double a = sim_time_us(m, 16, BenchmarkId::kAllreduce, 1 << 20);
  const double b = sim_time_us(m, 16, BenchmarkId::kAllreduce, 1 << 20);
  EXPECT_EQ(a, b);
}

TEST(ImbSim, PhantomAndRealAgreeOnSimulatedTime) {
  // The simulator must charge identical time whether or not payload
  // bytes are really carried.
  const auto m = mach::altix_bx2();
  auto run_mode = [&](bool phantom) {
    double us = 0;
    xmpi::run_on_machine(m, 8, [&](xmpi::Comm& c) {
      ImbParams params;
      params.msg_bytes = 1 << 16;
      params.phantom = phantom;
      params.repetitions = 2;
      const ImbResult r = run_benchmark(BenchmarkId::kAllgather, c, params);
      if (c.rank() == 0) us = r.t_avg_s;
    });
    return us;
  };
  EXPECT_DOUBLE_EQ(run_mode(true), run_mode(false));
}

double internode_latency_us(const mach::MachineConfig& m) {
  // Half round trip of a zero-byte message between the first two nodes
  // (ranks 0 and cpus_per_node), the paper's "MPI latency".
  double us = 0;
  const int peer = m.cpus_per_node;
  xmpi::run_on_machine(m, m.cpus_per_node * 2, [&](xmpi::Comm& c) {
    constexpr int kIters = 4;
    if (c.rank() == 0) {
      const double t0 = c.now();
      for (int i = 0; i < kIters; ++i) {
        c.send(peer, 1, xmpi::phantom_cbuf(0));
        c.recv(peer, 2, xmpi::phantom_mbuf(0));
      }
      us = (c.now() - t0) / kIters / 2 * 1e6;
    } else if (c.rank() == peer) {
      for (int i = 0; i < kIters; ++i) {
        c.recv(0, 1, xmpi::phantom_mbuf(0));
        c.send(0, 2, xmpi::phantom_cbuf(0));
      }
    }
  });
  return us;
}

TEST(ImbSim, InternodeLatencyNearPaperAnchors) {
  // Paper quotes: InfiniBand 6.8 us, Myrinet 6.7 us, NEC ~5 us, and the
  // Altix NUMALINK as the best of all systems.
  const double xeon = internode_latency_us(mach::dell_xeon());
  EXPECT_NEAR(6.8, xeon, 2.5);
  const double myrinet = internode_latency_us(mach::cray_opteron());
  EXPECT_NEAR(6.7, myrinet, 2.5);
  const double sx8 = internode_latency_us(mach::nec_sx8());
  EXPECT_NEAR(5.0, sx8, 2.0);
  const double altix = internode_latency_us(mach::altix_bx2());
  EXPECT_LT(altix, xeon);
  EXPECT_LT(altix, myrinet);
  EXPECT_LT(altix, sx8);  // best latency of all (paper §5.1)
  EXPECT_LT(altix, 3.0);
}

}  // namespace
}  // namespace hpcx::imb
