// Machine models and the five paper systems: peak rates, balance values
// the paper quotes, topology construction.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "topology/metrics.hpp"
#include "topology/routing.hpp"

namespace hpcx::mach {
namespace {

TEST(ProcessorModel, PeakAndDgemmTime) {
  ProcessorModel p;
  p.clock_hz = 2e9;
  p.flops_per_cycle = 8.0;
  p.dgemm_efficiency = 0.5;
  EXPECT_DOUBLE_EQ(16e9, p.peak_flops());
  // 2*m*n*k flops at 8 Gflop/s sustained.
  EXPECT_DOUBLE_EQ(2.0 * 100 * 100 * 100 / 8e9, p.dgemm_seconds(100, 100, 100));
}

TEST(ProcessorModel, FftTimeGrowsNLogN) {
  ProcessorModel p;
  const double t1 = p.fft_seconds(1 << 10);
  const double t2 = p.fft_seconds(1 << 11);
  EXPECT_GT(t2, 2.0 * t1);          // superlinear
  EXPECT_LT(t2, 2.5 * t1);          // but barely
  EXPECT_DOUBLE_EQ(0.0, p.fft_seconds(1));
}

TEST(MemoryModel, ContentionSharesAggregate) {
  MemoryModel m;
  m.single_cpu_Bps = 3e9;
  m.node_aggregate_Bps = 4e9;
  EXPECT_DOUBLE_EQ(3e9, m.per_cpu_Bps(1));
  EXPECT_DOUBLE_EQ(2e9, m.per_cpu_Bps(2));
  EXPECT_DOUBLE_EQ(1e9, m.per_cpu_Bps(4));
}

TEST(Registry, FiveSystemsWithPaperPeaks) {
  const auto machines = paper_machines();
  ASSERT_EQ(5u, machines.size());
  // Table 2 peak/node values (the Altix is modelled per 8-CPU C-brick,
  // its interconnect unit per Section 2.1, i.e. 4x the per-FSB-pair
  // figure Table 2 lists): 12.8*4, 12.8, 8.0, 14.4, 128 Gflop/s.
  EXPECT_DOUBLE_EQ(51.2e9, machine_by_name("altix_bx2").peak_flops_per_node());
  EXPECT_DOUBLE_EQ(51.2e9, machine_by_name("cray_x1_msp").peak_flops_per_node());
  EXPECT_DOUBLE_EQ(8.0e9, machine_by_name("cray_opteron").peak_flops_per_node());
  EXPECT_DOUBLE_EQ(14.4e9, machine_by_name("dell_xeon").peak_flops_per_node());
  EXPECT_DOUBLE_EQ(128e9, machine_by_name("sx8").peak_flops_per_node());
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(machine_by_name("cray_t3e"), ConfigError);
}

TEST(Registry, VectorMachinesHaveVectorClassAndHighBalance) {
  for (const auto& m : all_machines()) {
    const double bf = m.stream_per_cpu_all_active() /
                      (m.proc.peak_flops() * m.proc.hpl_kernel_efficiency);
    if (m.proc.cpu_class == CpuClass::kVector) {
      EXPECT_GT(bf, 1.0) << m.name;
    } else {
      EXPECT_LT(bf, 1.2) << m.name;
    }
  }
  // NEC SX-8 balance anchor from the paper: consistently above 2.67 B/F.
  const auto sx8 = machine_by_name("sx8");
  EXPECT_GT(sx8.stream_per_cpu_all_active() /
                (sx8.proc.peak_flops() * sx8.proc.hpl_kernel_efficiency),
            2.67);
}

TEST(Registry, NodeMapping) {
  const auto sx8 = machine_by_name("sx8");
  EXPECT_EQ(0, sx8.node_of_rank(0));
  EXPECT_EQ(0, sx8.node_of_rank(7));
  EXPECT_EQ(1, sx8.node_of_rank(8));
  EXPECT_EQ(9, sx8.nodes_for(65));
  EXPECT_EQ(72, sx8.nodes_for(576));
}

TEST(Registry, TopologiesBuildForPaperScales) {
  for (const auto& m : all_machines()) {
    const int nodes = m.nodes_for(std::min(m.max_cpus, 128));
    const topo::Graph g = m.build_topology(nodes);
    EXPECT_EQ(static_cast<std::size_t>(nodes), g.num_hosts()) << m.name;
    const topo::Routing routing(g);
    if (nodes > 1) {
      EXPECT_GT(routing.diameter_hosts(), 0) << m.name;
    }
  }
}

TEST(Registry, AltixMultiBoxTaperKicksInBeyondOneBox) {
  const auto altix = machine_by_name("altix_bx2");
  const topo::Graph one_box = altix.build_topology(64);
  const topo::Graph two_boxes = altix.build_topology(128);
  const double b1 = topo::bisection_bandwidth(one_box);
  const double b2 = topo::bisection_bandwidth(two_boxes);
  // Twice the nodes but a tapered core: bisection must NOT double.
  EXPECT_LT(b2, 1.2 * b1);
}

TEST(Registry, TopologyKindsMatchPaperTable2) {
  EXPECT_EQ(TopologyKind::kFatTree, machine_by_name("altix_bx2").topology);
  EXPECT_EQ(TopologyKind::kHypercube,
            machine_by_name("cray_x1_msp").topology);
  EXPECT_EQ(TopologyKind::kClos, machine_by_name("cray_opteron").topology);
  // The Xeon cluster models the paper's "groups of 18 nodes 1:1 with
  // 3:1 blocking through the core" as a two-level Clos.
  EXPECT_EQ(TopologyKind::kClos, machine_by_name("dell_xeon").topology);
  EXPECT_EQ(TopologyKind::kCrossbar, machine_by_name("sx8").topology);
}

}  // namespace
}  // namespace hpcx::mach
