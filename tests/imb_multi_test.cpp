// IMB "-multi" mode: concurrent disjoint groups share the fabric.
#include <gtest/gtest.h>

#include "imb/imb.hpp"
#include "machine/registry.hpp"
#include "test_util.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::imb {
namespace {

using test::Backend;
using test::run_world;

TEST(ImbMulti, RunsOnBothBackends) {
  for (const auto backend : {Backend::kThreads, Backend::kSim}) {
    run_world(backend, 8, [](xmpi::Comm& c) {
      ImbParams p;
      p.msg_bytes = 4096;
      p.repetitions = 2;
      p.groups = 4;
      const ImbResult r = run_benchmark(BenchmarkId::kAllreduce, c, p);
      EXPECT_GT(r.t_max_s, 0.0);
    });
  }
}

TEST(ImbMulti, RejectsIndivisibleGroups) {
  run_world(Backend::kThreads, 6, [](xmpi::Comm& c) {
    ImbParams p;
    p.groups = 4;  // 6 % 4 != 0
    EXPECT_THROW(run_benchmark(BenchmarkId::kBarrier, c, p), ConfigError);
  });
}

double alltoall_us(int groups, int cpus) {
  double us = 0;
  xmpi::run_on_machine(mach::dell_xeon(), cpus, [&](xmpi::Comm& c) {
    ImbParams p;
    p.msg_bytes = 1 << 20;
    p.phantom = true;
    p.repetitions = 2;
    p.groups = groups;
    const ImbResult r = run_benchmark(BenchmarkId::kAlltoall, c, p);
    if (c.rank() == 0) us = r.t_avg_s * 1e6;
  });
  return us;
}

TEST(ImbMulti, ConcurrentGroupsContendOnTheFabric) {
  // Four concurrent 16-rank alltoalls on 64 CPUs must be slower per
  // group than one isolated 16-rank alltoall (they share the blocking
  // core), but far faster than the full 64-rank alltoall.
  const double isolated16 = alltoall_us(1, 16);
  const double grouped16_of_64 = alltoall_us(4, 64);
  const double full64 = alltoall_us(1, 64);
  EXPECT_GT(grouped16_of_64, isolated16);
  EXPECT_LT(grouped16_of_64, full64);
}

TEST(ImbMulti, GroupsEqualSizeBehavesLikeSingle) {
  // groups == size is degenerate but legal for collectives: every group
  // is one rank, so collectives complete locally.
  run_world(Backend::kSim, 4, [](xmpi::Comm& c) {
    ImbParams p;
    p.msg_bytes = 1024;
    p.repetitions = 2;
    p.groups = 4;
    const ImbResult r = run_benchmark(BenchmarkId::kBcast, c, p);
    EXPECT_GE(r.t_max_s, 0.0);
  });
}

}  // namespace
}  // namespace hpcx::imb
