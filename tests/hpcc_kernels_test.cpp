// Serial HPCC kernels: STREAM, DGEMM, FFT, RandomAccess, HPL.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "hpcc/dgemm.hpp"
#include "hpcc/fft.hpp"
#include "hpcc/hpl.hpp"
#include "hpcc/random_access.hpp"
#include "hpcc/stream.hpp"

namespace hpcx::hpcc {
namespace {

TEST(Stream, ProducesVerifiedRates) {
  StreamResult r;
  ASSERT_TRUE(run_stream_checked(1 << 16, 3, &r));
  EXPECT_GT(r.copy_Bps, 0);
  EXPECT_GT(r.scale_Bps, 0);
  EXPECT_GT(r.add_Bps, 0);
  EXPECT_GT(r.triad_Bps, 0);
}

TEST(Stream, RejectsDegenerateInput) {
  EXPECT_THROW(run_stream(1, 1), ConfigError);
  EXPECT_THROW(run_stream(100, 0), ConfigError);
}

std::string name_mnk(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  const auto [m, n, k] = info.param;
  return "m" + std::to_string(m) + "n" + std::to_string(n) + "k" +
         std::to_string(k);
}

std::string name_nnb(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto [n, nb] = info.param;
  return "n" + std::to_string(n) + "nb" + std::to_string(nb);
}

class DgemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DgemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(99);
  const std::size_t um = static_cast<std::size_t>(m);
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t uk = static_cast<std::size_t>(k);
  std::vector<double> a(um * uk), b(uk * un), c1(um * un), c2;
  for (auto& x : a) x = rng.next_double() - 0.5;
  for (auto& x : b) x = rng.next_double() - 0.5;
  for (auto& x : c1) x = rng.next_double() - 0.5;
  c2 = c1;
  dgemm(a.data(), uk, b.data(), un, c1.data(), un, um, un, uk);
  dgemm_naive(a.data(), uk, b.data(), un, c2.data(), un, um, un, uk);
  for (std::size_t i = 0; i < c1.size(); ++i)
    ASSERT_NEAR(c2[i], c1[i], 1e-10 * static_cast<double>(k) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(17, 5, 9), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 70, 130), std::make_tuple(129, 257, 31),
                      std::make_tuple(300, 7, 300)),
    name_mnk);

TEST(Dgemm, RespectsLeadingDimensions) {
  // Operate on a sub-block of a larger matrix.
  const std::size_t lda = 10, ldb = 12, ldc = 11;
  std::vector<double> a(5 * lda, 1.0), b(4 * ldb, 2.0), c(5 * ldc, 0.0);
  dgemm(a.data(), lda, b.data(), ldb, c.data(), ldc, 5, 6, 4);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(8.0, c[i * ldc + j]);
  // Cells outside the C block must be untouched.
  EXPECT_DOUBLE_EQ(0.0, c[0 * ldc + 7]);
}

TEST(Dgemm, FlopsRatePositive) { EXPECT_GT(dgemm_flops(64, 2), 0.0); }

TEST(Fft, SupportedSizePredicate) {
  EXPECT_TRUE(fft_supported_size(1));
  EXPECT_TRUE(fft_supported_size(2));
  EXPECT_TRUE(fft_supported_size(360));     // 2^3 * 3^2 * 5
  EXPECT_TRUE(fft_supported_size(1 << 20));
  EXPECT_FALSE(fft_supported_size(0));
  EXPECT_FALSE(fft_supported_size(7));
  EXPECT_FALSE(fft_supported_size(22));
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x)
    v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  const std::vector<Complex> expected = dft_naive(x);
  std::vector<Complex> got = x;
  fft(got);
  const double tol = 1e-10 * std::sqrt(static_cast<double>(n)) + 1e-12;
  for (std::size_t k = 0; k < n; ++k)
    ASSERT_LT(std::abs(got[k] - expected[k]), tol) << "k=" << k << " n=" << n;
}

TEST_P(FftSizes, RoundTripIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n * 31);
  std::vector<Complex> x(n);
  for (auto& v : x)
    v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  std::vector<Complex> y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_LT(std::abs(y[i] - x[i]), 1e-11 + 1e-12 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12,
                                           15, 16, 20, 24, 25, 27, 30, 32,
                                           45, 60, 81, 100, 120, 125, 128,
                                           135, 240, 243, 256, 625, 729,
                                           1000, 1024),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(64, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft(x);
  for (const auto& v : x) ASSERT_LT(std::abs(v - Complex(1, 0)), 1e-12);
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 360;
  Rng rng(5);
  std::vector<Complex> x(n);
  double time_energy = 0;
  for (auto& v : x) {
    v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
    time_energy += std::norm(v);
  }
  fft(x);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(time_energy * static_cast<double>(n), freq_energy,
              1e-8 * freq_energy);
}

TEST(Fft, UnsupportedSizeThrows) {
  std::vector<Complex> x(7);
  EXPECT_THROW(fft(x), ConfigError);
}

TEST(RandomAccess, SerialPassesVerification) {
  const GupsResult r = run_random_access(12);
  EXPECT_EQ(0u, r.errors);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(4u << 12, r.updates);
  EXPECT_GT(r.gups, 0.0);
}

TEST(Hpl, EntryGeneratorIsDeterministicAndCentred) {
  EXPECT_DOUBLE_EQ(hpl_entry(1, 3, 4), hpl_entry(1, 3, 4));
  EXPECT_NE(hpl_entry(1, 3, 4), hpl_entry(1, 4, 3));
  EXPECT_NE(hpl_entry(1, 3, 4), hpl_entry(2, 3, 4));
  double sum = 0;
  for (int i = 0; i < 1000; ++i)
    sum += hpl_entry(9, static_cast<std::uint64_t>(i), 17);
  EXPECT_LT(std::fabs(sum / 1000.0), 0.05);
}

TEST(Hpl, SolveKnownSystem) {
  // A = [[2, 1], [1, 3]], b = [5, 10] -> x = [1, 3].
  std::vector<double> a{2, 1, 1, 3};
  std::vector<int> piv;
  lu_factor(a.data(), 2, 2, 1, piv);
  std::vector<double> b{5, 10};
  lu_solve(a.data(), 2, 2, piv, b.data());
  EXPECT_NEAR(1.0, b[0], 1e-12);
  EXPECT_NEAR(3.0, b[1], 1e-12);
}

class HplSerial : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HplSerial, ResidualWithinHplBound) {
  const auto [n, nb] = GetParam();
  const HplSerialResult r = run_hpl_serial(n, nb);
  EXPECT_TRUE(r.passed) << "residual=" << r.residual;
  EXPECT_LT(r.residual, 16.0);
  EXPECT_GT(r.gflops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HplSerial,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                                           std::make_tuple(5, 2), std::make_tuple(16, 4),
                                           std::make_tuple(33, 8),
                                           std::make_tuple(64, 16),
                                           std::make_tuple(97, 32),
                                           std::make_tuple(128, 64),
                                           std::make_tuple(150, 128)),
                         name_nnb);

TEST(Hpl, PivotingHandlesZeroLeadingElement) {
  // Leading 0 forces a pivot swap immediately.
  std::vector<double> a{0, 1, 1, 0};
  std::vector<int> piv;
  lu_factor(a.data(), 2, 2, 2, piv);
  std::vector<double> b{3, 7};
  lu_solve(a.data(), 2, 2, piv, b.data());
  EXPECT_NEAR(7.0, b[0], 1e-12);
  EXPECT_NEAR(3.0, b[1], 1e-12);
}

}  // namespace
}  // namespace hpcx::hpcc
