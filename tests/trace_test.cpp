// Tests for the trace subsystem: the per-rank event ring, the counters,
// the recorded collective algorithms, the Chrome exporter, and the JSON
// well-formedness checker backing the CLI trace validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/jsonlint.hpp"
#include "core/table.hpp"
#include "machine/registry.hpp"
#include "test_util.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/sub_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using namespace hpcx;
using test::Backend;

TEST(RankTrace, RecordsInOrderBelowCapacity) {
  trace::RankTrace ring(8);
  for (int i = 0; i < 5; ++i) {
    trace::Event e;
    e.t_begin = i;
    e.t_end = i + 0.5;
    e.kind = trace::EventKind::kCompute;
    ring.record(e);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t_begin, i);
}

TEST(RankTrace, OverwritesOldestAndCountsDrops) {
  trace::RankTrace ring(4);
  for (int i = 0; i < 10; ++i) {
    trace::Event e;
    e.t_begin = i;
    ring.record(e);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t_begin, 6 + i);
}

TEST(TraceCounters, MergeSumsEveryField) {
  trace::Counters a, b;
  a.sends = 3;
  a.recvs = 2;
  a.collectives = 1;
  a.bytes_sent = 100;
  a.bytes_received = 80;
  a.compute_s = 0.5;
  a.wait_s = 0.25;
  a.copy_s = 0.125;
  a.elapsed_s = 1.0;
  a.phase_s[0] = 0.1;
  a.send_size_hist[7] = 3;
  a.reduce_bytes[0] = 64;
  a.eager_sends = 2;
  a.rendezvous_sends = 1;
  a.payload_copies = 4;
  a.eager_size_hist[7] = 2;
  a.rendezvous_size_hist[20] = 1;
  b = a;
  b.phase_s[5] = 0.3;
  a.merge(b);
  EXPECT_EQ(a.sends, 6u);
  EXPECT_EQ(a.recvs, 4u);
  EXPECT_EQ(a.collectives, 2u);
  EXPECT_EQ(a.bytes_sent, 200u);
  EXPECT_EQ(a.bytes_received, 160u);
  EXPECT_DOUBLE_EQ(a.compute_s, 1.0);
  EXPECT_DOUBLE_EQ(a.wait_s, 0.5);
  EXPECT_DOUBLE_EQ(a.copy_s, 0.25);
  EXPECT_DOUBLE_EQ(a.elapsed_s, 2.0);
  EXPECT_DOUBLE_EQ(a.phase_s[0], 0.2);
  EXPECT_DOUBLE_EQ(a.phase_s[5], 0.3);
  EXPECT_EQ(a.send_size_hist[7], 6u);
  EXPECT_EQ(a.reduce_bytes[0], 128u);
  EXPECT_EQ(a.eager_sends, 4u);
  EXPECT_EQ(a.rendezvous_sends, 2u);
  EXPECT_EQ(a.payload_copies, 8u);
  EXPECT_EQ(a.eager_size_hist[7], 4u);
  EXPECT_EQ(a.rendezvous_size_hist[20], 2u);
}

TEST(TraceRecorder, HistogramTableSplitsEagerAndRendezvous) {
  // 1 KiB messages stay eager; 64 KiB crosses the default 32 KiB
  // threshold and goes rendezvous.
  trace::Recorder recorder(2);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(
      2,
      [](xmpi::Comm& c) {
        std::vector<double> small(128, 1.0), big(8192, 2.0);
        std::vector<double> rs(small.size()), rb(big.size());
        const int peer = 1 - c.rank();
        if (c.rank() == 0) {
          c.send(peer, 1, xmpi::cbuf(std::span<const double>(small)));
          c.send(peer, 2, xmpi::cbuf(std::span<const double>(big)));
        } else {
          c.recv(peer, 1, xmpi::mbuf(std::span<double>(rs)));
          c.recv(peer, 2, xmpi::mbuf(std::span<double>(rb)));
        }
      },
      options);
  const trace::Counters total = recorder.total();
  EXPECT_GE(total.eager_sends, 1u);
  EXPECT_GE(total.rendezvous_sends, 1u);
  std::ostringstream os;
  recorder.histogram_table().print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("1 KB"), std::string::npos) << s;
  EXPECT_NE(s.find("64 KB"), std::string::npos) << s;
  EXPECT_NE(s.find("no events dropped"), std::string::npos) << s;
}

TEST(TraceRecorder, HistogramTableReportsRingDrops) {
  // A 4-event ring cannot hold a 16-message run: the histogram table
  // must carry a per-rank drop footnote with the ring capacity.
  trace::Recorder recorder(2, /*events_per_rank=*/4);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(
      2,
      [](xmpi::Comm& c) {
        std::vector<double> buf(64, 1.0), out(64);
        const int peer = 1 - c.rank();
        for (int i = 0; i < 16; ++i) {
          if (c.rank() == 0)
            c.send(peer, i, xmpi::cbuf(std::span<const double>(buf)));
          else
            c.recv(peer, i, xmpi::mbuf(std::span<double>(out)));
        }
      },
      options);
  EXPECT_GT(recorder.rank(0).dropped(), 0u);
  std::ostringstream os;
  recorder.histogram_table().print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("dropped"), std::string::npos) << s;
  EXPECT_NE(s.find("ring capacity 4"), std::string::npos) << s;
}

TEST(TraceCounters, KnownAlltoallByteTotals) {
  // n ranks, bc doubles per block: pairwise exchange sends n-1 messages
  // of bc*8 bytes from every rank.
  constexpr int kRanks = 4;
  constexpr std::size_t kBlock = 1024;
  trace::Recorder recorder(kRanks);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(
      kRanks,
      [&](xmpi::Comm& c) {
        std::vector<double> send(kBlock * kRanks, 1.0);
        std::vector<double> recv(send.size());
        c.alltoall(xmpi::cbuf(std::span<const double>(send)),
                   xmpi::mbuf(std::span<double>(recv)));
      },
      options);
  for (int r = 0; r < kRanks; ++r) {
    const trace::Counters& counters = recorder.rank(r).counters();
    EXPECT_EQ(counters.sends, kRanks - 1u) << "rank " << r;
    EXPECT_EQ(counters.recvs, kRanks - 1u) << "rank " << r;
    EXPECT_EQ(counters.bytes_sent, (kRanks - 1u) * kBlock * 8) << "rank " << r;
    EXPECT_EQ(counters.bytes_received, (kRanks - 1u) * kBlock * 8);
    EXPECT_EQ(counters.collectives, 1u);
    // All sends land in the [8 KB, 16 KB) size class (8192 bytes).
    EXPECT_EQ(counters.send_size_hist[trace::size_class(kBlock * 8)],
              kRanks - 1u);
  }
  const trace::Counters total = recorder.total();
  EXPECT_EQ(total.bytes_sent, kRanks * (kRanks - 1u) * kBlock * 8);
}

TEST(TraceCounters, StatsNullWithoutSinkAndLiveWithOne) {
  xmpi::run_on_threads(2, [](xmpi::Comm& c) {
    EXPECT_EQ(c.stats(), nullptr);
    EXPECT_EQ(c.trace(), nullptr);
  });
  trace::Recorder recorder(2);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(
      2,
      [](xmpi::Comm& c) {
        c.barrier();
        ASSERT_NE(c.stats(), nullptr);
        EXPECT_EQ(c.stats()->collectives, 1u);
      },
      options);
}

class TraceBackend : public ::testing::TestWithParam<Backend> {};

/// Run `fn` traced on the parameterised backend; returns the recorder.
trace::Recorder traced_run(Backend backend, int nranks,
                           const xmpi::RankFn& fn) {
  trace::Recorder recorder(nranks);
  if (backend == Backend::kThreads) {
    xmpi::ThreadRunOptions options;
    options.recorder = &recorder;
    xmpi::run_on_threads(nranks, fn, options);
  } else {
    xmpi::SimRunOptions options;
    options.recorder = &recorder;
    xmpi::run_on_machine(mach::dell_xeon(), nranks, fn, options);
  }
  return recorder;
}

std::vector<trace::Event> collective_events(const trace::Recorder& recorder,
                                            int rank) {
  std::vector<trace::Event> out;
  for (const trace::Event& e : recorder.rank(rank).events())
    if (e.kind == trace::EventKind::kCollective) out.push_back(e);
  return out;
}

TEST_P(TraceBackend, RecordedAlgorithmMatchesForcedTuning) {
  const auto recorder = traced_run(GetParam(), 4, [](xmpi::Comm& c) {
    c.tuning().bcast_alg = xmpi::BcastAlg::kPipelinedRing;
    c.tuning().allreduce_alg = xmpi::AllreduceAlg::kRabenseifner;
    std::vector<double> buf(4096, c.rank() == 0 ? 3.0 : 0.0);
    c.bcast(xmpi::mbuf(std::span<double>(buf)), 0);
    std::vector<double> out(buf.size());
    c.allreduce(xmpi::cbuf(std::span<const double>(buf)),
                xmpi::mbuf(std::span<double>(out)), xmpi::ROp::kSum);
  });
  for (int r = 0; r < recorder.nranks(); ++r) {
    const auto events = collective_events(recorder, r);
    ASSERT_EQ(events.size(), 2u) << "rank " << r;
    EXPECT_EQ(events[0].coll_op(), trace::CollOp::kBcast);
    EXPECT_EQ(events[0].alg_id(), trace::AlgId::kPipelinedRing);
    EXPECT_EQ(events[0].peer, 0);  // root
    EXPECT_EQ(events[1].coll_op(), trace::CollOp::kAllreduce);
    EXPECT_EQ(events[1].alg_id(), trace::AlgId::kRabenseifner);
  }
}

TEST_P(TraceBackend, AutoSelectionResolvesToConcreteAlgorithm) {
  const auto recorder = traced_run(GetParam(), 4, [](xmpi::Comm& c) {
    std::vector<double> small(4, 1.0);  // far below bcast_long_bytes
    c.bcast(xmpi::mbuf(std::span<double>(small)), 0);
  });
  for (int r = 0; r < recorder.nranks(); ++r) {
    const auto events = collective_events(recorder, r);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].alg_id(), trace::AlgId::kBinomial);
  }
}

TEST_P(TraceBackend, SpansNestAndTimestampsAreOrdered) {
  const auto recorder = traced_run(GetParam(), 4, [](xmpi::Comm& c) {
    std::vector<double> buf(1024, 1.0);
    std::vector<double> out(buf.size());
    c.allreduce(xmpi::cbuf(std::span<const double>(buf)),
                xmpi::mbuf(std::span<double>(out)), xmpi::ROp::kSum);
    c.barrier();
  });
  for (int r = 0; r < recorder.nranks(); ++r) {
    const auto events = recorder.rank(r).events();
    ASSERT_FALSE(events.empty());
    for (const trace::Event& e : events) EXPECT_LE(e.t_begin, e.t_end);
    // Every p2p event nests inside some collective span (the rank fn
    // performs no explicit sends), and collective spans do not overlap
    // each other.
    std::vector<trace::Event> colls;
    for (const trace::Event& e : events) {
      if (e.kind == trace::EventKind::kCollective) {
        colls.push_back(e);
        continue;
      }
      const bool nested = std::any_of(
          events.begin(), events.end(), [&](const trace::Event& outer) {
            return outer.kind == trace::EventKind::kCollective &&
                   outer.t_begin <= e.t_begin && e.t_end <= outer.t_end;
          });
      EXPECT_TRUE(nested) << "rank " << r << " p2p event escapes all spans";
    }
    for (std::size_t i = 1; i < colls.size(); ++i)
      EXPECT_LE(colls[i - 1].t_end, colls[i].t_begin);
  }
}

TEST_P(TraceBackend, SubCommTrafficRecordsOnce) {
  const auto recorder = traced_run(GetParam(), 4, [](xmpi::Comm& c) {
    // Two disjoint pairs; each pair allreduces 256 doubles.
    const int half = c.rank() / 2;
    std::vector<int> members = half == 0 ? std::vector<int>{0, 1}
                                         : std::vector<int>{2, 3};
    xmpi::SubComm sub(c, members, 1 + half);
    std::vector<double> buf(256, 1.0);
    std::vector<double> out(buf.size());
    sub.allreduce(xmpi::cbuf(std::span<const double>(buf)),
                  xmpi::mbuf(std::span<double>(out)), xmpi::ROp::kSum);
  });
  for (int r = 0; r < recorder.nranks(); ++r) {
    const trace::Counters& counters = recorder.rank(r).counters();
    EXPECT_EQ(counters.collectives, 1u) << "rank " << r;
    // Recursive doubling between 2 ranks: exactly one send and one recv
    // of the full vector; a double-recording bug would show 2 sends.
    EXPECT_EQ(counters.sends, 1u) << "rank " << r;
    EXPECT_EQ(counters.recvs, 1u) << "rank " << r;
    EXPECT_EQ(counters.bytes_sent, 256u * 8) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(BothBackends, TraceBackend,
                         ::testing::Values(Backend::kThreads, Backend::kSim),
                         [](const auto& info) {
                           return test::to_string(info.param);
                         });

TEST(SimTrace, HardwareBarrierIsTaggedAndLinksTracked) {
  trace::Recorder recorder(8);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  // The SX-8 model synchronises barriers through IXS hardware.
  xmpi::run_on_machine(
      mach::nec_sx8(), 8,
      [](xmpi::Comm& c) {
        c.barrier();
        std::vector<double> send(512, 1.0);
        std::vector<double> recv(send.size() * 8);
        c.allgather(xmpi::cbuf(std::span<const double>(send)),
                    xmpi::mbuf(std::span<double>(recv)));
      },
      options);
  EXPECT_TRUE(recorder.virtual_time());
  const auto events = collective_events(recorder, 0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].coll_op(), trace::CollOp::kBarrier);
  EXPECT_EQ(events[0].alg_id(), trace::AlgId::kHardware);
  // 8 ranks on one SX-8 node: traffic is intra-node, so links may be
  // empty — but the allgather crossed no node boundary only if the node
  // holds all 8 CPUs, which it does; accept either, but tracks must be
  // consistent: every track has traffic.
  for (const auto& link : recorder.link_tracks()) {
    EXPECT_GT(link.messages, 0u);
    EXPECT_GT(link.bytes, 0u);
  }
}

TEST(SimTrace, DisseminationBarrierTaggedOnSoftwareMachines) {
  trace::Recorder recorder(4);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(
      mach::dell_xeon(), 4, [](xmpi::Comm& c) { c.barrier(); }, options);
  const auto events = collective_events(recorder, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].alg_id(), trace::AlgId::kDissemination);
}

TEST(ChromeTrace, ExportIsWellFormedAndNamesTheCollective) {
  trace::Recorder recorder(4);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(
      mach::dell_xeon(), 4,
      [](xmpi::Comm& c) {
        std::vector<double> send(256 * 4, 1.0);
        std::vector<double> recv(send.size());
        c.alltoall(xmpi::cbuf(std::span<const double>(send)),
                   xmpi::mbuf(std::span<double>(recv)));
        c.compute(1e-6);
      },
      options);
  std::ostringstream os;
  trace::write_chrome_trace(os, recorder);
  const std::string json = os.str();
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;
  EXPECT_NE(json.find("\"Alltoall\""), std::string::npos);
  EXPECT_NE(json.find("\"pairwise\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"virtual\""), std::string::npos);
  EXPECT_NE(json.find("\"compute\""), std::string::npos);
}

TEST(ChromeTrace, WallClockRunsAreStampedWall) {
  trace::Recorder recorder(2);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_threads(2, [](xmpi::Comm& c) { c.barrier(); }, options);
  std::ostringstream os;
  trace::write_chrome_trace(os, recorder);
  EXPECT_NE(os.str().find("\"clock\":\"wall\""), std::string::npos);
  EXPECT_TRUE(json_well_formed(os.str()));
}

TEST(AlgNames, RoundTripThroughParse) {
  using xmpi::parse;
  for (const auto a :
       {xmpi::BcastAlg::kAuto, xmpi::BcastAlg::kBinomial,
        xmpi::BcastAlg::kScatterRing, xmpi::BcastAlg::kPipelinedRing}) {
    xmpi::BcastAlg out;
    ASSERT_TRUE(parse(xmpi::to_string(a), out));
    EXPECT_EQ(out, a);
  }
  for (const auto a :
       {xmpi::AllreduceAlg::kAuto, xmpi::AllreduceAlg::kRecursiveDoubling,
        xmpi::AllreduceAlg::kRabenseifner}) {
    xmpi::AllreduceAlg out;
    ASSERT_TRUE(parse(xmpi::to_string(a), out));
    EXPECT_EQ(out, a);
  }
  for (const auto a : {xmpi::AllgatherAlg::kAuto, xmpi::AllgatherAlg::kBruck,
                       xmpi::AllgatherAlg::kRing}) {
    xmpi::AllgatherAlg out;
    ASSERT_TRUE(parse(xmpi::to_string(a), out));
    EXPECT_EQ(out, a);
  }
  for (const auto a : {xmpi::AlltoallAlg::kAuto, xmpi::AlltoallAlg::kPairwise}) {
    xmpi::AlltoallAlg out;
    ASSERT_TRUE(parse(xmpi::to_string(a), out));
    EXPECT_EQ(out, a);
  }
  xmpi::BcastAlg out = xmpi::BcastAlg::kBinomial;
  EXPECT_FALSE(parse("no-such-algorithm", out));
  EXPECT_EQ(out, xmpi::BcastAlg::kBinomial);  // untouched on failure
}

TEST(SizeClasses, PowerOfTwoBinning) {
  EXPECT_EQ(trace::size_class(0), 0u);
  EXPECT_EQ(trace::size_class(1), 1u);
  EXPECT_EQ(trace::size_class(2), 2u);
  EXPECT_EQ(trace::size_class(3), 2u);
  EXPECT_EQ(trace::size_class(4), 3u);
  EXPECT_EQ(trace::size_class(8192), 14u);
  EXPECT_LT(trace::size_class(~0ull), trace::kSizeClasses);
}

TEST(JsonLint, AcceptsValidDocuments) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "-0.5e10", "\"a\\nb\\u00e9\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}", "  [1, 2, 3]  "}) {
    std::string error;
    EXPECT_TRUE(hpcx::json_well_formed(ok, &error)) << ok << ": " << error;
  }
}

TEST(JsonLint, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{a:1}", "\"unterminated", "01",
        "[1] trailing", "nulll", "{\"a\":1,}", "\"bad\\q\"", "[\x01]"}) {
    std::string error;
    EXPECT_FALSE(hpcx::json_well_formed(bad, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonLint, ReportsByteOffset) {
  std::string error;
  ASSERT_FALSE(hpcx::json_well_formed("[1, x]", &error));
  EXPECT_NE(error.find("byte 4"), std::string::npos) << error;
}

}  // namespace
