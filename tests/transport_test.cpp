// Regression tests for the ThreadComm shared-memory transport: world
// poisoning on rank failure (no hangs), eager/rendezvous protocol
// selection, posted-receive delivery, matching diagnostics, and the IMB
// cross-group reduction semantics the transport work uncovered.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "imb/benchmarks.hpp"
#include "imb/imb.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/one_sided.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx {
namespace {

using test::Backend;
using xmpi::CBuf;
using xmpi::Comm;
using xmpi::MBuf;

/// Distinct from every library exception type, so a test can prove the
/// *original* user exception (not the ripple CommErrors of the world
/// abort) is what run_on_threads rethrows.
struct Boom : std::exception {
  const char* what() const noexcept override { return "boom"; }
};

/// Run `fn` under a deadline. A transport regression that reintroduces
/// the join() hang would otherwise stall the whole test binary, so on
/// timeout we fail loudly and exit: the blocked worker thread can never
/// be joined.
void with_watchdog(const std::function<void()>& fn, int timeout_s = 60) {
  auto fut = std::async(std::launch::async, fn);
  if (fut.wait_for(std::chrono::seconds(timeout_s)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "watchdog: parallel region did not terminate within "
                  << timeout_s << "s";
    std::fflush(nullptr);
    std::_Exit(3);
  }
  fut.get();
}

TEST(Abort, ThrowingRankTerminatesBlockedReceivers) {
  // Ranks 0 and 2 block in recv on rank 1, which throws: the world must
  // be poisoned so join() returns, and the original exception must win.
  with_watchdog([] {
    EXPECT_THROW(xmpi::run_on_threads(3,
                                      [](Comm& c) {
                                        if (c.rank() == 1) throw Boom{};
                                        double x = 0;
                                        c.recv(1, 5,
                                               MBuf{&x, 1,
                                                    xmpi::DType::kF64});
                                      }),
                 Boom);
  });
}

TEST(Abort, ThrowingRankUnparksRendezvousSender) {
  // Rank 0's send is above the eager threshold, so it parks waiting for
  // rank 1 to copy — and rank 1 dies instead.
  with_watchdog([] {
    EXPECT_THROW(
        xmpi::run_on_threads(2,
                             [](Comm& c) {
                               if (c.rank() == 1) throw Boom{};
                               std::vector<unsigned char> buf(256 * 1024);
                               c.send(1, 5,
                                      xmpi::cbuf_bytes(buf.data(),
                                                       buf.size()));
                             }),
        Boom);
  });
}

TEST(Abort, SurvivorsSeePeerFailedError) {
  // The poisoned transport must throw a CommError naming the failed
  // rank at the survivors, not hang or crash them.
  with_watchdog([] {
    std::string survivor_error;
    try {
      xmpi::run_on_threads(2, [&](Comm& c) {
        if (c.rank() == 1) throw Boom{};
        double x = 0;
        try {
          c.recv(1, 5, MBuf{&x, 1, xmpi::DType::kF64});
        } catch (const CommError& e) {
          survivor_error = e.what();
          throw;
        }
      });
      FAIL() << "expected the world to rethrow";
    } catch (const Boom&) {
      // original exception wins even though rank 0 threw CommError too
    }
    EXPECT_NE(survivor_error.find("peer rank 1 failed"), std::string::npos)
        << survivor_error;
  });
}

class BothBackends : public ::testing::TestWithParam<Backend> {};
INSTANTIATE_TEST_SUITE_P(Transport, BothBackends,
                         ::testing::Values(Backend::kThreads, Backend::kSim),
                         [](const auto& info) {
                           return std::string(test::to_string(info.param));
                         });

TEST_P(BothBackends, MismatchNamesSourceAndTagAndKeepsMessage) {
  test::run_world(GetParam(), 2, [](Comm& c) {
    const int kTag = 7;
    if (c.rank() == 0) {
      double vals[4] = {1, 2, 3, 4};
      c.send(1, kTag, CBuf{vals, 4, xmpi::DType::kF64});
    } else if (c.rank() == 1) {
      double out[4] = {0, 0, 0, 0};
      try {
        c.recv(0, kTag, MBuf{out, 2, xmpi::DType::kF64});  // wrong count
        FAIL() << "mismatched recv did not throw";
      } catch (const CommError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
        EXPECT_NE(what.find("tag 7"), std::string::npos) << what;
      }
      // The message must still be matchable by a corrected receive.
      c.recv(0, kTag, MBuf{out, 4, xmpi::DType::kF64});
      EXPECT_DOUBLE_EQ(out[0], 1);
      EXPECT_DOUBLE_EQ(out[3], 4);
    }
  });
}

TEST_P(BothBackends, MultiGroupTMinReducesWithMin) {
  // Synthetic per-rank timings through the cross-group merge: t_min must
  // be the true minimum over ranks (IMB 2.3), t_avg/t_max the maximum
  // (slowest group dominates).
  test::run_world(GetParam(), 4, [](Comm& c) {
    imb::ImbResult mine;
    mine.t_min_s = 10.0 + c.rank();
    mine.t_avg_s = 20.0 + c.rank();
    mine.t_max_s = 30.0 + c.rank();
    mine.repetitions = 7;
    const imb::ImbResult out = imb::detail::reduce_group_results(c, mine);
    EXPECT_DOUBLE_EQ(out.t_min_s, 10.0);
    EXPECT_DOUBLE_EQ(out.t_avg_s, 23.0);
    EXPECT_DOUBLE_EQ(out.t_max_s, 33.0);
    EXPECT_EQ(out.repetitions, 7);
  });
}

TEST_P(BothBackends, MultiGroupEndToEndKeepsOrdering) {
  test::run_world(GetParam(), 4, [](Comm& c) {
    imb::ImbParams params;
    params.msg_bytes = 1024;
    params.repetitions = 4;
    params.groups = 2;
    params.phantom = false;
    const imb::ImbResult r =
        imb::run_benchmark(imb::BenchmarkId::kSendrecv, c, params);
    EXPECT_LE(r.t_min_s, r.t_avg_s + 1e-12);
    EXPECT_LE(r.t_avg_s, r.t_max_s + 1e-12);
  });
}

TEST(Transport, ManyTagsFifoStress) {
  // Every rank floods every other rank on several tags, then drains the
  // tags in reverse order: per-(src, tag) FIFO must survive the
  // deferred-list machinery under real concurrency.
  constexpr int kRanks = 4;
  constexpr int kTags = 6;
  constexpr int kMsgs = 25;
  auto value = [](int src, int tag, int i) {
    return static_cast<std::int32_t>(src * 100000 + tag * 1000 + i);
  };
  with_watchdog([&] {
    xmpi::run_on_threads(kRanks, [&](Comm& c) {
      for (int i = 0; i < kMsgs; ++i)
        for (int tag = 0; tag < kTags; ++tag)
          for (int dst = 0; dst < kRanks; ++dst) {
            if (dst == c.rank()) continue;
            const std::int32_t v = value(c.rank(), tag, i);
            c.send(dst, tag, CBuf{&v, 1, xmpi::DType::kI32});
          }
      for (int src = 0; src < kRanks; ++src) {
        if (src == c.rank()) continue;
        for (int tag = kTags - 1; tag >= 0; --tag)
          for (int i = 0; i < kMsgs; ++i) {
            std::int32_t v = -1;
            c.recv(src, tag, MBuf{&v, 1, xmpi::DType::kI32});
            EXPECT_EQ(v, value(src, tag, i))
                << "src " << src << " tag " << tag << " msg " << i;
          }
      }
    });
  });
}

TEST(Transport, EagerRendezvousBoundary) {
  // Sizes threshold-1 / threshold / threshold+1 around a 4 KiB eager
  // threshold: exactly the first two are eager, the third rendezvous,
  // and every payload must arrive intact either way.
  constexpr std::size_t kThreshold = 4096;
  const std::size_t sizes[3] = {kThreshold - 1, kThreshold, kThreshold + 1};
  trace::Recorder recorder(2);
  xmpi::ThreadRunOptions options;
  options.recorder = &recorder;
  options.transport.eager_max_bytes = kThreshold;
  with_watchdog([&] {
    xmpi::run_on_threads(
        2,
        [&](Comm& c) {
          for (int k = 0; k < 3; ++k) {
            std::vector<unsigned char> buf(sizes[k]);
            if (c.rank() == 0) {
              for (std::size_t i = 0; i < buf.size(); ++i)
                buf[i] = static_cast<unsigned char>((i + k) & 0xff);
              c.send(1, 40 + k, xmpi::cbuf_bytes(buf.data(), buf.size()));
            } else {
              c.recv(0, 40 + k, xmpi::mbuf_bytes(buf.data(), buf.size()));
              for (std::size_t i = 0; i < buf.size(); i += 97)
                ASSERT_EQ(buf[i], static_cast<unsigned char>((i + k) & 0xff));
            }
          }
        },
        options);
  });
  const trace::Counters& c0 = recorder.rank(0).counters();
  EXPECT_EQ(c0.eager_sends, 2u);
  EXPECT_EQ(c0.rendezvous_sends, 1u);
  EXPECT_EQ(c0.eager_size_hist[trace::size_class(kThreshold - 1)], 1u);
  EXPECT_EQ(c0.eager_size_hist[trace::size_class(kThreshold)], 1u);
  EXPECT_EQ(c0.rendezvous_size_hist[trace::size_class(kThreshold + 1)], 1u);
  // Copy accounting: each message costs 1 copy (posted-direct or
  // rendezvous) or 2 (staged eager), summed over both ranks' counters.
  const trace::Counters total = recorder.total();
  EXPECT_GE(total.payload_copies, 3u);
  EXPECT_LE(total.payload_copies, 5u);
}

TEST(Transport, SelfSendStaysEagerAtAnySize) {
  // A rank sending to itself above the rendezvous threshold must buffer
  // eagerly — a parked self-send could never be matched.
  with_watchdog([] {
    xmpi::run_on_threads(1, [](Comm& c) {
      std::vector<std::uint64_t> src(1 << 17), dst(1 << 17);
      std::iota(src.begin(), src.end(), 0);
      c.send(0, 3, xmpi::cbuf(std::span<const std::uint64_t>(src)));
      c.recv(0, 3, xmpi::mbuf(std::span<std::uint64_t>(dst)));
      EXPECT_EQ(dst.back(), src.back());
    });
  });
}

TEST(Transport, LargeSendrecvRingAboveThreshold) {
  // Fully cyclic exchange at a rendezvous size: sendrecv must stay
  // deadlock-free (isend under the hood) and deliver correct data.
  constexpr std::size_t kBytes = 256 * 1024;
  with_watchdog([] {
    xmpi::run_on_threads(4, [](Comm& c) {
      const int right = (c.rank() + 1) % c.size();
      const int left = (c.rank() + c.size() - 1) % c.size();
      std::vector<unsigned char> out(kBytes,
                                     static_cast<unsigned char>(c.rank()));
      std::vector<unsigned char> in(kBytes, 0xff);
      c.sendrecv(right, 9, xmpi::cbuf_bytes(out.data(), out.size()), left, 9,
                 xmpi::mbuf_bytes(in.data(), in.size()));
      EXPECT_EQ(in[0], static_cast<unsigned char>(left));
      EXPECT_EQ(in[kBytes - 1], static_cast<unsigned char>(left));
    });
  });
}

TEST(Transport, PingPingAndExchangeAboveThreshold) {
  // Both-sides-send-first IMB patterns at a rendezvous size: only
  // possible because they isend.
  with_watchdog([] {
    xmpi::run_on_threads(2, [](Comm& c) {
      imb::ImbParams params;
      params.msg_bytes = 256 * 1024;
      params.repetitions = 3;
      params.warmup = 1;
      (void)imb::run_benchmark(imb::BenchmarkId::kPingPing, c, params);
    });
    xmpi::run_on_threads(4, [](Comm& c) {
      imb::ImbParams params;
      params.msg_bytes = 256 * 1024;
      params.repetitions = 3;
      params.warmup = 1;
      (void)imb::run_benchmark(imb::BenchmarkId::kExchange, c, params);
    });
  });
}

TEST(Transport, OneSidedFenceAboveThreshold) {
  // The fence's all-to-all control/payload exchange is isend-based now;
  // a rendezvous-size put must complete and land correctly.
  constexpr std::size_t kBytes = 200 * 1024;
  with_watchdog([] {
    xmpi::run_on_threads(3, [](Comm& c) {
      std::vector<unsigned char> region(kBytes, 0);
      xmpi::Window win(c, xmpi::mbuf_bytes(region.data(), region.size()), 1);
      const int target = (c.rank() + 1) % c.size();
      std::vector<unsigned char> payload(kBytes,
                                         static_cast<unsigned char>(c.rank()));
      win.put(target, 0, xmpi::cbuf_bytes(payload.data(), payload.size()));
      win.fence();
      const int expect = (c.rank() + c.size() - 1) % c.size();
      EXPECT_EQ(region[0], static_cast<unsigned char>(expect));
      EXPECT_EQ(region[kBytes - 1], static_cast<unsigned char>(expect));
    });
  });
}

TEST(Transport, IsendWaitIsIdempotentAndOrdered) {
  with_watchdog([] {
    xmpi::run_on_threads(2, [](Comm& c) {
      if (c.rank() == 0) {
        std::vector<unsigned char> a(64, 0xaa), b(128 * 1024, 0xbb);
        xmpi::SendRequest ra =
            c.isend(1, 1, xmpi::cbuf_bytes(a.data(), a.size()));
        xmpi::SendRequest rb =
            c.isend(1, 2, xmpi::cbuf_bytes(b.data(), b.size()));
        c.wait(ra);
        c.wait(rb);
        c.wait(rb);  // idempotent
        EXPECT_FALSE(rb.pending());
      } else {
        std::vector<unsigned char> a(64), b(128 * 1024);
        c.recv(0, 1, xmpi::mbuf_bytes(a.data(), a.size()));
        c.recv(0, 2, xmpi::mbuf_bytes(b.data(), b.size()));
        EXPECT_EQ(a[63], 0xaa);
        EXPECT_EQ(b[0], 0xbb);
      }
    });
  });
}

}  // namespace
}  // namespace hpcx
