// Explicit collective-algorithm selection: every selectable algorithm
// must produce identical results, and the pipelined-ring broadcast must
// show its bandwidth-optimal signature under simulation.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "machine/registry.hpp"
#include "test_util.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx::xmpi {
namespace {

using test::Backend;
using test::run_world;
using test::test_value;

std::string alg_param_name(
    const ::testing::TestParamInfo<std::tuple<Backend, int, BcastAlg>>&
        info) {
  const auto [backend, n, alg] = info.param;
  const char* alg_name =
      alg == BcastAlg::kBinomial
          ? "binomial"
          : (alg == BcastAlg::kScatterRing ? "scatter_ring"
                                           : "pipelined_ring");
  return std::string(test::to_string(backend)) + "_n" + std::to_string(n) +
         "_" + alg_name;
}

class BcastAlgTest
    : public ::testing::TestWithParam<std::tuple<Backend, int, BcastAlg>> {};

TEST_P(BcastAlgTest, EveryAlgorithmDeliversTheData) {
  const auto [backend, n, alg] = GetParam();
  for (const std::size_t count : {std::size_t{3}, std::size_t{5000}}) {
    run_world(backend, n, [&, alg = alg](Comm& c) {
      c.tuning().bcast_alg = alg;
      c.tuning().bcast_segment_bytes = 1024;  // force multiple segments
      std::vector<double> buf(count);
      const int root = c.size() / 2;
      if (c.rank() == root)
        for (std::size_t i = 0; i < count; ++i) buf[i] = test_value(root, i);
      c.bcast(mbuf(std::span<double>(buf)), root);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_DOUBLE_EQ(test_value(root, i), buf[i]) << "i=" << i;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcastAlgTest,
    ::testing::Combine(::testing::Values(Backend::kThreads, Backend::kSim),
                       ::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Values(BcastAlg::kBinomial,
                                         BcastAlg::kScatterRing,
                                         BcastAlg::kPipelinedRing)),
    alg_param_name);

TEST(AllreduceAlg, BothAlgorithmsAgree) {
  for (const auto alg :
       {AllreduceAlg::kRecursiveDoubling, AllreduceAlg::kRabenseifner}) {
    run_world(Backend::kThreads, 6, [alg](Comm& c) {
      c.tuning().allreduce_alg = alg;
      std::vector<double> send(4000), recv(4000);
      for (std::size_t i = 0; i < send.size(); ++i)
        send[i] = test_value(c.rank(), i);
      c.allreduce(cbuf(std::span<const double>(send)),
                  mbuf(std::span<double>(recv)), ROp::kSum);
      for (std::size_t i = 0; i < recv.size(); ++i) {
        double expected = 0;
        for (int r = 0; r < 6; ++r) expected += test_value(r, i);
        ASSERT_DOUBLE_EQ(expected, recv[i]);
      }
    });
  }
}

TEST(AllgatherAlg, RingAndBruckAgree) {
  for (const auto alg : {AllgatherAlg::kBruck, AllgatherAlg::kRing}) {
    run_world(Backend::kSim, 5, [alg](Comm& c) {
      c.tuning().allgather_alg = alg;
      std::vector<double> send(7);
      for (std::size_t i = 0; i < send.size(); ++i)
        send[i] = test_value(c.rank(), i);
      std::vector<double> recv(7 * 5, -1);
      c.allgather(cbuf(std::span<const double>(send)),
                  mbuf(std::span<double>(recv)));
      for (int r = 0; r < 5; ++r)
        for (std::size_t i = 0; i < 7; ++i)
          ASSERT_DOUBLE_EQ(test_value(r, i),
                           recv[static_cast<std::size_t>(r) * 7 + i]);
    });
  }
}

// Non-power-of-two rank counts are where the fold-to-pow2 preludes of
// recursive doubling / recursive halving and Bruck's log-round rotation
// earn their keep; np = 3, 5, 6, 7 at sizes below and above the
// *_long_bytes switch points pin them on both backends.
class NonPow2Test
    : public ::testing::TestWithParam<std::tuple<Backend, int>> {};

TEST_P(NonPow2Test, RecursiveDoublingAllreduce) {
  const auto [backend, n] = GetParam();
  // 100 f64 = 800 B (short path) and 3000 f64 = ~23 KB (above the
  // 16 KiB allreduce threshold, so also the kAuto long path).
  for (const std::size_t count : {std::size_t{100}, std::size_t{3000}}) {
    run_world(backend, n, [&, n = n](Comm& c) {
      c.tuning().allreduce_alg = AllreduceAlg::kRecursiveDoubling;
      std::vector<double> send(count), recv(count, -1);
      for (std::size_t i = 0; i < count; ++i)
        send[i] = test_value(c.rank(), i);
      c.allreduce(cbuf(std::span<const double>(send)),
                  mbuf(std::span<double>(recv)), ROp::kSum);
      for (std::size_t i = 0; i < count; ++i) {
        double expected = 0;
        for (int r = 0; r < n; ++r) expected += test_value(r, i);
        ASSERT_DOUBLE_EQ(expected, recv[i]) << "count=" << count;
      }
    });
  }
}

TEST_P(NonPow2Test, BruckAllgather) {
  const auto [backend, n] = GetParam();
  // 13 f64 = 104 B (short) and 1201 f64 = ~9.4 KB per rank (above the
  // 8 KiB allgather threshold).
  for (const std::size_t count : {std::size_t{13}, std::size_t{1201}}) {
    run_world(backend, n, [&, n = n](Comm& c) {
      c.tuning().allgather_alg = AllgatherAlg::kBruck;
      std::vector<double> send(count);
      for (std::size_t i = 0; i < count; ++i)
        send[i] = test_value(c.rank(), i);
      std::vector<double> recv(count * static_cast<std::size_t>(n), -1);
      c.allgather(cbuf(std::span<const double>(send)),
                  mbuf(std::span<double>(recv)));
      for (int r = 0; r < n; ++r)
        for (std::size_t i = 0; i < count; ++i)
          ASSERT_DOUBLE_EQ(test_value(r, i),
                           recv[static_cast<std::size_t>(r) * count + i])
              << "count=" << count;
    });
  }
}

TEST_P(NonPow2Test, RecursiveHalvingReduceScatter) {
  const auto [backend, n] = GetParam();
  // Uneven per-rank counts, short and long totals.
  for (const std::size_t base : {std::size_t{5}, std::size_t{700}}) {
    run_world(backend, n, [&, n = n](Comm& c) {
      c.tuning().reduce_scatter_alg = ReduceScatterAlg::kRecursiveHalving;
      std::vector<int> counts(static_cast<std::size_t>(n));
      std::size_t total = 0, my_off = 0;
      for (int r = 0; r < n; ++r) {
        counts[static_cast<std::size_t>(r)] = static_cast<int>(base) + r;
        if (r < c.rank()) my_off += base + static_cast<std::size_t>(r);
        total += base + static_cast<std::size_t>(r);
      }
      const auto mine = static_cast<std::size_t>(
          counts[static_cast<std::size_t>(c.rank())]);
      std::vector<double> send(total), recv(mine, -1);
      for (std::size_t i = 0; i < total; ++i)
        send[i] = test_value(c.rank(), i);
      c.reduce_scatter(cbuf(std::span<const double>(send)),
                       mbuf(std::span<double>(recv)), counts, ROp::kSum);
      for (std::size_t i = 0; i < mine; ++i) {
        double expected = 0;
        for (int r = 0; r < n; ++r) expected += test_value(r, my_off + i);
        ASSERT_DOUBLE_EQ(expected, recv[i]) << "base=" << base;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonPow2Test,
    ::testing::Combine(::testing::Values(Backend::kThreads, Backend::kSim),
                       ::testing::Values(3, 5, 6, 7)),
    [](const ::testing::TestParamInfo<std::tuple<Backend, int>>& info) {
      return std::string(test::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

double bcast_time(BcastAlg alg, int cpus, std::size_t bytes) {
  double t = 0;
  xmpi::run_on_machine(mach::dell_xeon(), cpus, [&](Comm& c) {
    c.tuning().bcast_alg = alg;
    auto op = [&] { c.bcast(phantom_mbuf(bytes), 0); };
    op();
    c.barrier();
    const double t0 = c.now();
    op();
    // The root returns as soon as its sends are injected; close the
    // epoch with a barrier so the time covers full delivery (the same
    // constant barrier cost is paid by both algorithms).
    c.barrier();
    if (c.rank() == 0) t = c.now() - t0;
  });
  return t;
}

TEST(BcastAlgSim, PipelineBeatsBinomialForLongMessages) {
  // Binomial re-sends the full message log2(P) times from the root's
  // subtree; the segmented ring streams it once. At 8 MB x 32 ranks the
  // pipeline must win clearly.
  const std::size_t big = 8u << 20;
  EXPECT_LT(bcast_time(BcastAlg::kPipelinedRing, 32, big),
            bcast_time(BcastAlg::kBinomial, 32, big));
}

TEST(BcastAlgSim, BinomialBeatsPipelineForShortMessages) {
  // 64 B across 32 ranks: log2(32) hops vs 31 hops.
  EXPECT_LT(bcast_time(BcastAlg::kBinomial, 32, 64),
            bcast_time(BcastAlg::kPipelinedRing, 32, 64));
}

}  // namespace
}  // namespace hpcx::xmpi
