// Distributed HPCC benchmarks: HPL, PTRANS, G-FFT, RandomAccess, rings,
// and the full-suite driver — verified on real threads, and exercised in
// model (phantom) mode on the simulated machines.
#include <gtest/gtest.h>

#include <tuple>

#include "hpcc/driver.hpp"
#include "hpcc/fft_dist.hpp"
#include "hpcc/hpl_dist.hpp"
#include "hpcc/ptrans.hpp"
#include "hpcc/random_access.hpp"
#include "hpcc/ring.hpp"
#include "machine/registry.hpp"
#include "test_util.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::hpcc {
namespace {

using test::Backend;
using test::run_world;

std::string name_pnnb(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  const auto [np, n, nb] = info.param;
  return "p" + std::to_string(np) + "n" + std::to_string(n) + "nb" +
         std::to_string(nb);
}

std::string name_pn(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto [np, n] = info.param;
  return "p" + std::to_string(np) + "n" + std::to_string(n);
}

std::string name_pn1n2(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  const auto [np, n1, n2] = info.param;
  return "p" + std::to_string(np) + "n1x" + std::to_string(n1) + "n2x" +
         std::to_string(n2);
}

class HplDist : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HplDist, FactorsAndVerifies) {
  const auto [np, n, nb] = GetParam();
  xmpi::run_on_threads(np, [&](xmpi::Comm& c) {
    HplDistConfig cfg;
    cfg.n = n;
    cfg.nb = nb;
    const HplDistResult r = run_hpl_dist(c, cfg);
    EXPECT_TRUE(r.passed) << "residual=" << r.residual;
    EXPECT_LT(r.residual, 16.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HplDist,
    ::testing::Values(std::make_tuple(1, 32, 8), std::make_tuple(2, 64, 16),
                      std::make_tuple(3, 65, 16), std::make_tuple(4, 64, 8),
                      std::make_tuple(4, 100, 32), std::make_tuple(5, 47, 8)),
    name_pnnb);

TEST(HplDist, SameAnswerOnSimBackend) {
  xmpi::run_on_machine(mach::nec_sx8(), 4, [](xmpi::Comm& c) {
    HplDistConfig cfg;
    cfg.n = 48;
    cfg.nb = 8;
    const HplDistResult r = run_hpl_dist(c, cfg);
    EXPECT_TRUE(r.passed) << "residual=" << r.residual;
  });
}

TEST(HplDist, ModelModeProducesFiniteRate) {
  HplModel model;
  model.update_seconds_per_flop = 1.0 / 10e9;
  model.panel_seconds_per_flop = 1.0 / 3e9;
  double gflops = 0;
  xmpi::run_on_machine(mach::dell_xeon(), 16, [&](xmpi::Comm& c) {
    HplDistConfig cfg;
    cfg.n = 4096;
    cfg.nb = 256;
    const HplDistResult r = run_hpl_dist(c, cfg, &model);
    if (c.rank() == 0) gflops = r.gflops;
  });
  EXPECT_GT(gflops, 0.0);
  // Cannot beat 16 CPUs at the modelled 10 Gflop/s update rate.
  EXPECT_LT(gflops, 160.0);
}

TEST(HplDist, EfficiencyDeclinesWithScaleInModelMode) {
  auto eff = [](int cpus) {
    const mach::MachineConfig m = mach::cray_opteron();
    HplModel model;
    const double peak =
        m.proc.peak_flops() * m.proc.hpl_kernel_efficiency;
    model.update_seconds_per_flop = 1.0 / peak;
    model.panel_seconds_per_flop = 3.0 / peak;
    double gflops = 0;
    xmpi::run_on_machine(m, cpus, [&](xmpi::Comm& c) {
      c.tuning().bcast_long_bytes = static_cast<std::size_t>(-1);
      HplDistConfig cfg;
      cfg.n = 2048;
      cfg.nb = 128;
      const HplDistResult r = run_hpl_dist(c, cfg, &model);
      if (c.rank() == 0) gflops = r.gflops;
    });
    return gflops * 1e9 / (m.proc.peak_flops() * cpus);
  };
  const double e4 = eff(4);
  const double e32 = eff(32);
  EXPECT_GT(e4, e32);  // fixed n: efficiency must fall with more CPUs
}

class PtransDist : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PtransDist, TransposesCorrectly) {
  const auto [np, n] = GetParam();
  xmpi::run_on_threads(np, [&](xmpi::Comm& c) {
    const PtransResult r = run_ptrans(c, n);
    EXPECT_TRUE(r.passed);
    EXPECT_GT(r.bytes_per_s, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Grid, PtransDist,
                         ::testing::Values(std::make_tuple(1, 8), std::make_tuple(2, 16),
                                           std::make_tuple(3, 27),
                                           std::make_tuple(4, 32),
                                           std::make_tuple(6, 36)),
                         name_pn);

TEST(PtransDist, RequiresDivisibility) {
  xmpi::run_on_threads(2, [](xmpi::Comm& c) {
    EXPECT_THROW(run_ptrans(c, 7), ConfigError);
  });
}

class FftDist : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FftDist, MatchesSerialFft) {
  const auto [np, n1, n2] = GetParam();
  xmpi::run_on_threads(np, [&](xmpi::Comm& c) {
    const FftDistResult r = run_fft_dist(c, static_cast<std::size_t>(n1),
                                         static_cast<std::size_t>(n2));
    EXPECT_TRUE(r.passed) << "max_error=" << r.max_error;
    EXPECT_GT(r.flops_per_s, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FftDist,
    ::testing::Values(std::make_tuple(1, 8, 8), std::make_tuple(2, 8, 16),
                      std::make_tuple(2, 6, 10), std::make_tuple(4, 16, 16),
                      std::make_tuple(4, 12, 20), std::make_tuple(3, 9, 15),
                      std::make_tuple(8, 16, 32)),
    name_pn1n2);

TEST(RandomAccessDist, VerifiesOnThreads) {
  for (const int np : {1, 2, 3, 4}) {
    xmpi::run_on_threads(np, [](xmpi::Comm& c) {
      const GupsResult r = run_random_access_dist(c, 10, 64);
      EXPECT_EQ(0u, r.errors);
      EXPECT_TRUE(r.passed);
    });
  }
}

TEST(RandomAccessDist, PhantomModeOnSim) {
  GupsModel model;
  model.seconds_per_update = 1e-7;
  double gups = 0;
  xmpi::run_on_machine(mach::altix_bx2(), 8, [&](xmpi::Comm& c) {
    const GupsResult r = run_random_access_dist(c, 14, 512, &model);
    if (c.rank() == 0) gups = r.gups;
  });
  EXPECT_GT(gups, 0.0);
}

TEST(Ring, NaturalAndRandomOnThreads) {
  xmpi::run_on_threads(4, [](xmpi::Comm& c) {
    const RingResult nat = run_natural_ring(c, 4096, 2);
    const RingResult rnd = run_random_ring(c, 4096, 2, 2);
    EXPECT_GT(nat.bandwidth_per_cpu_Bps, 0.0);
    EXPECT_GT(rnd.bandwidth_per_cpu_Bps, 0.0);
    EXPECT_GT(nat.latency_s, 0.0);
    EXPECT_GT(rnd.latency_s, 0.0);
  });
}

TEST(Ring, RandomRingSlowerThanNaturalOnSim) {
  // On the simulated Xeon cluster, the natural ring keeps half the
  // traffic inside nodes; a random ring crosses the network almost
  // always, so its per-CPU bandwidth must be lower.
  double nat_bw = 0, rnd_bw = 0;
  xmpi::run_on_machine(mach::dell_xeon(), 32, [&](xmpi::Comm& c) {
    const RingResult nat =
        run_natural_ring(c, 1 << 20, 2, /*phantom=*/true);
    const RingResult rnd =
        run_random_ring(c, 1 << 20, 2, 2, 0xB0EFF, /*phantom=*/true);
    if (c.rank() == 0) {
      nat_bw = nat.bandwidth_per_cpu_Bps;
      rnd_bw = rnd.bandwidth_per_cpu_Bps;
    }
  });
  EXPECT_GT(nat_bw, rnd_bw);
}

TEST(Driver, RealSuiteRunsAndVerifies) {
  const HpccReport r = run_hpcc_real(4);
  EXPECT_GT(r.g_hpl_flops, 0.0);
  EXPECT_GT(r.g_ptrans_Bps, 0.0);
  EXPECT_GT(r.g_gups, 0.0);
  EXPECT_GT(r.g_fft_flops, 0.0);
  EXPECT_GT(r.ep_stream_copy_Bps, 0.0);
  EXPECT_GT(r.ep_dgemm_flops, 0.0);
  EXPECT_GT(r.ring_bw_Bps, 0.0);
  EXPECT_GT(r.ring_latency_s, 0.0);
}

TEST(Driver, SimSuiteProducesPaperScaleMetrics) {
  HpccConfig cfg;
  cfg.hpl_n = 8192;
  cfg.hpl_nb = 512;
  cfg.ptrans_n = 2048;
  cfg.ra_log2 = 16;
  cfg.fft_n1 = 256;
  cfg.fft_n2 = 256;
  const HpccReport r = run_hpcc_sim(mach::nec_sx8(), 16, cfg);
  EXPECT_GT(r.g_hpl_flops, 0.0);
  // 16 SX-8 CPUs peak at 256 Gflop/s; HPL must stay below peak.
  EXPECT_LT(r.g_hpl_flops, 16 * 16e9);
  EXPECT_GT(r.g_ptrans_Bps, 0.0);
  EXPECT_GT(r.g_gups, 0.0);
  EXPECT_GT(r.g_fft_flops, 0.0);
  EXPECT_DOUBLE_EQ(41e9, r.ep_stream_copy_Bps);
  EXPECT_GT(r.ring_bw_Bps, 0.0);
}

TEST(Driver, AutoConfigScalesWithCpus) {
  const HpccConfig small = auto_config(4);
  const HpccConfig large = auto_config(256);
  EXPECT_LT(small.hpl_n, large.hpl_n);
  EXPECT_EQ(0, large.ptrans_n % 256);
  EXPECT_GT(large.fft_n1, 0u);
  // Non-smooth CPU counts cannot run the six-step FFT.
  EXPECT_EQ(0u, auto_config(506).fft_n1);
}

}  // namespace
}  // namespace hpcx::hpcc
