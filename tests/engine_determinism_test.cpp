// Golden-makespan determinism: the simulator must be bit-reproducible.
//
// The engine orders events by (time, seq) and performs a fixed sequence
// of floating-point operations per run, so the simulated makespan of a
// fixed workload is a *bit-identical* double across runs, build modes,
// and engine refactors. These goldens pin that contract for all five
// paper machines: any engine change that reorders events or perturbs a
// single FP rounding (e.g. replacing a division by a multiplication
// with a precomputed inverse) shows up here as a one-ulp mismatch long
// before it would be visible in a plotted figure.
//
// If a change *intentionally* alters the simulated timing model, the
// goldens must be re-captured (run this workload and print the bit
// patterns) and the change called out in review — never silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx {
namespace {

// 32 ranks: allreduce(16 KiB doubles) -> barrier -> alltoall(256 B per
// peer). Touches the tree/ring collective schedules, the hardware
// barrier path on machines that model one, and per-message network
// serialisation — a broad slice of the engine in a sub-second run.
double simulate_workload(const mach::MachineConfig& machine) {
  constexpr int kRanks = 32;
  const auto result = xmpi::run_on_machine(machine, kRanks, [](xmpi::Comm& c) {
    c.allreduce(xmpi::phantom_cbuf(16384, xmpi::DType::kF64),
                xmpi::phantom_mbuf(16384, xmpi::DType::kF64),
                xmpi::ROp::kSum);
    c.barrier();
    c.alltoall(xmpi::phantom_cbuf(kRanks * 256, xmpi::DType::kByte),
               xmpi::phantom_mbuf(kRanks * 256, xmpi::DType::kByte));
  });
  return result.makespan_s;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

struct Golden {
  const char* name;
  mach::MachineConfig (*machine)();
  std::uint64_t makespan_bits;
};

// Captured from the seed engine (pre fast-path rewrite) and verified
// unchanged after it. The comments give the decoded seconds for humans;
// the assertions compare raw bits.
constexpr Golden kGoldens[] = {
    {"altix_bx2", mach::altix_bx2, 0x3f39eeaf0ef2dda4ULL},     // 395.696 us
    {"cray_x1_msp", mach::cray_x1_msp, 0x3f4649bc8e45904aULL}, // 680.177 us
    {"cray_opteron", mach::cray_opteron,
     0x3f53990823adbb1eULL},                                   // 1196.154 us
    {"dell_xeon", mach::dell_xeon, 0x3f4e4f0c2637b1b1ULL},     // 924.951 us
    {"nec_sx8", mach::nec_sx8, 0x3f350efe5e61be77ULL},         // 321.328 us
};

class EngineDeterminism : public ::testing::TestWithParam<Golden> {};

TEST_P(EngineDeterminism, MakespanMatchesGoldenBits) {
  const Golden& g = GetParam();
  const double makespan = simulate_workload(g.machine());
  EXPECT_EQ(g.makespan_bits, bits_of(makespan))
      << g.name << ": got " << makespan << " (bits 0x" << std::hex
      << bits_of(makespan) << "), golden bits 0x" << g.makespan_bits;
}

TEST_P(EngineDeterminism, RepeatedRunsAreBitIdentical) {
  const Golden& g = GetParam();
  const double first = simulate_workload(g.machine());
  const double second = simulate_workload(g.machine());
  EXPECT_EQ(bits_of(first), bits_of(second)) << g.name;
}

INSTANTIATE_TEST_SUITE_P(AllMachines, EngineDeterminism,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace hpcx
