// One-sided communication (Window put/get/fence) on both backends.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_util.hpp"
#include "xmpi/one_sided.hpp"

namespace hpcx::xmpi {
namespace {

using test::Backend;
using test::run_world;

class OneSidedTest : public ::testing::TestWithParam<test::Backend> {};

TEST_P(OneSidedTest, PutIntoRightNeighbour) {
  run_world(GetParam(), 4, [](Comm& c) {
    std::vector<double> region(8, -1.0);
    Window win(c, mbuf(std::span<double>(region)), 1);
    const int right = (c.rank() + 1) % c.size();
    std::vector<double> data{c.rank() + 0.25, c.rank() + 0.5};
    win.put(right, 2 * 8 /* byte offset */, cbuf(std::span<const double>(data)));
    win.fence();
    const int left = (c.rank() + c.size() - 1) % c.size();
    EXPECT_DOUBLE_EQ(left + 0.25, region[2]);
    EXPECT_DOUBLE_EQ(left + 0.5, region[3]);
    EXPECT_DOUBLE_EQ(-1.0, region[0]);  // untouched bytes stay
  });
}

TEST_P(OneSidedTest, GetFromEveryRank) {
  run_world(GetParam(), 5, [](Comm& c) {
    std::vector<double> region{static_cast<double>(c.rank() * 100)};
    Window win(c, mbuf(std::span<double>(region)), 1);
    win.fence();  // expose the initialised region
    std::vector<double> collected(static_cast<std::size_t>(c.size()), -1);
    for (int t = 0; t < c.size(); ++t)
      win.get(t, 0,
              MBuf{&collected[static_cast<std::size_t>(t)], 1, DType::kF64});
    win.fence();
    for (int t = 0; t < c.size(); ++t)
      EXPECT_DOUBLE_EQ(t * 100.0, collected[static_cast<std::size_t>(t)]);
  });
}

TEST_P(OneSidedTest, PutGetSelfWorks) {
  run_world(GetParam(), 2, [](Comm& c) {
    std::vector<double> region(2, 0.0);
    Window win(c, mbuf(std::span<double>(region)), 1);
    std::vector<double> v{7.5};
    win.put(c.rank(), 8, cbuf(std::span<const double>(v)));
    double out = 0;
    win.fence();
    win.get(c.rank(), 8, MBuf{&out, 1, DType::kF64});
    win.fence();
    EXPECT_DOUBLE_EQ(7.5, out);
  });
}

TEST_P(OneSidedTest, EpochsAreOrdered) {
  // A put in epoch 1 must be visible to a get in epoch 2.
  run_world(GetParam(), 3, [](Comm& c) {
    std::vector<double> region(1, 0.0);
    Window win(c, mbuf(std::span<double>(region)), 1);
    if (c.rank() == 0) {
      std::vector<double> v{42.0};
      win.put(2, 0, cbuf(std::span<const double>(v)));
    }
    win.fence();
    double seen = 0;
    win.get(2, 0, MBuf{&seen, 1, DType::kF64});
    win.fence();
    EXPECT_DOUBLE_EQ(42.0, seen);
  });
}

TEST_P(OneSidedTest, EmptyEpochIsJustASync) {
  run_world(GetParam(), 4, [](Comm& c) {
    std::vector<double> region(1, 0.0);
    Window win(c, mbuf(std::span<double>(region)), 1);
    for (int i = 0; i < 3; ++i) win.fence();
  });
}

TEST_P(OneSidedTest, ManySmallPutsBatchCorrectly) {
  run_world(GetParam(), 3, [](Comm& c) {
    constexpr int kSlots = 16;
    std::vector<double> region(kSlots * 3, -1.0);
    Window win(c, mbuf(std::span<double>(region)), 1);
    // Every rank writes its id into its own slot band on every rank.
    for (int t = 0; t < c.size(); ++t)
      for (int s = 0; s < kSlots; ++s) {
        const double v = c.rank() * 1000 + s;
        win.put(t, (static_cast<std::size_t>(c.rank()) * kSlots +
                    static_cast<std::size_t>(s)) *
                       8,
                CBuf{&v, 1, DType::kF64});
      }
    win.fence();
    for (int r = 0; r < c.size(); ++r)
      for (int s = 0; s < kSlots; ++s)
        EXPECT_DOUBLE_EQ(r * 1000 + s,
                         region[static_cast<std::size_t>(r) * kSlots +
                                static_cast<std::size_t>(s)]);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, OneSidedTest,
                         ::testing::Values(Backend::kThreads, Backend::kSim),
                         [](const auto& info) {
                           return std::string(test::to_string(info.param));
                         });

TEST(OneSided, OutOfWindowAccessThrows) {
  EXPECT_THROW(run_world(Backend::kThreads, 2,
                         [](Comm& c) {
                           std::vector<double> region(1, 0.0);
                           Window win(c, mbuf(std::span<double>(region)), 1);
                           std::vector<double> v{1.0};
                           win.put((c.rank() + 1) % 2, 8,
                                   cbuf(std::span<const double>(v)));
                           win.fence();
                         }),
               ConfigError);
}

TEST(OneSided, PhantomTimingOnSimulatedMachine) {
  const auto r = xmpi::run_on_machine(mach::nec_sx8(), 16, [](Comm& c) {
    Window win(c, phantom_mbuf(1 << 20), 1);
    win.put((c.rank() + 1) % c.size(), 0, phantom_cbuf(1 << 16));
    win.get((c.rank() + 3) % c.size(), 0, phantom_mbuf(1 << 16));
    win.fence();
  });
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.internode_messages, 0u);
}

}  // namespace
}  // namespace hpcx::xmpi
