// Sweep API: spec enumeration, cache-key content addressing, on-disk
// round trips, hit/miss accounting, and the executor's determinism
// contract (jobs = N merges index-aligned, so results are identical to
// serial execution at any worker count — the tsan preset runs the
// stress cases under the race detector).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "machine/machine.hpp"
#include "machine/registry.hpp"
#include "report/sweep.hpp"
#include "trace/trace.hpp"

namespace hpcx::report {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

SweepPoint custom_point(const std::string& name, double value,
                        std::function<SweepResult(trace::Recorder*)> fn = {}) {
  SweepPoint pt;
  pt.workload = SweepWorkload::kCustom;
  pt.workload_name = name;
  pt.machine = mach::dell_xeon();
  pt.np = 4;
  pt.msg_bytes = static_cast<std::size_t>(value);  // distinct cache keys
  if (fn) {
    pt.run = std::move(fn);
  } else {
    pt.run = [value](trace::Recorder*) {
      SweepResult out;
      out.set("v", value);
      return out;
    };
  }
  return pt;
}

TEST(SweepSpec, EnumeratesMachineMajorGrid) {
  SweepSpec spec;
  spec.workload = SweepWorkload::kImb;
  spec.imb_id = imb::BenchmarkId::kAllreduce;
  spec.machines = {mach::dell_xeon(), mach::nec_sx8()};
  spec.np_set = {4, 8};
  spec.sizes = {1024, 4096};
  const auto points = enumerate(spec);
  ASSERT_EQ(8u, points.size());
  EXPECT_EQ("dell_xeon", points[0].machine.short_name);
  EXPECT_EQ(4, points[0].np);
  EXPECT_EQ(1024u, points[0].msg_bytes);
  EXPECT_EQ(4096u, points[1].msg_bytes);  // size is the innermost axis
  EXPECT_EQ(8, points[2].np);
  EXPECT_EQ("sx8", points[4].machine.short_name);
  for (const auto& pt : points) EXPECT_EQ("imb/Allreduce", pt.workload_name);
}

TEST(SweepSpec, SkipsCpuCountsAboveMachineMax) {
  SweepSpec spec;
  spec.workload = SweepWorkload::kImb;
  spec.imb_id = imb::BenchmarkId::kBcast;
  spec.machines = {mach::cray_x1_msp()};  // max_cpus = 16
  spec.np_set = {8, 16, 64, 512};
  spec.sizes = {1024};
  const auto points = enumerate(spec);
  ASSERT_EQ(2u, points.size());
  EXPECT_EQ(8, points[0].np);
  EXPECT_EQ(16, points[1].np);
}

TEST(SweepSpec, DefaultAxesComeFromSeriesTables) {
  SweepSpec spec;
  spec.workload = SweepWorkload::kImb;
  spec.imb_id = imb::BenchmarkId::kAllreduce;
  spec.msg_bytes = 1 << 20;
  spec.machines = {mach::cray_x1_msp()};
  const auto points = enumerate(spec);
  ASSERT_FALSE(points.empty());
  for (const auto& pt : points) {
    EXPECT_LE(pt.np, 16);
    EXPECT_EQ(std::size_t{1} << 20, pt.msg_bytes);
  }
}

TEST(ModelFingerprint, StableAndSensitive) {
  const auto a = mach::model_fingerprint(mach::nec_sx8());
  const auto b = mach::model_fingerprint(mach::nec_sx8());
  EXPECT_EQ(a, b);  // same config, same process-independent hash
  mach::MachineConfig tweaked = mach::nec_sx8();
  tweaked.nic.injection_Bps *= 2;
  EXPECT_NE(a, mach::model_fingerprint(tweaked));
  EXPECT_NE(a, mach::model_fingerprint(mach::dell_xeon()));
}

TEST(SweepPoint, CacheKeyIsContentAddressed) {
  SweepPoint pt;
  pt.workload = SweepWorkload::kImb;
  pt.workload_name = "imb/Allreduce";
  pt.imb_id = imb::BenchmarkId::kAllreduce;
  pt.machine = mach::nec_sx8();
  pt.np = 16;
  pt.msg_bytes = 1024;
  const std::string key = pt.cache_key();
  EXPECT_EQ(key, pt.cache_key());  // deterministic

  SweepPoint other = pt;
  other.np = 32;
  EXPECT_NE(key, other.cache_key());
  other = pt;
  other.msg_bytes = 2048;
  EXPECT_NE(key, other.cache_key());
  other = pt;
  other.config = "tuning=abc";
  EXPECT_NE(key, other.cache_key());
  other = pt;
  other.allreduce_alg = xmpi::AllreduceAlg::kRabenseifner;
  EXPECT_NE(key, other.cache_key());
  other = pt;
  other.machine.proc.flops_per_cycle *= 2;  // model change = new address
  EXPECT_NE(key, other.cache_key());
}

TEST(ResultCache, RoundTripsBitExactDoubles) {
  const std::string path = temp_path("sweep_cache_roundtrip.json");
  std::remove(path.c_str());
  const double v1 = 1.0 / 3.0;
  const double v2 = 6.02214076e-23;
  {
    ResultCache cache(path);
    SweepResult r;
    r.set("third", v1);
    r.set("tiny", v2);
    r.set_text("alg", "rabenseifner");
    cache.store("k1", r);
    cache.flush();
  }
  {
    ResultCache cache(path);
    EXPECT_EQ(1u, cache.size());
    SweepResult r;
    ASSERT_TRUE(cache.lookup("k1", r));
    EXPECT_EQ(v1, r.get("third"));  // bit-exact, not approximate
    EXPECT_EQ(v2, r.get("tiny"));
    ASSERT_NE(nullptr, r.text("alg"));
    EXPECT_EQ("rabenseifner", *r.text("alg"));
    EXPECT_FALSE(cache.lookup("absent", r));
  }
  std::remove(path.c_str());
}

TEST(ResultCache, TruncatedFileIsTreatedAsEmpty) {
  const std::string path = temp_path("sweep_cache_torn.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(nullptr, f);
    // A flush interrupted mid-write: valid prefix, no closing braces.
    std::fputs("{\n  \"schema\": \"hpcx-sweep-cache/1\",\n  \"entries\": [\n"
               "    {\"key\": \"k1\", \"values\": [[\"x\", 1",
               f);
    std::fclose(f);
  }
  ResultCache cache(path);
  EXPECT_EQ(0u, cache.size());
  SweepResult r;
  EXPECT_FALSE(cache.lookup("k1", r));  // torn entries are misses
  // The poisoned file is replaced wholesale by the next flush, even
  // without new stores.
  cache.flush();
  ResultCache reread(path);
  EXPECT_EQ(0u, reread.size());
  std::remove(path.c_str());
}

TEST(ResultCache, FlushLeavesNoTempFileBehind) {
  const std::string path = temp_path("sweep_cache_atomic.json");
  std::remove(path.c_str());
  {
    ResultCache cache(path);
    SweepResult r;
    r.set("v", 42.0);
    cache.store("k", r);
    cache.flush();
  }
  // The temp file used for the atomic rename must be gone...
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(getpid()));
  EXPECT_EQ(nullptr, std::fopen(tmp.c_str(), "r"));
  // ...and the final file must be complete, valid JSON.
  ResultCache reread(path);
  EXPECT_EQ(1u, reread.size());
  SweepResult r;
  ASSERT_TRUE(reread.lookup("k", r));
  EXPECT_EQ(42.0, r.get("v"));
  std::remove(path.c_str());
}

TEST(ResultCache, RejectsForeignSchema) {
  const std::string path = temp_path("sweep_cache_bad.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(nullptr, f);
    std::fputs("{\"schema\": \"not-a-sweep-cache/9\"}", f);
    std::fclose(f);
  }
  EXPECT_THROW(ResultCache{path}, ConfigError);
  std::remove(path.c_str());
}

TEST(SweepExecutor, CountsHitsAndMissesAcrossRuns) {
  ResultCache cache;  // memory-only
  SweepExecutor::Config config;
  config.cache = &cache;
  std::atomic<int> executions{0};
  auto counted = [&](double v) {
    return custom_point("test/hits", v, [&executions, v](trace::Recorder*) {
      executions.fetch_add(1);
      SweepResult out;
      out.set("v", v);
      return out;
    });
  };

  SweepExecutor executor(config);
  const SweepRun cold = executor.run({counted(1), counted(2)});
  EXPECT_EQ(2, executions.load());
  EXPECT_EQ(2u, cold.stats.points);
  EXPECT_EQ(2u, cold.stats.executed);
  EXPECT_EQ(0u, cold.stats.cache_hits);

  const SweepRun warm = executor.run({counted(1), counted(2), counted(3)});
  EXPECT_EQ(3, executions.load());  // only the new point ran
  EXPECT_EQ(2u, warm.stats.cache_hits);
  EXPECT_EQ(1u, warm.stats.executed);
  EXPECT_EQ(1.0, warm.results[0].get("v"));
  EXPECT_EQ(2.0, warm.results[1].get("v"));
  EXPECT_EQ(3.0, warm.results[2].get("v"));

  EXPECT_EQ(5u, executor.totals().points);
  EXPECT_EQ(3u, executor.totals().executed);
  EXPECT_EQ(2u, executor.totals().cache_hits);
  EXPECT_DOUBLE_EQ(2.0 / 5.0, executor.totals().hit_rate());
}

TEST(SweepExecutor, CacheHitsCarryNoRecorder) {
  ResultCache cache;
  SweepExecutor::Config config;
  config.cache = &cache;
  config.record_points = true;
  SweepExecutor executor(config);
  const SweepRun cold = executor.run({custom_point("test/rec", 1)});
  ASSERT_EQ(1u, cold.recorders.size());
  EXPECT_NE(nullptr, cold.recorders[0]);
  const SweepRun warm = executor.run({custom_point("test/rec", 1)});
  ASSERT_EQ(1u, warm.recorders.size());
  EXPECT_EQ(nullptr, warm.recorders[0]);  // nothing ran
}

/// The determinism contract: identical results at any job count. Runs
/// real simulated IMB points so the worlds exercise the DES engine from
/// several host threads at once (a race here is a tsan finding).
TEST(SweepExecutor, ParallelResultsIdenticalToSerial) {
  SweepSpec spec;
  spec.workload = SweepWorkload::kImb;
  spec.imb_id = imb::BenchmarkId::kAllreduce;
  spec.machines = {mach::dell_xeon(), mach::nec_sx8()};
  spec.np_set = {2, 4, 8};
  spec.sizes = {1024, 65536};

  SweepExecutor serial;
  const SweepRun a = serial.run(enumerate(spec));
  SweepExecutor::Config config;
  config.jobs = 4;
  SweepExecutor parallel(config);
  const SweepRun b = parallel.run(enumerate(spec));

  ASSERT_EQ(a.results.size(), b.results.size());
  ASSERT_EQ(12u, a.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].values.size(), b.results[i].values.size());
    for (std::size_t v = 0; v < a.results[i].values.size(); ++v) {
      EXPECT_EQ(a.results[i].values[v].first, b.results[i].values[v].first);
      // Bit-exact: virtual time is independent of host scheduling.
      EXPECT_EQ(a.results[i].values[v].second, b.results[i].values[v].second);
    }
  }
}

/// tsan stress: many tiny worlds, a shared cache, and per-point
/// recorders, all hammered from 8 workers.
TEST(SweepExecutor, StressSharedCacheUnderContention) {
  ResultCache cache;
  SweepExecutor::Config config;
  config.jobs = 8;
  config.cache = &cache;
  config.record_points = true;
  SweepExecutor executor(config);

  std::vector<SweepPoint> points;
  for (int i = 0; i < 32; ++i)
    points.push_back(custom_point("test/stress", 100 + i));
  const SweepRun run = executor.run(std::move(points));
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(100.0 + i, run.results[static_cast<std::size_t>(i)].get("v"));
  EXPECT_EQ(32u, run.stats.executed);

  // Second pass: all hits, still index-aligned.
  std::vector<SweepPoint> again;
  for (int i = 0; i < 32; ++i)
    again.push_back(custom_point("test/stress", 100 + i));
  const SweepRun warm = executor.run(std::move(again));
  EXPECT_EQ(32u, warm.stats.cache_hits);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(100.0 + i, warm.results[static_cast<std::size_t>(i)].get("v"));
}

TEST(SweepExecutor, LowestIndexExceptionWins) {
  SweepExecutor::Config config;
  config.jobs = 4;
  SweepExecutor executor(config);
  std::vector<SweepPoint> points;
  points.push_back(custom_point("test/ok", 1));
  points.push_back(custom_point("test/boom-a", 2, [](trace::Recorder*) {
    throw ConfigError("boom-a");
    return SweepResult{};
  }));
  points.push_back(custom_point("test/boom-b", 3, [](trace::Recorder*) {
    throw ConfigError("boom-b");
    return SweepResult{};
  }));
  try {
    executor.run(std::move(points));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_STREQ("boom-a", e.what());
  }
}

TEST(RecorderMerge, FoldsCountersAndLinks) {
  trace::Recorder a(2);
  a.rank(0).counters().note_send(100);
  a.rank(1).counters().note_recv(50);
  trace::LinkTrack l1;
  l1.name = "h0->sw";
  l1.messages = 3;
  l1.bytes = 300;
  l1.busy_s = 0.5;
  a.set_link_tracks({l1});

  trace::Recorder b(2);
  b.rank(0).counters().note_send(10);
  trace::LinkTrack l2 = l1;
  l2.messages = 7;
  l2.bytes = 700;
  trace::LinkTrack l3;
  l3.name = "sw->h1";
  l3.messages = 1;
  b.set_link_tracks({l2, l3});

  a.merge(b);
  EXPECT_EQ(2u, a.rank(0).counters().sends);
  EXPECT_EQ(110u, a.rank(0).counters().bytes_sent);
  EXPECT_EQ(1u, a.rank(1).counters().recvs);
  // Same-name links fold; new links append.
  ASSERT_EQ(2u, a.link_tracks().size());
  EXPECT_EQ(10u, a.link_tracks()[0].messages);
  EXPECT_EQ(1000u, a.link_tracks()[0].bytes);
  EXPECT_EQ("sw->h1", a.link_tracks()[1].name);
}

}  // namespace
}  // namespace hpcx::report
