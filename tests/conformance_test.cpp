// Randomized differential conformance suite: every collective, every
// selectable algorithm, on all three substrates (ThreadComm, SimComm,
// and the multi-process ProcComm), checked bit-identically against a
// serial reference.
//
// Each case draws its shape — element count (including 0, 1, odd sizes
// crossing the *_long_bytes thresholds), dtype, reduction operator,
// root, per-rank counts with holes — from a seeded deterministic RNG,
// and every rank regenerates any rank's input locally, so the expected
// output is computed serially (apply_rop folds in rank order) without
// touching the communication layer under test. Values are chosen so
// every reduction is exact in any association order (u64 wraparound,
// small-integer f64/i32, u8 bytes): a single flipped bit in any rank's
// buffer is a schedule bug, not roundoff.
//
// On mismatch the failure message carries the full case shape plus the
// master seed (override via HPCX_CONFORMANCE_SEED; case volume via
// HPCX_CONFORMANCE_CASES) so any failure replays exactly.
//
// Case volume: ranks 1-8 x HPCX_CONFORMANCE_CASES (default 80) cases
// per rank count x 3 substrates = 1920 randomized cases per collective,
// before multiplying by the per-collective algorithm sweep. On the
// procs substrate the per-rank failure slots live in the world's shared
// user area (test_util.hpp) — a child process's by-reference captures
// and EXPECTs would be invisible to the parent running gtest.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "test_util.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/reduce_ops.hpp"

namespace hpcx::xmpi {
namespace {

using test::Backend;
using test::run_world;

constexpr int kMaxRanks = 8;

std::uint64_t master_seed() {
  if (const char* env = std::getenv("HPCX_CONFORMANCE_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0x00C0FFEE0DDF00DULL;
}

int cases_per_np() {
  if (const char* env = std::getenv("HPCX_CONFORMANCE_CASES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 80;
}

/// One randomized collective invocation shape. `count` is the
/// collective's natural block count (bcast/reduce: whole buffer;
/// gather/scatter/allgather: per-rank block; alltoall: per-destination
/// block); the v-variants and reduce_scatter use `counts`/`matrix`.
struct Case {
  std::uint64_t seed = 0;
  std::size_t count = 0;
  DType dtype = DType::kByte;
  ROp op = ROp::kSum;
  int root = 0;
  std::vector<int> counts;            ///< per-rank counts (holes allowed)
  std::vector<std::vector<int>> matrix;  ///< alltoallv: [src][dst] counts
};

/// Counts crossing the *_long_bytes switch points in both directions
/// (e.g. 4999 f64 = ~40 KB, above every threshold; 17 f64 below all).
std::size_t pick_count(Rng& rng, bool small_blocks) {
  static constexpr std::size_t kBig[] = {0,   1,    2,    3,    5,    7,
                                         17,  97,   513,  1023, 2049, 4999};
  static constexpr std::size_t kSmall[] = {0, 1, 2, 3, 7, 17, 33, 97};
  if (small_blocks) {
    const std::size_t base = kSmall[rng.next_below(std::size(kSmall))];
    return rng.next_below(4) == 0 ? rng.next_below(98) : base;
  }
  const std::size_t base = kBig[rng.next_below(std::size(kBig))];
  return rng.next_below(4) == 0 ? rng.next_below(5000) | 1 : base;
}

DType pick_dtype(Rng& rng, bool reduction) {
  static constexpr DType kReduce[] = {DType::kByte, DType::kF64, DType::kU64,
                                      DType::kI32};
  static constexpr DType kMove[] = {DType::kByte, DType::kF64, DType::kU64,
                                    DType::kI32, DType::kC128};
  return reduction ? kReduce[rng.next_below(std::size(kReduce))]
                   : kMove[rng.next_below(std::size(kMove))];
}

ROp pick_op(Rng& rng, DType dtype) {
  // u64 wraparound makes kProd exact; everywhere else stick to the ops
  // whose result is independent of association order for our values.
  if (dtype == DType::kU64) {
    static constexpr ROp kAll[] = {ROp::kSum, ROp::kProd, ROp::kMax,
                                   ROp::kMin};
    return kAll[rng.next_below(std::size(kAll))];
  }
  static constexpr ROp kExact[] = {ROp::kSum, ROp::kMax, ROp::kMin};
  return kExact[rng.next_below(std::size(kExact))];
}

std::vector<Case> make_cases(std::uint64_t tag, int np, bool reduction,
                             bool small_blocks) {
  SplitMix64 seeder(master_seed() ^ (tag * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(np) << 56));
  std::vector<Case> cases(static_cast<std::size_t>(cases_per_np()));
  for (Case& cs : cases) {
    cs.seed = seeder.next();
    Rng rng(cs.seed);
    cs.count = pick_count(rng, small_blocks);
    cs.dtype = pick_dtype(rng, reduction);
    cs.op = pick_op(rng, cs.dtype);
    cs.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(np)));
    cs.counts.resize(static_cast<std::size_t>(np));
    for (int& c : cs.counts)
      c = rng.next_below(5) == 0 ? 0
                                 : static_cast<int>(rng.next_below(98));
    cs.matrix.assign(static_cast<std::size_t>(np),
                     std::vector<int>(static_cast<std::size_t>(np)));
    for (auto& row : cs.matrix)
      for (int& c : row)
        c = rng.next_below(5) == 0 ? 0
                                   : static_cast<int>(rng.next_below(34));
  }
  return cases;
}

/// Deterministic input of `rank` for this case — every rank can
/// regenerate every other rank's buffer, which is what makes the serial
/// reference independent of the communication layer.
std::vector<unsigned char> rank_input(const Case& cs, int rank,
                                      std::size_t count) {
  std::vector<unsigned char> buf(count * dtype_size(cs.dtype));
  Rng rng(cs.seed ^
          (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(rank + 1)));
  for (std::size_t i = 0; i < count; ++i) {
    unsigned char* p = buf.data() + i * dtype_size(cs.dtype);
    switch (cs.dtype) {
      case DType::kByte:
        *p = static_cast<unsigned char>(rng.next_below(256));
        break;
      case DType::kF64: {
        const double v = static_cast<double>(rng.next_below(17)) - 8.0;
        std::memcpy(p, &v, sizeof v);
        break;
      }
      case DType::kU64: {
        const std::uint64_t v = rng.next_u64();
        std::memcpy(p, &v, sizeof v);
        break;
      }
      case DType::kI32: {
        const std::int32_t v =
            static_cast<std::int32_t>(rng.next_below(19)) - 9;
        std::memcpy(p, &v, sizeof v);
        break;
      }
      case DType::kC128: {
        const double re = static_cast<double>(rng.next_below(17)) - 8.0;
        const double im = static_cast<double>(rng.next_below(17)) - 8.0;
        std::memcpy(p, &re, sizeof re);
        std::memcpy(p + sizeof re, &im, sizeof im);
        break;
      }
    }
  }
  return buf;
}

/// Serial reference reduction: fold every rank's input in rank order.
std::vector<unsigned char> reduced_input(const Case& cs, int np,
                                         std::size_t count) {
  std::vector<unsigned char> acc = rank_input(cs, 0, count);
  for (int r = 1; r < np; ++r) {
    const std::vector<unsigned char> in = rank_input(cs, r, count);
    if (count > 0) apply_rop(cs.op, cs.dtype, acc.data(), in.data(), count);
  }
  return acc;
}

/// Non-null pointer for zero-length buffers: data == nullptr means
/// *phantom* to xmpi, which is not what an empty real vector means.
unsigned char* ptr(std::vector<unsigned char>& v) {
  static unsigned char dummy;
  return v.empty() ? &dummy : v.data();
}

void check(Backend backend, int np, std::size_t case_idx, const Case& cs,
           const char* coll, const char* alg, int rank,
           const std::vector<unsigned char>& got,
           const std::vector<unsigned char>& want, std::string& fail) {
  if (!fail.empty() || got == want) return;  // keep the first failure
  std::size_t i = 0;
  while (i < got.size() && i < want.size() && got[i] == want[i]) ++i;
  std::ostringstream os;
  os << coll << " mismatch on " << test::to_string(backend) << ": np=" << np
     << " case=" << case_idx << " alg=" << alg
     << " dtype=" << to_string(cs.dtype) << " op=" << to_string(cs.op)
     << " count=" << cs.count << " root=" << cs.root << " rank=" << rank
     << " first-bad-byte=" << i << "/" << want.size()
     << "; repro: HPCX_CONFORMANCE_SEED=0x" << std::hex << master_seed()
     << " (case seed 0x" << cs.seed << ")";
  fail = os.str();
}

/// Run `body(comm, case, failure-slot)` for every case on every rank
/// count, then surface per-rank failures. Each rank writes only its own
/// slot and never skips a collective call (ranks must stay in lockstep
/// even after a recorded mismatch).
template <typename Body>
void sweep(Backend backend, std::uint64_t tag, bool reduction,
           bool small_blocks, const Body& body) {
  for (int np = 1; np <= kMaxRanks; ++np) {
    const std::vector<Case> cases =
        make_cases(tag, np, reduction, small_blocks);
    const std::vector<std::string> fails = test::run_world_collect(
        backend, np, [&](Comm& c, std::string& fail) {
          c.tuning().table = nullptr;  // conformance tests the raw dispatch
          for (std::size_t k = 0; k < cases.size(); ++k)
            body(c, cases[k], k, fail);
        });
    for (int r = 0; r < np; ++r)
      EXPECT_TRUE(fails[static_cast<std::size_t>(r)].empty())
          << fails[static_cast<std::size_t>(r)];
  }
}

class Conformance : public ::testing::TestWithParam<Backend> {};

TEST_P(Conformance, Bcast) {
  const Backend backend = GetParam();
  sweep(backend, 1, false, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          for (const BcastAlg alg :
               {BcastAlg::kAuto, BcastAlg::kBinomial, BcastAlg::kScatterRing,
                BcastAlg::kPipelinedRing, BcastAlg::kBinomialSegmented}) {
            c.tuning().bcast_alg = alg;
            c.tuning().bcast_segment_bytes = 512;  // force many segments
            std::vector<unsigned char> want =
                rank_input(cs, cs.root, cs.count);
            std::vector<unsigned char> buf =
                c.rank() == cs.root
                    ? want
                    : std::vector<unsigned char>(want.size(), 0xAA);
            c.bcast(MBuf{ptr(buf), cs.count, cs.dtype}, cs.root);
            check(backend, c.size(), k, cs, "bcast", to_string(alg),
                  c.rank(), buf, want, fail);
          }
        });
}

TEST_P(Conformance, Reduce) {
  const Backend backend = GetParam();
  sweep(backend, 2, true, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          std::vector<unsigned char> send =
              rank_input(cs, c.rank(), cs.count);
          std::vector<unsigned char> recv(send.size(), 0xAA);
          c.reduce(CBuf{ptr(send), cs.count, cs.dtype},
                   MBuf{ptr(recv), cs.count, cs.dtype}, cs.op, cs.root);
          if (c.rank() == cs.root)
            check(backend, c.size(), k, cs, "reduce", "auto", c.rank(), recv,
                  reduced_input(cs, c.size(), cs.count), fail);
        });
}

TEST_P(Conformance, Allreduce) {
  const Backend backend = GetParam();
  sweep(backend, 3, true, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          for (const AllreduceAlg alg :
               {AllreduceAlg::kAuto, AllreduceAlg::kRecursiveDoubling,
                AllreduceAlg::kRabenseifner}) {
            c.tuning().allreduce_alg = alg;
            std::vector<unsigned char> send =
                rank_input(cs, c.rank(), cs.count);
            std::vector<unsigned char> recv(send.size(), 0xAA);
            c.allreduce(CBuf{ptr(send), cs.count, cs.dtype},
                        MBuf{ptr(recv), cs.count, cs.dtype}, cs.op);
            check(backend, c.size(), k, cs, "allreduce", to_string(alg),
                  c.rank(), recv, reduced_input(cs, c.size(), cs.count),
                  fail);
          }
        });
}

TEST_P(Conformance, Gather) {
  const Backend backend = GetParam();
  sweep(backend, 4, false, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          const std::size_t n = static_cast<std::size_t>(c.size());
          std::vector<unsigned char> send =
              rank_input(cs, c.rank(), cs.count);
          std::vector<unsigned char> recv(send.size() * n, 0xAA);
          c.gather(CBuf{ptr(send), cs.count, cs.dtype},
                   MBuf{ptr(recv), cs.count * n, cs.dtype}, cs.root);
          if (c.rank() == cs.root) {
            std::vector<unsigned char> want;
            for (int r = 0; r < c.size(); ++r) {
              const auto in = rank_input(cs, r, cs.count);
              want.insert(want.end(), in.begin(), in.end());
            }
            check(backend, c.size(), k, cs, "gather", "binomial", c.rank(),
                  recv, want, fail);
          }
        });
}

TEST_P(Conformance, Scatter) {
  const Backend backend = GetParam();
  sweep(backend, 5, false, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          const std::size_t n = static_cast<std::size_t>(c.size());
          const std::size_t es = dtype_size(cs.dtype);
          std::vector<unsigned char> send =
              rank_input(cs, cs.root, cs.count * n);
          std::vector<unsigned char> recv(cs.count * es, 0xAA);
          c.scatter(CBuf{ptr(send), cs.count * n, cs.dtype},
                    MBuf{ptr(recv), cs.count, cs.dtype}, cs.root);
          const std::size_t off =
              static_cast<std::size_t>(c.rank()) * cs.count * es;
          const std::vector<unsigned char> want(
              send.begin() + static_cast<std::ptrdiff_t>(off),
              send.begin() + static_cast<std::ptrdiff_t>(off + cs.count * es));
          check(backend, c.size(), k, cs, "scatter", "binomial", c.rank(),
                recv, want, fail);
        });
}

TEST_P(Conformance, Allgather) {
  const Backend backend = GetParam();
  sweep(backend, 6, false, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          for (const AllgatherAlg alg :
               {AllgatherAlg::kAuto, AllgatherAlg::kBruck, AllgatherAlg::kRing,
                AllgatherAlg::kGatherBcast}) {
            c.tuning().allgather_alg = alg;
            const std::size_t n = static_cast<std::size_t>(c.size());
            std::vector<unsigned char> send =
                rank_input(cs, c.rank(), cs.count);
            std::vector<unsigned char> recv(send.size() * n, 0xAA);
            c.allgather(CBuf{ptr(send), cs.count, cs.dtype},
                        MBuf{ptr(recv), cs.count * n, cs.dtype});
            std::vector<unsigned char> want;
            for (int r = 0; r < c.size(); ++r) {
              const auto in = rank_input(cs, r, cs.count);
              want.insert(want.end(), in.begin(), in.end());
            }
            check(backend, c.size(), k, cs, "allgather", to_string(alg),
                  c.rank(), recv, want, fail);
          }
        });
}

TEST_P(Conformance, Allgatherv) {
  const Backend backend = GetParam();
  sweep(backend, 7, false, false,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          const std::size_t mine =
              static_cast<std::size_t>(cs.counts[
                  static_cast<std::size_t>(c.rank())]);
          std::size_t total = 0;
          for (const int cnt : cs.counts)
            total += static_cast<std::size_t>(cnt);
          std::vector<unsigned char> send = rank_input(cs, c.rank(), mine);
          std::vector<unsigned char> recv(total * dtype_size(cs.dtype), 0xAA);
          c.allgatherv(CBuf{ptr(send), mine, cs.dtype},
                       MBuf{ptr(recv), total, cs.dtype}, cs.counts);
          std::vector<unsigned char> want;
          for (int r = 0; r < c.size(); ++r) {
            const auto in = rank_input(
                cs, r,
                static_cast<std::size_t>(
                    cs.counts[static_cast<std::size_t>(r)]));
            want.insert(want.end(), in.begin(), in.end());
          }
          check(backend, c.size(), k, cs, "allgatherv", "ring", c.rank(),
                recv, want, fail);
        });
}

TEST_P(Conformance, Alltoall) {
  const Backend backend = GetParam();
  sweep(backend, 8, false, true,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          for (const AlltoallAlg alg : {AlltoallAlg::kAuto,
                                        AlltoallAlg::kPairwise,
                                        AlltoallAlg::kBruck}) {
            c.tuning().alltoall_alg = alg;
            const std::size_t n = static_cast<std::size_t>(c.size());
            const std::size_t es = dtype_size(cs.dtype);
            std::vector<unsigned char> send =
                rank_input(cs, c.rank(), cs.count * n);
            std::vector<unsigned char> recv(send.size(), 0xAA);
            c.alltoall(CBuf{ptr(send), cs.count * n, cs.dtype},
                       MBuf{ptr(recv), cs.count * n, cs.dtype});
            std::vector<unsigned char> want;
            for (int r = 0; r < c.size(); ++r) {
              const auto in = rank_input(cs, r, cs.count * n);
              const std::size_t off =
                  static_cast<std::size_t>(c.rank()) * cs.count * es;
              want.insert(want.end(),
                          in.begin() + static_cast<std::ptrdiff_t>(off),
                          in.begin() + static_cast<std::ptrdiff_t>(
                                           off + cs.count * es));
            }
            check(backend, c.size(), k, cs, "alltoall", to_string(alg),
                  c.rank(), recv, want, fail);
          }
        });
}

TEST_P(Conformance, Alltoallv) {
  const Backend backend = GetParam();
  sweep(backend, 9, false, true,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          const auto r = static_cast<std::size_t>(c.rank());
          const std::size_t es = dtype_size(cs.dtype);
          std::size_t send_total = 0, recv_total = 0;
          std::vector<int> recv_counts(static_cast<std::size_t>(c.size()));
          for (std::size_t j = 0; j < cs.matrix.size(); ++j) {
            send_total += static_cast<std::size_t>(cs.matrix[r][j]);
            recv_counts[j] = cs.matrix[j][r];
            recv_total += static_cast<std::size_t>(cs.matrix[j][r]);
          }
          std::vector<unsigned char> send =
              rank_input(cs, c.rank(), send_total);
          std::vector<unsigned char> recv(recv_total * es, 0xAA);
          c.alltoallv(CBuf{ptr(send), send_total, cs.dtype}, cs.matrix[r],
                      MBuf{ptr(recv), recv_total, cs.dtype}, recv_counts);
          std::vector<unsigned char> want;
          for (std::size_t j = 0; j < cs.matrix.size(); ++j) {
            std::size_t src_total = 0, src_off = 0;
            for (std::size_t d = 0; d < cs.matrix[j].size(); ++d) {
              if (d < r) src_off += static_cast<std::size_t>(cs.matrix[j][d]);
              src_total += static_cast<std::size_t>(cs.matrix[j][d]);
            }
            const auto in =
                rank_input(cs, static_cast<int>(j), src_total);
            want.insert(
                want.end(),
                in.begin() + static_cast<std::ptrdiff_t>(src_off * es),
                in.begin() + static_cast<std::ptrdiff_t>(
                                 (src_off +
                                  static_cast<std::size_t>(cs.matrix[j][r])) *
                                 es));
          }
          check(backend, c.size(), k, cs, "alltoallv", "pairwise", c.rank(),
                recv, want, fail);
        });
}

TEST_P(Conformance, ReduceScatter) {
  const Backend backend = GetParam();
  sweep(backend, 10, true, true,
        [&](Comm& c, const Case& cs, std::size_t k, std::string& fail) {
          for (const ReduceScatterAlg alg :
               {ReduceScatterAlg::kAuto, ReduceScatterAlg::kRecursiveHalving,
                ReduceScatterAlg::kRing, ReduceScatterAlg::kPairwise}) {
            c.tuning().reduce_scatter_alg = alg;
            const std::size_t es = dtype_size(cs.dtype);
            std::size_t total = 0, my_off = 0;
            for (int r = 0; r < c.size(); ++r) {
              if (r < c.rank())
                my_off += static_cast<std::size_t>(
                    cs.counts[static_cast<std::size_t>(r)]);
              total += static_cast<std::size_t>(
                  cs.counts[static_cast<std::size_t>(r)]);
            }
            const std::size_t mine = static_cast<std::size_t>(
                cs.counts[static_cast<std::size_t>(c.rank())]);
            std::vector<unsigned char> send = rank_input(cs, c.rank(), total);
            std::vector<unsigned char> recv(mine * es, 0xAA);
            c.reduce_scatter(CBuf{ptr(send), total, cs.dtype},
                             MBuf{ptr(recv), mine, cs.dtype}, cs.counts,
                             cs.op);
            const std::vector<unsigned char> acc =
                reduced_input(cs, c.size(), total);
            const std::vector<unsigned char> want(
                acc.begin() + static_cast<std::ptrdiff_t>(my_off * es),
                acc.begin() +
                    static_cast<std::ptrdiff_t>((my_off + mine) * es));
            check(backend, c.size(), k, cs, "reduce_scatter", to_string(alg),
                  c.rank(), recv, want, fail);
          }
        });
}

INSTANTIATE_TEST_SUITE_P(
    Substrates, Conformance,
    ::testing::Values(Backend::kThreads, Backend::kSim, Backend::kProcs),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return std::string(test::to_string(info.param));
    });

}  // namespace
}  // namespace hpcx::xmpi
