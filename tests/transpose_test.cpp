// dist_transpose (the communication core of PTRANS and the six-step
// FFT), plus hpl_grid factorisation.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>
#include <vector>

#include "hpcc/hpl_dist.hpp"
#include "hpcc/transpose.hpp"
#include "test_util.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::hpcc {
namespace {

std::string name_prc(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  const auto [np, r, c] = info.param;
  return "p" + std::to_string(np) + "r" + std::to_string(r) + "c" +
         std::to_string(c);
}

class TransposeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TransposeTest, RoundTripAndElementPlacement) {
  const auto [np, rows, cols] = GetParam();
  xmpi::run_on_threads(np, [&, rows = rows, cols = cols](xmpi::Comm& comm) {
    const std::size_t ur = static_cast<std::size_t>(rows);
    const std::size_t uc = static_cast<std::size_t>(cols);
    const std::size_t lr = ur / static_cast<std::size_t>(comm.size());
    const std::size_t row0 = lr * static_cast<std::size_t>(comm.rank());
    // in[r][c] = 1000*r + c (global indices).
    std::vector<double> in(lr * uc);
    for (std::size_t r = 0; r < lr; ++r)
      for (std::size_t c = 0; c < uc; ++c)
        in[r * uc + c] = 1000.0 * static_cast<double>(row0 + r) +
                         static_cast<double>(c);
    std::vector<double> out;
    dist_transpose(comm, in, out, ur, uc);
    // out holds rows of the transpose: out[c][r] = in[r][c].
    const std::size_t lc = uc / static_cast<std::size_t>(comm.size());
    const std::size_t col0 = lc * static_cast<std::size_t>(comm.rank());
    ASSERT_EQ(lc * ur, out.size());
    for (std::size_t c = 0; c < lc; ++c)
      for (std::size_t r = 0; r < ur; ++r)
        ASSERT_DOUBLE_EQ(1000.0 * static_cast<double>(r) +
                             static_cast<double>(col0 + c),
                         out[c * ur + r]);
    // Transposing back must reproduce the input.
    std::vector<double> back;
    dist_transpose(comm, out, back, uc, ur);
    ASSERT_EQ(in.size(), back.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      ASSERT_DOUBLE_EQ(in[i], back[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeTest,
    ::testing::Values(std::make_tuple(1, 4, 4), std::make_tuple(2, 4, 6),
                      std::make_tuple(2, 8, 2), std::make_tuple(3, 6, 9),
                      std::make_tuple(4, 8, 8), std::make_tuple(4, 16, 4)),
    name_prc);

TEST(Transpose, ComplexElementsSupported) {
  xmpi::run_on_threads(2, [](xmpi::Comm& comm) {
    using C = std::complex<double>;
    const std::size_t lr = 2, cols = 4, rows = 4;
    const std::size_t row0 = lr * static_cast<std::size_t>(comm.rank());
    std::vector<C> in(lr * cols);
    for (std::size_t r = 0; r < lr; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        in[r * cols + c] = C(static_cast<double>(row0 + r),
                             static_cast<double>(c));
    std::vector<C> out;
    dist_transpose(comm, in, out, rows, cols);
    const std::size_t lc = cols / 2;
    const std::size_t col0 = lc * static_cast<std::size_t>(comm.rank());
    for (std::size_t c = 0; c < lc; ++c)
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(C(static_cast<double>(r), static_cast<double>(col0 + c)),
                  out[c * rows + r]);
  });
}

TEST(Transpose, IndivisibleDimsThrow) {
  xmpi::run_on_threads(3, [](xmpi::Comm& comm) {
    std::vector<double> in, out;
    EXPECT_THROW(dist_transpose(comm, in, out, 4, 6), ConfigError);
  });
}

TEST(HplGrid, NearSquareFactorisation) {
  EXPECT_EQ(std::make_pair(1, 1), hpl_grid(1));
  EXPECT_EQ(std::make_pair(1, 2), hpl_grid(2));
  EXPECT_EQ(std::make_pair(2, 2), hpl_grid(4));
  EXPECT_EQ(std::make_pair(1, 7), hpl_grid(7));  // prime: 1 x p
  EXPECT_EQ(std::make_pair(8, 8), hpl_grid(64));
  EXPECT_EQ(std::make_pair(16, 32), hpl_grid(512));
  EXPECT_EQ(std::make_pair(24, 24), hpl_grid(576));
  EXPECT_EQ(std::make_pair(44, 46), hpl_grid(2024));
}

TEST(HplGrid, AlwaysMultipliesBack) {
  for (int np = 1; np <= 600; ++np) {
    const auto [pr, pc] = hpl_grid(np);
    EXPECT_EQ(np, pr * pc) << np;
    EXPECT_LE(pr, pc) << np;
  }
}

}  // namespace
}  // namespace hpcx::hpcc
