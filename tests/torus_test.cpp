// k-ary n-cube torus builder: structure, routing distances, bisection.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "topology/metrics.hpp"
#include "topology/routing.hpp"
#include "topology/torus.hpp"

namespace hpcx::topo {
namespace {

LinkParams link(double gbps) { return LinkParams{gbps * 1e9, 1e-7}; }

TEST(Torus, DimsForNearCubic) {
  EXPECT_EQ((std::vector<int>{1, 1, 1}), torus_dims_for(1, 3));
  EXPECT_EQ((std::vector<int>{2, 2, 2}), torus_dims_for(8, 3));
  EXPECT_EQ((std::vector<int>{3, 2, 2}), torus_dims_for(9, 3));
  EXPECT_EQ((std::vector<int>{4, 4, 4, 4}), torus_dims_for(256, 4));
  EXPECT_EQ((std::vector<int>{16}), torus_dims_for(16, 1));
}

TEST(Torus, RingCableCount) {
  // A k-ring has k cables for k > 2, one cable for k == 2.
  TorusConfig cfg;
  cfg.dims = {5};
  cfg.num_hosts = 5;
  cfg.host_link = link(1);
  cfg.torus_link = link(1);
  const Graph ring5 = build_torus(cfg);
  // 5 ring cables + 5 host cables, each duplex = 2 directed edges.
  EXPECT_EQ(2u * (5 + 5), ring5.num_edges());

  cfg.dims = {2};
  cfg.num_hosts = 2;
  const Graph ring2 = build_torus(cfg);
  EXPECT_EQ(2u * (1 + 2), ring2.num_edges());
}

TEST(Torus, RoutingUsesWrapAround) {
  // On an 8-ring, host 0 -> host 7 is one hop via the wrap cable, not 7.
  TorusConfig cfg;
  cfg.dims = {8};
  cfg.num_hosts = 8;
  cfg.host_link = link(1);
  cfg.torus_link = link(1);
  const Graph g = build_torus(cfg);
  const Routing routing(g);
  EXPECT_EQ(2 + 1, routing.distance(0, 7));
  EXPECT_EQ(2 + 4, routing.distance(0, 4));  // antipode
}

TEST(Torus, ThreeDimensionalDistances) {
  TorusConfig cfg;
  cfg.dims = {4, 4, 4};
  cfg.num_hosts = 64;
  cfg.host_link = link(10);
  cfg.torus_link = link(1);
  const Graph g = build_torus(cfg);
  const Routing routing(g);
  // Manhattan-with-wrap distance plus the two host hops.
  EXPECT_EQ(2 + 1, routing.distance(0, 1));
  EXPECT_EQ(2 + 2, routing.distance(0, 2));   // wrap or direct: 2 hops
  EXPECT_EQ(2 + 6, routing.distance(0, 42));  // coords (2,2,2): 2 hops/dim
}

TEST(Torus, BisectionOfRingIsTwoLinks) {
  TorusConfig cfg;
  cfg.dims = {8};
  cfg.num_hosts = 8;
  cfg.host_link = link(10);
  cfg.torus_link = link(1);
  // Cutting a ring severs exactly two cables (duplex: 2 GB/s across).
  EXPECT_NEAR(2e9, bisection_bandwidth(build_torus(cfg)), 1e-3);
}

TEST(Torus, RejectsBadConfig) {
  TorusConfig cfg;
  cfg.dims = {};
  cfg.num_hosts = 1;
  cfg.host_link = link(1);
  cfg.torus_link = link(1);
  EXPECT_THROW(build_torus(cfg), ConfigError);
  cfg.dims = {2, 2};
  cfg.num_hosts = 5;  // more hosts than routers
  EXPECT_THROW(build_torus(cfg), ConfigError);
}

}  // namespace
}  // namespace hpcx::topo
