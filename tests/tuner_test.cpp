// xmpi::tuner unit tests: algorithm-name round-trips (all five enums),
// tuning-table lookup semantics, JSON (de)serialisation, table diffing,
// and the end-to-end kAuto dispatch path — a table installed on a comm
// (or process-wide via the default table seeded by Comm's constructor)
// must actually steer the algorithm, observable in the per-algorithm
// trace dispatch counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "machine/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/tuner/autotune.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace hpcx::xmpi {
namespace {

using tuner::Cell;
using tuner::Collective;
using tuner::TuningTable;

// --- Round-trip property: parse(to_string(a)) == a for every
// enumerator of every algorithm enum, and unknown names must leave the
// output untouched. ---

template <typename Enum>
void expect_round_trip(std::initializer_list<Enum> values) {
  for (const Enum a : values) {
    Enum out{};
    ASSERT_TRUE(parse(to_string(a), out)) << to_string(a);
    EXPECT_EQ(a, out) << to_string(a);
  }
  // Unknown names: parse must return false and not write `out`.
  Rng rng(0x7e57ab1e);
  for (int i = 0; i < 100; ++i) {
    std::string junk;
    const std::size_t len = 1 + rng.next_below(12);
    for (std::size_t j = 0; j < len; ++j)
      junk += static_cast<char>('A' + rng.next_below(26));  // upper: never valid
    for (const Enum sentinel : values) {
      Enum out = sentinel;
      EXPECT_FALSE(parse(junk, out)) << junk;
      EXPECT_EQ(sentinel, out) << junk;
    }
  }
}

TEST(TunerEnums, BcastAlgRoundTrips) {
  expect_round_trip({BcastAlg::kAuto, BcastAlg::kBinomial,
                     BcastAlg::kScatterRing, BcastAlg::kPipelinedRing,
                     BcastAlg::kBinomialSegmented});
}

TEST(TunerEnums, AllreduceAlgRoundTrips) {
  expect_round_trip({AllreduceAlg::kAuto, AllreduceAlg::kRecursiveDoubling,
                     AllreduceAlg::kRabenseifner});
}

TEST(TunerEnums, AllgatherAlgRoundTrips) {
  expect_round_trip({AllgatherAlg::kAuto, AllgatherAlg::kBruck,
                     AllgatherAlg::kRing, AllgatherAlg::kGatherBcast});
}

TEST(TunerEnums, AlltoallAlgRoundTrips) {
  expect_round_trip({AlltoallAlg::kAuto, AlltoallAlg::kPairwise,
                     AlltoallAlg::kBruck});
}

TEST(TunerEnums, ReduceScatterAlgRoundTrips) {
  expect_round_trip(
      {ReduceScatterAlg::kAuto, ReduceScatterAlg::kRecursiveHalving,
       ReduceScatterAlg::kRing, ReduceScatterAlg::kPairwise});
}

TEST(TunerEnums, CollectiveRoundTrips) {
  for (const Collective c :
       {Collective::kBcast, Collective::kAllreduce, Collective::kAllgather,
        Collective::kAlltoall, Collective::kReduceScatter}) {
    Collective out{};
    ASSERT_TRUE(tuner::parse(tuner::to_string(c), out));
    EXPECT_EQ(c, out);
  }
  Collective out = Collective::kAlltoall;
  EXPECT_FALSE(tuner::parse("no-such-collective", out));
  EXPECT_EQ(Collective::kAlltoall, out);
}

// --- Table lookup semantics ---

Cell make_cell(Collective coll, int np, int size_class, std::string alg) {
  Cell c;
  c.coll = coll;
  c.np = np;
  c.size_class = size_class;
  c.alg = std::move(alg);
  c.t_s = 1e-6;
  return c;
}

TEST(TuningTable, LookupPicksNearestNpThenNearestClass) {
  TuningTable t;
  t.add(make_cell(Collective::kAllgather, 8, trace::size_class(1024), "ring"));
  t.add(make_cell(Collective::kAllgather, 8, trace::size_class(16), "bruck"));
  t.add(make_cell(Collective::kAllgather, 32, trace::size_class(1024),
                  "gather-bcast"));

  // Exact hits.
  EXPECT_EQ("ring", t.lookup(Collective::kAllgather, 8, 1024)->alg);
  EXPECT_EQ("bruck", t.lookup(Collective::kAllgather, 8, 16)->alg);
  // np 6 is nearer 8 than 32; np 100 nearer 32.
  EXPECT_EQ("ring", t.lookup(Collective::kAllgather, 6, 800)->alg);
  EXPECT_EQ("gather-bcast", t.lookup(Collective::kAllgather, 100, 2048)->alg);
  // Size interpolation at the tuned np: 64 B is nearer class(16) than
  // class(1024).
  EXPECT_EQ("bruck", t.lookup(Collective::kAllgather, 8, 64)->alg);
  // No cells for other collectives.
  EXPECT_EQ(nullptr, t.lookup(Collective::kBcast, 8, 1024));
}

TEST(TuningTable, TypedLookupSkipsAutoAndUnknownNames) {
  TuningTable t;
  t.add(make_cell(Collective::kBcast, 8, 5, "auto"));
  t.add(make_cell(Collective::kAllreduce, 8, 5, "not-an-algorithm"));
  t.add(make_cell(Collective::kAlltoall, 8, 5, "bruck"));
  EXPECT_FALSE(t.bcast(8, 16).has_value());
  EXPECT_FALSE(t.allreduce(8, 16).has_value());
  ASSERT_TRUE(t.alltoall(8, 16).has_value());
  EXPECT_EQ(AlltoallAlg::kBruck, *t.alltoall(8, 16));
}

// --- JSON round-trip ---

TEST(TuningTable, JsonRoundTrips) {
  TuningTable t;
  t.machine = "sx8";
  t.clock = "virtual";
  t.created = "2026-08-06T00:00:00Z";
  Cell c = make_cell(Collective::kReduceScatter, 16, 7, "recursive-halving");
  c.t_s = 12.5e-6;
  c.cov = 0.03;
  t.add(c);
  t.add(make_cell(Collective::kBcast, 16, 3, "binomial"));

  const TuningTable back = TuningTable::from_json(t.to_json());
  EXPECT_EQ(t.machine, back.machine);
  EXPECT_EQ(t.clock, back.clock);
  EXPECT_EQ(t.created, back.created);
  ASSERT_EQ(t.cells().size(), back.cells().size());
  const Cell* rs = back.lookup(Collective::kReduceScatter, 16, 64);
  ASSERT_NE(nullptr, rs);
  EXPECT_EQ("recursive-halving", rs->alg);
  EXPECT_DOUBLE_EQ(12.5e-6, rs->t_s);
  EXPECT_DOUBLE_EQ(0.03, rs->cov);
}

TEST(TuningTable, RejectsWrongSchema) {
  EXPECT_THROW(TuningTable::from_json(R"({"schema": "bogus/9"})"),
               ConfigError);
  EXPECT_THROW(TuningTable::from_json("not json at all"), ConfigError);
}

// --- Diffing ---

TEST(TuningDiff, FlagsRegressionsAndAlgChanges) {
  TuningTable base, cand;
  Cell a = make_cell(Collective::kAlltoall, 8, 5, "bruck");
  a.t_s = 10e-6;
  base.add(a);
  Cell b = a;
  b.alg = "pairwise";
  b.t_s = 20e-6;  // 2x slower: regression
  cand.add(b);

  Cell same = make_cell(Collective::kBcast, 8, 5, "binomial");
  same.t_s = 5e-6;
  base.add(same);
  cand.add(same);

  const tuner::TuningDiff diff = tuner::diff_tables(base, cand);
  EXPECT_TRUE(diff.regression());
  ASSERT_EQ(1u, diff.entries.size());
  EXPECT_TRUE(diff.entries[0].alg_changed);
  EXPECT_TRUE(diff.entries[0].regressed);
  EXPECT_NEAR(1.0, diff.entries[0].rel_delta, 1e-9);
  EXPECT_EQ(2u, diff.compared);

  // A table diffed against itself is clean.
  EXPECT_FALSE(tuner::diff_tables(base, base).regression());
  EXPECT_TRUE(tuner::diff_tables(base, base).entries.empty());
}

// --- End-to-end: a tuned choice must actually dispatch ---

std::uint64_t dispatched(const trace::Recorder& rec, trace::CollOp op,
                         trace::AlgId alg) {
  return rec.total()
      .alg_dispatch[static_cast<std::size_t>(op)][static_cast<std::size_t>(
          alg)];
}

TEST(TunerDispatch, TableOnCommSteersAuto) {
  // Force Bruck for a 2 KiB-block alltoall: the untuned kAuto default is
  // pairwise at every size (pinned by the determinism goldens), so a
  // Bruck dispatch proves the table was consulted.
  auto table = std::make_shared<TuningTable>();
  table->add(make_cell(Collective::kAlltoall, 8, trace::size_class(2048),
                       "bruck"));
  trace::Recorder recorder(8);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(mach::dell_xeon(), 8, [&](Comm& c) {
    c.tuning().table = table;
    c.alltoall(phantom_cbuf(8 * 2048), phantom_mbuf(8 * 2048));
  }, options);
  EXPECT_EQ(8u, dispatched(recorder, trace::CollOp::kAlltoall,
                           trace::AlgId::kBruck));
  EXPECT_EQ(0u, dispatched(recorder, trace::CollOp::kAlltoall,
                           trace::AlgId::kPairwise));
}

TEST(TunerDispatch, DefaultTableReachesEveryCommThroughCtor) {
  auto table = std::make_shared<TuningTable>();
  table->add(make_cell(Collective::kAllgather, 8, trace::size_class(64),
                       "gather-bcast"));
  tuner::set_default_table(table);
  trace::Recorder recorder(8);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(mach::dell_xeon(), 8, [&](Comm& c) {
    // No explicit table install: Comm's constructor seeded it.
    c.allgather(phantom_cbuf(64), phantom_mbuf(8 * 64));
  }, options);
  tuner::set_default_table(nullptr);
  EXPECT_EQ(8u, dispatched(recorder, trace::CollOp::kAllgather,
                           trace::AlgId::kGatherBcast));
}

TEST(TunerDispatch, ExplicitEnumBeatsTable) {
  auto table = std::make_shared<TuningTable>();
  table->add(make_cell(Collective::kAllgather, 8, trace::size_class(64),
                       "gather-bcast"));
  trace::Recorder recorder(8);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  xmpi::run_on_machine(mach::dell_xeon(), 8, [&](Comm& c) {
    c.tuning().table = table;
    c.tuning().allgather_alg = AllgatherAlg::kRing;
    c.allgather(phantom_cbuf(64), phantom_mbuf(8 * 64));
  }, options);
  EXPECT_EQ(8u, dispatched(recorder, trace::CollOp::kAllgather,
                           trace::AlgId::kRing));
  EXPECT_EQ(0u, dispatched(recorder, trace::CollOp::kAllgather,
                           trace::AlgId::kGatherBcast));
}

// --- Autotuner search ---

TEST(Autotune, ProducesCellsForEveryRequestedCollective) {
  tuner::TuneOptions opts;
  opts.min_bytes = 8;
  opts.max_bytes = 1024;
  const TuningTable t = tuner::autotune(mach::nec_sx8(), 8, opts);
  EXPECT_EQ("sx8", t.machine);
  EXPECT_EQ("virtual", t.clock);
  for (const Collective coll :
       {Collective::kBcast, Collective::kAllreduce, Collective::kAllgather,
        Collective::kAlltoall, Collective::kReduceScatter}) {
    const Cell* cell = t.lookup(coll, 8, 64);
    ASSERT_NE(nullptr, cell) << tuner::to_string(coll);
    EXPECT_EQ(8, cell->np);
    EXPECT_GT(cell->t_s, 0.0) << tuner::to_string(coll);
    EXPECT_NE("auto", cell->alg);
  }
  // Deterministic substrate: a second search lands on identical winners.
  const TuningTable again = tuner::autotune(mach::nec_sx8(), 8, opts);
  ASSERT_EQ(t.cells().size(), again.cells().size());
  for (std::size_t i = 0; i < t.cells().size(); ++i) {
    EXPECT_EQ(t.cells()[i].alg, again.cells()[i].alg);
    EXPECT_DOUBLE_EQ(t.cells()[i].t_s, again.cells()[i].t_s);
  }
}

}  // namespace
}  // namespace hpcx::xmpi
