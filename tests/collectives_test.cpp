// Correctness of every collective algorithm, on both backends, across
// communicator sizes (power-of-two and not) and message sizes straddling
// every short/long algorithm switch point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "test_util.hpp"
#include "xmpi/comm.hpp"

namespace hpcx {
namespace {

using test::Backend;
using test::run_world;
using test::test_value;
using xmpi::cbuf;
using xmpi::Comm;
using xmpi::mbuf;
using xmpi::ROp;

// (backend, nranks, element count). Counts are chosen to hit both the
// short- and long-message algorithm of each collective (thresholds are
// 4-32 KiB; 8 B and 80 KB-1.6 MB land on opposite sides).
using Param = std::tuple<Backend, int, std::size_t>;

class CollectivesTest : public ::testing::TestWithParam<Param> {
 protected:
  Backend backend() const { return std::get<0>(GetParam()); }
  int nranks() const { return std::get<1>(GetParam()); }
  std::size_t count() const { return std::get<2>(GetParam()); }
};

TEST_P(CollectivesTest, AllreduceSum) {
  const int n = nranks();
  const std::size_t cnt = count();
  run_world(backend(), n, [cnt, n](Comm& c) {
    std::vector<double> send(cnt), recv(cnt, -1.0);
    for (std::size_t i = 0; i < cnt; ++i)
      send[i] = test_value(c.rank(), i);
    c.allreduce(cbuf(std::span<const double>(send)),
                mbuf(std::span<double>(recv)), ROp::kSum);
    for (std::size_t i = 0; i < cnt; ++i) {
      double expected = 0;
      for (int r = 0; r < n; ++r) expected += test_value(r, i);
      ASSERT_DOUBLE_EQ(expected, recv[i]) << "i=" << i << " rank=" << c.rank();
    }
  });
}

TEST_P(CollectivesTest, AllreduceMax) {
  const int n = nranks();
  const std::size_t cnt = count();
  run_world(backend(), n, [cnt, n](Comm& c) {
    std::vector<double> send(cnt), recv(cnt);
    for (std::size_t i = 0; i < cnt; ++i)
      send[i] = test_value((c.rank() * 7 + static_cast<int>(i)) % n, i);
    c.allreduce(cbuf(std::span<const double>(send)),
                mbuf(std::span<double>(recv)), ROp::kMax);
    for (std::size_t i = 0; i < cnt; ++i) {
      double expected = 0;
      for (int r = 0; r < n; ++r)
        expected = std::max(expected,
                            test_value((r * 7 + static_cast<int>(i)) % n, i));
      ASSERT_DOUBLE_EQ(expected, recv[i]);
    }
  });
}

TEST_P(CollectivesTest, BcastFromEveryInterestingRoot) {
  const int n = nranks();
  const std::size_t cnt = count();
  for (const int root : {0, n - 1, n / 2}) {
    run_world(backend(), n, [cnt, root](Comm& c) {
      std::vector<double> buf(cnt);
      if (c.rank() == root)
        for (std::size_t i = 0; i < cnt; ++i) buf[i] = test_value(root, i);
      c.bcast(mbuf(std::span<double>(buf)), root);
      for (std::size_t i = 0; i < cnt; ++i)
        ASSERT_DOUBLE_EQ(test_value(root, i), buf[i])
            << "rank=" << c.rank() << " root=" << root << " i=" << i;
    });
  }
}

TEST_P(CollectivesTest, ReduceSumAtRoot) {
  const int n = nranks();
  const std::size_t cnt = count();
  for (const int root : {0, n - 1}) {
    run_world(backend(), n, [cnt, n, root](Comm& c) {
      std::vector<double> send(cnt), recv(cnt, -1.0);
      for (std::size_t i = 0; i < cnt; ++i)
        send[i] = test_value(c.rank(), i);
      c.reduce(cbuf(std::span<const double>(send)),
               mbuf(std::span<double>(recv)), ROp::kSum, root);
      if (c.rank() == root) {
        for (std::size_t i = 0; i < cnt; ++i) {
          double expected = 0;
          for (int r = 0; r < n; ++r) expected += test_value(r, i);
          ASSERT_DOUBLE_EQ(expected, recv[i]);
        }
      }
    });
  }
}

TEST_P(CollectivesTest, GatherToRoot) {
  const int n = nranks();
  const std::size_t cnt = count();
  for (const int root : {0, n / 2}) {
    run_world(backend(), n, [cnt, n, root](Comm& c) {
      std::vector<double> send(cnt);
      for (std::size_t i = 0; i < cnt; ++i)
        send[i] = test_value(c.rank(), i);
      std::vector<double> recv;
      if (c.rank() == root) recv.assign(cnt * static_cast<std::size_t>(n), -1);
      c.gather(cbuf(std::span<const double>(send)),
               c.rank() == root
                   ? mbuf(std::span<double>(recv))
                   : xmpi::MBuf{nullptr, cnt * static_cast<std::size_t>(n),
                                xmpi::DType::kF64},
               root);
      if (c.rank() == root) {
        for (int r = 0; r < n; ++r)
          for (std::size_t i = 0; i < cnt; ++i)
            ASSERT_DOUBLE_EQ(test_value(r, i),
                             recv[static_cast<std::size_t>(r) * cnt + i])
                << "r=" << r << " i=" << i;
      }
    });
  }
}

TEST_P(CollectivesTest, ScatterFromRoot) {
  const int n = nranks();
  const std::size_t cnt = count();
  for (const int root : {0, n - 1}) {
    run_world(backend(), n, [cnt, n, root](Comm& c) {
      std::vector<double> send;
      if (c.rank() == root) {
        send.assign(cnt * static_cast<std::size_t>(n), 0);
        for (int r = 0; r < n; ++r)
          for (std::size_t i = 0; i < cnt; ++i)
            send[static_cast<std::size_t>(r) * cnt + i] = test_value(r, i);
      }
      std::vector<double> recv(cnt, -1.0);
      c.scatter(c.rank() == root
                    ? cbuf(std::span<const double>(send))
                    : xmpi::CBuf{nullptr, cnt * static_cast<std::size_t>(n),
                                 xmpi::DType::kF64},
                mbuf(std::span<double>(recv)), root);
      for (std::size_t i = 0; i < cnt; ++i)
        ASSERT_DOUBLE_EQ(test_value(c.rank(), i), recv[i]);
    });
  }
}

TEST_P(CollectivesTest, Allgather) {
  const int n = nranks();
  const std::size_t cnt = count();
  run_world(backend(), n, [cnt, n](Comm& c) {
    std::vector<double> send(cnt);
    for (std::size_t i = 0; i < cnt; ++i) send[i] = test_value(c.rank(), i);
    std::vector<double> recv(cnt * static_cast<std::size_t>(n), -1.0);
    c.allgather(cbuf(std::span<const double>(send)),
                mbuf(std::span<double>(recv)));
    for (int r = 0; r < n; ++r)
      for (std::size_t i = 0; i < cnt; ++i)
        ASSERT_DOUBLE_EQ(test_value(r, i),
                         recv[static_cast<std::size_t>(r) * cnt + i])
            << "rank=" << c.rank() << " r=" << r << " i=" << i;
  });
}

TEST_P(CollectivesTest, AllgathervUnequalCounts) {
  const int n = nranks();
  const std::size_t base = count();
  run_world(backend(), n, [base, n](Comm& c) {
    // Rank r contributes base + r elements (rank n-1 may contribute 0 if
    // base == 0 — exercised by the zero-size parameter).
    std::vector<int> counts(static_cast<std::size_t>(n));
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<int>(base) + (r % 3);
      total += static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    }
    const std::size_t mine =
        static_cast<std::size_t>(counts[static_cast<std::size_t>(c.rank())]);
    std::vector<double> send(mine);
    for (std::size_t i = 0; i < mine; ++i) send[i] = test_value(c.rank(), i);
    std::vector<double> recv(total, -1.0);
    c.allgatherv(cbuf(std::span<const double>(send)),
                 mbuf(std::span<double>(recv)), counts);
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      for (int i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
        ASSERT_DOUBLE_EQ(test_value(r, static_cast<std::size_t>(i)),
                         recv[off + static_cast<std::size_t>(i)]);
      off += static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    }
  });
}

TEST_P(CollectivesTest, Alltoall) {
  const int n = nranks();
  const std::size_t cnt = count();
  run_world(backend(), n, [cnt, n](Comm& c) {
    const std::size_t total = cnt * static_cast<std::size_t>(n);
    std::vector<double> send(total), recv(total, -1.0);
    for (int j = 0; j < n; ++j)
      for (std::size_t i = 0; i < cnt; ++i)
        send[static_cast<std::size_t>(j) * cnt + i] =
            test_value(c.rank() * n + j, i);
    c.alltoall(cbuf(std::span<const double>(send)),
               mbuf(std::span<double>(recv)));
    for (int r = 0; r < n; ++r)
      for (std::size_t i = 0; i < cnt; ++i)
        ASSERT_DOUBLE_EQ(test_value(r * n + c.rank(), i),
                         recv[static_cast<std::size_t>(r) * cnt + i])
            << "rank=" << c.rank() << " from=" << r;
  });
}

TEST_P(CollectivesTest, AlltoallvUnequalCounts) {
  const int n = nranks();
  const std::size_t base = count();
  run_world(backend(), n, [base, n](Comm& c) {
    // Rank r sends base + (r+j)%2 elements to rank j.
    auto count_for = [&](int from, int to) {
      return static_cast<int>(base) + (from + to) % 2;
    };
    std::vector<int> scnt(static_cast<std::size_t>(n)),
        rcnt(static_cast<std::size_t>(n));
    std::size_t stot = 0, rtot = 0;
    for (int j = 0; j < n; ++j) {
      scnt[static_cast<std::size_t>(j)] = count_for(c.rank(), j);
      rcnt[static_cast<std::size_t>(j)] = count_for(j, c.rank());
      stot += static_cast<std::size_t>(scnt[static_cast<std::size_t>(j)]);
      rtot += static_cast<std::size_t>(rcnt[static_cast<std::size_t>(j)]);
    }
    std::vector<double> send(stot), recv(rtot, -1.0);
    std::size_t off = 0;
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < scnt[static_cast<std::size_t>(j)]; ++i)
        send[off++] = test_value(c.rank() * n + j, static_cast<std::size_t>(i));
    c.alltoallv(cbuf(std::span<const double>(send)), scnt,
                mbuf(std::span<double>(recv)), rcnt);
    off = 0;
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < rcnt[static_cast<std::size_t>(r)]; ++i) {
        ASSERT_DOUBLE_EQ(test_value(r * n + c.rank(),
                                    static_cast<std::size_t>(i)),
                         recv[off]);
        ++off;
      }
  });
}

TEST_P(CollectivesTest, ReduceScatterEqualCounts) {
  const int n = nranks();
  const std::size_t cnt = count();
  run_world(backend(), n, [cnt, n](Comm& c) {
    const std::size_t total = cnt * static_cast<std::size_t>(n);
    std::vector<double> send(total);
    for (std::size_t i = 0; i < total; ++i) send[i] = test_value(c.rank(), i);
    std::vector<int> counts(static_cast<std::size_t>(n),
                            static_cast<int>(cnt));
    std::vector<double> recv(cnt, -1.0);
    c.reduce_scatter(cbuf(std::span<const double>(send)),
                     mbuf(std::span<double>(recv)), counts, ROp::kSum);
    const std::size_t my_off = static_cast<std::size_t>(c.rank()) * cnt;
    for (std::size_t i = 0; i < cnt; ++i) {
      double expected = 0;
      for (int r = 0; r < n; ++r) expected += test_value(r, my_off + i);
      ASSERT_DOUBLE_EQ(expected, recv[i]) << "rank=" << c.rank() << " i=" << i;
    }
  });
}

TEST_P(CollectivesTest, BarrierCompletes) {
  run_world(backend(), nranks(), [](Comm& c) {
    for (int iter = 0; iter < 3; ++iter) c.barrier();
  });
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(test::to_string(std::get<0>(info.param))) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_c" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectivesTest,
    ::testing::Combine(::testing::Values(Backend::kThreads, Backend::kSim),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16),
                       ::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{1000},
                                         std::size_t{10000})),
    param_name);

// Zero-size contributions must be legal everywhere.
TEST(CollectivesEdge, ZeroCountAllreduce) {
  run_world(Backend::kThreads, 4, [](Comm& c) {
    c.allreduce(xmpi::CBuf{nullptr, 0, xmpi::DType::kF64},
                xmpi::MBuf{nullptr, 0, xmpi::DType::kF64}, ROp::kSum);
  });
}

TEST(CollectivesEdge, SelfCommunicatorEverything) {
  run_world(Backend::kSim, 1, [](Comm& c) {
    std::vector<double> a{1, 2, 3}, b(3, 0.0);
    c.allreduce(cbuf(std::span<const double>(a)), mbuf(std::span<double>(b)),
                ROp::kSum);
    EXPECT_EQ(b, a);
    c.barrier();
    c.bcast(mbuf(std::span<double>(b)), 0);
    std::vector<double> r(3, 0.0);
    c.alltoall(cbuf(std::span<const double>(a)), mbuf(std::span<double>(r)));
    EXPECT_EQ(r, a);
  });
}

// Mismatched counts arrays must be rejected up front with a CommError
// that names the offending rank, not corrupt memory or hang.
TEST(CollectivesValidation, AllgathervRejectsBadCounts) {
  run_world(Backend::kThreads, 3, [](Comm& c) {
    // counts sums to 11, recv holds 12; every rank's own contribution is
    // consistent, so the sum check is what fires everywhere.
    const std::vector<int> short_counts{4, 4, 3};
    std::vector<double> send(
        static_cast<std::size_t>(short_counts[c.rank()]), 1.0);
    std::vector<double> recv(12);
    try {
      c.allgatherv(cbuf(std::span<const double>(send)),
                   mbuf(std::span<double>(recv)), short_counts);
      FAIL() << "allgatherv accepted a counts sum != recv.count";
    } catch (const CommError& e) {
      EXPECT_NE(std::string(e.what()).find("counts sum to 11"),
                std::string::npos)
          << e.what();
    }
    // Wrong number of entries.
    const std::vector<int> two_counts{4, 4};
    EXPECT_THROW(c.allgatherv(cbuf(std::span<const double>(send)),
                              mbuf(std::span<double>(recv)), two_counts),
                 CommError);
    // Negative contribution, naming rank 1.
    const std::vector<int> negative{4, -1, 4};
    try {
      c.allgatherv(cbuf(std::span<const double>(send)),
                   mbuf(std::span<double>(recv)), negative);
      FAIL() << "allgatherv accepted a negative count";
    } catch (const CommError& e) {
      EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
          << e.what();
    }
  });
}

TEST(CollectivesValidation, AlltoallvRejectsMismatchedTotals) {
  run_world(Backend::kThreads, 2, [](Comm& c) {
    std::vector<double> send(8, 1.0);
    std::vector<double> recv(8);
    const std::vector<int> good{4, 4};
    const std::vector<int> bad{4, 5};  // sums to 9, buffers hold 8
    EXPECT_THROW(c.alltoallv(cbuf(std::span<const double>(send)), bad,
                             mbuf(std::span<double>(recv)), good),
                 CommError);
    EXPECT_THROW(c.alltoallv(cbuf(std::span<const double>(send)), good,
                             mbuf(std::span<double>(recv)), bad),
                 CommError);
    const std::vector<int> wrong_len{8};
    EXPECT_THROW(c.alltoallv(cbuf(std::span<const double>(send)), wrong_len,
                             mbuf(std::span<double>(recv)), good),
                 CommError);
    // The valid call still works after the rejected ones.
    c.alltoallv(cbuf(std::span<const double>(send)), good,
                mbuf(std::span<double>(recv)), good);
  });
}

TEST(CollectivesValidation, ReduceScatterRejectsBadCounts) {
  run_world(Backend::kThreads, 2, [](Comm& c) {
    std::vector<double> send(8, 1.0);
    std::vector<double> recv(4);
    const std::vector<int> bad_sum{4, 5};  // sums to 9, send holds 8
    EXPECT_THROW(c.reduce_scatter(cbuf(std::span<const double>(send)),
                                  mbuf(std::span<double>(recv)), bad_sum,
                                  ROp::kSum),
                 CommError);
    const std::vector<int> bad_recv{3, 5};  // recv holds 4, counts[0] = 3
    EXPECT_THROW(c.reduce_scatter(cbuf(std::span<const double>(send)),
                                  mbuf(std::span<double>(recv)), bad_recv,
                                  ROp::kSum),
                 CommError);
  });
}

// Large communicator smoke test on the simulator (beyond what the thread
// backend can comfortably host): 64 ranks, real payloads.
TEST(CollectivesScale, Sim64RankAllreduce) {
  xmpi::run_on_machine(mach::nec_sx8(), 64, [](Comm& c) {
    std::vector<double> send{static_cast<double>(c.rank())};
    std::vector<double> recv{-1.0};
    c.allreduce(cbuf(std::span<const double>(send)),
                mbuf(std::span<double>(recv)), ROp::kSum);
    const double expected = 64.0 * 63.0 / 2.0;
    ASSERT_DOUBLE_EQ(expected, recv[0]);
  });
}

}  // namespace
}  // namespace hpcx
