// Observability tests: metrics-registry semantics (shard-fold
// exactness under concurrent writers, histogram bucket boundaries,
// registration idempotence), the critical-path profiler's tiling and
// path-length == makespan contract, the per-LP engine statistics the
// parallel backend reports, and — most importantly — that leaving
// --critical-path off keeps the makespans of all five paper machines
// bit-identical to the default path (the profiler must be a pure
// observer).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/table.hpp"
#include "machine/registry.hpp"
#include "obs/critical_path.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, RegistrationIsIdempotentAndKindChecked) {
  obs::Registry reg;
  const obs::MetricId a = reg.counter("requests_total", "help");
  const obs::MetricId b = reg.counter("requests_total");
  EXPECT_EQ(a, b);
  EXPECT_THROW(reg.gauge("requests_total"), Error);
  EXPECT_THROW(reg.histogram("requests_total"), Error);
  EXPECT_EQ(reg.num_metrics(), 1u);
}

TEST(Registry, CountersGaugesHistogramsFold) {
  obs::Registry reg;
  const obs::MetricId c = reg.counter("c");
  const obs::MetricId g = reg.gauge("g");
  const obs::MetricId h = reg.histogram("h");
  reg.add(c, 3);
  reg.add(c);
  reg.set(g, 1.5);
  reg.gauge_add(g, -0.5);
  reg.observe(h, 0);
  reg.observe(h, 7);
  reg.observe(h, 8);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.find("c")->count, 4u);
  EXPECT_DOUBLE_EQ(snap.find("g")->gauge, 1.0);
  const obs::MetricValue* hist = snap.find("h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 15u);
  EXPECT_EQ(hist->buckets[obs::hist_bucket(0)], 1u);
  EXPECT_EQ(hist->buckets[obs::hist_bucket(7)], 1u);
  EXPECT_EQ(hist->buckets[obs::hist_bucket(8)], 1u);
}

// Shard-fold exactness: concurrent writers on their own shards must
// fold to the exact total once they have joined. Labelled tsan via the
// test binary: this is the registry's lock-free hot path.
TEST(Registry, ConcurrentIncrementsFoldExactly) {
  obs::Registry reg;
  const obs::MetricId c = reg.counter("hits_total");
  const obs::MetricId h = reg.histogram("sizes");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&reg, c, h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, static_cast<std::uint64_t>(t));
      }
    });
  for (std::thread& t : pool) t.join();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("hits_total")->count, kThreads * kPerThread);
  const obs::MetricValue* hist = snap.find("sizes");
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    expected_sum += static_cast<std::uint64_t>(t) * kPerThread;
  EXPECT_EQ(hist->sum, expected_sum);
}

// Late registration must not lose earlier counts: the owning thread's
// shard is retired (kept for folding) when the slot space outgrows it.
TEST(Registry, ShardGrowthKeepsCounts) {
  obs::Registry reg;
  const obs::MetricId first = reg.counter("m0");
  reg.add(first, 41);
  // Outgrow the initial 256-slot shard with histogram registrations
  // (66 slots each), then bump the first counter from the same thread.
  std::vector<obs::MetricId> hists;
  for (int i = 0; i < 8; ++i)
    hists.push_back(reg.histogram("h" + std::to_string(i)));
  reg.observe(hists.back(), 1024);
  reg.add(first, 1);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("m0")->count, 42u);
  EXPECT_EQ(snap.find("h7")->count, 1u);
  EXPECT_EQ(snap.find("h7")->sum, 1024u);
}

// Bucket boundaries: class 0 is the value 0; class k >= 1 covers
// [2^(k-1), 2^k) — so each power of two starts a new class.
TEST(Registry, HistogramBucketBoundariesAtPowersOfTwo) {
  EXPECT_EQ(obs::hist_bucket(0), 0u);
  EXPECT_EQ(obs::hist_bucket(1), 1u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    EXPECT_EQ(obs::hist_bucket(lo), k) << "lower edge of class " << k;
    EXPECT_EQ(obs::hist_bucket(lo + (lo >> 1)), k) << "inside class " << k;
    const std::uint64_t hi = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(obs::hist_bucket(hi), k) << "upper edge of class " << k;
    if (k < 63) {
      EXPECT_EQ(obs::hist_bucket(std::uint64_t{1} << k), k + 1)
          << "next power of two leaves class " << k;
    }
  }
  EXPECT_EQ(obs::hist_bucket(~std::uint64_t{0}), obs::kHistBuckets - 1);
  EXPECT_EQ(obs::hist_bucket_label(0), "0");
  EXPECT_EQ(obs::hist_bucket_label(1), "1");
  EXPECT_EQ(obs::hist_bucket_label(3), "4");
  EXPECT_EQ(obs::hist_bucket_label(obs::kHistBuckets - 1), ">=2^63");
}

TEST(Registry, ScrapeFormatsCarrySchema) {
  obs::Registry reg;
  reg.add(reg.counter("a_total"), 2);
  reg.set(reg.gauge("level"), 0.25);
  const obs::Snapshot snap = reg.snapshot();
  std::ostringstream text;
  snap.write_text(text);
  EXPECT_NE(text.str().find("# hpcx-obs/1"), std::string::npos);
  EXPECT_NE(text.str().find("counter a_total 2"), std::string::npos);
  std::ostringstream json;
  snap.write_json(json, "\"tool\":\"test\"");
  EXPECT_NE(json.str().find("\"schema\":\"hpcx-obs/1\""), std::string::npos);
  EXPECT_NE(json.str().find("\"tool\":\"test\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Critical path

// The engine-determinism workload (32 ranks: allreduce -> barrier ->
// alltoall), small enough to run on every paper machine twice.
xmpi::SimRunResult run_workload(const mach::MachineConfig& machine,
                                xmpi::SimRunOptions options = {}) {
  constexpr int kRanks = 32;
  return xmpi::run_on_machine(
      machine, kRanks,
      [](xmpi::Comm& c) {
        c.allreduce(xmpi::phantom_cbuf(16384, xmpi::DType::kF64),
                    xmpi::phantom_mbuf(16384, xmpi::DType::kF64),
                    xmpi::ROp::kSum);
        c.barrier();
        c.alltoall(xmpi::phantom_cbuf(32 * 256, xmpi::DType::kByte),
                   xmpi::phantom_mbuf(32 * 256, xmpi::DType::kByte));
      },
      options);
}

// The profiler must be a pure observer: with --critical-path OFF the
// makespan is the engine-determinism golden; with it ON the schedule is
// identical, so the makespan must not move by a single ulp on any of
// the five paper machines.
TEST(CriticalPath, OffPathMakespansBitIdenticalOnAllPaperMachines) {
  const mach::MachineConfig machines[] = {
      mach::altix_bx2(), mach::cray_x1_msp(), mach::cray_opteron(),
      mach::dell_xeon(), mach::nec_sx8()};
  for (const mach::MachineConfig& m : machines) {
    const xmpi::SimRunResult off = run_workload(m);
    obs::CriticalPathReport report;
    xmpi::SimRunOptions options;
    options.critical_path = &report;
    const xmpi::SimRunResult on = run_workload(m, options);
    EXPECT_EQ(bits_of(off.makespan_s), bits_of(on.makespan_s)) << m.name;
    EXPECT_TRUE(report.ok) << m.name << ": " << report.error;
  }
}

TEST(CriticalPath, PathLengthEqualsMakespanToTheUlp) {
  obs::CriticalPathReport report;
  xmpi::SimRunOptions options;
  options.critical_path = &report;
  const xmpi::SimRunResult run = run_workload(mach::dell_xeon(), options);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(bits_of(report.makespan_s), bits_of(run.makespan_s));
  EXPECT_EQ(bits_of(report.total_s), bits_of(report.makespan_s));
}

TEST(CriticalPath, SegmentsTileTheTimelineAndGroupsRank) {
  obs::CriticalPathReport report;
  xmpi::SimRunOptions options;
  options.critical_path = &report;
  run_workload(mach::dell_xeon(), options);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_FALSE(report.segments.empty());
  EXPECT_DOUBLE_EQ(report.segments.front().t0, 0.0);
  for (std::size_t i = 1; i < report.segments.size(); ++i) {
    EXPECT_EQ(bits_of(report.segments[i - 1].t1),
              bits_of(report.segments[i].t0))
        << "gap before segment " << i;
    EXPECT_LE(report.segments[i].t0, report.segments[i].t1);
  }
  ASSERT_FALSE(report.groups.empty());
  for (std::size_t i = 1; i < report.groups.size(); ++i)
    EXPECT_GE(report.groups[i - 1].seconds, report.groups[i].seconds);
  EXPECT_EQ(report.path_events, report.segments.size());
  EXPECT_LE(report.path_events, report.events);
  // Rendering must not throw and must name the makespan.
  const Table t = report.table();
  EXPECT_GT(t.rows(), 0u);
  const std::string json = report.json_fragment();
  EXPECT_NE(json.find("\"critical_path\":{\"ok\":true"), std::string::npos);
  EXPECT_EQ(report.overlay.size(), report.segments.size());
}

// With a recorder attached the path is additionally attributed to
// collective phases, and those cover the whole path for this workload
// (every rank is always inside a collective).
TEST(CriticalPath, PhaseAttributionCoversCollectives) {
  trace::Recorder recorder(32);
  obs::CriticalPathReport report;
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  options.critical_path = &report;
  run_workload(mach::dell_xeon(), options);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_FALSE(report.phases.empty());
  bool saw_collective = false;
  for (const obs::CriticalPathGroup& p : report.phases)
    if (p.actor != "outside-collective") saw_collective = true;
  EXPECT_TRUE(saw_collective);
}

// ---------------------------------------------------------------------------
// Engine stats / registry wiring

TEST(EngineStats, ParallelRunReportsPerLpTable) {
  trace::Recorder recorder(32);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  options.sim_workers = 2;
  run_workload(mach::dell_xeon(), options);
  const trace::EngineStats& es = recorder.engine_stats();
  ASSERT_TRUE(es.present());
  EXPECT_EQ(es.workers, 2);
  EXPECT_GT(es.windows, 0u);
  EXPECT_FALSE(es.lps.empty());
  std::uint64_t events = 0;
  int ranks = 0;
  for (const trace::LpStats& lp : es.lps) {
    events += lp.events;
    ranks += lp.ranks;
  }
  EXPECT_GT(events, 0u);
  EXPECT_EQ(ranks, 32);
  EXPECT_EQ(es.lookahead_limited + es.work_limited, es.windows);
  const Table t = recorder.lp_table();
  EXPECT_GT(t.rows(), static_cast<std::size_t>(es.lps.size()) - 1);
}

TEST(EngineStats, SerialRunHasNoLpWindows) {
  trace::Recorder recorder(32);
  xmpi::SimRunOptions options;
  options.recorder = &recorder;
  run_workload(mach::dell_xeon(), options);
  EXPECT_FALSE(recorder.engine_stats().present());
}

TEST(EngineStats, MergeFoldsAcrossRecorders) {
  trace::EngineStats a;
  a.workers = 2;
  a.windows = 10;
  a.lookahead_limited = 4;
  a.work_limited = 6;
  a.lps.resize(2);
  a.lps[0].windows = 10;
  a.lps[0].events = 100;
  a.lps[0].ranks = 16;
  trace::EngineStats b;
  b.workers = 4;
  b.windows = 5;
  b.lookahead_limited = 5;
  b.lps.resize(1);
  b.lps[0].windows = 5;
  b.lps[0].events = 50;
  b.lps[0].ranks = 16;
  a.merge(b);
  EXPECT_EQ(a.workers, 4);
  EXPECT_EQ(a.windows, 15u);
  EXPECT_EQ(a.lookahead_limited, 9u);
  EXPECT_EQ(a.lps.size(), 2u);
  EXPECT_EQ(a.lps[0].events, 150u);
  EXPECT_EQ(a.lps[0].ranks, 16);
}

TEST(GlobalRegistry, SimulatedRunsReportEngineCounters) {
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot before = reg.snapshot();
  const obs::MetricValue* runs0 = before.find("hpcx_sim_runs_total");
  const std::uint64_t runs_before = runs0 != nullptr ? runs0->count : 0;
  run_workload(mach::dell_xeon());
  const obs::Snapshot after = reg.snapshot();
  const obs::MetricValue* runs = after.find("hpcx_sim_runs_total");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->count, runs_before + 1);
  const obs::MetricValue* events = after.find("hpcx_sim_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->count, 0u);
  EXPECT_NE(after.find("hpcx_envelope_pool_allocs_total"), nullptr);
  EXPECT_NE(after.find("hpcx_fiber_stack_pool_free"), nullptr);
}

TEST(GlobalRegistry, ThreadRunsReportTransportCounters) {
  obs::Registry& reg = obs::Registry::global();
  const auto count = [](const obs::Snapshot& s, const char* name) {
    const obs::MetricValue* m = s.find(name);
    return m != nullptr ? m->count : std::uint64_t{0};
  };
  const obs::Snapshot before = reg.snapshot();
  xmpi::run_on_threads(4, [](xmpi::Comm& c) {
    c.allreduce(xmpi::phantom_cbuf(1024, xmpi::DType::kF64),
                xmpi::phantom_mbuf(1024, xmpi::DType::kF64), xmpi::ROp::kSum);
    c.barrier();
  });
  const obs::Snapshot after = reg.snapshot();
  EXPECT_EQ(count(after, "hpcx_threads_runs_total"),
            count(before, "hpcx_threads_runs_total") + 1);
  EXPECT_GT(count(after, "hpcx_threads_sends_total"),
            count(before, "hpcx_threads_sends_total"));
  EXPECT_GT(count(after, "hpcx_threads_bytes_sent_total"),
            count(before, "hpcx_threads_bytes_sent_total"));
  EXPECT_GT(count(after, "hpcx_threads_eager_sends_total"),
            count(before, "hpcx_threads_eager_sends_total"));
}

TEST(GlobalRegistry, ParallelRunsReportPdesCounters) {
  obs::Registry& reg = obs::Registry::global();
  const obs::Snapshot before = reg.snapshot();
  const obs::MetricValue* runs0 = before.find("hpcx_pdes_runs_total");
  const std::uint64_t runs_before = runs0 != nullptr ? runs0->count : 0;
  xmpi::SimRunOptions options;
  options.sim_workers = 2;
  run_workload(mach::dell_xeon(), options);
  const obs::Snapshot after = reg.snapshot();
  const obs::MetricValue* runs = after.find("hpcx_pdes_runs_total");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->count, runs_before + 1);
  const obs::MetricValue* windows = after.find("hpcx_pdes_windows_total");
  ASSERT_NE(windows, nullptr);
  EXPECT_GT(windows->count, 0u);
}

}  // namespace
}  // namespace hpcx
