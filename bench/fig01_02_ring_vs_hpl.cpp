// Regenerates the paper's Figs 1-2: accumulated random-ring bandwidth
// and its B/kFlop ratio over the HPL sweep of each machine (including
// the Altix NUMALINK3 variant and the beyond-one-box decline).
#include <iostream>

#include "report/hpcc_figures.hpp"

int main() {
  hpcx::report::print_fig01_02_ring_vs_hpl(std::cout);
  return 0;
}
