// Regenerates the paper's Figs 1-2: accumulated random-ring bandwidth
// and its B/kFlop ratio over the HPL sweep of each machine (including
// the Altix NUMALINK3 variant and the beyond-one-box decline). See
// harness.hpp for the shared flags (--machine/--cpus/--csv/...).
#include "harness.hpp"
#include "report/hpcc_figures.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(
      argc, argv, "Figs 1-2: accumulated random-ring bandwidth vs HPL");
  runner.emit(hpcx::report::fig01_02_table(runner.figure_options()));
  return 0;
}
