#!/bin/sh
# Sweep executor fixture: one real figure binary, three ways —
#   1. serial (the reference),
#   2. --jobs 4 against a cold cache,
#   3. --jobs 4 again against the now-warm cache (no simulation runs).
# The emitted CSVs must be byte-identical across all three (the
# executor's determinism contract and the cache's bit-exact round
# trip), and hpcx_compare must accept the warm run's metrics record
# against the serial one. CSV emission appends, so each run writes a
# fresh file.
#
# usage: sweep_fixture.sh <figure-binary> <hpcx_compare-binary> <workdir>
set -e
FIG=$1
COMPARE=$2
OUT=$3

rm -rf "$OUT"
mkdir -p "$OUT"

"$FIG" --csv "$OUT/serial.csv" --metrics-out "$OUT/serial.json" \
    > "$OUT/serial.txt"
"$FIG" --jobs 4 --cache "$OUT/cache.json" --csv "$OUT/cold.csv" \
    --metrics-out "$OUT/cold.json" > "$OUT/cold.txt"
cmp "$OUT/serial.csv" "$OUT/cold.csv"

"$FIG" --jobs 4 --cache "$OUT/cache.json" --csv "$OUT/warm.csv" \
    --metrics-out "$OUT/warm.json" > "$OUT/warm.txt"
cmp "$OUT/serial.csv" "$OUT/warm.csv"
grep -q "points from cache" "$OUT/warm.txt"

"$COMPARE" "$OUT/serial.json" "$OUT/warm.json"
echo "sweep fixture: serial, cold --jobs 4 and warm cache all byte-identical"
