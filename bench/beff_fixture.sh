#!/bin/sh
# b_eff fixture: one small measured b_eff point over the forked
# ProcComm transport, end to end through the reporting pipeline —
#   1. bench_beff --procs 2 writes a run record and an obs scrape,
#   2. json_check validates both files,
#   3. hpcx_compare must accept the record against itself,
#   4. the table must carry the headline b_eff row and the obs scrape
#      the transport's send counters (proof the world really ran over
#      shared memory, not a stub).
#
# usage: beff_fixture.sh <bench_beff> <json_check> <hpcx_compare> <workdir>
set -e
BEFF=$1
CHECK=$2
COMPARE=$3
OUT=$4

rm -rf "$OUT"
mkdir -p "$OUT"

"$BEFF" --procs 2 --repeats 2 \
    --metrics-out "$OUT/beff.json" --obs-out "$OUT/beff_obs.json" \
    > "$OUT/beff.txt"
grep -q "b_eff" "$OUT/beff.txt"

"$CHECK" "$OUT/beff.json"
"$CHECK" "$OUT/beff_obs.json"
grep -q "hpcx_procs_sends_total" "$OUT/beff_obs.json"

"$COMPARE" "$OUT/beff.json" "$OUT/beff.json"
echo "beff fixture: measured 2-proc b_eff record validated and self-compared"
