// Regenerates the paper's allreduce figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig07_allreduce(std::cout);
  return 0;
}
