// Ablation: topology contribution. Same processors, memory and NIC as
// the Dell Xeon cluster, but the interconnect swapped between a
// non-blocking fat tree, the paper's 3:1-tapered fat tree, a 2:1 Clos,
// and a full crossbar — isolating how much of the Alltoall/random-ring
// behaviour is the *network*, which is the paper's central question.
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "hpcc/ring.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

using hpcx::mach::MachineConfig;

MachineConfig with_topology(const char* label, hpcx::mach::TopologyKind kind,
                            double taper) {
  MachineConfig m = hpcx::mach::dell_xeon();
  m.name = label;
  m.topology = kind;
  m.core_taper = taper;
  m.clos_hosts_per_leaf = 8;
  m.clos_spines = 4;  // 2:1 over-subscription for the Clos variant
  return m;
}

}  // namespace

int main() {
  const MachineConfig variants[] = {
      with_topology("fat-tree 1:1", hpcx::mach::TopologyKind::kFatTree, 1.0),
      with_topology("fat-tree 3:1 (paper)", hpcx::mach::TopologyKind::kFatTree,
                    1.0 / 3.0),
      with_topology("clos 2:1", hpcx::mach::TopologyKind::kClos, 1.0),
      with_topology("crossbar", hpcx::mach::TopologyKind::kCrossbar, 1.0),
  };

  hpcx::Table t(
      "Ablation: interconnect topology on the Xeon node/NIC model "
      "(Alltoall 1 MB us/call; random-ring MB/s per CPU)");
  t.set_header({"Topology", "Alltoall@64", "Alltoall@256", "RingBW@64",
                "RingBW@256"});
  for (const auto& m : variants) {
    std::vector<std::string> row{m.name};
    for (const int cpus : {64, 256}) {
      double us = 0;
      hpcx::xmpi::run_on_machine(m, cpus, [&](hpcx::xmpi::Comm& c) {
        const std::size_t total =
            (std::size_t{1} << 20) * static_cast<std::size_t>(c.size());
        auto op = [&] {
          c.alltoall(hpcx::xmpi::phantom_cbuf(total),
                     hpcx::xmpi::phantom_mbuf(total));
        };
        op();
        c.barrier();
        const double t0 = c.now();
        op();
        if (c.rank() == 0) us = (c.now() - t0) * 1e6;
      });
      row.push_back(hpcx::format_fixed(us, 0));
    }
    for (const int cpus : {64, 256}) {
      double bw = 0;
      hpcx::xmpi::run_on_machine(m, cpus, [&](hpcx::xmpi::Comm& c) {
        const auto r = hpcx::hpcc::run_random_ring(c, 1 << 20, 2, 2, 0xB0EFF,
                                                   /*phantom=*/true);
        if (c.rank() == 0) bw = r.bandwidth_per_cpu_Bps;
      });
      row.push_back(hpcx::format_fixed(bw / 1e6, 1));
    }
    t.add_row(std::move(row));
  }
  t.add_note("tapered/over-subscribed cores slow Alltoall and random rings; "
             "the crossbar is the upper bound the NIC allows");
  t.print(std::cout);
  return 0;
}
