// Ablation: topology contribution. Same processors, memory and NIC as
// the Dell Xeon cluster, but the interconnect swapped between a
// non-blocking fat tree, the paper's 3:1-tapered fat tree, a 2:1 Clos,
// and a full crossbar — isolating how much of the Alltoall/random-ring
// behaviour is the *network*, which is the paper's central question.
// Each (variant, cpus, pattern) cell is one kCustom sweep point — the
// variants differ in topology fields, so their model fingerprints give
// them distinct cache addresses. See harness.hpp for the shared flags.
#include "core/units.hpp"
#include "harness.hpp"
#include "hpcc/ring.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

using hpcx::mach::MachineConfig;

MachineConfig with_topology(const char* label, hpcx::mach::TopologyKind kind,
                            double taper) {
  MachineConfig m = hpcx::mach::dell_xeon();
  m.name = label;
  m.topology = kind;
  m.core_taper = taper;
  m.clos_hosts_per_leaf = 8;
  m.clos_spines = 4;  // 2:1 over-subscription for the Clos variant
  return m;
}

hpcx::report::SweepPoint alltoall_point(const MachineConfig& m, int cpus) {
  hpcx::report::SweepPoint pt;
  pt.workload = hpcx::report::SweepWorkload::kCustom;
  pt.workload_name = "ablation/topo/alltoall";
  pt.machine = m;
  pt.np = cpus;
  pt.msg_bytes = 1 << 20;
  pt.run = [m, cpus](hpcx::trace::Recorder*) {
    double us = 0;
    hpcx::xmpi::run_on_machine(m, cpus, [&](hpcx::xmpi::Comm& c) {
      const std::size_t total =
          (std::size_t{1} << 20) * static_cast<std::size_t>(c.size());
      auto op = [&] {
        c.alltoall(hpcx::xmpi::phantom_cbuf(total),
                   hpcx::xmpi::phantom_mbuf(total));
      };
      op();
      c.barrier();
      const double t0 = c.now();
      op();
      if (c.rank() == 0) us = (c.now() - t0) * 1e6;
    });
    hpcx::report::SweepResult out;
    out.set("t_us", us);
    return out;
  };
  return pt;
}

hpcx::report::SweepPoint ring_point(const MachineConfig& m, int cpus) {
  hpcx::report::SweepPoint pt;
  pt.workload = hpcx::report::SweepWorkload::kCustom;
  pt.workload_name = "ablation/topo/random_ring";
  pt.machine = m;
  pt.np = cpus;
  pt.msg_bytes = 1 << 20;
  pt.run = [m, cpus](hpcx::trace::Recorder*) {
    double bw = 0;
    hpcx::xmpi::run_on_machine(m, cpus, [&](hpcx::xmpi::Comm& c) {
      const auto r = hpcx::hpcc::run_random_ring(c, 1 << 20, 2, 2, 0xB0EFF,
                                                 /*phantom=*/true);
      if (c.rank() == 0) bw = r.bandwidth_per_cpu_Bps;
    });
    hpcx::report::SweepResult out;
    out.set("bw_Bps", bw);
    return out;
  };
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Ablation: interconnect topology contribution");
  const MachineConfig variants[] = {
      with_topology("fat-tree 1:1", hpcx::mach::TopologyKind::kFatTree, 1.0),
      with_topology("fat-tree 3:1 (paper)", hpcx::mach::TopologyKind::kFatTree,
                    1.0 / 3.0),
      with_topology("clos 2:1", hpcx::mach::TopologyKind::kClos, 1.0),
      with_topology("crossbar", hpcx::mach::TopologyKind::kCrossbar, 1.0),
  };

  // Four points per variant, in row order: alltoall@64, alltoall@256,
  // ring@64, ring@256.
  std::vector<hpcx::report::SweepPoint> points;
  for (const auto& m : variants) {
    for (const int cpus : {64, 256}) points.push_back(alltoall_point(m, cpus));
    for (const int cpus : {64, 256}) points.push_back(ring_point(m, cpus));
  }
  const hpcx::report::SweepRun run = runner.executor().run(std::move(points));

  hpcx::Table t(
      "Ablation: interconnect topology on the Xeon node/NIC model "
      "(Alltoall 1 MB us/call; random-ring MB/s per CPU)");
  t.set_header({"Topology", "Alltoall@64", "Alltoall@256", "RingBW@64",
                "RingBW@256"});
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    std::vector<std::string> row{variants[v].name};
    row.push_back(hpcx::format_fixed(run.results[4 * v].get("t_us"), 0));
    row.push_back(hpcx::format_fixed(run.results[4 * v + 1].get("t_us"), 0));
    row.push_back(
        hpcx::format_fixed(run.results[4 * v + 2].get("bw_Bps") / 1e6, 1));
    row.push_back(
        hpcx::format_fixed(run.results[4 * v + 3].get("bw_Bps") / 1e6, 1));
    t.add_row(std::move(row));
  }
  t.add_note("tapered/over-subscribed cores slow Alltoall and random rings; "
             "the crossbar is the upper bound the NIC allows");
  runner.emit(t);
  return 0;
}
