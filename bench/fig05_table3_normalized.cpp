// Regenerates the paper's Fig 5 (all HPCC benchmarks normalised by HPL
// and by column maximum) and Table 3 (the absolute ratio maxima). See
// harness.hpp for the shared flags (--machine/--csv/...).
#include "harness.hpp"
#include "report/hpcc_figures.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Fig 5 + Table 3: normalised HPCC ratios");
  for (const hpcx::Table& t :
       hpcx::report::fig05_table3_tables(runner.figure_options()))
    runner.emit(t);
  return 0;
}
