// Regenerates the paper's Fig 5 (all HPCC benchmarks normalised by HPL
// and by column maximum) and Table 3 (the absolute ratio maxima).
#include <iostream>

#include "report/hpcc_figures.hpp"

int main() {
  hpcx::report::print_fig05_table3(std::cout);
  return 0;
}
