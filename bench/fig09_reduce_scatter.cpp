// Regenerates the paper's reduce_scatter figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig09_reduce_scatter(std::cout);
  return 0;
}
