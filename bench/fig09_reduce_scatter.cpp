// Regenerates the paper's reduce_scatter figure series on the simulated
// machines. See DESIGN.md for the experiment index; see harness.hpp for
// the shared flags (--machine/--cpus/--repeats/--csv/--trace-out).
#include "harness.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv, "Fig 9: IMB Reduce_scatter, 1 MB");
  return runner.run_imb_figure("Fig 9: IMB Reduce_scatter, 1 MB",
                               hpcx::imb::BenchmarkId::kReduceScatter,
                               1 << 20,
                               /*as_bandwidth=*/false);
}
