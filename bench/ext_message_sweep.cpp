// Extension (the paper's stated future work): "study the performance as
// a function of varying message sizes starting from 1 byte to 2 MB for
// all 11 benchmarks". One table per benchmark: rows = message sizes
// 1 B .. 2 MB (powers of four), columns = the five machines at 64 CPUs.
// Each benchmark is one declarative SweepSpec with a size axis, so
// --jobs fans the whole grid across host cores and --cache memoises it.
// See harness.hpp for the shared flags (--machine/--cpus/--jobs/...).
#include "core/units.hpp"
#include "harness.hpp"
#include "machine/registry.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "Message-size sweep: 1 B .. 2 MB for each benchmark");
  const int cpus =
      runner.options().cpus > 0 ? runner.options().cpus : 64;

  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= (2u << 20); s *= 4) sizes.push_back(s);
  sizes.push_back(2u << 20);

  std::vector<mach::MachineConfig> machines;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < cpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    machines.push_back(m);
  }

  for (const auto id : imb::paper_benchmarks()) {
    if (id == imb::BenchmarkId::kBarrier) continue;  // size-independent
    report::SweepSpec spec;
    spec.title = std::string("Message-size sweep: IMB ") + to_string(id) +
                 ", " + std::to_string(cpus) + " CPUs (us/call)";
    spec.workload = report::SweepWorkload::kImb;
    spec.imb_id = id;
    spec.machines = machines;
    spec.np_set = {cpus};
    spec.sizes = sizes;
    spec.repetitions = runner.options().repeats;
    const report::SweepRun run = runner.run_sweep(spec);

    Table t(spec.title);
    std::vector<std::string> header{"bytes"};
    for (const auto& m : machines) header.push_back(m.name);
    t.set_header(std::move(header));
    for (const std::size_t s : sizes) {
      std::vector<std::string> row{format_bytes(s)};
      for (const auto& m : machines) {
        const report::SweepResult* r = run.find(m.short_name, cpus, s);
        row.push_back(
            r != nullptr
                ? format_fixed(r->get("t_avg_s") * 1e6, 2) + " us"
                : std::string("-"));
      }
      t.add_row(std::move(row));
    }
    runner.emit(t);
  }
  return 0;
}
