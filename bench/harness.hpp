// Shared command-line harness for the figure and micro-bench binaries.
//
// Every binary built on bench::Runner understands the same flags:
//
//   --machine <name>    restrict to one modelled machine (short name;
//                       paper systems, variants and future projections)
//   --cpus <n>          restrict to one CPU count instead of the sweep
//   --repeats <n>       repetitions per measurement (default 2)
//   --jobs <n>          worker threads for the sweep executor (default
//                       1 = serial; each sweep point simulates in its
//                       own isolated world, so tables are byte-identical
//                       at any job count; exits(2) on n < 1)
//   --sim-workers <n>   parallel-DES worker threads *inside* each
//                       simulated point (default 1 = the serial engine;
//                       the conservative-lookahead scheduler reproduces
//                       serial makespans exactly at any worker count)
//   --cache <file>      content-addressable sweep result cache
//                       (hpcx-sweep-cache/1 JSON; created if absent,
//                       rewritten on exit; repeated runs answer
//                       unchanged points from the cache)
//   --csv <file>        also write every emitted table as CSV
//   --trace-out <file>  write a Chrome/Perfetto trace of one
//                       representative traced run
//   --metrics-out <f>   write a JSON run record (metrics/run_record.hpp)
//                       harvesting every emitted table, plus per-rank
//                       time buckets of one representative traced run;
//                       with --cache also the sweep hit-rate counters
//   --obs-out <file>    write the process-wide metrics registry as
//                       hpcx-obs/1 JSON on exit (with --critical-path
//                       the critical-path analysis is embedded)
//   --progress          print a ~1 Hz progress heartbeat line to stderr
//                       while sweeps run (reads the metrics registry)
//   --critical-path     profile the representative run's simulated-time
//                       critical path and print the ranked table (off
//                       by default; the default path is bit-identical)
//   --eager-max <bytes> thread-transport eager/rendezvous threshold for
//                       real-execution benches (0 = transport default)
//   --help              print the flag summary and exit
//
// so `fig07_allreduce` with no arguments still reproduces the paper
// figure, while `fig07_allreduce --machine sx8 --cpus 64 --trace-out
// t.json` zooms into a single operating point and traces it, and
// `fig07_allreduce --jobs 8 --cache sweep.json` fans the sweep across
// eight host cores behind a persistent result cache.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/table.hpp"
#include "imb/imb.hpp"
#include "machine/machine.hpp"
#include "metrics/run_record.hpp"
#include "report/figures.hpp"
#include "report/sweep.hpp"

namespace hpcx::trace {
class Recorder;
}  // namespace hpcx::trace

namespace hpcx::obs {
struct CriticalPathReport;
class ProgressHeartbeat;
}  // namespace hpcx::obs

namespace hpcx::bench {

struct Options {
  std::string machine;     ///< short_name; empty = binary's default set
  int cpus = 0;            ///< 0 = binary's default sweep
  int repeats = 2;
  int jobs = 1;            ///< sweep executor worker threads (>= 1)
  int sim_workers = 1;     ///< parallel-DES workers per simulated point
  std::string cache_path;    ///< empty = no persistent sweep cache
  std::string csv_path;      ///< empty = no CSV
  std::string trace_path;    ///< empty = no trace
  std::string metrics_path;  ///< empty = no run record
  std::string obs_path;      ///< empty = no hpcx-obs/1 registry scrape
  bool progress = false;       ///< stderr heartbeat while sweeps run
  bool critical_path = false;  ///< profile the representative run's path
  /// Thread-transport eager/rendezvous threshold for real-execution
  /// benches (0 = the transport default; see xmpi::TransportTuning).
  std::size_t eager_max_bytes = 0;
  /// Rank count for real multi-process (ProcComm) benches — bench_beff
  /// measures a world of this many forked processes (0 = the binary's
  /// default). Distinct from --cpus, which narrows simulated sweeps.
  int procs = 0;
};

class Runner {
 public:
  /// Parses the shared flags. Prints usage and exits(0) on --help,
  /// exits(2) on an unknown flag or a missing value. `what` is the one
  /// line describing the binary in --help output.
  Runner(int argc, char** argv, std::string what);

  /// Writes the --metrics-out run record, if one was requested and any
  /// metrics accumulated (failures are reported, not thrown).
  ~Runner();

  const Options& options() const { return options_; }

  /// Resolve --machine against the registry (including the projected
  /// future machines); throws ConfigError for unknown names.
  mach::MachineConfig machine() const;
  bool has_machine() const { return !options_.machine.empty(); }

  bool wants_trace() const { return !options_.trace_path.empty(); }
  bool wants_metrics() const { return !options_.metrics_path.empty(); }
  bool wants_obs() const { return !options_.obs_path.empty(); }

  /// The run record being built for --metrics-out (created lazily with
  /// environment capture and timer calibration). Valid to call even
  /// without --metrics-out — the record is simply never written.
  metrics::RunRecord& record() const;

  /// Print the table to stdout, with --csv append it to the file, and
  /// with --metrics-out harvest its cells into the run record.
  void emit(const Table& table) const;

  /// Write the recorder as Chrome trace-event JSON to --trace-out.
  void write_trace(const trace::Recorder& recorder) const;

  /// The binary's sweep executor: --jobs worker threads in front of the
  /// --cache result store (when one was requested). Shared by every
  /// sweep the binary runs, so the destructor can report aggregate
  /// cache-hit counters and flush the store once.
  report::SweepExecutor& executor() const;

  /// The --cache store, or null without --cache.
  report::ResultCache* cache() const;

  /// Enumerate the spec and execute it on executor() — the one
  /// declarative entry point the fig/table/ext binaries sweep through.
  report::SweepRun run_sweep(const report::SweepSpec& spec) const;

  /// These options as report::FigureOptions (machine/cpus/repeats
  /// narrowing plus the shared executor) for the figure builders.
  report::FigureOptions figure_options() const;

  /// Run one of the paper's IMB figures under these options and emit the
  /// table. With --trace-out or --metrics-out, additionally re-runs one
  /// representative operating point (the selected machine or the
  /// figure's first, at --cpus or min(16, max)) with tracing on; the
  /// trace is written to --trace-out and the per-rank time buckets plus
  /// across-repeat statistics land in the run record. Returns a
  /// main()-ready exit code.
  int run_imb_figure(const std::string& title, imb::BenchmarkId id,
                     std::size_t msg_bytes, bool as_bandwidth) const;

 private:
  Options options_;
  std::string what_;
  std::string tool_;  ///< argv[0] basename, stamped into the record
  mutable std::unique_ptr<metrics::RunRecord> record_;
  mutable std::unique_ptr<report::ResultCache> cache_;
  mutable std::unique_ptr<report::SweepExecutor> executor_;
  std::unique_ptr<obs::ProgressHeartbeat> heartbeat_;
  /// The representative run's critical-path analysis (--critical-path),
  /// embedded in --obs-out and overlaid on --trace-out.
  mutable std::unique_ptr<obs::CriticalPathReport> cp_report_;
  mutable double repr_makespan_s_ = 0.0;  ///< representative run makespan
};

}  // namespace hpcx::bench
