// Engine micro-benchmarks: event throughput, fiber switch cost, and
// simulated-message throughput — the quantities that bound how large a
// machine the simulator can sweep.
#include <benchmark/benchmark.h>

#include "des/event_queue.hpp"
#include "des/fiber.hpp"
#include "des/simulator.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hpcx::des::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    while (!q.empty()) q.pop(nullptr);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_EventQueueSameTime(benchmark::State& state) {
  // All events at one timestamp: exercises the same-time FIFO bucket
  // (ring scan, no heap sifting) that zero-delay wake-up storms hit.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hpcx::des::EventQueue q;
    for (int i = 0; i < n; ++i) q.push(1.0, [] {});
    while (!q.empty()) q.pop(nullptr);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSameTime)->Arg(1 << 10)->Arg(1 << 14);

void BM_FiberSpawn(benchmark::State& state) {
  // Create/run/destroy cost, dominated by stack acquisition — measures
  // the thread-local stack pool (first iteration mmaps, the rest reuse).
  for (auto _ : state) {
    hpcx::des::Fiber fiber([] {});
    fiber.resume();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSpawn);

void BM_FiberSwitch(benchmark::State& state) {
  hpcx::des::Fiber fiber([] {
    for (;;) hpcx::des::Fiber::yield();
  });
  for (auto _ : state) fiber.resume();
  state.SetItemsProcessed(state.iterations() * 2);  // two switches/resume
}
BENCHMARK(BM_FiberSwitch);

void BM_SimulatedAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto machine = hpcx::mach::dell_xeon();
  for (auto _ : state) {
    const auto r = hpcx::xmpi::run_on_machine(machine, ranks, [](auto& c) {
      c.allreduce(hpcx::xmpi::phantom_cbuf(131072, hpcx::xmpi::DType::kF64),
                  hpcx::xmpi::phantom_mbuf(131072, hpcx::xmpi::DType::kF64),
                  hpcx::xmpi::ROp::kSum);
    });
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * ranks);
}
BENCHMARK(BM_SimulatedAllreduce)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
