// Regenerates the paper's allgatherv figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig11_allgatherv(std::cout);
  return 0;
}
