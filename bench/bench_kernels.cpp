// Host micro-benchmarks of the HPCC kernels (google-benchmark): STREAM,
// DGEMM, FFT, RandomAccess, serial HPL. These measure this machine, not
// the paper systems — they validate that the kernels behave like the
// algorithms they implement (O(n^3) DGEMM, O(n log n) FFT, ...).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/rng.hpp"
#include "hpcc/dgemm.hpp"
#include "hpcc/fft.hpp"
#include "hpcc/hpl.hpp"
#include "hpcc/random_access.hpp"
#include "hpcc/stream.hpp"

namespace {

void BM_StreamTriad(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 3.0 * c[i];
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(24 * n));
}
BENCHMARK(BM_StreamTriad)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Dgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  hpcx::Rng rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.next_double();
  for (auto& x : b) x = rng.next_double();
  for (auto _ : state) {
    hpcx::hpcc::dgemm(a.data(), n, b.data(), n, c.data(), n, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  hpcx::Rng rng(2);
  std::vector<hpcx::hpcc::Complex> x(n);
  for (auto& v : x)
    v = hpcx::hpcc::Complex(rng.next_double(), rng.next_double());
  for (auto _ : state) {
    std::vector<hpcx::hpcc::Complex> work = x;
    hpcx::hpcc::fft(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["flops"] = benchmark::Counter(
      hpcx::hpcc::fft_flop_count(static_cast<double>(n)) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(3 * 3 * 5 * 1024);

void BM_RandomAccessUpdates(benchmark::State& state) {
  const int log2_size = static_cast<int>(state.range(0));
  const std::uint64_t size = 1ULL << log2_size;
  const std::uint64_t mask = size - 1;
  std::vector<std::uint64_t> table(size);
  for (std::uint64_t i = 0; i < size; ++i) table[i] = i;
  hpcx::HpccRandom rng(0);
  for (auto _ : state) {
    for (int u = 0; u < 4096; ++u) {
      const std::uint64_t a = rng.next();
      table[a & mask] ^= a;
    }
    benchmark::ClobberMemory();
  }
  state.counters["updates"] = benchmark::Counter(
      4096.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RandomAccessUpdates)->Arg(12)->Arg(18)->Arg(22);

void BM_HplSerial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto r = hpcx::hpcc::run_hpl_serial(n, 32);
    if (!r.passed) state.SkipWithError("HPL residual check failed");
    benchmark::DoNotOptimize(r.gflops);
  }
  state.counters["flops"] = benchmark::Counter(
      hpcx::hpcc::hpl_flop_count(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HplSerial)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
