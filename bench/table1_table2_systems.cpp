// Prints the paper's Tables 1-2: the published architecture parameters
// and the five-system characteristics as modelled by the registry.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_table1_altix(std::cout);
  hpcx::report::print_table2_systems(std::cout);
  return 0;
}
