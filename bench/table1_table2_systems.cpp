// Prints the paper's Tables 1-2: the published architecture parameters
// and the five-system characteristics as modelled by the registry. See
// harness.hpp for the shared flags (--csv/--metrics-out/...).
#include "harness.hpp"
#include "report/figures.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Tables 1-2: system characteristics");
  runner.emit(hpcx::report::table1_altix());
  runner.emit(hpcx::report::table2_systems());
  return 0;
}
