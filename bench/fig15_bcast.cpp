// Regenerates the paper's bcast figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig15_bcast(std::cout);
  return 0;
}
