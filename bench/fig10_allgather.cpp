// Regenerates the paper's allgather figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig10_allgather(std::cout);
  return 0;
}
