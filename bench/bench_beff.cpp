// bench_beff — the b_eff effective-bandwidth benchmark, measured for
// REAL over the multi-process ProcComm transport (forked ranks, POSIX
// shared memory). Shared harness flags apply; the ones that matter:
//
//   --procs <n>     world size, one OS process per rank (default 4)
//   --repeats <n>   timed ring iterations per pattern (min 2)
//   --machine <m>   also simulate the random ring of machine <m> at the
//                   same world size and show it as a comparison column
//   --eager-max <b> transport eager/rendezvous threshold
//
// The table reports per-process natural-ring and random-ring bandwidth
// over the size ladder plus the aggregate b_eff figure; --metrics-out
// records b_eff so hpcx_compare can diff runs.
#include <algorithm>

#include "harness.hpp"
#include "report/beff.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "b_eff: measured ring/random-ring bandwidth over the "
                       "multi-process ProcComm transport");
  report::BeffOptions options;
  if (runner.options().procs > 0) options.procs = runner.options().procs;
  options.iterations = std::max(2, runner.options().repeats);
  if (runner.options().eager_max_bytes > 0)
    options.transport.eager_max_bytes = runner.options().eager_max_bytes;
  if (runner.has_machine()) options.sim_machine = runner.options().machine;

  const report::BeffReport report = report::run_beff(options);
  runner.emit(report::beff_table(report));
  if (runner.wants_metrics()) {
    metrics::RunRecord& rec = runner.record();
    rec.env.clock = "wall";
    rec.cpus = report.procs;
    rec.add_metric("beff/b_eff", report.beff_Bps, "B/s",
                   metrics::Better::kHigher);
    rec.add_metric("beff/b_eff_per_proc", report.beff_per_proc_Bps, "B/s",
                   metrics::Better::kHigher);
  }
  return 0;
}
