// Regenerates the paper's sendrecv figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig13_sendrecv(std::cout);
  return 0;
}
