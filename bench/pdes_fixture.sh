#!/bin/sh
# Parallel-DES fixtures, end to end through real binaries. The
# conservative multi-LP engine's contract is that the schedule — and
# therefore every emitted table cell — is identical at any worker
# count, so serial and parallel CSVs must be byte-identical.
#
#   cmp mode: (1) the default fig06 sweep on dell_xeon, serial vs
#       --sim-workers 4 (fast, tier-1 shaped); (2) a 16Ki-rank point on
#       the wide PDES testbed machine, serial vs --sim-workers 8 —
#       the scale where the segmented order merge and sharded flush
#       actually engage (the default sweep's windows are too small).
#   gate mode: a fresh run of the 4Ki scaling points must compare
#       clean against the committed BENCH_pdes.json via hpcx_compare
#       (generous threshold: the gate catches schema drift and wild
#       regressions, not scheduler noise). Registered as a separate
#       non-tsan test — sanitizer builds distort wall time.
#
# usage: pdes_fixture.sh cmp  <figure-binary> <workdir>
#        pdes_fixture.sh gate <bench_pdes> <hpcx_compare> <baseline.json> <workdir>
set -e
MODE=$1

case "$MODE" in
cmp)
  FIG=$2
  OUT=$3
  rm -rf "$OUT"
  mkdir -p "$OUT"

  "$FIG" --machine dell_xeon --csv "$OUT/serial.csv" > "$OUT/serial.txt"
  "$FIG" --machine dell_xeon --sim-workers 4 --csv "$OUT/parallel.csv" \
      > "$OUT/parallel.txt"
  cmp "$OUT/serial.csv" "$OUT/parallel.csv"

  "$FIG" --machine dell_xeon_wide --cpus 16384 --repeats 1 \
      --csv "$OUT/serial16k.csv" > "$OUT/serial16k.txt"
  "$FIG" --machine dell_xeon_wide --cpus 16384 --repeats 1 \
      --sim-workers 8 --csv "$OUT/parallel16k.csv" > "$OUT/parallel16k.txt"
  cmp "$OUT/serial16k.csv" "$OUT/parallel16k.csv"

  echo "pdes fixture: serial and parallel CSVs byte-identical" \
       "(fig06 sweep @4 workers, 16Ki point @8 workers)"
  ;;
gate)
  BENCH=$2
  COMPARE=$3
  BASELINE=$4
  OUT=$5
  rm -rf "$OUT"
  mkdir -p "$OUT"

  "$BENCH" --benchmark_filter='BM_PdesBarrier/ranks:4096' \
      --benchmark_min_time=0.05 \
      --benchmark_out="$OUT/bench.json" --benchmark_out_format=json \
      > "$OUT/bench.txt"
  "$COMPARE" "$BASELINE" "$OUT/bench.json" --threshold 0.5

  echo "pdes fixture: fresh 4Ki scaling points gate against BENCH_pdes.json"
  ;;
*)
  echo "usage: pdes_fixture.sh cmp <figure-binary> <workdir>" >&2
  echo "       pdes_fixture.sh gate <bench_pdes> <hpcx_compare>" \
       "<baseline.json> <workdir>" >&2
  exit 2
  ;;
esac
