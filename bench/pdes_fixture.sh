#!/bin/sh
# Parallel-DES fixture: one real figure binary, serial vs --sim-workers 4.
# The conservative multi-LP engine's contract is that the schedule —
# and therefore every emitted table cell — is identical at any worker
# count, so the two CSVs must be byte-identical. A fast operating point
# (one machine, one CPU count) keeps this in tier-1 territory; the full
# sweeps stay with tools/bench_engine.sh.
#
# usage: pdes_fixture.sh <figure-binary> <workdir>
set -e
FIG=$1
OUT=$2

rm -rf "$OUT"
mkdir -p "$OUT"

"$FIG" --machine dell_xeon --csv "$OUT/serial.csv" > "$OUT/serial.txt"
"$FIG" --machine dell_xeon --sim-workers 4 --csv "$OUT/parallel.csv" \
    > "$OUT/parallel.txt"
cmp "$OUT/serial.csv" "$OUT/parallel.csv"
echo "pdes fixture: serial and --sim-workers 4 CSVs byte-identical"
