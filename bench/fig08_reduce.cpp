// Regenerates the paper's reduce figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig08_reduce(std::cout);
  return 0;
}
