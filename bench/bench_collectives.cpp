// Real-execution collective benchmarks over the thread backend: measures
// this host's shared-memory runtime (useful as a sanity floor and as a
// demonstration that the same code path the simulator times also runs
// for real).
#include <benchmark/benchmark.h>

#include <vector>

#include "xmpi/comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using hpcx::xmpi::Comm;

void run_collective(benchmark::State& state, int ranks,
                    const std::function<void(Comm&, std::vector<double>&,
                                             std::vector<double>&)>& op,
                    std::size_t count) {
  for (auto _ : state) {
    hpcx::xmpi::run_on_threads(ranks, [&](Comm& c) {
      std::vector<double> send(count, static_cast<double>(c.rank()));
      std::vector<double> recv(count *
                               static_cast<std::size_t>(c.size()));
      for (int i = 0; i < 4; ++i) op(c, send, recv);
    });
  }
  state.SetItemsProcessed(state.iterations() * 4);
}

void BM_ThreadAllreduce(benchmark::State& state) {
  run_collective(
      state, static_cast<int>(state.range(0)),
      [](Comm& c, std::vector<double>& s, std::vector<double>& r) {
        c.allreduce(hpcx::xmpi::cbuf(std::span<const double>(s)),
                    hpcx::xmpi::mbuf(std::span<double>(r.data(), s.size())),
                    hpcx::xmpi::ROp::kSum);
      },
      8192);
}
BENCHMARK(BM_ThreadAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_ThreadAlltoall(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hpcx::xmpi::run_on_threads(ranks, [&](Comm& c) {
      const std::size_t per = 4096;
      std::vector<double> send(per * static_cast<std::size_t>(c.size()),
                               1.0);
      std::vector<double> recv(send.size());
      for (int i = 0; i < 4; ++i)
        c.alltoall(hpcx::xmpi::cbuf(std::span<const double>(send)),
                   hpcx::xmpi::mbuf(std::span<double>(recv)));
    });
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ThreadAlltoall)->Arg(2)->Arg(4)->Arg(8);

void BM_ThreadBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hpcx::xmpi::run_on_threads(ranks, [](Comm& c) {
      for (int i = 0; i < 16; ++i) c.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ThreadBarrier)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
