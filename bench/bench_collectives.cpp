// Collective micro-benchmarks over the thread backend: measures this
// host's shared-memory runtime (a sanity floor, and a demonstration that
// the same code path the simulator times also runs for real). With
// --machine the same measurements run on the simulated machine instead,
// in virtual time. --trace-out writes a Chrome/Perfetto trace of one
// combined run at the largest measured rank count.
#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "core/units.hpp"
#include "harness.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using hpcx::xmpi::Comm;

constexpr std::size_t kAllreduceCount = 8192;  // doubles
constexpr std::size_t kAlltoallBlock = 4096;   // doubles per rank pair

struct Op {
  const char* name;
  std::function<void(Comm&)> body;
};

std::vector<Op> make_ops() {
  return {
      {"Allreduce 64 KB",
       [](Comm& c) {
         std::vector<double> send(kAllreduceCount,
                                  static_cast<double>(c.rank()));
         std::vector<double> recv(kAllreduceCount);
         c.allreduce(hpcx::xmpi::cbuf(std::span<const double>(send)),
                     hpcx::xmpi::mbuf(std::span<double>(recv)),
                     hpcx::xmpi::ROp::kSum);
       }},
      {"Alltoall 32 KB/block",
       [](Comm& c) {
         const std::size_t total =
             kAlltoallBlock * static_cast<std::size_t>(c.size());
         std::vector<double> send(total, 1.0);
         std::vector<double> recv(total);
         c.alltoall(hpcx::xmpi::cbuf(std::span<const double>(send)),
                    hpcx::xmpi::mbuf(std::span<double>(recv)));
       }},
      {"Barrier", [](Comm& c) { c.barrier(); }},
  };
}

/// Per-rank body: warm up once, then time `repeats` calls between two
/// barriers. Works identically in wall-clock and virtual time.
double timed_run(Comm& c, const Op& op, int repeats) {
  op.body(c);
  c.barrier();
  const double t0 = c.now();
  for (int i = 0; i < repeats; ++i) op.body(c);
  c.barrier();
  return (c.now() - t0) / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(
      argc, argv,
      "Collective micro-benchmarks (thread backend; --machine simulates)");
  const auto& options = runner.options();
  const bool simulated = runner.has_machine();

  std::vector<int> rank_counts =
      options.cpus > 0 ? std::vector<int>{options.cpus}
                       : std::vector<int>{2, 4, 8};
  const int repeats = std::max(4, options.repeats);
  const auto ops = make_ops();

  hpcx::Table table(simulated
                        ? "Collectives on " + runner.machine().name +
                              " (virtual time)"
                        : "Collectives on host threads (wall-clock)");
  std::vector<std::string> header{"ranks"};
  for (const auto& op : ops) header.push_back(op.name);
  table.set_header(std::move(header));

  for (const int ranks : rank_counts) {
    std::vector<double> per_call(ops.size(), 0.0);
    auto body = [&](Comm& c) {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const double t = timed_run(c, ops[i], repeats);
        if (c.rank() == 0) per_call[i] = t;
      }
    };
    if (simulated)
      hpcx::xmpi::run_on_machine(runner.machine(), ranks, body);
    else
      hpcx::xmpi::run_on_threads(ranks, body);
    std::vector<std::string> row{std::to_string(ranks)};
    for (const double t : per_call)
      row.push_back(hpcx::format_fixed(t * 1e6, 2));
    table.add_row(std::move(row));
  }
  table.add_note("cells: us/call, averaged over " + std::to_string(repeats) +
                 " calls");
  runner.emit(table);

  if (runner.wants_trace()) {
    // One combined traced pass at the largest measured rank count.
    const int ranks = rank_counts.back();
    hpcx::trace::Recorder recorder(ranks);
    auto body = [&](Comm& c) {
      for (const auto& op : ops) timed_run(c, op, repeats);
    };
    if (simulated) {
      hpcx::xmpi::SimRunOptions sim_options;
      sim_options.recorder = &recorder;
      hpcx::xmpi::run_on_machine(runner.machine(), ranks, body, sim_options);
    } else {
      hpcx::xmpi::ThreadRunOptions thread_options;
      thread_options.recorder = &recorder;
      hpcx::xmpi::run_on_threads(ranks, body, thread_options);
    }
    runner.write_trace(recorder);
  }
  return 0;
}
