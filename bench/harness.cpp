#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>

#include "core/error.hpp"
#include "core/parse_num.hpp"
#include "core/stats.hpp"
#include "machine/future.hpp"
#include "machine/registry.hpp"
#include "obs/critical_path.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "report/figures.hpp"
#include "report/series.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace hpcx::bench {

namespace {

void usage(const std::string& what) {
  std::printf(
      "%s\n"
      "  --machine <name>    one modelled machine (see hpcx_cli "
      "--list-machines)\n"
      "  --cpus <n>          one CPU count instead of the default sweep\n"
      "  --repeats <n>       repetitions per measurement (default 2)\n"
      "  --jobs <n>          sweep worker threads (default 1; tables are\n"
      "                      byte-identical at any job count)\n"
      "  --sim-workers <n>   parallel-DES workers inside each simulated\n"
      "                      point (default 1; makespans are identical\n"
      "                      at any worker count)\n"
      "  --cache <file>      persistent sweep result cache\n"
      "                      (hpcx-sweep-cache/1 JSON)\n"
      "  --csv <file>        also write emitted tables as CSV\n"
      "  --trace-out <file>  write a Chrome/Perfetto trace of one traced "
      "run\n"
      "  --metrics-out <file> write a JSON run record (see hpcx_compare)\n"
      "  --obs-out <file>    write the metrics registry as hpcx-obs/1 JSON\n"
      "  --progress          ~1 Hz progress heartbeat on stderr\n"
      "  --critical-path     profile the representative run's simulated-\n"
      "                      time critical path (table; embedded in\n"
      "                      --obs-out and --trace-out when set)\n"
      "  --eager-max <bytes> thread-transport eager/rendezvous threshold\n"
      "                      for real-execution benches (0 = default)\n"
      "  --procs <n>         rank count for real multi-process (ProcComm)\n"
      "                      benches, e.g. bench_beff (0 = binary default)\n"
      "  --help              this message\n",
      what.c_str());
}

}  // namespace

Runner::Runner(int argc, char** argv, std::string what)
    : what_(std::move(what)) {
  if (argc > 0 && argv[0] != nullptr) {
    tool_ = argv[0];
    const std::size_t slash = tool_.find_last_of('/');
    if (slash != std::string::npos) tool_ = tool_.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        usage(what_);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--machine") {
      options_.machine = next();
    } else if (arg == "--cpus") {
      options_.cpus =
          static_cast<int>(parse_cli_int("--cpus", next(), 0, 1 << 30));
    } else if (arg == "--repeats") {
      options_.repeats =
          static_cast<int>(parse_cli_int("--repeats", next(), 0, 1 << 30));
    } else if (arg == "--jobs") {
      options_.jobs =
          static_cast<int>(parse_cli_int("--jobs", next(), 1, 1 << 20));
    } else if (arg == "--sim-workers") {
      options_.sim_workers =
          static_cast<int>(parse_cli_int("--sim-workers", next(), 1, 1 << 20));
    } else if (arg == "--cache") {
      options_.cache_path = next();
    } else if (arg == "--csv") {
      options_.csv_path = next();
    } else if (arg == "--trace-out") {
      options_.trace_path = next();
    } else if (arg == "--metrics-out") {
      options_.metrics_path = next();
    } else if (arg == "--obs-out") {
      options_.obs_path = next();
    } else if (arg == "--progress") {
      options_.progress = true;
    } else if (arg == "--critical-path") {
      options_.critical_path = true;
    } else if (arg == "--eager-max") {
      options_.eager_max_bytes = static_cast<std::size_t>(parse_cli_int(
          "--eager-max", next(), 0, std::numeric_limits<long long>::max()));
    } else if (arg == "--procs") {
      options_.procs =
          static_cast<int>(parse_cli_int("--procs", next(), 1, 512));
    } else if (arg == "--help" || arg == "-h") {
      usage(what_);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(what_);
      std::exit(2);
    }
  }
  if (options_.repeats < 1) options_.repeats = 1;
  if (has_machine()) {
    try {
      (void)machine();  // fail fast on a typo'd --machine name
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }
  if (!options_.cache_path.empty()) {
    try {
      cache_ = std::make_unique<report::ResultCache>(options_.cache_path);
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }
  if (options_.progress)
    heartbeat_ = std::make_unique<obs::ProgressHeartbeat>();
}

Runner::~Runner() {
  if (heartbeat_ != nullptr) heartbeat_->stop();
  if (wants_obs()) {
    try {
      const obs::Snapshot snap = obs::Registry::global().snapshot();
      std::string extra;
      {
        char buf[64];
        std::snprintf(buf, sizeof buf, "\"makespan_s\":%.17g,",
                      repr_makespan_s_);
        extra = buf;
      }
      if (cp_report_ != nullptr) extra += cp_report_->json_fragment() + ",";
      extra += "\"tool\":\"" + (tool_.empty() ? what_ : tool_) + "\"";
      std::ofstream out(options_.obs_path);
      if (!out)
        throw ConfigError("cannot open obs file: " + options_.obs_path);
      snap.write_json(out, extra);
      out << "\n";
      std::cout << "obs registry written to " << options_.obs_path << " ("
                << snap.metrics.size() << " metrics)\n";
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write obs registry: %s\n", e.what());
    }
  }
  if (wants_obs() && wants_metrics() && record_ != nullptr) {
    // Embed the registry scrape in the run record as obs/* metrics so
    // hpcx_compare diffs runtime-internals counters alongside results.
    // Only under --obs-out: the scrape includes wall-clock counters that
    // vary run to run, and default records must stay comparable (the
    // sweep fixture diffs a cold run against a warm-cache one).
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    for (const obs::MetricValue& m : snap.metrics) {
      const double v = m.kind == obs::MetricKind::kGauge
                           ? m.gauge
                           : static_cast<double>(m.count);
      record_->add_metric("obs/" + m.name, v, "", metrics::Better::kHigher);
    }
  }
  if (cache_ != nullptr) {
    // Report and persist the sweep-cache outcome. The hit-rate metrics
    // are only recorded when a cache is attached, so cacheless records
    // stay comparable across commits.
    const report::SweepStats totals =
        executor_ != nullptr ? executor_->totals() : report::SweepStats{};
    if (wants_metrics() && record_ != nullptr && totals.points > 0) {
      record_->add_metric("sweep/points",
                          static_cast<double>(totals.points), "points",
                          metrics::Better::kHigher);
      record_->add_metric("sweep/cache_hits",
                          static_cast<double>(totals.cache_hits), "points",
                          metrics::Better::kHigher);
      record_->add_metric("sweep/cache_hit_rate", totals.hit_rate(), "",
                          metrics::Better::kHigher);
    }
    try {
      cache_->flush();
      std::cout << "sweep cache: " << totals.cache_hits << "/"
                << totals.points << " points from cache; " << cache_->size()
                << " entries in " << cache_->path() << "\n";
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write sweep cache: %s\n", e.what());
    }
  }
  if (!wants_metrics() || record_ == nullptr) return;
  try {
    record_->write_json(options_.metrics_path);
    std::cout << "run record written to " << options_.metrics_path << " ("
              << record_->metrics.size() << " metrics; timer overhead "
              << record_->timer.overhead_s * 1e9 << " ns, resolution "
              << record_->timer.resolution_s * 1e9 << " ns)\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to write run record: %s\n", e.what());
  }
}

metrics::RunRecord& Runner::record() const {
  if (record_ == nullptr) {
    record_ = std::make_unique<metrics::RunRecord>();
    record_->tool = tool_.empty() ? what_ : tool_;
    record_->machine = options_.machine;  // may be empty: default sweep
    record_->cpus = options_.cpus;
    record_->env = metrics::capture_environment();
    record_->env.eager_max_bytes = options_.eager_max_bytes;
    record_->env.repeats = options_.repeats;
    record_->timer = metrics::calibrate_timer();
  }
  return *record_;
}

mach::MachineConfig Runner::machine() const {
  for (auto& m : mach::all_machines())
    if (m.short_name == options_.machine) return m;
  for (auto& m : mach::future_machines())
    if (m.short_name == options_.machine) return m;
  if (options_.machine == "dell_xeon_wide") return mach::dell_xeon_wide();
  throw ConfigError("unknown machine: " + options_.machine +
                    " (try hpcx_cli --list-machines)");
}

void Runner::emit(const Table& table) const {
  table.print(std::cout);
  if (wants_metrics()) record().add_table_metrics(table);
  if (options_.csv_path.empty()) return;
  std::ofstream csv(options_.csv_path, std::ios::app);
  if (!csv) throw ConfigError("cannot open CSV file: " + options_.csv_path);
  table.print_csv(csv);
}

report::SweepExecutor& Runner::executor() const {
  if (executor_ == nullptr) {
    report::SweepExecutor::Config config;
    config.jobs = options_.jobs;
    config.sim_workers = options_.sim_workers;
    config.cache = cache_.get();
    executor_ = std::make_unique<report::SweepExecutor>(config);
  }
  return *executor_;
}

report::ResultCache* Runner::cache() const { return cache_.get(); }

report::SweepRun Runner::run_sweep(const report::SweepSpec& spec) const {
  return executor().run(report::enumerate(spec));
}

report::FigureOptions Runner::figure_options() const {
  report::FigureOptions figure_options;
  figure_options.machine = options_.machine;
  figure_options.cpus = options_.cpus;
  figure_options.repetitions = options_.repeats;
  figure_options.executor = &executor();
  return figure_options;
}

void Runner::write_trace(const trace::Recorder& recorder) const {
  std::ofstream out(options_.trace_path);
  if (!out)
    throw ConfigError("cannot open trace file: " + options_.trace_path);
  trace::write_chrome_trace(
      out, recorder,
      cp_report_ != nullptr && cp_report_->ok ? &cp_report_->overlay
                                              : nullptr);
  std::cout << "trace written to " << options_.trace_path << "\n";
}

int Runner::run_imb_figure(const std::string& title, imb::BenchmarkId id,
                           std::size_t msg_bytes, bool as_bandwidth) const {
  const report::SweepSpec spec = report::imb_figure_spec(
      title, id, msg_bytes, as_bandwidth, figure_options());
  emit(report::imb_figure_table(spec, run_sweep(spec)));

  if (!wants_trace() && !wants_metrics() && !wants_obs() &&
      !options_.critical_path)
    return 0;
  // Trace one representative operating point rather than the whole
  // sweep: the selected machine (or the figure's first) at --cpus (or a
  // small default the machine can host). With --metrics-out the point
  // is measured --repeats times so the record carries min/avg/max/CoV
  // across repeats, and the recorder's accumulated per-rank time
  // buckets land in the record. With --critical-path the last
  // repetition's run is profiled (the schedule is identical either way)
  // and the ranked table printed.
  const mach::MachineConfig m =
      has_machine() ? machine() : report::imb_figure_machines().front();
  const int cpus =
      options_.cpus > 0 ? options_.cpus : std::min(16, m.max_cpus);
  trace::Recorder recorder(cpus);
  report::MeasureOptions measure_options;
  measure_options.repetitions = options_.repeats;
  measure_options.recorder = &recorder;
  measure_options.makespan_s = &repr_makespan_s_;
  if (options_.critical_path) {
    cp_report_ = std::make_unique<obs::CriticalPathReport>();
    measure_options.critical_path = cp_report_.get();
  }
  Stats t_avg;
  imb::ImbResult last{};
  const int reps = wants_metrics() ? options_.repeats : 1;
  for (int rep = 0; rep < reps; ++rep) {
    last = measure_imb(m, cpus, id, msg_bytes, measure_options);
    t_avg.add(last.t_avg_s);
  }
  if (cp_report_ != nullptr) emit(cp_report_->table());
  if (wants_metrics()) {
    metrics::RunRecord& rec = record();
    rec.env.clock = recorder.virtual_time() ? "virtual" : "wall";
    rec.set_rank_buckets(recorder);
    const std::string base =
        title + "/repr " + m.short_name + " x" + std::to_string(cpus);
    metrics::Metric& t = rec.add_metric(base + "/t_avg", t_avg.mean(), "s",
                                        metrics::Better::kLower);
    t.repeats = t_avg.count();
    t.min = t_avg.min();
    t.max = t_avg.max();
    t.cov = t_avg.mean() > 0.0 ? t_avg.stddev() / t_avg.mean() : 0.0;
    rec.add_metric(base + "/t_max", last.t_max_s, "s",
                   metrics::Better::kLower);
    if (last.bandwidth_Bps > 0.0)
      rec.add_metric(base + "/bandwidth", last.bandwidth_Bps, "B/s",
                     metrics::Better::kHigher);
  }
  if (wants_trace()) write_trace(recorder);
  return 0;
}

}  // namespace hpcx::bench
