// Extension: the five additional architectures the paper's conclusion
// promised to evaluate ("Linux clusters with different networks, IBM
// Blue Gene/P, Cray XT4, Cray X1E and a cluster of IBM POWER5+"),
// run through the same IMB 1 MB battery and the HPCC balance metrics.
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/future.hpp"
#include "report/series.hpp"

int main() {
  using namespace hpcx;
  constexpr int kCpus = 128;

  // IMB 1 MB battery.
  Table imb_table("Future systems: IMB at 1 MB, " + std::to_string(kCpus) +
                  " CPUs");
  std::vector<std::string> header{"Benchmark"};
  const auto machines = mach::future_machines();
  for (const auto& m : machines) header.push_back(m.name);
  imb_table.set_header(std::move(header));
  for (const auto id :
       {imb::BenchmarkId::kBarrier, imb::BenchmarkId::kAllreduce,
        imb::BenchmarkId::kAlltoall, imb::BenchmarkId::kBcast,
        imb::BenchmarkId::kSendrecv}) {
    std::vector<std::string> row{imb::to_string(id)};
    for (const auto& m : machines) {
      const int cpus = std::min(kCpus, m.max_cpus);
      const auto r = report::measure_imb(
          m, cpus, id, id == imb::BenchmarkId::kBarrier ? 0 : (1 << 20));
      if (id == imb::BenchmarkId::kSendrecv)
        row.push_back(format_bandwidth(r.bandwidth_Bps));
      else
        row.push_back(format_fixed(r.t_avg_s * 1e6, 1) + " us");
    }
    imb_table.add_row(std::move(row));
  }
  imb_table.print(std::cout);

  // HPCC balance view (the paper's Figs 2/4 analysis on the new set).
  Table bal("Future systems: HPCC balance at " + std::to_string(kCpus) +
            " CPUs");
  bal.set_header({"Machine", "G-HPL (Tflop/s)", "RingBW/HPL (B/kFlop)",
                  "Stream/HPL (B/F)"});
  for (const auto& m : machines) {
    const int cpus = std::min(kCpus, m.max_cpus);
    hpcc::HpccParts parts;
    parts.ptrans = parts.random_access = parts.fft = false;
    const auto r = hpcc::run_hpcc_sim(m, cpus, {}, parts);
    bal.add_row({m.name, format_fixed(r.g_hpl_flops / 1e12, 4),
                 format_fixed(r.ring_bw_Bps * cpus / r.g_hpl_flops * 1e3, 1),
                 format_fixed(r.ep_stream_copy_Bps * cpus / r.g_hpl_flops,
                              2)});
  }
  bal.add_note("torus machines (BG/P, XT4) trade bisection for cost and "
               "scale; the GigE cluster anchors the low end — the same "
               "balance story the paper tells for the 2006 set");
  bal.print(std::cout);
  return 0;
}
