// Extension: the five additional architectures the paper's conclusion
// promised to evaluate ("Linux clusters with different networks, IBM
// Blue Gene/P, Cray XT4, Cray X1E and a cluster of IBM POWER5+"),
// run through the same IMB 1 MB battery and the HPCC balance metrics.
// See harness.hpp for the shared flags.
#include <algorithm>

#include "core/units.hpp"
#include "harness.hpp"
#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/future.hpp"
#include "report/series.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "Future systems: IMB battery + HPCC balance");
  const int kCpus = runner.options().cpus > 0 ? runner.options().cpus : 128;

  std::vector<mach::MachineConfig> machines = mach::future_machines();
  if (runner.has_machine())
    std::erase_if(machines, [&](const mach::MachineConfig& m) {
      return m.short_name != runner.options().machine;
    });

  // IMB 1 MB battery.
  Table imb_table("Future systems: IMB at 1 MB, " + std::to_string(kCpus) +
                  " CPUs");
  std::vector<std::string> header{"Benchmark"};
  for (const auto& m : machines) header.push_back(m.name);
  imb_table.set_header(std::move(header));
  report::MeasureOptions measure_options;
  measure_options.repetitions = runner.options().repeats;
  for (const auto id :
       {imb::BenchmarkId::kBarrier, imb::BenchmarkId::kAllreduce,
        imb::BenchmarkId::kAlltoall, imb::BenchmarkId::kBcast,
        imb::BenchmarkId::kSendrecv}) {
    std::vector<std::string> row{imb::to_string(id)};
    for (const auto& m : machines) {
      const int cpus = std::min(kCpus, m.max_cpus);
      const auto r = report::measure_imb(
          m, cpus, id, id == imb::BenchmarkId::kBarrier ? 0 : (1 << 20),
          measure_options);
      if (id == imb::BenchmarkId::kSendrecv)
        row.push_back(format_bandwidth(r.bandwidth_Bps));
      else
        row.push_back(format_fixed(r.t_avg_s * 1e6, 1) + " us");
    }
    imb_table.add_row(std::move(row));
  }
  runner.emit(imb_table);

  // HPCC balance view (the paper's Figs 2/4 analysis on the new set).
  Table bal("Future systems: HPCC balance at " + std::to_string(kCpus) +
            " CPUs");
  bal.set_header({"Machine", "G-HPL (Tflop/s)", "RingBW/HPL (B/kFlop)",
                  "Stream/HPL (B/F)"});
  for (const auto& m : machines) {
    const int cpus = std::min(kCpus, m.max_cpus);
    hpcc::HpccParts parts;
    parts.ptrans = parts.random_access = parts.fft = false;
    const auto r = hpcc::run_hpcc_sim(m, cpus, {}, parts);
    bal.add_row({m.name, format_fixed(r.g_hpl_flops / 1e12, 4),
                 format_fixed(r.ring_bw_Bps * cpus / r.g_hpl_flops * 1e3, 1),
                 format_fixed(r.ep_stream_copy_Bps * cpus / r.g_hpl_flops,
                              2)});
  }
  bal.add_note("torus machines (BG/P, XT4) trade bisection for cost and "
               "scale; the GigE cluster anchors the low end — the same "
               "balance story the paper tells for the 2006 set");
  runner.emit(bal);
  return 0;
}
