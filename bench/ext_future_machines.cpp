// Extension: the five additional architectures the paper's conclusion
// promised to evaluate ("Linux clusters with different networks, IBM
// Blue Gene/P, Cray XT4, Cray X1E and a cluster of IBM POWER5+"),
// run through the same IMB 1 MB battery and the HPCC balance metrics.
// The battery and the balance view are each one sweep batch (per-machine
// CPU counts, so the points are built directly), executed on the shared
// --jobs/--cache executor. See harness.hpp for the shared flags.
#include <algorithm>

#include "core/units.hpp"
#include "harness.hpp"
#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/future.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "Future systems: IMB battery + HPCC balance");
  const int kCpus = runner.options().cpus > 0 ? runner.options().cpus : 128;

  std::vector<mach::MachineConfig> machines = mach::future_machines();
  if (runner.has_machine())
    std::erase_if(machines, [&](const mach::MachineConfig& m) {
      return m.short_name != runner.options().machine;
    });

  // IMB 1 MB battery: benchmark-major point batch (each machine capped
  // at its own CPU count), mirroring the table's row-major cells.
  const imb::BenchmarkId battery[] = {
      imb::BenchmarkId::kBarrier, imb::BenchmarkId::kAllreduce,
      imb::BenchmarkId::kAlltoall, imb::BenchmarkId::kBcast,
      imb::BenchmarkId::kSendrecv};
  std::vector<report::SweepPoint> points;
  for (const auto id : battery) {
    for (const auto& m : machines) {
      report::SweepPoint pt;
      pt.workload = report::SweepWorkload::kImb;
      pt.workload_name = std::string("imb/") + imb::to_string(id);
      pt.imb_id = id;
      pt.machine = m;
      pt.np = std::min(kCpus, m.max_cpus);
      pt.msg_bytes = id == imb::BenchmarkId::kBarrier ? 0 : (1 << 20);
      pt.repetitions = runner.options().repeats;
      points.push_back(std::move(pt));
    }
  }
  const report::SweepRun imb_run = runner.executor().run(std::move(points));

  Table imb_table("Future systems: IMB at 1 MB, " + std::to_string(kCpus) +
                  " CPUs");
  std::vector<std::string> header{"Benchmark"};
  for (const auto& m : machines) header.push_back(m.name);
  imb_table.set_header(std::move(header));
  for (std::size_t b = 0; b < std::size(battery); ++b) {
    std::vector<std::string> row{imb::to_string(battery[b])};
    for (std::size_t i = 0; i < machines.size(); ++i) {
      const report::SweepResult& r =
          imb_run.results[b * machines.size() + i];
      if (battery[b] == imb::BenchmarkId::kSendrecv)
        row.push_back(format_bandwidth(r.get("bandwidth_Bps")));
      else
        row.push_back(format_fixed(r.get("t_avg_s") * 1e6, 1) + " us");
    }
    imb_table.add_row(std::move(row));
  }
  runner.emit(imb_table);

  // HPCC balance view (the paper's Figs 2/4 analysis on the new set).
  std::vector<report::SweepPoint> hpcc_points;
  for (const auto& m : machines) {
    report::SweepPoint pt;
    pt.workload = report::SweepWorkload::kHpcc;
    pt.workload_name = "hpcc";
    pt.machine = m;
    pt.np = std::min(kCpus, m.max_cpus);
    pt.parts.ptrans = pt.parts.random_access = pt.parts.fft = false;
    hpcc_points.push_back(std::move(pt));
  }
  const report::SweepRun bal_run =
      runner.executor().run(std::move(hpcc_points));

  Table bal("Future systems: HPCC balance at " + std::to_string(kCpus) +
            " CPUs");
  bal.set_header({"Machine", "G-HPL (Tflop/s)", "RingBW/HPL (B/kFlop)",
                  "Stream/HPL (B/F)"});
  for (std::size_t i = 0; i < machines.size(); ++i) {
    const report::SweepResult& r = bal_run.results[i];
    const int cpus = bal_run.points[i].np;
    const double hpl = r.get("g_hpl_flops");
    bal.add_row({machines[i].name, format_fixed(hpl / 1e12, 4),
                 format_fixed(r.get("ring_bw_Bps") * cpus / hpl * 1e3, 1),
                 format_fixed(r.get("ep_stream_copy_Bps") * cpus / hpl, 2)});
  }
  bal.add_note("torus machines (BG/P, XT4) trade bisection for cost and "
               "scale; the GigE cluster anchors the low end — the same "
               "balance story the paper tells for the 2006 set");
  runner.emit(bal);
  return 0;
}
