// Parallel-DES scaling benchmarks: the conservative multi-LP engine on
// a fig06-shape (IMB Barrier) workload at rank counts far beyond the
// paper's 2048-CPU ceiling. Three questions are measured:
//
//   1. scaling — wall time per simulated barrier at 4Ki/16Ki ranks as
//      the host worker count grows (BM_PdesBarrier), plus single-shot
//      wide points at 256Ki and 1Mi ranks with 8 workers (the rank
//      counts the segmented merge + sharded flush were built for);
//   2. agreement — at 64Ki ranks the 8-worker makespan must be
//      *bit-identical* to the single-worker one (BM_PdesAgreement64Ki
//      fails the run otherwise), pinning the acceptance bar of the
//      parallel-engine PR at benchmark scale, where the unit tests
//      cannot afford to go;
//   3. serial share — BM_PdesMergeWall reports the per-run flush and
//      order-merge wall seconds at the 64Ki point as counters, so
//      hpcx_compare diffs of BENCH_pdes.json quantify the Amdahl
//      bottleneck directly rather than inferring it from total wall.
//
// The machine model is dell_xeon_wide: the paper's dell_xeon stretched
// to 512 CPUs per node, so 64Ki ranks fit in a 128-node fat tree —
// wide nodes keep the topology build cheap while the rank count
// stresses fibers, queues and the cross-LP merge. Baseline lives in
// BENCH_pdes.json at the repo root (regenerate with
// tools/bench_engine.sh).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "machine/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

double simulate_barrier(int ranks, int workers,
                        hpcx::trace::Recorder* recorder = nullptr) {
  hpcx::xmpi::SimRunOptions options;
  options.sim_workers = workers;
  options.recorder = recorder;
  const auto r = hpcx::xmpi::run_on_machine(
      hpcx::mach::dell_xeon_wide(), ranks,
      [](hpcx::xmpi::Comm& c) { c.barrier(); }, options);
  return r.makespan_s;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

void BM_PdesBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_barrier(ranks, workers));
  }
  // Ranks per second of host wall time: the figure-sweep planning
  // number ("how wide a machine can one point simulate per second").
  state.SetItemsProcessed(state.iterations() * ranks);
}
BENCHMARK(BM_PdesBarrier)
    ->ArgsProduct({{4096, 16384}, {1, 2, 4, 8}})
    ->ArgNames({"ranks", "workers"})
    ->Unit(benchmark::kMillisecond);
// Wide scaling points: one shot each — a 1Mi-rank barrier is minutes of
// wall time, so the value of the baseline is the trend, not the noise
// floor. 8 workers matches the figure-sweep operating point.
BENCHMARK(BM_PdesBarrier)
    ->Args({1 << 18, 8})
    ->Args({1 << 20, 8})
    ->ArgNames({"ranks", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_PdesAgreement64Ki(benchmark::State& state) {
  constexpr int kRanks = 1 << 16;
  // The serial reference is computed once — it is the same double every
  // time by the engine-determinism contract.
  static const std::uint64_t serial_bits = bits_of(simulate_barrier(kRanks, 1));
  for (auto _ : state) {
    const double parallel = simulate_barrier(kRanks, 8);
    if (bits_of(parallel) != serial_bits) {
      state.SkipWithError("64Ki-rank 8-worker makespan diverged from serial");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRanks);
}
BENCHMARK(BM_PdesAgreement64Ki)->Unit(benchmark::kMillisecond);

// The single-threaded share of the window loop: flush wall seconds and
// the order-merge portion, read from the engine stats of a 64Ki-rank
// 8-worker run. These counters are the acceptance-bar numbers of the
// segmented-merge/sharded-flush work; regressions here show up directly
// in hpcx_compare output as counter deltas.
void BM_PdesMergeWall(benchmark::State& state) {
  constexpr int kRanks = 1 << 16;
  double flush_s = 0.0, merge_s = 0.0;
  for (auto _ : state) {
    // One ring slot per rank: engine stats are wanted, event rings not.
    hpcx::trace::Recorder rec(kRanks, 1);
    benchmark::DoNotOptimize(simulate_barrier(kRanks, 8, &rec));
    flush_s += rec.engine_stats().flush_wall_s;
    merge_s += rec.engine_stats().merge_wall_s;
  }
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["flush_wall_s"] = benchmark::Counter(flush_s, avg);
  state.counters["merge_wall_s"] = benchmark::Counter(merge_s, avg);
  state.SetItemsProcessed(state.iterations() * kRanks);
}
BENCHMARK(BM_PdesMergeWall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
