// Parallel-DES scaling benchmarks: the conservative multi-LP engine on
// a fig06-shape (IMB Barrier) workload at rank counts far beyond the
// paper's 2048-CPU ceiling. Two questions are measured:
//
//   1. scaling — wall time per simulated barrier at 4Ki/16Ki ranks as
//      the host worker count grows (BM_PdesBarrier);
//   2. agreement — at 64Ki ranks the 8-worker makespan must be
//      *bit-identical* to the single-worker one (BM_PdesAgreement64Ki
//      fails the run otherwise), pinning the acceptance bar of the
//      parallel-engine PR at benchmark scale, where the unit tests
//      cannot afford to go.
//
// The machine model is the paper's dell_xeon stretched to 512 CPUs per
// node, so 64Ki ranks fit in a 128-node fat tree — wide nodes keep the
// topology build cheap while the rank count stresses fibers, queues and
// the cross-LP merge. Baseline lives in BENCH_pdes.json at the repo
// root (regenerate with tools/bench_engine.sh).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

hpcx::mach::MachineConfig wide_machine() {
  hpcx::mach::MachineConfig m = hpcx::mach::dell_xeon();
  m.cpus_per_node = 512;
  m.max_cpus = 1 << 20;
  return m;
}

double simulate_barrier(int ranks, int workers) {
  hpcx::xmpi::SimRunOptions options;
  options.sim_workers = workers;
  const auto r = hpcx::xmpi::run_on_machine(
      wide_machine(), ranks, [](hpcx::xmpi::Comm& c) { c.barrier(); },
      options);
  return r.makespan_s;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

void BM_PdesBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_barrier(ranks, workers));
  }
  // Ranks per second of host wall time: the figure-sweep planning
  // number ("how wide a machine can one point simulate per second").
  state.SetItemsProcessed(state.iterations() * ranks);
}
BENCHMARK(BM_PdesBarrier)
    ->ArgsProduct({{4096, 16384}, {1, 2, 4, 8}})
    ->ArgNames({"ranks", "workers"})
    ->Unit(benchmark::kMillisecond);

void BM_PdesAgreement64Ki(benchmark::State& state) {
  constexpr int kRanks = 1 << 16;
  // The serial reference is computed once — it is the same double every
  // time by the engine-determinism contract.
  static const std::uint64_t serial_bits = bits_of(simulate_barrier(kRanks, 1));
  for (auto _ : state) {
    const double parallel = simulate_barrier(kRanks, 8);
    if (bits_of(parallel) != serial_bits) {
      state.SkipWithError("64Ki-rank 8-worker makespan diverged from serial");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRanks);
}
BENCHMARK(BM_PdesAgreement64Ki)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
