// Regenerates the paper's Figs 3-4: accumulated EP-STREAM copy and the
// Byte/Flop balance over the HPL sweep of each machine.
#include <iostream>

#include "report/hpcc_figures.hpp"

int main() {
  hpcx::report::print_fig03_04_stream_vs_hpl(std::cout);
  return 0;
}
