// Regenerates the paper's Figs 3-4: accumulated EP-STREAM copy and the
// Byte/Flop balance over the HPL sweep of each machine. See harness.hpp
// for the shared flags (--machine/--cpus/--csv/...).
#include "harness.hpp"
#include "report/hpcc_figures.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Figs 3-4: accumulated EP-STREAM copy vs HPL");
  runner.emit(hpcx::report::fig03_04_table(runner.figure_options()));
  return 0;
}
