#!/bin/sh
# Observability fixture, end to end through a real figure binary:
#   1. a fig06 operating point with --obs-out + --critical-path must
#      produce a valid hpcx-obs/1 scrape whose embedded critical-path
#      length equals the reported makespan bit-exactly (json_check
#      --obs), plus a well-formed Chrome trace with the path overlay;
#   2. the registry instrumentation on the serial engine's hot path must
#      stay within 2% of the committed BM_SimulatedAllreduce/256
#      baseline (BENCH_engine.json, regenerated on the CI host via
#      tools/bench_engine.sh) — hpcx_compare reads the google-benchmark
#      JSON directly.
#
# usage: obs_fixture.sh <fig06-binary> <json_check> <hpcx_compare>
#                       <bench_des> <baseline.json> <workdir>
set -e
FIG=$1
CHECK=$2
COMPARE=$3
BENCH=$4
BASELINE=$5
OUT=$6

rm -rf "$OUT"
mkdir -p "$OUT"

"$FIG" --machine dell_xeon --cpus 16 --obs-out "$OUT/obs.json" \
    --critical-path --trace-out "$OUT/trace.json" --progress \
    > "$OUT/run.txt" 2> "$OUT/progress.txt"
"$CHECK" --obs "$OUT/obs.json"
"$CHECK" "$OUT/trace.json"
grep -q "Critical path:" "$OUT/run.txt"
grep -q "hpcx critical path" "$OUT/trace.json"
grep -q "\[progress\]" "$OUT/progress.txt"

"$BENCH" --benchmark_filter='BM_SimulatedAllreduce/256$' \
    --benchmark_repetitions=3 --benchmark_min_time=0.05 \
    --benchmark_out="$OUT/bench.json" --benchmark_out_format=json \
    > "$OUT/bench.txt"
"$COMPARE" "$BASELINE" "$OUT/bench.json" --threshold 0.02

echo "obs fixture: scrape valid, path == makespan, hot-path overhead gated"
