// Extension (the paper's stated future work): one-sided GET/PUT
// performance with fence synchronisation, across the five machines —
// unidirectional put and get bandwidth between two nodes, plus the cost
// of an empty fence epoch. Each machine is one kCustom sweep point (the
// closure runs its own isolated world), so --jobs/--cache apply. See
// harness.hpp for the shared flags.
#include <algorithm>

#include "core/units.hpp"
#include "harness.hpp"
#include "machine/registry.hpp"
#include "xmpi/one_sided.hpp"
#include "xmpi/sim_comm.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  using xmpi::Comm;
  constexpr std::size_t kMsg = 1 << 20;
  bench::Runner runner(argc, argv,
                       "One-sided put/get bandwidth and fence cost");

  std::vector<report::SweepPoint> points;
  for (const auto& m : mach::paper_machines()) {
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    const int cpus = std::min(16, m.max_cpus);
    const int peer = std::min(m.cpus_per_node, cpus - 1);  // first off-node
    report::SweepPoint pt;
    pt.workload = report::SweepWorkload::kCustom;
    pt.workload_name = "ext/one_sided";
    pt.machine = m;
    pt.np = cpus;
    pt.msg_bytes = kMsg;
    pt.run = [m, cpus, peer](trace::Recorder*) {
      double put_bw = 0, get_bw = 0, fence_us = 0;
      xmpi::run_on_machine(m, cpus, [&](Comm& c) {
        xmpi::Window win(c, xmpi::phantom_mbuf(kMsg), 1);
        win.fence();  // open epoch boundary

        c.barrier();
        double t0 = c.now();
        if (c.rank() == 0) win.put(peer, 0, xmpi::phantom_cbuf(kMsg));
        win.fence();
        const double t_put = c.now() - t0;

        c.barrier();
        t0 = c.now();
        if (c.rank() == 0) win.get(peer, 0, xmpi::phantom_mbuf(kMsg));
        win.fence();
        const double t_get = c.now() - t0;

        c.barrier();
        t0 = c.now();
        for (int i = 0; i < 4; ++i) win.fence();
        const double t_fence = (c.now() - t0) / 4;

        if (c.rank() == 0) {
          put_bw = static_cast<double>(kMsg) / t_put;
          get_bw = static_cast<double>(kMsg) / t_get;
          fence_us = t_fence * 1e6;
        }
      });
      report::SweepResult out;
      out.set("put_Bps", put_bw);
      out.set("get_Bps", get_bw);
      out.set("fence_us", fence_us);
      return out;
    };
    points.push_back(std::move(pt));
  }
  const report::SweepRun run = runner.executor().run(std::move(points));

  Table t("One-sided (fence sync): 1 MB put/get between two nodes, and "
          "empty-fence cost (16 CPUs)");
  t.set_header({"Machine", "Put bandwidth", "Get bandwidth", "Fence time"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const report::SweepResult& r = run.results[i];
    t.add_row({run.points[i].machine.name, format_bandwidth(r.get("put_Bps")),
               format_bandwidth(r.get("get_Bps")),
               format_fixed(r.get("fence_us"), 1) + " us"});
  }
  t.add_note("get pays one extra network traversal (request + reply), so "
             "its effective bandwidth trails put — matching the MPI-2 "
             "measurements the paper planned to add");
  runner.emit(t);
  return 0;
}
