// Regenerates the paper's barrier figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include "harness.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Fig 6: IMB Barrier, execution time vs CPUs");
  return runner.run_imb_figure("Fig 6: IMB Barrier, execution time vs CPUs",
                               hpcx::imb::BenchmarkId::kBarrier, 0, false);
}
