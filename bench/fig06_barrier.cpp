// Regenerates the paper's barrier figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig06_barrier(std::cout);
  return 0;
}
