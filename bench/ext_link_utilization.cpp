// Extension: network hotspot analysis. For a 1 MB Alltoall at 64 CPUs,
// list the busiest links of each machine's fabric — showing *where* each
// topology saturates (tapered Clos spines on the Xeon, node downlinks on
// the crossbar, core links on the fat tree). This is the diagnostic view
// behind the paper's "total communications capacity" discussion. Each
// machine is one kCustom sweep point (the hottest-link rows travel in
// the SweepResult, so --cache memoises them too).
//
// With --trace-out the selected machine's run (or the first paper
// machine's) is re-run with a recorder — simulation is deterministic, so
// the traced run matches the sweep point — and the per-link
// utilisation/backlog curves are exported as Perfetto counter tracks.
#include "core/units.hpp"
#include "harness.hpp"
#include "machine/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

constexpr std::size_t kTopLinks = 5;

void alltoall_1mb(hpcx::xmpi::Comm& c) {
  const std::size_t total =
      (std::size_t{1} << 20) * static_cast<std::size_t>(c.size());
  c.alltoall(hpcx::xmpi::phantom_cbuf(total), hpcx::xmpi::phantom_mbuf(total));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "Hottest links per machine, Alltoall 1 MB");
  const int cpus = runner.options().cpus > 0 ? runner.options().cpus : 64;

  std::vector<report::SweepPoint> points;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < cpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    report::SweepPoint pt;
    pt.workload = report::SweepWorkload::kCustom;
    pt.workload_name = "ext/link_utilization";
    pt.machine = m;
    pt.np = cpus;
    pt.msg_bytes = 1 << 20;
    pt.run = [m, cpus](trace::Recorder*) {
      const auto run = xmpi::run_on_machine(m, cpus, alltoall_1mb);
      report::SweepResult out;
      out.set("makespan_s", run.makespan_s);
      out.set("internode_messages",
              static_cast<double>(run.internode_messages));
      std::size_t shown = 0;
      for (const auto& l : run.hottest_links) {
        if (shown >= kTopLinks) break;
        const std::string key = "link" + std::to_string(shown);
        out.set_text(key, l.from + " -> " + l.to);
        out.set(key + "_messages", static_cast<double>(l.messages));
        out.set(key + "_bytes", static_cast<double>(l.bytes));
        out.set(key + "_busy_s", l.busy_s);
        out.set(key + "_queued_s", l.queued_s);
        ++shown;
      }
      out.set("links", static_cast<double>(shown));
      return out;
    };
    points.push_back(std::move(pt));
  }
  const report::SweepRun run = runner.executor().run(std::move(points));

  // Traced representative: first qualifying machine (or the --machine
  // selection), re-run with a recorder attached.
  if ((runner.wants_trace() || runner.wants_metrics()) &&
      !run.points.empty()) {
    const mach::MachineConfig& m = run.points.front().machine;
    xmpi::SimRunOptions sim_options;
    trace::Recorder recorder(cpus);
    sim_options.recorder = &recorder;
    const auto traced =
        xmpi::run_on_machine(m, cpus, alltoall_1mb, sim_options);
    if (runner.wants_metrics()) {
      runner.record().env.clock = "virtual";
      runner.record().set_rank_buckets(recorder);
      runner.record().add_metric("alltoall 1MB x" + std::to_string(cpus) +
                                     "/" + m.short_name + "/makespan",
                                 traced.makespan_s, "s",
                                 metrics::Better::kLower);
    }
    if (runner.wants_trace()) runner.write_trace(recorder);
  }

  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const mach::MachineConfig& m = run.points[i].machine;
    const report::SweepResult& r = run.results[i];
    Table t("Hottest links: " + m.name + " (" + m.network_name +
            "), Alltoall 1 MB x " + std::to_string(cpus) + " CPUs");
    t.set_header({"link", "messages", "volume", "busy", "queued"});
    const auto links = static_cast<std::size_t>(r.get("links"));
    for (std::size_t l = 0; l < links; ++l) {
      const std::string key = "link" + std::to_string(l);
      const std::string* name = r.text(key);
      t.add_row({name != nullptr ? *name : "?",
                 std::to_string(
                     static_cast<std::uint64_t>(r.get(key + "_messages"))),
                 format_bytes(
                     static_cast<std::uint64_t>(r.get(key + "_bytes"))),
                 format_time(r.get(key + "_busy_s")),
                 format_time(r.get(key + "_queued_s"))});
    }
    t.add_note("makespan " + format_time(r.get("makespan_s")) + ", " +
               std::to_string(static_cast<std::uint64_t>(
                   r.get("internode_messages"))) +
               " inter-node messages");
    runner.emit(t);
  }
  return 0;
}
