// Extension: network hotspot analysis. For a 1 MB Alltoall at 64 CPUs,
// list the busiest links of each machine's fabric — showing *where* each
// topology saturates (tapered Clos spines on the Xeon, node downlinks on
// the crossbar, core links on the fat tree). This is the diagnostic view
// behind the paper's "total communications capacity" discussion.
//
// With --trace-out the selected machine's run (or the first paper
// machine's) is recorded and the per-link utilisation/backlog curves are
// exported as Perfetto counter tracks.
#include "core/units.hpp"
#include "harness.hpp"
#include "machine/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "Hottest links per machine, Alltoall 1 MB");
  const int cpus = runner.options().cpus > 0 ? runner.options().cpus : 64;
  bool traced = false;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < cpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    const auto rank_fn = [](xmpi::Comm& c) {
      const std::size_t total =
          (std::size_t{1} << 20) * static_cast<std::size_t>(c.size());
      c.alltoall(xmpi::phantom_cbuf(total), xmpi::phantom_mbuf(total));
    };
    xmpi::SimRunOptions sim_options;
    trace::Recorder recorder(cpus);
    // Trace the first qualifying machine (or the --machine selection):
    // its link busy/backlog counters become Perfetto counter tracks.
    const bool trace_this =
        (runner.wants_trace() || runner.wants_metrics()) && !traced;
    if (trace_this) sim_options.recorder = &recorder;
    const auto run = xmpi::run_on_machine(m, cpus, rank_fn, sim_options);
    if (trace_this) {
      traced = true;
      if (runner.wants_metrics()) {
        runner.record().env.clock = "virtual";
        runner.record().set_rank_buckets(recorder);
        runner.record().add_metric("alltoall 1MB x" + std::to_string(cpus) +
                                       "/" + m.short_name + "/makespan",
                                   run.makespan_s, "s",
                                   metrics::Better::kLower);
      }
      if (runner.wants_trace()) runner.write_trace(recorder);
    }
    Table t("Hottest links: " + m.name + " (" + m.network_name +
            "), Alltoall 1 MB x " + std::to_string(cpus) + " CPUs");
    t.set_header({"link", "messages", "volume", "busy", "queued"});
    std::size_t shown = 0;
    for (const auto& l : run.hottest_links) {
      if (++shown > 5) break;
      t.add_row({l.from + " -> " + l.to, std::to_string(l.messages),
                 format_bytes(l.bytes), format_time(l.busy_s),
                 format_time(l.queued_s)});
    }
    t.add_note("makespan " + format_time(run.makespan_s) + ", " +
               std::to_string(run.internode_messages) +
               " inter-node messages");
    runner.emit(t);
  }
  return 0;
}
