// Extension: network hotspot analysis. For a 1 MB Alltoall at 64 CPUs,
// list the busiest links of each machine's fabric — showing *where* each
// topology saturates (tapered Clos spines on the Xeon, node downlinks on
// the crossbar, core links on the fat tree). This is the diagnostic view
// behind the paper's "total communications capacity" discussion.
#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

int main() {
  using namespace hpcx;
  constexpr int kCpus = 64;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < kCpus) continue;
    const auto run = xmpi::run_on_machine(m, kCpus, [](xmpi::Comm& c) {
      const std::size_t total =
          (std::size_t{1} << 20) * static_cast<std::size_t>(c.size());
      c.alltoall(xmpi::phantom_cbuf(total), xmpi::phantom_mbuf(total));
    });
    Table t("Hottest links: " + m.name + " (" + m.network_name +
            "), Alltoall 1 MB x " + std::to_string(kCpus) + " CPUs");
    t.set_header({"link", "messages", "volume", "busy", "queued"});
    std::size_t shown = 0;
    for (const auto& l : run.hottest_links) {
      if (++shown > 5) break;
      t.add_row({l.from + " -> " + l.to, std::to_string(l.messages),
                 format_bytes(l.bytes), format_time(l.busy_s),
                 format_time(l.queued_s)});
    }
    t.add_note("makespan " + format_time(run.makespan_s) + ", " +
               std::to_string(run.internode_messages) +
               " inter-node messages");
    t.print(std::cout);
  }
  return 0;
}
