// Regenerates the paper's alltoall figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig12_alltoall(std::cout);
  return 0;
}
