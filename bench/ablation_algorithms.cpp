// Ablation: collective-algorithm choice per network. DESIGN.md calls out
// that the figure shapes depend on the size-based algorithm switches
// production MPIs use; this bench quantifies that by forcing each
// algorithm explicitly and timing it on each simulated machine. Every
// (variant, machine) cell is one kCustom sweep point on the shared
// --jobs/--cache executor. See harness.hpp for the shared flags.
#include <functional>

#include "core/units.hpp"
#include "harness.hpp"
#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

using hpcx::xmpi::Comm;

constexpr std::size_t kMsg = 1 << 20;
constexpr std::size_t kCount = kMsg / 8;
constexpr int kCpus = 64;

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcx;
  using xmpi::AllgatherAlg;
  using xmpi::AllreduceAlg;
  using xmpi::BcastAlg;
  using xmpi::phantom_cbuf;
  using xmpi::phantom_mbuf;
  bench::Runner runner(argc, argv,
                       "Ablation: collective algorithm choice at 1 MB");

  auto bcast_op = [](Comm& c) { c.bcast(phantom_mbuf(kMsg), 0); };
  auto allreduce_op = [](Comm& c) {
    c.allreduce(phantom_cbuf(kCount, xmpi::DType::kF64),
                phantom_mbuf(kCount, xmpi::DType::kF64), xmpi::ROp::kSum);
  };
  auto allgather_op = [](Comm& c) {
    c.allgather(phantom_cbuf(kMsg),
                phantom_mbuf(kMsg * static_cast<std::size_t>(c.size())));
  };

  struct Variant {
    const char* collective;
    const char* algorithm;
    std::function<void(Comm&)> tune;
    std::function<void(Comm&)> op;
  };
  const Variant variants[] = {
      {"Bcast 1MB", "binomial tree",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kBinomial; }, bcast_op},
      {"Bcast 1MB", "van de Geijn (scatter+ring)",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kScatterRing; },
       bcast_op},
      {"Bcast 1MB", "pipelined ring (HPL)",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kPipelinedRing; },
       bcast_op},
      {"Allreduce 1MB", "recursive doubling",
       [](Comm& c) {
         c.tuning().allreduce_alg = AllreduceAlg::kRecursiveDoubling;
       },
       allreduce_op},
      {"Allreduce 1MB", "Rabenseifner (rs+ag)",
       [](Comm& c) { c.tuning().allreduce_alg = AllreduceAlg::kRabenseifner; },
       allreduce_op},
      {"Allgather 1MB", "Bruck dissemination",
       [](Comm& c) { c.tuning().allgather_alg = AllgatherAlg::kBruck; },
       allgather_op},
      {"Allgather 1MB", "ring",
       [](Comm& c) { c.tuning().allgather_alg = AllgatherAlg::kRing; },
       allgather_op},
  };

  std::vector<mach::MachineConfig> machines;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < kCpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    machines.push_back(m);
  }

  // Row-major (variant, machine) point batch; the workload name carries
  // the forced algorithm so each cell has its own cache address.
  std::vector<report::SweepPoint> points;
  for (const auto& v : variants)
    for (const auto& m : machines) {
      report::SweepPoint pt;
      pt.workload = report::SweepWorkload::kCustom;
      pt.workload_name = std::string("ablation/alg/") + v.collective + "/" +
                         v.algorithm;
      pt.machine = m;
      pt.np = kCpus;
      pt.msg_bytes = kMsg;
      pt.run = [m, tune = v.tune, op = v.op](trace::Recorder*) {
        double us = 0;
        xmpi::run_on_machine(m, kCpus, [&](Comm& c) {
          tune(c);
          op(c);  // warm-up
          c.barrier();
          const double t0 = c.now();
          op(c);
          c.barrier();  // cover full delivery, not just initiator sends
          if (c.rank() == 0) us = (c.now() - t0) * 1e6;
        });
        report::SweepResult out;
        out.set("t_us", us);
        return out;
      };
      points.push_back(std::move(pt));
    }
  const report::SweepRun run = runner.executor().run(std::move(points));

  Table t("Ablation: collective algorithm choice at 1 MB, " +
          std::to_string(kCpus) + " CPUs (us/call)");
  std::vector<std::string> header{"Collective", "Algorithm"};
  for (const auto& m : machines) header.push_back(m.name);
  t.set_header(std::move(header));
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    std::vector<std::string> row{variants[v].collective,
                                 variants[v].algorithm};
    for (std::size_t i = 0; i < machines.size(); ++i)
      row.push_back(format_fixed(
          run.results[v * machines.size() + i].get("t_us"), 1));
    t.add_row(std::move(row));
  }
  t.add_note("the size-switched defaults pick the bandwidth-optimal "
             "algorithm at 1 MB; the latency-optimal variants lose by the "
             "factor shown — the switch points are what the paper's "
             "figures implicitly measure");
  runner.emit(t);
  return 0;
}
