// Ablation: collective-algorithm choice per network. DESIGN.md calls out
// that the figure shapes depend on the size-based algorithm switches
// production MPIs use; this bench quantifies that by forcing each
// algorithm explicitly and timing it on each simulated machine.
#include <functional>
#include <iostream>

#include "core/table.hpp"
#include "core/units.hpp"
#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

using hpcx::xmpi::Comm;

constexpr std::size_t kMsg = 1 << 20;
constexpr std::size_t kCount = kMsg / 8;
constexpr int kCpus = 64;

double time_us(const hpcx::mach::MachineConfig& m,
               const std::function<void(Comm&)>& tune,
               const std::function<void(Comm&)>& op) {
  double us = 0;
  hpcx::xmpi::run_on_machine(m, kCpus, [&](Comm& c) {
    tune(c);
    op(c);  // warm-up
    c.barrier();
    const double t0 = c.now();
    op(c);
    c.barrier();  // cover full delivery, not just the initiator's sends
    if (c.rank() == 0) us = (c.now() - t0) * 1e6;
  });
  return us;
}

}  // namespace

int main() {
  using namespace hpcx;
  using xmpi::AllgatherAlg;
  using xmpi::AllreduceAlg;
  using xmpi::BcastAlg;
  using xmpi::phantom_cbuf;
  using xmpi::phantom_mbuf;

  auto bcast_op = [](Comm& c) { c.bcast(phantom_mbuf(kMsg), 0); };
  auto allreduce_op = [](Comm& c) {
    c.allreduce(phantom_cbuf(kCount, xmpi::DType::kF64),
                phantom_mbuf(kCount, xmpi::DType::kF64), xmpi::ROp::kSum);
  };
  auto allgather_op = [](Comm& c) {
    c.allgather(phantom_cbuf(kMsg),
                phantom_mbuf(kMsg * static_cast<std::size_t>(c.size())));
  };

  struct Variant {
    const char* collective;
    const char* algorithm;
    std::function<void(Comm&)> tune;
    std::function<void(Comm&)> op;
  };
  const Variant variants[] = {
      {"Bcast 1MB", "binomial tree",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kBinomial; }, bcast_op},
      {"Bcast 1MB", "van de Geijn (scatter+ring)",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kScatterRing; },
       bcast_op},
      {"Bcast 1MB", "pipelined ring (HPL)",
       [](Comm& c) { c.tuning().bcast_alg = BcastAlg::kPipelinedRing; },
       bcast_op},
      {"Allreduce 1MB", "recursive doubling",
       [](Comm& c) {
         c.tuning().allreduce_alg = AllreduceAlg::kRecursiveDoubling;
       },
       allreduce_op},
      {"Allreduce 1MB", "Rabenseifner (rs+ag)",
       [](Comm& c) { c.tuning().allreduce_alg = AllreduceAlg::kRabenseifner; },
       allreduce_op},
      {"Allgather 1MB", "Bruck dissemination",
       [](Comm& c) { c.tuning().allgather_alg = AllgatherAlg::kBruck; },
       allgather_op},
      {"Allgather 1MB", "ring",
       [](Comm& c) { c.tuning().allgather_alg = AllgatherAlg::kRing; },
       allgather_op},
  };

  hpcx::Table t("Ablation: collective algorithm choice at 1 MB, " +
                std::to_string(kCpus) + " CPUs (us/call)");
  std::vector<std::string> header{"Collective", "Algorithm"};
  std::vector<mach::MachineConfig> machines;
  for (const auto& m : mach::paper_machines())
    if (m.max_cpus >= kCpus) machines.push_back(m);
  for (const auto& m : machines) header.push_back(m.name);
  t.set_header(std::move(header));
  for (const auto& v : variants) {
    std::vector<std::string> row{v.collective, v.algorithm};
    for (const auto& m : machines)
      row.push_back(format_fixed(time_us(m, v.tune, v.op), 1));
    t.add_row(std::move(row));
  }
  t.add_note("the size-switched defaults pick the bandwidth-optimal "
             "algorithm at 1 MB; the latency-optimal variants lose by the "
             "factor shown — the switch points are what the paper's "
             "figures implicitly measure");
  t.print(std::cout);
  return 0;
}
