// Extension: IMB "-multi" mode — the same collective run concurrently by
// disjoint groups sharing the fabric. Shows how much of each machine's
// headline (single-group) number survives when the network is shared,
// which is the regime real mixed workloads operate in. See harness.hpp
// for the shared flags.
#include "core/units.hpp"
#include "harness.hpp"
#include "imb/imb.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

double alltoall_us(const hpcx::mach::MachineConfig& m, int cpus, int groups,
                   int repetitions) {
  double us = 0;
  hpcx::xmpi::run_on_machine(m, cpus, [&](hpcx::xmpi::Comm& c) {
    hpcx::imb::ImbParams p;
    p.msg_bytes = 1 << 20;
    p.phantom = true;
    p.repetitions = repetitions;
    p.groups = groups;
    const auto r =
        hpcx::imb::run_benchmark(hpcx::imb::BenchmarkId::kAlltoall, c, p);
    if (c.rank() == 0) us = r.t_avg_s * 1e6;
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcx;
  constexpr int kCpus = 64;
  bench::Runner runner(argc, argv,
                       "IMB -multi: shared-fabric Alltoall penalty");
  Table t("IMB -multi: Alltoall 1 MB on 16-rank groups, isolated vs 4 "
          "concurrent groups on 64 CPUs (us/call)");
  t.set_header({"Machine", "isolated (16 CPUs)", "4 groups of 16",
                "sharing penalty"});
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < kCpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    const int reps = runner.options().repeats;
    const double isolated = alltoall_us(m, 16, 1, reps);
    const double shared = alltoall_us(m, kCpus, 4, reps);
    t.add_row({m.name, format_fixed(isolated, 1) + " us",
               format_fixed(shared, 1) + " us",
               format_fixed(shared / isolated, 2) + "x"});
  }
  t.add_note("contiguous 16-rank groups mostly fit inside a leaf/brick, "
             "so well-provisioned fabrics isolate them; the Xeon's 3:1 "
             "blocking core is the one that charges for sharing");
  runner.emit(t);
  return 0;
}
