// Extension: IMB "-multi" mode — the same collective run concurrently by
// disjoint groups sharing the fabric. Shows how much of each machine's
// headline (single-group) number survives when the network is shared,
// which is the regime real mixed workloads operate in. The isolated and
// shared runs are independent sweep points (kImb with a groups knob),
// so --jobs/--cache apply. See harness.hpp for the shared flags.
#include "core/units.hpp"
#include "harness.hpp"
#include "imb/imb.hpp"
#include "machine/registry.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  constexpr int kCpus = 64;
  bench::Runner runner(argc, argv,
                       "IMB -multi: shared-fabric Alltoall penalty");

  std::vector<mach::MachineConfig> machines;
  for (const auto& m : mach::paper_machines()) {
    if (m.max_cpus < kCpus) continue;
    if (runner.has_machine() && m.short_name != runner.options().machine)
      continue;
    machines.push_back(m);
  }

  // Two points per machine: one 16-rank group in isolation, and four
  // concurrent 16-rank groups sharing the 64-CPU fabric.
  auto make_point = [&](const mach::MachineConfig& m, int cpus, int groups) {
    report::SweepPoint pt;
    pt.workload = report::SweepWorkload::kImb;
    pt.workload_name = std::string("imb/") +
                       imb::to_string(imb::BenchmarkId::kAlltoall);
    pt.imb_id = imb::BenchmarkId::kAlltoall;
    pt.machine = m;
    pt.np = cpus;
    pt.msg_bytes = 1 << 20;
    pt.repetitions = runner.options().repeats;
    pt.groups = groups;
    return pt;
  };
  std::vector<report::SweepPoint> points;
  for (const auto& m : machines) {
    points.push_back(make_point(m, 16, 1));
    points.push_back(make_point(m, kCpus, 4));
  }
  const report::SweepRun run = runner.executor().run(std::move(points));

  Table t("IMB -multi: Alltoall 1 MB on 16-rank groups, isolated vs 4 "
          "concurrent groups on 64 CPUs (us/call)");
  t.set_header({"Machine", "isolated (16 CPUs)", "4 groups of 16",
                "sharing penalty"});
  for (std::size_t i = 0; i < machines.size(); ++i) {
    const double isolated = run.results[2 * i].get("t_avg_s") * 1e6;
    const double shared = run.results[2 * i + 1].get("t_avg_s") * 1e6;
    t.add_row({machines[i].name, format_fixed(isolated, 1) + " us",
               format_fixed(shared, 1) + " us",
               format_fixed(shared / isolated, 2) + "x"});
  }
  t.add_note("contiguous 16-rank groups mostly fit inside a leaf/brick, "
             "so well-provisioned fabrics isolate them; the Xeon's 3:1 "
             "blocking core is the one that charges for sharing");
  runner.emit(t);
  return 0;
}
