// Ablation: empirical autotuning vs the static size thresholds. For
// each paper machine the xmpi autotuner (src/xmpi/tuner) searches the
// full algorithm space per CPU count, then the tuned table and the
// default heuristic time the same collective back to back. The paper's
// two most shape-sensitive collectives are probed: Allreduce at 16 KiB
// (the crossover region between recursive doubling and Rabenseifner)
// and Alltoall at 256 B blocks (where Bruck's log-round packing can
// beat pairwise exchange).
//
//   ablation_tuning                      # all five paper machines
//   ablation_tuning --machine sx8        # one machine
//   ablation_tuning --machine sx8 --cpus 16 --csv tuning.csv
#include "harness.hpp"
#include "machine/registry.hpp"
#include "report/figures.hpp"

int main(int argc, char** argv) {
  using namespace hpcx;
  bench::Runner runner(argc, argv,
                       "tuned-vs-untuned collective times per machine "
                       "(empirical autotuner ablation)");
  const auto& options = runner.options();

  std::vector<mach::MachineConfig> machines;
  if (runner.has_machine())
    machines.push_back(runner.machine());
  else
    machines = mach::paper_machines();

  std::vector<int> counts;
  if (options.cpus > 0) counts.push_back(options.cpus);

  struct Probe {
    const char* collective;
    std::size_t msg_bytes;
  };
  const Probe probes[] = {
      {"allreduce", std::size_t{16} * 1024},
      {"alltoall", 256},
  };
  for (const auto& m : machines)
    for (const Probe& p : probes)
      runner.emit(report::tuning_ablation_table(m.short_name, p.collective,
                                                p.msg_bytes, counts,
                                                &runner.executor()));
  return 0;
}
