// Regenerates the paper's exchange bandwidth figure on the simulated
// machines. See DESIGN.md for the experiment index; see harness.hpp for
// the shared flags (--machine/--cpus/--repeats/--csv/--trace-out).
#include "harness.hpp"

int main(int argc, char** argv) {
  hpcx::bench::Runner runner(argc, argv,
                             "Fig 14: IMB Exchange bandwidth, 1 MB");
  return runner.run_imb_figure("Fig 14: IMB Exchange bandwidth, 1 MB",
                               hpcx::imb::BenchmarkId::kExchange, 1 << 20,
                               /*as_bandwidth=*/true);
}
