// Regenerates the paper's exchange figure series on the simulated
// machines. See DESIGN.md for the experiment index.
#include <iostream>

#include "report/figures.hpp"

int main() {
  hpcx::report::print_fig14_exchange(std::cout);
  return 0;
}
