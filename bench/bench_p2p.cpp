// Point-to-point transport microbenchmark (real execution): PingPong
// half-roundtrip latency and bandwidth on ThreadComm across message
// sizes, best-of-repeats. This is the before/after yardstick for the
// shared-memory transport (eager/rendezvous, posted receives); numbers
// from this binary are recorded in EXPERIMENTS.md.
//
//   bench_p2p                      # default size sweep
//   bench_p2p --repeats 5 --csv p2p.csv
//   bench_p2p --eager-max 4096     # move the rendezvous threshold
#include <algorithm>
#include <vector>

#include "core/table.hpp"
#include "core/units.hpp"
#include "harness.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using namespace hpcx;

constexpr int kTagPing = 1;
constexpr int kTagPong = 2;

int reps_for(std::size_t msg) {
  if (msg <= 1024) return 20000;
  if (msg <= 65536) return 5000;
  return 400;
}

/// One PingPong run on two ranks; returns the half-roundtrip seconds.
double pingpong(std::size_t msg, const xmpi::TransportTuning& tuning) {
  const int reps = reps_for(msg);
  double t = 0;
  xmpi::ThreadRunOptions options;
  options.transport = tuning;
  xmpi::run_on_threads(
      2,
      [&](xmpi::Comm& c) {
        std::vector<unsigned char> sbuf(std::max<std::size_t>(msg, 1), 0x5a);
        std::vector<unsigned char> rbuf(std::max<std::size_t>(msg, 1), 0);
        const xmpi::CBuf s = xmpi::cbuf_bytes(sbuf.data(), msg);
        const xmpi::MBuf r = xmpi::mbuf_bytes(rbuf.data(), msg);
        // Loops are split per rank so the timed region is just
        // send/recv plus the loop counter — no rank branch inside.
        if (c.rank() == 0) {
          for (int w = 0; w < 50; ++w) {
            c.send(1, kTagPing, s);
            c.recv(1, kTagPong, r);
          }
          const double t0 = c.now();
          for (int i = 0; i < reps; ++i) {
            c.send(1, kTagPing, s);
            c.recv(1, kTagPong, r);
          }
          t = (c.now() - t0) / reps / 2.0;
        } else {
          for (int w = 0; w < 50; ++w) {
            c.recv(0, kTagPing, r);
            c.send(0, kTagPong, s);
          }
          for (int i = 0; i < reps; ++i) {
            c.recv(0, kTagPing, r);
            c.send(0, kTagPong, s);
          }
        }
      },
      options);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Runner runner(argc, argv,
                       "bench_p2p — ThreadComm PingPong latency/bandwidth "
                       "across message sizes");
  xmpi::TransportTuning tuning;
  if (runner.options().eager_max_bytes > 0)
    tuning.eager_max_bytes = runner.options().eager_max_bytes;

  const std::size_t sizes[] = {0,    8,     64,      1024,    4096,
                               16384, 65536, 262144, 1 << 20, 4 << 20};
  Table t("ThreadComm p2p (PingPong, best of " +
          std::to_string(runner.options().repeats) + ", eager-max " +
          std::string(format_bytes(tuning.eager_max_bytes)) + ")");
  t.set_header({"size", "protocol", "half-roundtrip", "bandwidth"});
  for (const std::size_t msg : sizes) {
    double best = 1e99;
    for (int rep = 0; rep < runner.options().repeats; ++rep)
      best = std::min(best, pingpong(msg, tuning));
    const char* proto =
        msg <= tuning.eager_max_bytes ? "eager" : "rendezvous";
    t.add_row({std::string(format_bytes(msg)), proto, format_time(best),
               msg > 0 && best > 0
                   ? std::string(format_bandwidth(
                         static_cast<double>(msg) / best))
                   : std::string("-")});
  }
  runner.emit(t);
  return 0;
}
