#!/bin/sh
# Regenerate the engine benchmark baselines committed at the repo root.
# Run from the repo root after building; pass the build dir as $1 if it
# is not ./build. Diff against the committed baselines to quantify
# engine perf changes:
#   BENCH_engine.json — serial-engine micro-benchmarks (seed baseline)
#   BENCH_pdes.json   — parallel-engine scaling + 64Ki agreement check
set -e
BUILD="${1:-build}"

missing=0
for target in bench/bench_des bench/bench_pdes; do
  if [ ! -x "$BUILD/$target" ]; then
    echo "bench_engine.sh: missing benchmark binary $BUILD/$target" \
         "(build the '$(basename "$target")' target first)" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ] || exit 1

"$BUILD/bench/bench_des" --benchmark_min_time=0.2 \
  --benchmark_out=BENCH_engine.json --benchmark_out_format=json
"$BUILD/bench/bench_pdes" --benchmark_min_time=0.05 \
  --benchmark_out=BENCH_pdes.json --benchmark_out_format=json
