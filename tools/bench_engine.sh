#!/bin/sh
# Regenerate the engine micro-benchmark baseline committed at the repo
# root. Run from the repo root after building; pass the build dir as $1
# if it is not ./build. Diff against the committed BENCH_engine.json
# (the seed-engine baseline) to quantify engine perf changes.
exec "${1:-build}/bench/bench_des" --benchmark_min_time=0.2 \
  --benchmark_out=BENCH_engine.json --benchmark_out_format=json
