// json_check <file> — exit 0 when the file is well-formed JSON, 1 with a
// diagnostic otherwise. Used by the ctest case that validates the trace
// files hpcx_cli emits.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/jsonlint.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: json_check <file>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!hpcx::json_well_formed(buffer.str(), &error)) {
    std::fprintf(stderr, "json_check: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  return 0;
}
