// json_check <file> — exit 0 when the file is well-formed JSON, 1 with a
// diagnostic otherwise. Used by the ctest case that validates the trace
// files hpcx_cli emits.
//
// json_check --obs <file> — additionally require an hpcx-obs/1 registry
// scrape: the schema marker, a metrics array, and (when a critical-path
// section is embedded) that the analysis succeeded and its path length
// equals the reported makespan *bit-exactly* (both doubles are written
// as %.17g, so == after a parse round-trip is an exact comparison).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.hpp"
#include "core/jsonlint.hpp"

namespace {

int fail(const char* path, const std::string& what) {
  std::fprintf(stderr, "json_check: %s: %s\n", path, what.c_str());
  return 1;
}

int check_obs(const char* path, const std::string& text) {
  hpcx::JsonValue doc;
  std::string error;
  if (!hpcx::json_parse(text, doc, &error)) return fail(path, error);
  const std::string schema = doc.string_or("schema", "");
  if (schema != "hpcx-obs/1")
    return fail(path, "expected schema hpcx-obs/1, got \"" + schema + "\"");
  const hpcx::JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array())
    return fail(path, "missing metrics array");

  if (const hpcx::JsonValue* cp = doc.find("critical_path")) {
    const hpcx::JsonValue* ok = cp->find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
      return fail(path, "critical_path.ok is not true: " +
                            cp->string_or("error", "(no error message)"));
    const hpcx::JsonValue* total = cp->find("total_s");
    const hpcx::JsonValue* makespan = cp->find("makespan_s");
    if (total == nullptr || !total->is_number() || makespan == nullptr ||
        !makespan->is_number())
      return fail(path, "critical_path lacks total_s/makespan_s numbers");
    if (total->as_number() != makespan->as_number()) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "critical_path length %.17g != makespan %.17g",
                    total->as_number(), makespan->as_number());
      return fail(path, buf);
    }
    // The scrape's top-level makespan comes from the run result, the
    // critical_path one from the event log — they must agree exactly.
    if (const hpcx::JsonValue* top = doc.find("makespan_s");
        top != nullptr && top->is_number() &&
        top->as_number() != makespan->as_number()) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "critical_path makespan %.17g != run makespan %.17g",
                    makespan->as_number(), top->as_number());
      return fail(path, buf);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool obs = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--obs")
      obs = true;
    else if (path == nullptr)
      path = argv[i];
    else
      path = "";  // too many operands; falls through to usage
  }
  if (path == nullptr || *path == '\0') {
    std::fprintf(stderr, "usage: json_check [--obs] <file>\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!hpcx::json_well_formed(buffer.str(), &error)) {
    std::fprintf(stderr, "json_check: %s: %s\n", path, error.c_str());
    return 1;
  }
  return obs ? check_obs(path, buffer.str()) : 0;
}
