// hpcx_launch — fork/exec bootstrap for the multi-process ProcComm
// transport: the moral equivalent of mpirun for one host.
//
//   hpcx_launch --procs 4 [--ring-bytes 65536] [--timeout 120] \
//       -- <program> [args...]
//
// Creates a named POSIX shared-memory segment sized for an N-rank
// world, exec()s N copies of <program> with HPCX_PROC_SHM /
// HPCX_PROC_RANK / HPCX_PROC_NPROCS in their environment (workers
// attach via xmpi::run_launched), supervises them with the same
// world-abort poisoning run_on_procs uses — a dead or wedged rank
// becomes CommError on the survivors and a nonzero exit here, never a
// hang — and unlinks the segment when the world is done.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/error.hpp"
#include "core/parse_num.hpp"
#include "xmpi/proc_shm.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --procs <n> [--ring-bytes <bytes>] [--timeout <s>]\n"
      "          [--user-bytes <bytes>] -- <program> [args...]\n"
      "\n"
      "Run <program> as an n-rank shared-memory world (ProcComm).\n"
      "  --procs <n>        number of ranks (one process each), 1..512\n"
      "  --ring-bytes <b>   per-(src,dst) ring capacity (default 65536)\n"
      "  --user-bytes <b>   shared user area size (default 0)\n"
      "  --timeout <s>      watchdog: SIGKILL the world after s seconds\n"
      "                     (default 600)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcx;
  int procs = 0;
  long long ring_bytes = 64 * 1024;
  long long user_bytes = 0;
  long long timeout_s = 600;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s wants a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--procs" || arg == "-n") {
      procs = static_cast<int>(parse_cli_int("--procs", value(), 1, 512));
    } else if (arg == "--ring-bytes") {
      ring_bytes = parse_cli_int("--ring-bytes", value(), 4096, 1 << 30);
    } else if (arg == "--user-bytes") {
      user_bytes = parse_cli_int("--user-bytes", value(), 0, 1 << 30);
    } else if (arg == "--timeout") {
      timeout_s = parse_cli_int("--timeout", value(), 1, 86400);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (procs < 1 || i >= argc) return usage(argv[0]);
  char** child_argv = argv + i;

  using xmpi::procshm::Segment;
  Segment seg;
  try {
    seg = Segment::create_named(procs, static_cast<std::size_t>(ring_bytes),
                                static_cast<std::size_t>(user_bytes));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(procs), -1);
  setenv("HPCX_PROC_SHM", seg.name().c_str(), 1);
  setenv("HPCX_PROC_NPROCS", std::to_string(procs).c_str(), 1);
  for (int r = 0; r < procs; ++r) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "%s: fork failed: %s\n", argv[0],
                   std::strerror(errno));
      xmpi::procshm::poison(seg.header(), r);
      for (int k = 0; k < r; ++k) kill(pids[static_cast<std::size_t>(k)],
                                       SIGKILL);
      seg.unlink();
      return 1;
    }
    if (pid == 0) {
      setenv("HPCX_PROC_RANK", std::to_string(r).c_str(), 1);
      execvp(child_argv[0], child_argv);
      std::fprintf(stderr, "%s: exec of '%s' failed: %s\n", argv[0],
                   child_argv[0], std::strerror(errno));
      // Poison from the child: the parent only sees "exited 127" —
      // without this, sibling ranks that did exec would block forever.
      xmpi::procshm::poison(seg.header(), r);
      _exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  const xmpi::procshm::SuperviseResult sup = xmpi::procshm::supervise_children(
      seg.header(), pids, static_cast<double>(timeout_s));
  seg.unlink();

  int code = 0;
  for (int r = 0; r < procs; ++r) {
    const xmpi::procshm::ChildOutcome& out =
        sup.outcomes[static_cast<std::size_t>(r)];
    if (out.term_signal != 0) {
      std::fprintf(stderr, "%s: rank %d killed by signal %d%s\n", argv[0], r,
                   out.term_signal, sup.timed_out ? " (watchdog timeout)" : "");
      code = 1;
    } else if (out.exit_code != 0) {
      const xmpi::procshm::RankSlot& slot = seg.slot(r);
      std::fprintf(stderr, "%s: rank %d exited with code %d%s%s\n", argv[0], r,
                   out.exit_code, slot.has_error.load() != 0 ? ": " : "",
                   slot.has_error.load() != 0 ? slot.error : "");
      code = 1;
    }
  }
  return code;
}
