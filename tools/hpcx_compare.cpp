// hpcx_compare — diff two run records written with --metrics-out.
//
//   hpcx_compare baseline.json candidate.json        # exit 1 on regression
//   hpcx_compare baseline.json candidate.json --threshold 0.10
//   hpcx_compare --perturb 1.10 in.json out.json     # synthesise a known
//                                                    # regression (testing)
//
// Every metric present in both records is compared in its own "better"
// direction; the per-metric tolerance is the larger of --threshold and
// the noise floor derived from the records' repeat statistics. See
// src/metrics/compare.hpp for the engine.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "metrics/compare.hpp"
#include "metrics/run_record.hpp"

namespace {

using namespace hpcx;

void usage() {
  std::printf(
      "usage: hpcx_compare <baseline.json> <candidate.json> [options]\n"
      "       hpcx_compare --perturb <factor> <in.json> <out.json>\n"
      "  --threshold <f>     relative regression threshold (default 0.05)\n"
      "  --cov-multiple <f>  noise floor as a multiple of the repeat CoV\n"
      "                      (default 3.0)\n"
      "  --quiet             only print the verdict line\n"
      "exit status: 0 = no regression, 1 = regression, 2 = usage/IO error\n");
}

int perturb_mode(int argc, char** argv) {
  if (argc != 5) {
    usage();
    return 2;
  }
  const double factor = std::atof(argv[2]);
  if (factor < 1.0) {
    std::fprintf(stderr, "--perturb factor must be >= 1 (got %s)\n",
                 argv[2]);
    return 2;
  }
  try {
    metrics::RunRecord rec = metrics::RunRecord::load(argv[3]);
    metrics::perturb(rec, factor);
    rec.write_json(argv[4]);
    std::cout << "wrote " << argv[4] << " with every metric worsened by x"
              << factor << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--perturb") == 0)
    return perturb_mode(argc, argv);

  std::vector<std::string> paths;
  metrics::CompareOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      options.rel_threshold = std::atof(next());
    } else if (arg == "--cov-multiple") {
      options.cov_multiple = std::atof(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    usage();
    return 2;
  }

  try {
    const metrics::RunRecord baseline = metrics::RunRecord::load(paths[0]);
    const metrics::RunRecord candidate = metrics::RunRecord::load(paths[1]);
    const metrics::CompareResult result =
        metrics::compare(baseline, candidate, options);
    if (quiet) {
      std::cout << (result.pass() ? "PASS" : "FAIL") << ": "
                << result.regressions.size() << " regression(s) across "
                << result.compared << " shared metric(s)\n";
    } else {
      metrics::compare_table(result).print(std::cout);
    }
    return result.pass() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
