// hpcx_compare — diff two run records written with --metrics-out, or
// two hpcx-tuning/1 tables written by hpcx_tune (the schema field of
// the first file decides which mode runs). Google-benchmark JSON
// (`bench_* --benchmark_format=json`) is also accepted on either side:
// it has no schema field but a "benchmarks" array, and is converted to
// a run record on load (mean of the repetitions as the value, the cv
// aggregate as the noise floor), so CI can gate bench output against a
// stored baseline with the same threshold machinery.
//
//   hpcx_compare baseline.json candidate.json        # exit 1 on regression
//   hpcx_compare baseline.json candidate.json --threshold 0.10
//   hpcx_compare old.tuning.json new.tuning.json     # tuning-table diff
//   hpcx_compare BENCH_engine.json fresh_bench.json  # google-benchmark diff
//   hpcx_compare --perturb 1.10 in.json out.json     # synthesise a known
//                                                    # regression (testing)
//
// Every metric present in both records is compared in its own "better"
// direction; the per-metric tolerance is the larger of --threshold and
// the noise floor derived from the records' repeat statistics. See
// src/metrics/compare.hpp for the engine. Tuning tables are compared
// cell by cell (src/xmpi/tuner/tuning_table.hpp): algorithm changes are
// reported, time regressions beyond the same threshold/CoV tolerance
// fail the comparison.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"
#include "core/table.hpp"
#include "metrics/compare.hpp"
#include "metrics/run_record.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace {

using namespace hpcx;

void usage() {
  std::printf(
      "usage: hpcx_compare <baseline.json> <candidate.json> [options]\n"
      "       hpcx_compare --perturb <factor> <in.json> <out.json>\n"
      "  --threshold <f>     relative regression threshold (default 0.05)\n"
      "  --cov-multiple <f>  noise floor as a multiple of the repeat CoV\n"
      "                      (default 3.0)\n"
      "  --quiet             only print the verdict line\n"
      "exit status: 0 = no regression, 1 = regression, 2 = usage/IO error\n");
}

int perturb_mode(int argc, char** argv) {
  if (argc != 5) {
    usage();
    return 2;
  }
  const double factor = std::atof(argv[2]);
  if (factor < 1.0) {
    std::fprintf(stderr, "--perturb factor must be >= 1 (got %s)\n",
                 argv[2]);
    return 2;
  }
  try {
    metrics::RunRecord rec = metrics::RunRecord::load(argv[3]);
    metrics::perturb(rec, factor);
    rec.write_json(argv[4]);
    std::cout << "wrote " << argv[4] << " with every metric worsened by x"
              << factor << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

/// The "schema" field of a JSON file, or "" when unreadable/absent.
std::string sniff_schema(const std::string& path) {
  std::ifstream is(path);
  if (!is) return "";
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonValue root;
  if (!json_parse(buf.str(), root) || !root.is_object()) return "";
  return root.string_or("schema", "");
}

/// Google-benchmark JSON: no "schema" field, but a "benchmarks" array.
bool is_benchmark_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonValue root;
  if (!json_parse(buf.str(), root) || !root.is_object()) return false;
  if (!root.string_or("schema", "").empty()) return false;
  const JsonValue* benchmarks = root.find("benchmarks");
  return benchmarks != nullptr && benchmarks->is_array();
}

/// Convert google-benchmark JSON to a run record: one metric per
/// benchmark (its run_name), real_time in the benchmark's time unit.
/// With --benchmark_repetitions the iteration entries supply
/// repeats/min/max and the "cv" aggregate the CoV, so the comparison's
/// noise floor reflects the measured spread; without repetitions each
/// benchmark is a single sample.
metrics::RunRecord load_benchmark_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonValue root;
  std::string error;
  if (!json_parse(buf.str(), root, &error))
    throw Error(path + ": " + error);

  metrics::RunRecord rec;
  rec.tool = "google-benchmark";
  rec.machine = "host";
  if (const JsonValue* context = root.find("context"))
    rec.env.host = context->string_or("host_name", "");

  struct Samples {
    std::vector<double> iterations;  ///< real_time per repetition
    std::string unit;
    double mean = -1.0;  ///< "mean" aggregate, when present
    double cv = 0.0;     ///< "cv" aggregate (stddev/mean fraction)
  };
  std::vector<std::pair<std::string, Samples>> order;  // first-seen order
  auto slot = [&order](const std::string& name) -> Samples& {
    for (auto& [n, s] : order)
      if (n == name) return s;
    order.emplace_back(name, Samples{});
    return order.back().second;
  };

  const JsonValue* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array())
    throw Error(path + ": missing benchmarks array");
  for (const JsonValue& b : benchmarks->as_array()) {
    const std::string run_name =
        b.string_or("run_name", b.string_or("name", ""));
    if (run_name.empty()) continue;
    Samples& s = slot(run_name);
    if (s.unit.empty()) s.unit = b.string_or("time_unit", "ns");
    const std::string run_type = b.string_or("run_type", "iteration");
    const double real_time = b.number_or("real_time", 0.0);
    if (run_type == "aggregate") {
      const std::string agg = b.string_or("aggregate_name", "");
      if (agg == "mean") s.mean = real_time;
      // The cv row is unitless (a fraction) regardless of time_unit.
      if (agg == "cv") s.cv = real_time;
    } else {
      s.iterations.push_back(real_time);
    }
  }

  for (const auto& [name, s] : order) {
    double value = s.mean;
    if (value < 0.0) {
      if (s.iterations.empty()) continue;
      value = 0.0;
      for (const double t : s.iterations) value += t;
      value /= static_cast<double>(s.iterations.size());
    }
    metrics::Metric& m = rec.add_metric(name + "/real_time", value, s.unit,
                                        metrics::Better::kLower);
    if (!s.iterations.empty()) {
      m.repeats = s.iterations.size();
      m.min = *std::min_element(s.iterations.begin(), s.iterations.end());
      m.max = *std::max_element(s.iterations.begin(), s.iterations.end());
    }
    m.cov = s.cv;
  }
  if (rec.metrics.empty())
    throw Error(path + ": no usable benchmark entries");
  return rec;
}

int compare_tuning(const std::string& baseline_path,
                   const std::string& candidate_path,
                   const metrics::CompareOptions& options, bool quiet) {
  using xmpi::tuner::TuningTable;
  const TuningTable baseline = TuningTable::load(baseline_path);
  const TuningTable candidate = TuningTable::load(candidate_path);
  const xmpi::tuner::TuningDiff diff =
      xmpi::tuner::diff_tables(baseline, candidate, options.rel_threshold,
                               options.cov_multiple);
  if (!quiet) {
    Table t("Tuning-table diff: " + baseline.machine + " baseline vs " +
            candidate.machine + " candidate");
    t.set_header({"collective", "np", "class", "baseline", "candidate",
                  "delta", "verdict"});
    for (const auto& e : diff.entries) {
      char delta[32];
      std::snprintf(delta, sizeof delta, "%+.1f%%", e.rel_delta * 100.0);
      t.add_row({xmpi::tuner::to_string(e.baseline.coll),
                 std::to_string(e.baseline.np),
                 std::to_string(e.baseline.size_class), e.baseline.alg,
                 e.candidate.alg, delta,
                 e.regressed     ? "REGRESSED"
                 : e.alg_changed ? "alg changed"
                                 : "slower"});
    }
    t.print(std::cout);
  }
  std::cout << (diff.regression() ? "FAIL" : "PASS") << ": "
            << diff.entries.size() << " changed cell(s) across "
            << diff.compared << " shared key(s)";
  if (diff.only_baseline + diff.only_candidate > 0)
    std::cout << " (" << diff.only_baseline << " only in baseline, "
              << diff.only_candidate << " only in candidate)";
  std::cout << "\n";
  return diff.regression() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--perturb") == 0)
    return perturb_mode(argc, argv);

  std::vector<std::string> paths;
  metrics::CompareOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      options.rel_threshold = std::atof(next());
    } else if (arg == "--cov-multiple") {
      options.cov_multiple = std::atof(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    usage();
    return 2;
  }

  try {
    if (sniff_schema(paths[0]) == "hpcx-tuning/1")
      return compare_tuning(paths[0], paths[1], options, quiet);
    auto load_record = [](const std::string& path) {
      return is_benchmark_json(path) ? load_benchmark_json(path)
                                     : metrics::RunRecord::load(path);
    };
    const metrics::RunRecord baseline = load_record(paths[0]);
    const metrics::RunRecord candidate = load_record(paths[1]);
    const metrics::CompareResult result =
        metrics::compare(baseline, candidate, options);
    if (quiet) {
      std::cout << (result.pass() ? "PASS" : "FAIL") << ": "
                << result.regressions.size() << " regression(s) across "
                << result.compared << " shared metric(s)\n";
    } else {
      metrics::compare_table(result).print(std::cout);
    }
    return result.pass() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
