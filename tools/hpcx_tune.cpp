// hpcx_tune — empirical collective autotuner front end.
//
// Tune a simulated paper machine (or the real thread backend) and write
// the winners as a persistent hpcx-tuning/1 JSON table:
//
//   hpcx_tune --machine sx8 --cpus 32 --out sx8.tuning.json
//   hpcx_tune --threads 4 --max-bytes 65536 --out host.tuning.json
//   hpcx_tune --machine altix_bx2 --cpus 64 --collective allreduce
//
// Verify a table end to end: load it, install it as the process-wide
// default, replay each tuned collective with a trace recorder attached,
// and check the per-(collective, algorithm) dispatch counters show the
// tuned choice actually ran:
//
//   hpcx_tune --verify sx8.tuning.json
//
// Tables are consumed by hpcx_cli --tuning <file> and diffed across
// commits with hpcx_compare <old.json> <new.json>.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/parse_num.hpp"
#include "core/table.hpp"
#include "machine/registry.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "report/sweep.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"
#include "xmpi/tuner/autotune.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace {

using namespace hpcx;
using xmpi::tuner::Cell;
using xmpi::tuner::Collective;
using xmpi::tuner::TuneOptions;
using xmpi::tuner::TuningTable;

void usage() {
  std::printf(
      "usage: hpcx_tune [options]\n"
      "  --machine <name>      simulated machine to tune (default: sx8)\n"
      "  --cpus <n>            rank count to tune at (default: 32)\n"
      "  --threads <n>         tune the REAL thread backend instead\n"
      "  --collective <name>   restrict to one collective (repeatable:\n"
      "                        bcast|allreduce|allgather|alltoall|\n"
      "                        reduce_scatter; default: all)\n"
      "  --min-bytes <n>       smallest message size (default: 8)\n"
      "  --max-bytes <n>       largest message size (default: 1048576)\n"
      "  --iters <n>           ops per timing (default: sim 1, threads 8)\n"
      "  --repeats <n>         timings per cell (default: sim 1, threads 3)\n"
      "  --jobs <n>            race the (collective, algorithm) search\n"
      "                        points on n worker threads (simulated\n"
      "                        tuning only; the table is identical at any\n"
      "                        job count)\n"
      "  --cache <file>        reuse per-algorithm timings from this\n"
      "                        sweep-cache JSON store across runs\n"
      "  --out <file>          write the hpcx-tuning/1 JSON table\n"
      "  --obs-out <file>      write the process-wide metrics registry as\n"
      "                        hpcx-obs/1 JSON on exit\n"
      "  --progress            print a ~1 Hz heartbeat line to stderr\n"
      "                        while the tuning sweep runs\n"
      "  --verify <file>       load a table, replay the tuned collectives\n"
      "                        and check the dispatch counters (exit 1 on\n"
      "                        any tuned choice that did not run)\n");
}

std::string utc_timestamp() {
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

trace::CollOp coll_op_of(Collective c) {
  switch (c) {
    case Collective::kBcast:
      return trace::CollOp::kBcast;
    case Collective::kAllreduce:
      return trace::CollOp::kAllreduce;
    case Collective::kAllgather:
      return trace::CollOp::kAllgather;
    case Collective::kAlltoall:
      return trace::CollOp::kAlltoall;
    case Collective::kReduceScatter:
      return trace::CollOp::kReduceScatter;
  }
  return trace::CollOp::kBcast;
}

/// trace::AlgId whose to_string matches the xmpi algorithm name (the
/// two layers use identical names by construction).
bool alg_id_by_name(const std::string& name, trace::AlgId& out) {
  for (std::size_t a = 0; a < trace::kNumAlgIds; ++a) {
    const auto id = static_cast<trace::AlgId>(a);
    if (name == trace::to_string(id)) {
      out = id;
      return true;
    }
  }
  return false;
}

int verify_table(const std::string& path, int cpus_override) {
  const TuningTable table = TuningTable::load(path);
  if (table.empty()) {
    std::fprintf(stderr, "verify: %s holds no cells\n", path.c_str());
    return 1;
  }
  int np = cpus_override;
  if (np <= 0)
    for (const Cell& c : table.cells()) np = std::max(np, c.np);

  // What should dispatch at this np: replay each cell's size-class lower
  // bound through the same nearest-cell lookup kAuto uses.
  struct Expectation {
    Collective coll;
    std::size_t bytes;
    trace::AlgId alg;
    std::string name;
  };
  std::vector<Expectation> expected;
  for (const Cell& c : table.cells()) {
    const std::size_t bytes =
        c.size_class >= 1 ? std::size_t{1} << (c.size_class - 1) : 1;
    const Cell* hit = table.lookup(c.coll, np, bytes);
    if (hit == nullptr || hit->alg == "auto") continue;
    trace::AlgId id;
    if (!alg_id_by_name(hit->alg, id)) {
      std::fprintf(stderr, "verify: unknown algorithm \"%s\" in %s\n",
                   hit->alg.c_str(), path.c_str());
      return 1;
    }
    expected.push_back({c.coll, bytes, id, hit->alg});
  }

  const bool threads = table.machine == "threads";
  trace::Recorder recorder(np);
  xmpi::tuner::set_default_table(
      std::make_shared<const TuningTable>(table));
  auto body = [&](xmpi::Comm& c) {
    for (const Expectation& e : expected)
      xmpi::tuner::measure_collective(c, e.coll, e.bytes, 1,
                                      /*phantom=*/!threads);
  };
  try {
    if (threads) {
      xmpi::ThreadRunOptions options;
      options.recorder = &recorder;
      xmpi::run_on_threads(np, body, options);
    } else {
      xmpi::SimRunOptions options;
      options.recorder = &recorder;
      xmpi::run_on_machine(mach::machine_by_name(table.machine), np, body,
                           options);
    }
  } catch (...) {
    xmpi::tuner::set_default_table(nullptr);
    throw;
  }
  xmpi::tuner::set_default_table(nullptr);

  recorder.alg_table().print(std::cout);
  const trace::Counters total = recorder.total();
  int failures = 0;
  for (const Expectation& e : expected) {
    const auto op = static_cast<std::size_t>(coll_op_of(e.coll));
    const auto alg = static_cast<std::size_t>(e.alg);
    if (total.alg_dispatch[op][alg] == 0) {
      std::fprintf(stderr,
                   "verify: %s at %zu B should dispatch %s but did not\n",
                   xmpi::tuner::to_string(e.coll), e.bytes, e.name.c_str());
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::cout << "verify: all " << expected.size()
            << " tuned choices dispatched on " << table.machine << " at np="
            << np << "\n";
  return 0;
}

/// Decomposed simulated autotune: one sweep point per (collective,
/// algorithm), each timing the full size sweep in its own isolated
/// world — no channel state left behind by a rival algorithm perturbs
/// the measurement. The simulator is deterministic, so the merged
/// table (winners in algorithms_for order, strict less-than, so the
/// first-listed algorithm keeps ties) is identical at any job count,
/// warm or cold cache. Timings can differ in the last bits from the
/// old shared-world plan walk, which measured every algorithm in one
/// long-lived world.
TuningTable autotune_sweep(const mach::MachineConfig& m, int nranks,
                           const TuneOptions& opts,
                           report::SweepExecutor& executor) {
  const std::vector<Collective>& colls = opts.collectives.empty()
                                             ? xmpi::tuner::all_collectives()
                                             : opts.collectives;
  const std::string config =
      "tune min=" + std::to_string(opts.min_bytes) +
      ",max=" + std::to_string(opts.max_bytes) +
      ",iters=" + std::to_string(opts.iters) +
      ",repeats=" + std::to_string(opts.repeats);

  std::vector<report::SweepPoint> points;
  std::vector<std::pair<Collective, std::string>> labels;
  for (const Collective coll : colls)
    for (const std::string& alg : xmpi::tuner::algorithms_for(coll)) {
      report::SweepPoint pt;
      pt.workload = report::SweepWorkload::kCustom;
      pt.workload_name =
          std::string("tune/") + xmpi::tuner::to_string(coll) + "/" + alg;
      pt.machine = m;
      pt.np = nranks;
      pt.msg_bytes = opts.max_bytes;
      pt.config = config;
      pt.run = [m, nranks, opts, coll, alg](trace::Recorder*) {
        TuneOptions sub = opts;
        sub.collectives = {coll};
        sub.algorithms = {alg};
        const TuningTable t = xmpi::tuner::autotune(m, nranks, sub);
        report::SweepResult out;
        for (const Cell& cell : t.cells()) {
          const std::string key = "sc" + std::to_string(cell.size_class);
          out.set(key + "_t", cell.t_s);
          out.set(key + "_cov", cell.cov);
        }
        return out;
      };
      points.push_back(std::move(pt));
      labels.emplace_back(coll, alg);
    }
  const report::SweepRun run = executor.run(std::move(points));

  // Merge: same bytes sweep, same race order, strict < — first-listed
  // algorithm wins ties exactly as in the serial plan walk.
  TuningTable table;
  table.machine = m.short_name;
  table.clock = "virtual";
  for (const Collective coll : colls) {
    for (std::size_t bytes = opts.min_bytes; bytes <= opts.max_bytes;
         bytes *= 2) {
      const int sc = static_cast<int>(trace::size_class(bytes));
      const std::string key = "sc" + std::to_string(sc);
      const report::SweepResult* best = nullptr;
      std::string best_alg;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i].first != coll) continue;
        const report::SweepResult& r = run.results[i];
        if (!r.has(key + "_t")) continue;
        if (best == nullptr || r.get(key + "_t") < best->get(key + "_t")) {
          best = &r;
          best_alg = labels[i].second;
        }
      }
      if (best != nullptr) {
        Cell cell;
        cell.coll = coll;
        cell.np = nranks;
        cell.size_class = sc;
        cell.alg = best_alg;
        cell.t_s = best->get(key + "_t");
        cell.cov = best->get(key + "_cov");
        table.add(cell);
      }
      if (bytes > opts.max_bytes / 2) break;  // overflow guard
    }
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine_name = "sx8";
  std::string out_path;
  std::string verify_path;
  int cpus = 0;  // 0: default 32 for tuning, table-derived for --verify
  bool threads = false;
  int jobs = 1;
  std::string cache_path;
  std::string obs_path;
  bool progress = false;
  TuneOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--machine") {
      machine_name = next();
    } else if (arg == "--cpus") {
      cpus = static_cast<int>(parse_cli_int("--cpus", next(), 1, 1 << 30));
    } else if (arg == "--threads") {
      cpus = static_cast<int>(parse_cli_int("--threads", next(), 1, 1 << 20));
      threads = true;
    } else if (arg == "--collective") {
      Collective c;
      const char* name = next();
      if (!xmpi::tuner::parse(name, c)) {
        std::fprintf(stderr, "unknown collective: %s\n", name);
        return 2;
      }
      opts.collectives.push_back(c);
    } else if (arg == "--min-bytes") {
      opts.min_bytes = static_cast<std::size_t>(
          parse_cli_int("--min-bytes", next(), 1,
                        std::numeric_limits<long long>::max()));
    } else if (arg == "--max-bytes") {
      opts.max_bytes = static_cast<std::size_t>(
          parse_cli_int("--max-bytes", next(), 1,
                        std::numeric_limits<long long>::max()));
    } else if (arg == "--iters") {
      opts.iters =
          static_cast<int>(parse_cli_int("--iters", next(), 1, 1 << 30));
    } else if (arg == "--repeats") {
      opts.repeats =
          static_cast<int>(parse_cli_int("--repeats", next(), 1, 1 << 30));
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(parse_cli_int("--jobs", next(), 1, 1 << 20));
    } else if (arg == "--cache") {
      cache_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--obs-out") {
      obs_path = next();
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--verify") {
      verify_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (threads && (jobs > 1 || !cache_path.empty())) {
    std::fprintf(stderr,
                 "--jobs/--cache apply to simulated tuning only; real "
                 "--threads timing stays serial\n");
    return 2;
  }
  try {
    std::optional<obs::ProgressHeartbeat> heartbeat;
    if (progress) heartbeat.emplace();
    // Scrape the global registry on the way out (tuning sweeps report
    // through the same hpcx_sweep_* metrics as the figure harnesses).
    auto write_obs = [&obs_path]() -> int {
      if (obs_path.empty()) return 0;
      std::ofstream out(obs_path);
      if (!out) {
        std::fprintf(stderr, "cannot open obs file: %s\n", obs_path.c_str());
        return 1;
      }
      const obs::Snapshot snap = obs::Registry::global().snapshot();
      snap.write_json(out, "\"tool\":\"hpcx_tune\"");
      std::cout << "obs registry written to " << obs_path << " ("
                << snap.metrics.size() << " metrics)\n";
      return 0;
    };
    if (!verify_path.empty()) {
      const int rc = verify_table(verify_path, cpus);
      const int obs_rc = write_obs();
      return rc != 0 ? rc : obs_rc;
    }
    const int nranks = cpus > 0 ? cpus : 32;
    TuningTable table;
    if (threads) {
      table = xmpi::tuner::autotune_threads(nranks, opts);
    } else {
      std::optional<report::ResultCache> cache;
      if (!cache_path.empty()) cache.emplace(cache_path);
      report::SweepExecutor::Config config;
      config.jobs = jobs;
      config.cache = cache ? &*cache : nullptr;
      report::SweepExecutor executor(config);
      table = autotune_sweep(mach::machine_by_name(machine_name), nranks,
                             opts, executor);
      if (cache) {
        cache->flush();
        const report::SweepStats totals = executor.totals();
        std::cout << "sweep cache: " << totals.cache_hits << "/"
                  << totals.points << " points from cache; " << cache->size()
                  << " entries in " << cache_path << "\n";
      }
    }
    table.created = utc_timestamp();
    table.summary_table().print(std::cout);
    if (!out_path.empty()) {
      table.write_json(out_path);
      std::cout << "tuning table written to " << out_path << " ("
                << table.cells().size() << " cells)\n";
    }
    return write_obs();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
