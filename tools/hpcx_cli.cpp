// hpcx — command-line front end: run any benchmark of either suite on
// any modelled machine (or on real host threads) without writing code.
//
//   hpcx_cli --list-machines
//   hpcx_cli --machine sx8 --cpus 64 --suite hpcc
//   hpcx_cli --machine altix_bx2 --cpus 128 --suite imb --benchmark Alltoall
//   hpcx_cli --machine dell_xeon --cpus 32 --suite imb --msg-bytes 65536
//   hpcx_cli --threads 4 --suite hpcc            # real execution
//   hpcx_cli --machine sx8 --suite hpcc --metrics-out run.json
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/parse_num.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/future.hpp"
#include "machine/registry.hpp"
#include "metrics/run_record.hpp"
#include "obs/critical_path.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "report/series.hpp"
#include "report/sweep.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"
#include "xmpi/proc_comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace {

using namespace hpcx;

void usage() {
  std::printf(
      "usage: hpcx_cli [options]\n"
      "  --list-machines          list modelled machines and exit\n"
      "  --machine <name>         simulated machine (default: sx8)\n"
      "  --cpus <n>               CPU count (default: 64)\n"
      "  --threads <n>            run for REAL on n host threads instead\n"
      "  --procs <n>              run for REAL on n forked processes over\n"
      "                           POSIX shared memory (ProcComm) instead;\n"
      "                           imb suite only (or use hpcx_launch)\n"
      "  --eager-max <bytes>      transport eager/rendezvous threshold\n"
      "                           (default: 32768; --threads/--procs only)\n"
      "  --suite hpcc|imb         which suite (default: imb)\n"
      "  --benchmark <name>       one IMB benchmark (default: all)\n"
      "  --msg-bytes <n>          IMB message size (default: 1048576)\n"
      "  --repeats <n>            measurement repetitions for --metrics-out\n"
      "                           statistics (default: 1)\n"
      "  --jobs <n>               worker threads for the simulated IMB\n"
      "                           suite (default: 1; every benchmark is an\n"
      "                           isolated sweep point, so results are\n"
      "                           identical at any job count; rejected\n"
      "                           with --threads)\n"
      "  --sim-workers <n>        parallel-DES workers inside each\n"
      "                           simulated run (default: 1 = serial\n"
      "                           engine; makespans are identical at any\n"
      "                           worker count; rejected with --threads)\n"
      "  --cache <file>           persistent hpcx-sweep-cache/1 result\n"
      "                           cache for the simulated IMB suite\n"
      "                           (ignored while --trace-out needs a live\n"
      "                           run)\n"
      "  --bcast-alg <name>       force the broadcast algorithm\n"
      "                           (auto|binomial|scatter-ring|pipelined-ring|\n"
      "                           binomial-segmented)\n"
      "  --allreduce-alg <name>   force the allreduce algorithm\n"
      "                           (auto|recursive-doubling|rabenseifner)\n"
      "  --allgather-alg <name>   force the allgather algorithm\n"
      "                           (auto|bruck|ring|gather-bcast)\n"
      "  --alltoall-alg <name>    force the alltoall algorithm\n"
      "                           (auto|pairwise|bruck)\n"
      "  --reduce-scatter-alg <name>  force the reduce_scatter algorithm\n"
      "                           (auto|recursive-halving|ring|pairwise)\n"
      "  --tuning <file>          load an hpcx-tuning/1 table (hpcx_tune)\n"
      "                           and let kAuto consult it before the\n"
      "                           static thresholds\n"
      "  --trace-out <file>       write a Chrome/Perfetto trace of the run\n"
      "                           (imb suite, needs --benchmark)\n"
      "  --metrics-out <file>     write a JSON run record of the results,\n"
      "                           per-rank time buckets and environment\n"
      "                           (diff two records with hpcx_compare)\n"
      "  --stats                  print per-rank traffic counters, the send\n"
      "                           size-class histogram and the busiest\n"
      "                           links after the run (with --sim-workers\n"
      "                           also the per-LP engine table)\n"
      "  --obs-out <file>         write the process-wide metrics registry\n"
      "                           as hpcx-obs/1 JSON on exit\n"
      "  --progress               print a ~1 Hz heartbeat line to stderr\n"
      "                           while the sweep runs\n"
      "  --critical-path          profile the simulated-time critical path\n"
      "                           of one representative run and print the\n"
      "                           ranked table (imb suite, needs\n"
      "                           --benchmark; off by default)\n");
}

std::vector<mach::MachineConfig> every_machine() {
  auto all = mach::all_machines();
  for (auto& m : mach::future_machines()) all.push_back(std::move(m));
  all.push_back(mach::dell_xeon_wide());
  return all;
}

mach::MachineConfig find_machine(const std::string& key) {
  for (auto& m : every_machine())
    if (m.short_name == key) return m;
  throw ConfigError("unknown machine: " + key +
                    " (try --list-machines)");
}

int list_machines() {
  Table t("Modelled machines (paper systems, variants, and the paper's "
          "projected future systems)");
  t.set_header({"key", "name", "network", "CPUs/node", "max CPUs",
                "peak/CPU"});
  for (const auto& m : every_machine())
    t.add_row({m.short_name, m.name, m.network_name,
               std::to_string(m.cpus_per_node), std::to_string(m.max_cpus),
               format_flops(m.proc.peak_flops())});
  t.print(std::cout);
  return 0;
}

std::optional<imb::BenchmarkId> benchmark_by_name(const std::string& name) {
  for (const auto id : imb::all_benchmarks())
    if (name == imb::to_string(id)) return id;
  return std::nullopt;
}

/// IMB-mode options beyond machine/cpus: benchmark selection, forced
/// collective algorithms, and trace/stats/metrics output.
struct ImbCliOptions {
  std::optional<imb::BenchmarkId> only;
  std::size_t msg_bytes = 1 << 20;
  xmpi::BcastAlg bcast_alg = xmpi::BcastAlg::kAuto;
  xmpi::AllreduceAlg allreduce_alg = xmpi::AllreduceAlg::kAuto;
  xmpi::AllgatherAlg allgather_alg = xmpi::AllgatherAlg::kAuto;
  xmpi::AlltoallAlg alltoall_alg = xmpi::AlltoallAlg::kAuto;
  xmpi::ReduceScatterAlg reduce_scatter_alg = xmpi::ReduceScatterAlg::kAuto;
  std::string tuning_path;  ///< --tuning table (installed process-wide)
  std::string trace_path;
  std::string metrics_path;
  int repeats = 1;
  int jobs = 1;            ///< sweep executor workers (simulated runs)
  int sim_workers = 1;     ///< parallel-DES workers (simulated runs)
  std::string cache_path;  ///< persistent sweep cache (simulated runs)
  std::string obs_path;    ///< --obs-out hpcx-obs/1 registry scrape
  bool progress = false;       ///< stderr heartbeat while the sweep runs
  bool critical_path = false;  ///< profile one representative run's path
  bool stats = false;
  xmpi::TransportTuning transport;  ///< --threads runs only
};

/// FNV-1a over a file's bytes, as hex — folds the *content* of a
/// --tuning table into sweep cache keys, so editing the table (not just
/// renaming it) invalidates cached points.
std::string file_content_hash(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint64_t h = 1469598103934665603ull;
  char c;
  while (in.get(c)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Forced (non-auto) algorithm overrides as "bcast=binomial,..." for the
/// record's environment block.
std::string alg_overrides(const ImbCliOptions& opts) {
  std::string out;
  auto append = [&](const char* knob, const char* alg) {
    if (!out.empty()) out += ',';
    out += knob;
    out += '=';
    out += alg;
  };
  if (opts.bcast_alg != xmpi::BcastAlg::kAuto)
    append("bcast", xmpi::to_string(opts.bcast_alg));
  if (opts.allreduce_alg != xmpi::AllreduceAlg::kAuto)
    append("allreduce", xmpi::to_string(opts.allreduce_alg));
  if (opts.allgather_alg != xmpi::AllgatherAlg::kAuto)
    append("allgather", xmpi::to_string(opts.allgather_alg));
  if (opts.alltoall_alg != xmpi::AlltoallAlg::kAuto)
    append("alltoall", xmpi::to_string(opts.alltoall_alg));
  if (opts.reduce_scatter_alg != xmpi::ReduceScatterAlg::kAuto)
    append("reduce_scatter", xmpi::to_string(opts.reduce_scatter_alg));
  return out;
}

metrics::RunRecord make_record(const ImbCliOptions& opts,
                               const std::optional<mach::MachineConfig>& m,
                               int cpus) {
  metrics::RunRecord rec;
  rec.tool = "hpcx_cli";
  rec.machine = m ? m->short_name : "host-threads";
  rec.cpus = cpus;
  rec.env = metrics::capture_environment();
  rec.env.clock = m ? "virtual" : "wall";
  rec.env.eager_max_bytes = opts.transport.eager_max_bytes;
  rec.env.alg_overrides = alg_overrides(opts);
  rec.env.tuning = opts.tuning_path;
  rec.env.repeats = opts.repeats;
  rec.timer = metrics::calibrate_timer();
  return rec;
}

int write_record(const metrics::RunRecord& rec, const std::string& path) {
  try {
    rec.write_json(path);
    std::cout << "run record written to " << path << " ("
              << rec.metrics.size() << " metrics)\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to write run record: %s\n", e.what());
    return 1;
  }
  return 0;
}

void print_stats(const trace::Recorder& recorder) {
  recorder.summary_table().print(std::cout);
  recorder.histogram_table().print(std::cout);
  const Table algs = recorder.alg_table();
  if (algs.rows() > 0) algs.print(std::cout);
  if (!recorder.link_tracks().empty())
    recorder.link_table().print(std::cout);
  if (recorder.engine_stats().present())
    recorder.lp_table().print(std::cout);
}

/// Write the global metrics registry as hpcx-obs/1 JSON. `cp` (may be
/// null) embeds the critical-path analysis; `makespan_s` (may be null)
/// records the representative run's makespan for cross-checking.
int write_obs(const std::string& path, const obs::CriticalPathReport* cp,
              const double* makespan_s) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open obs file: %s\n", path.c_str());
    return 1;
  }
  std::string extra;
  if (makespan_s != nullptr) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "\"makespan_s\":%.17g,", *makespan_s);
    extra += buf;
  }
  if (cp != nullptr) extra += cp->json_fragment() + ",";
  extra += "\"tool\":\"hpcx_cli\"";
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  snap.write_json(out, extra);
  if (!out) {
    std::fprintf(stderr, "failed writing obs file: %s\n", path.c_str());
    return 1;
  }
  std::cout << "obs registry written to " << path << " ("
            << snap.metrics.size() << " metrics)\n";
  return 0;
}

/// Simulated IMB suite, routed through the sweep executor: every
/// (benchmark, repeat) is an isolated sweep point, so --jobs fans the
/// suite across host cores and --cache answers repeated runs from disk.
/// Per-point recorders are merged in point order, so --stats prints the
/// same aggregate counters at any job count (cache hits carry no
/// recorder — nothing ran).
int run_imb_sim(const mach::MachineConfig& machine, int cpus,
                const ImbCliOptions& opts) {
  const bool wants_metrics = !opts.metrics_path.empty();
  const bool traced = !opts.trace_path.empty() || opts.stats || wants_metrics;

  std::vector<imb::BenchmarkId> ids;
  for (const auto id : imb::all_benchmarks())
    if (!opts.only || id == *opts.only) ids.push_back(id);
  const int reps = wants_metrics ? std::max(1, opts.repeats) : 1;

  const std::string tuning_key =
      opts.tuning_path.empty()
          ? std::string()
          : "tuning=" + file_content_hash(opts.tuning_path);
  std::vector<report::SweepPoint> points;
  for (const auto id : ids)
    for (int rep = 0; rep < reps; ++rep) {
      report::SweepPoint pt;
      pt.workload = report::SweepWorkload::kImb;
      pt.workload_name = std::string("imb/") + imb::to_string(id);
      pt.imb_id = id;
      pt.machine = machine;
      pt.np = cpus;
      pt.msg_bytes =
          id == imb::BenchmarkId::kBarrier ? 0 : opts.msg_bytes;
      pt.repetitions = 0;  // IMB auto (volume-capped), the CLI default
      pt.bcast_alg = opts.bcast_alg;
      pt.allreduce_alg = opts.allreduce_alg;
      pt.allgather_alg = opts.allgather_alg;
      pt.alltoall_alg = opts.alltoall_alg;
      pt.reduce_scatter_alg = opts.reduce_scatter_alg;
      pt.config = tuning_key;
      points.push_back(std::move(pt));
    }

  // --trace-out needs the traced benchmark to actually execute, so the
  // cache only backs untraced invocations.
  std::optional<report::ResultCache> cache;
  if (!opts.cache_path.empty() && opts.trace_path.empty())
    cache.emplace(opts.cache_path);
  report::SweepExecutor::Config config;
  config.jobs = opts.jobs;
  config.sim_workers = opts.sim_workers;
  config.cache = cache ? &*cache : nullptr;
  config.record_points = traced;
  if (!opts.trace_path.empty()) config.record_events_per_rank = 1 << 15;
  report::SweepExecutor executor(config);
  const report::SweepRun run = executor.run(std::move(points));

  // Merge per-point counters in point order into one aggregate view.
  trace::Recorder recorder(cpus);
  recorder.set_virtual_time(true);
  const trace::Recorder* event_source = nullptr;
  for (const auto& r : run.recorders)
    if (r != nullptr) {
      recorder.merge(*r);
      if (event_source == nullptr) event_source = r.get();
    }

  std::optional<metrics::RunRecord> record;
  if (wants_metrics) record = make_record(opts, machine, cpus);
  const std::string where = machine.name;
  Table t("IMB (" + std::string(format_bytes(opts.msg_bytes)) + ") on " +
          where + ", " + std::to_string(cpus) + " CPUs");
  t.set_header({"benchmark", "t_min", "t_avg", "t_max", "bandwidth"});
  for (std::size_t b = 0; b < ids.size(); ++b) {
    Stats t_avg;
    const report::SweepResult* last = nullptr;
    for (int rep = 0; rep < reps; ++rep) {
      last = &run.results[b * reps + rep];
      t_avg.add(last->get("t_avg_s"));
    }
    if (record) {
      const std::string base =
          std::string("imb/") + imb::to_string(ids[b]);
      metrics::Metric& avg = record->add_metric(
          base + "/t_avg", t_avg.mean(), "s", metrics::Better::kLower);
      avg.repeats = static_cast<int>(t_avg.count());
      avg.min = t_avg.min();
      avg.max = t_avg.max();
      avg.cov = t_avg.mean() > 0.0 ? t_avg.stddev() / t_avg.mean() : 0.0;
      record->add_metric(base + "/t_max", last->get("t_max_s"), "s",
                         metrics::Better::kLower);
      if (last->get("bandwidth_Bps") > 0)
        record->add_metric(base + "/bandwidth", last->get("bandwidth_Bps"),
                           "B/s", metrics::Better::kHigher);
    }
    t.add_row({imb::to_string(ids[b]), format_time(last->get("t_min_s")),
               format_time(last->get("t_avg_s")),
               format_time(last->get("t_max_s")),
               last->get("bandwidth_Bps") > 0
                   ? format_bandwidth(last->get("bandwidth_Bps"))
                   : std::string("-")});
  }
  t.print(std::cout);
  if (cache) {
    cache->flush();
    std::cout << "sweep cache: " << run.stats.cache_hits << "/"
              << run.stats.points << " points from cache; " << cache->size()
              << " entries in " << opts.cache_path << "\n";
  }
  if (opts.stats) print_stats(recorder);
  if (!opts.trace_path.empty()) {
    if (event_source == nullptr) {
      std::fprintf(stderr, "no traced run to export\n");
      return 1;
    }
    std::ofstream out(opts.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open trace file: %s\n",
                   opts.trace_path.c_str());
      return 1;
    }
    trace::write_chrome_trace(out, *event_source);
    std::cout << "trace written to " << opts.trace_path << "\n";
  }
  // --critical-path: one representative re-run of the selected benchmark
  // with predecessor recording on (serial engine; the sweep results
  // above are untouched, so they stay bit-identical to a run without
  // this flag).
  std::optional<obs::CriticalPathReport> cp;
  double cp_makespan = 0.0;
  if (opts.critical_path) {
    report::MeasureOptions measure;
    measure.repetitions = 1;
    cp.emplace();
    measure.critical_path = &*cp;
    measure.makespan_s = &cp_makespan;
    report::measure_imb(machine, cpus, *opts.only,
                        *opts.only == imb::BenchmarkId::kBarrier
                            ? 0
                            : opts.msg_bytes,
                        measure);
    cp->table().print(std::cout);
  }
  if (!opts.obs_path.empty()) {
    const int rc = write_obs(opts.obs_path, cp ? &*cp : nullptr,
                             opts.critical_path ? &cp_makespan : nullptr);
    if (rc != 0) return rc;
  }
  if (record) {
    record->set_rank_buckets(recorder);
    if (cache)
      record->add_metric("sweep/cache_hit_rate", run.stats.hit_rate(), "",
                         metrics::Better::kHigher);
    return write_record(*record, opts.metrics_path);
  }
  return 0;
}

/// Real-execution IMB suite on host threads. Stays serial: concurrent
/// worlds would contend for the same cores and perturb each other's
/// wall-clock timings, so --jobs does not apply here.
int run_imb_threads(int cpus, const ImbCliOptions& opts) {
  Table t("IMB (" + std::string(format_bytes(opts.msg_bytes)) + ") on " +
          std::to_string(cpus) + " host threads, " + std::to_string(cpus) +
          " CPUs");
  t.set_header({"benchmark", "t_min", "t_avg", "t_max", "bandwidth"});
  const bool wants_metrics = !opts.metrics_path.empty();
  const bool traced = !opts.trace_path.empty() || opts.stats || wants_metrics;
  std::optional<trace::Recorder> recorder;
  if (traced) recorder.emplace(cpus);
  std::optional<metrics::RunRecord> record;
  if (wants_metrics) record = make_record(opts, std::nullopt, cpus);
  for (const auto id : imb::all_benchmarks()) {
    if (opts.only && id != *opts.only) continue;
    imb::ImbResult r;
    auto body = [&](xmpi::Comm& c) {
      c.tuning().bcast_alg = opts.bcast_alg;
      c.tuning().allreduce_alg = opts.allreduce_alg;
      c.tuning().allgather_alg = opts.allgather_alg;
      c.tuning().alltoall_alg = opts.alltoall_alg;
      c.tuning().reduce_scatter_alg = opts.reduce_scatter_alg;
      imb::ImbParams params;
      params.msg_bytes = id == imb::BenchmarkId::kBarrier ? 0 : opts.msg_bytes;
      params.phantom = false;
      const auto res = imb::run_benchmark(id, c, params);
      if (c.rank() == 0) r = res;
    };
    auto run_once = [&] {
      xmpi::ThreadRunOptions run_options;
      run_options.recorder = recorder ? &*recorder : nullptr;
      run_options.transport = opts.transport;
      xmpi::run_on_threads(cpus, body, run_options);
    };
    Stats t_avg;
    const int reps = wants_metrics ? std::max(1, opts.repeats) : 1;
    for (int rep = 0; rep < reps; ++rep) {
      run_once();
      t_avg.add(r.t_avg_s);
    }
    if (record) {
      const std::string base = std::string("imb/") + imb::to_string(id);
      metrics::Metric& avg = record->add_metric(
          base + "/t_avg", t_avg.mean(), "s", metrics::Better::kLower);
      avg.repeats = static_cast<int>(t_avg.count());
      avg.min = t_avg.min();
      avg.max = t_avg.max();
      avg.cov = t_avg.mean() > 0.0 ? t_avg.stddev() / t_avg.mean() : 0.0;
      record->add_metric(base + "/t_max", r.t_max_s, "s",
                         metrics::Better::kLower);
      if (r.bandwidth_Bps > 0)
        record->add_metric(base + "/bandwidth", r.bandwidth_Bps, "B/s",
                           metrics::Better::kHigher);
    }
    t.add_row({imb::to_string(id), format_time(r.t_min_s),
               format_time(r.t_avg_s), format_time(r.t_max_s),
               r.bandwidth_Bps > 0 ? format_bandwidth(r.bandwidth_Bps)
                                   : std::string("-")});
  }
  t.print(std::cout);
  if (opts.stats && recorder) print_stats(*recorder);
  if (!opts.trace_path.empty() && recorder) {
    std::ofstream out(opts.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open trace file: %s\n",
                   opts.trace_path.c_str());
      return 1;
    }
    trace::write_chrome_trace(out, *recorder);
    std::cout << "trace written to " << opts.trace_path << "\n";
  }
  if (!opts.obs_path.empty()) {
    const int rc = write_obs(opts.obs_path, nullptr, nullptr);
    if (rc != 0) return rc;
  }
  if (record) {
    if (recorder) record->set_rank_buckets(*recorder);
    return write_record(*record, opts.metrics_path);
  }
  return 0;
}

/// Shared by both ProcComm paths: apply the forced algorithms, run the
/// selected benchmarks reps times, and hand each rank-0 result to `emit`.
void imb_proc_body(xmpi::Comm& c, const std::vector<imb::BenchmarkId>& ids,
                   const ImbCliOptions& opts, int reps,
                   const std::function<void(std::size_t, int,
                                            const imb::ImbResult&)>& emit) {
  c.tuning().bcast_alg = opts.bcast_alg;
  c.tuning().allreduce_alg = opts.allreduce_alg;
  c.tuning().allgather_alg = opts.allgather_alg;
  c.tuning().alltoall_alg = opts.alltoall_alg;
  c.tuning().reduce_scatter_alg = opts.reduce_scatter_alg;
  for (std::size_t b = 0; b < ids.size(); ++b) {
    imb::ImbParams params;
    params.msg_bytes =
        ids[b] == imb::BenchmarkId::kBarrier ? 0 : opts.msg_bytes;
    params.phantom = false;
    for (int rep = 0; rep < reps; ++rep) {
      const imb::ImbResult res = imb::run_benchmark(ids[b], c, params);
      if (c.rank() == 0) emit(b, rep, res);
    }
  }
}

/// Table + optional metrics record from the per-(benchmark, rep)
/// results either ProcComm path produced.
int report_imb_procs(int procs, const ImbCliOptions& opts,
                     const std::vector<imb::BenchmarkId>& ids, int reps,
                     const std::vector<imb::ImbResult>& results) {
  Table t("IMB (" + std::string(format_bytes(opts.msg_bytes)) + ") on " +
          std::to_string(procs) + " processes (ProcComm), " +
          std::to_string(procs) + " CPUs");
  t.set_header({"benchmark", "t_min", "t_avg", "t_max", "bandwidth"});
  std::optional<metrics::RunRecord> record;
  if (!opts.metrics_path.empty()) {
    record = make_record(opts, std::nullopt, procs);
    record->machine = "host-procs";
  }
  for (std::size_t b = 0; b < ids.size(); ++b) {
    Stats t_avg;
    for (int rep = 0; rep < reps; ++rep)
      t_avg.add(results[b * static_cast<std::size_t>(reps) +
                        static_cast<std::size_t>(rep)].t_avg_s);
    const imb::ImbResult& r =
        results[(b + 1) * static_cast<std::size_t>(reps) - 1];
    if (record) {
      const std::string base = std::string("imb/") + imb::to_string(ids[b]);
      metrics::Metric& avg = record->add_metric(
          base + "/t_avg", t_avg.mean(), "s", metrics::Better::kLower);
      avg.repeats = static_cast<int>(t_avg.count());
      avg.min = t_avg.min();
      avg.max = t_avg.max();
      avg.cov = t_avg.mean() > 0.0 ? t_avg.stddev() / t_avg.mean() : 0.0;
      record->add_metric(base + "/t_max", r.t_max_s, "s",
                         metrics::Better::kLower);
      if (r.bandwidth_Bps > 0)
        record->add_metric(base + "/bandwidth", r.bandwidth_Bps, "B/s",
                           metrics::Better::kHigher);
    }
    t.add_row({imb::to_string(ids[b]), format_time(r.t_min_s),
               format_time(r.t_avg_s), format_time(r.t_max_s),
               r.bandwidth_Bps > 0 ? format_bandwidth(r.bandwidth_Bps)
                                   : std::string("-")});
  }
  t.print(std::cout);
  if (!opts.obs_path.empty()) {
    const int rc = write_obs(opts.obs_path, nullptr, nullptr);
    if (rc != 0) return rc;
  }
  if (record) return write_record(*record, opts.metrics_path);
  return 0;
}

/// Real-execution IMB suite on forked processes. One ProcComm world
/// runs all selected benchmarks; child memory is invisible to this
/// parent, so rank 0 publishes each ImbResult through the segment's
/// shared user area and the table is built from there.
int run_imb_procs(int procs, const ImbCliOptions& opts) {
  std::vector<imb::BenchmarkId> ids;
  for (const auto id : imb::all_benchmarks())
    if (!opts.only || id == *opts.only) ids.push_back(id);
  const int reps = opts.metrics_path.empty() ? 1 : std::max(1, opts.repeats);
  xmpi::ProcRunOptions run_options;
  run_options.transport = opts.transport;
  run_options.user_bytes =
      ids.size() * static_cast<std::size_t>(reps) * sizeof(imb::ImbResult);
  const xmpi::ProcRunResult world = xmpi::run_on_procs(
      procs,
      [&](xmpi::Comm& c, std::span<unsigned char> user) {
        imb_proc_body(c, ids, opts, reps,
                      [&user, reps](std::size_t b, int rep,
                                    const imb::ImbResult& res) {
                        std::memcpy(user.data() +
                                        (b * static_cast<std::size_t>(reps) +
                                         static_cast<std::size_t>(rep)) *
                                            sizeof(imb::ImbResult),
                                    &res, sizeof(imb::ImbResult));
                      });
      },
      run_options);
  std::vector<imb::ImbResult> results(ids.size() *
                                      static_cast<std::size_t>(reps));
  std::memcpy(results.data(), world.user.data(),
              results.size() * sizeof(imb::ImbResult));
  return report_imb_procs(procs, opts, ids, reps, results);
}

/// IMB suite inside an hpcx_launch world: this process is ONE rank of
/// an already-created segment. Every rank runs the benchmark loop; rank
/// 0 keeps the results in its own memory (no shared-area hop needed)
/// and prints/records them.
int run_imb_attached(const ImbCliOptions& opts) {
  std::vector<imb::BenchmarkId> ids;
  for (const auto id : imb::all_benchmarks())
    if (!opts.only || id == *opts.only) ids.push_back(id);
  const int reps = opts.metrics_path.empty() ? 1 : std::max(1, opts.repeats);
  int rc = 0;
  const int worker_rc = xmpi::run_launched(
      [&](xmpi::Comm& c) {
        std::vector<imb::ImbResult> results(
            ids.size() * static_cast<std::size_t>(reps));
        imb_proc_body(c, ids, opts, reps,
                      [&results, reps](std::size_t b, int rep,
                                       const imb::ImbResult& res) {
                        results[b * static_cast<std::size_t>(reps) +
                                static_cast<std::size_t>(rep)] = res;
                      });
        if (c.rank() != 0) return;
        rc = report_imb_procs(c.size(), opts, ids, reps, results);
      },
      opts.transport);
  return worker_rc != 0 ? worker_rc : rc;
}

int run_imb(const std::optional<mach::MachineConfig>& machine, int cpus,
            const ImbCliOptions& opts) {
  return machine ? run_imb_sim(*machine, cpus, opts)
                 : run_imb_threads(cpus, opts);
}

int run_hpcc(const std::optional<mach::MachineConfig>& machine, int cpus,
             const ImbCliOptions& opts) {
  const bool wants_metrics = !opts.metrics_path.empty();
  std::optional<trace::Recorder> recorder;
  if (wants_metrics || opts.stats) recorder.emplace(cpus);
  trace::Recorder* rec_ptr = recorder ? &*recorder : nullptr;
  const hpcc::HpccReport r = machine
                                 ? hpcc::run_hpcc_sim(*machine, cpus, {}, {},
                                                      rec_ptr)
                                 : hpcc::run_hpcc_real(cpus, {}, rec_ptr);
  const std::string where =
      machine ? machine->name : std::to_string(cpus) + " host threads";
  Table t("HPC Challenge on " + where + ", " + std::to_string(cpus) +
          " CPUs");
  t.set_header({"metric", "value"});
  t.add_row({"G-HPL", format_flops(r.g_hpl_flops)});
  t.add_row({"G-PTRANS", format_bandwidth(r.g_ptrans_Bps)});
  t.add_row({"G-RandomAccess",
             format_fixed(r.g_gups / 1e9, 4) + " GUP/s"});
  t.add_row({"G-FFT", format_flops(r.g_fft_flops)});
  t.add_row({"EP-STREAM copy (per CPU)",
             format_bandwidth(r.ep_stream_copy_Bps)});
  t.add_row({"EP-DGEMM (per CPU)", format_flops(r.ep_dgemm_flops)});
  t.add_row({"RandomRing BW (per CPU)", format_bandwidth(r.ring_bw_Bps)});
  t.add_row({"RandomRing latency", format_time(r.ring_latency_s)});
  t.print(std::cout);
  if (opts.stats && recorder) print_stats(*recorder);
  if (!opts.obs_path.empty()) {
    const int rc = write_obs(opts.obs_path, nullptr, nullptr);
    if (rc != 0) return rc;
  }
  if (wants_metrics) {
    metrics::RunRecord record = make_record(opts, machine, cpus);
    metrics::add_hpcc_metrics(record, r);
    if (recorder) record.set_rank_buckets(*recorder);
    return write_record(record, opts.metrics_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine_name = "sx8";
  std::string suite = "imb";
  std::string benchmark;
  int cpus = 64;
  bool real_threads = false;
  bool real_procs = false;
  ImbCliOptions imb_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_alg = [&](auto& out) {
      const char* name = next();
      if (!hpcx::xmpi::parse(name, out)) {
        std::fprintf(stderr, "unknown algorithm for %s: %s\n", arg.c_str(),
                     name);
        std::exit(2);
      }
    };
    if (arg == "--list-machines") return list_machines();
    if (arg == "--machine") {
      machine_name = next();
    } else if (arg == "--cpus") {
      cpus = static_cast<int>(parse_cli_int("--cpus", next(), 1, 1 << 30));
    } else if (arg == "--threads") {
      cpus = static_cast<int>(parse_cli_int("--threads", next(), 1, 1 << 20));
      real_threads = true;
    } else if (arg == "--procs") {
      cpus = static_cast<int>(parse_cli_int("--procs", next(), 1, 512));
      real_procs = true;
    } else if (arg == "--eager-max") {
      imb_options.transport.eager_max_bytes = static_cast<std::size_t>(
          parse_cli_int("--eager-max", next(), 0,
                        std::numeric_limits<long long>::max()));
    } else if (arg == "--suite") {
      suite = next();
    } else if (arg == "--benchmark") {
      benchmark = next();
    } else if (arg == "--msg-bytes") {
      imb_options.msg_bytes = static_cast<std::size_t>(
          parse_cli_int("--msg-bytes", next(), 0,
                        std::numeric_limits<long long>::max()));
    } else if (arg == "--repeats") {
      imb_options.repeats =
          static_cast<int>(parse_cli_int("--repeats", next(), 1, 1 << 30));
    } else if (arg == "--bcast-alg") {
      parse_alg(imb_options.bcast_alg);
    } else if (arg == "--allreduce-alg") {
      parse_alg(imb_options.allreduce_alg);
    } else if (arg == "--allgather-alg") {
      parse_alg(imb_options.allgather_alg);
    } else if (arg == "--alltoall-alg") {
      parse_alg(imb_options.alltoall_alg);
    } else if (arg == "--reduce-scatter-alg") {
      parse_alg(imb_options.reduce_scatter_alg);
    } else if (arg == "--tuning") {
      imb_options.tuning_path = next();
    } else if (arg == "--trace-out") {
      imb_options.trace_path = next();
    } else if (arg == "--metrics-out") {
      imb_options.metrics_path = next();
    } else if (arg == "--stats") {
      imb_options.stats = true;
    } else if (arg == "--obs-out") {
      imb_options.obs_path = next();
    } else if (arg == "--progress") {
      imb_options.progress = true;
    } else if (arg == "--critical-path") {
      imb_options.critical_path = true;
    } else if (arg == "--jobs") {
      imb_options.jobs =
          static_cast<int>(parse_cli_int("--jobs", next(), 1, 1 << 20));
    } else if (arg == "--sim-workers") {
      imb_options.sim_workers =
          static_cast<int>(parse_cli_int("--sim-workers", next(), 1, 1 << 20));
    } else if (arg == "--cache") {
      imb_options.cache_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (real_procs && real_threads) {
    std::fprintf(stderr,
                 "--procs and --threads are mutually exclusive: pick one "
                 "real transport\n");
    return 2;
  }
  if (real_procs && suite != "imb") {
    std::fprintf(stderr, "--procs runs the imb suite only\n");
    return 2;
  }
  if (real_procs && (imb_options.jobs > 1 || imb_options.sim_workers > 1)) {
    std::fprintf(stderr,
                 "--jobs/--sim-workers apply to simulated runs only; a "
                 "--procs world already runs one rank per process\n");
    return 2;
  }
  if (real_procs && (!imb_options.trace_path.empty() || imb_options.stats)) {
    std::fprintf(stderr,
                 "--trace-out/--stats need in-process trace spans; the "
                 "forked --procs world reports timings only\n");
    return 2;
  }
  if (real_threads && imb_options.jobs > 1) {
    std::fprintf(stderr,
                 "--jobs applies to simulated runs only; real --threads "
                 "execution stays serial\n");
    return 2;
  }
  if (real_threads && imb_options.sim_workers > 1) {
    std::fprintf(stderr,
                 "--sim-workers applies to simulated runs only; real "
                 "--threads execution has no event engine to parallelize\n");
    return 2;
  }
  if (imb_options.critical_path &&
      (real_threads || real_procs || suite != "imb" || benchmark.empty())) {
    std::fprintf(stderr,
                 "--critical-path profiles one simulated IMB run: it needs "
                 "--machine (not --threads), --suite imb and --benchmark\n");
    return 2;
  }
  try {
    std::optional<hpcx::obs::ProgressHeartbeat> heartbeat;
    if (imb_options.progress) heartbeat.emplace();
    if (!imb_options.tuning_path.empty()) {
      // Every comm built from here on consults the table under kAuto.
      hpcx::xmpi::tuner::set_default_table(
          std::make_shared<const hpcx::xmpi::tuner::TuningTable>(
              hpcx::xmpi::tuner::TuningTable::load(imb_options.tuning_path)));
    }
    std::optional<hpcx::mach::MachineConfig> machine;
    if (!real_threads && !real_procs && !hpcx::xmpi::launched_by_hpcx())
      machine = find_machine(machine_name);
    if (suite == "hpcc") {
      if (!imb_options.trace_path.empty()) {
        std::fprintf(stderr, "--trace-out only applies to the imb suite\n");
        return 2;
      }
      return run_hpcc(machine, cpus, imb_options);
    }
    if (suite == "imb") {
      if (!benchmark.empty()) {
        imb_options.only = benchmark_by_name(benchmark);
        if (!imb_options.only) {
          std::fprintf(stderr, "unknown IMB benchmark: %s\n",
                       benchmark.c_str());
          return 2;
        }
      }
      if (!imb_options.trace_path.empty() && !imb_options.only) {
        std::fprintf(stderr,
                     "--trace-out needs --benchmark (one trace file covers "
                     "one benchmark run)\n");
        return 2;
      }
      // Started under hpcx_launch? Then this process is one rank of an
      // existing ProcComm world: attach instead of creating anything.
      if (hpcx::xmpi::launched_by_hpcx())
        return run_imb_attached(imb_options);
      if (real_procs) return run_imb_procs(cpus, imb_options);
      return run_imb(machine, cpus, imb_options);
    }
    std::fprintf(stderr, "unknown suite: %s\n", suite.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
