# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/xmpi_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/hpcc_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/hpcc_dist_test[1]_include.cmake")
include("/root/repo/build/tests/imb_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/one_sided_test[1]_include.cmake")
include("/root/repo/build/tests/transpose_test[1]_include.cmake")
include("/root/repo/build/tests/torus_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/future_machines_test[1]_include.cmake")
include("/root/repo/build/tests/imb_multi_test[1]_include.cmake")
