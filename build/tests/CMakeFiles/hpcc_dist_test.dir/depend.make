# Empty dependencies file for hpcc_dist_test.
# This may be replaced when dependencies are built.
