file(REMOVE_RECURSE
  "CMakeFiles/hpcc_dist_test.dir/hpcc_dist_test.cpp.o"
  "CMakeFiles/hpcc_dist_test.dir/hpcc_dist_test.cpp.o.d"
  "hpcc_dist_test"
  "hpcc_dist_test.pdb"
  "hpcc_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcc_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
