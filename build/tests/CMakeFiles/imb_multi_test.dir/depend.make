# Empty dependencies file for imb_multi_test.
# This may be replaced when dependencies are built.
