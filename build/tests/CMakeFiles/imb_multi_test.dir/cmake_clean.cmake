file(REMOVE_RECURSE
  "CMakeFiles/imb_multi_test.dir/imb_multi_test.cpp.o"
  "CMakeFiles/imb_multi_test.dir/imb_multi_test.cpp.o.d"
  "imb_multi_test"
  "imb_multi_test.pdb"
  "imb_multi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imb_multi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
