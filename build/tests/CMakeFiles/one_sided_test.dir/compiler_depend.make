# Empty compiler generated dependencies file for one_sided_test.
# This may be replaced when dependencies are built.
