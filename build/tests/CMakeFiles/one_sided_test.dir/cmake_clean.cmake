file(REMOVE_RECURSE
  "CMakeFiles/one_sided_test.dir/one_sided_test.cpp.o"
  "CMakeFiles/one_sided_test.dir/one_sided_test.cpp.o.d"
  "one_sided_test"
  "one_sided_test.pdb"
  "one_sided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_sided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
