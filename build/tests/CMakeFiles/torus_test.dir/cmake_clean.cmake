file(REMOVE_RECURSE
  "CMakeFiles/torus_test.dir/torus_test.cpp.o"
  "CMakeFiles/torus_test.dir/torus_test.cpp.o.d"
  "torus_test"
  "torus_test.pdb"
  "torus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
