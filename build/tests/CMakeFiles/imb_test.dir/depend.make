# Empty dependencies file for imb_test.
# This may be replaced when dependencies are built.
