file(REMOVE_RECURSE
  "CMakeFiles/imb_test.dir/imb_test.cpp.o"
  "CMakeFiles/imb_test.dir/imb_test.cpp.o.d"
  "imb_test"
  "imb_test.pdb"
  "imb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
