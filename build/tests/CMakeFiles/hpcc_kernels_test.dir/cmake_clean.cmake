file(REMOVE_RECURSE
  "CMakeFiles/hpcc_kernels_test.dir/hpcc_kernels_test.cpp.o"
  "CMakeFiles/hpcc_kernels_test.dir/hpcc_kernels_test.cpp.o.d"
  "hpcc_kernels_test"
  "hpcc_kernels_test.pdb"
  "hpcc_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcc_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
