# Empty dependencies file for hpcc_kernels_test.
# This may be replaced when dependencies are built.
