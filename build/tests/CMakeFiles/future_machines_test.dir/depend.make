# Empty dependencies file for future_machines_test.
# This may be replaced when dependencies are built.
