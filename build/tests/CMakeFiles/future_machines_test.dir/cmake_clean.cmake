file(REMOVE_RECURSE
  "CMakeFiles/future_machines_test.dir/future_machines_test.cpp.o"
  "CMakeFiles/future_machines_test.dir/future_machines_test.cpp.o.d"
  "future_machines_test"
  "future_machines_test.pdb"
  "future_machines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_machines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
