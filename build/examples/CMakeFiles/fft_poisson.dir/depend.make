# Empty dependencies file for fft_poisson.
# This may be replaced when dependencies are built.
