file(REMOVE_RECURSE
  "CMakeFiles/fft_poisson.dir/fft_poisson.cpp.o"
  "CMakeFiles/fft_poisson.dir/fft_poisson.cpp.o.d"
  "fft_poisson"
  "fft_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
