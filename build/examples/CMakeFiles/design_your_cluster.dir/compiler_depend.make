# Empty compiler generated dependencies file for design_your_cluster.
# This may be replaced when dependencies are built.
