file(REMOVE_RECURSE
  "CMakeFiles/design_your_cluster.dir/design_your_cluster.cpp.o"
  "CMakeFiles/design_your_cluster.dir/design_your_cluster.cpp.o.d"
  "design_your_cluster"
  "design_your_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_your_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
