file(REMOVE_RECURSE
  "libhpcx.a"
)
