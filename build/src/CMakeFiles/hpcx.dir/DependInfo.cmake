
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/hpcx.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/hpcx.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/CMakeFiles/hpcx.dir/core/table.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/core/table.cpp.o.d"
  "/root/repo/src/core/units.cpp" "src/CMakeFiles/hpcx.dir/core/units.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/core/units.cpp.o.d"
  "/root/repo/src/des/event_queue.cpp" "src/CMakeFiles/hpcx.dir/des/event_queue.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/des/event_queue.cpp.o.d"
  "/root/repo/src/des/fiber.cpp" "src/CMakeFiles/hpcx.dir/des/fiber.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/des/fiber.cpp.o.d"
  "/root/repo/src/des/simulator.cpp" "src/CMakeFiles/hpcx.dir/des/simulator.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/des/simulator.cpp.o.d"
  "/root/repo/src/des/sync.cpp" "src/CMakeFiles/hpcx.dir/des/sync.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/des/sync.cpp.o.d"
  "/root/repo/src/hpcc/dgemm.cpp" "src/CMakeFiles/hpcx.dir/hpcc/dgemm.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/dgemm.cpp.o.d"
  "/root/repo/src/hpcc/driver.cpp" "src/CMakeFiles/hpcx.dir/hpcc/driver.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/driver.cpp.o.d"
  "/root/repo/src/hpcc/fft.cpp" "src/CMakeFiles/hpcx.dir/hpcc/fft.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/fft.cpp.o.d"
  "/root/repo/src/hpcc/fft_dist.cpp" "src/CMakeFiles/hpcx.dir/hpcc/fft_dist.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/fft_dist.cpp.o.d"
  "/root/repo/src/hpcc/hpl.cpp" "src/CMakeFiles/hpcx.dir/hpcc/hpl.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/hpl.cpp.o.d"
  "/root/repo/src/hpcc/hpl_dist.cpp" "src/CMakeFiles/hpcx.dir/hpcc/hpl_dist.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/hpl_dist.cpp.o.d"
  "/root/repo/src/hpcc/ptrans.cpp" "src/CMakeFiles/hpcx.dir/hpcc/ptrans.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/ptrans.cpp.o.d"
  "/root/repo/src/hpcc/random_access.cpp" "src/CMakeFiles/hpcx.dir/hpcc/random_access.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/random_access.cpp.o.d"
  "/root/repo/src/hpcc/ring.cpp" "src/CMakeFiles/hpcx.dir/hpcc/ring.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/ring.cpp.o.d"
  "/root/repo/src/hpcc/stream.cpp" "src/CMakeFiles/hpcx.dir/hpcc/stream.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/hpcc/stream.cpp.o.d"
  "/root/repo/src/imb/benchmarks.cpp" "src/CMakeFiles/hpcx.dir/imb/benchmarks.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/imb/benchmarks.cpp.o.d"
  "/root/repo/src/imb/imb.cpp" "src/CMakeFiles/hpcx.dir/imb/imb.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/imb/imb.cpp.o.d"
  "/root/repo/src/machine/future.cpp" "src/CMakeFiles/hpcx.dir/machine/future.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/machine/future.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/hpcx.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/machine/machine.cpp.o.d"
  "/root/repo/src/machine/memory.cpp" "src/CMakeFiles/hpcx.dir/machine/memory.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/machine/memory.cpp.o.d"
  "/root/repo/src/machine/processor.cpp" "src/CMakeFiles/hpcx.dir/machine/processor.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/machine/processor.cpp.o.d"
  "/root/repo/src/machine/registry.cpp" "src/CMakeFiles/hpcx.dir/machine/registry.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/machine/registry.cpp.o.d"
  "/root/repo/src/netsim/network.cpp" "src/CMakeFiles/hpcx.dir/netsim/network.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/netsim/network.cpp.o.d"
  "/root/repo/src/report/figures.cpp" "src/CMakeFiles/hpcx.dir/report/figures.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/report/figures.cpp.o.d"
  "/root/repo/src/report/hpcc_figures.cpp" "src/CMakeFiles/hpcx.dir/report/hpcc_figures.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/report/hpcc_figures.cpp.o.d"
  "/root/repo/src/report/series.cpp" "src/CMakeFiles/hpcx.dir/report/series.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/report/series.cpp.o.d"
  "/root/repo/src/topology/clos.cpp" "src/CMakeFiles/hpcx.dir/topology/clos.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/clos.cpp.o.d"
  "/root/repo/src/topology/crossbar.cpp" "src/CMakeFiles/hpcx.dir/topology/crossbar.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/crossbar.cpp.o.d"
  "/root/repo/src/topology/fat_tree.cpp" "src/CMakeFiles/hpcx.dir/topology/fat_tree.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/fat_tree.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/hpcx.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/hpcx.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/hypercube.cpp.o.d"
  "/root/repo/src/topology/metrics.cpp" "src/CMakeFiles/hpcx.dir/topology/metrics.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/metrics.cpp.o.d"
  "/root/repo/src/topology/routing.cpp" "src/CMakeFiles/hpcx.dir/topology/routing.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/routing.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/CMakeFiles/hpcx.dir/topology/torus.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/topology/torus.cpp.o.d"
  "/root/repo/src/xmpi/collectives.cpp" "src/CMakeFiles/hpcx.dir/xmpi/collectives.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/collectives.cpp.o.d"
  "/root/repo/src/xmpi/comm.cpp" "src/CMakeFiles/hpcx.dir/xmpi/comm.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/comm.cpp.o.d"
  "/root/repo/src/xmpi/one_sided.cpp" "src/CMakeFiles/hpcx.dir/xmpi/one_sided.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/one_sided.cpp.o.d"
  "/root/repo/src/xmpi/reduce_ops.cpp" "src/CMakeFiles/hpcx.dir/xmpi/reduce_ops.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/reduce_ops.cpp.o.d"
  "/root/repo/src/xmpi/sim_comm.cpp" "src/CMakeFiles/hpcx.dir/xmpi/sim_comm.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/sim_comm.cpp.o.d"
  "/root/repo/src/xmpi/sub_comm.cpp" "src/CMakeFiles/hpcx.dir/xmpi/sub_comm.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/sub_comm.cpp.o.d"
  "/root/repo/src/xmpi/thread_comm.cpp" "src/CMakeFiles/hpcx.dir/xmpi/thread_comm.cpp.o" "gcc" "src/CMakeFiles/hpcx.dir/xmpi/thread_comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
