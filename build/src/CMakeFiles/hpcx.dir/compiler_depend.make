# Empty compiler generated dependencies file for hpcx.
# This may be replaced when dependencies are built.
