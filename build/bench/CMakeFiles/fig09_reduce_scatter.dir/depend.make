# Empty dependencies file for fig09_reduce_scatter.
# This may be replaced when dependencies are built.
