# Empty dependencies file for fig08_reduce.
# This may be replaced when dependencies are built.
