file(REMOVE_RECURSE
  "CMakeFiles/fig08_reduce.dir/fig08_reduce.cpp.o"
  "CMakeFiles/fig08_reduce.dir/fig08_reduce.cpp.o.d"
  "fig08_reduce"
  "fig08_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
