file(REMOVE_RECURSE
  "CMakeFiles/ext_future_machines.dir/ext_future_machines.cpp.o"
  "CMakeFiles/ext_future_machines.dir/ext_future_machines.cpp.o.d"
  "ext_future_machines"
  "ext_future_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
