# Empty compiler generated dependencies file for ext_future_machines.
# This may be replaced when dependencies are built.
