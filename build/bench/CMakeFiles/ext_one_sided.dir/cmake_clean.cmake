file(REMOVE_RECURSE
  "CMakeFiles/ext_one_sided.dir/ext_one_sided.cpp.o"
  "CMakeFiles/ext_one_sided.dir/ext_one_sided.cpp.o.d"
  "ext_one_sided"
  "ext_one_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_one_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
