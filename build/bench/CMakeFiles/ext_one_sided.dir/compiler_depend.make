# Empty compiler generated dependencies file for ext_one_sided.
# This may be replaced when dependencies are built.
