file(REMOVE_RECURSE
  "CMakeFiles/fig11_allgatherv.dir/fig11_allgatherv.cpp.o"
  "CMakeFiles/fig11_allgatherv.dir/fig11_allgatherv.cpp.o.d"
  "fig11_allgatherv"
  "fig11_allgatherv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_allgatherv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
