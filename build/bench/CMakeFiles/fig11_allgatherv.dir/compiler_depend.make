# Empty compiler generated dependencies file for fig11_allgatherv.
# This may be replaced when dependencies are built.
