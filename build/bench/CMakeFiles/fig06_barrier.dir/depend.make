# Empty dependencies file for fig06_barrier.
# This may be replaced when dependencies are built.
