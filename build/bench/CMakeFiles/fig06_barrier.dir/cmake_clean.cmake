file(REMOVE_RECURSE
  "CMakeFiles/fig06_barrier.dir/fig06_barrier.cpp.o"
  "CMakeFiles/fig06_barrier.dir/fig06_barrier.cpp.o.d"
  "fig06_barrier"
  "fig06_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
