# Empty dependencies file for ext_link_utilization.
# This may be replaced when dependencies are built.
