file(REMOVE_RECURSE
  "CMakeFiles/ext_link_utilization.dir/ext_link_utilization.cpp.o"
  "CMakeFiles/ext_link_utilization.dir/ext_link_utilization.cpp.o.d"
  "ext_link_utilization"
  "ext_link_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_link_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
