file(REMOVE_RECURSE
  "CMakeFiles/fig14_exchange.dir/fig14_exchange.cpp.o"
  "CMakeFiles/fig14_exchange.dir/fig14_exchange.cpp.o.d"
  "fig14_exchange"
  "fig14_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
