# Empty dependencies file for fig14_exchange.
# This may be replaced when dependencies are built.
