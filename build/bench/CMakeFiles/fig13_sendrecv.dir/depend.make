# Empty dependencies file for fig13_sendrecv.
# This may be replaced when dependencies are built.
