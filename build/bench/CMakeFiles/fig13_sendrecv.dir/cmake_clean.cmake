file(REMOVE_RECURSE
  "CMakeFiles/fig13_sendrecv.dir/fig13_sendrecv.cpp.o"
  "CMakeFiles/fig13_sendrecv.dir/fig13_sendrecv.cpp.o.d"
  "fig13_sendrecv"
  "fig13_sendrecv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
