# Empty dependencies file for fig07_allreduce.
# This may be replaced when dependencies are built.
