file(REMOVE_RECURSE
  "CMakeFiles/fig07_allreduce.dir/fig07_allreduce.cpp.o"
  "CMakeFiles/fig07_allreduce.dir/fig07_allreduce.cpp.o.d"
  "fig07_allreduce"
  "fig07_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
