file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_ring_vs_hpl.dir/fig01_02_ring_vs_hpl.cpp.o"
  "CMakeFiles/fig01_02_ring_vs_hpl.dir/fig01_02_ring_vs_hpl.cpp.o.d"
  "fig01_02_ring_vs_hpl"
  "fig01_02_ring_vs_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_ring_vs_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
