# Empty compiler generated dependencies file for fig01_02_ring_vs_hpl.
# This may be replaced when dependencies are built.
