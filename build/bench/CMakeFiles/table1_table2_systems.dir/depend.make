# Empty dependencies file for table1_table2_systems.
# This may be replaced when dependencies are built.
