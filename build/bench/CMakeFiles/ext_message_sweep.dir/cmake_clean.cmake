file(REMOVE_RECURSE
  "CMakeFiles/ext_message_sweep.dir/ext_message_sweep.cpp.o"
  "CMakeFiles/ext_message_sweep.dir/ext_message_sweep.cpp.o.d"
  "ext_message_sweep"
  "ext_message_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_message_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
