# Empty dependencies file for ext_message_sweep.
# This may be replaced when dependencies are built.
