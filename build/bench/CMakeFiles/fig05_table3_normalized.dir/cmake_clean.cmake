file(REMOVE_RECURSE
  "CMakeFiles/fig05_table3_normalized.dir/fig05_table3_normalized.cpp.o"
  "CMakeFiles/fig05_table3_normalized.dir/fig05_table3_normalized.cpp.o.d"
  "fig05_table3_normalized"
  "fig05_table3_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_table3_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
