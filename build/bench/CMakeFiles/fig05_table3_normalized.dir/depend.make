# Empty dependencies file for fig05_table3_normalized.
# This may be replaced when dependencies are built.
