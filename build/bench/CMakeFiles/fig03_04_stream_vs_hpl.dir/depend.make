# Empty dependencies file for fig03_04_stream_vs_hpl.
# This may be replaced when dependencies are built.
