file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_stream_vs_hpl.dir/fig03_04_stream_vs_hpl.cpp.o"
  "CMakeFiles/fig03_04_stream_vs_hpl.dir/fig03_04_stream_vs_hpl.cpp.o.d"
  "fig03_04_stream_vs_hpl"
  "fig03_04_stream_vs_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_stream_vs_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
