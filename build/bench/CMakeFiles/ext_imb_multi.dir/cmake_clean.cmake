file(REMOVE_RECURSE
  "CMakeFiles/ext_imb_multi.dir/ext_imb_multi.cpp.o"
  "CMakeFiles/ext_imb_multi.dir/ext_imb_multi.cpp.o.d"
  "ext_imb_multi"
  "ext_imb_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_imb_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
