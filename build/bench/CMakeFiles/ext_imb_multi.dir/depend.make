# Empty dependencies file for ext_imb_multi.
# This may be replaced when dependencies are built.
