# Empty dependencies file for fig12_alltoall.
# This may be replaced when dependencies are built.
