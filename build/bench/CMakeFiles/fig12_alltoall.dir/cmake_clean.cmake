file(REMOVE_RECURSE
  "CMakeFiles/fig12_alltoall.dir/fig12_alltoall.cpp.o"
  "CMakeFiles/fig12_alltoall.dir/fig12_alltoall.cpp.o.d"
  "fig12_alltoall"
  "fig12_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
