# Empty compiler generated dependencies file for fig15_bcast.
# This may be replaced when dependencies are built.
