file(REMOVE_RECURSE
  "CMakeFiles/fig15_bcast.dir/fig15_bcast.cpp.o"
  "CMakeFiles/fig15_bcast.dir/fig15_bcast.cpp.o.d"
  "fig15_bcast"
  "fig15_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
