file(REMOVE_RECURSE
  "CMakeFiles/fig10_allgather.dir/fig10_allgather.cpp.o"
  "CMakeFiles/fig10_allgather.dir/fig10_allgather.cpp.o.d"
  "fig10_allgather"
  "fig10_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
