# Empty dependencies file for fig10_allgather.
# This may be replaced when dependencies are built.
