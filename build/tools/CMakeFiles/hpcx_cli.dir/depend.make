# Empty dependencies file for hpcx_cli.
# This may be replaced when dependencies are built.
