file(REMOVE_RECURSE
  "CMakeFiles/hpcx_cli.dir/hpcx_cli.cpp.o"
  "CMakeFiles/hpcx_cli.dir/hpcx_cli.cpp.o.d"
  "hpcx_cli"
  "hpcx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
