// Spectral Poisson solver built on the library's FFT — the class of
// application ("spectral methods, signal processing and climate modeling
// using Fast Fourier Transforms") the paper names as the reason Alltoall
// and G-FFT performance matter.
//
// Solves  -u''(x) = f(x)  on [0, 1) with periodic boundary conditions by
// diagonalising in Fourier space: u_hat[k] = f_hat[k] / (2 pi k)^2.
// Verified against a manufactured solution, then the distributed G-FFT
// machinery predicts how the transform step would scale on the paper's
// machines.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/units.hpp"
#include "hpcc/fft.hpp"
#include "hpcc/fft_dist.hpp"
#include "machine/registry.hpp"
#include "xmpi/sim_comm.hpp"

int main() {
  using namespace hpcx;
  using hpcc::Complex;
  constexpr std::size_t kN = 1 << 12;
  constexpr double kTau = 2.0 * std::numbers::pi;

  // Manufactured solution u(x) = sin(2 pi x) + 0.5 cos(6 pi x):
  // f = -u'' = (2 pi)^2 sin(2 pi x) + 0.5 (6 pi)^2 cos(6 pi x).
  std::vector<Complex> f(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = static_cast<double>(i) / kN;
    f[i] = Complex(kTau * kTau * std::sin(kTau * x) +
                       0.5 * 9.0 * kTau * kTau * std::cos(3.0 * kTau * x),
                   0.0);
  }

  // Forward transform, divide by (2 pi k)^2, inverse transform.
  std::vector<Complex> u_hat = f;
  hpcc::fft(u_hat);
  u_hat[0] = Complex(0, 0);  // zero-mean gauge
  for (std::size_t k = 1; k < kN; ++k) {
    // Wavenumber with the usual wrap to [-N/2, N/2).
    const double kk = (k <= kN / 2) ? static_cast<double>(k)
                                    : static_cast<double>(k) - kN;
    u_hat[k] /= (kTau * kk) * (kTau * kk);
  }
  std::vector<Complex> u = u_hat;
  hpcc::ifft(u);

  double max_err = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = static_cast<double>(i) / kN;
    const double exact = std::sin(kTau * x) + 0.5 * std::cos(3.0 * kTau * x);
    max_err = std::max(max_err, std::abs(u[i].real() - exact));
  }
  std::printf("Spectral Poisson solve, n = %zu\n", kN);
  std::printf("  max |u - exact| = %.3e  %s\n", max_err,
              max_err < 1e-8 ? "(spectral accuracy)" : "(FAILED)");

  // How would the transform scale? Run the distributed six-step FFT on
  // the simulated machines (phantom payloads, modelled local flops).
  std::printf("\nPredicted G-FFT rate (six-step, 64 CPUs, n = %d^2):\n",
              4096);
  for (const auto& machine : mach::paper_machines()) {
    const int cpus = std::min(64, machine.max_cpus);
    hpcc::FftModel model;
    model.seconds_per_flop = 1.0 / (machine.proc.peak_flops() *
                                    machine.proc.fft_efficiency);
    double flops = 0;
    xmpi::run_on_machine(machine, cpus, [&](xmpi::Comm& c) {
      const auto r = hpcc::run_fft_dist(c, 4096, 4096, &model);
      if (c.rank() == 0) flops = r.flops_per_s;
    });
    std::printf("  %-22s: %s\n", machine.name.c_str(),
                format_flops(flops).c_str());
  }
  std::printf("\n(G-FFT is all-to-all bound: the ranking tracks the paper's"
              "\n Fig 12 Alltoall ordering, as its Section 5 observes.)\n");
  return max_err < 1e-8 ? 0 : 1;
}
