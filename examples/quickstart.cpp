// Quickstart: the three things hpcx does, in ~80 lines.
//
//  1. Run a benchmark for real on host threads.
//  2. Run the *same* benchmark on a simulated supercomputer.
//  3. Compare the five machines of Saini et al. on one operation.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/units.hpp"
#include "imb/imb.hpp"
#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

int main() {
  using namespace hpcx;

  // ---- 1. A real allreduce on 4 host threads. --------------------------
  std::printf("1) Real execution (4 threads): allreduce of rank ids\n");
  xmpi::run_on_threads(4, [](xmpi::Comm& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank())};
    std::vector<double> sum{0.0};
    comm.allreduce(xmpi::cbuf(std::span<const double>(mine)),
                   xmpi::mbuf(std::span<double>(sum)), xmpi::ROp::kSum);
    if (comm.rank() == 0)
      std::printf("   sum of ranks 0..3 = %.0f (expected 6)\n", sum[0]);
  });

  // ---- 2. The same code on a simulated NEC SX-8. -----------------------
  std::printf("\n2) Simulated execution (64 CPUs of a NEC SX-8)\n");
  const auto sx8 = mach::nec_sx8();
  const auto run = xmpi::run_on_machine(sx8, 64, [](xmpi::Comm& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank())};
    std::vector<double> sum{0.0};
    comm.allreduce(xmpi::cbuf(std::span<const double>(mine)),
                   xmpi::mbuf(std::span<double>(sum)), xmpi::ROp::kSum);
  });
  std::printf("   virtual time: %s, network messages: %llu\n",
              format_time(run.makespan_s).c_str(),
              static_cast<unsigned long long>(run.internode_messages));

  // ---- 3. IMB Allreduce (1 MB) across the paper's five machines. -------
  std::printf("\n3) IMB Allreduce, 1 MB message, 64 CPUs, five machines:\n");
  for (const auto& machine : mach::paper_machines()) {
    const int cpus = std::min(64, machine.max_cpus);
    imb::ImbResult result;
    xmpi::run_on_machine(machine, cpus, [&](xmpi::Comm& comm) {
      imb::ImbParams params;
      params.msg_bytes = 1 << 20;
      params.phantom = true;  // timing only, no payload storage
      const auto r = imb::run_benchmark(imb::BenchmarkId::kAllreduce, comm,
                                        params);
      if (comm.rank() == 0) result = r;
    });
    std::printf("   %-22s (%2d CPUs): %10.1f us/call\n",
                machine.name.c_str(), cpus, result.t_avg_s * 1e6);
  }
  std::printf("\n   (The vector machines win by an order of magnitude —\n"
              "    the paper's Fig 7.)\n");
  return 0;
}
