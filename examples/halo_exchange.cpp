// Halo exchange: a 2-D Jacobi heat-diffusion stencil — the application
// pattern the paper uses to motivate the IMB Exchange benchmark
// ("processes exchange data with both left and right in the chain ...
// used in applications such as unstructured adaptive mesh refinement
// computational fluid dynamics involving boundary exchanges").
//
// Part 1 runs the solver for real on host threads (1-D row decomposition,
// boundary rows exchanged with both neighbours every step) and checks the
// result against a serial solve.
//
// Part 2 runs the *same communication schedule* with phantom halos and
// modelled compute on the five simulated machines, predicting the time
// per step — a miniature of how the paper's benchmark data is meant to
// be used.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/units.hpp"
#include "machine/registry.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace {

using hpcx::xmpi::Comm;

constexpr int kTagDown = 1;  // halo travelling to the higher-rank side
constexpr int kTagUp = 2;

/// One Jacobi sweep over rows [1, rows-1) of a (rows x cols) strip with
/// halo rows 0 and rows-1.
void sweep(const std::vector<double>& in, std::vector<double>& out,
           std::size_t rows, std::size_t cols) {
  for (std::size_t i = 1; i + 1 < rows; ++i)
    for (std::size_t j = 1; j + 1 < cols; ++j)
      out[i * cols + j] = 0.25 * (in[(i - 1) * cols + j] +
                                  in[(i + 1) * cols + j] +
                                  in[i * cols + j - 1] + in[i * cols + j + 1]);
}

/// Serial reference: full grid, `steps` sweeps.
std::vector<double> solve_serial(std::size_t n, int steps) {
  std::vector<double> grid(n * n, 0.0), next(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) grid[j] = 100.0;  // hot top edge
  next = grid;
  for (int s = 0; s < steps; ++s) {
    sweep(grid, next, n, n);
    std::swap(grid, next);
  }
  return grid;
}

/// Distributed: rank owns `local` interior rows plus two halo rows.
/// Returns the max |error| vs the serial solution.
double solve_distributed(Comm& comm, std::size_t n, int steps,
                         const std::vector<double>& reference) {
  const int np = comm.size();
  const int r = comm.rank();
  const std::size_t local = n / static_cast<std::size_t>(np);
  const std::size_t rows = local + 2;  // plus halos
  const std::size_t row0 = local * static_cast<std::size_t>(r);

  std::vector<double> grid(rows * n, 0.0), next;
  // Global row g maps to local row g - row0 + 1.
  if (r == 0)
    for (std::size_t j = 0; j < n; ++j) grid[1 * n + j] = 100.0;
  next = grid;

  for (int s = 0; s < steps; ++s) {
    // Exchange boundary rows with both neighbours (interior ranks), like
    // IMB Exchange: two sends then two receives.
    if (r > 0)
      comm.send(r - 1, kTagUp, hpcx::xmpi::cbuf_bytes(&grid[1 * n], n * 8));
    if (r + 1 < np)
      comm.send(r + 1, kTagDown,
                hpcx::xmpi::cbuf_bytes(&grid[local * n], n * 8));
    if (r > 0)
      comm.recv(r - 1, kTagDown, hpcx::xmpi::mbuf_bytes(&grid[0], n * 8));
    if (r + 1 < np)
      comm.recv(r + 1, kTagUp,
                hpcx::xmpi::mbuf_bytes(&grid[(local + 1) * n], n * 8));

    sweep(grid, next, rows, n);
    // Fixed boundary conditions: hot top edge, cold bottom edge.
    if (r == 0)
      for (std::size_t j = 0; j < n; ++j) next[1 * n + j] = 100.0;
    if (r == np - 1)
      for (std::size_t j = 0; j < n; ++j) next[local * n + j] = 0.0;
    std::swap(grid, next);
  }

  double err = 0;
  // Compare interior rows (skip the global boundary rows, which the
  // serial reference also holds fixed only at the top).
  for (std::size_t i = 0; i < local; ++i)
    for (std::size_t j = 0; j < n; ++j)
      err = std::max(err, std::fabs(grid[(i + 1) * n + j] -
                                    reference[(row0 + i) * n + j]));
  double global_err = 0;
  comm.allreduce(hpcx::xmpi::CBuf{&err, 1, hpcx::xmpi::DType::kF64},
                 hpcx::xmpi::MBuf{&global_err, 1, hpcx::xmpi::DType::kF64},
                 hpcx::xmpi::ROp::kMax);
  return global_err;
}

}  // namespace

int main() {
  using namespace hpcx;
  constexpr std::size_t kN = 256;
  constexpr int kSteps = 50;

  // ---- Part 1: real distributed solve, verified. -----------------------
  const std::vector<double> reference = solve_serial(kN, kSteps);
  std::printf("2-D Jacobi heat diffusion, %zux%zu grid, %d steps\n", kN, kN,
              kSteps);
  for (const int np : {1, 2, 4}) {
    double err = -1;
    xmpi::run_on_threads(np, [&](Comm& c) {
      const double e = solve_distributed(c, kN, kSteps, reference);
      if (c.rank() == 0) err = e;
    });
    std::printf("  %d ranks: max |error| vs serial = %.3e  %s\n", np, err,
                err < 1e-12 ? "(exact)" : "");
  }

  // ---- Part 2: predicted time/step on the paper's machines. ------------
  std::printf("\nPredicted time per step, 1024^2 points per CPU, 64 CPUs:\n");
  constexpr std::size_t kCols = 1024;      // row length (halo bytes = 8K)
  constexpr std::size_t kLocalRows = 1024;  // rows per rank
  for (const auto& machine : mach::paper_machines()) {
    const int cpus = std::min(64, machine.max_cpus);
    // 5-point stencil: 4 flops + ~5 memory touches per point; this is a
    // bandwidth-bound kernel, so charge it at STREAM rate.
    const double bytes_per_step =
        static_cast<double>(kLocalRows * kCols) * 5 * 8;
    const double compute_s =
        bytes_per_step / machine.stream_per_cpu_all_active();
    double step_time = 0;
    xmpi::run_on_machine(machine, cpus, [&](Comm& c) {
      const int np = c.size();
      const int r = c.rank();
      auto one_step = [&] {
        if (r > 0) c.send(r - 1, kTagUp, xmpi::phantom_cbuf(kCols * 8));
        if (r + 1 < np)
          c.send(r + 1, kTagDown, xmpi::phantom_cbuf(kCols * 8));
        if (r > 0) c.recv(r - 1, kTagDown, xmpi::phantom_mbuf(kCols * 8));
        if (r + 1 < np)
          c.recv(r + 1, kTagUp, xmpi::phantom_mbuf(kCols * 8));
        c.compute(compute_s);
      };
      one_step();  // warm-up
      c.barrier();
      const double t0 = c.now();
      for (int s = 0; s < 4; ++s) one_step();
      if (c.rank() == 0) step_time = (c.now() - t0) / 4;
    });
    std::printf("  %-22s: %s/step\n", machine.name.c_str(),
                format_time(step_time).c_str());
  }
  std::printf("\n(Halo exchange is latency+memory bound: the vector machines'"
              "\n STREAM advantage dominates, exactly the balance analysis\n"
              " of the paper's Figs 3-4.)\n");
  return 0;
}
