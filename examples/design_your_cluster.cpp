// Design-your-own-cluster: the library as a *procurement* tool.
//
// The paper's goal is "to identify strength and weakness of the
// underlying hardware and interconnect networks for particular
// operations". This example turns that around: define a hypothetical
// 2006-era commodity cluster, then ask which interconnect budget choice
// — a cheap oversubscribed Clos or an expensive full-bisection fat tree
// — matters for which workload class, using the same HPCC/IMB machinery
// that reproduces the paper.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/table.hpp"
#include "core/units.hpp"
#include "hpcc/driver.hpp"
#include "imb/imb.hpp"
#include "machine/machine.hpp"
#include "xmpi/sim_comm.hpp"

namespace {

hpcx::mach::MachineConfig base_cluster() {
  hpcx::mach::MachineConfig m;
  m.name = "my-cluster";
  m.short_name = "custom";
  m.network_name = "custom";
  m.location = "here";
  m.vendor = "DIY";
  m.proc.name = "commodity x86";
  m.proc.clock_hz = 2.4e9;
  m.proc.flops_per_cycle = 2.0;
  m.proc.dgemm_efficiency = 0.85;
  m.proc.hpl_kernel_efficiency = 0.70;
  m.proc.fft_efficiency = 0.06;
  m.proc.stream_copy_Bps = 3.5e9;
  m.proc.random_update_rate = 10e6;
  m.mem.single_cpu_Bps = 3.5e9;
  m.mem.node_aggregate_Bps = 5.0e9;
  m.cpus_per_node = 2;
  m.max_cpus = 256;
  m.nic.send_overhead_s = 3e-6;
  m.nic.recv_overhead_s = 3e-6;
  m.nic.injection_Bps = 0.9e9;
  m.node.intranode_Bps = 1.2e9;
  m.node.intranode_latency_s = 0.7e-6;
  m.node.node_mem_Bps = 5.0e9;
  m.host_link = {1.0e9, 0.3e-6};
  m.fabric_link = {1.0e9, 0.3e-6};
  return m;
}

}  // namespace

int main() {
  using namespace hpcx;

  auto cheap = base_cluster();
  cheap.name = "cheap (Clos 4:1)";
  cheap.topology = mach::TopologyKind::kClos;
  cheap.clos_hosts_per_leaf = 16;
  cheap.clos_spines = 4;

  auto premium = base_cluster();
  premium.name = "premium (fat tree 1:1)";
  premium.topology = mach::TopologyKind::kFatTree;
  premium.core_taper = 1.0;

  constexpr int kCpus = 128;
  Table t("Interconnect budget study: same nodes, two fabrics, 128 CPUs");
  t.set_header({"Metric", "cheap (Clos 4:1)", "premium (fat tree 1:1)",
                "premium gain"});

  std::vector<std::vector<double>> cells;
  for (const auto* m : {&cheap, &premium}) {
    hpcc::HpccConfig cfg;
    cfg.ra_log2 = 20;  // keep the example quick
    const hpcc::HpccReport r = hpcc::run_hpcc_sim(*m, kCpus, cfg);
    double alltoall_us = 0;
    xmpi::run_on_machine(*m, kCpus, [&](xmpi::Comm& c) {
      imb::ImbParams p;
      p.msg_bytes = 1 << 20;
      p.phantom = true;
      const auto res = imb::run_benchmark(imb::BenchmarkId::kAlltoall, c, p);
      if (c.rank() == 0) alltoall_us = res.t_avg_s * 1e6;
    });
    cells.push_back({r.g_hpl_flops / 1e9, r.g_fft_flops / 1e9,
                     r.g_ptrans_Bps / 1e9, r.ring_bw_Bps / 1e6,
                     alltoall_us / 1e3, r.ep_stream_copy_Bps / 1e9});
  }

  const char* metric_names[] = {"G-HPL (Gflop/s)",     "G-FFT (Gflop/s)",
                                "G-PTRANS (GB/s)",     "RandomRing (MB/s/cpu)",
                                "Alltoall 1MB (ms)",   "EP-STREAM (GB/s/cpu)"};
  const bool smaller_better[] = {false, false, false, false, true, false};
  for (std::size_t i = 0; i < std::size(metric_names); ++i) {
    const double a = cells[0][i], b = cells[1][i];
    const double gain = smaller_better[i] ? a / b : b / a;
    t.add_row({metric_names[i], format_fixed(a, 1), format_fixed(b, 1),
               format_fixed(gain, 2) + "x"});
  }
  t.add_note("bisection-bound work (FFT/PTRANS/Alltoall/random-ring) pays "
             "for the premium fabric; HPL and EP- kernels barely notice — "
             "the paper's central observation, applied to a design choice");
  t.print(std::cout);
  return 0;
}
