// Chrome trace-event JSON exporter for trace::Recorder contents.
//
// The output is the classic "JSON object format" understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing: one "X" complete event per
// recorded span (pid 0 = the ranks, one tid per rank) and one "C"
// counter event per link-utilization sample (pid 1 = the network).
// Timestamps are microseconds; whether they are virtual or wall-clock
// seconds at source is stamped into otherData.clock.
//
// With a critical-path overlay (see obs/critical_path.hpp), the
// makespan-tiling path segments additionally render as "X" slices on a
// dedicated "hpcx critical path" process (pid 2), chained by "s"/"f"
// flow events so Perfetto draws the causal arrows along the path.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcx::trace {

class Recorder;

/// One critical-path segment prepared for the exporter (the obs layer
/// builds these from its analysis, so the exporter needs no obs types).
struct CriticalPathSlice {
  double t0 = 0.0;
  double t1 = 0.0;
  int rank = -1;         ///< owning rank context, -1 when none
  std::string name;      ///< slice label, e.g. "link h3->spine1"
  std::string category;  ///< "rank", "link", "nic-injection", ...
};

void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::vector<CriticalPathSlice>* critical_path =
                            nullptr);

}  // namespace hpcx::trace
