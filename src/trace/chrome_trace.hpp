// Chrome trace-event JSON exporter for trace::Recorder contents.
//
// The output is the classic "JSON object format" understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing: one "X" complete event per
// recorded span (pid 0 = the ranks, one tid per rank) and one "C"
// counter event per link-utilization sample (pid 1 = the network).
// Timestamps are microseconds; whether they are virtual or wall-clock
// seconds at source is stamped into otherData.clock.
#pragma once

#include <iosfwd>

namespace hpcx::trace {

class Recorder;

void write_chrome_trace(std::ostream& os, const Recorder& rec);

}  // namespace hpcx::trace
