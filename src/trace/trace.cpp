#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

#include "core/error.hpp"
#include "core/table.hpp"
#include "core/units.hpp"

namespace hpcx::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kSend:
      return "send";
    case EventKind::kRecv:
      return "recv";
    case EventKind::kCollective:
      return "collective";
    case EventKind::kCompute:
      return "compute";
    case EventKind::kPhase:
      return "phase";
  }
  return "?";
}

const char* to_string(PhaseId p) {
  switch (p) {
    case PhaseId::kHplFactor:
      return "hpl.factor";
    case PhaseId::kHplBcast:
      return "hpl.bcast";
    case PhaseId::kHplUpdate:
      return "hpl.update";
    case PhaseId::kFftCompute:
      return "fft.compute";
    case PhaseId::kFftTranspose:
      return "fft.transpose";
    case PhaseId::kPtransTranspose:
      return "ptrans.transpose";
  }
  return "?";
}

const char* to_string(CollOp op) {
  switch (op) {
    case CollOp::kBarrier:
      return "Barrier";
    case CollOp::kBcast:
      return "Bcast";
    case CollOp::kReduce:
      return "Reduce";
    case CollOp::kAllreduce:
      return "Allreduce";
    case CollOp::kGather:
      return "Gather";
    case CollOp::kScatter:
      return "Scatter";
    case CollOp::kAllgather:
      return "Allgather";
    case CollOp::kAllgatherv:
      return "Allgatherv";
    case CollOp::kAlltoall:
      return "Alltoall";
    case CollOp::kAlltoallv:
      return "Alltoallv";
    case CollOp::kReduceScatter:
      return "Reduce_scatter";
  }
  return "?";
}

const char* to_string(AlgId a) {
  switch (a) {
    case AlgId::kNone:
      return "none";
    case AlgId::kBinomial:
      return "binomial";
    case AlgId::kScatterRing:
      return "scatter-ring";
    case AlgId::kPipelinedRing:
      return "pipelined-ring";
    case AlgId::kRecursiveDoubling:
      return "recursive-doubling";
    case AlgId::kRabenseifner:
      return "rabenseifner";
    case AlgId::kBruck:
      return "bruck";
    case AlgId::kRing:
      return "ring";
    case AlgId::kPairwise:
      return "pairwise";
    case AlgId::kRecursiveHalving:
      return "recursive-halving";
    case AlgId::kDissemination:
      return "dissemination";
    case AlgId::kHardware:
      return "hardware";
    case AlgId::kBinomialSegmented:
      return "binomial-segmented";
    case AlgId::kGatherBcast:
      return "gather-bcast";
  }
  return "?";
}

std::size_t size_class(std::uint64_t bytes) {
  return static_cast<std::size_t>(std::bit_width(bytes));
}

std::string size_class_label(std::size_t cls) {
  if (cls == 0) return "0 B";
  const std::uint64_t lo = 1ull << (cls - 1);
  return "[" + format_bytes(lo) + ", " + format_bytes(lo * 2) + ")";
}

void Counters::merge(const Counters& other) {
  sends += other.sends;
  recvs += other.recvs;
  collectives += other.collectives;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  compute_s += other.compute_s;
  wait_s += other.wait_s;
  copy_s += other.copy_s;
  elapsed_s += other.elapsed_s;
  for (std::size_t i = 0; i < phase_s.size(); ++i)
    phase_s[i] += other.phase_s[i];
  for (std::size_t i = 0; i < send_size_hist.size(); ++i)
    send_size_hist[i] += other.send_size_hist[i];
  for (std::size_t i = 0; i < reduce_bytes.size(); ++i)
    reduce_bytes[i] += other.reduce_bytes[i];
  for (std::size_t op = 0; op < alg_dispatch.size(); ++op)
    for (std::size_t a = 0; a < alg_dispatch[op].size(); ++a)
      alg_dispatch[op][a] += other.alg_dispatch[op][a];
  eager_sends += other.eager_sends;
  rendezvous_sends += other.rendezvous_sends;
  payload_copies += other.payload_copies;
  for (std::size_t i = 0; i < eager_size_hist.size(); ++i)
    eager_size_hist[i] += other.eager_size_hist[i];
  for (std::size_t i = 0; i < rendezvous_size_hist.size(); ++i)
    rendezvous_size_hist[i] += other.rendezvous_size_hist[i];
}

void EngineStats::merge(const EngineStats& other) {
  workers = std::max(workers, other.workers);
  windows += other.windows;
  lookahead_limited += other.lookahead_limited;
  work_limited += other.work_limited;
  delivery_batches += other.delivery_batches;
  deliveries += other.deliveries;
  merge_segments += other.merge_segments;
  merge_seg_max = std::max(merge_seg_max, other.merge_seg_max);
  total_wall_s += other.total_wall_s;
  flush_wall_s += other.flush_wall_s;
  merge_wall_s += other.merge_wall_s;
  window_wall_s += other.window_wall_s;
  stall_wall_s += other.stall_wall_s;
  if (lps.size() < other.lps.size()) lps.resize(other.lps.size());
  for (std::size_t i = 0; i < other.lps.size(); ++i) {
    LpStats& mine = lps[i];
    const LpStats& theirs = other.lps[i];
    mine.ranks = std::max(mine.ranks, theirs.ranks);
    mine.windows += theirs.windows;
    mine.idle_windows += theirs.idle_windows;
    mine.events += theirs.events;
    mine.deliveries_in += theirs.deliveries_in;
    mine.busy_wall_s += theirs.busy_wall_s;
  }
}

RankTrace::RankTrace(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void RankTrace::record(const Event& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<Event> RankTrace::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // next_ is the oldest surviving slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

Recorder::Recorder(int nranks, std::size_t events_per_rank) {
  HPCX_REQUIRE(nranks >= 1, "trace recorder needs at least one rank");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) ranks_.emplace_back(events_per_rank);
}

RankTrace& Recorder::rank(int r) {
  HPCX_ASSERT(r >= 0 && r < nranks());
  return ranks_[static_cast<std::size_t>(r)];
}

const RankTrace& Recorder::rank(int r) const {
  HPCX_ASSERT(r >= 0 && r < nranks());
  return ranks_[static_cast<std::size_t>(r)];
}

Counters Recorder::total() const {
  Counters sum;
  for (const auto& rt : ranks_) sum.merge(rt.counters());
  return sum;
}

void Recorder::merge(const Recorder& other) {
  if (ranks_.empty()) return;
  const int last = nranks() - 1;
  for (int r = 0; r < other.nranks(); ++r) {
    RankTrace& mine = rank(std::min(r, last));
    mine.counters().merge(other.rank(r).counters());
    mine.fold_counts(other.rank(r).recorded(), other.rank(r).dropped());
  }
  for (const LinkTrack& track : other.links_) {
    auto it = std::find_if(
        links_.begin(), links_.end(),
        [&](const LinkTrack& mine) { return mine.name == track.name; });
    if (it == links_.end()) {
      links_.push_back(track);
      continue;
    }
    it->messages += track.messages;
    it->bytes += track.bytes;
    it->busy_s += track.busy_s;
    it->queued_s += track.queued_s;
    it->points.insert(it->points.end(), track.points.begin(),
                      track.points.end());
  }
  engine_.merge(other.engine_);
}

Table Recorder::summary_table() const {
  Table t(std::string("Trace summary (") +
          (virtual_time_ ? "virtual" : "wall-clock") + " time)");
  t.set_header({"rank", "sends", "recvs", "colls", "bytes sent",
                "bytes recvd", "compute", "wait", "copy", "eager", "rdv",
                "copies", "events", "dropped"});
  auto row = [&](const std::string& label, const Counters& c,
                 std::uint64_t recorded, std::uint64_t dropped) {
    t.add_row({label, std::to_string(c.sends), std::to_string(c.recvs),
               std::to_string(c.collectives), format_bytes(c.bytes_sent),
               format_bytes(c.bytes_received), format_time(c.compute_s),
               format_time(c.wait_s), format_time(c.copy_s),
               std::to_string(c.eager_sends),
               std::to_string(c.rendezvous_sends),
               std::to_string(c.payload_copies), std::to_string(recorded),
               std::to_string(dropped)});
  };
  std::uint64_t recorded = 0, dropped = 0;
  for (int r = 0; r < nranks(); ++r) {
    const RankTrace& rt = rank(r);
    row(std::to_string(r), rt.counters(), rt.recorded(), rt.dropped());
    recorded += rt.recorded();
    dropped += rt.dropped();
  }
  row("total", total(), recorded, dropped);
  const Counters sum = total();
  for (std::size_t p = 0; p < kNumPhases; ++p)
    if (sum.phase_s[p] > 0.0)
      t.add_note(std::string("phase ") + to_string(static_cast<PhaseId>(p)) +
                 ": " + format_time(sum.phase_s[p]) + " (all ranks)");
  return t;
}

Table Recorder::histogram_table() const {
  Table t("Send size-class histogram (all ranks)");
  t.set_header({"size class", "sends", "eager", "rendezvous"});
  const Counters sum = total();
  for (std::size_t cls = 0; cls < kSizeClasses; ++cls) {
    const std::uint64_t s = sum.send_size_hist[cls];
    const std::uint64_t e = sum.eager_size_hist[cls];
    const std::uint64_t r = sum.rendezvous_size_hist[cls];
    if (s + e + r == 0) continue;
    t.add_row({size_class_label(cls), std::to_string(s), std::to_string(e),
               std::to_string(r)});
  }
  std::uint64_t dropped = 0;
  for (int r = 0; r < nranks(); ++r) {
    const RankTrace& rt = rank(r);
    if (rt.dropped() > 0) {
      t.add_note("rank " + std::to_string(r) + " dropped " +
                 std::to_string(rt.dropped()) + " of " +
                 std::to_string(rt.recorded()) + " events (ring capacity " +
                 std::to_string(rt.capacity()) + ")");
      dropped += rt.dropped();
    }
  }
  if (dropped == 0) t.add_note("no events dropped on any rank");
  return t;
}

Table Recorder::alg_table() const {
  Table t("Collective algorithm dispatch (all ranks)");
  t.set_header({"collective", "algorithm", "calls"});
  const Counters sum = total();
  for (std::size_t op = 0; op < kNumCollOps; ++op)
    for (std::size_t a = 0; a < kNumAlgIds; ++a)
      if (sum.alg_dispatch[op][a] > 0)
        t.add_row({to_string(static_cast<CollOp>(op)),
                   to_string(static_cast<AlgId>(a)),
                   std::to_string(sum.alg_dispatch[op][a])});
  return t;
}

Table Recorder::lp_table() const {
  Table t("Parallel engine: per-LP windows");
  t.set_header(
      {"lp", "ranks", "windows", "idle", "events", "deliv in", "busy wall"});
  if (!engine_.present()) {
    t.add_note("serial engine (no LP windows recorded)");
    return t;
  }
  std::uint64_t events = 0;
  std::uint64_t deliv = 0;
  double busy = 0.0;
  for (std::size_t i = 0; i < engine_.lps.size(); ++i) {
    const LpStats& lp = engine_.lps[i];
    t.add_row({std::to_string(i), std::to_string(lp.ranks),
               std::to_string(lp.windows), std::to_string(lp.idle_windows),
               std::to_string(lp.events), std::to_string(lp.deliveries_in),
               format_time(lp.busy_wall_s)});
    events += lp.events;
    deliv += lp.deliveries_in;
    busy += lp.busy_wall_s;
  }
  t.add_row({"total", "-", std::to_string(engine_.windows), "-",
             std::to_string(events), std::to_string(deliv),
             format_time(busy)});
  t.add_note(std::to_string(engine_.lookahead_limited) +
             " lookahead-limited / " + std::to_string(engine_.work_limited) +
             " work-limited windows on " + std::to_string(engine_.workers) +
             " worker(s)");
  t.add_note("flush " + format_time(engine_.flush_wall_s) + " (order merge " +
             format_time(engine_.merge_wall_s) + "), windows " +
             format_time(engine_.window_wall_s) + ", barrier stall " +
             format_time(engine_.stall_wall_s) + " worker-seconds");
  t.add_note(std::to_string(engine_.deliveries) +
             " cross-LP deliveries in " +
             std::to_string(engine_.delivery_batches) + " flush batches");
  if (engine_.merge_segments > 0) {
    t.add_note("order merge: " + std::to_string(engine_.merge_segments) +
               " segments (largest " + std::to_string(engine_.merge_seg_max) +
               " events)");
  }
  return t;
}

Table Recorder::link_table(std::size_t top_n) const {
  Table t("Link utilization (busiest first)");
  t.set_header({"link", "messages", "bytes", "busy", "queued"});
  std::vector<const LinkTrack*> sorted;
  sorted.reserve(links_.size());
  for (const auto& l : links_) sorted.push_back(&l);
  std::sort(sorted.begin(), sorted.end(),
            [](const LinkTrack* a, const LinkTrack* b) {
              return a->busy_s > b->busy_s;
            });
  if (sorted.size() > top_n) sorted.resize(top_n);
  for (const LinkTrack* l : sorted)
    t.add_row({l->name, std::to_string(l->messages), format_bytes(l->bytes),
               format_time(l->busy_s), format_time(l->queued_s)});
  return t;
}

}  // namespace hpcx::trace
