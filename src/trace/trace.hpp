// hpcx::trace — low-overhead per-rank event tracing and counters.
//
// Every Comm can carry a RankTrace sink (see Comm::set_trace). While a
// sink is attached, the runtime records
//
//  * point-to-point transfers (kSend/kRecv, with peer, tag and bytes),
//  * collective spans (kCollective, tagged with the entry point and the
//    algorithm that actually ran — kAuto selections resolve to the
//    concrete choice), and
//  * compute() charges (kCompute),
//
// into a fixed-capacity single-writer ring of POD events, plus running
// counters (message/byte totals, a power-of-two message-size histogram,
// per-ROp reduction bytes). Overflowing the ring drops the *oldest*
// events and counts the drops; counters never saturate.
//
// Overhead contract: with no sink attached every hook is a single
// pointer test — no clock reads, no allocation, no stores — so traced
// and untraced builds are the same binary and untraced timings do not
// shift. With a sink attached each event costs two Comm::now() reads
// and one ring store; the ring is preallocated up front.
//
// Timestamps come from Comm::now(): *virtual* seconds under SimComm
// (deterministic, comparable across ranks) and wall-clock seconds under
// ThreadComm. Recorder::virtual_time() says which a run used; the
// Chrome exporter (trace/chrome_trace.hpp) stamps it into the file.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcx {
class Table;
}

namespace hpcx::trace {

enum class EventKind : std::uint8_t {
  kSend,
  kRecv,
  kCollective,
  kCompute,
  kPhase,  ///< benchmark-defined kernel phase (see PhaseId)
};

/// Benchmark-defined kernel phases, recorded as kPhase spans via
/// xmpi::PhaseScope. Durations also accumulate in Counters::phase_s, so
/// a run record can say where an HPCC kernel's time went without
/// replaying the event ring.
enum class PhaseId : std::uint8_t {
  kHplFactor,        ///< HPL panel factorisation (incl. pivot exchange)
  kHplBcast,         ///< HPL panel / U broadcasts
  kHplUpdate,        ///< HPL trailing dtrsm + DGEMM update
  kFftCompute,       ///< six-step FFT row FFTs + twiddle
  kFftTranspose,     ///< six-step FFT distributed transposes
  kPtransTranspose,  ///< PTRANS distributed transpose
};
constexpr std::size_t kNumPhases = 6;

/// Which collective entry point a span covers.
enum class CollOp : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kScatter,
  kAllgather,
  kAllgatherv,
  kAlltoall,
  kAlltoallv,
  kReduceScatter,
};
constexpr std::size_t kNumCollOps = 11;

/// The algorithm a collective actually executed, recorded on its span.
enum class AlgId : std::uint8_t {
  kNone,
  kBinomial,
  kScatterRing,
  kPipelinedRing,
  kRecursiveDoubling,
  kRabenseifner,
  kBruck,
  kRing,
  kPairwise,
  kRecursiveHalving,
  kDissemination,
  kHardware,
  kBinomialSegmented,
  kGatherBcast,
};
constexpr std::size_t kNumAlgIds = 14;

const char* to_string(EventKind k);
const char* to_string(CollOp op);
const char* to_string(AlgId a);
const char* to_string(PhaseId p);

/// One trace record. POD so the ring is a flat preallocated array.
struct Event {
  double t_begin = 0.0;
  double t_end = 0.0;
  EventKind kind = EventKind::kSend;
  std::uint8_t op = 0;     ///< CollOp (kCollective) or PhaseId (kPhase)
  std::uint8_t alg = 0;    ///< AlgId when kind == kCollective
  std::int32_t peer = -1;  ///< p2p peer rank, or collective root (-1: none)
  std::int32_t tag = 0;    ///< p2p tag
  std::uint64_t bytes = 0;

  CollOp coll_op() const { return static_cast<CollOp>(op); }
  AlgId alg_id() const { return static_cast<AlgId>(alg); }
  PhaseId phase_id() const { return static_cast<PhaseId>(op); }
};

/// Power-of-two message-size classes: class 0 is the empty message,
/// class k >= 1 covers [2^(k-1), 2^k) bytes.
constexpr std::size_t kSizeClasses = 65;
std::size_t size_class(std::uint64_t bytes);
std::string size_class_label(std::size_t cls);

/// Running per-rank totals, accumulated while a sink is attached.
struct Counters {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t collectives = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double compute_s = 0.0;

  // Wait-state attribution (the backends fill these while a sink is
  // attached). Together with compute_s they decompose a rank's elapsed
  // time: wait_s is measured blocked time (posted-receive spin/park,
  // rendezvous completion, barrier entry; virtual recv/barrier waits
  // under simulation), copy_s is payload movement (staged/direct
  // memcpys on the thread backend; send-side injection serialisation
  // and receive software overhead under simulation). Time in neither
  // bucket is application work — see metrics::RankBuckets::other_s().
  double wait_s = 0.0;
  double copy_s = 0.0;
  /// Duration of the rank's main function, set once by the runners
  /// (wall-clock or virtual seconds; += so multi-run recorders
  /// accumulate consistently with the other buckets).
  double elapsed_s = 0.0;
  /// Benchmark-defined phase spans by PhaseId (see xmpi::PhaseScope).
  std::array<double, kNumPhases> phase_s{};
  std::array<std::uint64_t, kSizeClasses> send_size_hist{};
  /// Reduction operand bytes by xmpi::ROp value (Sum/Prod/Max/Min).
  std::array<std::uint64_t, 4> reduce_bytes{};
  /// Collective dispatch counts by (CollOp, AlgId): which algorithm each
  /// entry point actually ran — kAuto selections resolve to the concrete
  /// choice, so a tuning table's effect is directly observable here.
  std::array<std::array<std::uint64_t, kNumAlgIds>, kNumCollOps>
      alg_dispatch{};

  // Transport-level protocol counters (ThreadComm fills these; they
  // cover *every* message the transport moves, including the p2p
  // traffic inside collectives). Classification is by the channel's
  // eager threshold; payload_copies counts actual memcpys, so a posted
  // receive shows up as one copy where a staged eager message costs two.
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t payload_copies = 0;
  std::array<std::uint64_t, kSizeClasses> eager_size_hist{};
  std::array<std::uint64_t, kSizeClasses> rendezvous_size_hist{};

  void note_send(std::uint64_t bytes) {
    ++sends;
    bytes_sent += bytes;
    ++send_size_hist[size_class(bytes)];
  }
  void note_recv(std::uint64_t bytes) {
    ++recvs;
    bytes_received += bytes;
  }
  void merge(const Counters& other);
};

/// Fixed-capacity ring of events plus counters for one rank. Strictly
/// single-writer: each rank records only into its own ring, so no
/// synchronisation is needed on either backend.
class RankTrace {
 public:
  explicit RankTrace(std::size_t capacity = 1 << 15);

  /// Append an event, overwriting the oldest once full.
  void record(const Event& e);

  /// Events in record order (oldest surviving first).
  std::vector<Event> events() const;

  std::uint64_t recorded() const { return total_ + merged_recorded_; }
  std::uint64_t dropped() const {
    return (total_ > capacity_ ? total_ - capacity_ : 0) + merged_dropped_;
  }
  std::size_t capacity() const { return capacity_; }

  /// Fold another rank's event accounting into this one (the events
  /// themselves stay with their source ring — only the totals commute).
  void fold_counts(std::uint64_t recorded, std::uint64_t dropped) {
    merged_recorded_ += recorded;
    merged_dropped_ += dropped;
  }

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;  ///< overwrite cursor once the ring is full
  std::uint64_t total_ = 0;
  std::uint64_t merged_recorded_ = 0;  ///< from Recorder::merge sources
  std::uint64_t merged_dropped_ = 0;
  Counters counters_;
};

/// One utilization sample of a directed network link (SimComm runs).
struct LinkPoint {
  double t = 0.0;
  double busy_s = 0.0;     ///< cumulative serialisation time reserved
  double backlog_s = 0.0;  ///< reserved-but-unserviced time (queue depth)
};

/// Per-directed-link utilization track with end-of-run totals.
struct LinkTrack {
  std::string name;  ///< "h0->spine1" (topology vertex labels)
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double busy_s = 0.0;
  double queued_s = 0.0;
  std::vector<LinkPoint> points;
};

/// One logical process of the parallel (conservative) simulation engine:
/// window participation and host-time cost. Wall seconds are host time
/// and never feed back into the schedule.
struct LpStats {
  int ranks = 0;                   ///< simulated ranks hosted by this LP
  std::uint64_t windows = 0;       ///< windows in which the LP ran events
  std::uint64_t idle_windows = 0;  ///< windows it was invoked but had none
  std::uint64_t events = 0;
  std::uint64_t deliveries_in = 0;  ///< cross-LP deliveries it received
  double busy_wall_s = 0.0;  ///< host time inside the LP's run_until calls
};

/// Parallel-engine drive summary (zero `windows` = the serial engine
/// ran; the per-LP table is then empty). Filled by the simulated
/// backend, folded across runs by Recorder::merge.
struct EngineStats {
  int workers = 0;  ///< max across merged runs
  std::uint64_t windows = 0;
  std::uint64_t lookahead_limited = 0;  ///< windows bounded by the lookahead
  std::uint64_t work_limited = 0;       ///< windows where queues went dry
  std::uint64_t delivery_batches = 0;   ///< flushes that moved >= 1 send
  std::uint64_t deliveries = 0;         ///< cross-LP sends applied in flushes
  std::uint64_t merge_segments = 0;     ///< order-merge segments across windows
  std::uint64_t merge_seg_max = 0;      ///< events in the largest segment
  double total_wall_s = 0.0;
  double flush_wall_s = 0.0;   ///< single-threaded cross-LP application
  double merge_wall_s = 0.0;   ///< order-log merge portion of the flushes
  double window_wall_s = 0.0;  ///< inside parallel windows
  double stall_wall_s = 0.0;   ///< worker-seconds idle at window barriers
  std::vector<LpStats> lps;    ///< by LP index

  bool present() const { return windows > 0; }
  void merge(const EngineStats& other);
};

/// Aggregates the per-rank rings of one run plus (for simulated runs)
/// the network's link-utilization tracks. Create one per run and hand it
/// to run_on_machine / run_on_threads via their options structs.
class Recorder {
 public:
  explicit Recorder(int nranks, std::size_t events_per_rank = 1 << 15);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  RankTrace& rank(int r);
  const RankTrace& rank(int r) const;

  /// True when timestamps are virtual (SimComm); false for wall-clock.
  bool virtual_time() const { return virtual_time_; }
  void set_virtual_time(bool v) { virtual_time_ = v; }

  void set_link_tracks(std::vector<LinkTrack> tracks) {
    links_ = std::move(tracks);
  }
  const std::vector<LinkTrack>& link_tracks() const { return links_; }

  void set_engine_stats(EngineStats stats) { engine_ = std::move(stats); }
  const EngineStats& engine_stats() const { return engine_; }

  /// Counters summed over all ranks.
  Counters total() const;

  /// Fold another recorder's counters into this one, rank-aligned
  /// (other ranks beyond nranks() fold into rank nranks()-1). Event
  /// rings are not merged — only counters commute; call in a fixed
  /// order (e.g. sweep point index) for deterministic aggregates.
  void merge(const Recorder& other);

  /// Per-rank counter summary (core/table formatted).
  Table summary_table() const;

  /// Send size-class histogram with the eager/rendezvous transport
  /// split, plus per-rank event-ring drop counts as footnotes (drops
  /// mean the ring wrapped and the oldest events were lost).
  Table histogram_table() const;

  /// Busiest links, hottest first (empty table for thread runs).
  Table link_table(std::size_t top_n = 16) const;

  /// Nonzero (collective, algorithm) dispatch counts summed over ranks.
  Table alg_table() const;

  /// Parallel-engine per-LP window stats (empty note when the serial
  /// engine ran — i.e. engine_stats().present() is false).
  Table lp_table() const;

 private:
  std::vector<RankTrace> ranks_;
  std::vector<LinkTrack> links_;
  EngineStats engine_;
  bool virtual_time_ = false;
};

}  // namespace hpcx::trace
