#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace hpcx::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Emits one event object per line; tracks the need for a separating
/// comma so the events array stays valid JSON.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(&os) {}

  std::ostream& begin() {
    *os_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return *os_;
  }

 private:
  std::ostream* os_;
  bool first_ = true;
};

double us(double seconds) { return seconds * 1e6; }

void write_meta(EventWriter& w, int pid, int tid, const char* what,
                const std::string& name) {
  w.begin() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
            << json_escape(name) << "\"}}";
}

void write_span(EventWriter& w, int rank, const Event& e) {
  std::string name;
  switch (e.kind) {
    case EventKind::kSend:
      name = "send->" + std::to_string(e.peer);
      break;
    case EventKind::kRecv:
      name = "recv<-" + std::to_string(e.peer);
      break;
    case EventKind::kCollective:
      name = to_string(e.coll_op());
      break;
    case EventKind::kCompute:
      name = "compute";
      break;
    case EventKind::kPhase:
      name = to_string(e.phase_id());
      break;
  }
  auto& os = w.begin();
  os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << rank << ",\"ts\":" << us(e.t_begin)
     << ",\"dur\":" << us(e.t_end - e.t_begin) << ",\"name\":\""
     << json_escape(name) << "\",\"args\":{";
  os << "\"bytes\":" << e.bytes;
  if (e.kind == EventKind::kCollective) {
    os << ",\"alg\":\"" << to_string(e.alg_id()) << "\"";
    if (e.peer >= 0) os << ",\"root\":" << e.peer;
  } else if (e.kind == EventKind::kSend || e.kind == EventKind::kRecv) {
    os << ",\"peer\":" << e.peer << ",\"tag\":" << e.tag;
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Recorder& rec,
                        const std::vector<CriticalPathSlice>* critical_path) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(15);

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
     << (rec.virtual_time() ? "virtual" : "wall") << "\"},\"traceEvents\":[";
  EventWriter w(os);
  write_meta(w, 0, 0, "process_name", "hpcx ranks");
  if (!rec.link_tracks().empty())
    write_meta(w, 1, 0, "process_name", "hpcx network");
  if (critical_path != nullptr && !critical_path->empty())
    write_meta(w, 2, 0, "process_name", "hpcx critical path");

  for (int r = 0; r < rec.nranks(); ++r) {
    write_meta(w, 0, r, "thread_name", "rank " + std::to_string(r));
    std::vector<Event> events = rec.rank(r).events();
    // Perfetto nests complete events by containment; ties on the begin
    // timestamp must emit the enclosing (longer) span first.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.t_begin != b.t_begin) return a.t_begin < b.t_begin;
                       return a.t_end > b.t_end;
                     });
    for (const Event& e : events) write_span(w, r, e);
  }

  // Link tracks become counter series. LinkPoint carries *cumulative*
  // busy seconds; Perfetto wants instantaneous values, so each sample
  // emits the utilization of the interval since the previous sample
  // (fraction of wall/virtual time the link spent serialising) plus the
  // backlog — queued-but-unserviced seconds — at the sample instant.
  for (const LinkTrack& link : rec.link_tracks()) {
    double prev_t = 0.0, prev_busy = 0.0;
    for (const LinkPoint& p : link.points) {
      const double dt = p.t - prev_t;
      const double util =
          dt > 0.0 ? std::clamp((p.busy_s - prev_busy) / dt, 0.0, 1.0) : 0.0;
      w.begin() << "{\"ph\":\"C\",\"pid\":1,\"ts\":" << us(p.t)
                << ",\"name\":\"link " << json_escape(link.name)
                << "\",\"args\":{\"utilization\":" << util
                << ",\"backlog_s\":" << p.backlog_s << "}}";
      prev_t = p.t;
      prev_busy = p.busy_s;
    }
  }

  // Critical-path overlay: the path's segments tile [0, makespan], so
  // they render as one continuous row; flow events chain consecutive
  // segments (and each segment binds to its owning rank's track via the
  // args) so the causal route is followable in the UI.
  if (critical_path != nullptr) {
    int flow = 0;
    for (std::size_t i = 0; i < critical_path->size(); ++i) {
      const CriticalPathSlice& s = (*critical_path)[i];
      auto& o = w.begin();
      o << "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":" << us(s.t0)
        << ",\"dur\":" << us(s.t1 - s.t0) << ",\"name\":\""
        << json_escape(s.name) << "\",\"cat\":\"" << json_escape(s.category)
        << "\",\"args\":{\"rank\":" << s.rank << "}}";
      if (i + 1 < critical_path->size()) {
        w.begin() << "{\"ph\":\"s\",\"pid\":2,\"tid\":0,\"ts\":" << us(s.t1)
                  << ",\"id\":" << flow
                  << ",\"cat\":\"cp\",\"name\":\"critical-path\"}";
        const CriticalPathSlice& n = (*critical_path)[i + 1];
        w.begin() << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":2,\"tid\":0,\"ts\":"
                  << us(n.t1) << ",\"id\":" << flow
                  << ",\"cat\":\"cp\",\"name\":\"critical-path\"}";
        ++flow;
      }
    }
  }
  os << "\n]}\n";

  os.flags(flags);
  os.precision(precision);
}

}  // namespace hpcx::trace
