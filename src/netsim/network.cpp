#include "netsim/network.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/error.hpp"

namespace hpcx::net {

Network::Network(des::Simulator& sim, topo::Graph graph, NicParams nic,
                 NodeParams node)
    : sim_(&sim),
      graph_(std::move(graph)),
      routing_(graph_),
      nic_(nic),
      node_(node) {
  HPCX_REQUIRE(nic_.injection_Bps > 0, "injection bandwidth must be > 0");
  HPCX_REQUIRE(node_.intranode_Bps > 0, "intranode bandwidth must be > 0");
  HPCX_REQUIRE(node_.node_mem_Bps > 0, "node memory bandwidth must be > 0");
  edge_busy_.assign(graph_.num_edges(), des::SimResource(*sim_));
  edge_stats_.assign(graph_.num_edges(), EdgeStats{});
  nic_tx_.assign(graph_.num_hosts(), des::SimResource(*sim_));
  node_mem_.assign(graph_.num_hosts(), des::SimResource(*sim_));
  path_cache_.resize(graph_.num_hosts());
}

const Network::PathRef& Network::cached_path(int src, int dst) {
  std::vector<PathRef>& row = path_cache_[static_cast<std::size_t>(src)];
  if (row.empty()) row.resize(graph_.num_hosts());
  PathRef& ref = row[static_cast<std::size_t>(dst)];
  if (!ref.cached) {
    const std::vector<topo::EdgeId> path = routing_.path(src, dst);
    HPCX_ASSERT(!path.empty());
    ref.offset = static_cast<std::uint32_t>(hop_arena_.size());
    ref.hops = static_cast<std::uint32_t>(path.size());
    ref.cached = true;
    for (const topo::EdgeId e : path) {
      const topo::Edge& edge = graph_.edge(e);
      hop_arena_.push_back(
          PathHop{e, edge.params.latency_s, edge.params.bandwidth_Bps});
    }
  }
  return ref;
}

void Network::send(int src, int dst, std::size_t bytes,
                   des::Callback on_delivered) {
  HPCX_ASSERT(src >= 0 && static_cast<std::size_t>(src) < graph_.num_hosts());
  HPCX_ASSERT(dst >= 0 && static_cast<std::size_t>(dst) < graph_.num_hosts());
  if (src == dst) {
    send_local_on(*sim_, src, bytes, std::move(on_delivered));
  } else {
    send_remote(src, dst, bytes, std::move(on_delivered));
  }
}

void Network::send_local_on(des::Simulator& sim, int host, std::size_t bytes,
                            des::Callback on_delivered) {
  intranode_messages_.fetch_add(1, std::memory_order_relaxed);
  // The sending CPU performs the copy: per-transfer effective bandwidth,
  // stretched if the node's aggregate memory bandwidth is oversubscribed
  // by concurrent transfers.
  const double fbytes = static_cast<double>(bytes);
  const double copy_s = node_.intranode_latency_s + fbytes / node_.intranode_Bps;
  auto& mem = node_mem_[static_cast<std::size_t>(host)];
  // Reserve the aggregate memory engine for this transfer's share of
  // traffic; the transfer cannot finish before either constraint.
  const double aggregate_end =
      mem.reserve(sim.now(), fbytes / node_.node_mem_Bps);
  const double done = std::max(sim.now() + copy_s, aggregate_end);
  if (cp_labels_)
    sim.set_next_cp(des::CpKind::kCopy, static_cast<std::uint32_t>(host));
  sim.schedule(done - sim.now(), std::move(on_delivered));
  sim.sleep(done - sim.now());  // sender CPU busy for the copy
}

double Network::walk_path(int src, int dst, std::size_t bytes,
                          double inject_entry, double inject_end,
                          double t_sample) {
  const double fbytes = static_cast<double>(bytes);
  // Walk the routed path reserving each link. The head advances one hop
  // latency per link and queues behind busy links; serialisation runs
  // concurrently on all links (cut-through), so arrival is bounded by
  // the slowest reservation end (injection included). The route itself
  // comes from the per-pair cache: no per-message path allocation, no
  // repeated ECMP hashing, no graph edge lookups.
  const PathRef ref = cached_path(src, dst);
  const PathHop* hops = hop_arena_.data() + ref.offset;
  double head = inject_entry + nic_.per_message_gap_s;
  double arrival = inject_end;
  for (std::uint32_t h = 0; h < ref.hops; ++h) {
    const PathHop& hop = hops[h];
    auto& busy = edge_busy_[static_cast<std::size_t>(hop.edge)];
    const double free_at = busy.next_free();
    const double entry = std::max(head + hop.latency_s, free_at);
    const double ser_end = busy.reserve(entry, fbytes / hop.bandwidth_Bps);
    EdgeStats& stats = edge_stats_[static_cast<std::size_t>(hop.edge)];
    ++stats.messages;
    stats.bytes += bytes;
    stats.busy_s += fbytes / hop.bandwidth_Bps;
    stats.queued_s += std::max(0.0, free_at - (head + hop.latency_s));
    if (sampling_ && link_samples_.size() < sample_cap_) {
      double& last = last_sample_t_[static_cast<std::size_t>(hop.edge)];
      const double t = t_sample;
      if (last < 0.0 || t - last >= sample_min_interval_s_) {
        last = t;
        link_samples_.push_back(
            LinkSample{t, hop.edge, stats.busy_s, std::max(0.0, ser_end - t)});
      }
    }
    if (cp_labels_ && ser_end > arrival)
      cp_bottleneck_edge_ = static_cast<std::int64_t>(hop.edge);
    head = entry;
    arrival = std::max(arrival, ser_end);
  }
  return arrival;
}

void Network::send_remote(int src, int dst, std::size_t bytes,
                          des::Callback on_delivered) {
  internode_messages_.fetch_add(1, std::memory_order_relaxed);
  internode_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const double fbytes = static_cast<double>(bytes);

  // Send-side software overhead: CPU busy.
  sim_->sleep(nic_.send_overhead_s);

  // NIC injection behaves like a virtual first link of the cut-through
  // chain: it serialises the message at injection_Bps (back-pressuring
  // concurrent senders on the same host adaptor) while the head already
  // propagates into the fabric — injection and wire serialisation
  // overlap, as on real cut-through networks.
  auto& tx = nic_tx_[static_cast<std::size_t>(src)];
  const double inject_entry = std::max(sim_->now(), tx.next_free());
  const double inject_end = tx.reserve(
      inject_entry, nic_.per_message_gap_s + fbytes / nic_.injection_Bps);

  cp_bottleneck_edge_ = -1;  // injection-limited unless a hop beats it
  const double arrival =
      walk_path(src, dst, bytes, inject_entry, inject_end, sim_->now());

  if (cp_labels_)
    sim_->set_next_cp(des::CpKind::kDelivery,
                      cp_bottleneck_edge_ >= 0
                          ? static_cast<std::uint32_t>(cp_bottleneck_edge_)
                          : des::kCpNoActor);
  sim_->schedule(arrival - sim_->now(), std::move(on_delivered));
  // Block the sending CPU until its NIC has drained the message.
  sim_->sleep(inject_end - sim_->now());
}

Network::DeferredSend Network::begin_remote(des::Simulator& sim, int src,
                                            int dst, std::size_t bytes) {
  internode_messages_.fetch_add(1, std::memory_order_relaxed);
  internode_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const double fbytes = static_cast<double>(bytes);

  // Sender-local half, float-for-float the same as send_remote: the
  // overhead sleep, then the NIC injection reservation (nic_tx_ is
  // per-host, so the calling LP owns it exclusively).
  sim.sleep(nic_.send_overhead_s);
  auto& tx = nic_tx_[static_cast<std::size_t>(src)];
  const double inject_entry = std::max(sim.now(), tx.next_free());
  const double inject_end = tx.reserve(
      inject_entry, nic_.per_message_gap_s + fbytes / nic_.injection_Bps);

  DeferredSend d;
  d.src = src;
  d.dst = dst;
  d.bytes = bytes;
  d.t_walk = sim.now();
  d.inject_entry = inject_entry;
  d.inject_end = inject_end;
  return d;
}

double Network::finish_remote(const DeferredSend& d) {
  const double arrival =
      walk_path(d.src, d.dst, d.bytes, d.inject_entry, d.inject_end, d.t_walk);
  // The serial engine schedules the delivery `arrival - now` seconds
  // ahead and the queue stores now + delay; reproduce that exact
  // floating-point expression rather than returning `arrival` directly.
  return d.t_walk + (arrival - d.t_walk);
}

double Network::min_link_latency_s() const {
  double min_lat = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < graph_.num_edges(); ++e)
    min_lat = std::min(min_lat,
                       graph_.edge(static_cast<topo::EdgeId>(e)).params.latency_s);
  return min_lat;
}

void Network::enable_link_sampling(double min_interval_s,
                                   std::size_t max_samples) {
  sampling_ = true;
  sample_min_interval_s_ = min_interval_s;
  sample_cap_ = max_samples;
  last_sample_t_.assign(graph_.num_edges(), -1.0);
  link_samples_.clear();
  link_samples_.reserve(std::min<std::size_t>(max_samples, 4096));
}

std::vector<std::pair<topo::EdgeId, Network::EdgeStats>>
Network::hottest_edges(std::size_t top_n) const {
  std::vector<std::pair<topo::EdgeId, EdgeStats>> all;
  all.reserve(edge_stats_.size());
  for (std::size_t e = 0; e < edge_stats_.size(); ++e)
    all.emplace_back(static_cast<topo::EdgeId>(e), edge_stats_[e]);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second.busy_s > b.second.busy_s;
  });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

}  // namespace hpcx::net
