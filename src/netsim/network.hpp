// Message-level network simulator.
//
// Sits between the topology (static structure) and the simulated MPI
// layer (SimComm). A transfer between two ranks maps to either
//
//  * an intra-node copy through the node's memory system — modelled with
//    a per-transfer effective bandwidth plus an aggregate node memory
//    resource that concurrent transfers on the same node contend for; or
//
//  * an inter-node network message: LogGP-style sender overhead and NIC
//    injection serialisation, then cut-through forwarding along the
//    routed path with per-link busy reservation (each directed link is
//    occupied for bytes/bandwidth; heads advance one hop latency at a
//    time; queueing emerges from the reservations).
//
// All decisions are made in event context in deterministic order, so a
// given workload always produces the same timings.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "des/simulator.hpp"
#include "des/sync.hpp"
#include "topology/graph.hpp"
#include "topology/routing.hpp"

namespace hpcx::net {

/// NIC / MPI software stack cost parameters (LogGP-flavoured).
struct NicParams {
  double send_overhead_s = 1e-6;   ///< CPU time to initiate a send
  double recv_overhead_s = 1e-6;   ///< CPU time to complete a receive
  double injection_Bps = 1e9;      ///< host adaptor serialisation bandwidth
  double per_message_gap_s = 0.0;  ///< extra per-message NIC gap
};

/// Intra-node transfer parameters (shared-memory MPI path).
struct NodeParams {
  double intranode_Bps = 2e9;      ///< effective single-transfer bandwidth
  double intranode_latency_s = 5e-7;
  double node_mem_Bps = 8e9;       ///< aggregate node memory bandwidth cap
};

class Network {
 public:
  Network(des::Simulator& sim, topo::Graph graph, NicParams nic,
          NodeParams node);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Transfer `bytes` from host `src` to host `dst` (host indices).
  /// Must be called from a process fiber: the *caller is blocked* for the
  /// send-side cost (overhead + injection serialisation, or the full copy
  /// for intra-node). `on_delivered` fires in event context when the last
  /// byte reaches the destination; the receive overhead is NOT included
  /// (the communicator charges it to the receiving rank). The callback is
  /// threaded to the event queue as-is (no re-wrapping), so a small
  /// trivially-copyable capture — e.g. a pooled envelope pointer — makes
  /// the whole delivery path allocation-free.
  void send(int src, int dst, std::size_t bytes, des::Callback on_delivered);

  // --- Split-phase API for the parallel (multi-LP) simulator ---
  //
  // The serial send() touches shared fabric state (per-edge busy
  // reservations) inline; under the parallel scheduler that state must
  // only be touched single-threaded between synchronization windows.
  // begin_remote() performs the sender-local half in the calling LP
  // (overhead sleep + NIC injection reservation — the NIC is per-host,
  // hence LP-exclusive) and records everything the deferred fabric walk
  // needs; finish_remote() replays the walk later. When the deferred
  // walks are applied in the serial engine's global order — ascending
  // (t_walk, send sequence) — every reservation, statistic and delivery
  // time is bit-identical to the serial run.

  /// A remote send whose fabric walk has not happened yet.
  struct DeferredSend {
    int src = 0;
    int dst = 0;
    std::size_t bytes = 0;
    double t_walk = 0;        ///< time the serial engine would walk at
    double inject_entry = 0;  ///< NIC reservation start
    double inject_end = 0;    ///< NIC reservation end (sender unblocks)
  };

  /// Sender-local half of a remote send, on the LP simulator `sim`
  /// owning host `src`. Must be called from a process fiber; the caller
  /// stays blocked for the software overhead, and should additionally
  /// sleep until inject_end (as the serial path does) after recording
  /// the returned DeferredSend.
  DeferredSend begin_remote(des::Simulator& sim, int src, int dst,
                            std::size_t bytes);

  /// Deferred fabric walk: reserves the path's links exactly as the
  /// serial engine would have at d.t_walk and returns the absolute
  /// delivery time (same floating-point expression as the serial
  /// schedule() call). Single-threaded use only.
  double finish_remote(const DeferredSend& d);

  /// Intra-node copy on an explicit LP simulator (node memory is
  /// per-host, hence LP-exclusive). The serial send() delegates here
  /// with its own simulator.
  void send_local_on(des::Simulator& sim, int host, std::size_t bytes,
                     des::Callback on_delivered);

  /// Minimum modeled link latency over every edge — the raw material
  /// for the parallel scheduler's lookahead. +infinity with no edges.
  double min_link_latency_s() const;

  double recv_overhead_s() const { return nic_.recv_overhead_s; }
  const topo::Graph& graph() const { return graph_; }
  const topo::Routing& routing() const { return routing_; }

  /// Number of messages that crossed node boundaries / stayed local.
  std::uint64_t internode_messages() const {
    return internode_messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t intranode_messages() const {
    return intranode_messages_.load(std::memory_order_relaxed);
  }
  /// Total bytes carried over network links (payload, once per message).
  std::uint64_t internode_bytes() const {
    return internode_bytes_.load(std::memory_order_relaxed);
  }

  /// Per-directed-edge traffic accounting, for hotspot analysis.
  struct EdgeStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double busy_s = 0;     ///< total serialisation time reserved
    double queued_s = 0;   ///< total head-of-line waiting inflicted
  };
  const EdgeStats& edge_stats(topo::EdgeId e) const {
    return edge_stats_[static_cast<std::size_t>(e)];
  }
  /// Edges sorted by busy time, hottest first (index, stats) pairs.
  std::vector<std::pair<topo::EdgeId, EdgeStats>> hottest_edges(
      std::size_t top_n) const;

  /// One utilisation sample of a directed link, taken as a message
  /// traverses it. Sampling is event-driven (no periodic timers), so it
  /// never keeps the simulation alive after the ranks finish.
  struct LinkSample {
    double t = 0;          ///< virtual time of the sample
    topo::EdgeId edge{};
    double busy_s = 0;     ///< cumulative serialisation time up to t
    double backlog_s = 0;  ///< reserved link time still outstanding at t
  };
  /// Start recording LinkSamples. `min_interval_s` rate-limits samples
  /// per link (0 = every traversal); `max_samples` caps the total so a
  /// long run cannot grow the sample vector unboundedly.
  void enable_link_sampling(double min_interval_s = 0.0,
                            std::size_t max_samples = std::size_t{1} << 20);
  const std::vector<LinkSample>& link_samples() const { return link_samples_; }

  /// Label delivery events for the simulator's critical-path log: each
  /// remote delivery push names the constraining element of its walk
  /// (the edge whose serialisation finished last, or "NIC injection"
  /// when the source adaptor bounded the arrival). Serial engine only;
  /// off by default — the walk loop stays untouched.
  void enable_cp_labels(bool on) { cp_labels_ = on; }

 private:
  void send_remote(int src, int dst, std::size_t bytes,
                   des::Callback on_delivered);

  /// The shared cut-through walk: reserve every link of src->dst,
  /// update edge stats and samples (sample timestamps use t_sample),
  /// return the arrival time. Factored out so the serial inline path
  /// and the deferred parallel path run the identical float sequence.
  double walk_path(int src, int dst, std::size_t bytes, double inject_entry,
                   double inject_end, double t_sample);

  // One hop of a cached route: the edge id plus the per-edge parameters
  // the inner send loop needs, so it touches neither the routing tables
  // nor the graph's edge array.
  struct PathHop {
    topo::EdgeId edge;
    double latency_s;
    double bandwidth_Bps;
  };
  struct PathRef {
    std::uint32_t offset = 0;
    std::uint32_t hops = 0;
    bool cached = false;
  };
  /// The routed path src -> dst, computed once per (src, dst) pair and
  /// served from a flat arena afterwards. ECMP selection depends only on
  /// the pair (deterministic flow hash), so caching is exact.
  const PathRef& cached_path(int src, int dst);

  des::Simulator* sim_;
  topo::Graph graph_;
  topo::Routing routing_;
  NicParams nic_;
  NodeParams node_;
  std::vector<des::SimResource> edge_busy_;  // per directed edge
  std::vector<EdgeStats> edge_stats_;        // per directed edge
  std::vector<std::vector<PathRef>> path_cache_;  // [src][dst], rows lazy
  std::vector<PathHop> hop_arena_;           // backing store for PathRefs
  std::vector<des::SimResource> nic_tx_;     // per host
  std::vector<des::SimResource> node_mem_;   // per host (aggregate memory)
  // Relaxed atomics: under the parallel scheduler, concurrent LPs bump
  // these in-window. The totals are commutative sums, so they stay
  // deterministic at any worker count.
  std::atomic<std::uint64_t> internode_messages_{0};
  std::atomic<std::uint64_t> intranode_messages_{0};
  std::atomic<std::uint64_t> internode_bytes_{0};
  bool cp_labels_ = false;
  // Constraining element of the most recent walk_path under cp_labels_:
  // the edge whose reservation set the arrival, or -1 when the source
  // NIC's injection serialisation did.
  std::int64_t cp_bottleneck_edge_ = -1;
  bool sampling_ = false;
  double sample_min_interval_s_ = 0.0;
  std::size_t sample_cap_ = 0;
  std::vector<double> last_sample_t_;  // per directed edge; -1 = never
  std::vector<LinkSample> link_samples_;
};

}  // namespace hpcx::net
