#include "machine/registry.hpp"

#include "core/error.hpp"

namespace hpcx::mach {

// Calibration notes: link bandwidths and latencies anchor to values the
// paper quotes (InfiniBand 841 MB/s / 6.8 us, Myrinet 771 MB/s / 6.7 us,
// IXS 16 GB/s per node / ~5 us, NEC intra-node Sendrecv 47.4 GB/s, Cray
// X1 SSP intra-node 7.6 GB/s, Altix pair bandwidth 3.2 GB/s). Sustained
// efficiencies are standard-era values for each architecture class; the
// EXPERIMENTS.md shape checks are the acceptance criteria.

MachineConfig altix_bx2() {
  MachineConfig m;
  m.name = "SGI Altix BX2";
  m.short_name = "altix_bx2";
  m.network_name = "NUMALINK4";
  m.location = "NASA (USA)";
  m.vendor = "SGI";

  m.proc.name = "Intel Itanium 2";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 1.6e9;
  m.proc.flops_per_cycle = 4.0;  // two MADDs per clock
  m.proc.dgemm_efficiency = 0.92;
  m.proc.hpl_kernel_efficiency = 0.85;
  m.proc.fft_efficiency = 0.050;  // out-of-cache FFT is FSB-bound
  m.proc.stream_copy_Bps = 3.2e9;
  m.proc.random_update_rate = 9e6;

  m.mem.single_cpu_Bps = 3.2e9;       // a CPU pair shares a 3.2 GB/s FSB
  m.mem.node_aggregate_Bps = 16.8e9;  // ~2.1 GB/s per CPU, brick-wide

  // The unit of the interconnect is the C-brick: "eight Intel Itanium 2
  // processors are grouped together in a brick ... connected by
  // NUMALINK4 to another C-brick". A 512-CPU box = 64 C-bricks, matching
  // Table 1.
  m.cpus_per_node = 8;
  m.max_cpus = 2024;

  m.topology = TopologyKind::kFatTree;
  // NUMALINK4 is 3.2 GB/s per direction per channel; a C-brick carries
  // multiple channels (~1.6 GB/s per CPU effective).
  m.host_link = {12.8e9, 0.15e-6};
  m.fabric_link = {12.8e9, 0.15e-6};
  m.core_taper = 1.0;
  m.single_box_nodes = 64;   // one 512-CPU box = 64 C-bricks
  m.multi_box_taper = 0.12;  // steep B/kFlop drop beyond one box (Fig 2)

  m.nic.send_overhead_s = 0.30e-6;
  m.nic.recv_overhead_s = 0.30e-6;
  m.nic.injection_Bps = 12.8e9;
  m.nic.per_message_gap_s = 0.05e-6;

  m.node.intranode_Bps = 1.9e9;  // global shared memory through the SHUBs
  m.node.intranode_latency_s = 0.40e-6;
  m.node.node_mem_Bps = 16.8e9;
  return m;
}

MachineConfig altix_numalink3() {
  MachineConfig m = altix_bx2();
  m.name = "SGI Altix (NUMALINK3)";
  m.short_name = "altix_nl3";
  m.network_name = "NUMALINK3";
  // Half the theoretical link bandwidth; the paper observes random-ring
  // performance ~2.2x lower than NUMALINK4 inside one box.
  m.host_link = {6.4e9, 0.25e-6};
  m.fabric_link = {6.4e9, 0.25e-6};
  m.nic.injection_Bps = 6.4e9;
  m.nic.send_overhead_s = 0.45e-6;
  m.nic.recv_overhead_s = 0.45e-6;
  return m;
}

MachineConfig cray_x1_msp() {
  MachineConfig m;
  m.name = "Cray X1 (MSP)";
  m.short_name = "cray_x1_msp";
  m.network_name = "Cray proprietary";
  m.location = "NASA (USA)";
  m.vendor = "Cray";

  m.proc.name = "Cray X1 MSP";
  m.proc.cpu_class = CpuClass::kVector;
  m.proc.clock_hz = 0.8e9;
  m.proc.flops_per_cycle = 16.0;  // 4 SSPs x 2 pipes x 2 flops
  m.proc.dgemm_efficiency = 0.90;
  m.proc.hpl_kernel_efficiency = 0.77;
  m.proc.hpl_panel_fraction = 0.50;  // vector pipes hide panel latency
  m.proc.fft_efficiency = 0.060;  // HPCC FFT does not vectorise
  m.proc.stream_copy_Bps = 26e9;
  m.proc.random_update_rate = 25e6;  // vector gather/scatter helps

  m.mem.single_cpu_Bps = 26e9;
  m.mem.node_aggregate_Bps = 96e9;

  m.cpus_per_node = 4;
  m.max_cpus = 16;  // NASA system: 4 nodes x 4 MSPs

  m.topology = TopologyKind::kHypercube;
  m.host_link = {12.8e9, 0.30e-6};
  m.fabric_link = {12.8e9, 0.50e-6};

  m.nic.send_overhead_s = 3.0e-6;
  m.nic.recv_overhead_s = 3.0e-6;
  m.nic.injection_Bps = 12.8e9;
  m.nic.per_message_gap_s = 0.2e-6;

  m.node.intranode_Bps = 5.0e9;
  m.node.intranode_latency_s = 3.0e-6;  // X1 MPI latency is high even on-node
  m.node.node_mem_Bps = 96e9;
  // "the Cray X1 in MSP mode where barrier time increases very slowly":
  // hardware-assisted synchronisation.
  m.hw_barrier_latency_s = 10e-6;
  return m;
}

MachineConfig cray_x1_ssp() {
  MachineConfig m = cray_x1_msp();
  m.name = "Cray X1 (SSP)";
  m.short_name = "cray_x1_ssp";
  m.proc.name = "Cray X1 SSP";
  m.proc.flops_per_cycle = 4.0;  // 2 vector pipes x 2 flops
  m.proc.stream_copy_Bps = 7.0e9;
  m.proc.random_update_rate = 8e6;
  m.mem.single_cpu_Bps = 7.0e9;
  m.cpus_per_node = 16;  // 16 SSPs per node
  m.max_cpus = 48;       // 3 compute nodes
  m.hw_barrier_latency_s = 0;  // SSP mode: software barrier
  // Intra-node Sendrecv anchor: 7.6 GB/s for an SSP pair (IMB counts the
  // two directions, so ~3.8 GB/s effective per transfer).
  m.node.intranode_Bps = 3.8e9;
  return m;
}

MachineConfig cray_opteron() {
  MachineConfig m;
  m.name = "Cray Opteron Cluster";
  m.short_name = "cray_opteron";
  m.network_name = "Myrinet";
  m.location = "NASA (USA)";
  m.vendor = "Cray";

  m.proc.name = "AMD Opteron";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 2.0e9;
  m.proc.flops_per_cycle = 2.0;
  m.proc.dgemm_efficiency = 0.88;
  // The paper singles out the Opteron cluster's low HPL efficiency
  // (declining ~20% between 4 and 64 CPUs) — Fig 5's EP-DGEMM column.
  m.proc.hpl_kernel_efficiency = 0.55;
  m.proc.fft_efficiency = 0.065;
  m.proc.stream_copy_Bps = 3.0e9;
  m.proc.random_update_rate = 14e6;  // integrated memory controller

  m.mem.single_cpu_Bps = 3.0e9;
  m.mem.node_aggregate_Bps = 4.3e9;

  m.cpus_per_node = 2;
  m.max_cpus = 64;

  m.topology = TopologyKind::kClos;
  m.clos_hosts_per_leaf = 8;  // 16-port Myrinet crossbars: 8 down, 8 up
  m.clos_spines = 4;          // modest 2:1 over-subscription
  m.host_link = {0.50e9, 0.30e-6};  // Lanai PCI-X effective
  m.fabric_link = {0.50e9, 0.30e-6};

  m.nic.send_overhead_s = 2.6e-6;
  m.nic.recv_overhead_s = 2.6e-6;
  m.nic.injection_Bps = 0.45e9;  // one PCI-X Lanai card per 2-CPU node
  m.nic.per_message_gap_s = 0.5e-6;

  m.node.intranode_Bps = 1.2e9;
  m.node.intranode_latency_s = 0.8e-6;
  m.node.node_mem_Bps = 4.3e9;
  return m;
}

MachineConfig dell_xeon() {
  MachineConfig m;
  m.name = "Dell Xeon Cluster";
  m.short_name = "dell_xeon";
  m.network_name = "InfiniBand";
  m.location = "NCSA (USA)";
  m.vendor = "Dell";

  m.proc.name = "Intel Xeon (Nocona)";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 3.6e9;
  m.proc.flops_per_cycle = 2.0;
  m.proc.dgemm_efficiency = 0.85;
  m.proc.hpl_kernel_efficiency = 0.75;  // Tungsten ran HPL at ~64% overall
  m.proc.fft_efficiency = 0.045;
  m.proc.stream_copy_Bps = 3.0e9;
  m.proc.random_update_rate = 8e6;

  m.mem.single_cpu_Bps = 3.0e9;  // 800 MHz FSB
  m.mem.node_aggregate_Bps = 4.0e9;

  m.cpus_per_node = 2;
  m.max_cpus = 512;

  // "The IB is configured in groups of 18 nodes 1:1 with 3:1 blocking
  // through the core IB switches": a two-level Clos with 18-node leaves
  // and 6 spine uplinks per leaf.
  m.topology = TopologyKind::kClos;
  m.clos_hosts_per_leaf = 18;
  m.clos_spines = 6;
  m.host_link = {0.841e9, 0.25e-6};  // MPI-level peak the paper quotes
  m.fabric_link = {1.0e9, 0.25e-6};  // 4x IB SDR

  m.nic.send_overhead_s = 2.8e-6;
  m.nic.recv_overhead_s = 2.8e-6;
  m.nic.injection_Bps = 0.841e9;
  m.nic.per_message_gap_s = 0.3e-6;

  m.node.intranode_Bps = 1.0e9;
  m.node.intranode_latency_s = 0.7e-6;
  m.node.node_mem_Bps = 4.0e9;
  return m;
}

MachineConfig nec_sx8() {
  MachineConfig m;
  m.name = "NEC SX-8";
  m.short_name = "sx8";
  m.network_name = "IXS";
  m.location = "HLRS (Germany)";
  m.vendor = "NEC";

  m.proc.name = "NEC SX-8 vector CPU";
  m.proc.cpu_class = CpuClass::kVector;
  m.proc.clock_hz = 2.0e9;
  m.proc.flops_per_cycle = 8.0;  // 16 Gflop/s vector peak
  m.proc.dgemm_efficiency = 0.96;
  m.proc.hpl_kernel_efficiency = 0.95;  // SX-8 HPL ran at ~95% of peak
  m.proc.hpl_panel_fraction = 0.50;  // vector pipes hide panel latency
  m.proc.fft_efficiency = 0.10;  // poorly vectorised but bandwidth-fed
  m.proc.stream_copy_Bps = 41e9;
  m.proc.random_update_rate = 40e6;  // vector gather/scatter

  m.mem.single_cpu_Bps = 41e9;       // 64 GB/s per CPU, ~41 sustained
  m.mem.node_aggregate_Bps = 328e9;  // full per-CPU bandwidth, 8 CPUs

  m.cpus_per_node = 8;
  m.max_cpus = 576;

  m.topology = TopologyKind::kCrossbar;
  // IXS: "each node can send and receive with 16 GB/s in each
  // direction. However ... the 8 processors inside a node share the
  // bandwidth."
  m.host_link = {16e9, 0.9e-6};

  m.nic.send_overhead_s = 1.6e-6;
  m.nic.recv_overhead_s = 1.6e-6;
  m.nic.injection_Bps = 16e9;
  m.nic.per_message_gap_s = 0.1e-6;

  m.node.intranode_Bps = 24e9;  // global-memory MPI: 47.4 GB/s Sendrecv
  m.node.intranode_latency_s = 1.0e-6;
  m.node.node_mem_Bps = 328e9;
  // "The MPI library on the NEC SX-8 is optimized for global memory";
  // barriers synchronise through it at a flat cost.
  m.hw_barrier_latency_s = 7e-6;
  return m;
}

MachineConfig dell_xeon_wide() {
  MachineConfig m = dell_xeon();
  m.name = "Dell Xeon Cluster (wide PDES testbed)";
  m.short_name = "dell_xeon_wide";
  m.cpus_per_node = 512;
  m.max_cpus = 1 << 20;
  return m;
}

std::vector<MachineConfig> paper_machines() {
  return {altix_bx2(), cray_x1_msp(), cray_opteron(), dell_xeon(), nec_sx8()};
}

std::vector<MachineConfig> all_machines() {
  return {altix_bx2(), altix_numalink3(), cray_x1_msp(), cray_x1_ssp(),
          cray_opteron(), dell_xeon(), nec_sx8()};
}

MachineConfig machine_by_name(const std::string& short_name) {
  for (MachineConfig& m : all_machines())
    if (m.short_name == short_name) return m;
  if (short_name == "dell_xeon_wide") return dell_xeon_wide();
  throw ConfigError("unknown machine: " + short_name);
}

}  // namespace hpcx::mach
