// The five systems of the paper (plus variants the paper also plots:
// SGI Altix with NUMALINK3, Cray X1 in SSP mode), parameterised from the
// paper's Section 2 hardware descriptions, Tables 1-2, and the absolute
// anchor values quoted in the text (see DESIGN.md §6 for the list).
#pragma once

#include <string>
#include <vector>

#include "machine/machine.hpp"

namespace hpcx::mach {

MachineConfig altix_bx2();        // SGI Altix BX2, NUMALINK4 fat tree
MachineConfig altix_numalink3();  // same box, NUMALINK3 (Figs 1-4)
MachineConfig cray_x1_msp();      // Cray X1, MSP mode, 4D hypercube
MachineConfig cray_x1_ssp();      // Cray X1, SSP mode
MachineConfig cray_opteron();     // Cray Opteron Cluster, Myrinet Clos
MachineConfig dell_xeon();        // Dell Xeon Cluster, InfiniBand fat tree
MachineConfig nec_sx8();          // NEC SX-8, IXS crossbar

/// dell_xeon stretched to 512 CPUs per node and 1Mi max CPUs: the
/// parallel-DES scaling testbed. Wide nodes keep the topology build
/// cheap while the rank count stresses fibers, queues and the cross-LP
/// merge. Not a paper system — excluded from all_machines() so the
/// default sweeps stay paper-shaped, but resolvable by name
/// ("dell_xeon_wide") from every figure binary and the CLI.
MachineConfig dell_xeon_wide();

/// The five headline systems in the paper's plotting order.
std::vector<MachineConfig> paper_machines();

/// The full set including the NUMALINK3 and SSP variants.
std::vector<MachineConfig> all_machines();

/// Look up by short_name ("altix_bx2", "sx8", ...); throws ConfigError.
MachineConfig machine_by_name(const std::string& short_name);

}  // namespace hpcx::mach
