// Processor compute-cost model.
//
// Kernels running under the simulator charge local computation through
// this model instead of re-executing the math: the time formulas are the
// standard flop/byte counts of each HPCC kernel divided by a sustained
// rate that depends on the architecture class (vector vs cache-based
// scalar — the axis the paper's analysis revolves around).
#pragma once

#include <cstdint>
#include <string>

namespace hpcx::mach {

enum class CpuClass { kScalar, kVector };

struct ProcessorModel {
  std::string name;
  CpuClass cpu_class = CpuClass::kScalar;
  double clock_hz = 1e9;
  double flops_per_cycle = 2.0;

  /// Sustained fraction of peak for DGEMM-like dense kernels.
  double dgemm_efficiency = 0.85;
  /// Sustained fraction of peak for the HPL panel/update mix (slightly
  /// below DGEMM because of pivoting and triangular solves).
  double hpl_kernel_efficiency = 0.80;
  /// Panel (getf2) rate as a fraction of the update rate: the panel is
  /// latency/memory-bound; vector pipes hide more of it.
  double hpl_panel_fraction = 0.30;
  /// Sustained flop rate fraction for power-of-two FFTs (strided access;
  /// the paper notes the HPCC FFT "does not completely vectorize").
  double fft_efficiency = 0.12;

  /// STREAM copy bandwidth with a single CPU active on the node.
  double stream_copy_Bps = 2e9;
  /// Random 8-byte update rate (GUPS model): updates/second achievable by
  /// one CPU against its local memory.
  double random_update_rate = 5e6;

  double peak_flops() const { return clock_hz * flops_per_cycle; }

  /// Seconds for C += A*B with A m-by-k, B k-by-n.
  double dgemm_seconds(double m, double n, double k) const;

  /// Seconds for the O(n*nb) panel + O(n^2 * nb) update work HPL performs
  /// per step, folded into one "useful flops at HPL efficiency" charge.
  double hpl_flops_seconds(double flops) const;

  /// Seconds for an in-cache/memory complex-to-complex FFT of n points
  /// (5 n log2 n real flops at fft_efficiency * peak).
  double fft_seconds(double n) const;

  /// Seconds to stream `bytes` at the given effective bandwidth.
  static double stream_seconds(double bytes, double effective_Bps);

  /// Seconds for `updates` random table updates.
  double random_update_seconds(double updates) const;
};

}  // namespace hpcx::mach
