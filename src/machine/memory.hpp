// Node memory-subsystem model: how per-CPU STREAM bandwidth degrades as
// more CPUs on the node are active — the effect behind the paper's
// Byte/Flop balance analysis (Figs 3-4).
#pragma once

namespace hpcx::mach {

struct MemoryModel {
  /// STREAM copy bandwidth of one CPU with the node otherwise idle.
  double single_cpu_Bps = 2e9;
  /// Aggregate node memory bandwidth shared by all CPUs of the node.
  double node_aggregate_Bps = 4e9;

  /// Effective per-CPU STREAM bandwidth with `active` CPUs running the
  /// benchmark simultaneously (EP-STREAM runs all ranks at once).
  double per_cpu_Bps(int active_cpus) const;
};

}  // namespace hpcx::mach
