// Complete machine description: processor + memory + node structure +
// interconnect. One MachineConfig per paper system (src/machine/registry)
// plus whatever users define themselves (examples/design_your_cluster).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "machine/memory.hpp"
#include "machine/processor.hpp"
#include "netsim/network.hpp"
#include "topology/graph.hpp"

namespace hpcx::mach {

enum class TopologyKind { kFatTree, kHypercube, kCrossbar, kClos, kTorus };

const char* to_string(TopologyKind kind);

struct MachineConfig {
  std::string name;        ///< e.g. "NEC SX-8"
  std::string short_name;  ///< e.g. "sx8" (stable key for the registry)
  std::string network_name;  ///< e.g. "IXS" (paper Table 2 column)
  std::string location;    ///< paper Table 2 column
  std::string vendor;      ///< paper Table 2 column

  ProcessorModel proc;
  MemoryModel mem;
  int cpus_per_node = 2;
  int max_cpus = 512;  ///< largest CPU count the paper measured

  TopologyKind topology = TopologyKind::kFatTree;
  net::NicParams nic;
  net::NodeParams node;

  /// Interconnect cable parameters handed to the topology builder.
  topo::LinkParams host_link;
  topo::LinkParams fabric_link;
  /// Fat-tree core taper for blocking cores (1.0 = non-blocking).
  double core_taper = 1.0;
  /// Clos structure (used when topology == kClos).
  int clos_hosts_per_leaf = 8;
  int clos_spines = 8;
  /// Torus dimensionality (used when topology == kTorus); ring lengths
  /// are chosen near-cubic for the node count.
  int torus_dimensions = 3;
  /// Hardware/global-memory barrier latency; > 0 makes SimComm's
  /// barrier a flat-cost hardware synchronisation instead of the
  /// dissemination algorithm (NEC IXS global memory, Cray X1).
  double hw_barrier_latency_s = 0;
  /// Node count above which an extra tapered "multi-box" penalty applies
  /// (SGI Altix beyond one 512-CPU box); 0 disables. The taper is applied
  /// to the fat-tree core when exceeded.
  int single_box_nodes = 0;
  double multi_box_taper = 1.0;

  double peak_flops_per_node() const {
    return proc.peak_flops() * cpus_per_node;
  }

  /// Number of nodes needed for `cpus` ranks (block rank placement).
  int nodes_for(int cpus) const;

  /// Host (node) index of a given rank under block placement, matching
  /// how the paper's runs place consecutive ranks on a node.
  int node_of_rank(int rank) const { return rank / cpus_per_node; }

  /// Build the interconnect graph for `nodes` nodes.
  topo::Graph build_topology(int nodes) const;

  /// Effective per-CPU STREAM bandwidth with every CPU of a fully
  /// populated node active (the EP- benchmarks' operating point).
  double stream_per_cpu_all_active() const {
    return mem.per_cpu_Bps(cpus_per_node);
  }
};

/// Content fingerprint of the full machine model (FNV-1a over every
/// field that affects simulated timing, doubles hashed bit-exact).
/// Stable across processes and hosts — the sweep ResultCache keys on
/// it, so two configs hash equal iff they would simulate identically.
std::uint64_t model_fingerprint(const MachineConfig& m);

}  // namespace hpcx::mach
