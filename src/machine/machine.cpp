#include "machine/machine.hpp"

#include <bit>

#include "core/error.hpp"
#include "topology/clos.hpp"
#include "topology/crossbar.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace hpcx::mach {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kHypercube:
      return "hypercube";
    case TopologyKind::kCrossbar:
      return "crossbar";
    case TopologyKind::kClos:
      return "clos";
    case TopologyKind::kTorus:
      return "torus";
  }
  return "?";
}

int MachineConfig::nodes_for(int cpus) const {
  HPCX_REQUIRE(cpus >= 1, "need at least one CPU");
  return (cpus + cpus_per_node - 1) / cpus_per_node;
}

topo::Graph MachineConfig::build_topology(int nodes) const {
  HPCX_REQUIRE(nodes >= 1, "need at least one node");
  switch (topology) {
    case TopologyKind::kFatTree: {
      topo::FatTreeConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.fabric_link = fabric_link;
      cfg.core_taper = core_taper;
      if (single_box_nodes > 0 && nodes > single_box_nodes)
        cfg.core_taper *= multi_box_taper;
      return topo::build_fat_tree(cfg);
    }
    case TopologyKind::kHypercube: {
      topo::HypercubeConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.cube_link = fabric_link;
      return topo::build_hypercube(cfg);
    }
    case TopologyKind::kCrossbar: {
      topo::CrossbarConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      return topo::build_crossbar(cfg);
    }
    case TopologyKind::kClos: {
      topo::ClosConfig cfg;
      cfg.num_hosts = nodes;
      cfg.hosts_per_leaf = clos_hosts_per_leaf;
      cfg.spines = clos_spines;
      cfg.host_link = host_link;
      cfg.up_link = fabric_link;
      return topo::build_clos(cfg);
    }
    case TopologyKind::kTorus: {
      topo::TorusConfig cfg;
      cfg.dims = topo::torus_dims_for(nodes, torus_dimensions);
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.torus_link = fabric_link;
      return topo::build_torus(cfg);
    }
  }
  throw ConfigError("unknown topology kind");
}

namespace {

/// 64-bit FNV-1a, fed field by field in declaration order. Strings are
/// hashed with a terminating 0 so adjacent fields cannot alias;
/// doubles go in as their IEEE bit pattern (bit-exact, no rounding).
class Fingerprint {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
    byte(0);
  }
  void mix(const topo::LinkParams& l) {
    mix(l.bandwidth_Bps);
    mix(l.latency_s);
  }
  std::uint64_t value() const { return h_; }

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  std::uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

std::uint64_t model_fingerprint(const MachineConfig& m) {
  Fingerprint f;
  f.mix(m.name);
  f.mix(m.short_name);
  f.mix(m.network_name);
  f.mix(m.location);
  f.mix(m.vendor);
  f.mix(m.proc.name);
  f.mix(static_cast<int>(m.proc.cpu_class));
  f.mix(m.proc.clock_hz);
  f.mix(m.proc.flops_per_cycle);
  f.mix(m.proc.dgemm_efficiency);
  f.mix(m.proc.hpl_kernel_efficiency);
  f.mix(m.proc.hpl_panel_fraction);
  f.mix(m.proc.fft_efficiency);
  f.mix(m.proc.stream_copy_Bps);
  f.mix(m.proc.random_update_rate);
  f.mix(m.mem.single_cpu_Bps);
  f.mix(m.mem.node_aggregate_Bps);
  f.mix(m.cpus_per_node);
  f.mix(m.max_cpus);
  f.mix(static_cast<int>(m.topology));
  f.mix(m.nic.send_overhead_s);
  f.mix(m.nic.recv_overhead_s);
  f.mix(m.nic.injection_Bps);
  f.mix(m.nic.per_message_gap_s);
  f.mix(m.node.intranode_Bps);
  f.mix(m.node.intranode_latency_s);
  f.mix(m.node.node_mem_Bps);
  f.mix(m.host_link);
  f.mix(m.fabric_link);
  f.mix(m.core_taper);
  f.mix(m.clos_hosts_per_leaf);
  f.mix(m.clos_spines);
  f.mix(m.torus_dimensions);
  f.mix(m.hw_barrier_latency_s);
  f.mix(m.single_box_nodes);
  f.mix(m.multi_box_taper);
  return f.value();
}

}  // namespace hpcx::mach
