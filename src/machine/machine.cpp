#include "machine/machine.hpp"

#include "core/error.hpp"
#include "topology/clos.hpp"
#include "topology/crossbar.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus.hpp"

namespace hpcx::mach {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kHypercube:
      return "hypercube";
    case TopologyKind::kCrossbar:
      return "crossbar";
    case TopologyKind::kClos:
      return "clos";
    case TopologyKind::kTorus:
      return "torus";
  }
  return "?";
}

int MachineConfig::nodes_for(int cpus) const {
  HPCX_REQUIRE(cpus >= 1, "need at least one CPU");
  return (cpus + cpus_per_node - 1) / cpus_per_node;
}

topo::Graph MachineConfig::build_topology(int nodes) const {
  HPCX_REQUIRE(nodes >= 1, "need at least one node");
  switch (topology) {
    case TopologyKind::kFatTree: {
      topo::FatTreeConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.fabric_link = fabric_link;
      cfg.core_taper = core_taper;
      if (single_box_nodes > 0 && nodes > single_box_nodes)
        cfg.core_taper *= multi_box_taper;
      return topo::build_fat_tree(cfg);
    }
    case TopologyKind::kHypercube: {
      topo::HypercubeConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.cube_link = fabric_link;
      return topo::build_hypercube(cfg);
    }
    case TopologyKind::kCrossbar: {
      topo::CrossbarConfig cfg;
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      return topo::build_crossbar(cfg);
    }
    case TopologyKind::kClos: {
      topo::ClosConfig cfg;
      cfg.num_hosts = nodes;
      cfg.hosts_per_leaf = clos_hosts_per_leaf;
      cfg.spines = clos_spines;
      cfg.host_link = host_link;
      cfg.up_link = fabric_link;
      return topo::build_clos(cfg);
    }
    case TopologyKind::kTorus: {
      topo::TorusConfig cfg;
      cfg.dims = topo::torus_dims_for(nodes, torus_dimensions);
      cfg.num_hosts = nodes;
      cfg.host_link = host_link;
      cfg.torus_link = fabric_link;
      return topo::build_torus(cfg);
    }
  }
  throw ConfigError("unknown topology kind");
}

}  // namespace hpcx::mach
