#include "machine/future.hpp"

#include "machine/registry.hpp"

namespace hpcx::mach {

// Parameter sources: vendor datasheets and the public benchmarking
// literature of 2007-2008 (Blue Gene/P: 13.6 Gflop/s nodes, 3-D torus at
// 425 MB/s x 6 links; XT4: SeaStar2 ~6 GB/s links, MPI latency ~6 us;
// X1E: 18 Gflop/s MSPs; POWER5+: HPS ~2 GB/s per link pair, ~5 us).

MachineConfig bluegene_p() {
  MachineConfig m;
  m.name = "IBM Blue Gene/P";
  m.short_name = "bgp";
  m.network_name = "3D torus";
  m.location = "(projected)";
  m.vendor = "IBM";

  m.proc.name = "PowerPC 450";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 0.85e9;
  m.proc.flops_per_cycle = 4.0;  // dual FPU, fused multiply-add
  m.proc.dgemm_efficiency = 0.92;
  m.proc.hpl_kernel_efficiency = 0.80;
  m.proc.fft_efficiency = 0.09;
  m.proc.stream_copy_Bps = 3.0e9;
  m.proc.random_update_rate = 6e6;

  m.mem.single_cpu_Bps = 3.0e9;
  m.mem.node_aggregate_Bps = 13.6e9;  // strong on-node memory system

  m.cpus_per_node = 4;
  m.max_cpus = 4096;  // one rack's worth for the sweeps

  m.topology = TopologyKind::kTorus;
  m.torus_dimensions = 3;
  m.host_link = {0.425e9, 0.1e-6};  // 425 MB/s per torus link
  m.fabric_link = {0.425e9, 0.1e-6};

  m.nic.send_overhead_s = 1.3e-6;  // lightweight CNK kernel
  m.nic.recv_overhead_s = 1.3e-6;
  m.nic.injection_Bps = 2.0e9;  // DMA across the six torus directions
  m.nic.per_message_gap_s = 0.1e-6;

  m.node.intranode_Bps = 2.5e9;
  m.node.intranode_latency_s = 0.5e-6;
  m.node.node_mem_Bps = 13.6e9;
  // The BG/P collective+barrier networks are dedicated hardware trees.
  m.hw_barrier_latency_s = 2e-6;
  return m;
}

MachineConfig cray_xt4() {
  MachineConfig m;
  m.name = "Cray XT4";
  m.short_name = "xt4";
  m.network_name = "SeaStar2 3D torus";
  m.location = "(projected)";
  m.vendor = "Cray";

  m.proc.name = "AMD Opteron (dual-core)";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 2.6e9;
  m.proc.flops_per_cycle = 2.0;
  m.proc.dgemm_efficiency = 0.89;
  m.proc.hpl_kernel_efficiency = 0.78;
  m.proc.fft_efficiency = 0.09;
  m.proc.stream_copy_Bps = 5.0e9;
  m.proc.random_update_rate = 18e6;

  m.mem.single_cpu_Bps = 5.0e9;
  m.mem.node_aggregate_Bps = 7.6e9;

  m.cpus_per_node = 2;
  m.max_cpus = 2048;

  m.topology = TopologyKind::kTorus;
  m.torus_dimensions = 3;
  m.host_link = {6.0e9, 0.2e-6};  // SeaStar2
  m.fabric_link = {6.0e9, 0.2e-6};

  m.nic.send_overhead_s = 2.6e-6;  // Portals stack
  m.nic.recv_overhead_s = 2.6e-6;
  m.nic.injection_Bps = 2.2e9;  // HyperTransport-attached NIC
  m.nic.per_message_gap_s = 0.2e-6;

  m.node.intranode_Bps = 2.0e9;
  m.node.intranode_latency_s = 0.6e-6;
  m.node.node_mem_Bps = 7.6e9;
  return m;
}

MachineConfig cray_x1e() {
  // Mid-life upgrade of the X1: 1.13 GHz MSPs, doubled module density
  // (8 MSPs per node board), same interconnect family.
  MachineConfig m = cray_x1_msp();
  m.name = "Cray X1E";
  m.short_name = "x1e";
  m.location = "(projected)";
  m.proc.name = "Cray X1E MSP";
  m.proc.clock_hz = 1.13e9;  // 18.1 Gflop/s per MSP
  m.cpus_per_node = 8;
  m.max_cpus = 256;
  m.mem.node_aggregate_Bps = 136e9;  // same memory system, more CPUs
  return m;
}

MachineConfig power5_cluster() {
  MachineConfig m;
  m.name = "IBM POWER5+ cluster";
  m.short_name = "p5";
  m.network_name = "HPS (Federation)";
  m.location = "(projected)";
  m.vendor = "IBM";

  m.proc.name = "POWER5+";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 1.9e9;
  m.proc.flops_per_cycle = 4.0;  // 2 FMA pipes
  m.proc.dgemm_efficiency = 0.90;
  m.proc.hpl_kernel_efficiency = 0.77;
  m.proc.fft_efficiency = 0.11;
  m.proc.stream_copy_Bps = 6.0e9;
  m.proc.random_update_rate = 15e6;

  m.mem.single_cpu_Bps = 6.0e9;
  m.mem.node_aggregate_Bps = 48e9;  // strong SMP memory system

  m.cpus_per_node = 16;
  m.max_cpus = 512;

  m.topology = TopologyKind::kFatTree;
  m.host_link = {2.0e9, 0.3e-6};  // dual-plane HPS, per-direction
  m.fabric_link = {2.0e9, 0.3e-6};

  m.nic.send_overhead_s = 2.3e-6;
  m.nic.recv_overhead_s = 2.3e-6;
  m.nic.injection_Bps = 2.0e9;
  m.nic.per_message_gap_s = 0.2e-6;

  m.node.intranode_Bps = 4.0e9;
  m.node.intranode_latency_s = 0.6e-6;
  m.node.node_mem_Bps = 48e9;
  return m;
}

MachineConfig gige_cluster() {
  MachineConfig m;
  m.name = "Linux cluster (GigE)";
  m.short_name = "gige";
  m.network_name = "Gigabit Ethernet";
  m.location = "(projected)";
  m.vendor = "white-box";

  m.proc.name = "commodity x86";
  m.proc.cpu_class = CpuClass::kScalar;
  m.proc.clock_hz = 2.4e9;
  m.proc.flops_per_cycle = 2.0;
  m.proc.dgemm_efficiency = 0.85;
  m.proc.hpl_kernel_efficiency = 0.65;
  m.proc.fft_efficiency = 0.07;
  m.proc.stream_copy_Bps = 3.5e9;
  m.proc.random_update_rate = 10e6;

  m.mem.single_cpu_Bps = 3.5e9;
  m.mem.node_aggregate_Bps = 5.0e9;

  m.cpus_per_node = 2;
  m.max_cpus = 256;

  m.topology = TopologyKind::kClos;
  m.clos_hosts_per_leaf = 24;  // 48-port switch, 2:1 uplinked
  m.clos_spines = 12;
  m.host_link = {0.112e9, 5e-6};  // ~112 MB/s TCP payload rate
  m.fabric_link = {0.112e9, 5e-6};

  m.nic.send_overhead_s = 18e-6;  // kernel TCP stack
  m.nic.recv_overhead_s = 18e-6;
  m.nic.injection_Bps = 0.112e9;
  m.nic.per_message_gap_s = 2e-6;

  m.node.intranode_Bps = 1.2e9;
  m.node.intranode_latency_s = 0.8e-6;
  m.node.node_mem_Bps = 5.0e9;
  return m;
}

std::vector<MachineConfig> future_machines() {
  return {bluegene_p(), cray_xt4(), cray_x1e(), power5_cluster(),
          gige_cluster()};
}

}  // namespace hpcx::mach
