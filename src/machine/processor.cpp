#include "machine/processor.hpp"

#include <cmath>

#include "core/error.hpp"

namespace hpcx::mach {

double ProcessorModel::dgemm_seconds(double m, double n, double k) const {
  HPCX_ASSERT(m >= 0 && n >= 0 && k >= 0);
  return 2.0 * m * n * k / (peak_flops() * dgemm_efficiency);
}

double ProcessorModel::hpl_flops_seconds(double flops) const {
  HPCX_ASSERT(flops >= 0);
  return flops / (peak_flops() * hpl_kernel_efficiency);
}

double ProcessorModel::fft_seconds(double n) const {
  if (n <= 1) return 0.0;
  const double flops = 5.0 * n * std::log2(n);
  return flops / (peak_flops() * fft_efficiency);
}

double ProcessorModel::stream_seconds(double bytes, double effective_Bps) {
  HPCX_ASSERT(effective_Bps > 0);
  return bytes / effective_Bps;
}

double ProcessorModel::random_update_seconds(double updates) const {
  HPCX_ASSERT(random_update_rate > 0);
  return updates / random_update_rate;
}

}  // namespace hpcx::mach
