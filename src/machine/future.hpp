// The five additional architectures the paper planned to evaluate
// ("In the future we plan to ... include five more architectures —
// Linux clusters with different networks, IBM Blue Gene/P, Cray XT4,
// Cray X1E and a cluster of IBM POWER5+"), modelled from their public
// specifications so the suites can be run on them today.
//
// These are extensions, not reproductions: no paper data exists to
// calibrate against, so parameters come from vendor documentation and
// contemporaneous benchmarking literature.
#pragma once

#include <vector>

#include "machine/machine.hpp"

namespace hpcx::mach {

/// IBM Blue Gene/P: 850 MHz PPC450 quad-core nodes, 3-D torus network.
MachineConfig bluegene_p();

/// Cray XT4: 2.6 GHz dual-core Opteron nodes, SeaStar2 3-D torus.
MachineConfig cray_xt4();

/// Cray X1E: the X1's mid-life upgrade (1.13 GHz MSPs, doubled density).
MachineConfig cray_x1e();

/// IBM POWER5+ cluster: 1.9 GHz POWER5+ 16-way SMP nodes, HPS fabric.
MachineConfig power5_cluster();

/// Commodity Linux cluster on gigabit Ethernet (the low-cost baseline).
MachineConfig gige_cluster();

/// All five, in the order above.
std::vector<MachineConfig> future_machines();

}  // namespace hpcx::mach
