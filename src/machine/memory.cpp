#include "machine/memory.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace hpcx::mach {

double MemoryModel::per_cpu_Bps(int active_cpus) const {
  HPCX_ASSERT(active_cpus >= 1);
  HPCX_ASSERT(single_cpu_Bps > 0 && node_aggregate_Bps > 0);
  return std::min(single_cpu_Bps,
                  node_aggregate_Bps / static_cast<double>(active_cpus));
}

}  // namespace hpcx::mach
