// Periodic progress heartbeat driven by the global metrics registry.
//
// A ProgressHeartbeat owns a background thread that scrapes
// obs::Registry::global() every `interval_s` host seconds and, when a
// sweep batch is in flight (hpcx_sweep_points_total > 0), prints one
// status line to stderr:
//
//   [progress] 12/80 points, 3 from cache, 4 workers busy, ETA 41s
//
// It reads only folded snapshots — never the executors' internals — so
// attaching it cannot perturb a run; stderr keeps stdout's tables and
// CSV streams clean. Construction starts the thread; destruction (or
// stop()) joins it and prints a final summary line when a sweep ran at
// all — so even runs shorter than the interval emit one line.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

namespace hpcx::obs {

class ProgressHeartbeat {
 public:
  explicit ProgressHeartbeat(double interval_s = 1.0);
  ~ProgressHeartbeat();
  ProgressHeartbeat(const ProgressHeartbeat&) = delete;
  ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

  /// Join the thread, then print the final line (when a sweep ran).
  /// Idempotent.
  void stop();

 private:
  void loop(double interval_s);
  /// Print one status line; returns false when there is nothing to say.
  bool tick(bool final_line);

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace hpcx::obs
