// Simulated-time critical-path analysis over a des::Simulator's
// critical-path log (see Simulator::enable_critical_path).
//
// Every executed event records which event pushed it, so the chain of
// predecessor links from the globally last event back to a root is a
// causal chain through the whole run: each link's [push time, fire
// time] interval is the exact simulated duration of the modelled
// action that created it (a rank computing through a sleep, a message
// crossing the fabric, a barrier releasing). The chain's segments tile
// [0, makespan] with no gaps — an event fires at the same instant its
// successor is pushed — so the path length equals the makespan by
// construction, to the ulp.
//
// Attribution: each segment carries the push site's CpKind/actor label
// (rank for fiber resumes, constraining edge for deliveries); segments
// are grouped per (kind, actor) and ranked by time. When a
// trace::Recorder is supplied, segments are additionally attributed to
// the collective phase active on their rank at that instant (via the
// recorder's kCollective spans), answering "which collective owns the
// critical path".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "trace/chrome_trace.hpp"

namespace hpcx {
class Table;
}
namespace hpcx::topo {
class Graph;
}
namespace hpcx::trace {
class Recorder;
}

namespace hpcx::obs {

/// One edge of the critical path, root-first. `t1 - t0` is the
/// simulated time this causal step took.
struct CriticalPathSegment {
  double t0 = 0.0;
  double t1 = 0.0;
  des::CpKind kind = des::CpKind::kEvent;
  std::uint32_t actor = des::kCpNoActor;
  int rank = -1;  ///< rank context (the fiber whose chain this is part of)
};

/// Path time grouped by one attribution key, ranked descending.
struct CriticalPathGroup {
  std::string category;  ///< "rank", "link", "nic-injection", "phase", ...
  std::string actor;     ///< "rank 17", "h3->spine1", "Allreduce", ...
  double seconds = 0.0;
  std::uint64_t segments = 0;
};

struct CriticalPathReport {
  bool ok = false;    ///< false: empty or truncated log (see error)
  std::string error;
  double makespan_s = 0.0;  ///< fire time of the path's last event
  double total_s = 0.0;     ///< path length; == makespan_s - t(root)
  std::uint64_t events = 0;       ///< events in the log
  std::uint64_t path_events = 0;  ///< events on the critical path
  std::vector<CriticalPathSegment> segments;  ///< root-first
  std::vector<CriticalPathGroup> groups;      ///< by (kind, actor), ranked
  std::vector<CriticalPathGroup> phases;      ///< by collective op, ranked
  /// The segments with resolved labels, ready for the Chrome-trace
  /// exporter's flow-event overlay (see trace/chrome_trace.hpp).
  std::vector<trace::CriticalPathSlice> overlay;

  /// Ranked human-readable table (groups, then phases).
  Table table(std::size_t top_n = 16) const;

  /// JSON object fragment `"critical_path":{...}` for splicing into an
  /// obs Snapshot's JSON (doubles as %.17g, so total_s and makespan_s
  /// survive the round trip bit-exactly).
  std::string json_fragment(std::size_t top_n = 32) const;
};

/// Analyze `sim`'s critical-path log. `graph` names delivery edges and
/// copy hosts; `recorder` (optional) enables per-collective phase
/// attribution; process ids are reported as ranks (the simulated
/// backends spawn rank r as process r).
CriticalPathReport analyze_critical_path(const des::Simulator& sim,
                                         const topo::Graph& graph,
                                         const trace::Recorder* recorder);

}  // namespace hpcx::obs
