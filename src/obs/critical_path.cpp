#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "core/table.hpp"
#include "topology/graph.hpp"
#include "trace/trace.hpp"

namespace hpcx::obs {

namespace {

std::string fmt_us(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fmt_g17(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Attribution key for a segment: category + actor strings.
std::pair<std::string, std::string> segment_key(
    const CriticalPathSegment& seg, const topo::Graph& graph) {
  switch (seg.kind) {
    case des::CpKind::kSpawn:
    case des::CpKind::kResume:
      return {"rank", "rank " + std::to_string(seg.actor)};
    case des::CpKind::kWake:
      return {"wake", "rank " + std::to_string(seg.actor)};
    case des::CpKind::kDelivery:
      if (seg.actor == des::kCpNoActor) return {"nic-injection", "-"};
      {
        const topo::Edge& e =
            graph.edge(static_cast<topo::EdgeId>(seg.actor));
        return {"link", graph.label(e.from) + "->" + graph.label(e.to)};
      }
    case des::CpKind::kCopy: {
      const std::size_t h = seg.actor;
      const std::string label = h < graph.num_hosts()
                                    ? graph.label(graph.hosts()[h])
                                    : std::to_string(seg.actor);
      return {"node-copy", label};
    }
    case des::CpKind::kBarrier:
      return {"hw-barrier", "-"};
    case des::CpKind::kEvent:
      return {"event", "-"};
  }
  return {"event", "-"};
}

/// Per-rank collective spans from the recorder's rings, time-sorted.
struct PhaseSpans {
  std::vector<trace::Event> spans;  // kCollective only, by t_begin

  const trace::Event* covering(double t) const {
    // Last span with t_begin <= t; check containment.
    auto it = std::upper_bound(
        spans.begin(), spans.end(), t,
        [](double v, const trace::Event& e) { return v < e.t_begin; });
    while (it != spans.begin()) {
      --it;
      if (t <= it->t_end) return &*it;
      // Collective spans on one rank never nest, so one step back that
      // already ended before t means nothing earlier covers t either.
      break;
    }
    return nullptr;
  }
};

}  // namespace

CriticalPathReport analyze_critical_path(const des::Simulator& sim,
                                         const topo::Graph& graph,
                                         const trace::Recorder* recorder) {
  CriticalPathReport report;
  const std::vector<des::CpRecord>& log = sim.cp_log();
  report.events = log.size();
  if (sim.cp_truncated()) {
    report.error =
        "critical-path log truncated (run exceeded the record cap); "
        "no path reported";
    return report;
  }
  if (log.empty()) {
    report.error = "critical-path log is empty (recording was off?)";
    return report;
  }

  // Walk predecessor links from the globally last executed event. Each
  // step's interval is [t(pred), t(event)] — the push happened while
  // pred executed, i.e. at t(pred) in simulated time — so consecutive
  // segments tile the timeline exactly.
  std::vector<CriticalPathSegment> chain;  // leaf-first, reversed below
  std::int64_t idx = static_cast<std::int64_t>(log.size()) - 1;
  report.makespan_s = log.back().t;
  while (idx >= 0) {
    const des::CpRecord& rec = log[static_cast<std::size_t>(idx)];
    CriticalPathSegment seg;
    seg.t1 = rec.t;
    seg.t0 = rec.pred >= 0 ? log[static_cast<std::size_t>(rec.pred)].t : 0.0;
    seg.kind = des::cp_kind(rec.label);
    seg.actor = des::cp_actor(rec.label);
    chain.push_back(seg);
    idx = rec.pred;
  }
  std::reverse(chain.begin(), chain.end());

  // Rank context: a delivery or barrier segment is attributed to the
  // rank whose fiber pushed it — the nearest preceding rank-labelled
  // segment in the chain.
  int rank = -1;
  for (CriticalPathSegment& seg : chain) {
    if ((seg.kind == des::CpKind::kSpawn || seg.kind == des::CpKind::kResume ||
         seg.kind == des::CpKind::kWake) &&
        seg.actor != des::kCpNoActor)
      rank = static_cast<int>(seg.actor);
    seg.rank = rank;
  }

  report.segments = std::move(chain);
  report.path_events = report.segments.size();
  report.total_s = report.makespan_s - report.segments.front().t0;

  // Group by (kind, actor); the same resolved labels feed the exporter
  // overlay (merging zero-length administrative steps into nothing —
  // Perfetto renders them as instants anyway, so keep every segment).
  std::map<std::pair<std::string, std::string>,
           std::pair<double, std::uint64_t>>
      groups;
  report.overlay.reserve(report.segments.size());
  for (const CriticalPathSegment& seg : report.segments) {
    const std::pair<std::string, std::string> key = segment_key(seg, graph);
    auto& slot = groups[key];
    slot.first += seg.t1 - seg.t0;
    ++slot.second;
    trace::CriticalPathSlice slice;
    slice.t0 = seg.t0;
    slice.t1 = seg.t1;
    slice.rank = seg.rank;
    slice.category = key.first;
    slice.name = key.second == "-" ? key.first : key.first + " " + key.second;
    report.overlay.push_back(std::move(slice));
  }
  for (const auto& [key, value] : groups)
    report.groups.push_back(
        CriticalPathGroup{key.first, key.second, value.first, value.second});
  std::sort(report.groups.begin(), report.groups.end(),
            [](const CriticalPathGroup& a, const CriticalPathGroup& b) {
              return a.seconds != b.seconds ? a.seconds > b.seconds
                                            : a.actor < b.actor;
            });

  // Phase attribution via the recorder's collective spans (when given).
  if (recorder != nullptr) {
    std::vector<PhaseSpans> per_rank(
        static_cast<std::size_t>(recorder->nranks()));
    for (int r = 0; r < recorder->nranks(); ++r) {
      for (const trace::Event& e : recorder->rank(r).events())
        if (e.kind == trace::EventKind::kCollective)
          per_rank[static_cast<std::size_t>(r)].spans.push_back(e);
      auto& spans = per_rank[static_cast<std::size_t>(r)].spans;
      std::sort(spans.begin(), spans.end(),
                [](const trace::Event& a, const trace::Event& b) {
                  return a.t_begin < b.t_begin;
                });
    }
    std::map<std::string, std::pair<double, std::uint64_t>> phases;
    for (const CriticalPathSegment& seg : report.segments) {
      const double dt = seg.t1 - seg.t0;
      std::string name = "outside-collective";
      if (seg.rank >= 0 && seg.rank < recorder->nranks()) {
        // Sample at the segment's end on the owning rank: the fiber was
        // inside whichever collective span covers that instant.
        if (const trace::Event* span =
                per_rank[static_cast<std::size_t>(seg.rank)].covering(seg.t1))
          name = trace::to_string(span->coll_op());
      }
      auto& slot = phases[name];
      slot.first += dt;
      ++slot.second;
    }
    for (const auto& [name, value] : phases)
      report.phases.push_back(
          CriticalPathGroup{"phase", name, value.first, value.second});
    std::sort(report.phases.begin(), report.phases.end(),
              [](const CriticalPathGroup& a, const CriticalPathGroup& b) {
                return a.seconds > b.seconds;
              });
  }

  report.ok = true;
  return report;
}

Table CriticalPathReport::table(std::size_t top_n) const {
  Table t("Critical path: " + fmt_us(total_s) + " over " +
          std::to_string(path_events) + " of " + std::to_string(events) +
          " events");
  t.set_header({"category", "actor", "time", "share", "segments"});
  if (!ok) {
    t.add_note(error);
    return t;
  }
  const double denom = total_s > 0.0 ? total_s : 1.0;
  std::size_t shown = 0;
  double other = 0.0;
  std::uint64_t other_segments = 0;
  for (const CriticalPathGroup& g : groups) {
    if (shown < top_n) {
      t.add_row({g.category, g.actor, fmt_us(g.seconds),
                 fmt_pct(g.seconds / denom), std::to_string(g.segments)});
      ++shown;
    } else {
      other += g.seconds;
      other_segments += g.segments;
    }
  }
  if (other_segments > 0)
    t.add_row({"other", "(" + std::to_string(groups.size() - shown) + " more)",
               fmt_us(other), fmt_pct(other / denom),
               std::to_string(other_segments)});
  for (const CriticalPathGroup& p : phases)
    t.add_row({p.category, p.actor, fmt_us(p.seconds),
               fmt_pct(p.seconds / denom), std::to_string(p.segments)});
  return t;
}

std::string CriticalPathReport::json_fragment(std::size_t top_n) const {
  std::ostringstream os;
  os << "\"critical_path\":{\"ok\":" << (ok ? "true" : "false");
  if (!ok) {
    os << ",\"error\":\"" << json_escape(error) << "\"}";
    return os.str();
  }
  os << ",\"makespan_s\":" << fmt_g17(makespan_s)
     << ",\"total_s\":" << fmt_g17(total_s) << ",\"events\":" << events
     << ",\"path_events\":" << path_events << ",\"groups\":[";
  const std::size_t n = std::min(top_n, groups.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) os << ",";
    os << "{\"category\":\"" << json_escape(groups[i].category)
       << "\",\"actor\":\"" << json_escape(groups[i].actor)
       << "\",\"seconds\":" << fmt_g17(groups[i].seconds)
       << ",\"segments\":" << groups[i].segments << "}";
  }
  os << "],\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":\"" << json_escape(phases[i].actor)
       << "\",\"seconds\":" << fmt_g17(phases[i].seconds)
       << ",\"segments\":" << phases[i].segments << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hpcx::obs
