#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>

#include "obs/registry.hpp"

namespace hpcx::obs {

namespace {

double metric_gauge(const Snapshot& snap, const char* name) {
  const MetricValue* m = snap.find(name);
  return m != nullptr ? m->gauge : 0.0;
}

}  // namespace

ProgressHeartbeat::ProgressHeartbeat(double interval_s) {
  if (interval_s < 0.05) interval_s = 0.05;
  thread_ = std::thread([this, interval_s] { loop(interval_s); });
}

ProgressHeartbeat::~ProgressHeartbeat() { stop(); }

void ProgressHeartbeat::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Always attempt the final line: a run shorter than the interval has
  // had no periodic tick, but its summary is still worth one line.
  tick(/*final_line=*/true);
}

void ProgressHeartbeat::loop(double interval_s) {
  const auto interval = std::chrono::duration<double>(interval_s);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) return;
    lock.unlock();
    tick(/*final_line=*/false);
    lock.lock();
  }
}

bool ProgressHeartbeat::tick(bool final_line) {
  const Snapshot snap = Registry::global().snapshot();
  const double total = metric_gauge(snap, "hpcx_sweep_points_total");
  if (total <= 0.0) return false;
  const double done = metric_gauge(snap, "hpcx_sweep_points_done");
  const double eta = metric_gauge(snap, "hpcx_sweep_eta_s");
  const double busy = metric_gauge(snap, "hpcx_sweep_workers_busy");
  const double hit_rate = metric_gauge(snap, "hpcx_sweep_cache_hit_rate");
  const long hits = static_cast<long>(hit_rate * total + 0.5);
  if (final_line) {
    std::fprintf(stderr, "[progress] %ld/%ld points, %ld from cache, done\n",
                 static_cast<long>(done), static_cast<long>(total), hits);
  } else {
    std::fprintf(stderr,
                 "[progress] %ld/%ld points, %ld from cache, %ld workers "
                 "busy, ETA %lds\n",
                 static_cast<long>(done), static_cast<long>(total), hits,
                 static_cast<long>(busy), static_cast<long>(eta + 0.5));
  }
  return true;
}

}  // namespace hpcx::obs
