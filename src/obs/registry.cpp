#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>

#include "core/error.hpp"

namespace hpcx::obs {

std::size_t hist_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::string hist_bucket_label(std::size_t bucket) {
  if (bucket == 0) return "0";
  if (bucket >= kHistBuckets) bucket = kHistBuckets - 1;
  // Inclusive upper bound 2^(bucket-1) ... except the top bucket, whose
  // bound does not fit in 64 bits; label it by its lower bound instead.
  if (bucket == kHistBuckets - 1) return ">=2^63";
  return std::to_string(std::uint64_t{1} << (bucket - 1));
}

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

/// %.17g, matching the sweep cache / run records: doubles survive a
/// text round trip bit-exactly.
void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

void Snapshot::write_text(std::ostream& os) const {
  os << "# " << kSchema << "\n";
  for (const MetricValue& m : metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "counter " << m.name << " " << m.count << "\n";
        break;
      case MetricKind::kGauge:
        os << "gauge " << m.name << " ";
        write_double(os, m.gauge);
        os << "\n";
        break;
      case MetricKind::kHistogram:
        os << "histogram " << m.name << " count " << m.count << " sum "
           << m.sum;
        for (std::size_t b = 0; b < m.buckets.size(); ++b)
          if (m.buckets[b] != 0)
            os << " " << hist_bucket_label(b) << ":" << m.buckets[b];
        os << "\n";
        break;
    }
  }
}

void Snapshot::write_json(std::ostream& os, const std::string& extra) const {
  os << "{\"schema\":\"" << kSchema << "\",";
  if (!extra.empty()) os << extra << ",";
  os << "\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << m.name << "\",\"kind\":\"" << to_string(m.kind)
       << "\",";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "\"value\":" << m.count;
        break;
      case MetricKind::kGauge:
        os << "\"value\":";
        write_double(os, m.gauge);
        break;
      case MetricKind::kHistogram: {
        os << "\"count\":" << m.count << ",\"sum\":" << m.sum
           << ",\"buckets\":{";
        bool bfirst = true;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (m.buckets[b] == 0) continue;
          if (!bfirst) os << ",";
          bfirst = false;
          os << "\"" << hist_bucket_label(b) << "\":" << m.buckets[b];
        }
        os << "}";
        break;
      }
    }
    os << "}";
  }
  os << "]}\n";
}

/// One thread's slot array. Only the owning thread writes; scrapes read
/// concurrently with relaxed loads (sums are monotone, so a live scrape
/// sees a valid, possibly slightly stale, total). `size` is fixed at
/// construction — when registration outgrows it the owning thread
/// retires it (stops writing) and starts a larger one; retired shards
/// stay in the registry for folding, so no count is ever lost.
struct Registry::Shard {
  explicit Shard(std::uint32_t n)
      : size(n), slots(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::uint32_t i = 0; i < n; ++i)
      slots[i].store(0, std::memory_order_relaxed);
  }
  const std::uint32_t size;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
};

namespace {

// MetricId layout: kind in the top 2 bits, slot/gauge index below —
// the hot path decodes its slot from the id alone and never reads the
// registry's (mutex-guarded, growable) info table.
constexpr std::uint32_t kIdIndexMask = 0x3FFFFFFFu;

std::uint32_t id_index(MetricId id) { return id & kIdIndexMask; }

MetricId make_id(MetricKind kind, std::uint32_t index) {
  return (static_cast<std::uint32_t>(kind) << 30) | index;
}

std::atomic<std::uint64_t> g_next_uid{1};

/// Per-thread (registry uid -> shard) map. A tiny linear-scan vector:
/// in practice a thread touches one or two registries (the global one,
/// plus a test-local one). Entries are never removed — a destroyed
/// registry's uid is never reused, so its entry simply never matches
/// again (the dangling pointer is never dereferenced).
struct ThreadShards {
  struct Entry {
    std::uint64_t uid;
    Registry::Shard* shard;
  };
  std::vector<Entry> entries;
};

thread_local ThreadShards t_shards;

}  // namespace

Registry::Registry()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* g = new Registry();  // never destroyed: worker threads
  return *g;                            // may outlive static teardown
}

MetricId Registry::register_metric(const std::string& name,
                                   const std::string& help, MetricKind kind,
                                   std::uint32_t slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Info& existing : info_) {
    if (existing.name == name) {
      HPCX_REQUIRE(existing.kind == kind,
                   "metric '" + name + "' re-registered as a different kind");
      return make_id(kind, kind == MetricKind::kGauge ? existing.gauge
                                                      : existing.slot);
    }
  }
  Info info;
  info.name = name;
  info.help = help;
  info.kind = kind;
  if (kind == MetricKind::kGauge) {
    info.gauge = static_cast<std::uint32_t>(gauges_.size());
    gauges_.emplace_back(0.0);
  } else {
    info.slot = next_slot_;
    next_slot_ += slots;
  }
  info_.push_back(info);
  return make_id(kind, kind == MetricKind::kGauge ? info.gauge : info.slot);
}

MetricId Registry::counter(const std::string& name, const std::string& help) {
  return register_metric(name, help, MetricKind::kCounter, 1);
}

MetricId Registry::gauge(const std::string& name, const std::string& help) {
  return register_metric(name, help, MetricKind::kGauge, 0);
}

MetricId Registry::histogram(const std::string& name,
                             const std::string& help) {
  // Buckets plus a sum slot; the sample count is the bucket total.
  return register_metric(name, help, MetricKind::kHistogram,
                         kHistBuckets + 1);
}

Registry::Shard* Registry::shard_slow(std::uint32_t min_slots) {
  // Round up so a burst of registrations does not retire a shard per
  // metric. The retired shard (if any) stays in shards_ for folding.
  std::uint32_t cap = 256;
  Shard* shard = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (cap < next_slot_ || cap < min_slots) cap *= 2;
    auto owned = std::make_unique<Shard>(cap);
    shard = owned.get();  // grab before unlocking: a concurrent
    shards_.push_back(std::move(owned));  // push_back may move the vector
  }
  for (auto& e : t_shards.entries) {
    if (e.uid == uid_) {
      e.shard = shard;
      return shard;
    }
  }
  t_shards.entries.push_back({uid_, shard});
  return shard;
}

inline Registry::Shard* Registry::shard_for(std::uint32_t min_slots) {
  for (const auto& e : t_shards.entries)
    if (e.uid == uid_ && min_slots <= e.shard->size) return e.shard;
  return shard_slow(min_slots);
}

void Registry::add(MetricId id, std::uint64_t delta) {
  const std::uint32_t slot = id_index(id);
  Shard* s = shard_for(slot + 1);
  s->slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::observe(MetricId id, std::uint64_t value) {
  const std::uint32_t slot = id_index(id);
  Shard* s = shard_for(slot + kHistBuckets + 1);
  s->slots[slot + hist_bucket(value)].fetch_add(1,
                                                std::memory_order_relaxed);
  s->slots[slot + kHistBuckets].fetch_add(value, std::memory_order_relaxed);
}

void Registry::set(MetricId id, double value) {
  // gauges_ is a deque: growth never moves existing atomics, and an id
  // always refers to an element registered before it was handed out.
  gauges_[id_index(id)].store(value, std::memory_order_relaxed);
}

void Registry::gauge_add(MetricId id, double delta) {
  std::atomic<double>& g = gauges_[id_index(id)];
  double cur = g.load(std::memory_order_relaxed);
  while (!g.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Fold every shard's slot array once.
  std::vector<std::uint64_t> slots(next_slot_, 0);
  for (const auto& shard : shards_) {
    const std::uint32_t n = std::min<std::uint32_t>(shard->size, next_slot_);
    for (std::uint32_t i = 0; i < n; ++i)
      slots[i] += shard->slots[i].load(std::memory_order_relaxed);
  }
  Snapshot snap;
  snap.metrics.reserve(info_.size());
  for (const Info& info : info_) {
    MetricValue m;
    m.name = info.name;
    m.help = info.help;
    m.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        m.count = slots[info.slot];
        break;
      case MetricKind::kGauge:
        m.gauge = gauges_[info.gauge].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        m.buckets.assign(slots.begin() + info.slot,
                         slots.begin() + info.slot + kHistBuckets);
        for (const std::uint64_t b : m.buckets) m.count += b;
        m.sum = slots[info.slot + kHistBuckets];
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

std::size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return info_.size();
}

}  // namespace hpcx::obs
