// hpcx::obs — process-wide metrics registry.
//
// Counters, gauges and log2-bucketed histograms with a lock-free hot
// path: counter/histogram updates land in per-thread *shards* (plain
// relaxed-atomic slot arrays, one writer each), which a scrape folds
// into a single snapshot. Registration takes the registry mutex and is
// expected at setup time; updates never do. Gauges are single
// process-wide atomics with set semantics (last write wins — they
// describe a current level, not a sum, so sharding them would be
// wrong).
//
// Conventions: durations are stored as integer NANOSECONDS and named
// `*_ns`; sizes in bytes are named `*_bytes`. The scrape formats (text
// and JSON) both carry the schema marker "hpcx-obs/1" and are stable:
// tools may parse them.
//
// Why shards instead of one atomic per counter: the PDES window loop
// and the sweep worker pool bump the same logical counters from many
// threads at MHz rates; a shared cache line per counter would serialise
// them. A shard is owned by exactly one writing thread, so the
// fetch_adds are uncontended; folding at scrape time sums shards, and
// because counters are monotone sums the fold is exact once the writing
// threads have quiesced (and a consistent-enough live view otherwise).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpcx::obs {

/// Handle to a registered metric, stable for the registry's lifetime.
/// Encodes everything the hot path needs (kind + slot index), so
/// updates never touch the registry's mutable tables.
using MetricId = std::uint32_t;

/// Log2 value classes shared by every histogram: class 0 is the value
/// 0, class k >= 1 covers [2^(k-1), 2^k). 64-bit values need 65.
constexpr std::size_t kHistBuckets = 65;
std::size_t hist_bucket(std::uint64_t value);
/// Inclusive upper bound of a bucket ("0", "1", "2", "4", ... "2^63").
std::string hist_bucket_label(std::size_t bucket);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind k);

/// One folded metric of a scrape.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value, or histogram sample count
  std::uint64_t sum = 0;    ///< histogram only: sum of observed values
  double gauge = 0.0;       ///< gauge only
  std::vector<std::uint64_t> buckets;  ///< histogram only (kHistBuckets)
};

/// A folded, self-contained view of a registry at one instant.
struct Snapshot {
  static constexpr const char* kSchema = "hpcx-obs/1";
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const;
  /// Stable text form, one metric per line, "# hpcx-obs/1" first.
  void write_text(std::ostream& os) const;
  /// JSON object {"schema":"hpcx-obs/1","metrics":[...]}. `extra`, when
  /// non-empty, is spliced verbatim as additional top-level members
  /// (callers append e.g. a critical-path section); it must be a valid
  /// JSON fragment of the form "\"key\":value,...".
  void write_json(std::ostream& os, const std::string& extra = "") const;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every runtime subsystem reports into.
  static Registry& global();

  // --- registration (mutex-guarded; idempotent by name) ---

  /// Register (or look up) a monotone counter / gauge / histogram.
  /// Re-registering an existing name returns the same id; the kind must
  /// match (throws core Error otherwise).
  MetricId counter(const std::string& name, const std::string& help = "");
  MetricId gauge(const std::string& name, const std::string& help = "");
  MetricId histogram(const std::string& name, const std::string& help = "");

  // --- hot path (lock-free; any thread) ---

  /// Add to a counter.
  void add(MetricId id, std::uint64_t delta = 1);
  /// Record one histogram sample.
  void observe(MetricId id, std::uint64_t value);
  /// Set a gauge's current level.
  void set(MetricId id, double value);
  /// Add to a gauge (atomic read-modify-write; for +1/-1 level
  /// tracking, e.g. in-flight work).
  void gauge_add(MetricId id, double delta);

  // --- scrape (mutex-guarded) ---

  /// Fold every shard into a snapshot, metrics in registration order.
  Snapshot snapshot() const;

  std::size_t num_metrics() const;

 public:
  struct Shard;  // public only for the thread-local cache's benefit

 private:
  struct Info {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;   ///< first shard slot (counter/histogram)
    std::uint32_t gauge = 0;  ///< gauge index (kGauge)
  };

  MetricId register_metric(const std::string& name, const std::string& help,
                           MetricKind kind, std::uint32_t slots);
  Shard* shard_slow(std::uint32_t min_slots);
  Shard* shard_for(std::uint32_t min_slots);

  const std::uint64_t uid_;  ///< process-unique; keys the thread cache
  mutable std::mutex mutex_;
  std::vector<Info> info_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< every shard ever made
  // deque: grows without moving — hot-path writers hold references.
  std::deque<std::atomic<double>> gauges_;
  std::uint32_t next_slot_ = 0;
};

}  // namespace hpcx::obs
