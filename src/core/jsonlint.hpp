// Minimal JSON well-formedness checker (RFC 8259 grammar, no DOM).
// Used to validate emitted trace files in tests and by tools/json_check.
#pragma once

#include <string>
#include <string_view>

namespace hpcx {

/// True when `text` is exactly one well-formed JSON value (plus
/// whitespace). On failure, fills `*error` (if given) with a message
/// including the byte offset of the problem.
bool json_well_formed(std::string_view text, std::string* error = nullptr);

}  // namespace hpcx
