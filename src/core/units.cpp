#include "core/units.hpp"

#include <cmath>
#include <cstdio>

namespace hpcx {

namespace {
std::string printf_str(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return std::string(buf) + suffix;
}
}  // namespace

std::string format_time(double seconds) {
  const double a = std::fabs(seconds);
  if (a < 1e-9) return printf_str("%.3f", seconds * 1e12, " ps");
  if (a < 1e-6) return printf_str("%.3f", seconds * 1e9, " ns");
  if (a < 1e-3) return printf_str("%.3f", seconds * 1e6, " us");
  if (a < 1.0) return printf_str("%.3f", seconds * 1e3, " ms");
  return printf_str("%.3f", seconds, " s");
}

std::string format_bandwidth(double bps) {
  if (bps < 1e3) return printf_str("%.2f", bps, " B/s");
  if (bps < 1e6) return printf_str("%.2f", bps / 1e3, " KB/s");
  if (bps < 1e9) return printf_str("%.2f", bps / 1e6, " MB/s");
  return printf_str("%.2f", bps / 1e9, " GB/s");
}

std::string format_flops(double fps) {
  if (fps < 1e6) return printf_str("%.2f", fps / 1e3, " Kflop/s");
  if (fps < 1e9) return printf_str("%.2f", fps / 1e6, " Mflop/s");
  if (fps < 1e12) return printf_str("%.2f", fps / 1e9, " Gflop/s");
  return printf_str("%.2f", fps / 1e12, " Tflop/s");
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30) && bytes % (1ULL << 30) == 0)
    std::snprintf(buf, sizeof(buf), "%llu GB",
                  static_cast<unsigned long long>(bytes >> 30));
  else if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0)
    std::snprintf(buf, sizeof(buf), "%llu MB",
                  static_cast<unsigned long long>(bytes >> 20));
  else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0)
    std::snprintf(buf, sizeof(buf), "%llu KB",
                  static_cast<unsigned long long>(bytes >> 10));
  else
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_sci(double value, int sig) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", sig - 1, value);
  return buf;
}

}  // namespace hpcx
