// Error handling for hpcx.
//
// The library uses exceptions for recoverable errors (bad user input,
// inconsistent configuration) and HPCX_ASSERT for internal invariants.
// Following the C++ Core Guidelines (E.2, I.10), errors a caller can react
// to are thrown as typed exceptions derived from hpcx::Error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hpcx {

/// Base class of all exceptions thrown by the hpcx library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration (machine, topology, benchmark parameters)
/// is internally inconsistent or out of the supported range.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown on misuse of the message-passing API (mismatched message sizes,
/// invalid ranks, payload/phantom mixing).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "HPCX_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hpcx

/// Internal invariant check. Always on: the cost is negligible relative to
/// what this library does, and a silently-corrupt simulation is worthless.
#define HPCX_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr))                                                      \
      ::hpcx::detail::assert_fail(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define HPCX_ASSERT_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr))                                                      \
      ::hpcx::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Validate user-supplied configuration; throws ConfigError.
#define HPCX_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) throw ::hpcx::ConfigError(msg);                      \
  } while (0)
