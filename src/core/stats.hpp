// Streaming statistics accumulator (Welford) plus small helpers used by the
// benchmark drivers to summarise repeated timings.
#pragma once

#include <cstddef>
#include <vector>

namespace hpcx {

/// Online min/max/mean/variance accumulator (Welford's algorithm).
class Stats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Exact percentile (nearest-rank) of a copy of `v`; p in [0,100].
double percentile(std::vector<double> v, double p);

/// Geometric mean; all inputs must be > 0.
double geomean(const std::vector<double>& v);

}  // namespace hpcx
