// ASCII table / CSV emission used by every figure and table harness.
//
// The bench binaries print, for each paper table/figure, one Table whose
// rows/columns mirror the paper's series (e.g. rows = CPU counts, columns
// = machines). Cells are strings so callers control formatting via
// core/units.hpp.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcx {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the column headers; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Free-form footnote printed under the table.
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& header() const { return header_; }

  /// Pretty-print with aligned columns and a box around the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace hpcx
