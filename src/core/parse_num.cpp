#include "core/parse_num.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace hpcx {

std::optional<long long> parse_ll(std::string_view text, long long min,
                                  long long max) {
  if (text.empty()) return std::nullopt;
  // std::from_chars already rejects whitespace, '+' and hex prefixes;
  // it only needs the trailing-junk and range checks layered on top.
  long long value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  if (value < min || value > max) return std::nullopt;
  return value;
}

long long parse_cli_int(const char* flag, const char* text, long long min,
                        long long max) {
  if (const auto v = parse_ll(text, min, max)) return *v;
  std::fprintf(stderr, "%s wants an integer in [%lld, %lld], got '%s'\n",
               flag, min, max, text);
  std::exit(2);
}

}  // namespace hpcx
