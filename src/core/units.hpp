// Unit formatting helpers. All internal quantities are SI base units:
// seconds for time, bytes for sizes, flop/s for compute rates. These
// helpers render them the way the paper's tables/figures do (µs/call,
// MB/s, Gflop/s, GUP/s, Byte/Flop).
#pragma once

#include <cstdint>
#include <string>

namespace hpcx {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

constexpr double kMicro = 1e-6;

/// "12.34 us", "1.23 ms", "4.56 s" — adaptive time formatting.
std::string format_time(double seconds);

/// "1.50 GB/s" etc. (decimal GB as in the paper).
std::string format_bandwidth(double bytes_per_second);

/// "6.40 Gflop/s" etc.
std::string format_flops(double flops_per_second);

/// "1 MB", "4 KB", "17 B" — IMB-style message size labels (binary units).
std::string format_bytes(std::uint64_t bytes);

/// Fixed-precision double without trailing noise, for table cells.
std::string format_fixed(double value, int decimals);

/// Scientific notation with given significant digits.
std::string format_sci(double value, int sig);

}  // namespace hpcx
