// Minimal JSON document model (RFC 8259) with a recursive-descent
// parser. Complements core/jsonlint.hpp (validation only): the metrics
// layer needs to *read* run records back — hpcx_compare diffs two of
// them — so this provides a small owning DOM. Numbers are doubles
// (adequate for metric values; we never round-trip 64-bit integers
// through records), object keys keep insertion order.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcx {

class JsonValue;

/// Object preserving insertion order (records are written in a stable
/// order; diffs and round-trip tests want to see the same order back).
class JsonObject {
 public:
  JsonValue& operator[](const std::string& key);
  const JsonValue* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, JsonValue>> entries_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }

  std::vector<JsonValue>& make_array() {
    kind_ = Kind::kArray;
    return arr_;
  }
  JsonObject& make_object() {
    kind_ = Kind::kObject;
    return obj_;
  }

  /// Object member lookup; nullptr when not an object or key missing.
  const JsonValue* find(std::string_view key) const {
    return is_object() ? obj_.find(key) : nullptr;
  }

  /// Convenience: member's number/string with a fallback when the key
  /// is absent or the wrong kind.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  JsonObject obj_;
};

/// Parse exactly one JSON value (plus surrounding whitespace). On
/// failure returns false and fills *error (if given) with a message
/// including the byte offset of the problem.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace hpcx
