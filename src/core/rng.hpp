// Random number generation used across the library.
//
// Two generators are provided:
//  * SplitMix64 / Xoshiro256** — general-purpose deterministic RNG for
//    workload generation, random-ring permutations, and network routing
//    hash decisions. Deterministic across platforms (no <random> engines,
//    whose distributions are implementation-defined).
//  * HpccRandom — the official HPC Challenge RandomAccess sequence
//    a(k+1) = a(k) * 2 mod P(x) over GF(2), with the standard primitive
//    polynomial, plus the O(log k) jump-ahead used to start each process
//    at its own position in the global update stream.
#pragma once

#include <cstdint>
#include <vector>

namespace hpcx {

/// SplitMix64: tiny, fast seeding generator (public-domain algorithm).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse RNG (public-domain algorithm by
/// Blackman & Vigna). Deterministic, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x53414948'50434358ULL);  // "SAIH PCCX"

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fisher–Yates shuffle of v (deterministic given the RNG state).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// The official HPCC RandomAccess pseudo-random sequence over GF(2)[x] /
/// (x^64 + x^63 + x^62 + x^60 + 1)  — constant POLY = 0x0000000000000007
/// in the shifted representation used by the reference code: each step is
///   a = (a << 1) ^ ((signed)a < 0 ? POLY : 0).
class HpccRandom {
 public:
  static constexpr std::uint64_t kPoly = 0x0000000000000007ULL;
  static constexpr std::uint64_t kPeriod = 1317624576693539401ULL;

  /// Value of the sequence at position n (official HPCC_starts jump-ahead).
  static std::uint64_t starts(std::int64_t n);

  explicit HpccRandom(std::int64_t start_index = 0)
      : value_(starts(start_index)) {}

  std::uint64_t next() {
    value_ = (value_ << 1) ^
             ((static_cast<std::int64_t>(value_) < 0) ? kPoly : 0ULL);
    return value_;
  }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_;
};

}  // namespace hpcx
