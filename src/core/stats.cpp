#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpcx {

void Stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Stats::min() const {
  HPCX_ASSERT(n_ > 0);
  return min_;
}

double Stats::max() const {
  HPCX_ASSERT(n_ > 0);
  return max_;
}

double Stats::mean() const {
  HPCX_ASSERT(n_ > 0);
  return mean_;
}

double Stats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double percentile(std::vector<double> v, double p) {
  HPCX_ASSERT(!v.empty());
  HPCX_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  const auto n = v.size();
  // Nearest-rank definition: smallest value with at least p% of data <= it.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return v[rank - 1];
}

double geomean(const std::vector<double>& v) {
  HPCX_ASSERT(!v.empty());
  double log_sum = 0.0;
  for (double x : v) {
    HPCX_ASSERT(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace hpcx
