// Checked numeric parsing for command-line flags.
//
// std::atoi silently turns "banana" into 0 and saturates nothing, so a
// typo'd flag value used to slip through as a nonsense-but-valid
// integer. parse_ll accepts exactly an optional minus sign followed by
// decimal digits spanning the *whole* string, range-checks the value,
// and reports failure instead of guessing. parse_cli_int is the CLI
// convenience wrapper every tool shares: on a bad value it prints one
// clear line naming the flag and exits 2 (the usage-error code the
// tools already use for unknown flags).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hpcx {

/// Strict base-10 parse of the whole string: optional leading '-',
/// digits, nothing else (no whitespace, no '+', no hex). Returns
/// nullopt on malformed input, overflow, or a value outside
/// [min, max].
std::optional<long long> parse_ll(std::string_view text, long long min,
                                  long long max);

/// Parse a CLI flag value or die: returns the value on success, prints
/// "<flag> wants an integer in [min, max], got '<text>'" to stderr and
/// exits 2 otherwise.
long long parse_cli_int(const char* flag, const char* text, long long min,
                        long long max);

}  // namespace hpcx
