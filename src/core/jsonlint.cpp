#include "core/jsonlint.hpp"

#include <cctype>
#include <cstddef>

namespace hpcx {

namespace {

// Recursive-descent validator over a string_view cursor. Depth-limited
// so hostile input cannot blow the stack.
class Lint {
 public:
  explicit Lint(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value(0)) {
      fill(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters after top-level value";
      fill(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  void fill(std::string* error) const {
    if (error)
      *error = err_ + " at byte " + std::to_string(pos_) + " of " +
               std::to_string(text_.size());
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c == '\\') {
        if (eof()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
                return fail("bad \\u escape");
              ++pos_;
            }
            break;
          default:
            return fail("bad escape character");
        }
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected digit");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (!eof() && peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        if (peek() == '-' || std::isdigit(static_cast<unsigned char>(peek())))
          return number();
        return fail("unexpected character");
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' in object");
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool json_well_formed(std::string_view text, std::string* error) {
  return Lint(text).run(error);
}

}  // namespace hpcx
