#include "core/rng.hpp"

#include "core/error.hpp"

namespace hpcx {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HPCX_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t HpccRandom::starts(std::int64_t n) {
  // Official HPCC_starts: computes the n-th element of the sequence in
  // O(log n) by repeated squaring of the "multiply by x" matrix over GF(2).
  while (n < 0) n += static_cast<std::int64_t>(kPeriod);
  while (n > static_cast<std::int64_t>(kPeriod))
    n -= static_cast<std::int64_t>(kPeriod);
  if (n == 0) return 1;

  std::uint64_t m2[64];
  std::uint64_t temp = 1;
  for (int i = 0; i < 64; ++i) {
    m2[i] = temp;
    temp = (temp << 1) ^ ((static_cast<std::int64_t>(temp) < 0) ? kPoly : 0);
    temp = (temp << 1) ^ ((static_cast<std::int64_t>(temp) < 0) ? kPoly : 0);
  }

  int i = 62;
  while (i >= 0 && !((n >> i) & 1)) --i;

  std::uint64_t ran = 2;
  while (i > 0) {
    temp = 0;
    for (int j = 0; j < 64; ++j)
      if ((ran >> j) & 1) temp ^= m2[j];
    ran = temp;
    --i;
    if ((n >> i) & 1)
      ran = (ran << 1) ^ ((static_cast<std::int64_t>(ran) < 0) ? kPoly : 0);
  }
  return ran;
}

}  // namespace hpcx
