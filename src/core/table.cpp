#include "core/table.hpp"

#include <algorithm>
#include <ostream>

#include "core/error.hpp"

namespace hpcx {

void Table::set_header(std::vector<std::string> header) {
  HPCX_REQUIRE(rows_.empty(), "Table::set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  HPCX_REQUIRE(row.size() == header_.size(),
               "Table row width does not match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto hline = [&]() {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << r[c] << std::string(width[c] - r[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  hline();
  print_row(header_);
  hline();
  for (const auto& r : rows_) print_row(r);
  hline();
  for (const auto& n : notes_) os << "  note: " << n << '\n';
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      const std::string& s = r[c];
      if (s.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : s) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << s;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace hpcx
