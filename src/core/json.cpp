#include "core/json.hpp"

#include <cctype>
#include <cstdlib>

namespace hpcx {

JsonValue& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_)
    if (k == key) return v;
  entries_.emplace_back(key, JsonValue{});
  return entries_.back().second;
}

const JsonValue* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

 private:
  // Matches the nesting limit jsonlint uses; records are ~4 deep.
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_)
      *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        out = JsonValue(true);
        return literal("true");
      case 'f':
        out = JsonValue(false);
        return literal("false");
      case 'n':
        out = JsonValue{};
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    JsonObject& obj = out.make_object();
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!parse_value(obj[key], depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    std::vector<JsonValue>& arr = out.make_array();
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      arr.emplace_back();
      if (!parse_value(arr.back(), depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // recombined — record content is ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    // Grammar check (leading zeros, dot/exponent shape) then strtod.
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  Parser p(text, error);
  return p.parse(out);
}

}  // namespace hpcx
