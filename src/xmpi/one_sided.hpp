// One-sided communication (MPI-2 Get/Put with active-target fence
// synchronisation) — the paper's future-work item: "we plan to use
// ... one-sided (GET/PUT) MPI communication functions with three
// synchronization schemes".
//
// Window exposes a region of each rank's memory to every other rank.
// Puts and gets issued inside an epoch are *queued locally* and carried
// out at the closing fence(), which is the MPI semantics for
// fence-synchronised epochs: accesses are only guaranteed complete —
// and remote data only guaranteed visible — after the fence. The fence
// exchanges all queued puts (data moves to the targets) and all queued
// gets (requests travel to the targets, replies come back), so every
// byte crosses the simulated network exactly as an RDMA engine would
// move it, batched per target.
#pragma once

#include <cstddef>
#include <vector>

#include "xmpi/comm.hpp"

namespace hpcx::xmpi {

class Window {
 public:
  /// Collective over `comm`. `region` is this rank's exposed memory
  /// (phantom regions are allowed for timing-only studies; all ranks
  /// must then be phantom). `window_id` distinguishes concurrently
  /// live windows (>= 1, same on all ranks).
  Window(Comm& comm, MBuf region, int window_id);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::size_t size_bytes() const { return region_.bytes(); }

  /// Queue a put of `data` into `target`'s region at byte offset
  /// `target_offset`. Completes at the next fence().
  void put(int target, std::size_t target_offset, CBuf data);

  /// Queue a get from `target`'s region at `target_offset` into `out`.
  /// `out` is filled by the next fence().
  void get(int target, std::size_t target_offset, MBuf out);

  /// Close the current epoch: deliver all queued puts, satisfy all
  /// queued gets, and synchronise all ranks. Collective.
  void fence();

 private:
  struct PendingPut {
    int target;
    std::size_t offset;
    std::vector<unsigned char> data;  // empty when phantom
    std::size_t bytes;
  };
  struct PendingGet {
    int target;
    std::size_t offset;
    MBuf out;
  };

  Comm* comm_;
  MBuf region_;
  int base_tag_;
  std::vector<PendingPut> puts_;
  std::vector<PendingGet> gets_;
};

}  // namespace hpcx::xmpi
