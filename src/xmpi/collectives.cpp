// Collective algorithms, implemented over blocking point-to-point.
//
// The algorithm set mirrors what production MPI libraries of the paper's
// era (MPICH/MVAPICH derivatives, SGI MPT, NEC MPI) select by message
// size — the paper's collective benchmarks are sensitive to exactly this:
//
//   barrier         dissemination
//   bcast           binomial (short) / van de Geijn scatter+ring (long),
//                   plus segmented binomial (explicit / tuned)
//   reduce          binomial (short) / Rabenseifner rs+gather (long)
//   allreduce       recursive doubling (short) / Rabenseifner (long)
//   gather/scatter  binomial trees in rotated (vrank) space
//   allgather       Bruck dissemination (short) / ring (long),
//                   plus gather+bcast (explicit / tuned)
//   allgatherv      ring
//   alltoall        pairwise exchange, plus Bruck (explicit / tuned)
//   reduce_scatter  recursive halving (pow2) / ring (general),
//                   plus pairwise and non-pow2 halving (explicit / tuned)
//
// kAuto resolves per call: an explicit CollectiveTuning override wins,
// else a loaded tuning table (xmpi/tuner) is consulted, else the static
// size thresholds above decide. Every algorithm works for arbitrary
// communicator sizes and zero-size contributions, and runs identically
// with real or phantom payloads (phantom: same messages, no local byte
// movement or arithmetic).
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/reduce_ops.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace hpcx::xmpi {

namespace {

// Reserved tag space for collectives (user tags must stay below this).
constexpr int kCollTag = 1 << 20;
constexpr int kTagBarrier = kCollTag + 0;
constexpr int kTagBcast = kCollTag + 1;
constexpr int kTagReduce = kCollTag + 2;
constexpr int kTagAllreduce = kCollTag + 3;
constexpr int kTagGather = kCollTag + 4;
constexpr int kTagScatter = kCollTag + 5;
constexpr int kTagAllgather = kCollTag + 6;
constexpr int kTagAlltoall = kCollTag + 7;
constexpr int kTagReduceScatter = kCollTag + 8;

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

std::size_t elem_size(DType t) { return dtype_size(t); }

CBuf slice(CBuf b, std::size_t off, std::size_t count) {
  HPCX_ASSERT(off + count <= b.count);
  if (b.phantom()) return CBuf{nullptr, count, b.dtype};
  return CBuf{static_cast<const unsigned char*>(b.data) +
                  off * elem_size(b.dtype),
              count, b.dtype};
}

MBuf slice(MBuf b, std::size_t off, std::size_t count) {
  HPCX_ASSERT(off + count <= b.count);
  if (b.phantom()) return MBuf{nullptr, count, b.dtype};
  return MBuf{static_cast<unsigned char*>(b.data) + off * elem_size(b.dtype),
              count, b.dtype};
}

void local_copy(CBuf src, MBuf dst) {
  HPCX_ASSERT(src.count == dst.count);
  HPCX_ASSERT(src.dtype == dst.dtype);
  if (src.count == 0 || src.phantom() || dst.phantom()) return;
  if (src.data == dst.data) return;
  std::memcpy(dst.data, src.data, src.bytes());
}

void local_reduce(Comm& c, ROp op, MBuf acc, CBuf in) {
  HPCX_ASSERT(acc.count == in.count);
  HPCX_ASSERT(acc.dtype == in.dtype);
  if (acc.count == 0) return;
  // Virtual time is charged whether or not payload bytes exist, so
  // phantom and real runs stay timing-identical.
  c.charge_reduce_arithmetic(acc.bytes());
  if (acc.phantom() || in.phantom()) return;
  apply_rop(op, acc.dtype, acc.data, in.data, acc.count);
}

/// Scratch buffer that is phantom whenever its prototype is phantom, so
/// phantom-ness propagates through multi-phase algorithms.
class Temp {
 public:
  Temp(std::size_t count, DType dtype, bool phantom) : dtype_(dtype) {
    if (!phantom) storage_.resize(count * elem_size(dtype));
    buf_ = MBuf{phantom ? nullptr : storage_.data(), count, dtype};
  }

  MBuf buf() { return buf_; }
  CBuf cbuf() const { return CBuf{buf_.data, buf_.count, buf_.dtype}; }

 private:
  DType dtype_;
  std::vector<unsigned char> storage_;
  MBuf buf_;
};

/// Split `count` elements into `n` nearly-equal chunks (MPICH's
/// ceil-sized scatter blocks): chunk i covers [i*seg, ...) with seg =
/// ceil(count/n); trailing chunks may be empty.
struct ChunkPlan {
  std::size_t seg = 0;
  std::vector<std::size_t> counts;
  std::vector<std::size_t> offsets;

  ChunkPlan(std::size_t count, int n) {
    seg = (count + static_cast<std::size_t>(n) - 1) /
          static_cast<std::size_t>(n);
    if (count == 0) seg = 0;
    counts.resize(static_cast<std::size_t>(n));
    offsets.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::size_t off =
          std::min(count, seg * static_cast<std::size_t>(i));
      offsets[static_cast<std::size_t>(i)] = off;
      counts[static_cast<std::size_t>(i)] = std::min(seg, count - off);
    }
  }
};

// ---------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------

void bcast_binomial(Comm& c, MBuf buf, int root) {
  const int n = c.size();
  const int vr = (c.rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int src = (vr - mask + root) % n;
      c.recv(src, kTagBcast, buf);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int dst = (vr + mask + root) % n;
      c.send(dst, kTagBcast, buf.as_cbuf());
    }
    mask >>= 1;
  }
}

/// van de Geijn: binomial scatter of chunks, then ring allgather.
void bcast_scatter_ring(Comm& c, MBuf buf, int root) {
  const int n = c.size();
  const int r = c.rank();
  const int vr = (r - root + n) % n;
  const ChunkPlan plan(buf.count, n);

  // --- Phase 1: binomial scatter in vrank space. After this phase,
  // vrank v holds chunk v (chunks are indexed by vrank).
  // curr = number of elements this rank currently holds starting at its
  // own chunk offset.
  std::size_t curr = (vr == 0) ? buf.count : 0;
  {
    int mask = 1;
    while (mask < n) {
      if (vr & mask) {
        const int src_vr = vr - mask;
        const std::size_t my_off = plan.offsets[static_cast<std::size_t>(vr)];
        // Elements this subtree needs: everything from my chunk to the
        // end, capped at mask chunks' worth.
        const std::size_t want =
            std::min(buf.count - my_off,
                     plan.seg * static_cast<std::size_t>(mask));
        if (want > 0)
          c.recv((src_vr + root) % n, kTagBcast, slice(buf, my_off, want));
        curr = want;
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < n) {
        const int dst_vr = vr + mask;
        const std::size_t dst_off =
            plan.offsets[static_cast<std::size_t>(dst_vr)];
        const std::size_t my_off = plan.offsets[static_cast<std::size_t>(vr)];
        // Of my `curr` elements, everything beyond the child's offset
        // belongs to the child's subtree.
        const std::size_t have_end = my_off + curr;
        const std::size_t send_cnt =
            have_end > dst_off ? have_end - dst_off : 0;
        if (send_cnt > 0) {
          c.send((dst_vr + root) % n, kTagBcast,
                 slice(buf.as_cbuf(), dst_off, send_cnt));
          curr -= send_cnt;
        }
      }
      mask >>= 1;
    }
  }

  // --- Phase 2: ring allgather of the chunks (vrank space).
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int sb = (vr - s + n) % n;
    const int rb = (vr - s - 1 + n) % n;
    c.sendrecv(right, kTagBcast,
               slice(buf.as_cbuf(), plan.offsets[static_cast<std::size_t>(sb)],
                     plan.counts[static_cast<std::size_t>(sb)]),
               left, kTagBcast,
               slice(buf, plan.offsets[static_cast<std::size_t>(rb)],
                     plan.counts[static_cast<std::size_t>(rb)]));
  }
}

/// Segmented ring pipeline (HPL's long broadcast): the root pushes
/// segments to its right neighbour; every rank forwards each segment as
/// it arrives. Fill time is (P-2) hops, then one segment per hop-time —
/// bandwidth-optimal for long messages at the cost of O(P) latency.
void bcast_pipelined_ring(Comm& c, MBuf buf, int root,
                          std::size_t segment_bytes) {
  const int n = c.size();
  const int r = c.rank();
  const int vr = (r - root + n) % n;
  const std::size_t elem = elem_size(buf.dtype);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, segment_bytes / std::max<std::size_t>(1, elem));
  const int left = (r - 1 + n) % n;
  const int right = (r + 1) % n;
  const bool is_last = vr == n - 1;  // the rank just left of the root

  for (std::size_t off = 0; off < buf.count; off += seg_elems) {
    const std::size_t cnt = std::min(seg_elems, buf.count - off);
    if (vr != 0) c.recv(left, kTagBcast, slice(buf, off, cnt));
    if (!is_last) c.send(right, kTagBcast, slice(buf.as_cbuf(), off, cnt));
  }
}

/// Segment-pipelined binomial tree: log-depth like the plain binomial,
/// but each rank forwards segment k to its subtree while segment k+1 is
/// still in flight from its parent. Unlike scatter-ring this never
/// assumes the chunk layout divides evenly, so it is the long-message
/// choice the tuner can pick at any communicator size.
void bcast_binomial_segmented(Comm& c, MBuf buf, int root,
                              std::size_t segment_bytes) {
  const int n = c.size();
  const int vr = (c.rank() - root + n) % n;
  const std::size_t elem = elem_size(buf.dtype);
  const std::size_t seg_elems =
      std::max<std::size_t>(1, segment_bytes / std::max<std::size_t>(1, elem));
  int parent = -1;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      parent = (vr - mask + root) % n;
      break;
    }
    mask <<= 1;
  }
  std::vector<int> children;
  for (int m = mask >> 1; m > 0; m >>= 1)
    if (vr + m < n) children.push_back((vr + m + root) % n);
  for (std::size_t off = 0; off < buf.count; off += seg_elems) {
    const std::size_t cnt = std::min(seg_elems, buf.count - off);
    if (parent >= 0) c.recv(parent, kTagBcast, slice(buf, off, cnt));
    for (const int dst : children)
      c.send(dst, kTagBcast, slice(buf.as_cbuf(), off, cnt));
  }
}

// ---------------------------------------------------------------------
// Reduce / Allreduce building blocks
// ---------------------------------------------------------------------

void reduce_binomial(Comm& c, CBuf send, MBuf recv, ROp op, int root) {
  const int n = c.size();
  const int vr = (c.rank() - root + n) % n;
  Temp acc(send.count, send.dtype, send.phantom());
  local_copy(send, acc.buf());
  Temp incoming(send.count, send.dtype, send.phantom());

  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int src_vr = vr + mask;
      if (src_vr < n) {
        c.recv((src_vr + root) % n, kTagReduce, incoming.buf());
        local_reduce(c, op, acc.buf(), incoming.cbuf());
      }
    } else {
      const int dst_vr = vr - mask;
      c.send((dst_vr + root) % n, kTagReduce, acc.cbuf());
      break;
    }
    mask <<= 1;
  }
  if (c.rank() == root) local_copy(acc.cbuf(), recv);
}

/// Ring reduce-scatter over an explicit chunk layout. On return, rank r
/// holds the fully reduced chunk r in acc (in place, at the chunk's
/// offset). Works for any communicator size.
void reduce_scatter_ring_inplace(Comm& c, MBuf acc, ROp op,
                                 std::span<const std::size_t> counts,
                                 std::span<const std::size_t> offsets) {
  const int n = c.size();
  if (n == 1) return;
  const int r = c.rank();
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  std::size_t max_cnt = 0;
  for (int i = 0; i < n; ++i)
    max_cnt = std::max(max_cnt, counts[static_cast<std::size_t>(i)]);
  Temp incoming(max_cnt, acc.dtype, acc.phantom());

  for (int s = 0; s < n - 1; ++s) {
    const int sb = (r - s - 1 + n) % n;
    const int rb = (r - s - 2 + n) % n;
    const std::size_t scnt = counts[static_cast<std::size_t>(sb)];
    const std::size_t rcnt = counts[static_cast<std::size_t>(rb)];
    c.sendrecv(right, kTagReduceScatter,
               slice(acc.as_cbuf(), offsets[static_cast<std::size_t>(sb)],
                     scnt),
               left, kTagReduceScatter, slice(incoming.buf(), 0, rcnt));
    local_reduce(c, op,
                 slice(acc, offsets[static_cast<std::size_t>(rb)], rcnt),
                 slice(incoming.cbuf(), 0, rcnt));
  }
}

/// Recursive halving reduce-scatter (power-of-two sizes only). On
/// return, acc's chunk r is fully reduced.
void reduce_scatter_rhalving_inplace(Comm& c, MBuf acc, ROp op,
                                     std::span<const std::size_t> counts,
                                     std::span<const std::size_t> offsets) {
  const int n = c.size();
  HPCX_ASSERT(is_pow2(n));
  const int r = c.rank();
  int lo = 0, hi = n;
  int mask = n >> 1;
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) total += counts[static_cast<std::size_t>(i)];
  Temp incoming(total, acc.dtype, acc.phantom());

  auto range_count = [&](int a, int b) {
    std::size_t cnt = 0;
    for (int i = a; i < b; ++i) cnt += counts[static_cast<std::size_t>(i)];
    return cnt;
  };

  while (mask >= 1) {
    const int partner = r ^ mask;
    const int mid = lo + (hi - lo) / 2;
    int keep_lo, keep_hi, give_lo, give_hi;
    if (r < partner) {
      keep_lo = lo;
      keep_hi = mid;
      give_lo = mid;
      give_hi = hi;
    } else {
      keep_lo = mid;
      keep_hi = hi;
      give_lo = lo;
      give_hi = mid;
    }
    const std::size_t give_cnt = range_count(give_lo, give_hi);
    const std::size_t keep_cnt = range_count(keep_lo, keep_hi);
    const std::size_t keep_off = offsets[static_cast<std::size_t>(keep_lo)];
    const std::size_t give_off = offsets[static_cast<std::size_t>(give_lo)];
    c.sendrecv(partner, kTagReduceScatter,
               slice(acc.as_cbuf(), give_off, give_cnt), partner,
               kTagReduceScatter, slice(incoming.buf(), 0, keep_cnt));
    local_reduce(c, op, slice(acc, keep_off, keep_cnt),
                 slice(incoming.cbuf(), 0, keep_cnt));
    lo = keep_lo;
    hi = keep_hi;
    mask >>= 1;
  }
  HPCX_ASSERT(lo == r && hi == r + 1);
}

/// Ring allgather over an explicit chunk layout: chunk i (already in
/// place on rank i) ends up on every rank.
void allgather_ring_inplace(Comm& c, MBuf buf,
                            std::span<const std::size_t> counts,
                            std::span<const std::size_t> offsets) {
  const int n = c.size();
  if (n == 1) return;
  const int r = c.rank();
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int sb = (r - s + n) % n;
    const int rb = (r - s - 1 + n) % n;
    c.sendrecv(right, kTagAllgather,
               slice(buf.as_cbuf(), offsets[static_cast<std::size_t>(sb)],
                     counts[static_cast<std::size_t>(sb)]),
               left, kTagAllgather,
               slice(buf, offsets[static_cast<std::size_t>(rb)],
                     counts[static_cast<std::size_t>(rb)]));
  }
}

/// Binomial gather of the blocks to rank 0 followed by a binomial
/// broadcast of the assembled vector. Latency-bound like Bruck but with
/// contiguous block placement (no final rotation), and safe at any
/// communicator size — the non-power-of-two alternative the tuner can
/// weigh against Bruck and ring.
void allgather_gather_bcast(Comm& c, CBuf send, MBuf recv, std::size_t bc) {
  const int n = c.size();
  const int r = c.rank();
  local_copy(send, slice(recv, static_cast<std::size_t>(r) * bc, bc));
  // Binomial gather with rank 0 as root: rank r accumulates the
  // contiguous blocks [r, r + held) directly at their final offsets.
  int held = 1;
  int mask = 1;
  while (mask < n) {
    if ((r & mask) == 0) {
      const int src = r + mask;
      if (src < n) {
        const int blocks = std::min(mask, n - src);
        c.recv(src, kTagAllgather,
               slice(recv, static_cast<std::size_t>(src) * bc,
                     static_cast<std::size_t>(blocks) * bc));
        held = mask + blocks;
      }
    } else {
      c.send(r - mask, kTagAllgather,
             slice(recv.as_cbuf(), static_cast<std::size_t>(r) * bc,
                   static_cast<std::size_t>(held) * bc));
      break;
    }
    mask <<= 1;
  }
  bcast_binomial(c, recv, 0);
}

/// Bruck store-and-forward alltoall: log-depth, so it beats pairwise's
/// n-1 rounds for short blocks at the cost of forwarding each block
/// through intermediate ranks. After the local rotation, slot j holds
/// the block that must travel j hops forward; round k moves every slot
/// with bit k set k ranks ahead, and the final inverse rotation puts
/// block j (now the contribution of rank (r - j) mod n) into place.
void alltoall_bruck(Comm& c, CBuf send, MBuf recv, std::size_t bc) {
  const int n = c.size();
  const int r = c.rank();
  const bool phantom = send.phantom() || recv.phantom();
  Temp work(bc * static_cast<std::size_t>(n), send.dtype, phantom);
  for (int j = 0; j < n; ++j)
    local_copy(slice(send, static_cast<std::size_t>((r + j) % n) * bc, bc),
               slice(work.buf(), static_cast<std::size_t>(j) * bc, bc));
  const std::size_t half = static_cast<std::size_t>((n + 1) / 2);
  Temp pack(bc * half, send.dtype, phantom);
  Temp unpack(bc * half, send.dtype, phantom);
  for (int k = 1; k < n; k <<= 1) {
    std::size_t m = 0;
    for (int j = 0; j < n; ++j)
      if (j & k)
        local_copy(slice(work.cbuf(), static_cast<std::size_t>(j) * bc, bc),
                   slice(pack.buf(), (m++) * bc, bc));
    c.sendrecv((r + k) % n, kTagAlltoall, slice(pack.cbuf(), 0, m * bc),
               (r - k + n) % n, kTagAlltoall, slice(unpack.buf(), 0, m * bc));
    m = 0;
    for (int j = 0; j < n; ++j)
      if (j & k)
        local_copy(slice(unpack.cbuf(), (m++) * bc, bc),
                   slice(work.buf(), static_cast<std::size_t>(j) * bc, bc));
  }
  for (int j = 0; j < n; ++j)
    local_copy(slice(work.cbuf(), static_cast<std::size_t>(j) * bc, bc),
               slice(recv, static_cast<std::size_t>((r - j + n) % n) * bc, bc));
}

/// Pairwise-exchange reduce_scatter: every rank sends each peer's slice
/// directly and reduces what it receives into its own. n-1 rounds of
/// one slice each — no forwarding of other ranks' data, so for long
/// vectors its bandwidth term (total - own slice) undercuts the ring's
/// when slices are uneven.
void reduce_scatter_pairwise(Comm& c, CBuf send, MBuf recv, ROp op,
                             std::span<const std::size_t> counts,
                             std::span<const std::size_t> offsets) {
  const int n = c.size();
  const int r = c.rank();
  const std::size_t my_cnt = counts[static_cast<std::size_t>(r)];
  const std::size_t my_off = offsets[static_cast<std::size_t>(r)];
  const bool phantom = send.phantom() || recv.phantom();
  Temp acc(my_cnt, send.dtype, phantom);
  local_copy(slice(send, my_off, my_cnt), acc.buf());
  Temp incoming(my_cnt, send.dtype, phantom);
  for (int k = 1; k < n; ++k) {
    const int dst = (r + k) % n;
    const int src = (r - k + n) % n;
    c.sendrecv(dst, kTagReduceScatter,
               slice(send, offsets[static_cast<std::size_t>(dst)],
                     counts[static_cast<std::size_t>(dst)]),
               src, kTagReduceScatter, incoming.buf());
    local_reduce(c, op, acc.buf(), incoming.cbuf());
  }
  local_copy(acc.cbuf(), recv);
}

/// Recursive halving for *any* communicator size: surplus ranks fold
/// their vectors into a power-of-two core (as in the recursive-doubling
/// allreduce), the core halves over the n chunk indices, and a final
/// distribution round delivers each reduced chunk to its owner. The
/// power-of-two case keeps using reduce_scatter_rhalving_inplace, whose
/// message schedule is pinned by the determinism goldens.
void reduce_scatter_rhalving_general(Comm& c, MBuf acc, MBuf recv, ROp op,
                                     std::span<const std::size_t> counts,
                                     std::span<const std::size_t> offsets) {
  const int n = c.size();
  const int r = c.rank();
  const int pof2 = 1 << (31 - __builtin_clz(static_cast<unsigned>(n)));
  const int rem = n - pof2;
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) total += counts[static_cast<std::size_t>(i)];
  Temp incoming(total, acc.dtype, acc.phantom());

  // Fold the surplus ranks into the core.
  int newr = -1;  // -1: folded out until the distribution round
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      c.send(r + 1, kTagReduceScatter, acc.as_cbuf());
    } else {
      c.recv(r - 1, kTagReduceScatter, incoming.buf());
      local_reduce(c, op, acc, incoming.cbuf());
      newr = r / 2;
    }
  } else {
    newr = r - rem;
  }
  auto real_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };

  // Core: halve the chunk-index range [0, n). Final ranges hold one or
  // two chunks (n < 2 * pof2), never zero.
  int lo = 0, hi = n;
  if (newr >= 0) {
    auto range_count = [&](int a, int b) {
      std::size_t cnt = 0;
      for (int i = a; i < b; ++i) cnt += counts[static_cast<std::size_t>(i)];
      return cnt;
    };
    for (int mask = pof2 >> 1; mask >= 1; mask >>= 1) {
      const int partner = real_rank(newr ^ mask);
      const int mid = lo + (hi - lo) / 2;
      const bool keep_low = (newr & mask) == 0;
      const int keep_lo = keep_low ? lo : mid;
      const int keep_hi = keep_low ? mid : hi;
      const int give_lo = keep_low ? mid : lo;
      const int give_hi = keep_low ? hi : mid;
      const std::size_t give_cnt = range_count(give_lo, give_hi);
      const std::size_t keep_cnt = range_count(keep_lo, keep_hi);
      c.sendrecv(partner, kTagReduceScatter,
                 slice(acc.as_cbuf(),
                       offsets[static_cast<std::size_t>(give_lo)], give_cnt),
                 partner, kTagReduceScatter,
                 slice(incoming.buf(), 0, keep_cnt));
      local_reduce(c, op,
                   slice(acc, offsets[static_cast<std::size_t>(keep_lo)],
                         keep_cnt),
                   slice(incoming.cbuf(), 0, keep_cnt));
      lo = keep_lo;
      hi = keep_hi;
    }
  }

  // Which core rank ends up holding chunk i: replay the halving splits.
  auto owner_of = [&](int chunk) {
    int a = 0, b = n, nr = 0;
    for (int mask = pof2 >> 1; mask >= 1; mask >>= 1) {
      const int mid = a + (b - a) / 2;
      if (chunk < mid) {
        b = mid;
      } else {
        a = mid;
        nr |= mask;
      }
    }
    return real_rank(nr);
  };

  // Distribution: owners push each held chunk to its destination rank.
  // isend keeps the many-to-many pattern cycle-free under rendezvous.
  std::vector<SendRequest> reqs;
  if (newr >= 0) {
    for (int i = lo; i < hi; ++i) {
      const std::size_t cnt = counts[static_cast<std::size_t>(i)];
      if (i == r) {
        local_copy(slice(acc.as_cbuf(),
                         offsets[static_cast<std::size_t>(i)], cnt),
                   recv);
      } else if (cnt > 0) {
        reqs.push_back(c.isend(
            i, kTagReduceScatter,
            slice(acc.as_cbuf(), offsets[static_cast<std::size_t>(i)],
                  cnt)));
      }
    }
  }
  if (owner_of(r) != r && counts[static_cast<std::size_t>(r)] > 0)
    c.recv(owner_of(r), kTagReduceScatter, recv);
  for (SendRequest& req : reqs) c.wait(req);
}

void allreduce_recursive_doubling(Comm& c, MBuf acc, ROp op) {
  const int n = c.size();
  const int r = c.rank();
  const int pof2 = 1 << (31 - __builtin_clz(static_cast<unsigned>(n)));
  const int rem = n - pof2;
  Temp incoming(acc.count, acc.dtype, acc.phantom());

  // Fold the surplus ranks into the power-of-two core.
  int newr = -1;  // -1: not part of the core
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      c.send(r + 1, kTagAllreduce, acc.as_cbuf());
    } else {
      c.recv(r - 1, kTagAllreduce, incoming.buf());
      local_reduce(c, op, acc, incoming.cbuf());
      newr = r / 2;
    }
  } else {
    newr = r - rem;
  }

  if (newr >= 0) {
    auto real_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner = real_rank(newr ^ mask);
      c.sendrecv(partner, kTagAllreduce, acc.as_cbuf(), partner,
                 kTagAllreduce, incoming.buf());
      local_reduce(c, op, acc, incoming.cbuf());
    }
  }

  // Unfold: surplus even ranks get the final result from their partner.
  if (r < 2 * rem) {
    if (r % 2 == 0)
      c.recv(r + 1, kTagAllreduce, acc);
    else
      c.send(r - 1, kTagAllreduce, acc.as_cbuf());
  }
}

/// RAII collective span: snapshots the begin time on entry (only when
/// the communicator has a trace sink) and records one kCollective event
/// tagged with the algorithm the entry point resolved to.
class CollScope {
 public:
  CollScope(Comm& c, trace::CollOp op, std::uint64_t bytes, int root = -1)
      : comm_(&c), sink_(c.trace()), op_(op), bytes_(bytes), root_(root) {
    if (sink_) t_begin_ = c.now();
  }

  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;

  void set_alg(trace::AlgId alg) { alg_ = alg; }

  ~CollScope() {
    if (!sink_) return;
    trace::Event e;
    e.t_begin = t_begin_;
    e.t_end = comm_->now();
    e.kind = trace::EventKind::kCollective;
    e.op = static_cast<std::uint8_t>(op_);
    e.alg = static_cast<std::uint8_t>(alg_);
    e.peer = root_;
    e.bytes = bytes_;
    sink_->record(e);
    ++sink_->counters().collectives;
    ++sink_->counters().alg_dispatch[static_cast<std::size_t>(op_)]
                                    [static_cast<std::size_t>(alg_)];
  }

 private:
  Comm* comm_;
  trace::RankTrace* sink_;
  trace::CollOp op_;
  trace::AlgId alg_ = trace::AlgId::kNone;
  std::uint64_t bytes_;
  double t_begin_ = 0.0;
  int root_;
};

/// Reduction-operand byte counter (reduce/allreduce/reduce_scatter).
void count_reduce_bytes(Comm& c, ROp op, std::size_t bytes) {
  if (c.trace())
    c.trace()->counters().reduce_bytes[static_cast<std::size_t>(op)] += bytes;
}

}  // namespace

// ---------------------------------------------------------------------
// Public collective entry points
// ---------------------------------------------------------------------

trace::AlgId Comm::barrier_impl() {
  const int n = size();
  const int r = rank();
  const CBuf nothing{};  // zero-size message
  MBuf sink{};
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (r + k) % n;
    const int src = (r - k % n + n) % n;
    sendrecv(dst, kTagBarrier, nothing, src, kTagBarrier, sink);
  }
  return trace::AlgId::kDissemination;
}

void Comm::barrier() {
  if (size() == 1) return;
  CollScope scope(*this, trace::CollOp::kBarrier, 0);
  scope.set_alg(barrier_impl());
}

void Comm::bcast(MBuf buf, int root) {
  check_peer(root);
  if (size() == 1) return;
  BcastAlg alg = tuning().bcast_alg;
  if (alg == BcastAlg::kAuto && tuning().table)
    if (auto tuned = tuning().table->bcast(size(), buf.bytes()))
      alg = *tuned;
  if (alg == BcastAlg::kAuto)
    alg = (buf.bytes() <= tuning().bcast_long_bytes || size() <= 2)
              ? BcastAlg::kBinomial
              : BcastAlg::kScatterRing;
  CollScope scope(*this, trace::CollOp::kBcast, buf.bytes(), root);
  switch (alg) {
    case BcastAlg::kBinomial:
      scope.set_alg(trace::AlgId::kBinomial);
      bcast_binomial(*this, buf, root);
      return;
    case BcastAlg::kScatterRing:
      scope.set_alg(trace::AlgId::kScatterRing);
      bcast_scatter_ring(*this, buf, root);
      return;
    case BcastAlg::kPipelinedRing:
      scope.set_alg(trace::AlgId::kPipelinedRing);
      bcast_pipelined_ring(*this, buf, root, tuning().bcast_segment_bytes);
      return;
    case BcastAlg::kBinomialSegmented:
      scope.set_alg(trace::AlgId::kBinomialSegmented);
      bcast_binomial_segmented(*this, buf, root,
                               tuning().bcast_segment_bytes);
      return;
    case BcastAlg::kAuto:
      break;  // unreachable: resolved above
  }
}

void Comm::reduce(CBuf send, MBuf recv, ROp op, int root) {
  check_peer(root);
  if (rank() == root) {
    HPCX_ASSERT(recv.count == send.count && recv.dtype == send.dtype);
  }
  if (size() == 1) {
    local_copy(send, recv);
    return;
  }
  count_reduce_bytes(*this, op, send.bytes());
  CollScope scope(*this, trace::CollOp::kReduce, send.bytes(), root);
  if (send.bytes() <= tuning().reduce_long_bytes || size() <= 2) {
    scope.set_alg(trace::AlgId::kBinomial);
    reduce_binomial(*this, send, recv, op, root);
    return;
  }
  // Rabenseifner for long messages: ring reduce-scatter, then the
  // chunks are sent to the root (linear gather of n-1 chunks; the
  // bandwidth term is the same as a binomial gather of halving ranges).
  scope.set_alg(trace::AlgId::kRabenseifner);
  const int n = size();
  const int r = rank();
  const ChunkPlan plan(send.count, n);
  Temp acc(send.count, send.dtype, send.phantom());
  local_copy(send, acc.buf());
  reduce_scatter_ring_inplace(*this, acc.buf(), op, plan.counts,
                              plan.offsets);
  const std::size_t my_cnt = plan.counts[static_cast<std::size_t>(r)];
  const std::size_t my_off = plan.offsets[static_cast<std::size_t>(r)];
  if (r == root) {
    local_copy(slice(acc.cbuf(), my_off, my_cnt), slice(recv, my_off, my_cnt));
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      const std::size_t cnt = plan.counts[static_cast<std::size_t>(i)];
      if (cnt > 0)
        this->recv(i, kTagReduce,
                   slice(recv, plan.offsets[static_cast<std::size_t>(i)],
                         cnt));
    }
  } else if (my_cnt > 0) {
    this->send(root, kTagReduce, slice(acc.cbuf(), my_off, my_cnt));
  }
}

void Comm::allreduce(CBuf send, MBuf recv, ROp op) {
  HPCX_ASSERT(recv.count == send.count && recv.dtype == send.dtype);
  if (size() == 1) {
    local_copy(send, recv);
    return;
  }
  count_reduce_bytes(*this, op, send.bytes());
  AllreduceAlg alg = tuning().allreduce_alg;
  if (alg == AllreduceAlg::kAuto && tuning().table)
    if (auto tuned = tuning().table->allreduce(size(), send.bytes()))
      alg = *tuned;
  const bool use_rd =
      alg == AllreduceAlg::kRecursiveDoubling ||
      (alg == AllreduceAlg::kAuto &&
       (send.bytes() <= tuning().allreduce_long_bytes || size() <= 2));
  CollScope scope(*this, trace::CollOp::kAllreduce, send.bytes());
  if (use_rd) {
    scope.set_alg(trace::AlgId::kRecursiveDoubling);
    Temp acc(send.count, send.dtype, send.phantom() || recv.phantom());
    local_copy(send, acc.buf());
    allreduce_recursive_doubling(*this, acc.buf(), op);
    local_copy(acc.cbuf(), recv);
    return;
  }
  // Rabenseifner: ring reduce-scatter + ring allgather, in recv.
  scope.set_alg(trace::AlgId::kRabenseifner);
  const ChunkPlan plan(send.count, size());
  local_copy(send, recv);
  reduce_scatter_ring_inplace(*this, recv, op, plan.counts, plan.offsets);
  allgather_ring_inplace(*this, recv, plan.counts, plan.offsets);
}

void Comm::gather(CBuf send, MBuf recv, int root) {
  check_peer(root);
  const int n = size();
  const int r = rank();
  const std::size_t bc = send.count;  // block count (elements per rank)
  if (r == root) {
    HPCX_ASSERT(recv.count == bc * static_cast<std::size_t>(n) &&
                recv.dtype == send.dtype);
  }
  if (n == 1) {
    local_copy(send, recv);
    return;
  }
  CollScope scope(*this, trace::CollOp::kGather, send.bytes(), root);
  scope.set_alg(trace::AlgId::kBinomial);
  // Binomial gather in vrank space: tmp[k] holds the block of vrank
  // (vr + k); the root finally rotates blocks into rank order.
  const int vr = (r - root + n) % n;
  const bool phantom = send.phantom() || (r == root && recv.phantom());
  Temp tmp(bc * static_cast<std::size_t>(n), send.dtype, phantom);
  local_copy(send, slice(tmp.buf(), 0, bc));

  int held = 1;  // blocks currently held (contiguous from my own)
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int src_vr = vr + mask;
      if (src_vr < n) {
        const int blocks = std::min(mask, n - src_vr);
        this->recv((src_vr + root) % n, kTagGather,
                   slice(tmp.buf(), static_cast<std::size_t>(mask) * bc,
                         static_cast<std::size_t>(blocks) * bc));
        held = mask + blocks;
      }
    } else {
      const int dst_vr = vr - mask;
      this->send((dst_vr + root) % n, kTagGather,
                 slice(tmp.cbuf(), 0, static_cast<std::size_t>(held) * bc));
      break;
    }
    mask <<= 1;
  }

  if (r == root) {
    HPCX_ASSERT(held == n);
    for (int k = 0; k < n; ++k) {
      const int src_rank = (vr + k + root) % n;  // vr == 0 at root
      local_copy(slice(tmp.cbuf(), static_cast<std::size_t>(k) * bc, bc),
                 slice(recv, static_cast<std::size_t>(src_rank) * bc, bc));
    }
  }
}

void Comm::scatter(CBuf send, MBuf recv, int root) {
  check_peer(root);
  const int n = size();
  const int r = rank();
  const std::size_t bc = recv.count;
  if (r == root) {
    HPCX_ASSERT(send.count == bc * static_cast<std::size_t>(n) &&
                send.dtype == recv.dtype);
  }
  if (n == 1) {
    local_copy(send, recv);
    return;
  }
  CollScope scope(*this, trace::CollOp::kScatter, recv.bytes(), root);
  scope.set_alg(trace::AlgId::kBinomial);
  const int vr = (r - root + n) % n;
  const bool phantom = recv.phantom() || (r == root && send.phantom());
  Temp tmp(bc * static_cast<std::size_t>(n), recv.dtype, phantom);

  int held = 0;
  if (r == root) {
    // Arrange blocks in vrank order: tmp[v] = block for rank (v+root)%n.
    for (int v = 0; v < n; ++v) {
      const int dst_rank = (v + root) % n;
      local_copy(slice(send, static_cast<std::size_t>(dst_rank) * bc, bc),
                 slice(tmp.buf(), static_cast<std::size_t>(v) * bc, bc));
    }
    held = n;
  }

  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int src_vr = vr - mask;
      held = std::min(mask, n - vr);
      this->recv((src_vr + root) % n, kTagScatter,
                 slice(tmp.buf(), 0, static_cast<std::size_t>(held) * bc));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child_blocks = std::min(mask, n - (vr + mask));
      this->send(((vr + mask) + root) % n, kTagScatter,
                 slice(tmp.cbuf(), static_cast<std::size_t>(mask) * bc,
                       static_cast<std::size_t>(child_blocks) * bc));
      held -= child_blocks;
    }
    mask >>= 1;
  }
  local_copy(slice(tmp.cbuf(), 0, bc), recv);
}

void Comm::allgather(CBuf send, MBuf recv) {
  const int n = size();
  const int r = rank();
  const std::size_t bc = send.count;
  HPCX_ASSERT(recv.count == bc * static_cast<std::size_t>(n) &&
              recv.dtype == send.dtype);
  if (n == 1) {
    local_copy(send, recv);
    return;
  }
  AllgatherAlg aalg = tuning().allgather_alg;
  if (aalg == AllgatherAlg::kAuto && tuning().table)
    if (auto tuned = tuning().table->allgather(n, send.bytes()))
      aalg = *tuned;
  if (aalg == AllgatherAlg::kAuto)
    aalg = send.bytes() > tuning().allgather_long_bytes
               ? AllgatherAlg::kRing
               : AllgatherAlg::kBruck;
  CollScope scope(*this, trace::CollOp::kAllgather, send.bytes());
  if (aalg == AllgatherAlg::kGatherBcast) {
    scope.set_alg(trace::AlgId::kGatherBcast);
    allgather_gather_bcast(*this, send, recv, bc);
    return;
  }
  if (aalg == AllgatherAlg::kRing) {
    scope.set_alg(trace::AlgId::kRing);
    // Ring, blocks directly in place in recv.
    std::vector<std::size_t> counts(static_cast<std::size_t>(n), bc);
    std::vector<std::size_t> offsets(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      offsets[static_cast<std::size_t>(i)] =
          static_cast<std::size_t>(i) * bc;
    local_copy(send, slice(recv, static_cast<std::size_t>(r) * bc, bc));
    allgather_ring_inplace(*this, recv, counts, offsets);
    return;
  }
  scope.set_alg(trace::AlgId::kBruck);
  // Bruck / circular dissemination: tmp[k] = block of rank (r + k) % n.
  Temp tmp(bc * static_cast<std::size_t>(n), send.dtype,
           send.phantom() || recv.phantom());
  local_copy(send, slice(tmp.buf(), 0, bc));
  int curr = 1;
  while (curr < n) {
    const int cnt = std::min(curr, n - curr);
    const int dst = (r - curr + n) % n;
    const int src = (r + curr) % n;
    sendrecv(dst, kTagAllgather,
             slice(tmp.cbuf(), 0, static_cast<std::size_t>(cnt) * bc), src,
             kTagAllgather,
             slice(tmp.buf(), static_cast<std::size_t>(curr) * bc,
                   static_cast<std::size_t>(cnt) * bc));
    curr += cnt;
  }
  for (int k = 0; k < n; ++k)
    local_copy(slice(tmp.cbuf(), static_cast<std::size_t>(k) * bc, bc),
               slice(recv, static_cast<std::size_t>((r + k) % n) * bc, bc));
}

void Comm::allgatherv(CBuf send, MBuf recv, std::span<const int> counts) {
  const int n = size();
  const int r = rank();
  if (static_cast<int>(counts.size()) != n)
    throw CommError("allgatherv: counts has " +
                    std::to_string(counts.size()) + " entries for " +
                    std::to_string(n) + " ranks");
  std::vector<std::size_t> cnts(static_cast<std::size_t>(n));
  std::vector<std::size_t> offs(static_cast<std::size_t>(n));
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) {
    const int c = counts[static_cast<std::size_t>(i)];
    if (c < 0)
      throw CommError("allgatherv: negative count " + std::to_string(c) +
                      " for rank " + std::to_string(i));
    cnts[static_cast<std::size_t>(i)] = static_cast<std::size_t>(c);
    offs[static_cast<std::size_t>(i)] = total;
    total += static_cast<std::size_t>(c);
  }
  if (send.count != cnts[static_cast<std::size_t>(r)])
    throw CommError("allgatherv: rank " + std::to_string(r) + " sends " +
                    std::to_string(send.count) + " elements but counts[" +
                    std::to_string(r) + "] = " +
                    std::to_string(cnts[static_cast<std::size_t>(r)]));
  if (recv.count != total || recv.dtype != send.dtype)
    throw CommError("allgatherv: recv buffer holds " +
                    std::to_string(recv.count) +
                    " elements but counts sum to " + std::to_string(total) +
                    " (rank " + std::to_string(r) + ")");
  CollScope scope(*this, trace::CollOp::kAllgatherv, send.bytes());
  scope.set_alg(trace::AlgId::kRing);
  local_copy(send, slice(recv, offs[static_cast<std::size_t>(r)],
                         cnts[static_cast<std::size_t>(r)]));
  allgather_ring_inplace(*this, recv, cnts, offs);
}

void Comm::alltoall(CBuf send, MBuf recv) {
  const int n = size();
  const int r = rank();
  HPCX_ASSERT(send.count % static_cast<std::size_t>(n) == 0);
  const std::size_t bc = send.count / static_cast<std::size_t>(n);
  HPCX_ASSERT(recv.count == send.count && recv.dtype == send.dtype);
  if (n == 1) {
    local_copy(send, recv);
    return;
  }
  AlltoallAlg alg = tuning().alltoall_alg;
  if (alg == AlltoallAlg::kAuto && tuning().table)
    if (auto tuned =
            tuning().table->alltoall(n, bc * dtype_size(send.dtype)))
      alg = *tuned;
  // Untuned kAuto stays pairwise at every size: IMB's 1 MB operating
  // point lands there anyway, and the determinism goldens pin the
  // schedule. Bruck is reachable via explicit choice or a tuning table.
  CollScope scope(*this, trace::CollOp::kAlltoall,
                  bc * dtype_size(send.dtype));
  if (alg == AlltoallAlg::kBruck) {
    scope.set_alg(trace::AlgId::kBruck);
    alltoall_bruck(*this, send, recv, bc);
    return;
  }
  scope.set_alg(trace::AlgId::kPairwise);
  // Own block moves locally in both variants.
  local_copy(slice(send, static_cast<std::size_t>(r) * bc, bc),
             slice(recv, static_cast<std::size_t>(r) * bc, bc));

  // Pairwise exchange. XOR pairing when the size is a power of two
  // gives perfectly matched exchange partners.
  for (int k = 1; k < n; ++k) {
    int dst, src;
    if (is_pow2(n)) {
      dst = src = r ^ k;
    } else {
      dst = (r + k) % n;
      src = (r - k + n) % n;
    }
    sendrecv(dst, kTagAlltoall,
             slice(send, static_cast<std::size_t>(dst) * bc, bc), src,
             kTagAlltoall, slice(recv, static_cast<std::size_t>(src) * bc, bc));
  }
}

void Comm::alltoallv(CBuf send, std::span<const int> send_counts, MBuf recv,
                     std::span<const int> recv_counts) {
  const int n = size();
  const int r = rank();
  if (static_cast<int>(send_counts.size()) != n ||
      static_cast<int>(recv_counts.size()) != n)
    throw CommError("alltoallv: counts arrays have " +
                    std::to_string(send_counts.size()) + "/" +
                    std::to_string(recv_counts.size()) + " entries for " +
                    std::to_string(n) + " ranks");
  std::vector<std::size_t> soff(static_cast<std::size_t>(n)),
      roff(static_cast<std::size_t>(n));
  std::size_t st = 0, rt = 0;
  for (int i = 0; i < n; ++i) {
    const int sc = send_counts[static_cast<std::size_t>(i)];
    const int rc = recv_counts[static_cast<std::size_t>(i)];
    if (sc < 0 || rc < 0)
      throw CommError("alltoallv: negative count for rank " +
                      std::to_string(i));
    soff[static_cast<std::size_t>(i)] = st;
    roff[static_cast<std::size_t>(i)] = rt;
    st += static_cast<std::size_t>(sc);
    rt += static_cast<std::size_t>(rc);
  }
  if (send.count != st)
    throw CommError("alltoallv: rank " + std::to_string(r) +
                    " send buffer holds " + std::to_string(send.count) +
                    " elements but send_counts sum to " + std::to_string(st));
  if (recv.count != rt)
    throw CommError("alltoallv: rank " + std::to_string(r) +
                    " recv buffer holds " + std::to_string(recv.count) +
                    " elements but recv_counts sum to " + std::to_string(rt));
  CollScope scope(*this, trace::CollOp::kAlltoallv, send.bytes());
  scope.set_alg(trace::AlgId::kPairwise);

  local_copy(
      slice(send, soff[static_cast<std::size_t>(r)],
            static_cast<std::size_t>(send_counts[static_cast<std::size_t>(r)])),
      slice(recv, roff[static_cast<std::size_t>(r)],
            static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(r)])));
  for (int k = 1; k < n; ++k) {
    const int dst = (r + k) % n;
    const int src = (r - k + n) % n;
    sendrecv(
        dst, kTagAlltoall,
        slice(send, soff[static_cast<std::size_t>(dst)],
              static_cast<std::size_t>(
                  send_counts[static_cast<std::size_t>(dst)])),
        src, kTagAlltoall,
        slice(recv, roff[static_cast<std::size_t>(src)],
              static_cast<std::size_t>(
                  recv_counts[static_cast<std::size_t>(src)])));
  }
}

void Comm::reduce_scatter(CBuf send, MBuf recv, std::span<const int> counts,
                          ROp op) {
  const int n = size();
  const int r = rank();
  if (static_cast<int>(counts.size()) != n)
    throw CommError("reduce_scatter: counts has " +
                    std::to_string(counts.size()) + " entries for " +
                    std::to_string(n) + " ranks");
  std::vector<std::size_t> cnts(static_cast<std::size_t>(n));
  std::vector<std::size_t> offs(static_cast<std::size_t>(n));
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) {
    const int c = counts[static_cast<std::size_t>(i)];
    if (c < 0)
      throw CommError("reduce_scatter: negative count " + std::to_string(c) +
                      " for rank " + std::to_string(i));
    cnts[static_cast<std::size_t>(i)] = static_cast<std::size_t>(c);
    offs[static_cast<std::size_t>(i)] = total;
    total += static_cast<std::size_t>(c);
  }
  if (send.count != total)
    throw CommError("reduce_scatter: send buffer holds " +
                    std::to_string(send.count) +
                    " elements but counts sum to " + std::to_string(total) +
                    " (rank " + std::to_string(r) + ")");
  if (recv.count != cnts[static_cast<std::size_t>(r)] ||
      recv.dtype != send.dtype)
    throw CommError("reduce_scatter: rank " + std::to_string(r) +
                    " recv buffer holds " + std::to_string(recv.count) +
                    " elements but counts[" + std::to_string(r) + "] = " +
                    std::to_string(cnts[static_cast<std::size_t>(r)]));
  count_reduce_bytes(*this, op, send.bytes());
  if (n == 1) {
    local_copy(send, recv);
    return;
  }
  ReduceScatterAlg alg = tuning().reduce_scatter_alg;
  if (alg == ReduceScatterAlg::kAuto && tuning().table)
    if (auto tuned = tuning().table->reduce_scatter(n, send.bytes()))
      alg = *tuned;
  if (alg == ReduceScatterAlg::kAuto)
    alg = is_pow2(n) ? ReduceScatterAlg::kRecursiveHalving
                     : ReduceScatterAlg::kRing;
  CollScope scope(*this, trace::CollOp::kReduceScatter, send.bytes());

  if (alg == ReduceScatterAlg::kPairwise) {
    scope.set_alg(trace::AlgId::kPairwise);
    reduce_scatter_pairwise(*this, send, recv, op, cnts, offs);
    return;
  }
  Temp acc(total, send.dtype, send.phantom() || recv.phantom());
  local_copy(send, acc.buf());
  if (alg == ReduceScatterAlg::kRecursiveHalving) {
    scope.set_alg(trace::AlgId::kRecursiveHalving);
    // The power-of-two schedule is pinned by the determinism goldens;
    // the general variant folds surplus ranks first.
    if (is_pow2(n)) {
      reduce_scatter_rhalving_inplace(*this, acc.buf(), op, cnts, offs);
    } else {
      reduce_scatter_rhalving_general(*this, acc.buf(), recv, op, cnts,
                                      offs);
      return;
    }
  } else {
    scope.set_alg(trace::AlgId::kRing);
    reduce_scatter_ring_inplace(*this, acc.buf(), op, cnts, offs);
  }
  local_copy(slice(acc.cbuf(), offs[static_cast<std::size_t>(r)],
                   cnts[static_cast<std::size_t>(r)]),
             recv);
}

}  // namespace hpcx::xmpi
