// Element-wise reduction kernels for the collective operations.
#pragma once

#include <cstddef>

#include "xmpi/comm.hpp"

namespace hpcx::xmpi {

/// inout[i] = op(inout[i], in[i]) for count elements of dtype.
/// kByte supports kSum/kMax/kMin (treated as unsigned chars).
void apply_rop(ROp op, DType dtype, void* inout, const void* in,
               std::size_t count);

const char* to_string(ROp op);

}  // namespace hpcx::xmpi
