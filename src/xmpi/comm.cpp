#include "xmpi/comm.hpp"

#include <string>

#include "trace/trace.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace hpcx::xmpi {

const char* to_string(BcastAlg a) {
  switch (a) {
    case BcastAlg::kAuto:
      return "auto";
    case BcastAlg::kBinomial:
      return "binomial";
    case BcastAlg::kScatterRing:
      return "scatter-ring";
    case BcastAlg::kPipelinedRing:
      return "pipelined-ring";
    case BcastAlg::kBinomialSegmented:
      return "binomial-segmented";
  }
  return "?";
}

const char* to_string(AllreduceAlg a) {
  switch (a) {
    case AllreduceAlg::kAuto:
      return "auto";
    case AllreduceAlg::kRecursiveDoubling:
      return "recursive-doubling";
    case AllreduceAlg::kRabenseifner:
      return "rabenseifner";
  }
  return "?";
}

const char* to_string(AllgatherAlg a) {
  switch (a) {
    case AllgatherAlg::kAuto:
      return "auto";
    case AllgatherAlg::kBruck:
      return "bruck";
    case AllgatherAlg::kRing:
      return "ring";
    case AllgatherAlg::kGatherBcast:
      return "gather-bcast";
  }
  return "?";
}

const char* to_string(AlltoallAlg a) {
  switch (a) {
    case AlltoallAlg::kAuto:
      return "auto";
    case AlltoallAlg::kPairwise:
      return "pairwise";
    case AlltoallAlg::kBruck:
      return "bruck";
  }
  return "?";
}

const char* to_string(ReduceScatterAlg a) {
  switch (a) {
    case ReduceScatterAlg::kAuto:
      return "auto";
    case ReduceScatterAlg::kRecursiveHalving:
      return "recursive-halving";
    case ReduceScatterAlg::kRing:
      return "ring";
    case ReduceScatterAlg::kPairwise:
      return "pairwise";
  }
  return "?";
}

namespace {

/// Matches `name` against to_string() of every enumerator in `all`.
template <typename Alg, std::size_t N>
bool parse_alg(std::string_view name, const Alg (&all)[N], Alg& out) {
  for (const Alg a : all) {
    if (name == to_string(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

}  // namespace

bool parse(std::string_view name, BcastAlg& out) {
  constexpr BcastAlg all[] = {BcastAlg::kAuto, BcastAlg::kBinomial,
                              BcastAlg::kScatterRing,
                              BcastAlg::kPipelinedRing,
                              BcastAlg::kBinomialSegmented};
  return parse_alg(name, all, out);
}

bool parse(std::string_view name, AllreduceAlg& out) {
  constexpr AllreduceAlg all[] = {AllreduceAlg::kAuto,
                                  AllreduceAlg::kRecursiveDoubling,
                                  AllreduceAlg::kRabenseifner};
  return parse_alg(name, all, out);
}

bool parse(std::string_view name, AllgatherAlg& out) {
  constexpr AllgatherAlg all[] = {AllgatherAlg::kAuto, AllgatherAlg::kBruck,
                                  AllgatherAlg::kRing,
                                  AllgatherAlg::kGatherBcast};
  return parse_alg(name, all, out);
}

bool parse(std::string_view name, AlltoallAlg& out) {
  constexpr AlltoallAlg all[] = {AlltoallAlg::kAuto, AlltoallAlg::kPairwise,
                                 AlltoallAlg::kBruck};
  return parse_alg(name, all, out);
}

bool parse(std::string_view name, ReduceScatterAlg& out) {
  constexpr ReduceScatterAlg all[] = {
      ReduceScatterAlg::kAuto, ReduceScatterAlg::kRecursiveHalving,
      ReduceScatterAlg::kRing, ReduceScatterAlg::kPairwise};
  return parse_alg(name, all, out);
}

Comm::Comm() { tuning_.table = tuner::default_table(); }

void Comm::check_peer_slow(int peer) const {
  if (peer_limit_ < 0 && peer >= 0 && peer < size()) return;
  throw CommError("peer rank " + std::to_string(peer) +
                  " out of range [0, " + std::to_string(size()) + ")");
}

const trace::Counters* Comm::stats() const {
  return trace_ ? &trace_->counters() : nullptr;
}

void Comm::send(int dst, int tag, CBuf buf) {
  check_peer(dst);
  if (trace_ == nullptr) {
    send_impl(dst, tag, buf);
    return;
  }
  trace::Event e;
  e.t_begin = now();
  send_impl(dst, tag, buf);
  e.t_end = now();
  e.kind = trace::EventKind::kSend;
  e.peer = dst;
  e.tag = tag;
  e.bytes = buf.bytes();
  trace_->record(e);
  trace_->counters().note_send(buf.bytes());
}

void Comm::recv(int src, int tag, MBuf buf) {
  check_peer(src);
  if (trace_ == nullptr) {
    recv_impl(src, tag, buf);
    return;
  }
  trace::Event e;
  e.t_begin = now();
  recv_impl(src, tag, buf);
  e.t_end = now();
  e.kind = trace::EventKind::kRecv;
  e.peer = src;
  e.tag = tag;
  e.bytes = buf.bytes();
  trace_->record(e);
  trace_->counters().note_recv(buf.bytes());
}

SendRequest Comm::isend(int dst, int tag, CBuf buf) {
  check_peer(dst);
  if (trace_ == nullptr) return isend_impl(dst, tag, buf);
  trace::Event e;
  e.t_begin = now();
  SendRequest req = isend_impl(dst, tag, buf);
  e.t_end = now();
  e.kind = trace::EventKind::kSend;
  e.peer = dst;
  e.tag = tag;
  e.bytes = buf.bytes();
  trace_->record(e);
  trace_->counters().note_send(buf.bytes());
  return req;
}

void Comm::wait(SendRequest& req) {
  if (!req.pending()) return;
  wait_impl(req);
  req = SendRequest{};
}

void Comm::compute(double seconds) {
  if (trace_ == nullptr) {
    compute_impl(seconds);
    return;
  }
  trace::Event e;
  e.t_begin = now();
  compute_impl(seconds);
  e.t_end = now();
  e.kind = trace::EventKind::kCompute;
  trace_->record(e);
  trace_->counters().compute_s += seconds;
}

PhaseScope::PhaseScope(Comm& comm, trace::PhaseId phase)
    : comm_(&comm), phase_(phase) {
  if (comm_->trace() != nullptr) t_begin_ = comm_->now();
}

PhaseScope::~PhaseScope() {
  trace::RankTrace* sink = comm_->trace();
  if (sink == nullptr) return;
  trace::Event e;
  e.t_begin = t_begin_;
  e.t_end = comm_->now();
  e.kind = trace::EventKind::kPhase;
  e.op = static_cast<std::uint8_t>(phase_);
  sink->record(e);
  sink->counters().phase_s[static_cast<std::size_t>(phase_)] +=
      e.t_end - e.t_begin;
}

void Comm::sendrecv(int dst, int send_tag, CBuf send_buf, int src,
                    int recv_tag, MBuf recv_buf) {
  // The send is started nonblocking and completed after the receive:
  // even when the message is large enough for the rendezvous protocol,
  // fully cyclic exchange patterns cannot deadlock.
  SendRequest req = isend(dst, send_tag, send_buf);
  recv(src, recv_tag, recv_buf);
  wait(req);
}

}  // namespace hpcx::xmpi
