#include "xmpi/comm.hpp"

#include <string>

namespace hpcx::xmpi {

void Comm::check_peer(int peer) const {
  if (peer < 0 || peer >= size())
    throw CommError("peer rank " + std::to_string(peer) +
                    " out of range [0, " + std::to_string(size()) + ")");
}

void Comm::send(int dst, int tag, CBuf buf) {
  check_peer(dst);
  send_impl(dst, tag, buf);
}

void Comm::recv(int src, int tag, MBuf buf) {
  check_peer(src);
  recv_impl(src, tag, buf);
}

void Comm::sendrecv(int dst, int send_tag, CBuf send_buf, int src,
                    int recv_tag, MBuf recv_buf) {
  // Sends are eager (they complete locally without a matching receive),
  // so send-then-recv cannot deadlock even in fully cyclic patterns.
  send(dst, send_tag, send_buf);
  recv(src, recv_tag, recv_buf);
}

}  // namespace hpcx::xmpi
