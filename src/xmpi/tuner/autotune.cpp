#include "xmpi/tuner/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_comm.hpp"
#include "xmpi/thread_comm.hpp"

namespace hpcx::xmpi::tuner {

const std::vector<Collective>& all_collectives() {
  static const std::vector<Collective> all = {
      Collective::kBcast, Collective::kAllreduce, Collective::kAllgather,
      Collective::kAlltoall, Collective::kReduceScatter};
  return all;
}

const std::vector<std::string>& algorithms_for(Collective c) {
  static const std::vector<std::string> bcast = {
      "binomial", "scatter-ring", "pipelined-ring", "binomial-segmented"};
  static const std::vector<std::string> allreduce = {"recursive-doubling",
                                                     "rabenseifner"};
  static const std::vector<std::string> allgather = {"bruck", "ring",
                                                     "gather-bcast"};
  static const std::vector<std::string> alltoall = {"pairwise", "bruck"};
  static const std::vector<std::string> reduce_scatter = {"recursive-halving",
                                                          "ring", "pairwise"};
  switch (c) {
    case Collective::kBcast:
      return bcast;
    case Collective::kAllreduce:
      return allreduce;
    case Collective::kAllgather:
      return allgather;
    case Collective::kAlltoall:
      return alltoall;
    case Collective::kReduceScatter:
      return reduce_scatter;
  }
  return bcast;
}

namespace {

/// Force `c` to run `name` for `coll` (the names come from
/// algorithms_for, so parse cannot fail).
void set_explicit_alg(Comm& c, Collective coll, const std::string& name) {
  bool ok = false;
  switch (coll) {
    case Collective::kBcast:
      ok = xmpi::parse(name, c.tuning().bcast_alg);
      break;
    case Collective::kAllreduce:
      ok = xmpi::parse(name, c.tuning().allreduce_alg);
      break;
    case Collective::kAllgather:
      ok = xmpi::parse(name, c.tuning().allgather_alg);
      break;
    case Collective::kAlltoall:
      ok = xmpi::parse(name, c.tuning().alltoall_alg);
      break;
    case Collective::kReduceScatter:
      ok = xmpi::parse(name, c.tuning().reduce_scatter_alg);
      break;
  }
  HPCX_ASSERT(ok);
}

/// One measurement target: every rank runs the identical schedule;
/// rank 0 collects the timings.
struct Measurement {
  std::size_t bytes = 0;
  std::string alg;
  std::vector<double> times_s;  // written by rank 0 only
};

TuningTable tune_on(const std::string& machine_name, const std::string& clock,
                    int nranks, const TuneOptions& opts, bool phantom,
                    int default_iters, int default_repeats,
                    const std::function<void(const RankFn&)>& run_world) {
  HPCX_REQUIRE(nranks >= 1, "autotune needs at least one rank");
  HPCX_REQUIRE(opts.min_bytes >= 1 && opts.min_bytes <= opts.max_bytes,
               "autotune: need 1 <= min_bytes <= max_bytes");
  const int iters = opts.iters > 0 ? opts.iters : default_iters;
  const int repeats = opts.repeats > 0 ? opts.repeats : default_repeats;
  const std::vector<Collective>& colls =
      opts.collectives.empty() ? all_collectives() : opts.collectives;

  TuningTable table;
  table.machine = machine_name;
  table.clock = clock;

  for (const Collective coll : colls) {
    std::vector<std::string> algs;
    for (const std::string& alg : algorithms_for(coll))
      if (opts.algorithms.empty() ||
          std::find(opts.algorithms.begin(), opts.algorithms.end(), alg) !=
              opts.algorithms.end())
        algs.push_back(alg);
    std::vector<Measurement> plan;
    for (std::size_t bytes = opts.min_bytes; bytes <= opts.max_bytes;
         bytes *= 2) {
      for (const std::string& alg : algs) plan.push_back({bytes, alg, {}});
      if (bytes > opts.max_bytes / 2) break;  // overflow guard
    }
    if (algs.empty()) continue;

    // One world per collective: every rank walks the identical plan so
    // the collectives stay matched; only rank 0 stores timings.
    run_world([&](Comm& c) {
      // A process-wide default table must not steer the very runs that
      // are producing the next table.
      c.tuning().table = nullptr;
      for (Measurement& m : plan) {
        set_explicit_alg(c, coll, m.alg);
        for (int rep = 0; rep < repeats; ++rep) {
          const double t = measure_collective(c, coll, m.bytes, iters,
                                              phantom);
          if (c.rank() == 0) m.times_s.push_back(t);
        }
      }
    });

    // Winner per size: smallest mean time.
    for (std::size_t i = 0; i < plan.size();) {
      const std::size_t bytes = plan[i].bytes;
      const Measurement* best = nullptr;
      double best_mean = 0.0, best_cov = 0.0;
      for (; i < plan.size() && plan[i].bytes == bytes; ++i) {
        Stats s;
        for (const double t : plan[i].times_s) s.add(t);
        const double mean = s.mean();
        const double cov = mean > 0.0 ? s.stddev() / mean : 0.0;
        if (best == nullptr || mean < best_mean) {
          best = &plan[i];
          best_mean = mean;
          best_cov = cov;
        }
      }
      Cell cell;
      cell.coll = coll;
      cell.np = nranks;
      cell.size_class = static_cast<int>(trace::size_class(bytes));
      cell.alg = best->alg;
      cell.t_s = best_mean;
      cell.cov = best_cov;
      table.add(cell);
    }
  }
  return table;
}

}  // namespace

double measure_collective(Comm& c, Collective coll, std::size_t msg_bytes,
                          int iters, bool phantom) {
  const int n = c.size();
  const int r = c.rank();
  HPCX_REQUIRE(iters >= 1, "measure_collective: iters >= 1");

  std::vector<unsigned char> send_store, recv_store;
  std::vector<int> counts;
  std::function<void()> op;
  auto make_cbuf = [&](std::size_t count) {
    if (phantom) return phantom_cbuf(count);
    send_store.assign(count, 1);
    return cbuf_bytes(send_store.data(), count);
  };
  auto make_mbuf = [&](std::size_t count) {
    if (phantom) return phantom_mbuf(count);
    recv_store.assign(count, 0);
    return mbuf_bytes(recv_store.data(), count);
  };

  switch (coll) {
    case Collective::kBcast: {
      MBuf buf = make_mbuf(msg_bytes);
      op = [&c, buf] { c.bcast(buf, 0); };
      break;
    }
    case Collective::kAllreduce: {
      CBuf send = make_cbuf(msg_bytes);
      MBuf recv = make_mbuf(msg_bytes);
      op = [&c, send, recv] { c.allreduce(send, recv, ROp::kSum); };
      break;
    }
    case Collective::kAllgather: {
      CBuf send = make_cbuf(msg_bytes);
      MBuf recv = make_mbuf(msg_bytes * static_cast<std::size_t>(n));
      op = [&c, send, recv] { c.allgather(send, recv); };
      break;
    }
    case Collective::kAlltoall: {
      CBuf send = make_cbuf(msg_bytes * static_cast<std::size_t>(n));
      MBuf recv = make_mbuf(msg_bytes * static_cast<std::size_t>(n));
      op = [&c, send, recv] { c.alltoall(send, recv); };
      break;
    }
    case Collective::kReduceScatter: {
      counts.resize(static_cast<std::size_t>(n));
      const std::size_t per = msg_bytes / static_cast<std::size_t>(n);
      const std::size_t extra = msg_bytes % static_cast<std::size_t>(n);
      for (int i = 0; i < n; ++i)
        counts[static_cast<std::size_t>(i)] =
            static_cast<int>(per + (static_cast<std::size_t>(i) < extra));
      CBuf send = make_cbuf(msg_bytes);
      MBuf recv = make_mbuf(
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
      op = [&c, send, recv, &counts] {
        c.reduce_scatter(send, recv, counts, ROp::kSum);
      };
      break;
    }
  }

  op();  // warm-up (channels, pools, branch predictors)
  c.barrier();
  const double t0 = c.now();
  for (int i = 0; i < iters; ++i) op();
  c.barrier();
  return (c.now() - t0) / iters;
}

TuningTable autotune(const mach::MachineConfig& m, int nranks,
                     const TuneOptions& opts) {
  return tune_on(m.short_name, "virtual", nranks, opts, /*phantom=*/true,
                 /*default_iters=*/1, /*default_repeats=*/1,
                 [&](const RankFn& fn) { run_on_machine(m, nranks, fn); });
}

TuningTable autotune_threads(int nranks, const TuneOptions& opts) {
  return tune_on("threads", "wall", nranks, opts, /*phantom=*/false,
                 /*default_iters=*/8, /*default_repeats=*/3,
                 [&](const RankFn& fn) { run_on_threads(nranks, fn); });
}

}  // namespace hpcx::xmpi::tuner
