// Empirical autotuner: benchmark every registered algorithm of each
// collective over a sweep of message sizes and record the winner per
// (collective, np, size class) in a TuningTable.
//
// Two substrates, same search:
//  * autotune() runs on SimComm for a modelled machine — virtual time,
//    phantom payloads, deterministic (one repeat suffices, cov = 0);
//  * autotune_threads() runs on ThreadComm — wall-clock time, real
//    payloads, several repeats to average scheduler noise.
//
// The measurement is barrier-closed: warm-up op, barrier, `iters` ops,
// barrier, elapsed/iters at rank 0. The barrier cost is a constant
// additive term per cell, identical across the algorithms being ranked,
// so it never changes a winner.
#pragma once

#include <cstddef>
#include <vector>

#include "machine/machine.hpp"
#include "xmpi/tuner/tuning_table.hpp"

namespace hpcx::xmpi::tuner {

struct TuneOptions {
  std::size_t min_bytes = 8;
  std::size_t max_bytes = 1 << 20;  ///< sweep doubles from min to max
  int iters = 0;    ///< ops per timing; 0 = substrate default (sim 1, threads 8)
  int repeats = 0;  ///< timings per cell; 0 = default (sim 1, threads 3)
  std::vector<Collective> collectives;  ///< empty = all five
  /// Restrict the race to these algorithm names (empty = every algorithm
  /// registered for the collective). Lets a driver decompose the search
  /// into independent per-algorithm worlds and merge the winners itself.
  std::vector<std::string> algorithms;
};

/// The collectives autotune() races by default, in race order.
const std::vector<Collective>& all_collectives();

/// The concrete (non-auto) algorithm names raced for `c`, in race order —
/// the serial tuner breaks timing ties by first-listed-wins, so any
/// decomposed search must merge winners in this order with a strict
/// less-than to reproduce the serial table.
const std::vector<std::string>& algorithms_for(Collective c);

/// Tune on `nranks` simulated ranks of machine `m`.
TuningTable autotune(const mach::MachineConfig& m, int nranks,
                     const TuneOptions& opts = {});

/// Tune on `nranks` host threads.
TuningTable autotune_threads(int nranks, const TuneOptions& opts = {});

/// Time one collective on `c` with its *current* tuning: warm-up op,
/// then barrier-closed mean seconds per op over `iters` executions.
/// `msg_bytes` is the collective's tuner-relevant size (full buffer for
/// bcast/allreduce, per-rank block for allgather, per-destination block
/// for alltoall, total send vector for reduce_scatter) — the same
/// quantity kAuto uses for table lookup. With `phantom`, buffers are
/// storage-free (timed identically, nothing moves). Every rank must
/// call this collectively; each returns its own elapsed time.
double measure_collective(Comm& c, Collective coll, std::size_t msg_bytes,
                          int iters, bool phantom);

}  // namespace hpcx::xmpi::tuner
