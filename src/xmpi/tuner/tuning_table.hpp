// xmpi::tuner — persistent empirical tuning tables for collective
// algorithm selection (schema "hpcx-tuning/1").
//
// A TuningTable maps (collective, np, message-size class) to the
// algorithm that measured fastest on a target machine, together with
// the measured time and its coefficient of variation. Tables are
// produced by the autotuner (xmpi/tuner/autotune.hpp, tools/hpcx_tune),
// serialised as JSON, and consulted by Comm's kAuto dispatch *before*
// the static CollectiveTuning thresholds: table hit -> threshold
// heuristic -> hard-coded default.
//
// Size classes reuse trace::size_class (power-of-two buckets: class 0
// is the empty message, class k covers [2^(k-1), 2^k) bytes). Lookup is
// nearest-neighbour in (np, size class) so a table tuned at np = 8 and
// 1 KiB still steers an np = 6, 700 B call — tuning tables are sparse
// by construction and the nearest measured cell is a better guess than
// falling back to one global threshold.
//
// The byte quantity used for lookup matches what the tuner varies per
// collective: bcast/allreduce use the full buffer, allgather the
// per-rank contribution, alltoall the per-destination block, and
// reduce_scatter the total send vector. Comm's dispatch and the
// autotuner agree on this by construction (both call the helpers here).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xmpi/comm.hpp"

namespace hpcx {
class Table;
}

namespace hpcx::xmpi::tuner {

/// The five tunable collective entry points. (Barrier and the rooted
/// gather/scatter have a single algorithm each; the v-variants follow
/// their fixed-count siblings.)
enum class Collective : std::uint8_t {
  kBcast,
  kAllreduce,
  kAllgather,
  kAlltoall,
  kReduceScatter,
};
constexpr std::size_t kNumCollectives = 5;

const char* to_string(Collective c);
bool parse(std::string_view name, Collective& out);

/// One tuned cell: the winning algorithm for (collective, np, size
/// class) plus its measured mean time and coefficient of variation
/// (cov = stddev / mean over the measurement repeats; 0 for single-shot
/// deterministic simulation runs).
struct Cell {
  Collective coll = Collective::kBcast;
  int np = 0;
  int size_class = 0;  ///< trace::size_class of the collective's bytes
  std::string alg;     ///< xmpi to_string name of the winner
  double t_s = 0.0;
  double cov = 0.0;
};

/// In-memory tuning table with JSON (de)serialisation.
class TuningTable {
 public:
  /// Provenance, stamped by the tuner and carried through the JSON.
  std::string machine;  ///< machine short name, or "threads"
  std::string clock;    ///< "virtual" (SimComm) or "wall" (ThreadComm)
  std::string created;  ///< ISO-8601 timestamp ("" when not stamped)

  /// Insert a cell, replacing any existing cell with the same
  /// (collective, np, size_class) key.
  void add(const Cell& cell);

  const std::vector<Cell>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }

  /// Nearest measured cell for (coll, np, bytes): minimise |np - cell.np|
  /// first (ties -> smaller np), then |size_class(bytes) - cell class|
  /// (ties -> smaller class). nullptr when no cell for `coll` exists.
  const Cell* lookup(Collective coll, int np, std::size_t bytes) const;

  // Typed lookups for Comm's kAuto dispatch: the winning algorithm for
  // the nearest cell, or nullopt when the table has no cell for the
  // collective or the recorded name is "auto"/unparseable (then the
  // threshold heuristic decides).
  std::optional<BcastAlg> bcast(int np, std::size_t bytes) const;
  std::optional<AllreduceAlg> allreduce(int np, std::size_t bytes) const;
  std::optional<AllgatherAlg> allgather(int np, std::size_t bytes) const;
  std::optional<AlltoallAlg> alltoall(int np, std::size_t bytes) const;
  std::optional<ReduceScatterAlg> reduce_scatter(int np,
                                                 std::size_t bytes) const;

  /// Serialise as schema "hpcx-tuning/1" JSON.
  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Parse a table back. Throws ConfigError on malformed input or a
  /// schema mismatch.
  static TuningTable from_json(std::string_view text);
  static TuningTable load(const std::string& path);

  /// Human-readable cell listing (core/table).
  hpcx::Table summary_table() const;

 private:
  std::vector<Cell> cells_;
};

/// Process-wide default table, seeded into every Comm's tuning() at
/// construction (nullptr by default: thresholds only). hpcx_tune
/// --verify and the CLI's --tuning flag install a loaded table here.
void set_default_table(std::shared_ptr<const TuningTable> table);
std::shared_ptr<const TuningTable> default_table();

/// One differing cell between two tables (hpcx_compare).
struct DiffEntry {
  Cell baseline;
  Cell candidate;
  bool alg_changed = false;
  bool regressed = false;  ///< candidate slower beyond tolerance
  double rel_delta = 0.0;  ///< (candidate.t_s - baseline.t_s) / baseline.t_s
};

struct TuningDiff {
  std::vector<DiffEntry> entries;  ///< cells that changed alg or regressed
  std::size_t compared = 0;        ///< keys present in both tables
  std::size_t only_baseline = 0;
  std::size_t only_candidate = 0;
  bool regression() const {
    for (const auto& e : entries)
      if (e.regressed) return true;
    return false;
  }
};

/// Diff two tuning tables key by key. A time regression is flagged when
/// the candidate is slower by more than max(rel_threshold,
/// cov_multiple * baseline.cov); an algorithm change is always
/// reported but only counts as a regression if the time regressed too.
TuningDiff diff_tables(const TuningTable& baseline,
                       const TuningTable& candidate,
                       double rel_threshold = 0.05,
                       double cov_multiple = 3.0);

}  // namespace hpcx::xmpi::tuner
