#include "xmpi/tuner/tuning_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "core/error.hpp"
#include "core/json.hpp"
#include "core/table.hpp"
#include "core/units.hpp"
#include "trace/trace.hpp"

namespace hpcx::xmpi::tuner {

const char* to_string(Collective c) {
  switch (c) {
    case Collective::kBcast:
      return "bcast";
    case Collective::kAllreduce:
      return "allreduce";
    case Collective::kAllgather:
      return "allgather";
    case Collective::kAlltoall:
      return "alltoall";
    case Collective::kReduceScatter:
      return "reduce_scatter";
  }
  return "?";
}

bool parse(std::string_view name, Collective& out) {
  for (std::size_t i = 0; i < kNumCollectives; ++i) {
    const auto c = static_cast<Collective>(i);
    if (name == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Parse an algorithm name, mapping "auto" and unknown strings to
/// nullopt so the caller falls back to the threshold heuristic.
template <typename Alg>
std::optional<Alg> parse_tuned(const TuningTable& t, Collective c, int np,
                               std::size_t bytes) {
  const Cell* cell = t.lookup(c, np, bytes);
  if (cell == nullptr) return std::nullopt;
  Alg a{};
  if (!xmpi::parse(cell->alg, a) || a == Alg::kAuto) return std::nullopt;
  return a;
}

}  // namespace

void TuningTable::add(const Cell& cell) {
  for (Cell& c : cells_) {
    if (c.coll == cell.coll && c.np == cell.np &&
        c.size_class == cell.size_class) {
      c = cell;
      return;
    }
  }
  cells_.push_back(cell);
}

const Cell* TuningTable::lookup(Collective coll, int np,
                                std::size_t bytes) const {
  const int cls = static_cast<int>(trace::size_class(bytes));
  const Cell* best = nullptr;
  for (const Cell& c : cells_) {
    if (c.coll != coll) continue;
    if (best == nullptr) {
      best = &c;
      continue;
    }
    const int dnp_c = std::abs(c.np - np);
    const int dnp_b = std::abs(best->np - np);
    if (dnp_c != dnp_b) {
      if (dnp_c < dnp_b) best = &c;
      continue;
    }
    if (c.np != best->np) {
      if (c.np < best->np) best = &c;
      continue;
    }
    const int dcl_c = std::abs(c.size_class - cls);
    const int dcl_b = std::abs(best->size_class - cls);
    if (dcl_c != dcl_b) {
      if (dcl_c < dcl_b) best = &c;
      continue;
    }
    if (c.size_class < best->size_class) best = &c;
  }
  return best;
}

std::optional<BcastAlg> TuningTable::bcast(int np, std::size_t bytes) const {
  return parse_tuned<BcastAlg>(*this, Collective::kBcast, np, bytes);
}
std::optional<AllreduceAlg> TuningTable::allreduce(int np,
                                                   std::size_t bytes) const {
  return parse_tuned<AllreduceAlg>(*this, Collective::kAllreduce, np, bytes);
}
std::optional<AllgatherAlg> TuningTable::allgather(int np,
                                                   std::size_t bytes) const {
  return parse_tuned<AllgatherAlg>(*this, Collective::kAllgather, np, bytes);
}
std::optional<AlltoallAlg> TuningTable::alltoall(int np,
                                                 std::size_t bytes) const {
  return parse_tuned<AlltoallAlg>(*this, Collective::kAlltoall, np, bytes);
}
std::optional<ReduceScatterAlg> TuningTable::reduce_scatter(
    int np, std::size_t bytes) const {
  return parse_tuned<ReduceScatterAlg>(*this, Collective::kReduceScatter, np,
                                       bytes);
}

std::string TuningTable::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"hpcx-tuning/1\",\n";
  os << "  \"machine\": \"" << json_escape(machine) << "\",\n";
  os << "  \"clock\": \"" << json_escape(clock) << "\",\n";
  os << "  \"created\": \"" << json_escape(created) << "\",\n";
  os << "  \"cells\": [";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"collective\": \"" << to_string(c.coll)
       << "\", \"np\": " << c.np << ", \"size_class\": " << c.size_class
       << ", \"alg\": \"" << json_escape(c.alg)
       << "\", \"t_s\": " << json_number(c.t_s)
       << ", \"cov\": " << json_number(c.cov) << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void TuningTable::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw ConfigError("cannot write tuning table: " + path);
  os << to_json();
}

TuningTable TuningTable::from_json(std::string_view text) {
  JsonValue doc;
  std::string err;
  if (!json_parse(text, doc, &err))
    throw ConfigError("tuning table parse error: " + err);
  if (!doc.is_object()) throw ConfigError("tuning table: not a JSON object");
  const std::string schema = doc.string_or("schema", "");
  if (schema != "hpcx-tuning/1")
    throw ConfigError("tuning table: unexpected schema \"" + schema + "\"");
  TuningTable t;
  t.machine = doc.string_or("machine", "");
  t.clock = doc.string_or("clock", "");
  t.created = doc.string_or("created", "");
  const JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array())
    throw ConfigError("tuning table: missing \"cells\" array");
  for (const JsonValue& v : cells->as_array()) {
    if (!v.is_object()) throw ConfigError("tuning table: cell not an object");
    Cell c;
    const std::string coll = v.string_or("collective", "");
    if (!parse(coll, c.coll))
      throw ConfigError("tuning table: unknown collective \"" + coll + "\"");
    c.np = static_cast<int>(v.number_or("np", 0));
    c.size_class = static_cast<int>(v.number_or("size_class", 0));
    c.alg = v.string_or("alg", "auto");
    c.t_s = v.number_or("t_s", 0.0);
    c.cov = v.number_or("cov", 0.0);
    if (c.np < 1) throw ConfigError("tuning table: cell with np < 1");
    t.add(c);
  }
  return t;
}

TuningTable TuningTable::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ConfigError("cannot read tuning table: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return from_json(buf.str());
}

hpcx::Table TuningTable::summary_table() const {
  hpcx::Table t("Tuning table (" + machine + ", " + clock + " clock)");
  t.set_header({"collective", "np", "size class", "algorithm", "time", "cov"});
  std::vector<const Cell*> sorted;
  sorted.reserve(cells_.size());
  for (const Cell& c : cells_) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(), [](const Cell* a, const Cell* b) {
    if (a->coll != b->coll) return a->coll < b->coll;
    if (a->np != b->np) return a->np < b->np;
    return a->size_class < b->size_class;
  });
  for (const Cell* c : sorted) {
    char cov[32];
    std::snprintf(cov, sizeof cov, "%.3f", c->cov);
    t.add_row({to_string(c->coll), std::to_string(c->np),
               trace::size_class_label(static_cast<std::size_t>(c->size_class)),
               c->alg, format_time(c->t_s), cov});
  }
  return t;
}

namespace {
std::mutex g_default_mutex;
std::shared_ptr<const TuningTable> g_default_table;
}  // namespace

void set_default_table(std::shared_ptr<const TuningTable> table) {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  g_default_table = std::move(table);
}

std::shared_ptr<const TuningTable> default_table() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  return g_default_table;
}

TuningDiff diff_tables(const TuningTable& baseline,
                       const TuningTable& candidate, double rel_threshold,
                       double cov_multiple) {
  TuningDiff diff;
  auto key_eq = [](const Cell& a, const Cell& b) {
    return a.coll == b.coll && a.np == b.np && a.size_class == b.size_class;
  };
  for (const Cell& b : baseline.cells()) {
    const Cell* c = nullptr;
    for (const Cell& cc : candidate.cells())
      if (key_eq(b, cc)) {
        c = &cc;
        break;
      }
    if (c == nullptr) {
      ++diff.only_baseline;
      continue;
    }
    ++diff.compared;
    DiffEntry e;
    e.baseline = b;
    e.candidate = *c;
    e.alg_changed = b.alg != c->alg;
    e.rel_delta = b.t_s > 0.0 ? (c->t_s - b.t_s) / b.t_s : 0.0;
    const double tol = std::max(rel_threshold, cov_multiple * b.cov);
    e.regressed = e.rel_delta > tol;
    if (e.alg_changed || e.regressed) diff.entries.push_back(e);
  }
  for (const Cell& c : candidate.cells()) {
    bool found = false;
    for (const Cell& b : baseline.cells())
      if (key_eq(b, c)) {
        found = true;
        break;
      }
    if (!found) ++diff.only_candidate;
  }
  return diff;
}

}  // namespace hpcx::xmpi::tuner
