#include "xmpi/proc_comm.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <time.h>
#include <unistd.h>

#include "core/error.hpp"
#include "obs/registry.hpp"
#include "xmpi/proc_shm.hpp"

namespace hpcx::xmpi {

namespace {

using procshm::Segment;

// Park cadence shared with the thread transport: ticked sleeps make
// every blocked wait self-healing — a poisoned world is noticed within
// one tick even though processes share no condition variables.
constexpr auto kParkTick = std::chrono::milliseconds(1);

/// 16-byte frame prefix streamed through the ring ahead of the payload.
/// Both sides run in the same image on the same host, so the in-memory
/// representation is the wire format.
struct WireHeader {
  std::int32_t tag = 0;
  std::uint8_t dtype = 0;
  std::uint8_t phantom = 0;
  std::uint8_t pad0 = 0;
  std::uint8_t pad1 = 0;
  std::uint64_t count = 0;
};
static_assert(sizeof(WireHeader) == 16, "wire header is 16 bytes");

std::size_t payload_bytes_of(const WireHeader& wh) {
  return wh.phantom != 0
             ? 0
             : static_cast<std::size_t>(wh.count) *
                   dtype_size(static_cast<DType>(wh.dtype));
}

[[noreturn]] void throw_peer_failed(const procshm::Header& h) {
  throw CommError("peer rank " + std::to_string(h.failed_rank.load()) +
                  " failed");
}

/// Same diagnostics as the thread transport: name the offending frame,
/// leave it queued so a corrected receive can still match it.
[[noreturn]] void throw_mismatch(const WireHeader& wh, int src,
                                 const MBuf& buf) {
  if (wh.count != buf.count || static_cast<DType>(wh.dtype) != buf.dtype)
    throw CommError(
        "recv size/type mismatch from rank " + std::to_string(src) + " tag " +
        std::to_string(wh.tag) + ": expected " + std::to_string(buf.count) +
        " x " + std::string(to_string(buf.dtype)) + ", got " +
        std::to_string(wh.count) + " x " +
        std::string(to_string(static_cast<DType>(wh.dtype))) +
        " (message left queued)");
  throw CommError("phantom/real payload mismatch from rank " +
                  std::to_string(src) + " tag " + std::to_string(wh.tag) +
                  " (message left queued)");
}

bool matches_shape(const WireHeader& wh, const MBuf& buf) {
  return wh.count == buf.count && static_cast<DType>(wh.dtype) == buf.dtype &&
         (buf.count == 0 || (wh.phantom != 0) == buf.phantom());
}

/// Producer/consumer view over one SPSC ring. Cursors are free-running
/// byte counts; capacity is a power of two, so positions wrap with a
/// mask and every transfer is at most two memcpys.
struct RingView {
  procshm::RingHeader* h = nullptr;
  unsigned char* data = nullptr;
  std::size_t cap = 0;

  std::size_t writable() const {
    return cap - (h->tail.load(std::memory_order_relaxed) -
                  h->head.load(std::memory_order_acquire));
  }
  void write(const void* src, std::size_t n) {
    const std::uint64_t t = h->tail.load(std::memory_order_relaxed);
    const std::size_t i = static_cast<std::size_t>(t) & (cap - 1);
    const std::size_t first = n < cap - i ? n : cap - i;
    std::memcpy(data + i, src, first);
    std::memcpy(data, static_cast<const unsigned char*>(src) + first,
                n - first);
    h->tail.store(t + n, std::memory_order_release);
  }

  std::size_t readable() const {
    return h->tail.load(std::memory_order_acquire) -
           h->head.load(std::memory_order_relaxed);
  }
  void read(void* dst, std::size_t n) {
    const std::uint64_t hd = h->head.load(std::memory_order_relaxed);
    const std::size_t i = static_cast<std::size_t>(hd) & (cap - 1);
    const std::size_t first = n < cap - i ? n : cap - i;
    std::memcpy(dst, data + i, first);
    std::memcpy(static_cast<unsigned char*>(dst) + first, data, n - first);
    h->head.store(hd + n, std::memory_order_release);
  }
};

/// Completion flag shared between isend() and wait() within one rank
/// (one process is single-threaded, so a plain bool suffices).
struct SendState {
  bool done = false;
};

/// An outbound message staged (eager) or parked (rendezvous) until the
/// progress engine has streamed it fully into the destination ring.
struct PendingSend {
  int dst = 0;
  unsigned char header[sizeof(WireHeader)];
  const unsigned char* payload = nullptr;  ///< copy.get() or user buffer
  std::unique_ptr<unsigned char[]> copy;   ///< eager staging block
  std::size_t payload_bytes = 0;
  std::size_t written = 0;  ///< over header + payload
  std::shared_ptr<SendState> state;  ///< null for fire-and-forget eager
};

/// A fully assembled frame waiting for a matching receive.
struct Deferred {
  WireHeader wh;
  std::unique_ptr<unsigned char[]> block;
};

/// Per-source reassembly state: frames can arrive split across many
/// pump calls (the ring is smaller than the message, or the producer
/// paused mid-frame), so the consumer runs a byte state machine.
struct Incoming {
  std::size_t header_read = 0;
  unsigned char hbuf[sizeof(WireHeader)];
  WireHeader wh;
  bool direct = false;  ///< payload streams into the posted buffer
  std::unique_ptr<unsigned char[]> block;
  std::size_t payload_bytes = 0;
  std::size_t payload_read = 0;

  void reset() {
    header_read = 0;
    direct = false;
    block.reset();
    payload_bytes = 0;
    payload_read = 0;
  }
};

/// The receive a pump call is trying to satisfy in place.
struct Posting {
  int tag = 0;
  MBuf buf;
  bool completed = false;
};

class ProcComm final : public Comm {
 public:
  ProcComm(const Segment& seg, int rank, const TransportTuning& tuning)
      : seg_(seg),
        hdr_(&seg.header()),
        rank_(rank),
        nranks_(seg.header().nranks) {
    set_peer_limit(nranks_);
    eager_max_ = tuning.eager_max_bytes;
    const unsigned hw = std::thread::hardware_concurrency();
    const bool oversubscribed =
        hw != 0 && static_cast<unsigned>(nranks_) > hw;
    spin_iters_ = tuning.spin_iters > 0 ? tuning.spin_iters
                                        : (oversubscribed ? 512 : 16384);
    pending_.resize(static_cast<std::size_t>(nranks_));
    deferred_.resize(static_cast<std::size_t>(nranks_));
    incoming_.resize(static_cast<std::size_t>(nranks_));
    out_.resize(static_cast<std::size_t>(nranks_));
    in_.resize(static_cast<std::size_t>(nranks_));
    for (int peer = 0; peer < nranks_; ++peer) {
      out_[peer] = RingView{&seg.ring_header(rank_, peer),
                            seg.ring_data(rank_, peer),
                            static_cast<std::size_t>(hdr_->ring_bytes)};
      in_[peer] = RingView{&seg.ring_header(peer, rank_),
                           seg.ring_data(peer, rank_),
                           static_cast<std::size_t>(hdr_->ring_bytes)};
    }
  }

  int rank() const override { return rank_; }
  int size() const override { return nranks_; }

  double now() override {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    const std::int64_t ns =
        static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
    return static_cast<double>(ns - hdr_->epoch_ns) * 1e-9;
  }

  /// Flush every staged send into the rings before the rank exits, so
  /// receivers still draining can complete after this process is gone
  /// (frames live in the segment, not in this address space).
  void finalize() {
    int polls = 0;
    while (pending_count_ > 0) {
      check_abort();
      if (progress()) {
        polls = 0;
        continue;
      }
      if (++polls >= spin_iters_) {
        std::this_thread::sleep_for(kParkTick);
        polls = 0;
      }
    }
  }

  /// Fold this rank's counters into its segment slot for the parent.
  void fold_stats() {
    procshm::RankSlot& s = seg_.slot(rank_);
    s.sends.fetch_add(sends_, std::memory_order_relaxed);
    s.bytes_sent.fetch_add(bytes_sent_, std::memory_order_relaxed);
    s.eager_sends.fetch_add(eager_sends_, std::memory_order_relaxed);
    s.rendezvous_sends.fetch_add(rendezvous_sends_,
                                 std::memory_order_relaxed);
  }

 protected:
  void send_impl(int dst, int tag, CBuf buf) override {
    // A self-send must always be eager: the one process cannot both
    // park in send and run the matching receive.
    const bool eager = dst == rank_ || buf.bytes() <= eager_max_;
    if (eager) {
      enqueue(dst, tag, buf, /*stage_copy=*/true, nullptr);
      progress();
      return;
    }
    auto st = std::make_shared<SendState>();
    enqueue(dst, tag, buf, /*stage_copy=*/false, st);
    wait_done(*st);
  }

  SendRequest isend_impl(int dst, int tag, CBuf buf) override {
    const bool eager = dst == rank_ || buf.bytes() <= eager_max_;
    if (eager) {
      // The staging copy makes the user buffer reusable immediately:
      // the request completes at once and wait() is a no-op.
      enqueue(dst, tag, buf, /*stage_copy=*/true, nullptr);
      progress();
      return SendRequest{};
    }
    auto st = std::make_shared<SendState>();
    enqueue(dst, tag, buf, /*stage_copy=*/false, st);
    progress();
    if (st->done) return SendRequest{};
    return make_request(st);
  }

  void wait_impl(SendRequest& req) override {
    auto st = std::static_pointer_cast<SendState>(request_state(req));
    wait_done(*st);
  }

  void recv_impl(int src, int tag, MBuf buf) override {
    Posting post{tag, buf, false};
    int polls = 0;
    for (;;) {
      check_abort();
      // 1. Arrival order is deferred-list order: the oldest queued
      //    frame with this tag matches first (validate before dequeue —
      //    a mismatch throws and leaves it queued).
      auto& dq = deferred_[static_cast<std::size_t>(src)];
      for (auto it = dq.begin(); it != dq.end(); ++it) {
        if (it->wh.tag != tag) continue;
        if (!matches_shape(it->wh, buf)) throw_mismatch(it->wh, src, buf);
        if (!buf.phantom() && it->block != nullptr)
          std::memcpy(buf.data, it->block.get(), payload_bytes_of(it->wh));
        dq.erase(it);
        return;
      }
      // 2. Pump the source ring with this receive posted: a matching
      //    frame at the ring head streams straight into `buf`.
      bool prog = pump(src, &post);
      if (post.completed) return;
      // 3. Keep our own outbound traffic moving and drain every other
      //    ring into deferred lists — senders blocked on a full ring
      //    toward us must never deadlock against this receive.
      prog |= push_pending();
      for (int s = 0; s < nranks_; ++s)
        if (s != src) prog |= pump(s, nullptr);
      if (prog) {
        polls = 0;
        continue;
      }
      if (++polls >= spin_iters_) {
        std::this_thread::sleep_for(kParkTick);
        polls = 0;
      }
    }
  }

  void compute_impl(double seconds) override {
    // Mirror ThreadComm: charge with a sleep so relative timings stay
    // meaningful on the real clock.
    if (seconds > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

 private:
  void check_abort() const {
    if (hdr_->aborted.load(std::memory_order_acquire))
      throw_peer_failed(*hdr_);
  }

  void enqueue(int dst, int tag, CBuf buf, bool stage_copy,
               std::shared_ptr<SendState> st) {
    PendingSend p;
    p.dst = dst;
    WireHeader wh;
    wh.tag = tag;
    wh.dtype = static_cast<std::uint8_t>(buf.dtype);
    wh.phantom = buf.phantom() ? 1 : 0;
    wh.count = buf.count;
    std::memcpy(p.header, &wh, sizeof(wh));
    p.payload_bytes = buf.phantom() ? 0 : buf.bytes();
    if (stage_copy) {
      if (p.payload_bytes > 0) {
        p.copy = std::make_unique<unsigned char[]>(p.payload_bytes);
        std::memcpy(p.copy.get(), buf.data, p.payload_bytes);
        p.payload = p.copy.get();
      }
      ++eager_sends_;
    } else {
      p.payload = static_cast<const unsigned char*>(buf.data);
      ++rendezvous_sends_;
    }
    p.state = std::move(st);
    ++sends_;
    bytes_sent_ += p.payload_bytes;
    pending_[static_cast<std::size_t>(dst)].push_back(std::move(p));
    ++pending_count_;
  }

  /// Stream queue heads into their rings as far as space allows.
  /// Per-destination queues keep frames of one (src,dst) pair strictly
  /// ordered and never interleaved.
  bool push_pending() {
    bool prog = false;
    for (int dst = 0; dst < nranks_; ++dst) {
      auto& q = pending_[static_cast<std::size_t>(dst)];
      while (!q.empty()) {
        PendingSend& p = q.front();
        RingView& ring = out_[static_cast<std::size_t>(dst)];
        const std::size_t total = sizeof(WireHeader) + p.payload_bytes;
        std::size_t space = ring.writable();
        while (space > 0 && p.written < total) {
          std::size_t n;
          if (p.written < sizeof(WireHeader)) {
            n = sizeof(WireHeader) - p.written;
            if (n > space) n = space;
            ring.write(p.header + p.written, n);
          } else {
            const std::size_t off = p.written - sizeof(WireHeader);
            n = p.payload_bytes - off;
            if (n > space) n = space;
            ring.write(p.payload + off, n);
          }
          p.written += n;
          space -= n;
          prog = true;
        }
        if (p.written < total) break;  // ring full; try again later
        if (p.state != nullptr) p.state->done = true;
        q.pop_front();
        --pending_count_;
      }
    }
    return prog;
  }

  /// Drain the ring from `src`. With a posting, a tag-matching frame at
  /// the head streams directly into the posted buffer; everything else
  /// is assembled into the deferred list. Returns true on any progress;
  /// stops early when a frame with the posted tag completed either way,
  /// so the caller re-runs the FIFO deferred scan.
  bool pump(int src, Posting* post) {
    RingView& ring = in_[static_cast<std::size_t>(src)];
    Incoming& inc = incoming_[static_cast<std::size_t>(src)];
    bool prog = false;
    for (;;) {
      if (inc.header_read < sizeof(WireHeader)) {
        const std::size_t avail = ring.readable();
        if (avail == 0) return prog;
        std::size_t n = sizeof(WireHeader) - inc.header_read;
        if (n > avail) n = avail;
        ring.read(inc.hbuf + inc.header_read, n);
        inc.header_read += n;
        prog = true;
        if (inc.header_read < sizeof(WireHeader)) continue;
        std::memcpy(&inc.wh, inc.hbuf, sizeof(WireHeader));
        inc.payload_bytes = payload_bytes_of(inc.wh);
        inc.payload_read = 0;
        if (post != nullptr && !post->completed && inc.wh.tag == post->tag) {
          // The deferred scan already ran, so this is the oldest frame
          // with the posted tag: validate it now. On mismatch, route it
          // to the deferred list first — later pumps finish assembling
          // it — then throw with the message left queued.
          if (!matches_shape(inc.wh, post->buf)) {
            inc.direct = false;
            if (inc.payload_bytes > 0)
              inc.block =
                  std::make_unique<unsigned char[]>(inc.payload_bytes);
            throw_mismatch(inc.wh, src, post->buf);
          }
          inc.direct = true;
        } else {
          inc.direct = false;
          if (inc.payload_bytes > 0)
            inc.block = std::make_unique<unsigned char[]>(inc.payload_bytes);
        }
      }
      if (inc.payload_read < inc.payload_bytes) {
        const std::size_t avail = ring.readable();
        std::size_t n = inc.payload_bytes - inc.payload_read;
        if (n > avail) n = avail;
        if (n == 0) return prog;
        unsigned char* dst =
            inc.direct
                ? static_cast<unsigned char*>(post->buf.data) +
                      inc.payload_read
                : inc.block.get() + inc.payload_read;
        ring.read(dst, n);
        inc.payload_read += n;
        prog = true;
        if (inc.payload_read < inc.payload_bytes) continue;
      }
      // Frame complete.
      const bool was_direct = inc.direct;
      const std::int32_t tag = inc.wh.tag;
      if (was_direct) {
        post->completed = true;
        inc.reset();
        return true;
      }
      deferred_[static_cast<std::size_t>(src)].push_back(
          Deferred{inc.wh, std::move(inc.block)});
      inc.reset();
      // A same-tag frame just became visible in the deferred list; the
      // caller's FIFO scan must pick it up before any newer frame could
      // match the posting directly.
      if (post != nullptr && !post->completed && tag == post->tag)
        return true;
    }
  }

  bool progress() {
    bool prog = push_pending();
    for (int s = 0; s < nranks_; ++s) prog |= pump(s, nullptr);
    return prog;
  }

  void wait_done(SendState& st) {
    int polls = 0;
    while (!st.done) {
      check_abort();
      if (progress()) {
        polls = 0;
        continue;
      }
      if (st.done) return;
      if (++polls >= spin_iters_) {
        std::this_thread::sleep_for(kParkTick);
        polls = 0;
      }
    }
  }

  const Segment& seg_;
  procshm::Header* hdr_;
  int rank_;
  int nranks_;
  std::size_t eager_max_ = 0;
  int spin_iters_ = 0;

  std::vector<RingView> out_;  ///< rank_ -> peer, indexed by peer
  std::vector<RingView> in_;   ///< peer -> rank_, indexed by peer
  std::vector<std::deque<PendingSend>> pending_;  ///< per destination
  std::size_t pending_count_ = 0;
  std::vector<std::deque<Deferred>> deferred_;  ///< per source
  std::vector<Incoming> incoming_;              ///< per source

  // Plain counters (single-threaded rank); folded into the segment
  // slot once on exit.
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rendezvous_sends_ = 0;
};

/// Record an exception into the rank's slot (fixed-size, allocation
/// free: the process is about to _exit).
void record_error(procshm::RankSlot& slot, const char* what) {
  std::size_t n = std::strlen(what);
  if (n > sizeof(slot.error) - 1) n = sizeof(slot.error) - 1;
  std::memcpy(slot.error, what, n);
  slot.error[n] = '\0';
  slot.has_error.store(1, std::memory_order_release);
}

/// Body shared by forked ranks and exec()ed workers. Returns the
/// process exit code; on exception the world is poisoned before the
/// error is recorded so blocked peers stop within one park tick.
int rank_body(const Segment& seg, int rank, const ProcRankFn& fn,
              const TransportTuning& tuning) {
  procshm::RankSlot& slot = seg.slot(rank);
  slot.pid.store(static_cast<std::int32_t>(getpid()),
                 std::memory_order_relaxed);
  try {
    ProcComm comm(seg, rank, tuning);
    fn(comm, std::span<unsigned char>(seg.user(), seg.user_bytes()));
    comm.finalize();
    comm.fold_stats();
    return 0;
  } catch (const std::exception& e) {
    procshm::poison(seg.header(), rank);
    record_error(slot, e.what());
    return 1;
  } catch (...) {
    procshm::poison(seg.header(), rank);
    record_error(slot, "unknown exception");
    return 1;
  }
}

void fold_world_obs(const ProcRunResult& res) {
  std::uint64_t sends = 0, bytes = 0, eager = 0, rdv = 0;
  for (const ProcRankStats& s : res.rank_stats) {
    sends += s.sends;
    bytes += s.bytes_sent;
    eager += s.eager_sends;
    rdv += s.rendezvous_sends;
  }
  obs::Registry& reg = obs::Registry::global();
  reg.add(reg.counter("hpcx_procs_runs_total",
                      "multi-process transport worlds completed"),
          1);
  reg.add(reg.counter("hpcx_procs_sends_total",
                      "messages sent over the cross-process rings"),
          sends);
  reg.add(reg.counter("hpcx_procs_bytes_sent_total",
                      "payload bytes sent over the cross-process rings"),
          bytes);
  reg.add(reg.counter("hpcx_procs_eager_sends_total",
                      "sends that took the eager (staged-copy) path"),
          eager);
  reg.add(reg.counter("hpcx_procs_rendezvous_sends_total",
                      "sends that streamed straight from the user buffer"),
          rdv);
}

/// Compose the error run_on_procs throws from the first failure.
std::string describe_failure(const ProcRunResult& res, bool timed_out) {
  const int r = res.first_failed_rank();
  const ProcRankOutcome& out = res.outcomes[static_cast<std::size_t>(r)];
  std::string msg = "rank " + std::to_string(r);
  if (!out.error.empty()) {
    msg += " failed: " + out.error;
  } else if (out.term_signal != 0) {
    msg += " killed by signal " + std::to_string(out.term_signal);
  } else {
    msg += " exited with code " + std::to_string(out.exit_code);
  }
  if (timed_out) msg += " (world timed out; stragglers were killed)";
  return msg;
}

}  // namespace

bool ProcRunResult::failed() const { return first_failed_rank() >= 0; }

int ProcRunResult::first_failed_rank() const {
  for (std::size_t r = 0; r < outcomes.size(); ++r)
    if (!outcomes[r].ok()) return static_cast<int>(r);
  return -1;
}

ProcRunResult run_on_procs(int nranks, const ProcRankFn& fn,
                           ProcRunOptions options) {
  HPCX_REQUIRE(nranks >= 1, "run_on_procs needs nranks >= 1");
  Segment seg = Segment::create_anonymous(nranks, options.ring_bytes,
                                          options.user_bytes);
  const auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = fork();
    HPCX_REQUIRE(pid >= 0, std::string("fork failed: ") +
                               std::strerror(errno));
    if (pid == 0) {
      // Child: run the rank and leave without flushing inherited stdio
      // buffers or running parent-owned destructors — results travel
      // through the segment, not through this process's teardown.
      _exit(rank_body(seg, r, fn, options.transport));
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }
  procshm::SuperviseResult sup =
      procshm::supervise_children(seg.header(), pids, options.timeout_s);

  ProcRunResult res;
  res.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  res.rank_stats.resize(static_cast<std::size_t>(nranks));
  res.outcomes.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const procshm::RankSlot& slot = seg.slot(r);
    ProcRankStats& st = res.rank_stats[static_cast<std::size_t>(r)];
    st.sends = slot.sends.load(std::memory_order_relaxed);
    st.bytes_sent = slot.bytes_sent.load(std::memory_order_relaxed);
    st.eager_sends = slot.eager_sends.load(std::memory_order_relaxed);
    st.rendezvous_sends =
        slot.rendezvous_sends.load(std::memory_order_relaxed);
    ProcRankOutcome& out = res.outcomes[static_cast<std::size_t>(r)];
    out.exit_code = sup.outcomes[static_cast<std::size_t>(r)].exit_code;
    out.term_signal = sup.outcomes[static_cast<std::size_t>(r)].term_signal;
    if (slot.has_error.load(std::memory_order_acquire) != 0)
      out.error = slot.error;
  }
  res.user.assign(seg.user(), seg.user() + seg.user_bytes());
  fold_world_obs(res);
  if (!options.collect_outcomes && res.failed())
    throw CommError(describe_failure(res, sup.timed_out));
  return res;
}

ProcRunResult run_on_procs(int nranks, const RankFn& fn,
                           ProcRunOptions options) {
  return run_on_procs(
      nranks, [&fn](Comm& c, std::span<unsigned char>) { fn(c); },
      std::move(options));
}

bool launched_by_hpcx() { return std::getenv("HPCX_PROC_SHM") != nullptr; }

int run_launched(const RankFn& fn, TransportTuning tuning) {
  const char* name = std::getenv("HPCX_PROC_SHM");
  const char* rank_s = std::getenv("HPCX_PROC_RANK");
  HPCX_REQUIRE(name != nullptr && rank_s != nullptr,
               "run_launched: HPCX_PROC_SHM / HPCX_PROC_RANK not set "
               "(start this program under hpcx_launch)");
  Segment seg = Segment::attach(name);
  char* end = nullptr;
  const long rank = std::strtol(rank_s, &end, 10);
  HPCX_REQUIRE(end != rank_s && *end == '\0' && rank >= 0 &&
                   rank < seg.header().nranks,
               std::string("run_launched: bad HPCX_PROC_RANK '") + rank_s +
                   "'");
  const int code = rank_body(
      seg, static_cast<int>(rank),
      [&fn](Comm& c, std::span<unsigned char>) { fn(c); }, tuning);
  if (code != 0) {
    const procshm::RankSlot& slot = seg.slot(static_cast<int>(rank));
    std::fprintf(stderr, "hpcx rank %ld failed: %s\n", rank,
                 slot.has_error.load() != 0 ? slot.error : "unknown error");
  }
  return code;
}

}  // namespace hpcx::xmpi
