#include "xmpi/reduce_ops.hpp"

#include <algorithm>
#include <cstdint>

#include "core/error.hpp"

namespace hpcx::xmpi {

namespace {

template <typename T>
void apply_typed(ROp op, T* inout, const T* in, std::size_t count) {
  switch (op) {
    case ROp::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case ROp::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
    case ROp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      return;
    case ROp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      return;
  }
  HPCX_ASSERT_MSG(false, "unknown reduction op");
}

}  // namespace

void apply_rop(ROp op, DType dtype, void* inout, const void* in,
               std::size_t count) {
  HPCX_ASSERT(inout != nullptr && in != nullptr);
  switch (dtype) {
    case DType::kF64:
      apply_typed(op, static_cast<double*>(inout),
                  static_cast<const double*>(in), count);
      return;
    case DType::kU64:
      apply_typed(op, static_cast<std::uint64_t*>(inout),
                  static_cast<const std::uint64_t*>(in), count);
      return;
    case DType::kI32:
      apply_typed(op, static_cast<std::int32_t*>(inout),
                  static_cast<const std::int32_t*>(in), count);
      return;
    case DType::kByte:
      apply_typed(op, static_cast<unsigned char*>(inout),
                  static_cast<const unsigned char*>(in), count);
      return;
    case DType::kC128:
      throw CommError("reductions over complex are not defined");
  }
  HPCX_ASSERT_MSG(false, "unknown dtype");
}

const char* to_string(ROp op) {
  switch (op) {
    case ROp::kSum:
      return "sum";
    case ROp::kProd:
      return "prod";
    case ROp::kMax:
      return "max";
    case ROp::kMin:
      return "min";
  }
  return "?";
}

const char* to_string(DType t) {
  switch (t) {
    case DType::kByte:
      return "byte";
    case DType::kF64:
      return "f64";
    case DType::kU64:
      return "u64";
    case DType::kI32:
      return "i32";
    case DType::kC128:
      return "c128";
  }
  return "?";
}

}  // namespace hpcx::xmpi
