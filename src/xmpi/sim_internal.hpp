// Internals shared by the serial (sim_comm.cpp) and parallel
// (par_sim_comm.cpp) simulated-machine backends: pooled message
// envelopes, per-rank mailbox state, receive-side validation, and the
// result/recorder folding that both engines perform identically after
// the last event. Nothing here is public API — tools and benches see
// only xmpi/sim_comm.hpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "des/sync.hpp"
#include "netsim/network.hpp"
#include "trace/trace.hpp"
#include "xmpi/comm.hpp"
#include "xmpi/sim_comm.hpp"

namespace hpcx::xmpi::detail {

// Message envelopes are pooled: a send takes a node from a pool, the
// matching recv returns it. The payload vector keeps its capacity
// across reuses, so steady-state traffic performs no heap allocation at
// all. Envelopes are threaded through intrusive `next` links — the same
// field serves as freelist link and inbox FIFO link. Under the parallel
// engine each logical process owns a pool, and an envelope is always
// acquired from (and released to) the *destination* rank's pool, so no
// pool is ever touched by two threads.
struct Envelope {
  int src = -1;
  int src_node = -1;
  int tag = 0;
  std::size_t count = 0;
  DType dtype = DType::kByte;
  bool phantom = false;
  std::vector<unsigned char> payload;
  Envelope* next = nullptr;
};

class EnvelopePool {
 public:
  Envelope* acquire() {
    ++acquires_;
    if (Envelope* env = free_head_) {
      free_head_ = env->next;
      env->next = nullptr;
      --free_count_;
      return env;
    }
    owned_.push_back(std::make_unique<Envelope>());
    return owned_.back().get();
  }

  void release(Envelope* env) {
    env->payload.clear();  // keeps capacity for the next reuse
    env->next = free_head_;
    free_head_ = env;
    ++free_count_;
  }

  // Occupancy counters for the obs registry (single-threaded per pool,
  // like the pool itself).
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t allocs() const { return owned_.size(); }
  std::uint64_t free_count() const { return free_count_; }

 private:
  Envelope* free_head_ = nullptr;
  std::uint64_t acquires_ = 0;
  std::uint64_t free_count_ = 0;
  std::vector<std::unique_ptr<Envelope>> owned_;  // for destruction only
};

struct RankState {
  // Intrusive FIFO of pending envelopes (append at tail, match scans
  // from head, the order a deque gave).
  Envelope* inbox_head = nullptr;
  Envelope* inbox_tail = nullptr;
  std::unique_ptr<des::WaitQueue> wq;
  double finish_time = 0.0;
};

// Same validation contract as the thread backend: check *before* the
// envelope leaves the inbox, so a mismatch keeps the message intact and
// the error names exactly what is queued.
inline void validate_match(const Envelope& env, const MBuf& buf) {
  if (env.count != buf.count || env.dtype != buf.dtype)
    throw CommError(
        "recv size/type mismatch from rank " + std::to_string(env.src) +
        " tag " + std::to_string(env.tag) + ": expected " +
        std::to_string(buf.count) + " x " + std::string(to_string(buf.dtype)) +
        ", got " + std::to_string(env.count) + " x " +
        std::string(to_string(env.dtype)) + " (message left queued)");
  if (buf.count > 0 && env.phantom != buf.phantom())
    throw CommError("phantom/real payload mismatch from rank " +
                    std::to_string(env.src) + " tag " +
                    std::to_string(env.tag) + " (message left queued)");
}

/// Fold the per-edge totals and the time-series samples into
/// LinkTracks, skipping edges nothing crossed.
inline void fold_link_tracks(trace::Recorder& recorder,
                             const net::Network& network) {
  std::vector<trace::LinkTrack> tracks;
  std::vector<int> track_of(network.graph().num_edges(), -1);
  for (std::size_t e = 0; e < network.graph().num_edges(); ++e) {
    const auto& stats = network.edge_stats(static_cast<topo::EdgeId>(e));
    if (stats.messages == 0) continue;
    const topo::Edge& edge = network.graph().edge(static_cast<topo::EdgeId>(e));
    track_of[e] = static_cast<int>(tracks.size());
    tracks.push_back(trace::LinkTrack{
        network.graph().label(edge.from) + "->" +
            network.graph().label(edge.to),
        stats.messages, stats.bytes, stats.busy_s, stats.queued_s,
        {}});
  }
  for (const auto& s : network.link_samples()) {
    const int t = track_of[static_cast<std::size_t>(s.edge)];
    if (t >= 0)
      tracks[static_cast<std::size_t>(t)].points.push_back(
          trace::LinkPoint{s.t, s.busy_s, s.backlog_s});
  }
  recorder.set_link_tracks(std::move(tracks));
}

/// Build the run result both engines return: makespan over per-rank
/// finish times plus the network's traffic totals and hottest links.
inline SimRunResult build_sim_result(const net::Network& network,
                                     const std::vector<RankState>& ranks) {
  SimRunResult result;
  for (const auto& rs : ranks)
    result.makespan_s = std::max(result.makespan_s, rs.finish_time);
  result.internode_messages = network.internode_messages();
  result.intranode_messages = network.intranode_messages();
  result.internode_bytes = network.internode_bytes();
  for (const auto& [edge_id, stats] : network.hottest_edges(16)) {
    if (stats.messages == 0) break;
    const topo::Edge& e = network.graph().edge(edge_id);
    result.hottest_links.push_back(LinkUsage{
        network.graph().label(e.from), network.graph().label(e.to),
        stats.messages, stats.bytes, stats.busy_s, stats.queued_s});
  }
  return result;
}

/// Parallel (multi-LP, conservative-lookahead) engine. Returns nullopt
/// when the machine/topology cannot be meaningfully partitioned (fewer
/// than two logical processes, or no positive finite lookahead) — the
/// caller then falls back to the serial engine. Defined in
/// par_sim_comm.cpp.
std::optional<SimRunResult> run_parallel(const mach::MachineConfig& machine,
                                         int nranks, const RankFn& fn,
                                         const SimRunOptions& options);

}  // namespace hpcx::xmpi::detail
