// Real-execution backend: every rank is a host thread, messages really
// move through shared memory, time is wall-clock. This is the substrate
// on which all kernels and collectives are validated for correctness and
// on which the host micro-benchmarks (bench/bench_collectives) run.
#pragma once

#include <memory>

#include "xmpi/comm.hpp"

namespace hpcx::xmpi {

struct ThreadRunResult {
  double elapsed_s = 0.0;  ///< wall-clock duration of the parallel region
};

/// Run `fn` on `nranks` threads, each with its own Comm. Blocks until all
/// ranks return. The first exception thrown by any rank is re-thrown
/// after all threads have been joined.
ThreadRunResult run_on_threads(int nranks, const RankFn& fn);

}  // namespace hpcx::xmpi
