// Real-execution backend: every rank is a host thread, messages really
// move through shared memory, time is wall-clock. This is the substrate
// on which all kernels and collectives are validated for correctness and
// on which the host micro-benchmarks (bench/bench_collectives) run.
#pragma once

#include <memory>

#include "xmpi/comm.hpp"

namespace hpcx::trace {
class Recorder;
}  // namespace hpcx::trace

namespace hpcx::xmpi {

struct ThreadRunResult {
  double elapsed_s = 0.0;  ///< wall-clock duration of the parallel region
};

/// Knobs of the shared-memory transport (see DESIGN.md, "ThreadComm
/// transport"). The defaults are right for the host benchmarks; the CLI
/// surface exposes --eager-max for threshold sweeps.
struct TransportTuning {
  /// Largest message sent eagerly (staged through a pooled block).
  /// Larger messages use the rendezvous protocol: the send blocks until
  /// the receiver has copied straight out of the sender's buffer.
  std::size_t eager_max_bytes = 32 * 1024;
  /// Spin budget (iterations) before a waiting rank parks on its
  /// condition variable. 0 = auto: a small yield-based budget when the
  /// host is oversubscribed (ranks > hardware threads), a larger
  /// pause-based budget otherwise.
  int spin_iters = 0;
};

struct ThreadRunOptions {
  /// When set, rank r records into recorder->rank(r) (the recorder must
  /// have been built with at least `nranks` ranks). Timestamps are
  /// wall-clock seconds since the parallel region started.
  trace::Recorder* recorder = nullptr;
  TransportTuning transport;
};

/// Run `fn` on `nranks` threads, each with its own Comm. Blocks until all
/// ranks return. When a rank throws, the world is poisoned: every rank
/// blocked (or subsequently blocking) in the transport throws
/// CommError("peer rank N failed"), so the join always completes, and
/// the *original* exception is re-thrown to the caller.
ThreadRunResult run_on_threads(int nranks, const RankFn& fn,
                               ThreadRunOptions options = {});

}  // namespace hpcx::xmpi
