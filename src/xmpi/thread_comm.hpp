// Real-execution backend: every rank is a host thread, messages really
// move through shared memory, time is wall-clock. This is the substrate
// on which all kernels and collectives are validated for correctness and
// on which the host micro-benchmarks (bench/bench_collectives) run.
#pragma once

#include <memory>

#include "xmpi/comm.hpp"

namespace hpcx::trace {
class Recorder;
}  // namespace hpcx::trace

namespace hpcx::xmpi {

struct ThreadRunResult {
  double elapsed_s = 0.0;  ///< wall-clock duration of the parallel region
};

struct ThreadRunOptions {
  /// When set, rank r records into recorder->rank(r) (the recorder must
  /// have been built with at least `nranks` ranks). Timestamps are
  /// wall-clock seconds since the parallel region started.
  trace::Recorder* recorder = nullptr;
};

/// Run `fn` on `nranks` threads, each with its own Comm. Blocks until all
/// ranks return. The first exception thrown by any rank is re-thrown
/// after all threads have been joined.
ThreadRunResult run_on_threads(int nranks, const RankFn& fn,
                               ThreadRunOptions options = {});

}  // namespace hpcx::xmpi
