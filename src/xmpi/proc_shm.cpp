#include "xmpi/proc_shm.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <thread>
#include <time.h>
#include <unistd.h>

#include "core/error.hpp"

namespace hpcx::xmpi::procshm {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct Layout {
  std::size_t ring_bytes;
  std::size_t slots_offset;
  std::size_t rings_offset;
  std::size_t user_offset;
  std::size_t total;
};

Layout compute_layout(int nranks, std::size_t ring_bytes,
                      std::size_t user_bytes) {
  HPCX_REQUIRE(nranks >= 1, "proc world needs at least one rank");
  Layout l;
  l.ring_bytes = pow2_at_least(ring_bytes < 4096 ? 4096 : ring_bytes);
  l.slots_offset = align_up(sizeof(Header));
  l.rings_offset = l.slots_offset + sizeof(RankSlot) * nranks;
  const std::size_t per_ring = sizeof(RingHeader) + l.ring_bytes;
  l.user_offset = l.rings_offset +
                  per_ring * static_cast<std::size_t>(nranks) * nranks;
  l.total = align_up(l.user_offset + user_bytes);
  return l;
}

std::int64_t monotonic_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

void init_header(Header& h, int nranks, const Layout& l,
                 std::size_t user_bytes) {
  h.magic = kMagic;
  h.version = kVersion;
  h.nranks = nranks;
  h.ring_bytes = l.ring_bytes;
  h.user_bytes = user_bytes;
  h.slots_offset = l.slots_offset;
  h.rings_offset = l.rings_offset;
  h.user_offset = l.user_offset;
  h.epoch_ns = monotonic_ns();
  h.aborted.store(0);
  h.failed_rank.store(-1);
}

}  // namespace

Segment::Segment(Segment&& o) noexcept
    : base_(o.base_), map_bytes_(o.map_bytes_), name_(std::move(o.name_)) {
  o.base_ = nullptr;
  o.map_bytes_ = 0;
  o.name_.clear();
}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this != &o) {
    this->~Segment();
    new (this) Segment(std::move(o));
  }
  return *this;
}

Segment::~Segment() {
  if (base_ != nullptr) munmap(base_, map_bytes_);
  base_ = nullptr;
}

Segment Segment::create_anonymous(int nranks, std::size_t ring_bytes,
                                  std::size_t user_bytes) {
  const Layout l = compute_layout(nranks, ring_bytes, user_bytes);
  void* base = mmap(nullptr, l.total, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  HPCX_REQUIRE(base != MAP_FAILED,
               "mmap of " + std::to_string(l.total) +
                   "-byte proc segment failed: " + std::strerror(errno));
  Segment s;
  s.base_ = base;
  s.map_bytes_ = l.total;
  init_header(s.header(), nranks, l, user_bytes);
  return s;
}

Segment Segment::create_named(int nranks, std::size_t ring_bytes,
                              std::size_t user_bytes) {
  const Layout l = compute_layout(nranks, ring_bytes, user_bytes);
  static std::atomic<int> counter{0};
  const std::string name = "/hpcx-" + std::to_string(getpid()) + "-" +
                           std::to_string(counter.fetch_add(1));
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  HPCX_REQUIRE(fd >= 0,
               "shm_open(" + name + ") failed: " + std::strerror(errno));
  if (ftruncate(fd, static_cast<off_t>(l.total)) != 0) {
    const int err = errno;
    close(fd);
    shm_unlink(name.c_str());
    throw Error("ftruncate of proc segment " + name +
                " failed: " + std::strerror(err));
  }
  void* base =
      mmap(nullptr, l.total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  const int map_err = errno;
  close(fd);
  if (base == MAP_FAILED) {
    shm_unlink(name.c_str());
    throw Error("mmap of proc segment " + name +
                " failed: " + std::strerror(map_err));
  }
  Segment s;
  s.base_ = base;
  s.map_bytes_ = l.total;
  s.name_ = name;
  init_header(s.header(), nranks, l, user_bytes);
  return s;
}

Segment Segment::attach(const std::string& name) {
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  HPCX_REQUIRE(fd >= 0,
               "shm_open(" + name + ") failed: " + std::strerror(errno));
  // Map the header first to learn the full size.
  void* probe = mmap(nullptr, sizeof(Header), PROT_READ, MAP_SHARED, fd, 0);
  if (probe == MAP_FAILED) {
    close(fd);
    throw Error("mmap of proc segment header " + name + " failed");
  }
  const Header& h = *reinterpret_cast<const Header*>(probe);
  HPCX_REQUIRE(h.magic == kMagic && h.version == kVersion,
               "proc segment " + name + " has wrong magic/version");
  const Layout l = compute_layout(
      h.nranks, h.ring_bytes, h.user_bytes);
  munmap(probe, sizeof(Header));
  void* base =
      mmap(nullptr, l.total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  const int map_err = errno;
  close(fd);
  HPCX_REQUIRE(base != MAP_FAILED, "mmap of proc segment " + name +
                                       " failed: " + std::strerror(map_err));
  Segment s;
  s.base_ = base;
  s.map_bytes_ = l.total;
  s.name_ = name;
  return s;
}

void Segment::unlink() {
  if (!name_.empty()) shm_unlink(name_.c_str());
}

RankSlot& Segment::slot(int rank) const {
  auto* bytes = static_cast<unsigned char*>(base_);
  return reinterpret_cast<RankSlot*>(bytes + header().slots_offset)[rank];
}

RingHeader& Segment::ring_header(int src, int dst) const {
  const Header& h = header();
  auto* bytes = static_cast<unsigned char*>(base_);
  const std::size_t per_ring = sizeof(RingHeader) + h.ring_bytes;
  const std::size_t idx =
      static_cast<std::size_t>(src) * h.nranks + static_cast<std::size_t>(dst);
  return *reinterpret_cast<RingHeader*>(bytes + h.rings_offset +
                                        idx * per_ring);
}

unsigned char* Segment::ring_data(int src, int dst) const {
  return reinterpret_cast<unsigned char*>(&ring_header(src, dst)) +
         sizeof(RingHeader);
}

unsigned char* Segment::user() const {
  return static_cast<unsigned char*>(base_) + header().user_offset;
}

SuperviseResult supervise_children(Header& hdr, const std::vector<pid_t>& pids,
                                   double timeout_s) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  SuperviseResult res;
  res.outcomes.resize(pids.size());
  for (std::size_t r = 0; r < pids.size(); ++r) res.outcomes[r].pid = pids[r];
  std::size_t live = pids.size();
  std::vector<bool> reaped(pids.size(), false);
  bool killed = false;
  while (live > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < pids.size(); ++r) {
      if (reaped[r]) continue;
      int status = 0;
      const pid_t p = waitpid(pids[r], &status, WNOHANG);
      if (p == 0) continue;
      reaped[r] = true;
      --live;
      progressed = true;
      ChildOutcome& out = res.outcomes[r];
      if (p < 0) {
        // Should not happen (the pid is our direct child); treat as a
        // failure so it cannot pass silently.
        out.exit_code = 127;
      } else if (WIFEXITED(status)) {
        out.exit_code = WEXITSTATUS(status);
        out.term_signal = 0;
      } else if (WIFSIGNALED(status)) {
        out.exit_code = -1;
        out.term_signal = WTERMSIG(status);
      }
      const bool failed = out.term_signal != 0 || out.exit_code != 0;
      // A SIGKILLed child can never poison the world itself; the
      // supervisor does it on its behalf so the survivors' next park
      // tick converts the loss into CommError instead of a hang.
      if (failed) poison(hdr, static_cast<int>(r));
    }
    if (live == 0) break;
    if (!killed && clock::now() >= deadline) {
      res.timed_out = true;
      killed = true;
      for (std::size_t r = 0; r < pids.size(); ++r) {
        if (reaped[r]) continue;
        poison(hdr, static_cast<int>(r));
        kill(pids[r], SIGKILL);
      }
      continue;  // reap the corpses on the next pass
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return res;
}

}  // namespace hpcx::xmpi::procshm
