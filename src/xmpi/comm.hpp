// xmpi — the message-passing runtime every benchmark in this repository
// is written against.
//
// Comm is a *blocking* MPI-like interface: typed point-to-point send/recv
// plus the collective operations the IMB and HPCC suites exercise. Two
// interchangeable implementations exist:
//
//  * ThreadComm (xmpi/thread_comm.hpp) — ranks are host threads, data
//    really moves, time is wall-clock time;
//  * SimComm (xmpi/sim_comm.hpp) — ranks are simulator fibers on a
//    modelled machine, time is virtual.
//
// Buffers are typed views (CBuf/MBuf). A buffer with data == nullptr is
// a *phantom*: it has a size and a type but no storage. Phantom traffic
// is timed exactly like real traffic but no bytes are copied and no
// arithmetic is performed — this is how figure sweeps simulate thousands
// of ranks moving megabytes without hosting the data. Mixing a real
// payload with a phantom receive (or vice versa) is a CommError.
//
// Message matching is (source, tag, context) with FIFO order per pair,
// like MPI. Collectives use a reserved tag space and the communicator's
// context id, so they never collide with user point-to-point traffic.
//
// Send completion: small messages are eager (send returns once the
// payload is buffered), but a backend may switch to a rendezvous
// protocol above its eager threshold, where a blocking send does not
// return until the receiver has taken the data. Cyclic exchange
// patterns must therefore use sendrecv() or isend()/wait() — exactly
// the rule real MPI programs live by.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace hpcx::trace {
class RankTrace;
struct Counters;
enum class AlgId : std::uint8_t;
enum class PhaseId : std::uint8_t;
}  // namespace hpcx::trace

namespace hpcx::xmpi {

enum class DType : std::uint8_t { kByte, kF64, kU64, kI32, kC128 };

constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kByte:
      return 1;
    case DType::kF64:
      return 8;
    case DType::kU64:
      return 8;
    case DType::kI32:
      return 4;
    case DType::kC128:  // complex<double>; transfer-only (no reductions)
      return 16;
  }
  return 0;
}

const char* to_string(DType t);

/// Reduction operators (all commutative and associative).
enum class ROp : std::uint8_t { kSum, kProd, kMax, kMin };

/// Immutable typed buffer view. data == nullptr means phantom.
struct CBuf {
  const void* data = nullptr;
  std::size_t count = 0;
  DType dtype = DType::kByte;

  std::size_t bytes() const { return count * dtype_size(dtype); }
  bool phantom() const { return data == nullptr; }
};

/// Mutable typed buffer view. data == nullptr means phantom.
struct MBuf {
  void* data = nullptr;
  std::size_t count = 0;
  DType dtype = DType::kByte;

  std::size_t bytes() const { return count * dtype_size(dtype); }
  bool phantom() const { return data == nullptr; }
  CBuf as_cbuf() const { return CBuf{data, count, dtype}; }
};

// --- View construction helpers ---

inline CBuf cbuf(std::span<const double> s) {
  return CBuf{s.data(), s.size(), DType::kF64};
}
inline CBuf cbuf(std::span<const std::uint64_t> s) {
  return CBuf{s.data(), s.size(), DType::kU64};
}
inline CBuf cbuf(std::span<const std::int32_t> s) {
  return CBuf{s.data(), s.size(), DType::kI32};
}
inline CBuf cbuf_bytes(const void* p, std::size_t n) {
  return CBuf{p, n, DType::kByte};
}
inline MBuf mbuf(std::span<double> s) {
  return MBuf{s.data(), s.size(), DType::kF64};
}
inline MBuf mbuf(std::span<std::uint64_t> s) {
  return MBuf{s.data(), s.size(), DType::kU64};
}
inline MBuf mbuf(std::span<std::int32_t> s) {
  return MBuf{s.data(), s.size(), DType::kI32};
}
inline MBuf mbuf_bytes(void* p, std::size_t n) {
  return MBuf{p, n, DType::kByte};
}
/// Phantom views: sized, typed, storage-free.
inline CBuf phantom_cbuf(std::size_t count, DType t = DType::kByte) {
  return CBuf{nullptr, count, t};
}
inline MBuf phantom_mbuf(std::size_t count, DType t = DType::kByte) {
  return MBuf{nullptr, count, t};
}

/// Explicit algorithm choices; kAuto follows the size thresholds below
/// (the switch points production MPI libraries use).
enum class BcastAlg : std::uint8_t {
  kAuto,
  kBinomial,           ///< log-depth tree (latency-optimal)
  kScatterRing,        ///< van de Geijn scatter + ring allgather
  kPipelinedRing,      ///< segmented ring pipeline (HPL's "ring" broadcast)
  kBinomialSegmented,  ///< binomial tree, segment-pipelined (any np)
};
enum class AllreduceAlg : std::uint8_t {
  kAuto,
  kRecursiveDoubling,
  kRabenseifner  ///< reduce-scatter + allgather
};
enum class AllgatherAlg : std::uint8_t {
  kAuto,
  kBruck,
  kRing,
  kGatherBcast,  ///< binomial gather to 0 + binomial bcast (any np)
};
enum class AlltoallAlg : std::uint8_t {
  kAuto,
  kPairwise,
  kBruck,  ///< log-depth store-and-forward (latency-optimal, any np)
};
enum class ReduceScatterAlg : std::uint8_t {
  kAuto,
  kRecursiveHalving,
  kRing,
  kPairwise,  ///< each rank exchanges directly with every peer
};

// CLI-style names for the algorithm choices ("auto", "binomial",
// "scatter-ring", ...). parse() is the inverse of to_string(); it
// returns false and leaves `out` untouched for unknown names.
const char* to_string(BcastAlg a);
const char* to_string(AllreduceAlg a);
const char* to_string(AllgatherAlg a);
const char* to_string(AlltoallAlg a);
const char* to_string(ReduceScatterAlg a);
bool parse(std::string_view name, BcastAlg& out);
bool parse(std::string_view name, AllreduceAlg& out);
bool parse(std::string_view name, AllgatherAlg& out);
bool parse(std::string_view name, AlltoallAlg& out);
bool parse(std::string_view name, ReduceScatterAlg& out);

namespace tuner {
class TuningTable;
}

/// Per-communicator thresholds and algorithm overrides steering
/// collective algorithm selection.
struct CollectiveTuning {
  std::size_t bcast_long_bytes = 32 * 1024;     ///< binomial -> van de Geijn
  std::size_t reduce_long_bytes = 32 * 1024;    ///< binomial -> Rabenseifner
  std::size_t allreduce_long_bytes = 16 * 1024; ///< rec.doubling -> Rabenseifner
  std::size_t allgather_long_bytes = 8 * 1024;  ///< Bruck -> ring
  std::size_t alltoall_long_bytes = 4 * 1024;   ///< Bruck -> pairwise
  std::size_t reduce_scatter_long_bytes = 16 * 1024;  ///< rec.halving -> ring

  BcastAlg bcast_alg = BcastAlg::kAuto;
  AllreduceAlg allreduce_alg = AllreduceAlg::kAuto;
  AllgatherAlg allgather_alg = AllgatherAlg::kAuto;
  AlltoallAlg alltoall_alg = AlltoallAlg::kAuto;
  ReduceScatterAlg reduce_scatter_alg = ReduceScatterAlg::kAuto;
  /// Segment size for the pipelined-ring broadcast.
  std::size_t bcast_segment_bytes = 64 * 1024;

  /// Empirical per-(collective, np, size-class) tuning table consulted by
  /// kAuto before the thresholds above (see xmpi/tuner/tuning_table.hpp).
  /// Comm's constructor seeds this with tuner::default_table(); nullptr
  /// means thresholds only.
  std::shared_ptr<const tuner::TuningTable> table;
};

class Comm;

/// Handle for an in-flight nonblocking send, completed by Comm::wait.
/// The send buffer must stay valid until the wait returns. A
/// default-constructed (or already-waited) request is complete.
class SendRequest {
 public:
  SendRequest() = default;
  bool pending() const { return state_ != nullptr; }

 private:
  friend class Comm;
  explicit SendRequest(std::shared_ptr<void> state)
      : state_(std::move(state)) {}
  std::shared_ptr<void> state_;
};

/// Abstract communicator. See file comment for the two implementations.
class Comm {
 public:
  /// Seeds tuning().table from tuner::default_table() so a process-wide
  /// tuning table (hpcx_tune output, --tuning flag) reaches every
  /// communicator without per-call plumbing.
  Comm();
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Monotonic time in seconds — wall-clock for ThreadComm, virtual for
  /// SimComm. Comparable across ranks of the same run.
  virtual double now() = 0;

  /// Charge `seconds` of local computation to the calling rank. Under
  /// simulation this advances the rank's virtual time; on the real
  /// backend the charge is honoured with a sleep.
  void compute(double seconds);

  // --- Point-to-point ---
  //
  // send() blocks until the send buffer is reusable; above the
  // backend's eager threshold that means until the receiver has copied
  // the data (rendezvous). recv() blocks until the message arrived.

  void send(int dst, int tag, CBuf buf);
  void recv(int src, int tag, MBuf buf);

  /// Start a send without waiting for its completion; `buf` must stay
  /// valid until wait() returns. Use for patterns where both sides
  /// transmit before either receives (PingPing, Exchange).
  SendRequest isend(int dst, int tag, CBuf buf);
  /// Complete an isend; the request becomes complete (idempotent).
  void wait(SendRequest& req);

  /// Combined exchange: both transfers logically in flight together.
  /// Built on isend + recv, so it is deadlock-free in cyclic patterns.
  virtual void sendrecv(int dst, int send_tag, CBuf send_buf, int src,
                        int recv_tag, MBuf recv_buf);

  // --- Collectives (implemented over p2p; see xmpi/collectives.cpp) ---

  void barrier();
  void bcast(MBuf buf, int root);
  void reduce(CBuf send, MBuf recv, ROp op, int root);  // recv valid at root
  void allreduce(CBuf send, MBuf recv, ROp op);
  /// Root gathers size() blocks of send.count elements each.
  void gather(CBuf send, MBuf recv, int root);
  /// Root scatters size() blocks of recv.count elements each.
  void scatter(CBuf send, MBuf recv, int root);
  void allgather(CBuf send, MBuf recv);
  /// counts[i] = element count contributed by rank i; recv is the
  /// concatenation in rank order.
  void allgatherv(CBuf send, MBuf recv, std::span<const int> counts);
  void alltoall(CBuf send, MBuf recv);
  void alltoallv(CBuf send, std::span<const int> send_counts, MBuf recv,
                 std::span<const int> recv_counts);
  /// counts[i] = elements rank i receives; send holds sum(counts).
  void reduce_scatter(CBuf send, MBuf recv, std::span<const int> counts,
                      ROp op);

  CollectiveTuning& tuning() { return tuning_; }
  const CollectiveTuning& tuning() const { return tuning_; }

  // --- Tracing & counters (see trace/trace.hpp) ---

  /// Attach a per-rank trace sink (not owned; nullptr detaches). While
  /// attached, every p2p transfer, collective span and compute charge is
  /// recorded and the sink's counters accumulate. Detached — the default
  /// — every hook is a single pointer test, so untraced timings do not
  /// shift.
  void set_trace(trace::RankTrace* sink) { trace_ = sink; }
  trace::RankTrace* trace() const { return trace_; }

  /// Counters accumulated while a trace sink is attached; nullptr when
  /// tracing is off.
  const trace::Counters* stats() const;

  /// Charge the local arithmetic a collective performs when combining
  /// `operand_bytes` of reduction operands (called by the collective
  /// algorithms; the memory-bound combine is what separates vector from
  /// scalar machines on large reductions). No-op on the real backend —
  /// the arithmetic actually runs there.
  virtual void charge_reduce_arithmetic(std::size_t operand_bytes) {
    (void)operand_bytes;
  }

 protected:
  // Implementation hooks. `context` separates communicator instances
  // (sub-communicators get fresh contexts from the same world).
  virtual void send_impl(int dst, int tag, CBuf buf) = 0;
  virtual void recv_impl(int src, int tag, MBuf buf) = 0;

  /// Nonblocking-send hooks. The default treats every send as eager
  /// (correct for backends whose send_impl already buffers, like
  /// SimComm); a backend with a rendezvous protocol overrides both.
  virtual SendRequest isend_impl(int dst, int tag, CBuf buf) {
    send_impl(dst, tag, buf);
    return SendRequest{};
  }
  virtual void wait_impl(SendRequest& req) { (void)req; }

  /// For backends overriding the isend hooks: wrap/unwrap the opaque
  /// per-request state (SendRequest's constructor is private).
  static SendRequest make_request(std::shared_ptr<void> state) {
    return SendRequest{std::move(state)};
  }
  static const std::shared_ptr<void>& request_state(const SendRequest& r) {
    return r.state_;
  }

  /// Charge the compute time (sim: advance virtual time; real: sleep).
  virtual void compute_impl(double seconds) = 0;

  /// Dissemination barrier by default; SimComm overrides it on machines
  /// whose MPI uses hardware/global-memory synchronisation (NEC IXS,
  /// Cray X1). Returns the algorithm used, for the trace span.
  virtual trace::AlgId barrier_impl();

  // Let a subclass reach another communicator's impl hooks. SubComm
  // forwards to its parent through these so each transfer/charge is
  // recorded exactly once (at the sub-communicator wrapper), never again
  // by the parent's own public wrappers.
  static void compute_on(Comm& c, double seconds) { c.compute_impl(seconds); }
  static void send_on(Comm& c, int dst, int tag, CBuf buf) {
    c.send_impl(dst, tag, buf);
  }
  static void recv_on(Comm& c, int src, int tag, MBuf buf) {
    c.recv_impl(src, tag, buf);
  }
  static SendRequest isend_on(Comm& c, int dst, int tag, CBuf buf) {
    return c.isend_impl(dst, tag, buf);
  }
  static void wait_on(Comm& c, SendRequest& req) { c.wait_impl(req); }

  /// Range-check a peer rank. Backends that know their size at
  /// construction call set_peer_limit() so this compiles to an inline
  /// compare — send/recv are latency-critical and a virtual size() call
  /// here is measurable on the fast path.
  void check_peer(int peer) const {
    if (peer >= 0 && peer < peer_limit_) [[likely]]
      return;
    check_peer_slow(peer);
  }
  void set_peer_limit(int n) { peer_limit_ = n; }

 private:
  void check_peer_slow(int peer) const;

  CollectiveTuning tuning_;
  trace::RankTrace* trace_ = nullptr;
  int peer_limit_ = -1;  // -1: unset, check_peer_slow falls back to size()
};

/// Signature of a rank's main function, shared by both backends.
using RankFn = std::function<void(Comm&)>;

/// RAII span marking a benchmark-defined kernel phase (HPL panel
/// factorisation, FFT transpose, ...). On destruction it records a
/// trace::EventKind::kPhase event and adds the duration to the rank's
/// Counters::phase_s bucket. With no trace sink attached, construction
/// and destruction are a single pointer test each — kernels can mark
/// their phases unconditionally.
class PhaseScope {
 public:
  PhaseScope(Comm& comm, trace::PhaseId phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Comm* comm_;
  trace::PhaseId phase_;
  double t_begin_ = 0.0;
};

}  // namespace hpcx::xmpi
