// Multi-process backend: every rank is an OS process, data moves through
// per-(src,dst) SPSC byte rings in a POSIX shared-memory segment
// (xmpi/proc_shm.hpp). The same RankFn that runs on threads or on a
// simulated machine runs here unmodified — this is the third substrate
// of the conformance wall.
//
// Protocol (mirrors the ThreadComm transport, PR 2, across address
// spaces):
//  * Messages are length-prefixed frames streamed through the bounded
//    ring: a 16-byte wire header (tag/count/dtype/phantom) followed by
//    the payload. Frames larger than the ring stream through it in
//    pieces — the producer advances tail as the consumer frees space —
//    so any message size works with any ring size.
//  * Eager (bytes <= eager_max_bytes): the payload is copied into a
//    sender-private staging block and send()/isend() complete
//    immediately; a progress engine pushes staged frames into the ring
//    opportunistically from every blocking transport call (and flushes
//    the rest when the rank finishes).
//  * Rendezvous (bytes > eager_max_bytes): no staging copy — the frame
//    streams straight from the user buffer; send()/wait() return once
//    the last byte entered the ring (the buffer is then reusable).
//  * Receives match (source, tag) with per-pair FIFO order: frames that
//    do not match the posted receive are assembled into a
//    receiver-private deferred list; a matching frame at the ring head
//    streams directly into the posted buffer with no intermediate copy.
//    Shape mismatches throw CommError naming rank/tag and leave the
//    message queued, exactly like ThreadComm.
//  * World-abort poisoning: a rank that dies — exception, exit, or
//    SIGKILL — poisons the segment header (the parent's supervisor
//    handles deaths the child could not report itself) and every rank
//    blocked in the transport throws CommError("peer rank N failed")
//    within one park tick. Peer death surfaces as an error, never a
//    hang; a supervisor timeout SIGKILLs stragglers as a last resort.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "xmpi/comm.hpp"
#include "xmpi/thread_comm.hpp"  // TransportTuning

namespace hpcx::xmpi {

/// Transport stats of one rank, read back from the segment after the
/// world joined (the boundary tests assert eager/rendezvous routing
/// from the parent — child-side asserts would be invisible).
struct ProcRankStats {
  std::uint64_t sends = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
};

/// How one rank's process ended.
struct ProcRankOutcome {
  int exit_code = -1;   ///< valid when term_signal == 0
  int term_signal = 0;  ///< e.g. SIGKILL for a murdered rank
  std::string error;    ///< exception text the rank reported, if any
  bool ok() const { return term_signal == 0 && exit_code == 0; }
};

struct ProcRunOptions {
  TransportTuning transport;
  /// Watchdog budget: after this many wall seconds the supervisor
  /// poisons the world and SIGKILLs stragglers — a wedged world becomes
  /// a reported failure, not a hang.
  double timeout_s = 120.0;
  /// Per-(src,dst) ring payload capacity (rounded up to a power of
  /// two). Any message size works with any capacity; bigger rings just
  /// buffer more in flight.
  std::size_t ring_bytes = 64 * 1024;
  /// Size of the shared user area handed to ProcRankFn and copied into
  /// ProcRunResult::user after the join (zero-initialised).
  std::size_t user_bytes = 0;
  /// false: a failed rank makes run_on_procs throw CommError (first
  /// failure's message). true: never throw; inspect
  /// ProcRunResult::outcomes instead (fault-injection tests).
  bool collect_outcomes = false;
};

struct ProcRunResult {
  double elapsed_s = 0;
  std::vector<ProcRankStats> rank_stats;  ///< indexed by rank
  std::vector<ProcRankOutcome> outcomes;  ///< indexed by rank
  /// Snapshot of the shared user area taken after every rank exited.
  std::vector<unsigned char> user;
  bool failed() const;
  int first_failed_rank() const;  ///< -1 when all ranks succeeded
};

/// Rank body that also sees the shared user area (live shared memory:
/// whatever ranks write is visible to the others and survives into
/// ProcRunResult::user).
using ProcRankFn = std::function<void(Comm&, std::span<unsigned char>)>;

/// Run `fn` on `nranks` forked processes communicating over shared
/// memory. Blocks until every rank exited (or the watchdog fired).
ProcRunResult run_on_procs(int nranks, const RankFn& fn,
                           ProcRunOptions options = {});
ProcRunResult run_on_procs(int nranks, const ProcRankFn& fn,
                           ProcRunOptions options = {});

/// True when this process was exec()ed by hpcx_launch (HPCX_PROC_SHM
/// and friends are in the environment).
bool launched_by_hpcx();

/// Worker side of hpcx_launch: attach to the launcher's segment, run
/// `fn` as this process's rank, and return the process exit code (0 on
/// success; 1 after an exception, with the world poisoned first and the
/// error text both on stderr and in the rank's segment slot).
int run_launched(const RankFn& fn, TransportTuning tuning = {});

}  // namespace hpcx::xmpi
