#include "xmpi/sub_comm.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace hpcx::xmpi {

namespace {
// Each context owns a [user | collective] tag block of this size.
constexpr int kContextStride = kMaxUserTag * 2;
// Keep the shifted tag inside a signed 32-bit int.
constexpr int kMaxContexts = (std::numeric_limits<int>::max() / kContextStride) - 1;
}  // namespace

SubComm::SubComm(Comm& parent, std::vector<int> members, int context_id)
    : parent_(&parent), members_(std::move(members)), context_id_(context_id) {
  HPCX_REQUIRE(!members_.empty(), "sub-communicator needs members");
  HPCX_REQUIRE(context_id >= 1 && context_id <= kMaxContexts,
               "sub-communicator context_id out of range");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const int m = members_[i];
    HPCX_REQUIRE(m >= 0 && m < parent.size(),
                 "sub-communicator member out of parent range");
    if (m == parent.rank()) my_rank_ = static_cast<int>(i);
  }
  HPCX_REQUIRE(my_rank_ >= 0,
               "calling rank is not a member of the sub-communicator");
  set_peer_limit(static_cast<int>(members_.size()));
  set_trace(parent.trace());
}

int SubComm::translate_tag(int tag) const {
  HPCX_ASSERT_MSG(tag >= 0 && tag < kContextStride,
                  "tag outside the per-context tag block");
  return context_id_ * kContextStride + tag;
}

void SubComm::send_impl(int dst, int tag, CBuf buf) {
  // Straight to the parent's impl hook: this transfer was already
  // recorded by our own public wrapper (shared sink), and the member
  // rank is valid by construction.
  send_on(*parent_, members_[static_cast<std::size_t>(dst)],
          translate_tag(tag), buf);
}

void SubComm::recv_impl(int src, int tag, MBuf buf) {
  recv_on(*parent_, members_[static_cast<std::size_t>(src)],
          translate_tag(tag), buf);
}

SendRequest SubComm::isend_impl(int dst, int tag, CBuf buf) {
  return isend_on(*parent_, members_[static_cast<std::size_t>(dst)],
                  translate_tag(tag), buf);
}

void SubComm::wait_impl(SendRequest& req) { wait_on(*parent_, req); }

}  // namespace hpcx::xmpi
