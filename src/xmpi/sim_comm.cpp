#include "xmpi/sim_comm.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "des/fiber.hpp"
#include "des/simulator.hpp"
#include "des/sync.hpp"
#include "netsim/network.hpp"
#include "obs/critical_path.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_internal.hpp"

namespace hpcx::xmpi {

namespace {

using detail::Envelope;
using detail::EnvelopePool;
using detail::RankState;

struct World {
  World(const mach::MachineConfig& machine, int nranks,
        des::Simulator& simulator)
      : config(&machine),
        nranks(nranks),
        sim(&simulator),
        network(simulator, machine.build_topology(machine.nodes_for(nranks)),
                machine.nic, machine.node),
        ranks(static_cast<std::size_t>(nranks)),
        barrier_wq(simulator) {
    for (auto& r : ranks) r.wq = std::make_unique<des::WaitQueue>(simulator);
  }

  const mach::MachineConfig* config;
  int nranks;
  des::Simulator* sim;
  net::Network network;
  std::vector<RankState> ranks;
  EnvelopePool pool;
  // Hardware-barrier rendezvous state (machines with hw_barrier_latency_s).
  des::WaitQueue barrier_wq;
  int barrier_arrived = 0;
};

class SimComm final : public Comm {
 public:
  SimComm(World& world, int rank)
      : world_(&world),
        rank_(rank),
        node_(world.config->node_of_rank(rank)) {
    set_peer_limit(world.nranks);
  }

  int rank() const override { return rank_; }
  int size() const override { return world_->nranks; }
  double now() override { return world_->sim->now(); }

  void charge_reduce_arithmetic(std::size_t operand_bytes) override {
    // The combine streams operand + accumulator in and writes the
    // accumulator back: ~3 memory touches per operand byte, at the
    // node's contended STREAM rate.
    const double cost = 3.0 * static_cast<double>(operand_bytes) /
                        world_->config->stream_per_cpu_all_active();
    world_->sim->sleep(cost);
    if (trace::RankTrace* t = trace()) t->counters().compute_s += cost;
  }

 protected:
  void compute_impl(double seconds) override { world_->sim->sleep(seconds); }

  trace::AlgId barrier_impl() override {
    const double hw = world_->config->hw_barrier_latency_s;
    if (hw <= 0.0 || world_->nranks == 1) return Comm::barrier_impl();
    // Hardware global synchronisation: everyone blocks until the last
    // rank arrives; all release together one hw-latency later. The
    // arrival counter resets before the wake-ups are issued, so
    // back-to-back barriers cannot mix generations.
    World& w = *world_;
    const double t0 = w.sim->now();
    if (++w.barrier_arrived < w.nranks) {
      w.barrier_wq.wait();
    } else {
      w.barrier_arrived = 0;
      w.sim->set_next_cp(des::CpKind::kBarrier, des::kCpNoActor);
      w.sim->schedule(hw, [&w] { w.barrier_wq.notify_all(); });
      w.sim->sleep(hw);
    }
    if (trace::RankTrace* t = trace())
      t->counters().wait_s += w.sim->now() - t0;
    return trace::AlgId::kHardware;
  }

  void send_impl(int dst, int tag, CBuf buf) override {
    World* w = world_;
    Envelope* env = w->pool.acquire();
    env->src = rank_;
    env->src_node = node_;
    env->tag = tag;
    env->count = buf.count;
    env->dtype = buf.dtype;
    env->phantom = buf.phantom();
    if (!buf.phantom() && buf.count > 0) {
      env->payload.resize(buf.bytes());
      std::memcpy(env->payload.data(), buf.data, buf.bytes());
    }
    const int dst_node = w->config->node_of_rank(dst);
    // network.send blocks the caller for the send-side software
    // overhead plus injection serialisation — the sender is moving
    // bytes, so the charge goes to the copy bucket. The delivery
    // continuation is three words (stored inline in the event), and the
    // envelope node rides along by pointer: no allocation per message.
    const double t0 = w->sim->now();
    w->network.send(node_, dst_node, buf.bytes(), [w, dst, env] {
      RankState& rs = w->ranks[static_cast<std::size_t>(dst)];
      if (rs.inbox_tail == nullptr) {
        rs.inbox_head = env;
      } else {
        rs.inbox_tail->next = env;
      }
      rs.inbox_tail = env;
      rs.wq->notify_one();
    });
    if (trace::RankTrace* t = trace())
      t->counters().copy_s += w->sim->now() - t0;
  }

  void recv_impl(int src, int tag, MBuf buf) override {
    RankState& rs = world_->ranks[static_cast<std::size_t>(rank_)];
    for (;;) {
      Envelope* prev = nullptr;
      for (Envelope* env = rs.inbox_head; env != nullptr;
           prev = env, env = env->next) {
        if (env->src == src && env->tag == tag) {
          detail::validate_match(*env, buf);
          // Unlink only after validation, so a mismatch keeps the
          // message queued (same contract as the thread backend).
          if (prev == nullptr) {
            rs.inbox_head = env->next;
          } else {
            prev->next = env->next;
          }
          if (rs.inbox_tail == env) rs.inbox_tail = prev;
          // Receive-side software overhead applies to messages that
          // crossed the network; node-local deliveries already paid the
          // intra-node latency.
          if (env->src_node != node_) {
            const double oh = world_->network.recv_overhead_s();
            world_->sim->sleep(oh);
            if (trace::RankTrace* t = trace()) t->counters().copy_s += oh;
          }
          if (!buf.phantom() && buf.count > 0)
            std::memcpy(buf.data, env->payload.data(), buf.bytes());
          world_->pool.release(env);
          return;
        }
      }
      const double t0 = world_->sim->now();
      rs.wq->wait();
      if (trace::RankTrace* t = trace())
        t->counters().wait_s += world_->sim->now() - t0;
    }
  }

 private:
  World* world_;
  int rank_;
  int node_;
};

// Wide simulations would exhaust the kernel's VMA budget with one
// guard-paged mapping per fiber stack; dense slab stacks keep the
// mapping count flat. The threshold stays above every golden-workload
// rank count so narrow runs keep byte-identical allocation behaviour.
struct DenseStackGuard {
  explicit DenseStackGuard(bool on) : on_(on) {
    if (on_) des::Fiber::set_dense_stacks(true);
  }
  ~DenseStackGuard() {
    if (on_) des::Fiber::set_dense_stacks(false);
  }
  bool on_;
};

}  // namespace

SimRunResult run_on_machine(const mach::MachineConfig& machine, int nranks,
                            const RankFn& fn, SimRunOptions options) {
  HPCX_REQUIRE(nranks >= 1, "need at least one rank");
  DenseStackGuard dense(nranks >= 4096);

  // Critical-path recording rides the event queue's provenance fields,
  // which the parallel engine's order log owns — profile serially.
  if (options.critical_path == nullptr &&
      (options.sim_workers > 1 || options.sim_lps > 1)) {
    if (auto par = detail::run_parallel(machine, nranks, fn, options))
      return *par;
    // Not partitionable (single host, or no finite lookahead): the
    // serial engine below handles it.
  }

  des::Simulator sim;
  World world(machine, nranks, sim);
  trace::Recorder* recorder = options.recorder;
  if (recorder) {
    recorder->set_virtual_time(true);
    world.network.enable_link_sampling(options.link_sample_interval_s);
  }
  if (options.critical_path != nullptr) {
    sim.enable_critical_path(true);
    world.network.enable_cp_labels(true);
  }
  const std::uint64_t fiber_reuses0 = des::Fiber::stack_pool_reuses();
  for (int r = 0; r < nranks; ++r) {
    sim.spawn(
        [&world, &fn, recorder, r] {
          SimComm comm(world, r);
          if (recorder) comm.set_trace(&recorder->rank(r));
          const double t0 = world.sim->now();
          fn(comm);
          world.ranks[static_cast<std::size_t>(r)].finish_time =
              world.sim->now();
          if (recorder)
            recorder->rank(r).counters().elapsed_s +=
                world.sim->now() - t0;
        },
        options.fiber_stack_bytes);
  }
  sim.run();

  if (options.critical_path != nullptr)
    *options.critical_path =
        obs::analyze_critical_path(sim, world.network.graph(), recorder);

  {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter("hpcx_sim_runs_total",
                        "simulated runs completed (serial engine)"),
            1);
    reg.add(reg.counter("hpcx_sim_events_total",
                        "events executed by the serial engine"),
            sim.executed_events());
    reg.set(reg.gauge("hpcx_envelope_pool_free",
                      "pooled message envelopes currently free"),
            static_cast<double>(world.pool.free_count()));
    reg.add(reg.counter("hpcx_envelope_pool_allocs_total",
                        "envelope acquisitions that had to allocate"),
            world.pool.allocs());
    reg.add(reg.counter("hpcx_envelope_pool_reuses_total",
                        "envelope acquisitions served from the pool"),
            world.pool.acquires() - world.pool.allocs());
    reg.set(reg.gauge("hpcx_fiber_stack_pool_free",
                      "pooled fiber stacks currently free"),
            static_cast<double>(des::Fiber::pooled_stacks()));
    reg.add(reg.counter("hpcx_fiber_stack_pool_reuses_total",
                        "fiber spawns served from the stack pool"),
            des::Fiber::stack_pool_reuses() - fiber_reuses0);
    reg.add(reg.counter("hpcx_sim_internode_messages_total",
                        "simulated messages that crossed the network"),
            world.network.internode_messages());
    reg.add(reg.counter("hpcx_sim_intranode_messages_total",
                        "simulated messages delivered within a node"),
            world.network.intranode_messages());
    reg.add(reg.counter("hpcx_sim_internode_bytes_total",
                        "simulated payload bytes that crossed the network"),
            world.network.internode_bytes());
  }

  if (recorder) detail::fold_link_tracks(*recorder, world.network);
  return detail::build_sim_result(world.network, world.ranks);
}

}  // namespace hpcx::xmpi
