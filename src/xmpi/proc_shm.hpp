// Shared-memory segment layout for the multi-process transport
// (xmpi/proc_comm.hpp). One segment hosts a whole world: a header with
// the world-abort flags, one stats/error slot per rank, an n x n grid
// of SPSC byte rings (src-major), and an optional caller-visible "user"
// area ranks and the launcher both can read/write (results written by
// child processes cross the address-space boundary through it).
//
// Two lifetimes share this layout:
//  * run_on_procs() maps it MAP_SHARED|MAP_ANONYMOUS and fork()s — the
//    segment has no name and dies with the last mapping.
//  * hpcx_launch creates a named POSIX shm object (shm_open) so that
//    exec()ed workers can attach via the HPCX_PROC_SHM environment
//    variable; the launcher unlinks it on exit.
//
// Everything in the segment is either a std::atomic (lock-free and
// address-free on this platform, so valid across processes) or plain
// bytes published/consumed under the ring cursors' release/acquire
// pairs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

namespace hpcx::xmpi::procshm {

inline constexpr std::uint64_t kMagic = 0x48504358'50524F43ull;  // "HPCXPROC"
inline constexpr std::uint32_t kVersion = 1;

/// Per-rank slot: transport stats folded in by the rank on exit, plus a
/// fixed-size error message (child exception text must reach the parent
/// without heap allocation in a dying process). `has_error` is the
/// release-store publishing `error`.
struct RankSlot {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rendezvous_sends{0};
  std::atomic<std::int32_t> pid{0};
  std::atomic<std::int32_t> has_error{0};
  char error[216];
};
static_assert(sizeof(RankSlot) == 256, "keep slots cache-line friendly");

/// SPSC ring cursors. Free-running byte counts: readable = tail - head,
/// writable = capacity - readable; positions wrap via pos & (cap - 1).
/// Producer owns tail, consumer owns head; each publishes with a
/// release store the other acquires.
struct RingHeader {
  std::atomic<std::uint64_t> head{0};  ///< consumer cursor
  std::atomic<std::uint64_t> tail{0};  ///< producer cursor
  char pad[48];
};
static_assert(sizeof(RingHeader) == 64, "one cache line");

/// Segment header. `aborted`/`failed_rank` implement the world-abort
/// poisoning: the first failure CASes failed_rank from -1 and sets
/// aborted; every blocked transport loop polls aborted each tick and
/// throws CommError("peer rank N failed"). The parent's supervisor sets
/// it too when a child dies abnormally (e.g. SIGKILL), which a dead
/// child never could.
struct Header {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::int32_t nranks = 0;
  std::uint64_t ring_bytes = 0;  ///< payload capacity per ring (pow2)
  std::uint64_t user_bytes = 0;
  std::uint64_t slots_offset = 0;
  std::uint64_t rings_offset = 0;
  std::uint64_t user_offset = 0;
  std::int64_t epoch_ns = 0;  ///< CLOCK_MONOTONIC at creation; now() base
  std::atomic<std::int32_t> aborted{0};
  std::atomic<std::int32_t> failed_rank{-1};
};

/// First-failure-wins poisoning (mirrors ThreadComm's World::abort).
inline void poison(Header& h, int rank) {
  std::int32_t expected = -1;
  h.failed_rank.compare_exchange_strong(expected, rank);
  h.aborted.store(1, std::memory_order_release);
}

/// A mapped segment (owner or attached view). Move-only RAII over the
/// mapping; unlink() additionally removes a named object.
class Segment {
 public:
  Segment() = default;
  Segment(Segment&& o) noexcept;
  Segment& operator=(Segment&& o) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  /// MAP_ANONYMOUS | MAP_SHARED mapping for fork()-based worlds.
  static Segment create_anonymous(int nranks, std::size_t ring_bytes,
                                  std::size_t user_bytes);
  /// shm_open a fresh named object (name auto-generated from the pid)
  /// for exec()-based worlds; pass name() to workers via the
  /// environment.
  static Segment create_named(int nranks, std::size_t ring_bytes,
                              std::size_t user_bytes);
  /// Attach to an existing named object created by create_named().
  static Segment attach(const std::string& name);

  bool valid() const { return base_ != nullptr; }
  const std::string& name() const { return name_; }
  /// Remove the name (named segments only); mappings stay valid.
  void unlink();

  Header& header() const { return *reinterpret_cast<Header*>(base_); }
  RankSlot& slot(int rank) const;
  RingHeader& ring_header(int src, int dst) const;
  unsigned char* ring_data(int src, int dst) const;
  unsigned char* user() const;
  std::size_t user_bytes() const { return header().user_bytes; }

 private:
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::string name_;  ///< empty for anonymous segments
};

/// One supervised child of a world.
struct ChildOutcome {
  pid_t pid = -1;
  int exit_code = -1;   ///< valid when term_signal == 0
  int term_signal = 0;  ///< non-zero when the child died of a signal
};

struct SuperviseResult {
  bool timed_out = false;
  std::vector<ChildOutcome> outcomes;  ///< indexed by rank
};

/// Reap `pids` (rank r == pids[r]), poisoning the world on the first
/// abnormal exit so surviving ranks stop blocking, and SIGKILLing every
/// straggler once `timeout_s` elapses (the watchdog budget: peer death
/// or deadlock must surface as failure, never a hang).
SuperviseResult supervise_children(Header& hdr,
                                   const std::vector<pid_t>& pids,
                                   double timeout_s);

}  // namespace hpcx::xmpi::procshm
