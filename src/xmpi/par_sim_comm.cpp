// Parallel simulated-machine backend: the machine's hosts are
// partitioned into logical processes (LPs) along topology boundaries,
// each LP a complete des::Simulator with its own event queue, fibers
// and envelope pool, driven by des::run_conservative with lookahead
// derived from the minimum modeled link latency (and the hardware
// barrier latency, when the machine has one).
//
// The schedule is the SERIAL schedule, re-ordered but not re-timed:
//
//  * Everything host-local (compute, intra-node copies, NIC injection,
//    per-node memory contention) runs in-window on the owning LP —
//    those resources are per-host, and a host belongs to exactly one
//    LP, so no lock is needed and no float changes value.
//
//  * The shared fabric (per-edge busy reservations) is never touched
//    in-window. A remote send records a Network::DeferredSend; the
//    inter-window flush first reconstructs the serial engine's exact
//    global event order for the window (des::WindowOrder over the LPs'
//    order logs — segmented and merged on the worker pool), then
//    replays all recorded walks on the serial tail in that order — so
//    every link reservation, queueing decision, statistic and delivery
//    time comes out bit-identical, at any worker count. Same-instant
//    walk order is a property of the whole execution history (the
//    serial queue runs timestamp ties in push order, and pushes inherit
//    positions through wakes and deliveries), which is why it is
//    reconstructed rather than approximated by a static sort key. Once
//    walk order and delivery times are fixed, scheduling the deliveries
//    is independent per destination LP (each LP's queue and envelope
//    pool are touched in merged-order by exactly one worker), so that
//    half of the flush shards across the pool.
//
//  * Hardware barriers complete in the flush too: arrivals are recorded
//    per-LP in-window; once all ranks have arrived, every rank is
//    released at t_last + hw_latency, waking the last-arriving rank
//    first (whose sleep would have expired first in the serial engine)
//    and the rest in arrival order.
//
// Conservative-safety argument: a window runs events in [T, T + la)
// where T is the global minimum pending event time and la is strictly
// less than both the minimum link latency and the hw barrier latency.
// A deferred send walked at t_walk >= T delivers no earlier than
// t_walk + min link latency > T + la, and a barrier completing at
// t_last >= T releases at t_last + hw > T + la — both beyond every
// LP's clock when the flush applies them, so nothing is ever scheduled
// into an LP's past.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/error.hpp"
#include "des/order.hpp"
#include "des/parallel.hpp"
#include "des/simulator.hpp"
#include "des/sync.hpp"
#include "netsim/network.hpp"
#include "obs/registry.hpp"
#include "topology/partition.hpp"
#include "trace/trace.hpp"
#include "xmpi/sim_internal.hpp"

namespace hpcx::xmpi {

namespace {

/// A remote send whose sender-local half ran in-window; the fabric walk
/// and the delivery are applied by the next flush.
struct PendingSend {
  net::Network::DeferredSend d;
  std::uint32_t log_idx = 0;  ///< sending segment in its LP's order log
  int lp = 0;
  int src_rank = 0;
  int src_node = 0;
  int dst_rank = 0;
  int dst_lp = 0;
  int tag = 0;
  std::size_t count = 0;
  DType dtype = DType::kByte;
  bool phantom = false;
  std::vector<unsigned char> payload;
  // Filled by the flush: the sending segment's merged global position,
  // then the fabric walk's delivery time.
  std::uint64_t g = 0;
  double deliver_t = 0.0;
};

struct BarrierArrival {
  double t = 0;
  std::uint32_t log_idx = 0;  ///< arriving segment in its LP's order log
  std::uint32_t ordinal = 0;  ///< that segment's next push ordinal
  int rank = 0;
  int lp = 0;
  // Arrivals can outlive the window they were recorded in (the barrier
  // completes only when the slowest rank arrives), but log_idx is only
  // meaningful within that window — so the first flush after recording
  // resolves it to the global sequence number and stores it here.
  std::uint64_t g = 0;
  bool resolved = false;
};

/// One logical process: a full simulator plus everything it records
/// in-window for the flush to apply. Only the owning worker thread
/// touches a shard inside a window; the flush (single-threaded) is the
/// only other reader, fenced by the window pool's handshake.
struct Shard {
  des::Simulator sim;
  detail::EnvelopePool pool;
  std::vector<PendingSend> pending;
  std::vector<BarrierArrival> barrier_arrivals;
};

struct ParWorld {
  ParWorld(const mach::MachineConfig& machine, int n, topo::Graph graph,
           topo::Partition p)
      : config(&machine),
        nranks(n),
        part(std::move(p)),
        shards(static_cast<std::size_t>(part.num_lps())),
        network(shards.front().sim, std::move(graph), machine.nic,
                machine.node),
        lp_of_rank(static_cast<std::size_t>(n)),
        ranks(static_cast<std::size_t>(n)),
        barrier_wqs(static_cast<std::size_t>(n)) {
    for (int r = 0; r < n; ++r) {
      const int node = machine.node_of_rank(r);
      const int lp = part.lp_of_host[static_cast<std::size_t>(node)];
      des::Simulator& owner = shards[static_cast<std::size_t>(lp)].sim;
      lp_of_rank[static_cast<std::size_t>(r)] = lp;
      ranks[static_cast<std::size_t>(r)].wq =
          std::make_unique<des::WaitQueue>(owner);
      // Barrier waits get their own queue (the serial engine's shared
      // rendezvous queue becomes one per rank): an in-flight delivery's
      // notify_one on the inbox queue must stay a no-op while the rank
      // sits in a barrier, exactly as in the serial engine.
      barrier_wqs[static_cast<std::size_t>(r)] =
          std::make_unique<des::WaitQueue>(owner);
    }
    deliveries_in.assign(shards.size(), 0);
    obs::Registry& reg = obs::Registry::global();
    seg_hist = reg.histogram("hpcx_pdes_merge_segment_events",
                             "events merged by one order-merge segment");
    batch_hist = reg.histogram(
        "hpcx_pdes_delivery_batch_size",
        "cross-LP deliveries bound for one destination LP in one flush");
  }

  Shard& shard_of_rank(int r) {
    return shards[static_cast<std::size_t>(
        lp_of_rank[static_cast<std::size_t>(r)])];
  }

  const mach::MachineConfig* config;
  int nranks;
  topo::Partition part;
  std::deque<Shard> shards;  // deque: Simulator is pinned, never moves
  net::Network network;      // sim reference unused on the parallel path
  std::vector<int> lp_of_rank;
  std::vector<detail::RankState> ranks;
  std::vector<std::unique_ptr<des::WaitQueue>> barrier_wqs;
  // Flush scratch, reused across rounds.
  std::vector<PendingSend*> batch;      // all pendings, merged-g order
  std::vector<std::uint32_t> dst_off;     // per-dst-LP offsets into dst_order
  std::vector<std::uint32_t> dst_cursor;  // counting-sort insert points
  std::vector<PendingSend*> dst_order;  // batch bucketed by destination LP
  // Flush instrumentation (written on the serial tail only).
  std::uint64_t deliveries = 0;
  std::uint64_t delivery_batches = 0;
  std::uint64_t merge_segments = 0;
  std::uint64_t merge_seg_max = 0;  ///< events in the largest segment
  std::vector<std::uint64_t> deliveries_in;  ///< per destination LP
  double merge_wall_s = 0.0;
  // Pre-registered metric ids (registration locks; observation is the
  // lock-free hot path, safe from the per-flush loops).
  obs::MetricId seg_hist;
  obs::MetricId batch_hist;
};

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Append the envelope to dst's inbox and poke its inbox wait queue —
/// the same three-word continuation the serial engine uses. Runs on the
/// destination rank's own LP.
void deliver(ParWorld* w, int dst, detail::Envelope* env) {
  detail::RankState& rs = w->ranks[static_cast<std::size_t>(dst)];
  if (rs.inbox_tail == nullptr) {
    rs.inbox_head = env;
  } else {
    rs.inbox_tail->next = env;
  }
  rs.inbox_tail = env;
  rs.wq->notify_one();
}

class PSimComm final : public Comm {
 public:
  PSimComm(ParWorld& world, int rank)
      : world_(&world),
        rank_(rank),
        node_(world.config->node_of_rank(rank)),
        lp_(world.lp_of_rank[static_cast<std::size_t>(rank)]),
        shard_(&world.shards[static_cast<std::size_t>(lp_)]) {
    set_peer_limit(world.nranks);
  }

  int rank() const override { return rank_; }
  int size() const override { return world_->nranks; }
  double now() override { return shard_->sim.now(); }

  void charge_reduce_arithmetic(std::size_t operand_bytes) override {
    const double cost = 3.0 * static_cast<double>(operand_bytes) /
                        world_->config->stream_per_cpu_all_active();
    shard_->sim.sleep(cost);
    if (trace::RankTrace* t = trace()) t->counters().compute_s += cost;
  }

 protected:
  void compute_impl(double seconds) override { shard_->sim.sleep(seconds); }

  trace::AlgId barrier_impl() override {
    const double hw = world_->config->hw_barrier_latency_s;
    if (hw <= 0.0 || world_->nranks == 1) return Comm::barrier_impl();
    // Record the arrival for the flush-time rendezvous and block on the
    // per-rank barrier queue; the flush releases everyone at
    // t_last + hw once all ranks have arrived.
    const double t0 = shard_->sim.now();
    shard_->barrier_arrivals.push_back(BarrierArrival{
        t0, static_cast<std::uint32_t>(shard_->sim.current_log_index()),
        shard_->sim.current_push_ordinal(), rank_, lp_});
    world_->barrier_wqs[static_cast<std::size_t>(rank_)]->wait();
    if (trace::RankTrace* t = trace())
      t->counters().wait_s += shard_->sim.now() - t0;
    return trace::AlgId::kHardware;
  }

  void send_impl(int dst, int tag, CBuf buf) override {
    ParWorld* w = world_;
    const int dst_node = w->config->node_of_rank(dst);
    const double t0 = shard_->sim.now();
    if (dst_node == node_) {
      // Same node => same LP: the whole transfer is LP-local, envelope
      // from the destination's (== our) shard pool, delivered in-window.
      detail::Envelope* env = shard_->pool.acquire();
      fill(env, tag, buf);
      w->network.send_local_on(shard_->sim, node_, buf.bytes(),
                               [w, dst, env] { deliver(w, dst, env); });
    } else {
      // Remote: run the sender-local half now (overhead + NIC
      // injection, both per-host resources we own) and leave the
      // fabric walk + delivery to the flush. The payload snapshot
      // happens here, at send time, as the serial engine's does.
      PendingSend ps;
      ps.lp = lp_;
      ps.src_rank = rank_;
      ps.src_node = node_;
      ps.dst_rank = dst;
      ps.dst_lp = w->lp_of_rank[static_cast<std::size_t>(dst)];
      ps.tag = tag;
      ps.count = buf.count;
      ps.dtype = buf.dtype;
      ps.phantom = buf.phantom();
      if (!buf.phantom() && buf.count > 0) {
        ps.payload.resize(buf.bytes());
        std::memcpy(ps.payload.data(), buf.data, buf.bytes());
      }
      ps.d = w->network.begin_remote(shard_->sim, node_, dst_node,
                                     buf.bytes());
      // Sequenced after begin_remote's overhead sleep: this fiber
      // segment executes at t_walk, and in the serial engine it is the
      // segment that walks the fabric AND pushes the delivery event —
      // so record its log position as the walk's order key, and consume
      // the push ordinal the delivery would have used (the flush makes
      // that push on this segment's behalf, before the inject sleep's).
      ps.log_idx =
          static_cast<std::uint32_t>(shard_->sim.current_log_index());
      shard_->sim.consume_push_ordinal();
      const double inject_end = ps.d.inject_end;
      shard_->pending.push_back(std::move(ps));
      shard_->sim.sleep(inject_end - shard_->sim.now());
    }
    if (trace::RankTrace* t = trace())
      t->counters().copy_s += shard_->sim.now() - t0;
  }

  void recv_impl(int src, int tag, MBuf buf) override {
    detail::RankState& rs = world_->ranks[static_cast<std::size_t>(rank_)];
    for (;;) {
      detail::Envelope* prev = nullptr;
      for (detail::Envelope* env = rs.inbox_head; env != nullptr;
           prev = env, env = env->next) {
        if (env->src == src && env->tag == tag) {
          detail::validate_match(*env, buf);
          if (prev == nullptr) {
            rs.inbox_head = env->next;
          } else {
            prev->next = env->next;
          }
          if (rs.inbox_tail == env) rs.inbox_tail = prev;
          if (env->src_node != node_) {
            const double oh = world_->network.recv_overhead_s();
            shard_->sim.sleep(oh);
            if (trace::RankTrace* t = trace()) t->counters().copy_s += oh;
          }
          if (!buf.phantom() && buf.count > 0)
            std::memcpy(buf.data, env->payload.data(), buf.bytes());
          shard_->pool.release(env);
          return;
        }
      }
      const double t0 = shard_->sim.now();
      rs.wq->wait();
      if (trace::RankTrace* t = trace())
        t->counters().wait_s += shard_->sim.now() - t0;
    }
  }

 private:
  void fill(detail::Envelope* env, int tag, const CBuf& buf) {
    env->src = rank_;
    env->src_node = node_;
    env->tag = tag;
    env->count = buf.count;
    env->dtype = buf.dtype;
    env->phantom = buf.phantom();
    if (!buf.phantom() && buf.count > 0) {
      env->payload.resize(buf.bytes());
      std::memcpy(env->payload.data(), buf.data, buf.bytes());
    }
  }

  ParWorld* world_;
  int rank_;
  int node_;
  int lp_;
  Shard* shard_;
};

/// Replay every deferred fabric walk in the serial engine's global
/// order, then schedule the deliveries on the destination LPs — the
/// walk stays on the serial tail (per-edge reservations are shared
/// state), but once it has fixed each delivery's time, scheduling is
/// independent per destination LP and shards across the pool.
void apply_pending_sends(ParWorld& w, const std::vector<des::Simulator*>& lps,
                         des::WorkerPool& pool) {
  w.batch.clear();
  for (Shard& s : w.shards) {
    for (PendingSend& ps : s.pending) {
      // The merged global sequence numbers ARE the serial execution
      // order (time-ascending, ties in serial push order), so ordering
      // walks by the sending segment's number replays the fabric
      // exactly.
      ps.g = lps[static_cast<std::size_t>(ps.lp)]->window_gseq()[ps.log_idx];
      w.batch.push_back(&ps);
    }
  }
  if (w.batch.empty()) return;
  ++w.delivery_batches;
  w.deliveries += w.batch.size();
  std::sort(w.batch.begin(), w.batch.end(),
            [](const PendingSend* a, const PendingSend* b) {
              return a->g < b->g;
            });
  for (PendingSend* ps : w.batch)
    ps->deliver_t = w.network.finish_remote(ps->d);

  // Bucket by destination LP, preserving merged order within each
  // bucket (a counting sort over the already-sorted batch).
  const std::size_t nlp = w.shards.size();
  obs::Registry& reg = obs::Registry::global();
  w.dst_off.assign(nlp + 1, 0);
  for (const PendingSend* ps : w.batch)
    ++w.dst_off[static_cast<std::size_t>(ps->dst_lp) + 1];
  for (std::size_t lp = 0; lp < nlp; ++lp) {
    const std::uint32_t c = w.dst_off[lp + 1];
    if (c > 0) {
      w.deliveries_in[lp] += c;
      reg.observe(w.batch_hist, c);
    }
    w.dst_off[lp + 1] += w.dst_off[lp];
  }
  w.dst_order.resize(w.batch.size());
  w.dst_cursor.assign(w.dst_off.begin(), w.dst_off.end() - 1);
  for (PendingSend* ps : w.batch)
    w.dst_order[w.dst_cursor[static_cast<std::size_t>(ps->dst_lp)]++] = ps;

  // Per-destination application: each task owns its LP's event queue
  // and envelope pool exclusively, and applies that LP's deliveries in
  // merged order — the per-queue push sequence (and so the envelope
  // reuse pattern) is exactly the serial flush's, at any worker count.
  ParWorld* wp = &w;
  const int workers = pool.workers();
  pool.run([wp, workers](int worker) {
    const std::size_t n = wp->shards.size();
    for (std::size_t lp = static_cast<std::size_t>(worker); lp < n;
         lp += static_cast<std::size_t>(workers)) {
      Shard& ds = wp->shards[lp];
      const std::uint32_t b = wp->dst_off[lp];
      const std::uint32_t e = wp->dst_off[lp + 1];
      for (std::uint32_t i = b; i < e; ++i) {
        PendingSend* ps = wp->dst_order[i];
        detail::Envelope* env = ds.pool.acquire();
        env->src = ps->src_rank;
        env->src_node = ps->src_node;
        env->tag = ps->tag;
        env->count = ps->count;
        env->dtype = ps->dtype;
        env->phantom = ps->phantom;
        env->payload = std::move(ps->payload);
        const int dst = ps->dst_rank;
        // The delivery's provenance is the serial push the sender
        // deferred: (sending segment's global position, ordinal 0).
        ds.sim.schedule_at_tagged(
            ps->deliver_t, [wp, dst, env] { deliver(wp, dst, env); },
            static_cast<std::int64_t>(ps->g), 0);
      }
    }
  });
  for (Shard& s : w.shards) s.pending.clear();
  w.batch.clear();
}

void schedule_barrier_wake(ParWorld& w, int rank, double t,
                           std::int64_t pusher, std::uint32_t ordinal) {
  ParWorld* wp = &w;
  w.shard_of_rank(rank).sim.schedule_at_tagged(
      t,
      [wp, rank] {
        wp->barrier_wqs[static_cast<std::size_t>(rank)]->notify_one();
      },
      pusher, ordinal);
}

/// Complete a hardware barrier once every rank has arrived: release all
/// at t_last + hw, waking the last-arriving rank first (in the serial
/// engine its own sleep expires before the rendezvous queue's FIFO
/// wake-ups are issued), then the rest in arrival order.
void apply_barrier(ParWorld& w, const std::vector<des::Simulator*>& lps) {
  const double hw = w.config->hw_barrier_latency_s;
  if (hw <= 0.0 || w.nranks == 1) return;
  // This window's new arrivals carry a log_idx into a log that is about
  // to be reset — pin down their global positions now, whether or not
  // the barrier completes this flush.
  std::size_t total = 0;
  for (Shard& s : w.shards) {
    for (BarrierArrival& a : s.barrier_arrivals) {
      if (!a.resolved) {
        a.g = lps[static_cast<std::size_t>(a.lp)]->window_gseq()[a.log_idx];
        a.resolved = true;
      }
    }
    total += s.barrier_arrivals.size();
  }
  if (static_cast<int>(total) < w.nranks) return;
  HPCX_ASSERT(static_cast<int>(total) == w.nranks);

  std::vector<BarrierArrival> arrivals;
  arrivals.reserve(total);
  for (Shard& s : w.shards) {
    arrivals.insert(arrivals.end(), s.barrier_arrivals.begin(),
                    s.barrier_arrivals.end());
    s.barrier_arrivals.clear();
  }
  // Arrival order = global sequence order of the arriving fiber
  // segments (the merged order already sorts by time, then by serial
  // push order within ties).
  std::sort(arrivals.begin(), arrivals.end(),
            [](const BarrierArrival& a, const BarrierArrival& b) {
              return a.g < b.g;
            });
  const BarrierArrival& last = arrivals.back();
  const double t_release = last.t + hw;
  // In the serial engine the last arrival's own sleep(hw) pushes its
  // resume first, then its post-sleep segment issues the rendezvous
  // queue's FIFO notify_ones — all at t_release, all pushed by the last
  // arrival's segment. Emulate those pushes with the last arriver's
  // global position and consecutive ordinals starting at the one its
  // segment had reached. (If an unrelated event of the same LP landed
  // at exactly t_release and was pushed by a later segment, it would
  // interleave differently than in the serial engine; that requires an
  // exact double collision with t_last + hw from an independent
  // expression, which no modeled path produces.)
  const std::int64_t last_g = static_cast<std::int64_t>(last.g);
  schedule_barrier_wake(w, last.rank, t_release, last_g, last.ordinal);
  std::uint32_t ord = last.ordinal + 1;
  for (const BarrierArrival& a : arrivals) {
    if (a.rank == last.rank) continue;
    schedule_barrier_wake(w, a.rank, t_release, last_g, ord++);
  }
}

void flush(ParWorld& w, des::WindowOrder& order,
           const std::vector<des::Simulator*>& lps, des::WorkerPool& pool) {
  const double m0 = wall_now();
  order.merge(lps, &pool);
  w.merge_wall_s += wall_now() - m0;
  const std::vector<std::uint32_t>& segs = order.last_segment_events();
  if (!segs.empty()) {
    obs::Registry& reg = obs::Registry::global();
    w.merge_segments += segs.size();
    for (const std::uint32_t sz : segs) {
      reg.observe(w.seg_hist, sz);
      if (sz > w.merge_seg_max) w.merge_seg_max = sz;
    }
  }
  // The merge marked every LP's window resolvable, so deliveries and
  // barrier wakes pushed below sort correctly against still-pending
  // window-local tags (the queues resolve those lazily through the
  // epoch tables — no per-window rewrite of pending entries).
  apply_pending_sends(w, lps, pool);
  apply_barrier(w, lps);
  for (des::Simulator* lp : lps) lp->commit_order_window();
}

}  // namespace

namespace detail {

std::optional<SimRunResult> run_parallel(const mach::MachineConfig& machine,
                                         int nranks, const RankFn& fn,
                                         const SimRunOptions& options) {
  topo::Graph graph = machine.build_topology(machine.nodes_for(nranks));
  topo::Partition part = topo::partition_hosts(graph, options.sim_lps);
  if (part.num_lps() < 2) return std::nullopt;

  const double hw = machine.hw_barrier_latency_s;
  ParWorld world(machine, nranks, std::move(graph), std::move(part));
  double lookahead = world.network.min_link_latency_s();
  if (hw > 0.0) lookahead = std::min(lookahead, hw);
  if (!(lookahead > 0.0) || !std::isfinite(lookahead)) return std::nullopt;
  // Shave one part in 1e9: deferred deliveries recompute the serial
  // engine's float expressions, which can round an ulp below
  // t_walk + min-latency. A marginally smaller window is always safe
  // (window boundaries never affect results); an optimistic one would
  // trip schedule_at's past-time assertion.
  lookahead *= 1.0 - 1e-9;

  trace::Recorder* recorder = options.recorder;
  if (recorder) {
    recorder->set_virtual_time(true);
    world.network.enable_link_sampling(options.link_sample_interval_s);
  }
  for (Shard& s : world.shards) s.sim.enable_order_log(true);
  for (int r = 0; r < nranks; ++r) {
    Shard& shard = world.shard_of_rank(r);
    // The serial engine spawns ranks in rank order before running, so
    // rank r's initial resume occupies pre-run pseudo position r.
    shard.sim.set_next_push_tag(static_cast<std::int64_t>(r), 0);
    shard.sim.spawn(
        [&world, &fn, recorder, r] {
          Shard& s = world.shard_of_rank(r);
          PSimComm comm(world, r);
          if (recorder) comm.set_trace(&recorder->rank(r));
          const double t0 = s.sim.now();
          fn(comm);
          world.ranks[static_cast<std::size_t>(r)].finish_time = s.sim.now();
          if (recorder)
            recorder->rank(r).counters().elapsed_s += s.sim.now() - t0;
        },
        options.fiber_stack_bytes);
  }

  std::vector<des::Simulator*> lps;
  lps.reserve(world.shards.size());
  for (Shard& s : world.shards) lps.push_back(&s.sim);
  des::WindowOrder order(
      static_cast<std::uint64_t>(nranks),
      static_cast<std::uint32_t>(std::max(options.sim_merge_min_events, 0)));
  des::ConservativeStats cs;
  des::run_conservative(
      lps,
      [&world, &order, &lps](des::WorkerPool& pool) {
        flush(world, order, lps, pool);
      },
      options.sim_workers, lookahead, &cs);

  trace::EngineStats es;
  es.workers = cs.workers;
  es.windows = cs.windows;
  es.lookahead_limited = cs.lookahead_limited;
  es.work_limited = cs.work_limited;
  es.delivery_batches = world.delivery_batches;
  es.deliveries = world.deliveries;
  es.merge_segments = world.merge_segments;
  es.merge_seg_max = world.merge_seg_max;
  es.total_wall_s = cs.total_wall_s;
  es.flush_wall_s = cs.flush_wall_s;
  es.merge_wall_s = world.merge_wall_s;
  es.window_wall_s = cs.window_wall_s;
  es.stall_wall_s = cs.stall_wall_s;
  es.lps.resize(cs.lps.size());
  for (std::size_t i = 0; i < cs.lps.size(); ++i) {
    es.lps[i].windows = cs.lps[i].windows;
    es.lps[i].idle_windows = cs.lps[i].idle_windows;
    es.lps[i].events = cs.lps[i].events;
    es.lps[i].deliveries_in = world.deliveries_in[i];
    es.lps[i].busy_wall_s = cs.lps[i].busy_wall_s;
  }
  for (const int lp : world.lp_of_rank)
    ++es.lps[static_cast<std::size_t>(lp)].ranks;

  {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter("hpcx_pdes_runs_total",
                        "simulated runs completed (parallel engine)"),
            1);
    reg.add(reg.counter("hpcx_pdes_windows_total",
                        "conservative synchronization windows run"),
            es.windows);
    reg.add(reg.counter("hpcx_pdes_windows_lookahead_limited_total",
                        "windows bounded by the lookahead"),
            es.lookahead_limited);
    reg.add(reg.counter("hpcx_pdes_windows_work_limited_total",
                        "windows where the event queues went dry"),
            es.work_limited);
    reg.add(reg.counter("hpcx_pdes_delivery_batches_total",
                        "flushes that applied at least one cross-LP send"),
            es.delivery_batches);
    reg.add(reg.counter("hpcx_pdes_deliveries_total",
                        "cross-LP sends applied by flushes"),
            es.deliveries);
    reg.add(reg.counter("hpcx_pdes_merge_segments_total",
                        "time-disjoint segments merged by the order merge"),
            es.merge_segments);
    const obs::MetricId stall = reg.counter(
        "hpcx_pdes_stall_ns", "worker-nanoseconds idle at window barriers");
    reg.add(stall, static_cast<std::uint64_t>(es.stall_wall_s * 1e9));
    const obs::MetricId merge_ns = reg.counter(
        "hpcx_pdes_order_merge_ns", "wall time inside the order-log merge");
    reg.add(merge_ns, static_cast<std::uint64_t>(es.merge_wall_s * 1e9));
    const obs::MetricId flush_ns = reg.counter(
        "hpcx_pdes_flush_ns", "wall time inside the cross-LP flush");
    reg.add(flush_ns, static_cast<std::uint64_t>(es.flush_wall_s * 1e9));
    const obs::MetricId wevents = reg.histogram(
        "hpcx_pdes_window_events", "events one LP ran in one window");
    std::uint64_t events_total = 0;
    for (const trace::LpStats& lp : es.lps) {
      events_total += lp.events;
      if (lp.windows > 0) reg.observe(wevents, lp.events / lp.windows);
    }
    reg.add(reg.counter("hpcx_pdes_events_total",
                        "events executed by the parallel engine"),
            events_total);
  }
  if (recorder) recorder->set_engine_stats(std::move(es));

  if (recorder) fold_link_tracks(*recorder, world.network);
  return build_sim_result(world.network, world.ranks);
}

}  // namespace detail

}  // namespace hpcx::xmpi
