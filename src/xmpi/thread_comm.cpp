#include "xmpi/thread_comm.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "obs/registry.hpp"
#include "trace/trace.hpp"

namespace hpcx::xmpi {

namespace {

using std::memory_order_acquire;
using std::memory_order_relaxed;
using std::memory_order_release;

// How long a parked waiter sleeps per tick. Ticked waits make every
// park self-healing: a missed notify (the wake-up protocol is lock-free
// on the fast path) or a world abort is observed at the next tick, so
// no waiter registration is needed anywhere.
constexpr auto kParkTick = std::chrono::milliseconds(1);

/// Recycled eager payload storage. Blocks live in the channel's pool:
/// the sender pops one, the receiver pushes it back after copy-out, so
/// a steady p2p stream allocates only on its first few messages.
struct Block {
  std::unique_ptr<unsigned char[]> data;
  std::size_t cap = 0;
};

/// Handshake between a rendezvous sender (parked in send/wait) and the
/// receiver that will copy straight out of its buffer.
struct RdvState {
  std::atomic<bool> done{false};
  std::atomic<bool> tx_parked{false};
  std::mutex m;
  std::condition_variable cv;
};

struct Envelope {
  int tag = 0;
  std::size_t count = 0;
  DType dtype = DType::kByte;
  bool phantom = false;
  bool rendezvous = false;
  Block block;                     // eager payload (empty for rdv/phantom)
  const void* rdv_data = nullptr;  // sender's buffer (rendezvous only)
  std::shared_ptr<RdvState> rdv;
};

/// Posted-receive handshake states (Channel::posted_state).
enum : int {
  kEmpty = 0,    // no receive posted
  kPosted,       // receiver published posted_tag/posted_buf and is waiting
  kClaimed,      // sender won the CAS and is inspecting the post
  kDone,         // sender delivered straight into the posted buffer
  kPushed,       // sender enqueued instead (tag/shape mismatch): rescan
};

/// One direction of one rank pair (SPSC: exactly one producer thread —
/// the source rank — and one consumer — the destination). The posted-
/// receive path is lock-free; the queue path takes the per-channel
/// mutex, never any global lock.
struct alignas(64) Channel {
  // -- lock-free posted-receive handshake --
  std::atomic<int> posted_state{kEmpty};
  int posted_tag = 0;   // stable while kPosted/kClaimed
  MBuf posted_buf{};    // stable while kPosted/kClaimed
  // -- producer-consumer queue --
  std::atomic<std::uint64_t> seq{0};     // bumped on every enqueue
  std::atomic<std::uint32_t> q_count{0}; // envelopes in q (not deferred)
  std::mutex m;
  std::deque<Envelope> q;
  // -- receiver parking --
  std::atomic<bool> rx_parked{false};
  std::condition_variable cv;
  // -- receiver-private: arrived-but-unmatched, in arrival order, so
  //    (src, tag) FIFO holds across tag-selective receives --
  std::deque<Envelope> deferred;
  // -- eager block recycling --
  std::mutex pool_m;
  std::vector<Block> pool;
};

struct World {
  World(int nranks, TransportTuning tuning)
      : nranks(nranks),
        tuning(tuning),
        channels(static_cast<std::size_t>(nranks) *
                 static_cast<std::size_t>(nranks)),
        epoch(std::chrono::steady_clock::now()) {
    const unsigned hw = std::thread::hardware_concurrency();
    oversubscribed = hw != 0 && hw < static_cast<unsigned>(nranks) + 1;
    if (tuning.spin_iters > 0)
      spin_iters = tuning.spin_iters;
    else
      spin_iters = oversubscribed ? 512 : 16384;
  }

  Channel& channel(int src, int dst) {
    return channels[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(nranks) +
                    static_cast<std::size_t>(dst)];
  }

  /// First failure wins; later failures keep their own exception but do
  /// not change which rank the world blames.
  void abort(int rank) {
    int expected = -1;
    failed_rank.compare_exchange_strong(expected, rank);
    aborted.store(true, memory_order_release);
  }

  int nranks;
  TransportTuning tuning;
  bool oversubscribed = false;
  int spin_iters = 0;
  std::vector<Channel> channels;  // Channel is not movable; sized once
  std::chrono::steady_clock::time_point epoch;
  std::atomic<bool> aborted{false};
  std::atomic<int> failed_rank{-1};

  // Transport totals for the obs registry, folded in once per rank when
  // its comm goes out of scope (never touched on the send hot path).
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> eager_sends{0};
  std::atomic<std::uint64_t> rendezvous_sends{0};
};

// Spin-wait convention (wait_posted / finish_send): on an oversubscribed
// host the peer cannot make progress unless we give up the core, so the
// waiter yields every iteration; otherwise it burns 256 polls between
// yields.

[[noreturn]] void throw_peer_failed(const World& w) {
  throw CommError("peer rank " + std::to_string(w.failed_rank.load()) +
                  " failed");
}

/// Mismatch diagnostics name the offending envelope; the caller leaves
/// the message queued so a corrected receive can still match it.
[[noreturn]] void throw_mismatch(const Envelope& env, int src,
                                 const MBuf& buf) {
  if (env.count != buf.count || env.dtype != buf.dtype)
    throw CommError(
        "recv size/type mismatch from rank " + std::to_string(src) +
        " tag " + std::to_string(env.tag) + ": expected " +
        std::to_string(buf.count) + " x " + std::string(to_string(buf.dtype)) +
        ", got " + std::to_string(env.count) + " x " +
        std::string(to_string(env.dtype)) + " (message left queued)");
  throw CommError("phantom/real payload mismatch from rank " +
                  std::to_string(src) + " tag " + std::to_string(env.tag) +
                  " (message left queued)");
}

/// memcpy with an inline fast path for the word-sized payloads that
/// dominate latency-bound traffic (glibc's runtime-size dispatch costs
/// more than the copy itself at 8 bytes).
inline void copy_bytes(void* dst, const void* src, std::size_t n) {
  if (n == 8) {
    std::memcpy(dst, src, 8);  // two movs after inlining
    return;
  }
  std::memcpy(dst, src, n);
}

bool matches_shape(const Envelope& env, const MBuf& buf) {
  if (env.count != buf.count || env.dtype != buf.dtype) return false;
  return buf.count == 0 || env.phantom == buf.phantom();
}

/// Accumulates the scope's duration into the rank's wait_s bucket when a
/// trace sink is attached (no clock reads otherwise). RAII so blocked
/// paths that exit by throwing — a poisoned world — still get charged.
class WaitTimer {
 public:
  explicit WaitTimer(trace::RankTrace* t) : t_(t) {
    if (t_) t0_ = std::chrono::steady_clock::now();
  }
  ~WaitTimer() {
    if (t_)
      t_->counters().wait_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
              .count();
  }
  WaitTimer(const WaitTimer&) = delete;
  WaitTimer& operator=(const WaitTimer&) = delete;

 private:
  trace::RankTrace* t_;
  std::chrono::steady_clock::time_point t0_;
};

class ThreadComm final : public Comm {
 public:
  ThreadComm(World& world, int rank) : world_(&world), rank_(rank) {
    set_peer_limit(world.nranks);
  }

  ~ThreadComm() override {
    // Fold this rank's plain tallies into the world totals — exception
    // exits included, so an aborted run still reports what it moved.
    world_->sends.fetch_add(sends_, memory_order_relaxed);
    world_->bytes_sent.fetch_add(bytes_sent_, memory_order_relaxed);
    world_->eager_sends.fetch_add(eager_sends_, memory_order_relaxed);
    world_->rendezvous_sends.fetch_add(rendezvous_sends_,
                                       memory_order_relaxed);
  }

  int rank() const override { return rank_; }
  int size() const override { return world_->nranks; }

  double now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         world_->epoch)
        .count();
  }

 protected:
  void compute_impl(double seconds) override {
    // Real kernels do real work; this hook only matters when modelled
    // kernels run on the real backend (hybrid experiments) — honour the
    // charge with a sleep so relative timings stay meaningful.
    if (seconds > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  void send_impl(int dst, int tag, CBuf buf) override {
    std::shared_ptr<RdvState> rdv = start_send(dst, tag, buf);
    if (rdv) finish_send(*rdv);
  }

  SendRequest isend_impl(int dst, int tag, CBuf buf) override {
    return make_request(start_send(dst, tag, buf));
  }

  void wait_impl(SendRequest& req) override {
    finish_send(*std::static_pointer_cast<RdvState>(request_state(req)));
  }

  void recv_impl(int src, int tag, MBuf buf) override {
    Channel& ch = world_->channel(src, rank_);

    // 1. A matching message may already sit in the deferred list …
    if (!ch.deferred.empty() && consume_deferred(ch, src, tag, buf)) return;
    // 2. … or in the queue.
    if (ch.q_count.load(memory_order_acquire) != 0) {
      drain(ch);
      if (consume_deferred(ch, src, tag, buf)) return;
    }

    // 3. Post the receive so the sender can deliver straight into `buf`
    //    (zero staging copy), and wait: spin first, then park.
    for (;;) {
      const std::uint64_t seen = ch.seq.load(memory_order_acquire);
      ch.posted_tag = tag;
      ch.posted_buf = buf;
      ch.posted_state.store(kPosted, memory_order_release);

      int outcome = wait_posted(ch, seen);
      if (outcome == kDone) {
        ch.posted_state.store(kEmpty, memory_order_relaxed);
        if (auto* t = trace())
          if (!buf.phantom() && buf.count > 0) ++t->counters().payload_copies;
        return;
      }
      // kPushed, or new traffic on the queue: rescan. unpost() already
      // resolved any in-flight claim.
      drain(ch);
      if (consume_deferred(ch, src, tag, buf)) return;
      if (world_->aborted.load(memory_order_acquire)) throw_peer_failed(*world_);
    }
  }

 private:
  /// Payload copy charged to the rank's copy_s bucket when traced.
  /// (payload_copies stays counted at its historical sites — receiver
  /// side for direct deliveries — so only the *time* is attributed to
  /// the thread that physically moves the bytes.)
  void charged_copy(void* dst, const void* src, std::size_t n) {
    trace::RankTrace* t = trace();
    if (t == nullptr) {
      copy_bytes(dst, src, n);
      return;
    }
    const auto c0 = std::chrono::steady_clock::now();
    copy_bytes(dst, src, n);
    t->counters().copy_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
  }

  /// Enqueue or directly deliver a message on channel (rank_ -> dst).
  /// Returns the rendezvous handshake to complete, or nullptr when the
  /// send already completed (eager / direct delivery).
  std::shared_ptr<RdvState> start_send(int dst, int tag, CBuf buf) {
    World& w = *world_;
    if (w.aborted.load(memory_order_acquire)) throw_peer_failed(w);
    Channel& ch = w.channel(rank_, dst);
    const std::size_t bytes = buf.bytes();

    ++sends_;
    bytes_sent_ += bytes;
    if (bytes <= w.tuning.eager_max_bytes || buf.phantom())
      ++eager_sends_;
    else
      ++rendezvous_sends_;

    if (trace::RankTrace* t = trace()) {
      trace::Counters& c = t->counters();
      const std::size_t cls = trace::size_class(bytes);
      if (bytes <= w.tuning.eager_max_bytes || buf.phantom()) {
        ++c.eager_sends;
        ++c.eager_size_hist[cls];
      } else {
        ++c.rendezvous_sends;
        ++c.rendezvous_size_hist[cls];
      }
    }

    // Fast path: the receiver posted a matching buffer and the channel
    // queue is empty (we are the only producer, so a zero q_count
    // guarantees no earlier message can be overtaken) — deliver with a
    // single copy, no lock, no queue traffic.
    if (ch.q_count.load(memory_order_relaxed) == 0 &&
        ch.posted_state.load(memory_order_acquire) == kPosted) {
      int expected = kPosted;
      if (ch.posted_state.compare_exchange_strong(expected, kClaimed,
                                                  std::memory_order_acq_rel)) {
        const MBuf& pb = ch.posted_buf;
        if (ch.posted_tag == tag && pb.count == buf.count &&
            pb.dtype == buf.dtype &&
            (buf.count == 0 || pb.phantom() == buf.phantom())) {
          if (!buf.phantom() && bytes > 0)
            charged_copy(pb.data, buf.data, bytes);
          ch.posted_state.store(kDone, memory_order_release);
          wake_receiver(ch);
          return nullptr;
        }
        // Different tag or mismatched shape: fall back to the queue and
        // tell the receiver to rescan (it reports mismatches itself,
        // with the envelope kept intact).
        Envelope env = make_envelope(ch, tag, buf, is_eager(dst, buf, bytes));
        std::shared_ptr<RdvState> rdv = env.rdv;
        enqueue(ch, std::move(env));
        ch.posted_state.store(kPushed, memory_order_release);
        wake_receiver(ch);
        return rdv;
      }
    }

    Envelope env = make_envelope(ch, tag, buf, is_eager(dst, buf, bytes));
    std::shared_ptr<RdvState> rdv = env.rdv;
    enqueue(ch, std::move(env));
    wake_receiver(ch);
    return rdv;
  }

  /// Eager = staged copy (no parking); a self-send must always be eager
  /// because the one thread cannot both park and deliver.
  bool is_eager(int dst, CBuf buf, std::size_t bytes) const {
    return bytes <= world_->tuning.eager_max_bytes || buf.phantom() ||
           dst == rank_;
  }

  Envelope make_envelope(Channel& ch, int tag, CBuf buf, bool eager) {
    Envelope env;
    env.tag = tag;
    env.count = buf.count;
    env.dtype = buf.dtype;
    env.phantom = buf.phantom();
    const std::size_t bytes = buf.bytes();
    if (eager) {
      if (!buf.phantom() && bytes > 0) {
        env.block = acquire_block(ch, bytes);
        charged_copy(env.block.data.get(), buf.data, bytes);
        if (auto* t = trace()) ++t->counters().payload_copies;
      }
    } else {
      env.rendezvous = true;
      env.rdv_data = buf.data;
      env.rdv = std::make_shared<RdvState>();
    }
    return env;
  }

  void enqueue(Channel& ch, Envelope env) {
    std::lock_guard<std::mutex> lock(ch.m);
    ch.q.push_back(std::move(env));
    ch.q_count.fetch_add(1, memory_order_relaxed);
    ch.seq.fetch_add(1, memory_order_release);
  }

  void wake_receiver(Channel& ch) {
    if (!ch.rx_parked.load(memory_order_acquire)) return;
    // Empty critical section: serialise with the receiver's predicate
    // re-check so the notify cannot slip between check and wait. (A
    // miss would only cost one kParkTick anyway.)
    { std::lock_guard<std::mutex> lock(ch.m); }
    ch.cv.notify_one();
  }

  /// Sender side of the rendezvous: spin, then park, until the receiver
  /// copied the payload — or the world died.
  void finish_send(RdvState& rdv) {
    World& w = *world_;
    WaitTimer timer(trace());  // charges wait_s even on a poisoned throw
    const int spin = w.spin_iters;
    const bool oversub = w.oversubscribed;
    for (int i = 0; i < spin; ++i) {
      if (rdv.done.load(memory_order_acquire)) return;
      if (oversub || (i & 255) == 255) std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(rdv.m);
    for (;;) {
      if (rdv.done.load(memory_order_acquire)) return;
      if (w.aborted.load(memory_order_acquire)) throw_peer_failed(w);
      rdv.tx_parked.store(true, memory_order_release);
      rdv.cv.wait_for(lock, kParkTick);
      rdv.tx_parked.store(false, memory_order_relaxed);
    }
  }

  /// Move everything from the queue into the receiver-private deferred
  /// list (arrival order preserved).
  void drain(Channel& ch) {
    std::lock_guard<std::mutex> lock(ch.m);
    while (!ch.q.empty()) {
      ch.deferred.push_back(std::move(ch.q.front()));
      ch.q.pop_front();
      ch.q_count.fetch_sub(1, memory_order_relaxed);
    }
  }

  /// Find the oldest deferred message with this tag; validate *before*
  /// removing it, so a mismatch leaves the message intact and the error
  /// can name exactly what is queued.
  bool consume_deferred(Channel& ch, int src, int tag, MBuf buf) {
    for (auto it = ch.deferred.begin(); it != ch.deferred.end(); ++it) {
      if (it->tag != tag) continue;
      if (!matches_shape(*it, buf)) throw_mismatch(*it, src, buf);
      Envelope env = std::move(*it);
      ch.deferred.erase(it);
      deliver(ch, env, buf);
      return true;
    }
    return false;
  }

  void deliver(Channel& ch, Envelope& env, MBuf buf) {
    const std::size_t bytes = buf.bytes();
    if (env.rendezvous) {
      if (!buf.phantom() && bytes > 0) {
        charged_copy(buf.data, env.rdv_data, bytes);
        if (auto* t = trace()) ++t->counters().payload_copies;
      }
      env.rdv->done.store(true, memory_order_release);
      if (env.rdv->tx_parked.load(memory_order_acquire)) {
        { std::lock_guard<std::mutex> lock(env.rdv->m); }
        env.rdv->cv.notify_one();
      }
      return;
    }
    if (!buf.phantom() && bytes > 0) {
      charged_copy(buf.data, env.block.data.get(), bytes);
      if (auto* t = trace()) ++t->counters().payload_copies;
      release_block(ch, std::move(env.block));
    }
  }

  Block acquire_block(Channel& ch, std::size_t bytes) {
    {
      std::lock_guard<std::mutex> lock(ch.pool_m);
      if (!ch.pool.empty()) {
        Block b = std::move(ch.pool.back());
        ch.pool.pop_back();
        if (b.cap >= bytes) return b;
      }
    }
    Block b;
    b.data = std::make_unique<unsigned char[]>(bytes);
    b.cap = bytes;
    return b;
  }

  void release_block(Channel& ch, Block b) {
    std::lock_guard<std::mutex> lock(ch.pool_m);
    if (ch.pool.size() < 8) ch.pool.push_back(std::move(b));
  }

  /// Wait while our receive is posted. Returns kDone when the sender
  /// delivered directly, kPushed/kEmpty when the post was retracted and
  /// the queue should be rescanned.
  int wait_posted(Channel& ch, std::uint64_t seen) {
    World& w = *world_;
    WaitTimer timer(trace());
    const int spin = w.spin_iters;
    const bool oversub = w.oversubscribed;
    for (int i = 0;; ++i) {
      const int s = ch.posted_state.load(memory_order_acquire);
      if (s == kDone) return kDone;
      if (s == kPushed) return unpost(ch);
      if (ch.seq.load(memory_order_acquire) != seen) return unpost(ch);
      if (i < spin) {
        if (oversub || (i & 255) == 255) std::this_thread::yield();
        continue;
      }
      if (w.aborted.load(memory_order_acquire)) {
        const int r = unpost(ch);
        if (r == kDone) return kDone;  // delivery raced the abort
        return r;                      // rescan; recv_impl rethrows
      }
      // Park. The re-check inside the lock pairs with wake_receiver().
      ch.rx_parked.store(true, memory_order_release);
      {
        std::unique_lock<std::mutex> lock(ch.m);
        if (ch.posted_state.load(memory_order_acquire) == kPosted &&
            ch.seq.load(memory_order_acquire) == seen)
          ch.cv.wait_for(lock, kParkTick);
      }
      ch.rx_parked.store(false, memory_order_relaxed);
    }
  }

  /// Retract a posted receive. If the sender is mid-claim, wait for its
  /// verdict (a few instructions at most).
  int unpost(Channel& ch) {
    int expected = kPosted;
    if (ch.posted_state.compare_exchange_strong(expected, kEmpty,
                                                std::memory_order_acq_rel))
      return kEmpty;
    for (;;) {
      const int s = ch.posted_state.load(memory_order_acquire);
      if (s == kDone) return kDone;
      if (s == kPushed) {
        ch.posted_state.store(kEmpty, memory_order_relaxed);
        return kPushed;
      }
      std::this_thread::yield();
    }
  }

  World* world_;
  int rank_;
  // Per-rank transport tallies; plain integers because only the owning
  // thread writes (see ~ThreadComm for the fold).
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rendezvous_sends_ = 0;
};

}  // namespace

ThreadRunResult run_on_threads(int nranks, const RankFn& fn,
                               ThreadRunOptions options) {
  HPCX_REQUIRE(nranks >= 1, "need at least one rank");
  trace::Recorder* recorder = options.recorder;
  if (recorder) recorder->set_virtual_time(false);
  World world(nranks, options.transport);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  const auto start = std::chrono::steady_clock::now();
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, recorder, r] {
      try {
        ThreadComm comm(world, r);
        if (recorder) comm.set_trace(&recorder->rank(r));
        const double t0 = comm.now();
        fn(comm);
        if (recorder)
          recorder->rank(r).counters().elapsed_s += comm.now() - t0;
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Poison the world: ranks blocked on this one throw "peer rank
        // N failed" instead of hanging, so the join below terminates.
        world.abort(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Blame the first failure: later errors are usually just the ripple
  // ("peer rank N failed") of the original one.
  const int failed = world.failed_rank.load();
  if (failed >= 0 && errors[static_cast<std::size_t>(failed)])
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  ThreadRunResult result;
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter("hpcx_threads_runs_total",
                        "real-thread transport runs completed"),
            1);
    reg.add(reg.counter("hpcx_threads_sends_total",
                        "messages sent over the shared-memory transport"),
            world.sends.load(memory_order_relaxed));
    reg.add(reg.counter("hpcx_threads_bytes_sent_total",
                        "payload bytes sent over the shared-memory "
                        "transport"),
            world.bytes_sent.load(memory_order_relaxed));
    reg.add(reg.counter("hpcx_threads_eager_sends_total",
                        "sends that took the eager (staged-copy) path"),
            world.eager_sends.load(memory_order_relaxed));
    reg.add(reg.counter("hpcx_threads_rendezvous_sends_total",
                        "sends that took the rendezvous protocol"),
            world.rendezvous_sends.load(memory_order_relaxed));
  }
  return result;
}

}  // namespace hpcx::xmpi
