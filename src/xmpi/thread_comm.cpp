#include "xmpi/thread_comm.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "trace/trace.hpp"

namespace hpcx::xmpi {

namespace {

struct Envelope {
  int src = -1;
  int tag = 0;
  std::size_t count = 0;
  DType dtype = DType::kByte;
  bool phantom = false;
  std::vector<unsigned char> payload;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Envelope> queue;
};

struct World {
  explicit World(int nranks)
      : nranks(nranks),
        mailboxes(static_cast<std::size_t>(nranks)),
        epoch(std::chrono::steady_clock::now()) {}

  int nranks;
  std::vector<Mailbox> mailboxes;  // Mailbox is not movable; sized once
  std::chrono::steady_clock::time_point epoch;
};

void validate_match(const Envelope& env, const MBuf& buf) {
  if (env.count != buf.count || env.dtype != buf.dtype)
    throw CommError("recv size/type mismatch: expected " +
                    std::to_string(buf.count) + " x " +
                    std::string(to_string(buf.dtype)) + ", got " +
                    std::to_string(env.count) + " x " +
                    std::string(to_string(env.dtype)));
  if (buf.count > 0 && env.phantom != buf.phantom())
    throw CommError("phantom/real payload mismatch between send and recv");
}

class ThreadComm final : public Comm {
 public:
  ThreadComm(World& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return world_->nranks; }

  double now() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         world_->epoch)
        .count();
  }

 protected:
  void compute_impl(double seconds) override {
    // Real kernels do real work; this hook only matters when modelled
    // kernels run on the real backend (hybrid experiments) — honour the
    // charge with a sleep so relative timings stay meaningful.
    if (seconds > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  void send_impl(int dst, int tag, CBuf buf) override {
    Envelope env;
    env.src = rank_;
    env.tag = tag;
    env.count = buf.count;
    env.dtype = buf.dtype;
    env.phantom = buf.phantom();
    if (!buf.phantom() && buf.count > 0) {
      env.payload.resize(buf.bytes());
      std::memcpy(env.payload.data(), buf.data, buf.bytes());
    }
    Mailbox& mb = world_->mailboxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
      mb.queue.push_back(std::move(env));
    }
    mb.cv.notify_one();
  }

  void recv_impl(int src, int tag, MBuf buf) override {
    Mailbox& mb = world_->mailboxes[static_cast<std::size_t>(rank_)];
    std::unique_lock<std::mutex> lock(mb.mutex);
    for (;;) {
      for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          Envelope env = std::move(*it);
          mb.queue.erase(it);
          lock.unlock();
          validate_match(env, buf);
          if (!buf.phantom() && buf.count > 0)
            std::memcpy(buf.data, env.payload.data(), buf.bytes());
          return;
        }
      }
      mb.cv.wait(lock);
    }
  }

 private:
  World* world_;
  int rank_;
};

}  // namespace

ThreadRunResult run_on_threads(int nranks, const RankFn& fn,
                               ThreadRunOptions options) {
  HPCX_REQUIRE(nranks >= 1, "need at least one rank");
  trace::Recorder* recorder = options.recorder;
  if (recorder) recorder->set_virtual_time(false);
  World world(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  const auto start = std::chrono::steady_clock::now();
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, recorder, r] {
      try {
        ThreadComm comm(world, r);
        if (recorder) comm.set_trace(&recorder->rank(r));
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  ThreadRunResult result;
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return result;
}

}  // namespace hpcx::xmpi
