#include "xmpi/one_sided.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "core/error.hpp"

namespace hpcx::xmpi {

namespace {
// Windows consume tags at the top of the user tag range (documented in
// sub_comm.hpp: user tags < 2^20). Four tags per window: control header,
// control body, put payload, get reply.
constexpr int kWindowTagBase = 1 << 19;
constexpr int kTagsPerWindow = 4;

struct ControlHeader {
  std::uint64_t nputs = 0;
  std::uint64_t ngets = 0;
  std::uint64_t put_bytes = 0;
};
}  // namespace

Window::Window(Comm& comm, MBuf region, int window_id)
    : comm_(&comm),
      region_(region),
      base_tag_(kWindowTagBase + window_id * kTagsPerWindow) {
  HPCX_REQUIRE(window_id >= 1, "window_id must be >= 1");
  HPCX_REQUIRE(base_tag_ + kTagsPerWindow <= (1 << 20),
               "window_id exhausts the window tag space");
  // Window creation is collective (like MPI_Win_create).
  comm.barrier();
}

void Window::put(int target, std::size_t target_offset, CBuf data) {
  HPCX_REQUIRE(target >= 0 && target < comm_->size(),
               "put target out of range");
  PendingPut p;
  p.target = target;
  p.offset = target_offset;
  p.bytes = data.bytes();
  if (!data.phantom() && p.bytes > 0) {
    p.data.resize(p.bytes);
    std::memcpy(p.data.data(), data.data, p.bytes);
  }
  puts_.push_back(std::move(p));
}

void Window::get(int target, std::size_t target_offset, MBuf out) {
  HPCX_REQUIRE(target >= 0 && target < comm_->size(),
               "get target out of range");
  gets_.push_back(PendingGet{target, target_offset, out});
}

void Window::fence() {
  Comm& c = *comm_;
  const int n = c.size();
  const int me = c.rank();
  const bool phantom = region_.phantom();
  const int tag_header = base_tag_;
  const int tag_body = base_tag_ + 1;
  const int tag_payload = base_tag_ + 2;
  const int tag_reply = base_tag_ + 3;

  // Apply local accesses directly.
  auto apply_put = [&](std::size_t off, const unsigned char* src,
                       std::size_t bytes) {
    HPCX_REQUIRE(off + bytes <= region_.bytes(), "put outside the window");
    if (!phantom && src != nullptr)
      std::memcpy(static_cast<unsigned char*>(region_.data) + off, src,
                  bytes);
  };
  auto read_region = [&](std::size_t off, unsigned char* dst,
                         std::size_t bytes) {
    HPCX_REQUIRE(off + bytes <= region_.bytes(), "get outside the window");
    if (!phantom && dst != nullptr)
      std::memcpy(dst, static_cast<unsigned char*>(region_.data) + off,
                  bytes);
  };
  for (const PendingPut& p : puts_)
    if (p.target == me)
      apply_put(p.offset, p.data.empty() ? nullptr : p.data.data(), p.bytes);
  for (const PendingGet& g : gets_)
    if (g.target == me && !g.out.phantom())
      read_region(g.offset, static_cast<unsigned char*>(g.out.data),
                  g.out.bytes());

  // Send control + put payloads to every peer (rotation order). The
  // pattern is all-to-all — every rank sends before it receives — so
  // the sends are nonblocking; the staging buffers live in `outbound`
  // (a deque: elements never move) until the requests complete.
  struct Outbound {
    ControlHeader hdr;
    std::vector<std::uint64_t> body;  // [off, len] per put, then per get
    std::vector<unsigned char> blob;
  };
  std::deque<Outbound> outbound;
  std::vector<SendRequest> requests;
  for (int k = 1; k < n; ++k) {
    const int peer = (me + k) % n;
    Outbound& out = outbound.emplace_back();
    ControlHeader& hdr = out.hdr;
    for (const PendingPut& p : puts_) {
      if (p.target != peer) continue;
      ++hdr.nputs;
      hdr.put_bytes += p.bytes;
      out.body.push_back(p.offset);
      out.body.push_back(p.bytes);
      if (!phantom)
        out.blob.insert(out.blob.end(), p.data.begin(), p.data.end());
    }
    for (const PendingGet& g : gets_) {
      if (g.target != peer) continue;
      ++hdr.ngets;
      out.body.push_back(g.offset);
      out.body.push_back(g.out.bytes());
    }
    requests.push_back(c.isend(peer, tag_header,
                               CBuf{&hdr, sizeof(hdr) / 8, DType::kU64}));
    if (!out.body.empty())
      requests.push_back(c.isend(
          peer, tag_body, cbuf(std::span<const std::uint64_t>(out.body))));
    if (hdr.put_bytes > 0)
      requests.push_back(
          c.isend(peer, tag_payload,
                  phantom ? phantom_cbuf(hdr.put_bytes)
                          : cbuf_bytes(out.blob.data(), out.blob.size())));
  }

  // Receive from every peer: apply their puts, reply to their gets.
  for (int k = 1; k < n; ++k) {
    const int peer = (me - k + n) % n;
    ControlHeader hdr;
    c.recv(peer, tag_header, MBuf{&hdr, sizeof(hdr) / 8, DType::kU64});
    std::vector<std::uint64_t> body(2 * (hdr.nputs + hdr.ngets));
    if (!body.empty())
      c.recv(peer, tag_body, mbuf(std::span<std::uint64_t>(body)));
    std::vector<unsigned char> blob;
    if (hdr.put_bytes > 0) {
      if (phantom) {
        c.recv(peer, tag_payload, phantom_mbuf(hdr.put_bytes));
      } else {
        blob.resize(hdr.put_bytes);
        c.recv(peer, tag_payload, mbuf_bytes(blob.data(), blob.size()));
      }
    }
    std::size_t blob_off = 0;
    for (std::uint64_t i = 0; i < hdr.nputs; ++i) {
      const std::size_t off = body[2 * i];
      const std::size_t len = body[2 * i + 1];
      apply_put(off, phantom ? nullptr : blob.data() + blob_off, len);
      blob_off += len;
    }
    // Build and send one reply blob covering all of this peer's gets.
    std::size_t reply_bytes = 0;
    for (std::uint64_t i = 0; i < hdr.ngets; ++i)
      reply_bytes += body[2 * (hdr.nputs + i) + 1];
    if (hdr.ngets > 0) {
      Outbound& out = outbound.emplace_back();
      if (!phantom) {
        out.blob.resize(reply_bytes);
        std::size_t off = 0;
        for (std::uint64_t i = 0; i < hdr.ngets; ++i) {
          const std::size_t goff = body[2 * (hdr.nputs + i)];
          const std::size_t glen = body[2 * (hdr.nputs + i) + 1];
          read_region(goff, out.blob.data() + off, glen);
          off += glen;
        }
      }
      requests.push_back(
          c.isend(peer, tag_reply,
                  phantom ? phantom_cbuf(reply_bytes)
                          : cbuf_bytes(out.blob.data(), out.blob.size())));
    }
  }

  // Collect replies for my gets, per target, in issue order.
  for (int k = 1; k < n; ++k) {
    const int peer = (me + k) % n;
    std::size_t expect = 0;
    for (const PendingGet& g : gets_)
      if (g.target == peer) expect += g.out.bytes();
    if (expect == 0) continue;
    if (phantom) {
      c.recv(peer, tag_reply, phantom_mbuf(expect));
    } else {
      std::vector<unsigned char> reply(expect);
      c.recv(peer, tag_reply, mbuf_bytes(reply.data(), reply.size()));
      std::size_t off = 0;
      for (PendingGet& g : gets_) {
        if (g.target != peer) continue;
        if (!g.out.phantom())
          std::memcpy(g.out.data, reply.data() + off, g.out.bytes());
        off += g.out.bytes();
      }
    }
  }

  for (SendRequest& r : requests) c.wait(r);
  puts_.clear();
  gets_.clear();
  c.barrier();
}

}  // namespace hpcx::xmpi
