// Simulated-machine backend: every rank is a simulator fiber placed on a
// node of a modelled machine (block placement: consecutive ranks share a
// node, as the paper's runs do). Point-to-point traffic goes through the
// netsim network; time is virtual. The same RankFn that runs on threads
// runs here unmodified.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "xmpi/comm.hpp"

namespace hpcx::trace {
class Recorder;
}  // namespace hpcx::trace

namespace hpcx::obs {
struct CriticalPathReport;
}  // namespace hpcx::obs

namespace hpcx::xmpi {

/// One network link's traffic during a run (hotspot analysis).
struct LinkUsage {
  std::string from;      ///< vertex label, e.g. "h3" or "spine1"
  std::string to;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double busy_s = 0;
  double queued_s = 0;
};

struct SimRunResult {
  double makespan_s = 0.0;  ///< virtual time when the last rank finished
  std::uint64_t internode_messages = 0;
  std::uint64_t intranode_messages = 0;
  std::uint64_t internode_bytes = 0;
  /// The busiest links of the run, hottest first (up to 16).
  std::vector<LinkUsage> hottest_links;
};

struct SimRunOptions {
  std::size_t fiber_stack_bytes = 256 * 1024;
  /// When set, rank r records into recorder->rank(r) (the recorder must
  /// have been built with at least `nranks` ranks). Timestamps are
  /// virtual seconds. Network link utilisation is sampled and attached
  /// to the recorder as LinkTracks.
  trace::Recorder* recorder = nullptr;
  /// Minimum virtual time between two utilisation samples of the same
  /// link while a recorder is attached (0 = sample every traversal).
  double link_sample_interval_s = 0.0;
  /// Host worker threads for the parallel (multi-LP, conservative
  /// lookahead) engine. 1 = today's serial engine, byte for byte. Any
  /// value produces the same makespans: the parallel schedule is
  /// worker-count invariant.
  int sim_workers = 1;
  /// Logical-process count for the parallel engine (0 = one LP per
  /// topology leaf group). Setting this > 1 exercises the parallel
  /// engine even with sim_workers = 1.
  int sim_lps = 0;
  /// Per-segment size floor of the parallel order merge (0 = tuned
  /// default). Production runs leave this alone; tests lower it so
  /// small windows exercise the segmented-merge boundary search. Any
  /// value produces the same schedule — segmentation only re-buckets
  /// identical merge output.
  int sim_merge_min_events = 0;
  /// Record event predecessor edges and write the critical-path
  /// analysis into *critical_path (both must be set). Serial engine
  /// only: the parallel path is skipped for the run (the order log owns
  /// the provenance fields there). Off by default; the default path is
  /// bit-identical with this off.
  obs::CriticalPathReport* critical_path = nullptr;
};

/// Run `fn` on `nranks` simulated ranks of `machine`. Deterministic:
/// identical inputs produce bit-identical results.
SimRunResult run_on_machine(const mach::MachineConfig& machine, int nranks,
                            const RankFn& fn, SimRunOptions options = {});

}  // namespace hpcx::xmpi
