// Sub-communicators: a Comm view over a subset of a parent communicator's
// ranks (MPI_Comm_split analogue). Used by the 2D-grid algorithms (HPL,
// PTRANS) for row/column collectives.
//
// Implementation: rank translation plus a tag-space offset per context.
// User tags must be < kMaxUserTag; each nesting context shifts the whole
// collective+user tag block, so traffic in different sub-communicators of
// the same world can never match across contexts.
#pragma once

#include <vector>

#include "xmpi/comm.hpp"

namespace hpcx::xmpi {

/// Highest user tag usable with Comm::send/recv (collectives use
/// [kMaxUserTag, 2*kMaxUserTag) of each context block).
constexpr int kMaxUserTag = 1 << 20;

class SubComm final : public Comm {
 public:
  /// `members` lists the parent ranks in this communicator, in rank
  /// order; the calling parent rank must appear in it. `context_id` must
  /// be unique among communicators live at the same time over the same
  /// parent (0 is the parent's own context; start at 1).
  ///
  /// Inherits the parent's trace sink (if one is attached at
  /// construction), so traffic on row/column communicators shows up in
  /// the rank's trace; peers in those events are sub-communicator ranks.
  SubComm(Comm& parent, std::vector<int> members, int context_id);

  int rank() const override { return my_rank_; }
  int size() const override { return static_cast<int>(members_.size()); }
  double now() override { return parent_->now(); }

  int parent_rank_of(int sub_rank) const {
    return members_[static_cast<std::size_t>(sub_rank)];
  }

  void charge_reduce_arithmetic(std::size_t operand_bytes) override {
    parent_->charge_reduce_arithmetic(operand_bytes);
  }

 protected:
  void send_impl(int dst, int tag, CBuf buf) override;
  void recv_impl(int src, int tag, MBuf buf) override;
  SendRequest isend_impl(int dst, int tag, CBuf buf) override;
  void wait_impl(SendRequest& req) override;
  void compute_impl(double seconds) override {
    compute_on(*parent_, seconds);
  }

 private:
  int translate_tag(int tag) const;

  Comm* parent_;
  std::vector<int> members_;
  int my_rank_ = -1;
  int context_id_ = 0;
};

}  // namespace hpcx::xmpi
