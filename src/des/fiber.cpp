#include "des/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include "core/error.hpp"

namespace hpcx::des {

namespace {
thread_local Fiber* g_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  HPCX_ASSERT(body_ != nullptr);
  const std::size_t ps = page_size();
  stack_size_ = round_up(stack_bytes, ps) + ps;  // +1 guard page
  stack_base_ = mmap(nullptr, stack_size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  HPCX_ASSERT_MSG(stack_base_ != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end (stacks grow down on every ABI we target).
  HPCX_ASSERT(mprotect(stack_base_, ps, PROT_NONE) == 0);

  HPCX_ASSERT(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + ps;
  context_.uc_stack.ss_size = stack_size_ - ps;
  context_.uc_link = &return_context_;
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // Destroying a suspended fiber would leak whatever RAII state lives on
  // its stack; the simulator never does this (it drains all processes),
  // but a user might, so we simply release the stack. Destructors of
  // objects on the fiber stack do NOT run in that case.
  if (stack_base_ != nullptr) munmap(stack_base_, stack_size_);
}

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  HPCX_ASSERT(self != nullptr);
  try {
    self->body_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::kFinished;
  // Returning lets ucontext resume uc_link (= return_context_).
}

void Fiber::resume() {
  HPCX_ASSERT_MSG(g_current_fiber == nullptr,
                  "nested Fiber::resume from inside a fiber");
  HPCX_ASSERT_MSG(state_ == State::kReady || state_ == State::kSuspended,
                  "resume of finished/running fiber");
  g_current_fiber = this;
  state_ = State::kRunning;
  HPCX_ASSERT(swapcontext(&return_context_, &context_) == 0);
  g_current_fiber = nullptr;
  if (state_ == State::kRunning) state_ = State::kSuspended;
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  HPCX_ASSERT_MSG(self != nullptr, "Fiber::yield outside any fiber");
  // Mark suspended *before* switching so resume() sees a consistent state.
  self->state_ = State::kSuspended;
  g_current_fiber = nullptr;
  HPCX_ASSERT(swapcontext(&self->context_, &self->return_context_) == 0);
  g_current_fiber = self;
  self->state_ = State::kRunning;
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace hpcx::des
