#include "des/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/error.hpp"

#ifndef HPCX_UCONTEXT_FIBERS
extern "C" {
// src/des/fiber_switch.S — see the frame-layout contract there.
void hpcx_fiber_switch(void** save_sp, void* restore_sp);
void hpcx_fiber_entry();
}
#endif

namespace hpcx::des {

namespace {
thread_local Fiber* g_current_fiber = nullptr;

// Thrown into a suspended fiber by ~Fiber so stack-resident destructors
// run. Deliberately not derived from std::exception: a fiber body's
// catch (const std::exception&) handlers won't swallow it. (A catch (...)
// that doesn't rethrow still can — the usual caveat of forced unwinding.)
struct ForcedUnwind {};

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Thread-local pool of guard-paged fiber stacks. Release decommits the
// usable pages with madvise(MADV_DONTNEED) — the kernel reclaims the
// memory, but the mapping (and its guard page) survives, so reacquiring
// a stack is free of mmap/mprotect/munmap and their VMA + TLB churn.
class StackPool {
 public:
  ~StackPool() {
    for (const Item& item : free_) munmap(item.base, item.size);
  }

  void* acquire(std::size_t size) {
    for (std::size_t i = free_.size(); i-- > 0;) {
      if (free_[i].size == size) {
        void* base = free_[i].base;
        free_[i] = free_.back();
        free_.pop_back();
        ++reuses_;
        return base;
      }
    }
    const std::size_t ps = page_size();
    void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    HPCX_ASSERT_MSG(base != MAP_FAILED, "fiber stack mmap failed");
    // Guard page at the low end (stacks grow down on every ABI we target).
    HPCX_ASSERT(mprotect(base, ps, PROT_NONE) == 0);
    return base;
  }

  void release(void* base, std::size_t size) {
    if (free_.size() >= kMaxPooled) {
      munmap(base, size);
      return;
    }
    const std::size_t ps = page_size();
    madvise(static_cast<char*>(base) + ps, size - ps, MADV_DONTNEED);
    free_.push_back(Item{base, size});
  }

  std::size_t pooled() const { return free_.size(); }
  std::size_t reuses() const { return reuses_; }

  void trim() {
    for (const Item& item : free_) munmap(item.base, item.size);
    free_.clear();
  }

 private:
  struct Item {
    void* base;
    std::size_t size;
  };
  // Enough for the largest sweeps we run (thousands of ranks); pooled
  // stacks hold address space, not memory, so the cap is generous.
  static constexpr std::size_t kMaxPooled = 8192;

  std::vector<Item> free_;
  std::size_t reuses_ = 0;
};

thread_local StackPool g_stack_pool;

// Dense-mode stacks: carved contiguously from big slab mappings so a
// million fibers cost ~2 VMAs per 512 stacks instead of 2 per stack
// (vm.max_map_count would otherwise cap runs near 32Ki fibers). Only
// the slab base carries a guard page; the low page of each carved stack
// is ordinary memory. MAP_NORESERVE keeps the (huge, mostly untouched)
// reservations out of the commit charge.
class SlabPool {
 public:
  ~SlabPool() {
    for (const Slab& s : slabs_) munmap(s.base, s.bytes);
  }

  void* acquire(std::size_t size) {
    for (std::size_t i = free_.size(); i-- > 0;) {
      if (free_[i].size == size) {
        void* p = free_[i].ptr;
        free_[i] = free_.back();
        free_.pop_back();
        ++reuses_;
        ++live_;
        return p;
      }
    }
    if (spare_stacks_ == 0 || carve_size_ != size) new_slab(size);
    void* p = bump_;
    bump_ += size;
    --spare_stacks_;
    ++live_;
    return p;
  }

  void release(void* p, std::size_t size) {
    madvise(p, size, MADV_DONTNEED);
    free_.push_back(Item{p, size});
    HPCX_ASSERT(live_ > 0);
    --live_;
  }

  std::size_t pooled() const { return free_.size(); }
  std::size_t reuses() const { return reuses_; }

  void trim() {
    if (live_ != 0) return;  // fibers still running on slab stacks
    for (const Slab& s : slabs_) munmap(s.base, s.bytes);
    slabs_.clear();
    free_.clear();
    spare_stacks_ = 0;
    carve_size_ = 0;
    bump_ = nullptr;
  }

 private:
  struct Slab {
    void* base;
    std::size_t bytes;
  };
  struct Item {
    void* ptr;
    std::size_t size;
  };
  static constexpr std::size_t kSlabStacks = 512;

  void new_slab(std::size_t size) {
    const std::size_t ps = page_size();
    const std::size_t bytes = ps + kSlabStacks * size;
    void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | MAP_NORESERVE,
                      -1, 0);
    HPCX_ASSERT_MSG(base != MAP_FAILED, "fiber stack slab mmap failed");
    HPCX_ASSERT(mprotect(base, ps, PROT_NONE) == 0);
    slabs_.push_back(Slab{base, bytes});
    bump_ = static_cast<char*>(base) + ps;
    spare_stacks_ = kSlabStacks;
    carve_size_ = size;
  }

  std::vector<Slab> slabs_;
  std::vector<Item> free_;
  char* bump_ = nullptr;        // next carve point in the current slab
  std::size_t spare_stacks_ = 0;
  std::size_t carve_size_ = 0;  // stack size the current slab is cut for
  std::size_t live_ = 0;        // carved stacks not yet released
  std::size_t reuses_ = 0;
};

thread_local SlabPool g_slab_pool;
thread_local bool g_dense_stacks = false;
}  // namespace

std::size_t Fiber::pooled_stacks() { return g_stack_pool.pooled(); }
std::size_t Fiber::stack_pool_reuses() { return g_stack_pool.reuses(); }
void Fiber::trim_stack_pool() {
  g_stack_pool.trim();
  g_slab_pool.trim();
}
void Fiber::set_dense_stacks(bool on) { g_dense_stacks = on; }
bool Fiber::dense_stacks() { return g_dense_stacks; }

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  HPCX_ASSERT(body_ != nullptr);
  const std::size_t ps = page_size();
  stack_size_ = round_up(stack_bytes, ps) + ps;  // +1 guard page
  dense_ = g_dense_stacks;
  stack_base_ = dense_ ? g_slab_pool.acquire(stack_size_)
                       : g_stack_pool.acquire(stack_size_);

#ifdef HPCX_UCONTEXT_FIBERS
  HPCX_ASSERT(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + ps;
  context_.uc_stack.ss_size = stack_size_ - ps;
  context_.uc_link = &return_context_;
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
#elif defined(__x86_64__)
  // Seed a switch frame (layout contract: fiber_switch.S) whose restore
  // "returns" into hpcx_fiber_entry with this Fiber* in r15.
  struct Frame {
    std::uint32_t mxcsr;
    std::uint16_t fcw;
    std::uint16_t pad;
    std::uint64_t r15, r14, r13, r12, rbx, rbp;
    void* rip;
  };
  static_assert(sizeof(Frame) == 64);
  char* top = static_cast<char*>(stack_base_) + stack_size_;
  top -= reinterpret_cast<std::uintptr_t>(top) & 15;  // 16-align
  auto* f = reinterpret_cast<Frame*>(top - sizeof(Frame));
  std::memset(f, 0, sizeof(Frame));
  asm volatile("stmxcsr %0" : "=m"(f->mxcsr));
  asm volatile("fnstcw %0" : "=m"(f->fcw));
  f->r15 = reinterpret_cast<std::uint64_t>(this);
  f->rip = reinterpret_cast<void*>(&hpcx_fiber_entry);
  fiber_sp_ = f;
#elif defined(__aarch64__)
  // Seed a switch frame (layout contract: fiber_switch.S) whose restore
  // "returns" into hpcx_fiber_entry with this Fiber* in x19.
  struct Frame {
    std::uint64_t x19, x20, x21, x22, x23, x24, x25, x26, x27, x28;
    std::uint64_t x29;
    void* x30;
    std::uint64_t d[8];
    std::uint64_t pad[2];
  };
  static_assert(sizeof(Frame) == 176);
  char* top = static_cast<char*>(stack_base_) + stack_size_;
  top -= reinterpret_cast<std::uintptr_t>(top) & 15;  // 16-align
  auto* f = reinterpret_cast<Frame*>(top - sizeof(Frame));
  std::memset(f, 0, sizeof(Frame));
  f->x19 = reinterpret_cast<std::uint64_t>(this);
  f->x30 = reinterpret_cast<void*>(&hpcx_fiber_entry);
  fiber_sp_ = f;
#endif
}

Fiber::~Fiber() {
  // A suspended fiber still has live frames — RAII objects on its stack
  // would leak if we just dropped the memory. Resume it one last time
  // with unwinding_ set: yield() throws ForcedUnwind at the suspension
  // point, destructors run as the stack unwinds, and the trampoline
  // catches the marker and finishes normally. (Skipped if we are
  // ourselves inside a fiber: a nested resume is not possible.)
  if (state_ == State::kSuspended && g_current_fiber == nullptr) {
    unwinding_ = true;
    resume();
    HPCX_ASSERT(state_ == State::kFinished);
  }
  if (stack_base_ != nullptr) {
    if (dense_)
      g_slab_pool.release(stack_base_, stack_size_);
    else
      g_stack_pool.release(stack_base_, stack_size_);
  }
}

#ifdef HPCX_UCONTEXT_FIBERS

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  HPCX_ASSERT(self != nullptr);
  try {
    self->body_();
  } catch (const ForcedUnwind&) {
    // Destructor-driven unwind: not an error, nothing to re-throw.
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::kFinished;
  // Returning lets ucontext resume uc_link (= return_context_).
}

void Fiber::resume() {
  HPCX_ASSERT_MSG(g_current_fiber == nullptr,
                  "nested Fiber::resume from inside a fiber");
  HPCX_ASSERT_MSG(state_ == State::kReady || state_ == State::kSuspended,
                  "resume of finished/running fiber");
  g_current_fiber = this;
  state_ = State::kRunning;
  HPCX_ASSERT(swapcontext(&return_context_, &context_) == 0);
  g_current_fiber = nullptr;
  if (state_ == State::kRunning) state_ = State::kSuspended;
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  HPCX_ASSERT_MSG(self != nullptr, "Fiber::yield outside any fiber");
  // Mark suspended *before* switching so resume() sees a consistent state.
  self->state_ = State::kSuspended;
  g_current_fiber = nullptr;
  HPCX_ASSERT(swapcontext(&self->context_, &self->return_context_) == 0);
  g_current_fiber = self;
  self->state_ = State::kRunning;
  if (self->unwinding_) throw ForcedUnwind{};
}

#else  // hand-written switch

void Fiber::resume() {
  HPCX_ASSERT_MSG(g_current_fiber == nullptr,
                  "nested Fiber::resume from inside a fiber");
  HPCX_ASSERT_MSG(state_ == State::kReady || state_ == State::kSuspended,
                  "resume of finished/running fiber");
  g_current_fiber = this;
  state_ = State::kRunning;
  hpcx_fiber_switch(&return_sp_, fiber_sp_);
  g_current_fiber = nullptr;
  if (state_ == State::kRunning) state_ = State::kSuspended;
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  HPCX_ASSERT_MSG(self != nullptr, "Fiber::yield outside any fiber");
  // Mark suspended *before* switching so resume() sees a consistent state.
  self->state_ = State::kSuspended;
  g_current_fiber = nullptr;
  hpcx_fiber_switch(&self->fiber_sp_, self->return_sp_);
  g_current_fiber = self;
  self->state_ = State::kRunning;
  if (self->unwinding_) throw ForcedUnwind{};
}

#endif

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace hpcx::des

#ifndef HPCX_UCONTEXT_FIBERS
extern "C" void hpcx_fiber_trampoline(void* fiber) {
  using hpcx::des::Fiber;
  auto* self = static_cast<Fiber*>(fiber);
  HPCX_ASSERT(self == hpcx::des::g_current_fiber);
  try {
    self->body_();
  } catch (const hpcx::des::ForcedUnwind&) {
    // Destructor-driven unwind: not an error, nothing to re-throw.
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = Fiber::State::kFinished;
  // Final switch back to the resumer; this frame is never re-entered.
  void* dead_sp;
  hpcx_fiber_switch(&dead_sp, self->return_sp_);
  __builtin_unreachable();
}
#endif
