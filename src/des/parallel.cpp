#include "des/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "core/error.hpp"

namespace hpcx::des {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

// Persistent worker pool with a generation-counter handshake: the main
// thread publishes a horizon under the mutex and bumps the generation;
// workers run their LP share and decrement pending_. The mutex/condvar
// pair gives the happens-before edges that make per-LP state (queues,
// fibers, per-shard pools) safely owned by whichever thread runs the
// window — an LP never migrates (index % workers), so its state only
// ever crosses threads through these fences.
class WindowPool {
 public:
  WindowPool(const std::vector<Simulator*>& lps, int workers)
      : lps_(lps), workers_(workers), errors_(lps.size()) {
    threads_.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  ~WindowPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Run every LP to `horizon`; rethrows the lowest-index LP's
  /// exception once all workers have finished the window.
  void run_window(SimTime horizon) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      horizon_ = horizon;
      pending_ = workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    run_share(0, horizon);  // the main thread is worker 0
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (errors_[i]) {
        std::exception_ptr e = errors_[i];
        errors_[i] = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void run_share(int w, SimTime horizon) {
    for (std::size_t i = static_cast<std::size_t>(w); i < lps_.size();
         i += static_cast<std::size_t>(workers_)) {
      try {
        lps_[i]->run_until(horizon);
      } catch (...) {
        errors_[i] = std::current_exception();
      }
    }
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      SimTime horizon;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        horizon = horizon_;
      }
      run_share(w, horizon);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  const std::vector<Simulator*>& lps_;
  const int workers_;
  std::vector<std::exception_ptr> errors_;  // slot i owned by LP i's worker
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  SimTime horizon_ = 0.0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

SimTime lbts(const std::vector<Simulator*>& lps) {
  SimTime t = kInf;
  for (Simulator* lp : lps) t = std::min(t, lp->next_event_time());
  return t;
}

}  // namespace

void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void()>& flush, int workers,
                      SimTime lookahead) {
  HPCX_ASSERT(!lps.empty());
  HPCX_ASSERT_MSG(lookahead > 0.0,
                  "conservative sync needs positive lookahead");
  const int w =
      std::min<int>(std::max(workers, 1), static_cast<int>(lps.size()));

  if (w <= 1) {
    for (;;) {
      flush();
      const SimTime t = lbts(lps);
      if (t == kInf) break;
      const SimTime horizon = t + lookahead;
      for (Simulator* lp : lps) lp->run_until(horizon);
    }
  } else {
    WindowPool pool(lps, w);
    for (;;) {
      flush();
      const SimTime t = lbts(lps);
      if (t == kInf) break;
      pool.run_window(t + lookahead);
    }
  }

  std::size_t blocked = 0;
  for (Simulator* lp : lps) blocked += lp->live_processes();
  if (blocked > 0) {
    // Identical wording to Simulator::run() so existing deadlock
    // handling (tests, harness messages) sees one vocabulary.
    throw Error("simulation deadlock: " + std::to_string(blocked) +
                " process(es) still blocked with no pending events");
  }
}

}  // namespace hpcx::des
