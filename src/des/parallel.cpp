#include "des/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "core/error.hpp"

namespace hpcx::des {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Time one LP's window and fold it into its stats slot. The slot is
// written only by the worker the LP is pinned to; the pool's
// generation handshake provides the fences that let the main thread
// read the totals after the drive.
void run_lp_window(Simulator* lp, SimTime horizon, ConservativeLpStats* slot) {
  if (slot == nullptr) {
    lp->run_until(horizon);
    return;
  }
  const std::uint64_t events0 = lp->executed_events();
  const double t0 = wall_now();
  lp->run_until(horizon);
  slot->busy_wall_s += wall_now() - t0;
  const std::uint64_t ran = lp->executed_events() - events0;
  slot->events += ran;
  if (ran > 0) {
    ++slot->windows;
  } else {
    ++slot->idle_windows;
  }
}

// Persistent worker pool with a generation-counter handshake: the main
// thread publishes a horizon under the mutex and bumps the generation;
// workers run their LP share and decrement pending_. The mutex/condvar
// pair gives the happens-before edges that make per-LP state (queues,
// fibers, per-shard pools) safely owned by whichever thread runs the
// window — an LP never migrates (index % workers), so its state only
// ever crosses threads through these fences.
class WindowPool {
 public:
  WindowPool(const std::vector<Simulator*>& lps, int workers,
             ConservativeStats* stats)
      : lps_(lps), workers_(workers), stats_(stats), errors_(lps.size()) {
    threads_.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  ~WindowPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Run every LP to `horizon`; rethrows the lowest-index LP's
  /// exception once all workers have finished the window.
  void run_window(SimTime horizon) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      horizon_ = horizon;
      pending_ = workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    run_share(0, horizon);  // the main thread is worker 0
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (errors_[i]) {
        std::exception_ptr e = errors_[i];
        errors_[i] = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void run_share(int w, SimTime horizon) {
    for (std::size_t i = static_cast<std::size_t>(w); i < lps_.size();
         i += static_cast<std::size_t>(workers_)) {
      try {
        run_lp_window(lps_[i], horizon,
                      stats_ != nullptr ? &stats_->lps[i] : nullptr);
      } catch (...) {
        errors_[i] = std::current_exception();
      }
    }
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      SimTime horizon;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        horizon = horizon_;
      }
      run_share(w, horizon);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  const std::vector<Simulator*>& lps_;
  const int workers_;
  ConservativeStats* stats_;
  std::vector<std::exception_ptr> errors_;  // slot i owned by LP i's worker
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  SimTime horizon_ = 0.0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

SimTime lbts(const std::vector<Simulator*>& lps) {
  SimTime t = kInf;
  for (Simulator* lp : lps) t = std::min(t, lp->next_event_time());
  return t;
}

}  // namespace

void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void()>& flush, int workers,
                      SimTime lookahead, ConservativeStats* stats) {
  HPCX_ASSERT(!lps.empty());
  HPCX_ASSERT_MSG(lookahead > 0.0,
                  "conservative sync needs positive lookahead");
  const int w =
      std::min<int>(std::max(workers, 1), static_cast<int>(lps.size()));

  if (stats != nullptr) {
    *stats = ConservativeStats{};
    stats->workers = w;
    stats->lps.resize(lps.size());
  }
  const double drive_t0 = stats != nullptr ? wall_now() : 0.0;
  SimTime prev_lbts = -kInf;  // classify window i when window i+1's LBTS known

  const auto account_round = [&](SimTime t) {
    if (stats == nullptr) return;
    if (prev_lbts != -kInf) {
      // The previous window ran to prev_lbts + lookahead; the new LBTS
      // tells us what bounded it. An advance of ~lookahead means an
      // event sat right at the horizon (protocol-bound); a larger jump
      // means the queues went dry first (work-bound).
      if (t != kInf && t - prev_lbts <= lookahead * (1.0 + 1e-9)) {
        ++stats->lookahead_limited;
      } else {
        ++stats->work_limited;
      }
    }
    if (t != kInf) {
      ++stats->windows;
      prev_lbts = t;
    }
  };

  if (w <= 1) {
    for (;;) {
      const double f0 = stats != nullptr ? wall_now() : 0.0;
      flush();
      if (stats != nullptr) stats->flush_wall_s += wall_now() - f0;
      const SimTime t = lbts(lps);
      account_round(t);
      if (t == kInf) break;
      const SimTime horizon = t + lookahead;
      const double w0 = stats != nullptr ? wall_now() : 0.0;
      for (std::size_t i = 0; i < lps.size(); ++i)
        run_lp_window(lps[i], horizon,
                      stats != nullptr ? &stats->lps[i] : nullptr);
      if (stats != nullptr) stats->window_wall_s += wall_now() - w0;
    }
  } else {
    WindowPool pool(lps, w, stats);
    for (;;) {
      const double f0 = stats != nullptr ? wall_now() : 0.0;
      flush();
      if (stats != nullptr) stats->flush_wall_s += wall_now() - f0;
      const SimTime t = lbts(lps);
      account_round(t);
      if (t == kInf) break;
      const double w0 = stats != nullptr ? wall_now() : 0.0;
      pool.run_window(t + lookahead);
      if (stats != nullptr) stats->window_wall_s += wall_now() - w0;
    }
  }

  if (stats != nullptr) {
    stats->total_wall_s = wall_now() - drive_t0;
    double busy = 0.0;
    for (const ConservativeLpStats& lp : stats->lps) busy += lp.busy_wall_s;
    stats->stall_wall_s =
        std::max(0.0, stats->window_wall_s * static_cast<double>(w) - busy);
  }

  std::size_t blocked = 0;
  for (Simulator* lp : lps) blocked += lp->live_processes();
  if (blocked > 0) {
    // Identical wording to Simulator::run() so existing deadlock
    // handling (tests, harness messages) sees one vocabulary.
    throw Error("simulation deadlock: " + std::to_string(blocked) +
                " process(es) still blocked with no pending events");
  }
}

}  // namespace hpcx::des
