#include "des/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "core/error.hpp"

namespace hpcx::des {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct WorkerPool::Impl {
  explicit Impl(WorkerPool* pool, int workers) {
    threads.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w)
      threads.emplace_back([pool, this, w] { worker_loop(pool, w); });
  }

  void worker_loop(WorkerPool* pool, int w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* task;
      {
        std::unique_lock<std::mutex> lock(mu);
        start_cv.wait(lock, [&] { return generation != seen; });
        seen = generation;
        if (stop) return;
        task = fn;
      }
      try {
        (*task)(w);
      } catch (...) {
        pool->errors_[static_cast<std::size_t>(w)] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) done_cv.notify_one();
      }
    }
  }

  std::vector<std::thread> threads;
  std::mutex mu;
  std::condition_variable start_cv, done_cv;
  const std::function<void(int)>* fn = nullptr;
  std::uint64_t generation = 0;
  int pending = 0;
  bool stop = false;
};

WorkerPool::WorkerPool(int workers)
    : workers_(std::max(workers, 1)),
      errors_(static_cast<std::size_t>(workers_)) {
  if (workers_ > 1) impl_ = new Impl(this, workers_);
}

WorkerPool::~WorkerPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  if (impl_ == nullptr) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->fn = &fn;
    impl_->pending = workers_ - 1;
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [this] { return impl_->pending == 0; });
  }
  for (std::size_t w = 0; w < errors_.size(); ++w) {
    if (errors_[w]) {
      std::exception_ptr e = errors_[w];
      errors_[w] = nullptr;
      std::rethrow_exception(e);
    }
  }
}

namespace {

// Time one LP's window and fold it into its stats slot. The slot is
// written only by the worker the LP is pinned to; the pool's
// generation handshake provides the fences that let the main thread
// read the totals after the drive.
void run_lp_window(Simulator* lp, SimTime horizon, ConservativeLpStats* slot) {
  if (slot == nullptr) {
    lp->run_until(horizon);
    return;
  }
  const std::uint64_t events0 = lp->executed_events();
  const double t0 = wall_now();
  lp->run_until(horizon);
  slot->busy_wall_s += wall_now() - t0;
  const std::uint64_t ran = lp->executed_events() - events0;
  slot->events += ran;
  if (ran > 0) {
    ++slot->windows;
  } else {
    ++slot->idle_windows;
  }
}

SimTime lbts(const std::vector<Simulator*>& lps) {
  SimTime t = kInf;
  for (Simulator* lp : lps) t = std::min(t, lp->next_event_time());
  return t;
}

}  // namespace

void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void(WorkerPool&)>& flush,
                      int workers, SimTime lookahead,
                      ConservativeStats* stats) {
  HPCX_ASSERT(!lps.empty());
  HPCX_ASSERT_MSG(lookahead > 0.0,
                  "conservative sync needs positive lookahead");
  const int w =
      std::min<int>(std::max(workers, 1), static_cast<int>(lps.size()));

  if (stats != nullptr) {
    *stats = ConservativeStats{};
    stats->workers = w;
    stats->lps.resize(lps.size());
  }
  const double drive_t0 = stats != nullptr ? wall_now() : 0.0;
  SimTime prev_lbts = -kInf;  // classify window i when window i+1's LBTS known

  const auto account_round = [&](SimTime t) {
    if (stats == nullptr) return;
    if (prev_lbts != -kInf) {
      // The previous window ran to prev_lbts + lookahead; the new LBTS
      // tells us what bounded it. An advance of ~lookahead means an
      // event sat right at the horizon (protocol-bound); a larger jump
      // means the queues went dry first (work-bound).
      if (t != kInf && t - prev_lbts <= lookahead * (1.0 + 1e-9)) {
        ++stats->lookahead_limited;
      } else {
        ++stats->work_limited;
      }
    }
    if (t != kInf) {
      ++stats->windows;
      prev_lbts = t;
    }
  };

  WorkerPool pool(w);
  // LP-body exceptions are captured per LP so the rethrow order is by
  // LP index (deterministic), not by worker index.
  std::vector<std::exception_ptr> lp_errors(lps.size());
  SimTime horizon_shared = 0.0;  // published to workers via pool.run's fences
  const std::function<void(int)> window_share = [&](int worker) {
    for (std::size_t i = static_cast<std::size_t>(worker); i < lps.size();
         i += static_cast<std::size_t>(w)) {
      try {
        run_lp_window(lps[i], horizon_shared,
                      stats != nullptr ? &stats->lps[i] : nullptr);
      } catch (...) {
        lp_errors[i] = std::current_exception();
      }
    }
  };

  for (;;) {
    const double f0 = stats != nullptr ? wall_now() : 0.0;
    flush(pool);
    if (stats != nullptr) stats->flush_wall_s += wall_now() - f0;
    const SimTime t = lbts(lps);
    account_round(t);
    if (t == kInf) break;
    horizon_shared = t + lookahead;
    const double w0 = stats != nullptr ? wall_now() : 0.0;
    pool.run(window_share);
    if (stats != nullptr) stats->window_wall_s += wall_now() - w0;
    for (std::size_t i = 0; i < lp_errors.size(); ++i) {
      if (lp_errors[i]) {
        std::exception_ptr e = lp_errors[i];
        lp_errors[i] = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

  if (stats != nullptr) {
    stats->total_wall_s = wall_now() - drive_t0;
    double busy = 0.0;
    for (const ConservativeLpStats& lp : stats->lps) busy += lp.busy_wall_s;
    stats->stall_wall_s =
        std::max(0.0, stats->window_wall_s * static_cast<double>(w) - busy);
  }

  std::size_t blocked = 0;
  for (Simulator* lp : lps) blocked += lp->live_processes();
  if (blocked > 0) {
    // Identical wording to Simulator::run() so existing deadlock
    // handling (tests, harness messages) sees one vocabulary.
    throw Error("simulation deadlock: " + std::to_string(blocked) +
                " process(es) still blocked with no pending events");
  }
}

}  // namespace hpcx::des
