// Pending-event set for the discrete-event simulator.
//
// A 4-ary implicit heap ordered by (time, sequence), with a FIFO bucket
// fast path for events scheduled at exactly the time currently being
// popped — the dominant pattern (wakes and deliveries land "now"), which
// the bucket serves with O(1) push and pop instead of O(log n) sifts.
//
// The sequence number makes event ordering total and deterministic: two
// events scheduled for the same instant fire in the order they were
// scheduled, on every run. The bucket preserves this exactly, because a
// push is only diverted to the bucket when its sequence number is larger
// than that of every same-time entry still in the heap (sequence numbers
// are monotonic, and the bucket only accepts pushes at the time that has
// already started popping).
#pragma once

#include <cstdint>
#include <vector>

#include "des/callback.hpp"

namespace hpcx::des {

/// Simulation time in seconds. A double gives sub-nanosecond resolution
/// over the hours of simulated time these benchmarks span; determinism is
/// unaffected because the simulator is single-threaded and ties are broken
/// by sequence number.
using SimTime = double;

class EventQueue {
 public:
  using Callback = des::Callback;

  /// Schedule `cb` at absolute time `t`. `pusher` and `ordinal` are an
  /// opaque provenance tag the simulator's order log rides on (who
  /// scheduled this event, and as its how-many-eth push); the queue
  /// stores and returns them untouched. Serial runs pass zeros.
  void push(SimTime t, Callback cb, std::int64_t pusher = 0,
            std::uint32_t ordinal = 0);

  bool empty() const { return heap_.empty() && bucket_empty(); }
  std::size_t size() const {
    return heap_.size() + (bucket_.size() - bucket_head_);
  }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime next_time() const;

  /// Pop and return the earliest event's callback. Queue must be
  /// non-empty. `time_out` (optional) receives the event time;
  /// `pusher_out`/`ordinal_out` (optional) the provenance tag.
  Callback pop(SimTime* time_out, std::int64_t* pusher_out = nullptr,
               std::uint32_t* ordinal_out = nullptr);

  /// Visit every pending entry's provenance tag (mutable). Used by the
  /// parallel engine to resolve window-local pusher references into
  /// global sequence numbers once a window's order is merged. Rewrites
  /// preserve every entry's relative tag order (the merge is consistent
  /// with local execution order), so the heap needs no rebuild.
  template <typename Fn>
  void for_each_tag(Fn&& fn) {
    for (Entry& e : heap_) fn(e.pusher, e.ordinal);
    for (std::size_t i = bucket_head_; i < bucket_.size(); ++i)
      fn(bucket_[i].pusher, bucket_[i].ordinal);
  }

  /// Break same-time ties by provenance tag instead of push sequence
  /// (parallel engine only). Entries pushed before a window began —
  /// earlier-window survivors and flush-scheduled deliveries — arrive
  /// in an order unrelated to the serial engine's push order, but their
  /// resolved tags reconstruct it: resolved pushers before window-local
  /// ones, then by pusher position, then by push ordinal. In-window
  /// pushes are tag-ordered by construction, so for them this is
  /// identical to sequence order.
  void set_tag_order(bool on) { tag_order_ = on; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::int64_t pusher;
    std::uint32_t ordinal;
    Callback cb;
  };
  // a fires strictly before b (seq is unique, so no equality case).
  bool before(const Entry& a, const Entry& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (tag_order_) {
      // Resolved tags (pusher >= 0, a global position) precede
      // window-local ones (pusher < 0 encodes -(index + 1), so a LATER
      // local pusher is MORE negative — descending value = ascending
      // position).
      const bool a_local = a.pusher < 0, b_local = b.pusher < 0;
      if (a_local != b_local) return b_local;
      if (a.pusher != b.pusher)
        return a_local ? a.pusher > b.pusher : a.pusher < b.pusher;
      if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
    }
    return a.seq < b.seq;
  }

  bool bucket_empty() const { return bucket_head_ == bucket_.size(); }
  void heap_push(Entry e);
  Entry heap_pop();

  std::vector<Entry> heap_;  // 4-ary implicit heap, min at heap_[0]
  // Same-timestamp FIFO: entries at exactly bucket_time_, in push order.
  // Ring over a vector; compacted whenever it drains.
  std::vector<Entry> bucket_;
  std::size_t bucket_head_ = 0;
  SimTime bucket_time_ = 0.0;
  bool bucket_active_ = false;  // becomes true at the first pop
  bool tag_order_ = false;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcx::des
