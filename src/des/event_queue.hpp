// Pending-event set for the discrete-event simulator.
//
// A 4-ary implicit heap ordered by (time, sequence), with a FIFO bucket
// fast path for events scheduled at exactly the time currently being
// popped — the dominant pattern (wakes and deliveries land "now"), which
// the bucket serves with O(1) push and pop instead of O(log n) sifts.
//
// The sequence number makes event ordering total and deterministic: two
// events scheduled for the same instant fire in the order they were
// scheduled, on every run. The bucket preserves this exactly, because a
// push is only diverted to the bucket when its sequence number is larger
// than that of every same-time entry still in the heap (sequence numbers
// are monotonic, and the bucket only accepts pushes at the time that has
// already started popping).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "des/callback.hpp"

namespace hpcx::des {

/// Simulation time in seconds. A double gives sub-nanosecond resolution
/// over the hours of simulated time these benchmarks span; determinism is
/// unaffected because the simulator is single-threaded and ties are broken
/// by sequence number.
using SimTime = double;

/// Per-window global-sequence tables of one logical process (parallel
/// engine only). Window k's merge assigns every event the LP executed a
/// dense global sequence number; the table of those numbers, aligned
/// with the window's order log, is the window's *epoch*. Pending events
/// pushed during window k carry the tag (epoch k, local log index of
/// their pusher); the event queue's tie-break comparator resolves such
/// a tag to the pusher's true global position by table lookup — lazily,
/// at comparison time — instead of the engine rewriting every pending
/// entry's tag after each merge (a full-queue walk per window that
/// dominated flush cost at scale).
///
/// Lifetime: a table stays alive while any pending entry references its
/// epoch (tracked by push/pop refcounts); commit() retires leading
/// unreferenced epochs and recycles their buffers. Only the newest
/// epoch can be unfilled (its window merged not yet); the comparator
/// never needs an unfilled lookup, because every resolved tag already
/// in the queue predates that window's merge and therefore sorts first.
class OrderEpochs {
 public:
  /// Forget everything and open epoch 0, unfilled.
  void reset() {
    tables_.clear();
    spare_.clear();
    tables_.emplace_back();
    base_ = 0;
    filled_ = false;
  }

  /// Absolute number of the open (current-window) epoch.
  std::uint32_t current() const {
    return base_ + static_cast<std::uint32_t>(tables_.size()) - 1;
  }

  /// True when `epoch`'s table can be read (everything but an unfilled
  /// current window).
  bool resolvable(std::uint32_t epoch) const {
    return filled_ || epoch != current();
  }

  /// Global position of the pusher logged at `idx` in `epoch`'s window.
  std::uint64_t g(std::uint32_t epoch, std::uint32_t idx) const {
    return tables_[epoch - base_].g[idx];
  }

  /// A pending entry now references the current epoch / no longer
  /// references `epoch` (pushes always tag the open window; pops may
  /// release any epoch still alive).
  void add_ref_current() { ++tables_.back().refs; }
  void drop_ref(std::uint32_t epoch) { --tables_[epoch - base_].refs; }

  bool current_filled() const { return filled_; }

  /// Size the current epoch's table to `n` (the window's executed-event
  /// count) and return it for the merge to fill. Marks the epoch
  /// resolvable: the caller must fill all n slots before the next
  /// event-queue operation.
  std::uint64_t* begin_fill(std::size_t n) {
    Table& t = tables_.back();
    t.g.resize(n);
    filled_ = true;
    return t.g.data();
  }

  /// Read access to the (filled) current epoch's table.
  const std::uint64_t* current_table() const {
    return tables_.back().g.data();
  }

  /// Seal the filled current epoch, open the next window's (unfilled),
  /// and retire leading epochs nothing references any more. Buffers of
  /// retired epochs are recycled, so the steady state allocates nothing.
  void commit() {
    tables_.emplace_back();
    if (!spare_.empty()) {
      tables_.back().g = std::move(spare_.back());
      tables_.back().g.clear();
      spare_.pop_back();
    }
    filled_ = false;
    while (tables_.size() > 1 && tables_.front().refs == 0) {
      if (spare_.size() < 4) spare_.push_back(std::move(tables_.front().g));
      tables_.pop_front();
      ++base_;
    }
  }

 private:
  struct Table {
    std::vector<std::uint64_t> g;
    std::uint64_t refs = 0;
  };
  std::deque<Table> tables_;  // front = epoch base_, back = current
  std::vector<std::vector<std::uint64_t>> spare_;  // recycled buffers
  std::uint32_t base_ = 0;
  bool filled_ = false;  // current epoch's table complete?
};

class EventQueue {
 public:
  using Callback = des::Callback;

  /// Schedule `cb` at absolute time `t`. `pusher`, `ordinal` and
  /// `epoch` are an opaque provenance tag the simulator's order log
  /// rides on (who scheduled this event, as its how-many-eth push, and
  /// in which window); the queue stores and returns them untouched.
  /// Serial runs pass zeros.
  void push(SimTime t, Callback cb, std::int64_t pusher = 0,
            std::uint32_t ordinal = 0, std::uint32_t epoch = 0);

  bool empty() const { return heap_.empty() && bucket_empty(); }
  std::size_t size() const {
    return heap_.size() + (bucket_.size() - bucket_head_);
  }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime next_time() const;

  /// Pop and return the earliest event's callback. Queue must be
  /// non-empty. `time_out` (optional) receives the event time; the
  /// remaining out-params (optional) the provenance tag.
  Callback pop(SimTime* time_out, std::int64_t* pusher_out = nullptr,
               std::uint32_t* ordinal_out = nullptr,
               std::uint32_t* epoch_out = nullptr);

  /// Break same-time ties by provenance tag instead of push sequence
  /// (parallel engine only). Entries pushed before a window began —
  /// earlier-window survivors and flush-scheduled deliveries — arrive
  /// in an order unrelated to the serial engine's push order, but their
  /// tags reconstruct it: a window-local tag resolves through `epochs`
  /// to its pusher's global position once that window has merged, and
  /// while it has not, every resolved tag in the queue predates the
  /// window and sorts first. In-window pushes are tag-ordered by
  /// construction, so for them this is identical to sequence order.
  void set_tag_order(bool on, const OrderEpochs* epochs) {
    tag_order_ = on;
    epochs_ = epochs;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::int64_t pusher;
    std::uint32_t ordinal;
    std::uint32_t epoch;
    Callback cb;
  };
  // a fires strictly before b (seq is unique, so no equality case).
  // Tag comparisons never change their answer over an entry's lifetime
  // (window-local tags resolve to positions consistent with the
  // pre-merge rules below), so the heap never needs a rebuild.
  bool before(const Entry& a, const Entry& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (tag_order_) {
      const bool a_local = a.pusher < 0, b_local = b.pusher < 0;
      if (a_local && b_local) {
        // Global position order across windows is epoch order; within
        // one window it is log-index order (pusher < 0 encodes
        // -(index + 1), so a LATER local pusher is MORE negative —
        // descending value = ascending position).
        if (a.epoch != b.epoch) return a.epoch < b.epoch;
        if (a.pusher != b.pusher) return a.pusher > b.pusher;
        if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
      } else if (a_local != b_local) {
        const Entry& loc = a_local ? a : b;
        if (!epochs_->resolvable(loc.epoch)) {
          // Unmerged window: every resolved tag predates it.
          return b_local;
        }
        const std::uint64_t lg = epochs_->g(
            loc.epoch, static_cast<std::uint32_t>(-loc.pusher - 1));
        const std::uint64_t rg =
            static_cast<std::uint64_t>(a_local ? b.pusher : a.pusher);
        // Equal positions mean the SAME pusher in two representations
        // (a resolved delivery tag vs a local log reference) — fall
        // through to the push ordinal.
        if (lg != rg) return a_local ? lg < rg : rg < lg;
        if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
      } else {
        if (a.pusher != b.pusher) return a.pusher < b.pusher;
        if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
      }
    }
    return a.seq < b.seq;
  }

  bool bucket_empty() const { return bucket_head_ == bucket_.size(); }
  void heap_push(Entry e);
  Entry heap_pop();

  std::vector<Entry> heap_;  // 4-ary implicit heap, min at heap_[0]
  // Same-timestamp FIFO: entries at exactly bucket_time_, in push order.
  // Ring over a vector; compacted whenever it drains.
  std::vector<Entry> bucket_;
  std::size_t bucket_head_ = 0;
  SimTime bucket_time_ = 0.0;
  bool bucket_active_ = false;  // becomes true at the first pop
  bool tag_order_ = false;
  const OrderEpochs* epochs_ = nullptr;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcx::des
