// Pending-event set for the discrete-event simulator.
//
// A binary heap ordered by (time, sequence). The sequence number makes
// event ordering total and deterministic: two events scheduled for the
// same instant fire in the order they were scheduled, on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hpcx::des {

/// Simulation time in seconds. A double gives sub-nanosecond resolution
/// over the hours of simulated time these benchmarks span; determinism is
/// unaffected because the simulator is single-threaded and ties are broken
/// by sequence number.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t`.
  void push(SimTime t, Callback cb);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime next_time() const;

  /// Pop and return the earliest event's callback. Queue must be
  /// non-empty. `time_out` (optional) receives the event time.
  Callback pop(SimTime* time_out);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcx::des
