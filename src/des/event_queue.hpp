// Pending-event set for the discrete-event simulator.
//
// A 4-ary implicit heap ordered by (time, sequence), with a FIFO bucket
// fast path for events scheduled at exactly the time currently being
// popped — the dominant pattern (wakes and deliveries land "now"), which
// the bucket serves with O(1) push and pop instead of O(log n) sifts.
//
// The sequence number makes event ordering total and deterministic: two
// events scheduled for the same instant fire in the order they were
// scheduled, on every run. The bucket preserves this exactly, because a
// push is only diverted to the bucket when its sequence number is larger
// than that of every same-time entry still in the heap (sequence numbers
// are monotonic, and the bucket only accepts pushes at the time that has
// already started popping).
#pragma once

#include <cstdint>
#include <vector>

#include "des/callback.hpp"

namespace hpcx::des {

/// Simulation time in seconds. A double gives sub-nanosecond resolution
/// over the hours of simulated time these benchmarks span; determinism is
/// unaffected because the simulator is single-threaded and ties are broken
/// by sequence number.
using SimTime = double;

class EventQueue {
 public:
  using Callback = des::Callback;

  /// Schedule `cb` at absolute time `t`.
  void push(SimTime t, Callback cb);

  bool empty() const { return heap_.empty() && bucket_empty(); }
  std::size_t size() const {
    return heap_.size() + (bucket_.size() - bucket_head_);
  }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime next_time() const;

  /// Pop and return the earliest event's callback. Queue must be
  /// non-empty. `time_out` (optional) receives the event time.
  Callback pop(SimTime* time_out);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  // a fires strictly before b (seq is unique, so no equality case).
  static bool before(SimTime at, std::uint64_t aseq, const Entry& b) {
    if (at != b.time) return at < b.time;
    return aseq < b.seq;
  }

  bool bucket_empty() const { return bucket_head_ == bucket_.size(); }
  void heap_push(Entry e);
  Entry heap_pop();

  std::vector<Entry> heap_;  // 4-ary implicit heap, min at heap_[0]
  // Same-timestamp FIFO: entries at exactly bucket_time_, in push order.
  // Ring over a vector; compacted whenever it drains.
  std::vector<Entry> bucket_;
  std::size_t bucket_head_ = 0;
  SimTime bucket_time_ = 0.0;
  bool bucket_active_ = false;  // becomes true at the first pop
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcx::des
