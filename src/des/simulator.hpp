// Deterministic single-threaded discrete-event simulator with fiber
// processes.
//
// Two kinds of activity coexist:
//  * plain events — callbacks scheduled at an absolute simulated time,
//    executed in the scheduler context (used by the network model for
//    message-delivery bookkeeping);
//  * processes — fibers running ordinary blocking code under virtual
//    time (used for simulated MPI ranks).
//
// A process blocks via sleep()/block(); other code unblocks it with
// wake(). Wakes are delivered through the event queue, so *all* state
// transitions are totally ordered by (time, schedule sequence): the
// simulation is bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "des/event_queue.hpp"
#include "des/fiber.hpp"

namespace hpcx::des {

using ProcessId = std::uint32_t;
constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

class Simulator {
 public:
  Simulator() = default;

  /// Current simulated time, in seconds.
  SimTime now() const { return now_; }

  /// Schedule a plain event `delay` seconds from now (delay >= 0).
  /// Callbacks with small trivially-copyable captures are stored inline
  /// (see des::Callback) — the engine's own events never allocate.
  void schedule(SimTime delay, Callback fn);

  /// Create a process; it starts when the simulation reaches the current
  /// time's event horizon (i.e. it is scheduled like an event at now()).
  ProcessId spawn(std::function<void()> body,
                  std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Run until no events remain. Throws Error if processes are still
  /// blocked when the event queue drains (deadlock), listing how many.
  void run();

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const { return live_processes_; }

  // --- Operations available *inside* a process fiber ---

  /// Suspend the calling process for `duration` simulated seconds.
  void sleep(SimTime duration);

  /// Suspend the calling process until somebody calls wake() on it.
  void block();

  /// Id of the calling process (must be inside one).
  ProcessId current_process() const;

  // --- Operations available anywhere (events or other processes) ---

  /// Make a blocked process runnable; it resumes at the current simulated
  /// time, after already-pending events at this instant. Waking a process
  /// that is not blocked is an error.
  void wake(ProcessId pid);

 private:
  struct Process {
    Process(std::function<void()> body, std::size_t stack_bytes)
        : fiber(std::move(body), stack_bytes) {}
    Fiber fiber;
    bool blocked = false;   // waiting for wake()
    bool wake_pending = false;
  };

  void resume_process(ProcessId pid);

  EventQueue queue_;
  SimTime now_ = 0.0;
  // deque: stable addresses (a fiber may be mid-execution while another
  // spawn() grows the table) without a per-process heap allocation.
  std::deque<Process> processes_;
  ProcessId running_ = kNoProcess;
  std::size_t live_processes_ = 0;
  bool in_run_ = false;
};

}  // namespace hpcx::des
