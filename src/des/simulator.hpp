// Deterministic single-threaded discrete-event simulator with fiber
// processes.
//
// Two kinds of activity coexist:
//  * plain events — callbacks scheduled at an absolute simulated time,
//    executed in the scheduler context (used by the network model for
//    message-delivery bookkeeping);
//  * processes — fibers running ordinary blocking code under virtual
//    time (used for simulated MPI ranks).
//
// A process blocks via sleep()/block(); other code unblocks it with
// wake(). Wakes are delivered through the event queue, so *all* state
// transitions are totally ordered by (time, schedule sequence): the
// simulation is bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/event_queue.hpp"
#include "des/fiber.hpp"

namespace hpcx::des {

using ProcessId = std::uint32_t;
constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

/// One executed event in a logical process's order log: when it fired
/// and who pushed it. `pusher` >= 0 is a resolved global sequence
/// number (assigned by an earlier window's merge, or a pre-run pseudo
/// position such as spawn order); `pusher` < 0 encodes -(i+1) where i
/// indexes the pushing event in this same LP's log for the current
/// window. `ordinal` counts the pusher's pushes, so (pusher, ordinal)
/// totally orders all pushes — and therefore, per FIFO bucket
/// semantics, all same-timestamp events — exactly as the serial
/// engine's single queue would.
struct OrderLogEntry {
  SimTime t = 0.0;
  std::int64_t pusher = 0;
  std::uint32_t ordinal = 0;
};

// --- Critical-path provenance (serial engine only; see obs/critical_path) ---

/// What kind of causal edge delivered control to an event — the push
/// site classifies it, optionally naming an actor (a process id for
/// fiber resumes, a topology edge id for network deliveries).
enum class CpKind : std::uint8_t {
  kEvent = 0,    ///< plain scheduled callback
  kSpawn,        ///< process creation (actor = pid)
  kResume,       ///< sleep expiry: the process was busy (actor = pid)
  kWake,         ///< zero-delay wake of a blocked process (actor = pid)
  kDelivery,     ///< network message delivery (actor = bottleneck edge)
  kCopy,         ///< intra-node copy delivery (actor = host)
  kBarrier,      ///< hardware-barrier release edge
};
constexpr std::uint32_t kCpActorBits = 26;
constexpr std::uint32_t kCpNoActor = (1u << kCpActorBits) - 1;

constexpr std::uint32_t cp_label(CpKind kind, std::uint32_t actor) {
  return (static_cast<std::uint32_t>(kind) << kCpActorBits) |
         (actor & kCpNoActor);
}
constexpr CpKind cp_kind(std::uint32_t label) {
  return static_cast<CpKind>(label >> kCpActorBits);
}
constexpr std::uint32_t cp_actor(std::uint32_t label) {
  return label & kCpNoActor;
}

/// One executed event in the critical-path log: when it fired, which
/// logged event pushed it (-1 = pushed before the run / outside any
/// event), and the causal-edge label its push site attached. 16 bytes,
/// one per executed event while recording is on.
struct CpRecord {
  SimTime t = 0.0;
  std::int32_t pred = -1;
  std::uint32_t label = 0;
};

class Simulator {
 public:
  Simulator() = default;

  /// Current simulated time, in seconds.
  SimTime now() const { return now_; }

  /// Schedule a plain event `delay` seconds from now (delay >= 0).
  /// Callbacks with small trivially-copyable captures are stored inline
  /// (see des::Callback) — the engine's own events never allocate.
  void schedule(SimTime delay, Callback fn);

  /// Schedule a plain event at absolute time `t` (t >= now()). Used by
  /// the parallel scheduler to inject cross-LP deliveries between
  /// synchronization windows.
  void schedule_at(SimTime t, Callback fn);

  /// Create a process; it starts when the simulation reaches the current
  /// time's event horizon (i.e. it is scheduled like an event at now()).
  ProcessId spawn(std::function<void()> body,
                  std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Run until no events remain. Throws Error if processes are still
  /// blocked when the event queue drains (deadlock), listing how many.
  void run();

  /// Process every event strictly before `horizon`, then return. Unlike
  /// run(), an empty queue is not a deadlock — more events may arrive
  /// from other logical processes before the next window. now() is NOT
  /// advanced to the horizon: it stays at the last processed event, so
  /// a between-window schedule_at() can still land anywhere >= now().
  void run_until(SimTime horizon);

  /// Time of the earliest pending event, or +infinity when idle — the
  /// per-LP component of the parallel scheduler's LBTS computation.
  SimTime next_event_time() const;

  /// Number of spawned processes that have not yet finished.
  std::size_t live_processes() const { return live_processes_; }

  /// Events executed so far (both run() and run_until()). Cheap enough
  /// to maintain unconditionally; the parallel driver diffs it around
  /// windows for per-LP work accounting.
  std::uint64_t executed_events() const { return executed_events_; }

  // --- Operations available *inside* a process fiber ---

  /// Suspend the calling process for `duration` simulated seconds.
  void sleep(SimTime duration);

  /// Suspend the calling process until somebody calls wake() on it.
  void block();

  /// Id of the calling process (must be inside one).
  ProcessId current_process() const;

  // --- Operations available anywhere (events or other processes) ---

  /// Make a blocked process runnable; it resumes at the current simulated
  /// time, after already-pending events at this instant. Waking a process
  /// that is not blocked is an error.
  void wake(ProcessId pid);

  // --- Event-order reconstruction (parallel engine only) ---
  //
  // With the order log enabled, every executed event is recorded with
  // its push provenance. Between windows the parallel engine merges the
  // LPs' logs into the serial engine's exact global execution order
  // (des::WindowOrder), filling each LP's window_gseq() table with the
  // resulting global sequence numbers; commit_order_window() then seals
  // that table as the window's epoch. Still-pending events keep their
  // window-local tags — the event queue resolves them lazily through
  // the epoch tables (see des::OrderEpochs) instead of the engine
  // rewriting every pending entry after each window. The serial engine
  // never enables any of this.

  /// Turn per-event order logging on or off (off by default). Also
  /// switches the event queue to tag-ordered ties: events that arrive
  /// in the queue out of serial push order (flush-scheduled deliveries,
  /// earlier-window survivors) still execute in the serial engine's
  /// same-instant order, so in-window decisions that depend on it (a
  /// receive finding its message already delivered versus blocking)
  /// come out identically.
  void enable_order_log(bool on) {
    order_log_on_ = on;
    if (on) epochs_.reset();
    queue_.set_tag_order(on, &epochs_);
  }

  /// Executed events of the current window, in execution order.
  const std::vector<OrderLogEntry>& order_log() const { return order_log_; }

  /// Log index of the event currently executing (requires logging on and
  /// an event in flight).
  std::size_t current_log_index() const;

  /// Next push ordinal the current event would use — the slot a
  /// deferred serial-engine push must occupy when the flush performs it
  /// on this event's behalf.
  std::uint32_t current_push_ordinal() const { return cur_ordinal_; }

  /// Skip one push ordinal of the current event — used where the serial
  /// engine performs a push (e.g. scheduling a message delivery) that
  /// the parallel engine defers to the flush, so later pushes keep the
  /// serial numbering.
  void consume_push_ordinal() {
    if (order_log_on_) ++cur_ordinal_;
  }

  /// One-shot provenance override for the next push made outside any
  /// event (e.g. pre-run spawns, whose serial position is rank order).
  void set_next_push_tag(std::int64_t pusher, std::uint32_t ordinal);

  /// schedule_at() with explicit, already-resolved provenance — for
  /// flush-scheduled cross-LP deliveries and barrier wake-ups.
  void schedule_at_tagged(SimTime t, Callback fn, std::int64_t pusher,
                          std::uint32_t ordinal);

  /// Size this window's global-sequence table to order_log().size()
  /// and return it for the merge to fill (slot i = the global position
  /// of the i-th logged event). The caller must fill every slot before
  /// the next event-queue operation on this simulator — handing the
  /// table out marks the window resolvable for tag comparisons.
  std::uint64_t* begin_window_gseq();

  /// The filled table (valid between the merge and commit).
  const std::uint64_t* window_gseq() const { return epochs_.current_table(); }

  /// Seal the filled window table as this window's epoch (pending
  /// events' local tags resolve through it from now on), retire epochs
  /// nothing references any more, and start a fresh window log.
  void commit_order_window();

  // --- Critical-path recording (serial engine only) ---
  //
  // With recording on, every executed event appends a CpRecord naming
  // its pushing event, so walking pred links from the LAST executed
  // event yields a causal chain spanning exactly [0, makespan] — the
  // critical path. The predecessor/label ride the event queue's
  // existing provenance fields; tie-breaking stays (time, seq), so the
  // schedule is bit-identical to an unrecorded run. Mutually exclusive
  // with the order log (the parallel engine owns those fields there).

  /// Turn critical-path recording on or off (off by default).
  void enable_critical_path(bool on);
  bool critical_path() const { return cp_on_; }

  /// One-shot label override for the next push — the network model
  /// classifies its delivery edges this way. No-op while recording is
  /// off, so call sites need no guard.
  void set_next_cp(CpKind kind, std::uint32_t actor) {
    if (!cp_on_) return;
    cp_override_ = true;
    cp_override_label_ = cp_label(kind, actor);
  }

  const std::vector<CpRecord>& cp_log() const { return cp_log_; }
  /// True when the log hit its cap and stopped recording (the analysis
  /// refuses a truncated log rather than reporting a wrong path).
  bool cp_truncated() const { return cp_truncated_; }

 private:
  struct Process {
    Process(std::function<void()> body, std::size_t stack_bytes)
        : fiber(std::move(body), stack_bytes) {}
    Fiber fiber;
    bool blocked = false;   // waiting for wake()
    bool wake_pending = false;
  };

  void resume_process(ProcessId pid);
  void push_event(SimTime t, Callback fn,
                  std::uint32_t label = cp_label(CpKind::kEvent, kCpNoActor));
  void dispatch_logged(SimTime t, std::int64_t pusher, std::uint32_t ordinal,
                       std::uint32_t epoch);
  void dispatch_cp(SimTime t, std::int64_t pred, std::uint32_t label);

  EventQueue queue_;
  OrderEpochs epochs_;  // per-window gseq tables (parallel engine only)
  SimTime now_ = 0.0;
  std::uint64_t executed_events_ = 0;
  bool order_log_on_ = false;
  // Critical-path recording (mutually exclusive with the order log).
  bool cp_on_ = false;
  bool cp_truncated_ = false;
  bool cp_override_ = false;
  std::uint32_t cp_override_label_ = 0;
  std::int64_t cp_cur_ = -1;  ///< log index of the executing event
  std::vector<CpRecord> cp_log_;
  std::vector<OrderLogEntry> order_log_;
  std::int64_t cur_pusher_ = 0;     // tag for pushes by the current event
  std::uint32_t cur_ordinal_ = 0;   // next push ordinal of the current event
  bool tag_override_ = false;       // one-shot set_next_push_tag() pending
  std::int64_t override_pusher_ = 0;
  std::uint32_t override_ordinal_ = 0;
  // deque: stable addresses (a fiber may be mid-execution while another
  // spawn() grows the table) without a per-process heap allocation.
  std::deque<Process> processes_;
  ProcessId running_ = kNoProcess;
  std::size_t live_processes_ = 0;
  bool in_run_ = false;
};

}  // namespace hpcx::des
