// Exact cross-LP event-order reconstruction for the parallel engine.
//
// The serial simulator executes events in (time, push order): the event
// queue is a heap with a same-timestamp FIFO bucket, so two events at
// one instant fire in the order they were pushed, and pushes happen
// during the execution of earlier events. Once every pusher's own
// position is known, that order is the ascending lexicographic key
// (time, pusher position, push ordinal) — and each logical process's
// window log, being the global order restricted to one LP, is already
// sorted by it. merge() therefore reconstructs the serial order with a
// k-way merge of the per-LP streams, resolving window-local pusher
// references on the fly (a pusher always precedes its pushees in its
// own stream, so its global number is assigned before it is needed).
//
// The merge parallelizes by splitting the window into time-disjoint
// segments at timestamps where no window-local pusher reference crosses
// (checked with per-LP suffix minima of local pusher indices). Segment
// sizes are known up front, so each segment's first global sequence
// number comes from a prefix sum and the segments merge independently
// on the host worker pool — identical output to the serial replay by
// construction. All scratch lives in flat arenas reused across windows.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"

namespace hpcx::des {

class WorkerPool;

class WindowOrder {
 public:
  /// `first_gseq` must exceed every pre-run pseudo position handed to
  /// set_next_push_tag() (the parallel engine uses spawn order, so the
  /// rank count). `min_segment_events` floors the per-segment size of
  /// the parallel merge; 0 picks the tuned default. Tests lower it to
  /// force segmented merges on windows far below production scale.
  explicit WindowOrder(std::uint64_t first_gseq,
                       std::uint32_t min_segment_events = 0)
      : next_gseq_(first_gseq), min_segment_events_(min_segment_events) {}

  /// Merge the LPs' current window logs into the serial global
  /// execution order, filling each LP's begin_window_gseq() table
  /// (aligned with its order_log()) with dense global sequence numbers.
  /// Callers read the numbers via Simulator::window_gseq() to order
  /// deferred cross-LP work, then call commit_order_window() on each
  /// LP. When `pool` has more than one worker and the window is large
  /// enough, segments merge in parallel on it. Throws des::Error if a
  /// log entry carries a resolved pusher at or beyond this window's
  /// first global number (a corrupted or stale log).
  void merge(const std::vector<Simulator*>& lps, WorkerPool* pool = nullptr);

  std::uint64_t next_gseq() const { return next_gseq_; }

  /// Segment layout of the most recent merge (for observability):
  /// per-segment executed-event counts. A serial or small merge is one
  /// segment; an empty window is zero.
  const std::vector<std::uint32_t>& last_segment_events() const {
    return seg_events_;
  }

  /// One LP's next unmerged entry with its pusher reference resolved —
  /// the static serial-order key (t, g, ordinal).
  struct Head {
    SimTime t;
    std::uint64_t g;
    std::uint32_t ordinal;
    std::uint32_t lp;
  };

 private:
  struct LpView {
    const OrderLogEntry* log;
    std::uint64_t* g;
    std::uint32_t n;
  };

  Head make_head(std::uint32_t lp, std::uint32_t idx,
                 std::uint64_t window_base) const;
  void merge_segment(std::uint32_t s, std::uint32_t nl,
                     std::uint64_t window_base);

  std::uint64_t next_gseq_;
  std::uint32_t min_segment_events_;  // 0 = default

  // Scratch reused across windows (merge is called per flush).
  std::vector<LpView> views_;
  std::vector<std::uint32_t> log_base_;    // flat offset of each LP's log
  std::vector<std::uint32_t> suffix_min_;  // per flat entry: min local
                                           // pusher index at or after it
  std::vector<std::uint32_t> splits_;      // (nseg+1) x nl boundary indices
  std::vector<std::uint32_t> cursor_;      // nseg x nl merge cursors
  std::vector<Head> heads_;                // nseg x nl k-way heads
  std::vector<std::uint64_t> seg_base_;    // first gseq of each segment
  std::vector<std::uint32_t> seg_events_;  // events per segment (stats)
};

}  // namespace hpcx::des
