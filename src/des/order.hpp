// Exact cross-LP event-order reconstruction for the parallel engine.
//
// The serial simulator executes events in (time, push order): the event
// queue is a heap with a same-timestamp FIFO bucket, so two events at
// one instant fire in the order they were pushed, and pushes happen
// during the execution of earlier events. That order is therefore a
// recursive property of the whole execution history — it cannot be
// recovered from any static per-event key. WindowOrder recovers it
// exactly instead: each logical process logs every event it executes
// together with the identity of the event that pushed it (a resolved
// global position from an earlier window, or a window-local reference),
// and merge() replays the queue discipline over all LPs' logs at once —
// a priority queue on (time, pusher position, push ordinal) in which an
// event becomes eligible once its pusher has been placed. The result is
// the serial engine's global execution order, as dense global sequence
// numbers, computed window by window with transient memory only.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"

namespace hpcx::des {

class WindowOrder {
 public:
  /// `first_gseq` must exceed every pre-run pseudo position handed to
  /// set_next_push_tag() (the parallel engine uses spawn order, so the
  /// rank count).
  explicit WindowOrder(std::uint64_t first_gseq) : next_gseq_(first_gseq) {}

  /// Merge the LPs' current window logs into the serial global
  /// execution order. Returns one vector per LP, aligned with its
  /// order_log(): the global sequence number of each executed event.
  /// Does not mutate the simulators — callers use the numbers to order
  /// deferred cross-LP work, then call finalize_order_window() on each
  /// LP to resolve pending-event tags and reset the logs.
  std::vector<std::vector<std::uint64_t>> merge(
      const std::vector<Simulator*>& lps);

  std::uint64_t next_gseq() const { return next_gseq_; }

  struct Item {
    SimTime t;
    std::uint64_t pusher;  // resolved global position of the pusher
    std::uint32_t ordinal;
    std::uint32_t lp;
    std::uint32_t idx;  // index into that LP's order log
  };

 private:
  std::uint64_t next_gseq_;

  // Scratch reused across windows (merge is called per flush).
  std::vector<Item> heap_;
  std::vector<std::uint32_t> child_head_;  // per (lp,idx): first child
  std::vector<std::uint32_t> child_next_;  // intrusive child lists
  std::vector<std::uint32_t> log_base_;    // flat offset of each LP's log

  void heap_push(Item item);
  Item heap_pop();
};

}  // namespace hpcx::des
