#include "des/order.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"
#include "des/parallel.hpp"

namespace hpcx::des {

namespace {

constexpr std::uint32_t kNoLocal = 0xffffffffu;

/// Segments smaller than this merge faster serially than the boundary
/// search costs; windows below ~2 segments' worth stay single-segment.
constexpr std::uint32_t kMinSegmentEvents = 2048;

// a fires strictly before b in the serial order. Pushes are serialised
// by their pusher's execution position and, within one pusher, by push
// ordinal — so (t, g, ordinal) reproduces the single queue's
// (time, sequence) order. Keys are unique by construction (an ordinal
// is used once per pusher); lp makes the comparison total anyway.
bool head_before(const WindowOrder::Head& a, const WindowOrder::Head& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.g != b.g) return a.g < b.g;
  if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
  return a.lp < b.lp;
}

}  // namespace

WindowOrder::Head WindowOrder::make_head(std::uint32_t lp, std::uint32_t idx,
                                         std::uint64_t window_base) const {
  const LpView& v = views_[lp];
  const OrderLogEntry& e = v.log[idx];
  std::uint64_t pg;
  if (e.pusher >= 0) {
    pg = static_cast<std::uint64_t>(e.pusher);
    if (pg >= window_base) {
      throw Error(
          "order log corrupt: resolved pusher " + std::to_string(pg) +
          " is at or beyond this window's first global sequence number " +
          std::to_string(window_base) +
          " (first_gseq precondition violated)");
    }
  } else {
    const std::uint32_t p = static_cast<std::uint32_t>(-e.pusher - 1);
    // The pusher precedes its pushee in the same stream and (by the
    // segment-boundary condition) in the same segment, so its global
    // number is already assigned.
    HPCX_ASSERT(p < idx);
    pg = v.g[p];
  }
  return Head{e.t, pg, e.ordinal, lp};
}

// Merge one segment: a k-way merge over the LPs' stream slices
// [splits_[s], splits_[s+1]), assigning dense global numbers from the
// segment's base. Runs on any worker — all state it touches is either
// segment-local arena slices or per-LP gseq slots disjoint from every
// other segment's.
void WindowOrder::merge_segment(std::uint32_t s, std::uint32_t nl,
                                std::uint64_t window_base) {
  const std::uint32_t* beg = &splits_[static_cast<std::size_t>(s) * nl];
  const std::uint32_t* fin = &splits_[static_cast<std::size_t>(s + 1) * nl];
  std::uint32_t* cur = &cursor_[static_cast<std::size_t>(s) * nl];
  Head* heap = &heads_[static_cast<std::size_t>(s) * nl];
  std::uint64_t g = seg_base_[s];

  std::uint32_t hn = 0;
  for (std::uint32_t l = 0; l < nl; ++l) {
    cur[l] = beg[l];
    if (beg[l] >= fin[l]) continue;
    // Binary-heap push of this LP's first head.
    Head h = make_head(l, beg[l], window_base);
    std::uint32_t i = hn++;
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (head_before(heap[parent], h)) break;
      heap[i] = heap[parent];
      i = parent;
    }
    heap[i] = h;
  }

  while (hn > 0) {
    if (hn == 1) {
      // Single remaining stream: the rest is already in order (the
      // resolved-pusher sanity check still runs on every entry).
      const std::uint32_t l = heap[0].lp;
      const LpView& v = views_[l];
      for (std::uint32_t i = cur[l]; i < fin[l]; ++i) {
        if (v.log[i].pusher >= 0 &&
            static_cast<std::uint64_t>(v.log[i].pusher) >= window_base) {
          (void)make_head(l, i, window_base);  // throws the diagnostic
        }
        v.g[i] = g++;
      }
      break;
    }
    const std::uint32_t l = heap[0].lp;
    views_[l].g[cur[l]] = g++;
    const std::uint32_t next = ++cur[l];
    Head h;
    if (next < fin[l]) {
      h = make_head(l, next, window_base);
    } else {
      h = heap[--hn];
    }
    // Sift down from the root.
    std::uint32_t i = 0;
    for (;;) {
      const std::uint32_t c1 = 2 * i + 1;
      if (c1 >= hn) break;
      std::uint32_t best = c1;
      const std::uint32_t c2 = c1 + 1;
      if (c2 < hn && head_before(heap[c2], heap[c1])) best = c2;
      if (head_before(h, heap[best])) break;
      heap[i] = heap[best];
      i = best;
    }
    heap[i] = h;
  }
}

void WindowOrder::merge(const std::vector<Simulator*>& lps, WorkerPool* pool) {
  const std::uint32_t nl = static_cast<std::uint32_t>(lps.size());
  views_.resize(nl);
  log_base_.assign(nl + 1, 0);
  std::uint32_t biggest = 0;
  for (std::uint32_t l = 0; l < nl; ++l) {
    const std::vector<OrderLogEntry>& log = lps[l]->order_log();
    const std::uint32_t n = static_cast<std::uint32_t>(log.size());
    views_[l] = LpView{log.data(), lps[l]->begin_window_gseq(), n};
    log_base_[l + 1] = log_base_[l] + n;
    if (n > views_[biggest].n) biggest = l;
  }
  const std::uint32_t total = log_base_[nl];
  seg_events_.clear();
  if (total == 0) return;
  const std::uint64_t window_base = next_gseq_;

  const int workers = pool != nullptr ? pool->workers() : 1;
  const std::uint32_t min_seg =
      min_segment_events_ != 0 ? min_segment_events_ : kMinSegmentEvents;
  std::uint32_t nseg = 1;
  if (workers > 1 && total >= 2 * min_seg) {
    nseg = std::min<std::uint32_t>(total / min_seg,
                                   2 * static_cast<std::uint32_t>(workers));
  }

  splits_.assign(static_cast<std::size_t>(nseg + 1) * nl, 0);
  std::uint32_t accepted = 0;  // boundaries accepted so far
  if (nseg > 1) {
    // Per-LP suffix minima of window-local pusher indices: boundary
    // validity below is "no local reference crosses the split".
    suffix_min_.resize(total);
    const auto suffix_pass = [&](int w) {
      for (std::uint32_t l = static_cast<std::uint32_t>(w); l < nl;
           l += static_cast<std::uint32_t>(workers)) {
        const LpView& v = views_[l];
        std::uint32_t m = kNoLocal;
        std::uint32_t* out = suffix_min_.data() + log_base_[l];
        for (std::uint32_t i = v.n; i-- > 0;) {
          const std::int64_t p = v.log[i].pusher;
          if (p < 0)
            m = std::min(m, static_cast<std::uint32_t>(-p - 1));
          out[i] = m;
        }
      }
    };
    pool->run(suffix_pass);

    // Candidate boundary times: quantiles of the largest LP's stream
    // (streams are time-sorted). A candidate T is valid when, in every
    // LP, no entry at or after lower_bound(T) references a local pusher
    // before it — then [.., T) and [T, ..) merge independently.
    const LpView& big = views_[biggest];
    for (std::uint32_t k = 1; k < nseg; ++k) {
      const std::uint32_t qi = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(big.n) * k) / nseg);
      const SimTime T = big.log[qi].t;
      std::uint32_t* row = &splits_[static_cast<std::size_t>(accepted + 1) *
                                    nl];
      const std::uint32_t* prev = row - nl;
      bool ok = false;  // reject boundaries that add an empty segment
      for (std::uint32_t l = 0; l < nl; ++l) {
        const LpView& v = views_[l];
        // lower_bound over the stream's times.
        std::uint32_t lo = 0, hi = v.n;
        while (lo < hi) {
          const std::uint32_t mid = (lo + hi) / 2;
          if (v.log[mid].t < T) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo < v.n && suffix_min_[log_base_[l] + lo] < lo) {
          ok = false;
          break;
        }
        row[l] = lo;
        if (lo > prev[l]) ok = true;
      }
      if (ok) ++accepted;
    }
  }
  const std::uint32_t last = accepted + 1;  // segments = boundaries + 1
  for (std::uint32_t l = 0; l < nl; ++l)
    splits_[static_cast<std::size_t>(last) * nl + l] = views_[l].n;

  seg_base_.resize(last);
  seg_events_.resize(last);
  std::uint64_t base = next_gseq_;
  for (std::uint32_t s = 0; s < last; ++s) {
    std::uint32_t sz = 0;
    for (std::uint32_t l = 0; l < nl; ++l)
      sz += splits_[static_cast<std::size_t>(s + 1) * nl + l] -
            splits_[static_cast<std::size_t>(s) * nl + l];
    seg_base_[s] = base;
    seg_events_[s] = sz;
    base += sz;
  }
  next_gseq_ += total;

  cursor_.resize(static_cast<std::size_t>(last) * nl);
  heads_.resize(static_cast<std::size_t>(last) * nl);
  if (last == 1 || pool == nullptr) {
    for (std::uint32_t s = 0; s < last; ++s)
      merge_segment(s, nl, window_base);
  } else {
    pool->run([&](int w) {
      for (std::uint32_t s = static_cast<std::uint32_t>(w); s < last;
           s += static_cast<std::uint32_t>(workers))
        merge_segment(s, nl, window_base);
    });
  }
}

}  // namespace hpcx::des
