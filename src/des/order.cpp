#include "des/order.hpp"

#include "core/error.hpp"

namespace hpcx::des {

namespace {
constexpr std::uint32_t kNone = 0xffffffffu;
}  // namespace

// a fires strictly before b in the serial order. Pushes are serialised
// by their pusher's execution position and, within one pusher, by push
// ordinal — so (t, pusher, ordinal) reproduces the single queue's
// (time, sequence) order. Keys are unique by construction (an ordinal
// is used once per pusher); lp/idx make the comparison total anyway.
static bool order_before(const WindowOrder::Item& a,
                         const WindowOrder::Item& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.pusher != b.pusher) return a.pusher < b.pusher;
  if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
  if (a.lp != b.lp) return a.lp < b.lp;
  return a.idx < b.idx;
}

void WindowOrder::heap_push(Item item) {
  heap_.push_back(item);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (order_before(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

WindowOrder::Item WindowOrder::heap_pop() {
  Item top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    std::size_t best = l;
    if (l + 1 < n && order_before(heap_[l + 1], heap_[l])) best = l + 1;
    if (order_before(heap_[i], heap_[best])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

std::vector<std::vector<std::uint64_t>> WindowOrder::merge(
    const std::vector<Simulator*>& lps) {
  const std::uint32_t nl = static_cast<std::uint32_t>(lps.size());
  log_base_.assign(nl + 1, 0);
  for (std::uint32_t l = 0; l < nl; ++l)
    log_base_[l + 1] =
        log_base_[l] + static_cast<std::uint32_t>(lps[l]->order_log().size());
  const std::uint32_t total = log_base_[nl];

  std::vector<std::vector<std::uint64_t>> gseq(nl);
  for (std::uint32_t l = 0; l < nl; ++l)
    gseq[l].assign(lps[l]->order_log().size(), 0);

  child_head_.assign(total, kNone);
  child_next_.assign(total, kNone);
  heap_.clear();

  // Events whose pusher executed in an earlier window (or before the
  // run) are eligible immediately; the rest chain off their in-window
  // pusher and become eligible when it is placed.
  for (std::uint32_t l = 0; l < nl; ++l) {
    const std::vector<OrderLogEntry>& log = lps[l]->order_log();
    for (std::uint32_t i = 0; i < log.size(); ++i) {
      const OrderLogEntry& e = log[i];
      if (e.pusher >= 0) {
        heap_push(Item{e.t, static_cast<std::uint64_t>(e.pusher), e.ordinal,
                       l, i});
      } else {
        const std::uint32_t parent =
            static_cast<std::uint32_t>(-e.pusher - 1);
        HPCX_ASSERT(parent < i);
        const std::uint32_t flat_parent = log_base_[l] + parent;
        const std::uint32_t flat_child = log_base_[l] + i;
        child_next_[flat_child] = child_head_[flat_parent];
        child_head_[flat_parent] = flat_child;
      }
    }
  }

  // Replay the queue discipline: repeatedly place the earliest eligible
  // event. The serial-next event is always eligible (its pusher ran
  // strictly earlier, hence is already placed), so the pop sequence IS
  // the serial execution order.
  std::uint32_t placed = 0;
  while (!heap_.empty()) {
    const Item it = heap_pop();
    const std::uint64_t g = next_gseq_++;
    gseq[it.lp][it.idx] = g;
    ++placed;
    const std::vector<OrderLogEntry>& log = lps[it.lp]->order_log();
    std::uint32_t child = child_head_[log_base_[it.lp] + it.idx];
    while (child != kNone) {
      const std::uint32_t ci = child - log_base_[it.lp];
      heap_push(Item{log[ci].t, g, log[ci].ordinal, it.lp, ci});
      child = child_next_[child];
    }
  }
  HPCX_ASSERT_MSG(placed == total, "order merge left unplaced events");
  return gseq;
}

}  // namespace hpcx::des
