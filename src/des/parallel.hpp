// Conservative parallel driver for a set of logical-process simulators.
//
// The machine is partitioned into logical processes (LPs), each a
// complete des::Simulator with its own event queue and fibers. LPs
// synchronize with a windowed (YAWNS-style) conservative protocol: each
// round computes the lower bound on time stamps LBTS = min over LPs of
// the next pending event, then every LP processes all events strictly
// before LBTS + lookahead in parallel. Lookahead is the caller-derived
// minimum time any in-window action needs before it can affect another
// LP (for the network model: the minimum modeled link latency), so no
// event executed inside a window can schedule into another LP's past.
//
// Cross-LP effects are NOT applied in-window: the caller records them
// locally and applies them in `flush`, which runs single-threaded
// between windows — cross-LP delivery, shared-resource reservations and
// barrier releases all happen there, in a deterministic order the
// caller controls. This is what makes the schedule worker-count
// invariant: the window boundaries depend only on event times, and
// everything with cross-LP visibility is ordered by flush, never by
// thread interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"

namespace hpcx::des {

/// Per-LP instrumentation from one run_conservative drive. All wall
/// clocks are host time (std::chrono::steady_clock) — they never feed
/// back into simulated time, so recording them cannot perturb the
/// schedule.
struct ConservativeLpStats {
  std::uint64_t windows = 0;       ///< windows in which this LP ran events
  std::uint64_t idle_windows = 0;  ///< windows it was invoked but had none
  std::uint64_t events = 0;        ///< events executed across all windows
  double busy_wall_s = 0.0;        ///< wall time inside run_until()
};

/// Whole-drive instrumentation (optionally filled by run_conservative).
struct ConservativeStats {
  std::uint64_t windows = 0;
  /// Windows whose LBTS advance was ~= the lookahead: the sync protocol,
  /// not the event supply, bounded the window. The complement
  /// (work_limited) means the queues went dry and LBTS jumped ahead.
  std::uint64_t lookahead_limited = 0;
  std::uint64_t work_limited = 0;
  int workers = 0;             ///< effective worker count used
  double total_wall_s = 0.0;   ///< whole drive, flush included
  double flush_wall_s = 0.0;   ///< single-threaded cross-LP application
  double window_wall_s = 0.0;  ///< inside parallel windows (barrier to barrier)
  /// Worker-seconds spent stalled at window barriers (LBTS stalls):
  /// window_wall_s * workers minus the sum of per-LP busy wall.
  double stall_wall_s = 0.0;
  std::vector<ConservativeLpStats> lps;  ///< one slot per LP, by index
};

/// Drive `lps` to completion. Each round: flush() (single-threaded
/// cross-LP application), LBTS = min next_event_time(), then all LPs
/// run_until(LBTS + lookahead) on `workers` host threads (LP i is
/// pinned to worker i % workers; workers <= 1 runs inline). Terminates
/// when flush() leaves every queue empty; throws des::Error with the
/// serial engine's deadlock message if processes are still blocked
/// then. Exceptions from LP bodies are rethrown lowest-LP-index first.
/// When `stats` is non-null it is reset and filled with per-window and
/// per-LP instrumentation; passing it does not change the schedule.
void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void()>& flush, int workers,
                      SimTime lookahead, ConservativeStats* stats = nullptr);

}  // namespace hpcx::des
