// Conservative parallel driver for a set of logical-process simulators.
//
// The machine is partitioned into logical processes (LPs), each a
// complete des::Simulator with its own event queue and fibers. LPs
// synchronize with a windowed (YAWNS-style) conservative protocol: each
// round computes the lower bound on time stamps LBTS = min over LPs of
// the next pending event, then every LP processes all events strictly
// before LBTS + lookahead in parallel. Lookahead is the caller-derived
// minimum time any in-window action needs before it can affect another
// LP (for the network model: the minimum modeled link latency), so no
// event executed inside a window can schedule into another LP's past.
//
// Cross-LP effects are NOT applied in-window: the caller records them
// locally and applies them in `flush`, which runs between windows —
// cross-LP delivery, shared-resource reservations and barrier releases
// all happen there, in a deterministic order the caller controls. The
// flush receives the drive's WorkerPool so it can fan independent
// pieces (per-segment order merges, per-destination-LP delivery
// scheduling) back onto the worker threads; anything it runs serially
// stays on the calling thread. This is what makes the schedule
// worker-count invariant: the window boundaries depend only on event
// times, and everything with cross-LP visibility is ordered by flush,
// never by thread interleaving.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "des/simulator.hpp"

namespace hpcx::des {

/// Persistent host-thread pool with a generation-counter handshake:
/// run(fn) publishes fn under the mutex, wakes the workers, runs
/// worker 0's share on the calling thread, and returns once every
/// worker finished. With `workers` <= 1 no threads are ever spawned
/// and run(fn) is a plain inline call — the serial path stays free of
/// synchronization. The mutex/condvar pair provides the happens-before
/// edges that let state touched inside fn(w) be read by the caller
/// after run() returns (and by other workers in later rounds).
///
/// Exceptions thrown by fn are captured per worker and the lowest-
/// index worker's exception is rethrown after the round completes;
/// callers that need finer attribution (run_conservative rethrows by
/// LP index) catch inside fn themselves.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return workers_; }

  /// Run fn(w) for every w in [0, workers); the calling thread is
  /// worker 0. Returns when all workers are done. Not reentrant.
  void run(const std::function<void(int)>& fn);

 private:
  struct Impl;  // threads + handshake live out-of-line
  const int workers_;
  std::vector<std::exception_ptr> errors_;  // slot w owned by worker w
  Impl* impl_ = nullptr;                    // null when workers_ <= 1
};

/// Per-LP instrumentation from one run_conservative drive. All wall
/// clocks are host time (std::chrono::steady_clock) — they never feed
/// back into simulated time, so recording them cannot perturb the
/// schedule.
struct ConservativeLpStats {
  std::uint64_t windows = 0;       ///< windows in which this LP ran events
  std::uint64_t idle_windows = 0;  ///< windows it was invoked but had none
  std::uint64_t events = 0;        ///< events executed across all windows
  double busy_wall_s = 0.0;        ///< wall time inside run_until()
};

/// Whole-drive instrumentation (optionally filled by run_conservative).
struct ConservativeStats {
  std::uint64_t windows = 0;
  /// Windows whose LBTS advance was ~= the lookahead: the sync protocol,
  /// not the event supply, bounded the window. The complement
  /// (work_limited) means the queues went dry and LBTS jumped ahead.
  std::uint64_t lookahead_limited = 0;
  std::uint64_t work_limited = 0;
  int workers = 0;             ///< effective worker count used
  double total_wall_s = 0.0;   ///< whole drive, flush included
  double flush_wall_s = 0.0;   ///< cross-LP application between windows
  double window_wall_s = 0.0;  ///< inside parallel windows (barrier to barrier)
  /// Worker-seconds spent stalled at window barriers (LBTS stalls):
  /// window_wall_s * workers minus the sum of per-LP busy wall.
  double stall_wall_s = 0.0;
  std::vector<ConservativeLpStats> lps;  ///< one slot per LP, by index
};

/// Drive `lps` to completion. Each round: flush(pool) (cross-LP
/// application; `pool` is the drive's own WorkerPool for any internal
/// fan-out), LBTS = min next_event_time(), then all LPs
/// run_until(LBTS + lookahead) on `workers` host threads (LP i is
/// pinned to worker i % workers; workers <= 1 runs inline). Terminates
/// when flush() leaves every queue empty; throws des::Error with the
/// serial engine's deadlock message if processes are still blocked
/// then. Exceptions from LP bodies are rethrown lowest-LP-index first.
/// When `stats` is non-null it is reset and filled with per-window and
/// per-LP instrumentation; passing it does not change the schedule.
void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void(WorkerPool&)>& flush,
                      int workers, SimTime lookahead,
                      ConservativeStats* stats = nullptr);

}  // namespace hpcx::des
