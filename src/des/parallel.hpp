// Conservative parallel driver for a set of logical-process simulators.
//
// The machine is partitioned into logical processes (LPs), each a
// complete des::Simulator with its own event queue and fibers. LPs
// synchronize with a windowed (YAWNS-style) conservative protocol: each
// round computes the lower bound on time stamps LBTS = min over LPs of
// the next pending event, then every LP processes all events strictly
// before LBTS + lookahead in parallel. Lookahead is the caller-derived
// minimum time any in-window action needs before it can affect another
// LP (for the network model: the minimum modeled link latency), so no
// event executed inside a window can schedule into another LP's past.
//
// Cross-LP effects are NOT applied in-window: the caller records them
// locally and applies them in `flush`, which runs single-threaded
// between windows — cross-LP delivery, shared-resource reservations and
// barrier releases all happen there, in a deterministic order the
// caller controls. This is what makes the schedule worker-count
// invariant: the window boundaries depend only on event times, and
// everything with cross-LP visibility is ordered by flush, never by
// thread interleaving.
#pragma once

#include <functional>
#include <vector>

#include "des/simulator.hpp"

namespace hpcx::des {

/// Drive `lps` to completion. Each round: flush() (single-threaded
/// cross-LP application), LBTS = min next_event_time(), then all LPs
/// run_until(LBTS + lookahead) on `workers` host threads (LP i is
/// pinned to worker i % workers; workers <= 1 runs inline). Terminates
/// when flush() leaves every queue empty; throws des::Error with the
/// serial engine's deadlock message if processes are still blocked
/// then. Exceptions from LP bodies are rethrown lowest-LP-index first.
void run_conservative(const std::vector<Simulator*>& lps,
                      const std::function<void()>& flush, int workers,
                      SimTime lookahead);

}  // namespace hpcx::des
